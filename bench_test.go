// Benchmarks regenerating every table and figure of the paper plus
// the quantitative experiments E1-E14 (see DESIGN.md §5 and
// EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks double as the experiment harness: each iteration
// regenerates the artifact, and key quantities are reported as custom
// metrics so `go test -bench` output records the measured values.
package cachesync_test

import (
	"fmt"
	"runtime"
	"testing"

	"cachesync"
	"cachesync/internal/aquarius"
	"cachesync/internal/mcheck"
	"cachesync/internal/protocol"
	"cachesync/internal/report"
	"cachesync/internal/runner"
	"cachesync/internal/sim"
	"cachesync/internal/stats"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

// --- Table reproductions -------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := report.Table1()
		if t.NumRows() == 0 {
			b.Fatal("empty table")
		}
		if diffs := report.VerifyTable1(); len(diffs) != 0 {
			b.Fatalf("Table 1 diverges from the paper: %v", diffs)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(report.Table2()) == 0 {
			b.Fatal("empty table 2")
		}
	}
}

// --- Figure reproductions ------------------------------------------------

func benchFigure(b *testing.B, f func() report.FigureResult) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := f()
		if !r.Pass {
			b.Fatalf("%s diverges from the paper:\n%s", r.Name, r.Render())
		}
	}
}

func BenchmarkFigure1(b *testing.B) { benchFigure(b, report.Figure1) }
func BenchmarkFigure2(b *testing.B) { benchFigure(b, report.Figure2and3) }
func BenchmarkFigure3(b *testing.B) { benchFigure(b, report.Figure2and3) }
func BenchmarkFigure4(b *testing.B) { benchFigure(b, report.Figure4) }
func BenchmarkFigure5(b *testing.B) { benchFigure(b, report.Figure5) }
func BenchmarkFigure6(b *testing.B) { benchFigure(b, report.Figure6) }
func BenchmarkFigure7(b *testing.B) { benchFigure(b, report.Figure7) }
func BenchmarkFigure8(b *testing.B) { benchFigure(b, report.Figure8) }
func BenchmarkFigure9(b *testing.B) { benchFigure(b, report.Figure9) }

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if diffs := report.VerifyFigure10(); len(diffs) != 0 {
			b.Fatalf("Figure 10 diverges: %v", diffs)
		}
		if report.Figure10Processor().NumRows() != 8 || report.Figure10Bus().NumRows() != 8 {
			b.Fatal("figure 10 tables incomplete")
		}
	}
}

// BenchmarkFigure11 runs the two-tier Aquarius system (Figure 11)
// under the Prolog service-queue pattern.
func BenchmarkFigure11(b *testing.B) {
	const procs = 4
	var syncCycles, xbarAccesses int64
	for i := 0; i < b.N; i++ {
		a := aquarius.New(aquarius.DefaultConfig(procs))
		l := workload.Layout{G: a.Sync.Geometry()}
		ws := make([]func(*sim.Proc), procs)
		for p := 0; p < procs; p++ {
			p := p
			ws[p] = func(pr *sim.Proc) {
				for k := 0; k < 20; k++ {
					a.InstrFetch(pr, l.G.Base(l.PrivateBlock(p, k%8)))
					lock := l.LockAddr(2 + (p+1)%procs)
					syncprim.Acquire(pr, syncprim.CacheLock, lock)
					pr.Write(l.G.Base(l.SharedBlock(1+(p+1)%procs)), uint64(k))
					syncprim.Release(pr, syncprim.CacheLock, lock)
				}
			}
		}
		if err := a.Run(ws); err != nil {
			b.Fatal(err)
		}
		syncCycles = a.Sync.Counts.Get("bus.cycles")
		xbarAccesses = a.Counts.Get("xbar.access")
	}
	b.ReportMetric(float64(syncCycles), "syncbus-cycles")
	b.ReportMetric(float64(xbarAccesses), "xbar-accesses")
}

// --- Experiments E1-E14 --------------------------------------------------

func benchExperiment(b *testing.B, f func() *stats.Table) {
	b.Helper()
	var rows int
	for i := 0; i < b.N; i++ {
		t := f()
		rows = t.NumRows()
		if rows == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkE1LockCost(b *testing.B)          { benchExperiment(b, report.E1LockCost) }
func BenchmarkE2BusyWait(b *testing.B)          { benchExperiment(b, report.E2BusyWait) }
func BenchmarkE3SharedData(b *testing.B)        { benchExperiment(b, report.E3SharedData) }
func BenchmarkE4TransferUnits(b *testing.B)     { benchExperiment(b, report.E4TransferUnits) }
func BenchmarkE5InvalidateSignal(b *testing.B)  { benchExperiment(b, report.E5InvalidateSignal) }
func BenchmarkE6ReadForWrite(b *testing.B)      { benchExperiment(b, report.E6ReadForWrite) }
func BenchmarkE7SourcePolicy(b *testing.B)      { benchExperiment(b, report.E7SourcePolicy) }
func BenchmarkE8WriteNoFetch(b *testing.B)      { benchExperiment(b, report.E8WriteNoFetch) }
func BenchmarkE9Protocols(b *testing.B)         { benchExperiment(b, report.E9Protocols) }
func BenchmarkE10RudolphSegall(b *testing.B)    { benchExperiment(b, report.E10RudolphSegall) }
func BenchmarkE11Directory(b *testing.B)        { benchExperiment(b, report.E11Directory) }
func BenchmarkE12RMWMethods(b *testing.B)       { benchExperiment(b, report.E12RMWMethods) }
func BenchmarkE13IO(b *testing.B)               { benchExperiment(b, report.E13IO) }
func BenchmarkE14LockPurge(b *testing.B)        { benchExperiment(b, report.E14LockPurge) }
func BenchmarkE15Broadcast(b *testing.B)        { benchExperiment(b, report.E15Broadcast) }
func BenchmarkE16WorkWhileWaiting(b *testing.B) { benchExperiment(b, report.E16WorkWhileWaiting) }
func BenchmarkE17SleepWait(b *testing.B)        { benchExperiment(b, report.E17SleepWait) }
func BenchmarkE18DualBus(b *testing.B)          { benchExperiment(b, report.E18DualBus) }
func BenchmarkE19Aquarius(b *testing.B)         { benchExperiment(b, report.E19Aquarius) }
func BenchmarkE20BroadcastFraction(b *testing.B) {
	benchExperiment(b, report.E20BroadcastFraction)
}
func BenchmarkE21Disaggregated(b *testing.B) { benchExperiment(b, report.E21Disaggregated) }

// Ablations of the proposal's individual design choices.
func BenchmarkAblationWaiterPriority(b *testing.B)  { benchExperiment(b, report.A1WaiterPriority) }
func BenchmarkAblationConcurrentFlush(b *testing.B) { benchExperiment(b, report.A2ConcurrentFlush) }
func BenchmarkAblationSourceRetention(b *testing.B) { benchExperiment(b, report.A3SourceRetention) }
func BenchmarkAblationTransferUnits(b *testing.B)   { benchExperiment(b, report.A4UnitState) }
func BenchmarkAblationReplacement(b *testing.B)     { benchExperiment(b, report.A5Replacement) }

// --- Parallel experiment engine -------------------------------------------

// BenchmarkRunnerSuite regenerates the full artifact suite (tables,
// experiments, ablations, figures) through the parallel experiment
// engine, sequentially and with a GOMAXPROCS pool. The workers=1 to
// workers=N wall-clock ratio is the engine's parallel speedup over
// the suite (≈1.0 on a single-core host); the cache is off so every
// iteration regenerates every artifact.
func BenchmarkRunnerSuite(b *testing.B) {
	jobs := report.AllJobs(false)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := runner.Run(jobs, runner.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllPass() {
					b.Fatal("an artifact diverged from the paper")
				}
			}
			b.ReportMetric(float64(len(jobs)), "jobs")
		})
	}
}

// --- Raw engine throughput benchmarks -------------------------------------

// BenchmarkEngineLockHandoff measures raw simulated lock handoffs per
// real second under the paper's protocol.
func BenchmarkEngineLockHandoff(b *testing.B) {
	// The workload closures only read the layout, and the layout is a
	// pure function of the config — build both once outside the timed
	// loop so the benchmark times lock handoffs, not setup. A machine
	// still must be built per iteration: Run consumes it.
	newMachine := func() *cachesync.Machine {
		m, err := cachesync.New(cachesync.Config{Protocol: "bitar", Procs: 4})
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	l := newMachine().Layout()
	ws := make([]cachesync.Workload, 4)
	for j := range ws {
		ws[j] = func(p *cachesync.Proc) {
			for k := 0; k < 25; k++ {
				cachesync.Acquire(p, cachesync.CacheLock, l.LockAddr(0))
				cachesync.Release(p, cachesync.CacheLock, l.LockAddr(0))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := newMachine().Run(ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(4*25*b.N)/b.Elapsed().Seconds(), "handoffs/s")
}

// BenchmarkEngineMixedReferences measures simulated memory references
// per real second across protocols.
func BenchmarkEngineMixedReferences(b *testing.B) {
	for _, proto := range []string{"bitar", "illinois", "dragon", "writethrough"} {
		b.Run(proto, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := cachesync.New(cachesync.Config{Protocol: proto, Procs: 4})
				if err != nil {
					b.Fatal(err)
				}
				l := m.Layout()
				ws := workload.Mixed{Ops: 500, SharedBlocks: 8, PrivBlocks: 16,
					SharedFrac: 0.3, WriteFrac: 0.35, Seed: 1}.Build(l, 4)
				if err := m.Run(ws); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(4*500*b.N)/b.Elapsed().Seconds(), "refs/s")
		})
	}
}

// BenchmarkSimEngine measures the direct-execution engine core:
// simulated operations per real second with Program workloads pulled
// inline by the event loop — no goroutine, channel handshake, or
// scheduler park/unpark per operation. The shim variant runs the
// identical operation stream through the blocking func(*Proc)
// compatibility path, so the delta is the cost of lock-stepping
// goroutines. BENCH_sim.json (via cmd/cachesim -bench-json) gates
// regressions on these numbers.
func BenchmarkSimEngine(b *testing.B) {
	const procs, ops = 8, 2000
	mixed := workload.Mixed{Ops: ops, SharedBlocks: 8, PrivBlocks: 24,
		SharedFrac: 0.3, WriteFrac: 0.35, Seed: 1}
	for _, proto := range []string{"bitar", "illinois", "dragon", "writethrough"} {
		b.Run("mixed/"+proto, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := cachesync.New(cachesync.Config{Protocol: proto, Procs: procs})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.RunPrograms(mixed.Programs(m.Layout(), procs)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(procs*ops*b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
	for _, proto := range []string{"bitar", "illinois"} {
		b.Run("lock/"+proto, func(b *testing.B) {
			scheme, err := cachesync.BestScheme(proto)
			if err != nil {
				b.Fatal(err)
			}
			lc := workload.LockContention{Locks: 1, Iters: 100, HoldCycles: 20,
				ThinkCycles: 10, CSWrites: 2, Scheme: scheme, Seed: 1}
			for i := 0; i < b.N; i++ {
				m, err := cachesync.New(cachesync.Config{Protocol: proto, Procs: procs})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.RunPrograms(lc.Programs(m.Layout(), procs)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
	b.Run("mixed/bitar/shim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := cachesync.New(cachesync.Config{Protocol: "bitar", Procs: procs})
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Run(mixed.Build(m.Layout(), procs)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(procs*ops*b.N)/b.Elapsed().Seconds(), "ops/s")
	})
}

// BenchmarkMcheck measures the bounded model checker's exploration
// rate (states/sec) on the Bitar-Despain protocol at a mid-size
// configuration: with one worker, with GOMAXPROCS workers (the ratio
// is the parallel speedup of the hash-sharded BFS, ≈1.0 on a
// single-core host), and with processor-symmetry reduction. The
// symmetry variant reports a lower states/s (each state pays procs!
// canonicalization permutations) but explores ~procs!-fold fewer
// states, so its wall-clock per verification — also reported, as
// ms/verify — is the lowest.
func BenchmarkMcheck(b *testing.B) {
	run := func(b *testing.B, workers int, symmetry bool) {
		var states int64
		for i := 0; i < b.N; i++ {
			res, err := mcheck.Run(mcheck.Options{
				Protocol: protocol.MustNew("bitar"),
				Procs:    3, Blocks: 1, Words: 2, Depth: 6,
				Workers: workers, Symmetry: symmetry,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Counterexample != nil {
				b.Fatalf("unexpected violation: %v", res.Counterexample.Violations)
			}
			states += res.States
		}
		b.ReportMetric(float64(states)/b.Elapsed().Seconds(), "states/s")
		b.ReportMetric(1e3*b.Elapsed().Seconds()/float64(b.N), "ms/verify")
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) { run(b, workers, false) })
	}
	b.Run(fmt.Sprintf("workers=%d/symmetry", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		run(b, runtime.GOMAXPROCS(0), true)
	})
}
