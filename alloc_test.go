package cachesync_test

import (
	"runtime"
	"testing"

	"cachesync"
	"cachesync/internal/workload"
)

// mixedRunMallocs runs one mixed p8 simulation on the direct engine
// and returns the total heap allocations it made.
func mixedRunMallocs(t *testing.T, ops int) uint64 {
	t.Helper()
	m, err := cachesync.New(cachesync.Config{Protocol: "bitar", Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	ps := workload.Mixed{Ops: ops, SharedBlocks: 8, PrivBlocks: 24,
		SharedFrac: 0.3, WriteFrac: 0.35, Seed: 1}.Programs(m.Layout(), 8)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := m.RunPrograms(ps); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestSimSteadyStateAllocs is the allocs-per-op regression gate for
// the direct engine: a run has a fixed setup cost (counter handles,
// pool growth, memory blocks for the touched working set), but the
// per-operation marginal cost must be zero — pooled transactions,
// handle-based counters, and the typed ready queue exist so that the
// hot loop never hits the allocator. Comparing a short and a long run
// isolates the marginal cost from the setup cost.
func TestSimSteadyStateAllocs(t *testing.T) {
	const (
		procs    = 8
		shortOps = 2_000
		longOps  = 22_000
		perOpMax = 0.01 // marginal allocations per simulated operation
		extraOps = float64(procs * (longOps - shortOps))
	)
	short := mixedRunMallocs(t, shortOps)
	long := mixedRunMallocs(t, longOps)
	var marginal float64
	if long > short {
		marginal = float64(long-short) / extraOps
	}
	t.Logf("allocs: short=%d long=%d marginal=%.5f/op", short, long, marginal)
	if marginal > perOpMax {
		t.Fatalf("steady-state allocations: %.5f allocs/op over %d extra ops (limit %.2f) — the hot loop is allocating",
			marginal, int(extraOps), perOpMax)
	}
}
