package cachesync

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.ProtocolName() != "bitar" {
		t.Errorf("default protocol = %q", m.ProtocolName())
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{Protocol: "nope"}); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := New(Config{Procs: -1}); err == nil {
		t.Error("negative procs accepted")
	}
	if _, err := New(Config{BlockWords: 3}); err == nil {
		t.Error("non-power-of-two block accepted")
	}
}

func TestProtocolsList(t *testing.T) {
	ps := Protocols()
	if len(ps) != 13 {
		t.Fatalf("Protocols() = %v", ps)
	}
	for _, name := range ps {
		if _, err := New(Config{Protocol: name, Procs: 2}); err != nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
}

func TestRudolphForcesOneWordBlocks(t *testing.T) {
	m, err := New(Config{Protocol: "rudolph", BlockWords: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Layout().G; g.BlockWords != 1 {
		t.Errorf("rudolph geometry = %v, want one-word blocks", g)
	}
}

func TestQuickstartFlow(t *testing.T) {
	m, err := New(Config{Protocol: "bitar", Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got uint64
	err = m.Run([]Workload{
		func(p *Proc) { p.Write(0, 42) },
		func(p *Proc) {
			p.Compute(100)
			got = p.Read(0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("read %d, want 42", got)
	}
	if m.Clock() <= 0 {
		t.Error("clock did not advance")
	}
	st := m.Stats()
	if st["bus.read"] == 0 && st["bus.readx"] == 0 {
		t.Errorf("no fetches recorded: %v", st)
	}
}

func TestAcquireReleaseFacade(t *testing.T) {
	m, err := New(Config{Protocol: "bitar", Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	l := m.Layout()
	lock := l.LockAddr(0)
	counter := l.G.Base(l.SharedBlock(0))
	ws := make([]Workload, 3)
	for i := range ws {
		ws[i] = func(p *Proc) {
			for k := 0; k < 10; k++ {
				Acquire(p, CacheLock, lock)
				p.Write(counter, p.Read(counter)+1)
				Release(p, CacheLock, lock)
			}
		}
	}
	if err := m.Run(ws); err != nil {
		t.Fatal(err)
	}
	count, mean, max := m.LockStats()
	if count != 30 {
		t.Errorf("lock acquisitions = %d, want 30", count)
	}
	if mean <= 0 || max <= 0 {
		t.Errorf("lock latency stats empty: mean=%v max=%v", mean, max)
	}
}

func TestBestScheme(t *testing.T) {
	s, err := BestScheme("bitar")
	if err != nil || s != CacheLock {
		t.Errorf("BestScheme(bitar) = %v, %v", s, err)
	}
	s, err = BestScheme("illinois")
	if err != nil || s != TTAS {
		t.Errorf("BestScheme(illinois) = %v, %v", s, err)
	}
	if _, err := BestScheme("nope"); err == nil {
		t.Error("BestScheme(nope) should fail")
	}
}

func TestRenderStats(t *testing.T) {
	out := RenderStats(map[string]int64{"b": 2, "a": 1})
	if !strings.Contains(out, "a") || !strings.Contains(out, "counter") {
		t.Errorf("RenderStats output:\n%s", out)
	}
	ai := strings.Index(out, "\na  ")
	bi := strings.Index(out, "\nb  ")
	if ai == -1 || bi == -1 || ai > bi {
		t.Errorf("keys not sorted:\n%s", out)
	}
}

func TestBlockStateRendering(t *testing.T) {
	m, _ := New(Config{Protocol: "bitar", Procs: 1})
	if err := m.Run([]Workload{func(p *Proc) { p.Write(0, 1) }}); err != nil {
		t.Fatal(err)
	}
	if got := m.BlockState(0, 0); got != "W.S.D" {
		t.Errorf("BlockState = %q, want W.S.D", got)
	}
}

func TestFacadeDualBusAndUnitMode(t *testing.T) {
	m, err := New(Config{Protocol: "bitar", Procs: 4, Buses: 2, BlockWords: 8, TransferWords: 2, UnitMode: true})
	if err != nil {
		t.Fatal(err)
	}
	l := m.Layout()
	ws := make([]Workload, 4)
	for i := range ws {
		i := i
		ws[i] = func(p *Proc) {
			for k := 0; k < 20; k++ {
				p.Write(l.G.Base(l.SharedBlock((k+i)%6)), uint64(k))
				p.Read(l.G.Base(l.SharedBlock((k + i + 1) % 6)))
			}
		}
	}
	if err := m.Run(ws); err != nil {
		t.Fatal(err)
	}
	if m.Stats()["bus.cycles"] == 0 {
		t.Error("no bus activity")
	}
	if _, err := New(Config{Buses: 3}); err == nil {
		t.Error("Buses=3 accepted")
	}
}

func TestMachineRunsOnce(t *testing.T) {
	m, _ := New(Config{Procs: 1})
	if err := m.Run([]Workload{func(p *Proc) { p.Read(0) }}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run([]Workload{func(p *Proc) { p.Read(0) }}); err == nil {
		t.Error("second Run accepted; machines are single-run")
	}
}

func TestReadWordFacade(t *testing.T) {
	m, _ := New(Config{Protocol: "bitar", Procs: 1})
	if err := m.Run([]Workload{func(p *Proc) { p.Write(9, 77) }}); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadWord(9); got != 77 {
		t.Errorf("ReadWord = %d, want 77 (dirty cached copy)", got)
	}
	if got := m.ReadWord(100); got != 0 {
		t.Errorf("untouched word = %d", got)
	}
}
