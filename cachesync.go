// Package cachesync is a library reproduction of Bitar & Despain,
// "Multiprocessor Cache Synchronization: Issues, Innovations,
// Evolution" (ISCA 1986): a deterministic simulator for full-broadcast
// (single-bus snooping) multiprocessor cache-synchronization schemes,
// with the paper's lock-integrated protocol as its centerpiece and
// every protocol of the paper's Table 1 evolution — Goodman's
// write-once, Frank's Synapse, Papamarcos-Patel's Illinois,
// Yen-Yen-Fu, the Berkeley scheme of Katz et al. — plus the classic
// write-through baseline and the Dragon, Firefly, and Rudolph-Segall
// write-update/hybrid schemes.
//
// A Machine runs workload programs written as ordinary Go functions
// against a blocking processor API; the engine lock-steps them
// deterministically, so identical seeds give identical statistics.
//
//	m, _ := cachesync.New(cachesync.Config{Protocol: "bitar", Procs: 4})
//	err := m.Run([]cachesync.Workload{
//		func(p *cachesync.Proc) { p.Write(0, 42) },
//		func(p *cachesync.Proc) { p.Compute(100); _ = p.Read(0) },
//	})
package cachesync

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/sim"
	"cachesync/internal/stats"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

// Proc is the processor handle workload programs run against. All of
// its methods block until the simulated operation completes. See
// Read, Write, LockRead (the paper's lock operation), UnlockWrite,
// RMW, RMWMemory, TryWrite, WriteBlock, Compute, and IO.
type Proc = sim.Proc

// Workload is one processor's program.
type Workload = func(*Proc)

// Program is a resumable direct-execution workload: the engine calls
// its Next method inline for each operation, with no goroutine or
// channel per processor (see sim.Program). The workload generators'
// Programs methods return this form.
type Program = sim.Program

// Addr is a bus-wide-word address.
type Addr = addr.Addr

// Block identifies a cache block.
type Block = addr.Block

// Timing is the cycle-cost model (arbitration, address, word,
// memory, invalidate-signal, and source-arbitration cycles).
type Timing = sim.Timing

// Layout carves the address space into lock, shared, and private
// regions following the paper's block-per-atom rule.
type Layout = workload.Layout

// LockScheme selects how Acquire/Release lower onto the machine:
// the paper's cache-state lock, TAS, TTAS, or memory-held TAS.
type LockScheme = syncprim.Scheme

// Lock scheme values.
const (
	CacheLock = syncprim.CacheLock
	TAS       = syncprim.TAS
	TTAS      = syncprim.TTAS
	TASMemory = syncprim.TASMemory
)

// I/O operation kinds (Section E.2 of the paper).
const (
	IOInput   = sim.IOInput
	IOPageOut = sim.IOPageOut
	IOOutput  = sim.IOOutput
)

// Config assembles a simulated machine.
type Config struct {
	// Protocol names the cache-synchronization scheme; see Protocols.
	// Default "bitar" (the paper's proposal).
	Protocol string
	// Procs is the processor count (default 4).
	Procs int
	// BlockWords and TransferWords set the geometry (defaults 4, 4).
	// Rudolph-Segall forces one-word blocks.
	BlockWords    int
	TransferWords int
	// Sets and Ways size each cache (defaults 1 set — fully
	// associative — by 64 ways).
	Sets, Ways int
	// UnitMode enables sub-block transfer-unit cost accounting
	// (Section D.3).
	UnitMode bool
	// Timing overrides the cycle-cost model (default DefaultTiming).
	Timing *Timing
	// MaxCycles aborts runaway simulations (default ~10^12).
	MaxCycles int64
	// Buses selects single- or dual-bus broadcast (1 or 2; default 1).
	// Blocks interleave across buses (Section A.2).
	Buses int
}

// Machine is a configured simulated multiprocessor.
type Machine struct {
	sys *sim.System
}

// Protocols lists the available protocol names in historical order.
func Protocols() []string {
	out := make([]string, len(all.Everything))
	copy(out, all.Everything)
	return out
}

// DefaultTiming returns the cost model used by the benches.
func DefaultTiming() Timing { return sim.DefaultTiming() }

// New builds a Machine from cfg.
func New(cfg Config) (*Machine, error) {
	if cfg.Protocol == "" {
		cfg.Protocol = "bitar"
	}
	p, err := protocol.New(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	if cfg.Procs == 0 {
		cfg.Procs = 4
	}
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("cachesync: need at least one processor, got %d", cfg.Procs)
	}
	if cfg.BlockWords == 0 {
		cfg.BlockWords = 4
	}
	if p.Features().OneWordBlocks {
		cfg.BlockWords = 1
	}
	if cfg.TransferWords == 0 {
		cfg.TransferWords = cfg.BlockWords
	}
	g, err := addr.NewGeometry(cfg.BlockWords, cfg.TransferWords)
	if err != nil {
		return nil, err
	}
	if cfg.Sets == 0 {
		cfg.Sets = 1
	}
	if cfg.Ways == 0 {
		cfg.Ways = 64
	}
	if cfg.Buses == 0 {
		cfg.Buses = 1
	}
	if cfg.Buses < 1 || cfg.Buses > 2 {
		return nil, fmt.Errorf("cachesync: Buses must be 1 or 2, got %d", cfg.Buses)
	}
	sc := sim.Config{
		Procs:     cfg.Procs,
		Protocol:  p,
		Geometry:  g,
		Cache:     cache.Config{Sets: cfg.Sets, Ways: cfg.Ways, UnitMode: cfg.UnitMode},
		Timing:    sim.DefaultTiming(),
		MaxCycles: cfg.MaxCycles,
		NumBuses:  cfg.Buses,
	}
	if cfg.Timing != nil {
		sc.Timing = *cfg.Timing
	}
	return &Machine{sys: sim.New(sc)}, nil
}

// Run executes one workload per processor (missing entries idle) and
// returns when all have finished, or on deadlock/cycle overrun.
func (m *Machine) Run(ws []Workload) error { return m.sys.Run(ws) }

// RunPrograms executes one Program per processor (nil entries idle) on
// the direct goroutine-free path. It produces runs byte-identical to
// Run given the same operation sequence, several times faster.
func (m *Machine) RunPrograms(ps []Program) error { return m.sys.RunPrograms(ps) }

// Clock returns the simulated time in cycles after Run.
func (m *Machine) Clock() int64 { return m.sys.Clock() }

// Stats returns a merged snapshot of every component's counters:
// bus.<cmd> transaction counts, bus.cycles, bus.words, proc.hit.*,
// proc.miss.*, lock.*, snoop.*, mem.*, evict.*.
func (m *Machine) Stats() map[string]int64 { return m.sys.Stats().Snapshot() }

// LockStats summarizes hardware-lock acquisition latency (cycles).
func (m *Machine) LockStats() (count int, mean float64, max int64) {
	h := &m.sys.LockLatency
	return h.Count(), h.Mean(), h.Max()
}

// Layout returns the standard address-space layout for this machine's
// geometry.
func (m *Machine) Layout() Layout {
	return Layout{G: m.sys.Geometry()}
}

// ProtocolName returns the running protocol's registry name.
func (m *Machine) ProtocolName() string { return m.sys.Protocol().Name() }

// ReadWord returns the globally latest value of the word at a after
// Run: a dirty cached copy if one exists, main memory otherwise.
func (m *Machine) ReadWord(a Addr) uint64 {
	b := m.sys.Geometry().BlockOf(a)
	for _, c := range m.sys.Caches {
		if c.Protocol().IsDirty(c.State(b)) {
			if v, ok := c.ReadWord(a); ok {
				return v
			}
		}
	}
	return m.sys.Mem.ReadWord(a)
}

// BlockState renders cache c's state for the block containing a
// (for demos and debugging).
func (m *Machine) BlockState(c int, a Addr) string {
	return m.sys.Protocol().StateName(m.sys.Caches[c].State(m.sys.Geometry().BlockOf(a)))
}

// System exposes the underlying simulator for advanced use (figure
// reproduction, invariant checks).
func (m *Machine) System() *sim.System { return m.sys }

// Acquire obtains the busy-wait lock at a with the given scheme
// (Acquire(p, CacheLock, a) is the paper's LockRead).
func Acquire(p *Proc, s LockScheme, a Addr) { syncprim.Acquire(p, s, a) }

// Release frees the busy-wait lock at a.
func Release(p *Proc, s LockScheme, a Addr) { syncprim.Release(p, s, a) }

// BestScheme returns the most natural lock scheme for a protocol
// name: the cache lock when the protocol has one, TTAS otherwise.
func BestScheme(protoName string) (LockScheme, error) {
	p, err := protocol.New(protoName)
	if err != nil {
		return 0, err
	}
	return syncprim.SchemeFor(p), nil
}

// RenderStats formats a stats snapshot as an aligned table, keys
// sorted.
func RenderStats(snapshot map[string]int64) string {
	t := stats.NewTable("", "counter", "value")
	var c stats.Counters
	for k, v := range snapshot {
		c.Add(k, v)
	}
	for _, k := range c.Names() {
		t.AddRow(k, fmt.Sprintf("%d", c.Get(k)))
	}
	return t.Render()
}
