#!/bin/sh
# Repository verification: formatting, static checks, the full test
# suite, race-detector passes over every internally concurrent path
# (model-checker BFS, sim engine, runner worker pool, bus, scheduler
# queue), the fuzz targets in seed-corpus mode, the differential
# sim<->mcheck harness, and the two committed-baseline gates.
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (mcheck + sim smoke)"
go test -race -short -run 'TestSmokeAllProtocols|TestDeterministicAcrossWorkers|TestSymmetryEquivalence|TestDeterministicWorkersMutant' ./internal/mcheck/
go test -race -short ./internal/sim/

echo "== go test -race (runner pool, bus, scheduler queue)"
go test -race -short ./internal/runner/ ./internal/bus/ ./internal/schedqueue/

echo "== differential sim<->mcheck harness"
go test -short -run 'TestDifferentialSimMcheck|TestDifferentialHarnessDetectsSeededBug' ./internal/ptest/

echo "== fuzz targets (seed-corpus mode: f.Add seeds + testdata/fuzz)"
go test -run 'FuzzTraceBinaryRoundTrip|FuzzTraceTextDecode' ./internal/trace/
go test -run 'FuzzWorkloadReplay' ./internal/workload/

echo "== benchmark-regression gate"
if [ -f BENCH_mcheck.json ]; then
	go run ./cmd/mcheck -bench-json BENCH_mcheck.json -bench-gate 0.5
else
	echo "no BENCH_mcheck.json baseline; skipping (create one with: go run ./cmd/mcheck -bench-json BENCH_mcheck.json)"
fi

echo "== artifact gate (tables/experiments/figures manifest)"
if [ -f ARTIFACTS.json ]; then
	go run ./cmd/tables -gate ARTIFACTS.json
else
	echo "no ARTIFACTS.json baseline; skipping (create one with: go run ./cmd/tables -json ARTIFACTS.json)"
fi

echo "verify: OK"
