#!/bin/sh
# Repository verification: formatting, static checks, the full test
# suite, race-detector passes over every internally concurrent path
# (model-checker BFS, partial-order reduction, sharded exploration,
# sim engine, runner worker pool, parallel sweep executor, bus,
# scheduler queue, serving daemon, single-flight group), the fuzz
# targets in seed-corpus mode, the differential sim<->mcheck harness,
# the distributed-check differential (a /v1/check sharded across a
# 3-replica fleet must be byte-identical to a single replica's
# answer, counterexamples included — and stay so when a replica is
# killed mid-check and its session fails over via the shared
# checkpoint root), the mcheck kill-and-resume smoke (SIGKILL a
# checkpointing run, resume it, byte-identical summary) plus the
# pinned disk-backed bitar p4 exhaustive check, the table-vs-method differential plus the
# transition-table freshness gate (committed goldens must match the
# tables compiled from the protocol code), a live
# cachesyncd smoke (start, probe — including the -pprof diagnostic
# mount — graceful stop), the steady-state allocation gate of the
# direct-execution engine, and the six committed-baseline gates
# (mcheck perf, sim-engine ops/s, two-tier Aquarius cycles+broadcast
# fraction, artifact manifest, serving
# throughput, and cluster throughput — the last driven through a
# 3-replica cachesyncc fleet with a mid-run replica SIGKILL that must
# produce zero responses other than 2xx/clean-429, plus respawn and
# re-admission to full health).
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (mcheck + sim smoke)"
go test -race -short -run 'TestSmokeAllProtocols|TestDeterministicAcrossWorkers|TestSymmetryEquivalence|TestDeterministicWorkersMutant|TestPOREquivalence|TestPORMutant|TestShardedEquivalence|TestShardedTruncation|TestShardedRejectsPOR|TestSpillEquivalence|TestPORSpillBudget|TestKillResumeByteIdentical|TestKillResumePOR|TestShardSessionCheckpointResume' ./internal/mcheck/
go test -race -short ./internal/sim/

echo "== go test -race (runner pool, parallel sweep executor, bus, scheduler queue)"
go test -race -short ./internal/runner/ ./internal/simrun/ ./internal/bus/ ./internal/schedqueue/

echo "== go test -race (interconnect fabrics, two-tier Aquarius machine)"
go test -race -short ./internal/interconnect/ ./internal/aquarius/

echo "== go test -race (serving daemon, single-flight)"
go test -race -short ./internal/serve/ ./internal/flight/

echo "== go test -race (cluster coordinator, portfile handshake)"
go test -race -short ./internal/cluster/ ./internal/portfile/

echo "== distributed-check differential (sharded /v1/check vs one replica, with and without a replica dying mid-check)"
go test -run 'TestShardedCheckMatchesSingle|TestShardedCheckValidation|TestShardedCheckSurvivesReplicaDeath' ./internal/cluster/

echo "== differential sim<->mcheck harness"
go test -short -run 'TestDifferentialSimMcheck|TestDifferentialHarnessDetectsSeededBug' ./internal/ptest/

echo "== table-vs-method differential (compiled tables against the method oracle)"
go test -run 'TestTableVsMethod' ./internal/ptest/

echo "== transition-table freshness gate (goldens vs compiled tables)"
go run ./cmd/tables -check-transition-goldens

echo "== fuzz targets (seed-corpus mode: f.Add seeds + testdata/fuzz)"
go test -run 'FuzzTraceBinaryRoundTrip|FuzzTraceTextDecode' ./internal/trace/
go test -run 'FuzzWorkloadReplay' ./internal/workload/
go test -run 'FuzzRunFileDecode' ./internal/mcheck/

echo "== direct-vs-shim differential gate (13 protocols x generators)"
go test -run 'TestDirectMatchesShim' ./internal/workload/

echo "== steady-state allocation gate (0 allocs/op in the sim hot loop)"
go test -run 'TestSimSteadyStateAllocs' .

echo "== benchmark-regression gate"
if [ -f BENCH_mcheck.json ]; then
	go run ./cmd/mcheck -bench-json BENCH_mcheck.json -bench-gate 0.5
else
	echo "no BENCH_mcheck.json baseline; skipping (create one with: go run ./cmd/mcheck -bench-json BENCH_mcheck.json)"
fi

echo "== mcheck kill-and-resume smoke + deep-check gate"
mctmp=$(mktemp -d)
go build -o "$mctmp/mcheck" ./cmd/mcheck

# SIGKILL a checkpointing run mid-exploration; the resumed run's -out
# summary must be byte-identical to an uninterrupted run's.
mcargs="-protocol bitar -procs 3 -blocks 2 -words 2 -depth 6 -workers 2 -mem-budget 6291456 -nospeedup -json"
"$mctmp/mcheck" $mcargs -out "$mctmp/full.json" >/dev/null
"$mctmp/mcheck" $mcargs -checkpoint "$mctmp/ck" -out "$mctmp/resumed.json" >/dev/null 2>&1 &
mcpid=$!
i=0
while [ ! -f "$mctmp/ck/MANIFEST.json" ] && [ "$i" -lt 200 ]; do
	sleep 0.05
	i=$((i + 1))
done
kill -9 "$mcpid" 2>/dev/null || true
wait "$mcpid" 2>/dev/null || true
"$mctmp/mcheck" $mcargs -checkpoint "$mctmp/ck" -resume -out "$mctmp/resumed.json" >/dev/null
cmp "$mctmp/full.json" "$mctmp/resumed.json"
echo "mcheck: resumed run byte-identical after SIGKILL"

# The pinned disk-backed exhaustive check: bitar at p=4 (symmetry +
# POR) under a 256 KiB visited-set budget — far below the ~1 MiB the
# visited set compresses to on disk, so exploration provably ran
# disk-backed. Verdict, states, and transitions must reproduce the
# committed artifact byte for byte.
if [ -f DEEP_mcheck.json ]; then
	grep -q '"exhausted": true' DEEP_mcheck.json
	"$mctmp/mcheck" -protocol bitar -procs 4 -blocks 2 -words 2 -depth 14 -workers 2 \
		-por -mem-budget 262144 -nospeedup -json -out "$mctmp/deep.json" >/dev/null
	cmp DEEP_mcheck.json "$mctmp/deep.json"
	echo "mcheck: bitar p4 exhaustive (disk-backed) matches pinned DEEP_mcheck.json"
else
	echo "no DEEP_mcheck.json artifact; skipping (create one with the same mcheck command plus -out DEEP_mcheck.json)"
fi
rm -rf "$mctmp"

echo "== sim-engine benchmark gate (direct-execution ops/s)"
if [ -f BENCH_sim.json ]; then
	go run ./cmd/cachesim -bench-json BENCH_sim.json -bench-gate 0.7
else
	echo "no BENCH_sim.json baseline; skipping (create one with: go run ./cmd/cachesim -bench-json BENCH_sim.json)"
fi

echo "== two-tier Aquarius benchmark gate (cycles + broadcast fraction exact, ops/s)"
if [ -f BENCH_aquarius.json ]; then
	go run ./cmd/cachesim -bench-aquarius BENCH_aquarius.json -bench-gate 0.7
else
	echo "no BENCH_aquarius.json baseline; skipping (create one with: go run ./cmd/cachesim -bench-aquarius BENCH_aquarius.json)"
fi

echo "== artifact gate (tables/experiments/figures manifest)"
if [ -f ARTIFACTS.json ]; then
	go run ./cmd/tables -gate ARTIFACTS.json
else
	echo "no ARTIFACTS.json baseline; skipping (create one with: go run ./cmd/tables -json ARTIFACTS.json)"
fi

echo "== cachesyncd smoke (start, /healthz, simulate, check, pprof, graceful stop)"
smoketmp=$(mktemp -d)
trap 'rm -rf "$smoketmp"' EXIT
go build -o "$smoketmp/cachesyncd" ./cmd/cachesyncd
go build -o "$smoketmp/loadgen" ./cmd/loadgen
"$smoketmp/cachesyncd" -addr 127.0.0.1:0 -portfile "$smoketmp/port" -pprof >"$smoketmp/daemon.log" 2>&1 &
dpid=$!
if ! "$smoketmp/loadgen" -portfile "$smoketmp/port" -smoke -expect-pprof; then
	echo "cachesyncd smoke failed; daemon log:" >&2
	cat "$smoketmp/daemon.log" >&2
	kill "$dpid" 2>/dev/null || true
	exit 1
fi
kill -TERM "$dpid"
if ! wait "$dpid"; then
	echo "cachesyncd did not exit cleanly on SIGTERM; daemon log:" >&2
	cat "$smoketmp/daemon.log" >&2
	exit 1
fi
echo "cachesyncd: clean start/probe/drain/stop"

echo "== serving benchmark gate (open-loop load + overload shedding)"
if [ -f BENCH_serve.json ]; then
	go run ./cmd/loadgen -selfhost -workers 2 -queue 8 -rate 25 -duration 2s \
		-require-shed -out BENCH_serve.json -gate 0.3
else
	echo "no BENCH_serve.json baseline; skipping (create one with: go run ./cmd/loadgen -selfhost -workers 2 -queue 8 -rate 25 -duration 3s -require-shed -out BENCH_serve.json -update)"
fi

echo "== cluster benchmark gate (3-replica fleet, artifact exchange, chaos kill)"
if [ -f BENCH_cluster.json ]; then
	go build -o "$smoketmp/cachesyncc" ./cmd/cachesyncc
	fleet="$smoketmp/fleet"
	"$smoketmp/cachesyncc" -replicas 3 -workers 1 -queue 16 -dir "$fleet" \
		-addr 127.0.0.1:0 -portfile "$smoketmp/ccport" >"$smoketmp/cc.log" 2>&1 &
	cpid=$!
	if ! "$smoketmp/loadgen" -portfile "$smoketmp/ccport" -rate 60 -duration 2s \
		-warmup 500ms -overload=false \
		-chaos-kill "$fleet/r1.pid" -chaos-at 500ms -chaos-recover \
		-out BENCH_cluster.json -gate 0.3; then
		echo "cluster benchmark failed; coordinator log:" >&2
		cat "$smoketmp/cc.log" >&2
		kill "$cpid" 2>/dev/null || true
		exit 1
	fi
	kill -TERM "$cpid"
	if ! wait "$cpid"; then
		echo "cachesyncc did not exit cleanly on SIGTERM; log:" >&2
		cat "$smoketmp/cc.log" >&2
		exit 1
	fi
	echo "cachesyncc: fleet served through a replica kill, respawn, and re-admission"
else
	echo "no BENCH_cluster.json baseline; skipping (create one with the same command plus -update)"
fi

echo "verify: OK"
