#!/bin/sh
# Repository verification: formatting, static checks, the full test
# suite, and a race-detector pass over the model checker's parallel
# BFS (its only internally concurrent code path).
set -eu
cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (mcheck + sim smoke)"
go test -race -short -run 'TestSmokeAllProtocols|TestDeterministicAcrossWorkers|TestSymmetryEquivalence|TestDeterministicWorkersMutant' ./internal/mcheck/
go test -race -short ./internal/sim/

echo "== benchmark-regression gate"
if [ -f BENCH_mcheck.json ]; then
	go run ./cmd/mcheck -bench-json BENCH_mcheck.json -bench-gate 0.5
else
	echo "no BENCH_mcheck.json baseline; skipping (create one with: go run ./cmd/mcheck -bench-json BENCH_mcheck.json)"
fi

echo "verify: OK"
