module cachesync

go 1.22
