package cachesync_test

import (
	"fmt"

	"cachesync"
)

// The smallest complete program: two processors hand a value across
// the broadcast bus under the paper's cache-state lock.
func Example() {
	m, _ := cachesync.New(cachesync.Config{Protocol: "bitar", Procs: 2})
	l := m.Layout()
	lock, data := l.LockAddr(0), l.G.Base(l.SharedBlock(0))

	_ = m.Run([]cachesync.Workload{
		func(p *cachesync.Proc) {
			cachesync.Acquire(p, cachesync.CacheLock, lock)
			p.Write(data, 1986)
			cachesync.Release(p, cachesync.CacheLock, lock)
		},
		func(p *cachesync.Proc) {
			p.Compute(100)
			cachesync.Acquire(p, cachesync.CacheLock, lock)
			fmt.Println(p.Read(data))
			cachesync.Release(p, cachesync.CacheLock, lock)
		},
	})
	// Output: 1986
}

// Comparing protocols: the same workload runs unchanged on any of the
// registered schemes.
func ExampleNew_protocols() {
	for _, proto := range []string{"goodman", "illinois", "bitar"} {
		m, err := cachesync.New(cachesync.Config{Protocol: proto, Procs: 2})
		if err != nil {
			panic(err)
		}
		_ = m.Run([]cachesync.Workload{
			func(p *cachesync.Proc) { p.Write(0, 1) },
			func(p *cachesync.Proc) { p.Compute(100); p.Read(0) },
		})
		fmt.Println(m.ProtocolName(), m.Stats()["bus.read"]+m.Stats()["bus.readx"] > 0)
	}
	// Output:
	// goodman true
	// illinois true
	// bitar true
}

// Atomic read-modify-write: exact totals under contention.
func ExampleProc_RMW() {
	m, _ := cachesync.New(cachesync.Config{Protocol: "illinois", Procs: 3})
	counter := m.Layout().G.Base(m.Layout().SharedBlock(0))
	ws := make([]cachesync.Workload, 3)
	for i := range ws {
		ws[i] = func(p *cachesync.Proc) {
			for k := 0; k < 10; k++ {
				p.RMW(counter, func(v uint64) uint64 { return v + 1 })
			}
		}
	}
	_ = m.Run(ws)
	fmt.Println(m.ReadWord(counter))
	// Output: 30
}
