// Package sim is the deterministic discrete-event engine that drives
// processors, caches, the broadcast bus, and main memory through a
// workload. The engine executes workloads directly: a Program's Next
// method is called inline from the event loop (no goroutines, no
// channels, no per-op synchronization), so the hot loop is a plain
// single-threaded function. The blocking func(*Proc) API remains as a
// compatibility shim — each blocking workload runs as one goroutine
// lock-stepped over a channel pair — and produces bit-identical runs.
package sim

import (
	"context"
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/cache"
	"cachesync/internal/memory"
	"cachesync/internal/protocol"
	"cachesync/internal/stats"
)

// Config assembles a simulated machine.
type Config struct {
	Procs    int
	Protocol protocol.Protocol
	Geometry addr.Geometry
	Cache    cache.Config
	Timing   Timing
	// MaxCycles aborts a runaway simulation (0 means a large default).
	MaxCycles int64
	// NoWaiterPriority disables the reserved most-significant
	// arbitration priority bit for busy-wait re-arbitration (Section
	// E.4) — an ablation switch: waiters then compete at normal
	// priority after an unlock broadcast.
	NoWaiterPriority bool
	// NumBuses selects single- or dual-bus broadcast (Section A.2:
	// "broadcast is currently seen only in single or dual bus
	// systems"). Blocks interleave across buses; every cache snoops
	// every bus (the dual-directory organization). Default 1; at most 2.
	NumBuses int
}

// DefaultConfig returns a 4-processor machine with fully associative
// 64-block caches of 4-word blocks running the given protocol.
func DefaultConfig(p protocol.Protocol) Config {
	return Config{
		Procs:    4,
		Protocol: p,
		Geometry: addr.MustGeometry(4, 4),
		Cache:    cache.Config{Sets: 1, Ways: 64},
		Timing:   DefaultTiming(),
	}
}

// readyQueue tracks which processors have an operation ready to
// dispatch and when. The engine holds at most one ready event per
// processor, so a per-processor time array with a linear minimum scan
// beats a heap on the hot loop: push and remove are single stores, and
// the scan over a handful of entries is branch-predictable. Absent
// entries hold MaxInt64 and lose every comparison; ties keep the first
// (lowest-id) processor, matching the old heap's (time, proc) order.
type readyQueue struct {
	times []int64
	n     int
}

const readyAbsent = int64(1<<63 - 1)

func newReadyQueue(procs int) readyQueue {
	t := make([]int64, procs)
	for i := range t {
		t[i] = readyAbsent
	}
	return readyQueue{times: t}
}

// push marks proc ready at time t; proc must not already be ready.
func (q *readyQueue) push(proc int, t int64) {
	q.times[proc] = t
	q.n++
}

// minProc returns the ready processor with the earliest time (lowest
// id on ties). Call only when n > 0.
func (q *readyQueue) minProc() (proc int, t int64) {
	t = readyAbsent
	for i, ti := range q.times {
		if ti < t {
			proc, t = i, ti
		}
	}
	return proc, t
}

// remove clears proc's ready entry.
func (q *readyQueue) remove(proc int) {
	q.times[proc] = readyAbsent
	q.n--
}

// opCtx is the engine-side state of an in-flight processor operation
// that needs the bus. Contexts live in a fixed per-arbitration-slot
// array (System.ctxs); active marks a slot that holds a queued or
// parked request, playing the role a map membership test used to.
type opCtx struct {
	p          *Proc
	op         procOp
	protoOp    protocol.Op
	pr         protocol.ProcResult
	afterWait  bool // re-arbitrated after an Unlock broadcast (Figure 9)
	active     bool
	rmwOld     uint64
	rmwHaveOld bool

	// arbID is the bus-arbitration identity: the processor's cache
	// for ordinary operations, a distinct virtual requester for a
	// prefetched lock (the busy-wait register arbitrates on its own
	// while the processor keeps issuing other operations).
	arbID    int
	prefetch bool
	start    int64 // issue time, for latency statistics
}

// System is one simulated machine.
type System struct {
	cfg   Config
	proto protocol.Protocol
	tab   *protocol.Table // compiled transition tables; nil = method path
	feats protocol.Features

	Mem *memory.Memory
	// Bus is the first (or only) bus; Buses lists all of them.
	Bus    *bus.Bus
	Buses  []*bus.Bus
	Caches []*cache.Cache
	Procs  []*Proc

	clock   int64 // current event time (may regress across independent buses)
	hwm     int64 // high-water mark of simulated time
	busFree []int64
	ready   readyQueue
	// busDirty invalidates the cached (nextBus, nextGrant) pair: the
	// event loop rescans the buses only after something changed a bus —
	// a new request, a withdrawal, or a served transaction. Processor
	// steps that stay in their cache leave the cache valid.
	busDirty  bool
	nextBus   int
	nextGrant int64
	// ctxs[i] is arbitration slot i: processor i for i < Procs, the
	// busy-wait (prefetch) register of processor i-Procs above that.
	ctxs       []opCtx
	waiters    map[addr.Block][]int // busy-wait parked processors per block
	waiterPool [][]int              // retired waiter slices for reuse
	doneN      int
	started    bool

	// txnScratch/txnScratch2 are the pooled bus-transaction records:
	// every transaction the engine issues reuses one of them (two are
	// live at once only inside serveRMWMemory's read+write pair).
	txnScratch  bus.Transaction
	txnScratch2 bus.Transaction

	// lower, when attached, makes the machine two-tier: Instr/Data
	// class references route to it instead of the coherent bus path.
	lower       LowerTier
	strictClass bool
	routeSyncH  *int64
	routeInstrH *int64
	routeDataH  *int64

	Counts      stats.Counters
	busCyclesH  *int64 // cached handles for the per-transaction
	busWordsH   *int64 // bus.cycles / bus.words accounting
	LockLatency stats.Histogram
	log         *EventLog

	// OnTxn, when set, runs after every completed bus transaction
	// (used by the online coherence checker). The system state is
	// quiescent with respect to the transaction when it fires.
	OnTxn func()
}

// countBus charges a completed transaction's cycle and word costs
// through cached counter handles.
func (s *System) countBus(cycles, words int64) {
	if s.busCyclesH == nil {
		s.busCyclesH = s.Counts.Handle("bus.cycles")
		s.busWordsH = s.Counts.Handle("bus.words")
	}
	*s.busCyclesH += cycles
	*s.busWordsH += words
}

// New builds a System from cfg.
func New(cfg Config) *System {
	if cfg.Procs <= 0 {
		panic("sim: need at least one processor")
	}
	if cfg.Protocol == nil {
		panic("sim: nil protocol")
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 40
	}
	f := cfg.Protocol.Features()
	if f.OneWordBlocks && cfg.Geometry.BlockWords != 1 {
		panic(fmt.Sprintf("sim: protocol %q requires one-word blocks (Section E.4), got %d-word blocks",
			cfg.Protocol.Name(), cfg.Geometry.BlockWords))
	}
	if cfg.NumBuses == 0 {
		cfg.NumBuses = 1
	}
	if cfg.NumBuses < 1 || cfg.NumBuses > 2 {
		panic(fmt.Sprintf("sim: NumBuses must be 1 or 2 (Section A.2), got %d", cfg.NumBuses))
	}
	s := &System{
		cfg:      cfg,
		proto:    cfg.Protocol,
		feats:    f,
		Mem:      memory.New(cfg.Geometry),
		ctxs:     make([]opCtx, 2*cfg.Procs),
		ready:    newReadyQueue(cfg.Procs),
		waiters:  make(map[addr.Block][]int),
		busDirty: true,
		nextBus:  -1,
	}
	if !cfg.Cache.NoTables {
		s.tab = protocol.TableFor(cfg.Protocol)
	}
	for i := 0; i < cfg.NumBuses; i++ {
		s.Buses = append(s.Buses, bus.New())
	}
	s.Bus = s.Buses[0]
	s.busFree = make([]int64, cfg.NumBuses)
	for i := 0; i < cfg.Procs; i++ {
		c := cache.New(i, cfg.Geometry, cfg.Protocol, cfg.Cache, s.Mem)
		s.Caches = append(s.Caches, c)
		for _, b := range s.Buses {
			b.Attach(c)
		}
		s.Procs = append(s.Procs, &Proc{id: i, sys: s})
	}
	return s
}

// busOf returns the bus index serving a block (block-interleaved).
func (s *System) busOf(b addr.Block) int {
	return int(uint64(b) % uint64(len(s.Buses)))
}

// Clock returns the global simulation time in cycles (the high-water
// mark across buses and processors).
func (s *System) Clock() int64 {
	if s.clock > s.hwm {
		s.hwm = s.clock
	}
	return s.hwm
}

// Geometry returns the machine's address geometry.
func (s *System) Geometry() addr.Geometry { return s.cfg.Geometry }

// Protocol returns the protocol instance.
func (s *System) Protocol() protocol.Protocol { return s.proto }

// complete/privilege/isDirty consult the compiled transition tables
// when present, else the protocol methods — the engine's half of the
// table fast path (the caches hold their own table reference).
func (s *System) complete(st protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	if s.tab != nil {
		return s.tab.Complete(st, op, t)
	}
	return s.proto.Complete(st, op, t)
}

func (s *System) privilege(st protocol.State) protocol.Priv {
	if s.tab != nil {
		return s.tab.Privilege(st)
	}
	return s.proto.Privilege(st)
}

func (s *System) isDirty(st protocol.State) bool {
	if s.tab != nil {
		return s.tab.IsDirty(st)
	}
	return s.proto.IsDirty(st)
}

// Stats merges the counters of the bus, memory, caches, and
// processors with the engine's own counters into one snapshot.
func (s *System) Stats() *stats.Counters {
	var out stats.Counters
	out.Merge(&s.Counts)
	for _, b := range s.Buses {
		out.Merge(&b.Counts)
	}
	out.Merge(&s.Mem.Counts)
	for _, c := range s.Caches {
		out.Merge(&c.Counts)
	}
	for _, p := range s.Procs {
		out.Merge(&p.Counts)
	}
	return &out
}

// Run executes one workload function per processor (workloads[i] runs
// on processor i; missing entries idle) on the goroutine shim. It
// returns once every workload has finished, or an error on deadlock
// or cycle overrun. Workloads that can be expressed as a Program
// should prefer RunPrograms — same semantics, no goroutines.
func (s *System) Run(workloads []func(*Proc)) error {
	return s.RunContext(context.Background(), workloads)
}

// RunContext is Run with cancellation: when ctx ends, the event loop
// aborts between events, unblocks every live workload goroutine (their
// Proc calls panic with an internal sentinel the goroutine wrapper
// recovers, so none leak), and returns an error wrapping ctx.Err().
// The System is abandoned mid-flight and — like any System after Run —
// must not be reused.
func (s *System) RunContext(ctx context.Context, workloads []func(*Proc)) error {
	if s.started {
		return fmt.Errorf("sim: a System runs exactly once; build a fresh one")
	}
	s.started = true
	for i, p := range s.Procs {
		w := func(*Proc) {}
		if i < len(workloads) && workloads[i] != nil {
			w = workloads[i]
		}
		p.reqCh = make(chan procOp, 1)
		p.resCh = make(chan procRes, 1)
		go func(p *Proc, w func(*Proc)) {
			defer func() {
				if r := recover(); r != nil {
					if _, canceled := r.(simCancelPanic); !canceled {
						panic(r) // a genuine workload bug: keep crashing
					}
				}
				p.reqCh <- procOp{kind: opDone}
			}()
			w(p)
		}(p, w)
	}
	for _, p := range s.Procs {
		p.pending = <-p.reqCh
		p.status = statusReady
		s.ready.push(p.id, 0)
	}
	return s.run(ctx)
}

// run is the event loop shared by the direct and shim paths.
func (s *System) run(ctx context.Context) error {
	// ctx.Done() is nil for context.Background(), making the per-event
	// cancellation check a single nil comparison on uncancellable runs.
	done := ctx.Done()
	for s.doneN < len(s.Procs) {
		if done != nil {
			// Checked before every event: between events the engine is
			// quiescent (on the shim path every live workload goroutine
			// is parked on its result channel), which is exactly when
			// cancelRun may unwind — and the abort lands within one
			// event of ctx expiry.
			select {
			case <-done:
				return s.cancelRun(ctx)
			default:
			}
		}
		if s.clock > s.hwm {
			s.hwm = s.clock
		}
		if s.hwm > s.cfg.MaxCycles {
			return fmt.Errorf("sim: exceeded %d cycles (livelock?)", s.cfg.MaxCycles)
		}
		// The earliest grantable bus: a bus grants at the later of its
		// free time and the earliest pending request's issue time.
		// Recomputed only after an event touched a bus.
		if s.busDirty {
			s.busDirty = false
			s.nextBus = -1
			for i, b := range s.Buses {
				if !b.HasPending() {
					continue
				}
				g := s.busFree[i]
				if at := b.EarliestRequest(); at > g {
					g = at
				}
				if s.nextBus == -1 || g < s.nextGrant {
					s.nextBus, s.nextGrant = i, g
				}
			}
		}
		rp := -1
		var rt int64
		if s.ready.n > 0 {
			rp, rt = s.ready.minProc()
		}
		switch {
		case rp != -1 && (s.nextBus == -1 || rt <= s.nextGrant):
			s.ready.remove(rp)
			s.clock = rt
			if err := s.step(s.Procs[rp], rt); err != nil {
				return s.failRun(err)
			}
		case s.nextBus != -1:
			s.clock = s.nextGrant
			id, ok := s.Buses[s.nextBus].ArbitrateAt(s.nextGrant)
			if !ok {
				return fmt.Errorf("sim: bus %d grant at %d found no eligible request", s.nextBus, s.nextGrant)
			}
			s.busDirty = true
			s.serveBus(&s.ctxs[id])
		default:
			return s.deadlockError()
		}
	}
	return nil
}

// cancelRun unwinds an aborted simulation. On the direct path the
// loop simply stops stepping programs. On the shim path every
// processor whose workload has not finished is parked on its result
// channel (the engine only reaches the loop top with all live
// goroutines blocked), so a canceled reply wakes each one; Proc.do
// converts it into the sentinel panic that the Run wrapper recovers.
// Replies go out non-blocking because a processor whose workload
// already returned (its opDone still queued) has nobody listening.
func (s *System) cancelRun(ctx context.Context) error {
	for _, p := range s.Procs {
		if p.prog == nil && p.resCh != nil && p.status != statusDone {
			select {
			case p.resCh <- procRes{canceled: true}:
			default:
			}
		}
	}
	return fmt.Errorf("sim: run canceled at cycle %d: %w", s.Clock(), ctx.Err())
}

// failRun aborts a run on a routing or lower-tier error. Like
// cancelRun, every live shim goroutine is parked on its result
// channel, so a canceled reply unwinds each one; the direct path has
// nothing to unwind.
func (s *System) failRun(err error) error {
	for _, p := range s.Procs {
		if p.prog == nil && p.resCh != nil && p.status != statusDone {
			select {
			case p.resCh <- procRes{canceled: true}:
			default:
			}
		}
	}
	return err
}

func (s *System) deadlockError() error {
	msg := "sim: deadlock:"
	for _, p := range s.Procs {
		if p.status != statusDone {
			msg += fmt.Sprintf(" proc%d=%v", p.id, p.status)
		}
	}
	return fmt.Errorf("%s (all remaining processors are blocked or busy-waiting)", msg)
}

// respond completes the processor's pending operation at time t and
// pulls its next one — a direct Program.Next call, or a channel
// round-trip to the workload goroutine on the shim path. The direct
// path is inlined here so the wide procOp is copied once, from the
// program's return value into pending.
func (s *System) respond(p *Proc, t int64, res procRes) {
	res.now = t
	p.now = t
	if p.prog != nil {
		op, ok := p.prog.Next(p, Result{Value: res.value, OK: res.ok, Now: res.now})
		if !ok {
			p.pending = procOp{kind: opDone}
		} else {
			p.pending = op.raw
		}
	} else {
		p.pending = p.nextOp(res)
	}
	p.status = statusReady
	s.ready.push(p.id, t)
}

// slot claims processor p's arbitration slot for a new ordinary
// (non-prefetch) bus operation and returns it zeroed. A processor has
// at most one ordinary op in flight, so the slot is necessarily free.
func (s *System) slot(p *Proc) *opCtx {
	ctx := &s.ctxs[p.id]
	*ctx = opCtx{p: p, arbID: p.id}
	return ctx
}

// step dispatches a processor's pending operation at time t. The
// pending op is read through a pointer — procOp is too wide to copy on
// every event — so callees must finish with it before respond installs
// the next one. On a tiered machine (lower attached) memory
// references route by class first; an unroutable reference is an
// error that aborts the run.
func (s *System) step(p *Proc, t int64) error {
	op := &p.pending
	switch op.kind {
	case opDone:
		p.status = statusDone
		s.doneN++
	case opCompute:
		n := int64(op.value)
		p.Counts.Add("proc.compute-cycles", n)
		s.respond(p, t+n, procRes{})
	case opMem:
		p.opStart = t
		if s.lower != nil {
			handled, err := s.routeLower(p, t, op)
			if handled || err != nil {
				return err
			}
		}
		s.startMemOp(p, t, op, op.op)
	case opRMW:
		p.opStart = t
		if s.lower != nil {
			s.countRoute(&s.routeSyncH, "route.sync")
		}
		s.startRMW(p, t, op)
	case opRMWMem:
		p.opStart = t
		if s.lower != nil {
			s.countRoute(&s.routeSyncH, "route.sync")
		}
		ctx := s.slot(p)
		ctx.op = *op
		ctx.protoOp = protocol.OpWrite
		s.queueBus(ctx, false)
	case opTryWrite:
		p.opStart = t
		if s.lower != nil {
			s.countRoute(&s.routeSyncH, "route.sync")
		}
		s.startTryWrite(p, t, op)
	case opBlockWrite:
		p.opStart = t
		if s.lower != nil {
			handled, err := s.routeLower(p, t, op)
			if handled || err != nil {
				return err
			}
		}
		s.startBlockWrite(p, t, op)
	case opIO:
		p.opStart = t
		if s.lower != nil {
			s.countRoute(&s.routeSyncH, "route.sync")
		}
		ctx := s.slot(p)
		ctx.op = *op
		s.queueBus(ctx, false)
	case opLockPrefetch:
		if s.lower != nil {
			s.countRoute(&s.routeSyncH, "route.sync")
		}
		s.startLockPrefetch(p, t, op)
	case opLockWait:
		s.startLockWait(p, t, op)
	default:
		panic(fmt.Sprintf("sim: unknown op kind %d", op.kind))
	}
	return nil
}

// startMemOp probes the cache for a protocol operation; hits complete
// locally, misses queue a bus request. Single-word operations fuse the
// probe with the hit-time data access (cache.ProbeWord), so the common
// hit costs one tag lookup.
func (s *System) startMemOp(p *Proc, t int64, op *procOp, protoOp protocol.Op) {
	c := s.Caches[p.id]
	if protoOp == protocol.OpWriteBlock {
		r := c.Probe(protoOp, op.addr)
		t += int64(s.cfg.Timing.HitCycles)
		if r.Hit {
			s.finishLocal(p, t, op, protoOp)
			return
		}
		s.queueMiss(p, op, protoOp, r)
		return
	}
	r, v := c.ProbeWord(protoOp, op.addr, op.value)
	t += int64(s.cfg.Timing.HitCycles)
	if !r.Hit {
		s.queueMiss(p, op, protoOp, r)
		return
	}
	var res procRes
	res.ok = true
	switch protoOp {
	case protocol.OpRead, protocol.OpReadEx:
		res.value = v
	case protocol.OpLock:
		res.value = v
		s.recordLockAcquired(p, t)
	case protocol.OpUnlock:
		s.Counts.Inc("lock.unlock-silent")
	}
	s.respond(p, t, res)
}

// queueMiss claims the processor's slot for a probe that needs the bus.
func (s *System) queueMiss(p *Proc, op *procOp, protoOp protocol.Op, r protocol.ProcResult) {
	ctx := s.slot(p)
	ctx.op = *op
	ctx.protoOp = protoOp
	ctx.pr = r
	s.queueBus(ctx, false)
}

// finishLocal completes a zero-bus-traffic operation.
func (s *System) finishLocal(p *Proc, t int64, op *procOp, protoOp protocol.Op) {
	c := s.Caches[p.id]
	var res procRes
	switch protoOp {
	case protocol.OpRead, protocol.OpReadEx:
		res.value, _ = c.ReadWord(op.addr)
	case protocol.OpLock:
		res.value, _ = c.ReadWord(op.addr)
		s.recordLockAcquired(p, t)
	case protocol.OpWrite, protocol.OpUnlock:
		c.WriteWord(op.addr, op.value)
		if protoOp == protocol.OpUnlock {
			s.Counts.Inc("lock.unlock-silent")
		}
	case protocol.OpWriteBlock:
		base := s.cfg.Geometry.Base(s.cfg.Geometry.BlockOf(op.addr))
		for i, v := range op.vals {
			c.WriteWord(base+addr.Addr(i), v)
		}
	}
	res.ok = true
	s.respond(p, t, res)
}

func (s *System) recordLockAcquired(p *Proc, t int64) {
	s.Counts.Inc("lock.acquired")
	s.LockLatency.Observe(t - p.opStart)
}

// queueBus activates an op context and joins bus arbitration.
func (s *System) queueBus(ctx *opCtx, high bool) {
	if !ctx.prefetch {
		ctx.p.status = statusBlocked
	}
	ctx.active = true
	s.busDirty = true
	s.Buses[s.busOf(s.cfg.Geometry.BlockOf(ctx.op.addr))].RequestAt(ctx.arbID, high, ctx.p.now)
}

// startRMW begins an atomic read-modify-write held in the cache
// (Feature 6, method 2).
func (s *System) startRMW(p *Proc, t int64, op *procOp) {
	c := s.Caches[p.id]
	b := s.cfg.Geometry.BlockOf(op.addr)
	st := c.State(b)
	if s.privilege(st) >= protocol.PrivWrite {
		// Sole access already held: entirely local.
		old, _ := c.ReadWord(op.addr)
		c.Probe(protocol.OpWrite, op.addr)
		c.WriteWord(op.addr, op.f(old))
		s.respond(p, t+2*int64(s.cfg.Timing.HitCycles), procRes{value: old, ok: true})
		return
	}
	ctx := s.slot(p)
	ctx.op = *op
	ctx.protoOp = protocol.OpWrite
	if st != protocol.Invalid {
		// A readable copy exists: capture the old value now; the write
		// phase upgrades privilege.
		ctx.rmwOld, _ = c.ReadWord(op.addr)
		ctx.rmwHaveOld = true
		ctx.pr = c.Probe(protocol.OpWrite, op.addr)
		if ctx.pr.Hit {
			c.WriteWord(op.addr, op.f(ctx.rmwOld))
			s.respond(p, t+2*int64(s.cfg.Timing.HitCycles), procRes{value: ctx.rmwOld, ok: true})
			return
		}
	} else {
		ctx.pr = c.Probe(protocol.OpWrite, op.addr)
		if ctx.pr.Cmd == bus.WriteWord {
			// Write-through path cannot return the old value: fetch a
			// readable copy first (bus held between the phases).
			ctx.protoOp = protocol.OpRead
			ctx.pr = protocol.ProcResult{Cmd: bus.Read}
		}
		// Otherwise the fetch (Read or ReadX) brings the old value and
		// the continuation captures it after install.
	}
	s.queueBus(ctx, false)
}

// startTryWrite begins the abort-on-steal write (Feature 6, method 3).
func (s *System) startTryWrite(p *Proc, t int64, op *procOp) {
	c := s.Caches[p.id]
	b := s.cfg.Geometry.BlockOf(op.addr)
	if c.State(b) == protocol.Invalid {
		// The block was stolen between the read and the write: abort.
		p.Counts.Inc("rmw.abort")
		s.respond(p, t+int64(s.cfg.Timing.HitCycles), procRes{ok: false})
		return
	}
	r := c.Probe(protocol.OpWrite, op.addr)
	if r.Hit {
		c.WriteWord(op.addr, op.value)
		s.respond(p, t+int64(s.cfg.Timing.HitCycles), procRes{ok: true})
		return
	}
	ctx := s.slot(p)
	ctx.op = *op
	ctx.protoOp = protocol.OpWrite
	ctx.pr = r
	s.queueBus(ctx, false)
}

// startBlockWrite begins a whole-block write. With Feature 9 the
// protocol skips the fetch; otherwise the first word's write runs as
// a normal (fetching) write and the rest complete locally or as
// further write-throughs.
func (s *System) startBlockWrite(p *Proc, t int64, op *procOp) {
	if s.feats.WriteNoFetch {
		s.startMemOp(p, t, op, protocol.OpWriteBlock)
		return
	}
	// Lowered path: op.vals[0] via a full write op; the completion
	// handler writes the remaining words (writeRemainder), tracking
	// progress in op.idx.
	first := *op
	first.idx = 0
	first.value = op.vals[0]
	s.startMemOp(p, t, &first, protocol.OpWrite)
}

// writeRemainder finishes a lowered block write after word op.idx
// completed: under write-in protocols the remaining
// words are cache hits; under write-through they are further bus
// writes, issued one by one. op may alias the processor's arbitration
// slot, so the copy for the next bus phase is taken before slot()
// zeroes it.
func (s *System) writeRemainder(p *Proc, t int64, op *procOp) {
	c := s.Caches[p.id]
	base := s.cfg.Geometry.Base(s.cfg.Geometry.BlockOf(op.addr))
	for i := int(op.idx) + 1; i < len(op.vals); i++ {
		a := base + addr.Addr(i)
		r := c.Probe(protocol.OpWrite, a)
		if r.Hit {
			c.WriteWord(a, op.vals[i])
			t += int64(s.cfg.Timing.HitCycles)
			continue
		}
		// Write-through: each word is its own bus transaction; issue
		// the next one and resume from its completion.
		rest := *op
		rest.idx = int32(i)
		rest.addr = a
		rest.value = op.vals[i]
		ctx := s.slot(p)
		ctx.op = rest
		ctx.protoOp = protocol.OpWrite
		ctx.pr = r
		s.queueBus(ctx, false)
		return
	}
	s.respond(p, t, procRes{ok: true})
}
