package sim

import (
	"cachesync/internal/cache"
	"cachesync/internal/protocol"
)

// This file implements Section E.4's second purpose of efficient busy
// wait: "relieve a waiting processor of polling the status of a lock,
// allowing it to work while waiting". LockPrefetch issues the lock
// request — the busy-wait register then waits on the processor's
// behalf, arbitrating as an independent requester — while the
// processor keeps executing its "ready section"; LockWait joins the
// result.

// prefetchArbID is the virtual bus-requester identity of processor
// p's busy-wait register.
func (s *System) prefetchArbID(p *Proc) int { return p.id + len(s.Procs) }

// startLockPrefetch begins an asynchronous lock acquisition and
// responds immediately so the processor can keep working.
func (s *System) startLockPrefetch(p *Proc, t int64, op *procOp) {
	if p.plock.armed {
		// Already prefetching (or holding) a lock: a second prefetch
		// is a no-op per the API contract.
		s.respond(p, t+int64(s.cfg.Timing.HitCycles), procRes{ok: true})
		return
	}
	c := s.Caches[p.id]
	r := c.Probe(protocol.OpLock, op.addr)
	t += int64(s.cfg.Timing.HitCycles)
	if r.Hit {
		// Zero-time lock: privilege was already held.
		v, _ := c.ReadWord(op.addr)
		p.plock.armed = true
		p.plock.acquired = true
		p.plock.addr = op.addr
		p.plock.value = v
		s.recordLockAcquired(p, t)
		s.respond(p, t, procRes{ok: true})
		return
	}
	ctx := &s.ctxs[s.prefetchArbID(p)]
	*ctx = opCtx{
		p: p, op: *op, protoOp: protocol.OpLock, pr: r,
		arbID: s.prefetchArbID(p), prefetch: true, start: t, active: true,
	}
	p.plock.armed = true
	p.plock.acquired = false
	p.plock.addr = op.addr
	s.busDirty = true
	s.Buses[s.busOf(s.cfg.Geometry.BlockOf(op.addr))].RequestAt(ctx.arbID, false, t)
	s.Counts.Inc("lock.prefetch")
	// The processor continues immediately: this is the ready section.
	s.respond(p, t, procRes{ok: true})
}

// startLockWait joins a prefetched lock: immediate if already
// acquired, blocking until the busy-wait register wins otherwise.
func (s *System) startLockWait(p *Proc, t int64, op *procOp) {
	if !p.plock.armed {
		// No prefetch outstanding: degrade to a plain lock-read.
		p.opStart = t
		s.startMemOp(p, t, op, protocol.OpLock)
		return
	}
	if p.plock.acquired {
		v := p.plock.value
		p.resetPlock()
		s.Counts.Inc("lock.prefetch-ready")
		s.respond(p, t+int64(s.cfg.Timing.HitCycles), procRes{value: v, ok: true})
		return
	}
	// Block until the prefetch context completes.
	p.plock.waiting = true
	p.status = statusBlocked
}

// resetPlock clears a processor's prefetch state after the lock is
// consumed by LockWait.
func (p *Proc) resetPlock() {
	p.plock.armed = false
	p.plock.acquired = false
	p.plock.waiting = false
	p.plock.addr = 0
	p.plock.value = 0
}

// finishPrefetch completes a prefetched lock acquisition: the value
// is banked, the busy-wait register disarmed, and — if the processor
// is already blocked in LockWait — the processor resumes.
func (s *System) finishPrefetch(ctx *opCtx, t int64) {
	p := ctx.p
	c := s.Caches[p.id]
	v, _ := c.ReadWord(ctx.op.addr)
	p.plock.acquired = true
	p.plock.value = v
	s.Counts.Inc("lock.acquired")
	s.LockLatency.Observe(t - ctx.start)
	s.withdrawLosers(s.cfg.Geometry.BlockOf(ctx.op.addr), ctx.arbID)
	c.BWReg = cache.BusyWaitRegister{}
	if p.plock.waiting {
		val := p.plock.value
		p.resetPlock()
		s.respond(p, t, procRes{value: val, ok: true})
	}
}
