package sim

import (
	"context"
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/protocol"
)

// Program is the direct-execution workload interface: a resumable
// state machine the engine steps inline, with no goroutine or channel
// per processor. Next receives the Result of the previously yielded
// Op (a zero Result on the first call) and returns the next Op; a
// false second return value ends the program. Next runs on the engine
// goroutine, so it may freely touch p (counters, ID, Now) but must
// not block.
//
// Any buffer passed to an Op constructor (WriteBlockOp, IOOp) must
// stay untouched until that Op's Result arrives: the program is
// suspended while the engine consumes the buffer, so in-place reuse
// across calls is safe and allocation-free.
//
// The blocking func(*Proc) API (System.Run/RunContext) remains as a
// compatibility shim layered on the same engine: each blocking
// workload runs on one goroutine and its Proc calls are ferried to
// the engine over a channel pair. Programs and the shim produce
// byte-identical event logs, final machine state, and statistics for
// the same operation sequence — the engine core is shared; only the
// op-delivery mechanism differs.
type Program interface {
	Next(p *Proc, last Result) (Op, bool)
}

// Result is the completed outcome of a Program's previous Op.
type Result struct {
	// Value is the datum produced by the operation: the word read
	// (Read/ReadEx/LockRead/LockWait), or the old value (RMW/RMWMemory).
	Value uint64
	// OK is false only for a failed TryWrite (block stolen).
	OK bool
	// Now is the processor's local clock after the operation.
	Now int64
}

// Op is one processor operation yielded by a Program. Construct Ops
// with the package-level *Op constructors; the zero Op is invalid.
type Op struct{ raw procOp }

// InstrFetchOp loads the instruction word at a (class Instr): on a
// tiered machine it is served by the instruction buffer and the lower
// tier rather than the synchronization bus.
func InstrFetchOp(a addr.Addr) Op {
	return Op{procOp{kind: opMem, op: protocol.OpRead, addr: a, class: interconnect.Instr}}
}

// WithClass returns o tagged with routing class c for tiered
// machines. The lock, RMW, and I/O constructors are Sync already; a
// single-tier machine ignores classes entirely.
func (o Op) WithClass(c interconnect.Class) Op {
	o.raw.class = c
	return o
}

// Class returns o's routing class.
func (o Op) Class() interconnect.Class { return o.raw.class }

// IsRef reports whether o references memory (everything except pure
// compute advances).
func (o Op) IsRef() bool { return o.raw.kind != opCompute && o.raw.kind != opDone }

// ReadOp loads the word at a.
func ReadOp(a addr.Addr) Op {
	return Op{procOp{kind: opMem, op: protocol.OpRead, addr: a}}
}

// ReadExOp loads the word at a with the compiler-declared
// read-for-write-privilege instruction (Feature 5 static form).
func ReadExOp(a addr.Addr) Op {
	return Op{procOp{kind: opMem, op: protocol.OpReadEx, addr: a}}
}

// WriteOp stores v at a.
func WriteOp(a addr.Addr, v uint64) Op {
	return Op{procOp{kind: opMem, op: protocol.OpWrite, addr: a, value: v}}
}

// LockReadOp is the paper's lock operation (Section E.3); the Result
// carries the locked word. Requires a HardwareLock protocol.
func LockReadOp(a addr.Addr) Op {
	return Op{procOp{kind: opMem, op: protocol.OpLock, addr: a, class: interconnect.Sync}}
}

// UnlockWriteOp stores v at a with the unlock line asserted.
func UnlockWriteOp(a addr.Addr, v uint64) Op {
	return Op{procOp{kind: opMem, op: protocol.OpUnlock, addr: a, value: v, class: interconnect.Sync}}
}

// LockPrefetchOp requests the lock at a and completes immediately
// (Section E.4's ready section); join with LockWaitOp.
func LockPrefetchOp(a addr.Addr) Op {
	return Op{procOp{kind: opLockPrefetch, op: protocol.OpLock, addr: a, class: interconnect.Sync}}
}

// LockWaitOp joins a prefetched lock (plain LockRead without a prior
// prefetch); the Result carries the locked word.
func LockWaitOp(a addr.Addr) Op {
	return Op{procOp{kind: opLockWait, op: protocol.OpLock, addr: a, class: interconnect.Sync}}
}

// RMWOp atomically applies f to the word at a, cache-held (Feature 6
// method 2); the Result carries the old value.
func RMWOp(a addr.Addr, f func(uint64) uint64) Op {
	return Op{procOp{kind: opRMW, addr: a, f: f, class: interconnect.Sync}}
}

// RMWMemoryOp atomically applies f to the word at a while holding the
// memory module (Feature 6 method 1); the Result carries the old value.
func RMWMemoryOp(a addr.Addr, f func(uint64) uint64) Op {
	return Op{procOp{kind: opRMWMem, addr: a, f: f, class: interconnect.Sync}}
}

// TryWriteOp stores v at a only if the block is still cached; the
// Result's OK reports success (Feature 6 method 3).
func TryWriteOp(a addr.Addr, v uint64) Op {
	return Op{procOp{kind: opTryWrite, addr: a, value: v, class: interconnect.Sync}}
}

// WriteBlockOp overwrites the whole block containing a with vals. The
// engine reads vals until the op completes; see Program for the
// buffer-reuse contract.
func WriteBlockOp(a addr.Addr, vals []uint64) Op {
	return Op{procOp{kind: opBlockWrite, addr: a, vals: vals}}
}

// ComputeOp advances the processor's local clock by n cycles of
// bus-free work. n <= 0 completes in zero time; programs porting
// blocking code should skip the op instead (as Proc.Compute does) to
// keep op streams identical.
func ComputeOp(n int64) Op {
	return Op{procOp{kind: opCompute, value: uint64(n)}}
}

// IOOp issues an I/O-processor transfer against the block containing
// a (Section E.2); vals is the IOInput data.
func IOOp(kind ioKind, a addr.Addr, vals []uint64) Op {
	return Op{procOp{kind: opIO, io: kind, addr: a, vals: vals, class: interconnect.Sync}}
}

// RunPrograms executes one Program per processor on the direct
// (goroutine-free) path; progs[i] runs on processor i, nil entries
// idle. It returns once every program has finished, or an error on
// deadlock or cycle overrun.
func (s *System) RunPrograms(progs []Program) error {
	return s.RunProgramsContext(context.Background(), progs)
}

// RunProgramsContext is RunPrograms with cancellation: ctx expiry is
// checked before every event, so the loop aborts within one event of
// the deadline — no goroutines exist on this path, so nothing needs
// unwinding.
func (s *System) RunProgramsContext(ctx context.Context, progs []Program) error {
	if s.started {
		return fmt.Errorf("sim: a System runs exactly once; build a fresh one")
	}
	s.started = true
	for i, p := range s.Procs {
		if i < len(progs) && progs[i] != nil {
			p.prog = progs[i]
			p.pending = p.firstOp()
		} else {
			p.pending = procOp{kind: opDone} // no program: idle
		}
		p.status = statusReady
		s.ready.push(p.id, 0)
	}
	return s.run(ctx)
}
