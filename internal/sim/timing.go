package sim

import "cachesync/internal/bus"

// Timing is the cycle-cost model of the memory system. All costs are
// in bus cycles; the engine prices every transaction from these
// parameters so benches can report both transaction counts and cycles.
type Timing struct {
	HitCycles    int // processor access satisfied by the cache
	ArbCycles    int // bus arbitration
	AddrCycles   int // address cycle of a data-carrying transaction
	WordCycles   int // per bus-wide word transferred
	MemCycles    int // main-memory access latency
	InvCycles    int // one-cycle invalidate/unlock signal (Feature 4)
	SrcArbCycles int // arbitration among multiple potential sources (Feature 8 "ARB")

	// ConcurrentFlush: the bus and memory can absorb a flush
	// concurrently with a cache-to-cache transfer at cache speed
	// (Feature 7 discussion). When false, a snoop-time flush adds a
	// memory access to the transfer.
	ConcurrentFlush bool

	// Directory-system costs (partial broadcast, Censier-Feautrier):
	// the directory lookup on every request, and each point-to-point
	// consistency message to a recorded holder. Full-broadcast systems
	// pay neither — their snoop is one parallel operation.
	DirLookupCycles int
	DirMsgCycles    int
}

// DefaultTiming returns the cost model used throughout the benches:
// single-cycle cache hits, a four-cycle memory access, one-cycle
// invalidation signals.
func DefaultTiming() Timing {
	return Timing{
		HitCycles:       1,
		ArbCycles:       1,
		AddrCycles:      1,
		WordCycles:      1,
		MemCycles:       4,
		InvCycles:       1,
		SrcArbCycles:    2,
		ConcurrentFlush: true,
		DirLookupCycles: 1,
		DirMsgCycles:    2,
	}
}

// TxnCost prices a completed transaction. words is the number of
// data words that crossed the bus (already adjusted for transfer
// units); memSupplied reports whether main memory provided the data.
func (tm Timing) TxnCost(t *bus.Transaction, words int, memSupplied bool) int64 {
	c := int64(tm.ArbCycles)
	switch t.Cmd {
	case bus.Read, bus.ReadX, bus.IORead:
		if t.Lines.Locked {
			// Denied by a lock: the address went out, nothing moved.
			return c + int64(tm.AddrCycles)
		}
		c += int64(tm.AddrCycles)
		if memSupplied {
			c += int64(tm.MemCycles)
			if t.Flushed {
				// The holder had to write the block back before
				// memory could supply it (the Synapse retry).
				c += int64(tm.MemCycles)
			}
		} else {
			if len(t.Suppliers) > 1 {
				c += int64(tm.SrcArbCycles)
			}
			if t.Flushed && !tm.ConcurrentFlush {
				c += int64(tm.MemCycles)
			}
		}
		c += int64(words * tm.WordCycles)
	case bus.Upgrade, bus.WriteNoFetch, bus.Unlock:
		if t.Lines.Locked {
			return c + int64(tm.InvCycles)
		}
		c += int64(tm.InvCycles)
	case bus.WriteWord:
		// A full write through to main memory.
		c += int64(tm.AddrCycles + tm.MemCycles)
	case bus.UpdateWord:
		// Cache-speed word broadcast; a concurrent memory update
		// (Firefly) is absorbed.
		c += int64(tm.AddrCycles + tm.WordCycles)
	case bus.Flush, bus.IOWrite:
		c += int64(tm.AddrCycles + words*tm.WordCycles)
	}
	return c
}
