package sim

import (
	"errors"
	"strings"
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/protocol"
)

// fakeLower records routed references and serves them from a flat map
// with a fixed per-access cost.
type fakeLower struct {
	mem  map[addr.Addr]uint64
	refs []LowerRef
	cost int64
	err  error
}

func (f *fakeLower) LowerAccess(ref LowerRef) (int64, uint64, error) {
	if f.err != nil {
		return 0, 0, f.err
	}
	f.refs = append(f.refs, ref)
	if f.mem == nil {
		f.mem = make(map[addr.Addr]uint64)
	}
	var v uint64
	switch ref.Op {
	case protocol.OpRead, protocol.OpReadEx:
		v = f.mem[ref.Addr]
	case protocol.OpWrite:
		f.mem[ref.Addr] = ref.Value
	case protocol.OpWriteBlock:
		for i, w := range ref.Vals {
			f.mem[ref.Addr+addr.Addr(i)] = w
		}
	}
	return ref.Now + f.cost, v, nil
}

func TestRouteByClass(t *testing.T) {
	s := coreSystem(2)
	lt := &fakeLower{cost: 5}
	s.AttachLower(lt, true)
	run(t, s, []func(*Proc){
		func(p *Proc) {
			p.WriteClass(100, 7, interconnect.Data)
			if got := p.ReadClass(100, interconnect.Data); got != 7 {
				t.Errorf("data read = %d, want 7", got)
			}
			p.InstrFetch(200)
			p.WriteClass(0, 1, interconnect.Sync) // sync: coherent bus path
			if got := p.ReadClass(0, interconnect.Sync); got != 1 {
				t.Errorf("sync read = %d, want 1", got)
			}
		},
		func(p *Proc) {
			if got := p.ReadClass(0, interconnect.Sync); got > 1 {
				t.Errorf("sync read = %d, want 0 or 1", got)
			}
		},
	})
	st := s.Stats()
	if got := st.Get("route.data"); got != 2 {
		t.Errorf("route.data = %d, want 2", got)
	}
	if got := st.Get("route.instr"); got != 1 {
		t.Errorf("route.instr = %d, want 1", got)
	}
	if got := st.Get("route.sync"); got != 3 {
		t.Errorf("route.sync = %d, want 3", got)
	}
	if len(lt.refs) != 3 {
		t.Fatalf("lower tier saw %d refs, want 3", len(lt.refs))
	}
	// Sync traffic must not have reached the lower tier.
	for _, r := range lt.refs {
		if r.Class == interconnect.Sync {
			t.Errorf("sync reference leaked to the lower tier: %+v", r)
		}
	}
}

func TestRouteSyncDefaultsOnLockOps(t *testing.T) {
	s := coreSystem(2)
	lt := &fakeLower{cost: 5}
	s.AttachLower(lt, true)
	run(t, s, []func(*Proc){
		func(p *Proc) {
			v := p.LockRead(0)
			p.UnlockWrite(0, v+1)
			p.RMW(4, func(v uint64) uint64 { return v + 1 })
		},
		nil,
	})
	st := s.Stats()
	if got := st.Get("route.sync"); got != 3 {
		t.Errorf("route.sync = %d, want 3", got)
	}
	if len(lt.refs) != 0 {
		t.Errorf("lower tier saw %d refs, want 0", len(lt.refs))
	}
}

func TestUnclassifiedRejectedOnTieredMachine(t *testing.T) {
	s := coreSystem(1)
	s.AttachLower(&fakeLower{}, true)
	err := s.Run([]func(*Proc){func(p *Proc) {
		p.Write(10, 1) // no class
	}})
	if err == nil {
		t.Fatal("unclassified reference on a tiered machine did not error")
	}
	if !strings.Contains(err.Error(), "unclassified") {
		t.Errorf("error %q does not mention the unclassified reference", err)
	}
}

func TestUnclassifiedRejectedDirectPath(t *testing.T) {
	s := coreSystem(1)
	s.AttachLower(&fakeLower{}, true)
	prog := progFunc(func(p *Proc, last Result) (Op, bool) {
		if last.Now == 0 && last.Value == 0 && !last.OK {
			return ReadOp(10), true // no class
		}
		return Op{}, false
	})
	if err := s.RunPrograms([]Program{prog}); err == nil {
		t.Fatal("unclassified direct-path reference did not error")
	}
}

type progFunc func(p *Proc, last Result) (Op, bool)

func (f progFunc) Next(p *Proc, last Result) (Op, bool) { return f(p, last) }

func TestLowerTierErrorAborts(t *testing.T) {
	s := coreSystem(2)
	sentinel := errors.New("bank on fire")
	s.AttachLower(&fakeLower{err: sentinel}, true)
	err := s.Run([]func(*Proc){
		func(p *Proc) { p.ReadClass(10, interconnect.Data) },
		func(p *Proc) { p.Compute(100) },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("run error = %v, want wrapped sentinel", err)
	}
}

func TestLowerCompletionAdvancesClock(t *testing.T) {
	s := coreSystem(1)
	s.AttachLower(&fakeLower{cost: 1000}, true)
	run(t, s, []func(*Proc){func(p *Proc) {
		p.ReadClass(10, interconnect.Data)
	}})
	if c := s.Clock(); c < 1000 {
		t.Errorf("clock = %d, want >= 1000 (lower-tier completion time)", c)
	}
}

func TestAttachLowerAfterStartPanics(t *testing.T) {
	s := coreSystem(1)
	run(t, s, []func(*Proc){func(p *Proc) { p.Write(0, 1) }})
	defer func() {
		if recover() == nil {
			t.Error("AttachLower after start did not panic")
		}
	}()
	s.AttachLower(&fakeLower{}, true)
}

func TestClassesInertWithoutLowerTier(t *testing.T) {
	runOne := func(classify bool) (int64, map[string]int64) {
		s := coreSystem(2)
		run(t, s, []func(*Proc){
			func(p *Proc) {
				for i := 0; i < 20; i++ {
					a := addr.Addr(i % 8)
					if classify {
						p.WriteClass(a, uint64(i), interconnect.Data)
						p.ReadClass(a, interconnect.Sync)
					} else {
						p.Write(a, uint64(i))
						p.Read(a)
					}
				}
			},
			func(p *Proc) {
				for i := 0; i < 20; i++ {
					if classify {
						p.ReadClass(addr.Addr(i%8), interconnect.Instr)
					} else {
						p.Read(addr.Addr(i % 8))
					}
				}
			},
		})
		return s.Clock(), s.Stats().Snapshot()
	}
	c1, s1 := runOne(false)
	c2, s2 := runOne(true)
	if c1 != c2 {
		t.Errorf("clock differs with classes: %d vs %d", c1, c2)
	}
	if len(s1) != len(s2) {
		t.Fatalf("stats sizes differ: %d vs %d", len(s1), len(s2))
	}
	for k, v := range s1 {
		if s2[k] != v {
			t.Errorf("counter %s: %d (unclassified) vs %d (classified)", k, v, s2[k])
		}
	}
}
