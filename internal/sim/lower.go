package sim

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/protocol"
)

// LowerRef is one reference the engine routes past the coherence bus
// to the machine's lower tier (Figure 11: instructions and plain data
// go to the crossbar/banks, not the synchronization bus).
type LowerRef struct {
	Proc  int
	Class interconnect.Class
	Op    protocol.Op // OpRead, OpReadEx, OpWrite, or OpWriteBlock
	Addr  addr.Addr
	Value uint64   // OpWrite payload
	Vals  []uint64 // OpWriteBlock payload; valid only during the call
	Now   int64    // issue time on the processor's clock
	Start int64    // first-issue time of the whole operation (latency stats)
}

// LowerTier serves the references the engine classifies off the
// synchronization tier. LowerAccess is called inline from the event
// loop in deterministic event order; it returns the completion time
// (the engine clamps it to at least the issue time) and, for reads,
// the value. Errors abort the run.
type LowerTier interface {
	LowerAccess(ref LowerRef) (done int64, value uint64, err error)
}

// AttachLower connects a lower tier, turning the machine into a
// two-tier system: Sync-class references keep using the coherent
// cache/bus path and Instr and Data classes route to lt. With strict,
// unclassified references become errors (a tiered machine cannot
// guess a reference's tier); without it they stay on the coherent
// path, for machines whose workloads split traffic by hand. Call
// before the system starts.
func (s *System) AttachLower(lt LowerTier, strict bool) {
	if s.started {
		panic("sim: AttachLower after the system started")
	}
	s.lower = lt
	s.strictClass = strict
}

// countRoute charges one routed reference through a cached handle.
func (s *System) countRoute(h **int64, name string) {
	if *h == nil {
		*h = s.Counts.Handle(name)
	}
	**h++
}

// routeLower dispatches op by class when a lower tier is attached.
// Sync-class references fall through (handled=false) to the normal
// coherent path after being counted; Instr/Data complete against the
// lower tier here. Unclassified references are rejected — silently
// routing them would let a mis-tagged workload produce plausible but
// wrong traffic numbers.
func (s *System) routeLower(p *Proc, t int64, op *procOp) (handled bool, err error) {
	switch op.class {
	case interconnect.Sync:
		s.countRoute(&s.routeSyncH, "route.sync")
		return false, nil
	case interconnect.Instr:
		if op.kind != opMem || op.op != protocol.OpRead {
			return false, fmt.Errorf("sim: proc %d: instruction-class operation at addr %d must be a plain read", p.id, op.addr)
		}
		s.countRoute(&s.routeInstrH, "route.instr")
		return true, s.serveLower(p, t, LowerRef{
			Proc: p.id, Class: interconnect.Instr, Op: protocol.OpRead,
			Addr: op.addr, Now: t, Start: t,
		})
	case interconnect.Data:
		s.countRoute(&s.routeDataH, "route.data")
		ref := LowerRef{Proc: p.id, Class: interconnect.Data, Addr: op.addr, Now: t, Start: t}
		switch {
		case op.kind == opBlockWrite:
			ref.Op = protocol.OpWriteBlock
			ref.Addr = s.cfg.Geometry.Base(s.cfg.Geometry.BlockOf(op.addr))
			ref.Vals = op.vals
		case op.kind == opMem && (op.op == protocol.OpRead || op.op == protocol.OpReadEx):
			ref.Op = protocol.OpRead
		case op.kind == opMem && op.op == protocol.OpWrite:
			ref.Op = protocol.OpWrite
			ref.Value = op.value
		default:
			return false, fmt.Errorf("sim: proc %d: data-class operation at addr %d is not a plain read/write", p.id, op.addr)
		}
		return true, s.serveLower(p, t, ref)
	default:
		if !s.strictClass {
			return false, nil
		}
		return false, fmt.Errorf("sim: proc %d: unclassified reference at addr %d on a tiered machine; classify it sync, instr, or data", p.id, op.addr)
	}
}

// serveLower runs one reference against the lower tier and completes
// the processor's operation at the returned time.
func (s *System) serveLower(p *Proc, t int64, ref LowerRef) error {
	done, v, err := s.lower.LowerAccess(ref)
	if err != nil {
		return fmt.Errorf("sim: proc %d: lower tier failed at addr %d: %w", p.id, ref.Addr, err)
	}
	if done < t {
		done = t
	}
	s.respond(p, done, procRes{value: v, ok: true})
	return nil
}
