package sim

import (
	"fmt"
	"io"

	"cachesync/internal/bus"
)

// EventLog records every completed bus transaction with its timing,
// for debugging and for rendering runs (cachesim -log). Attach with
// System.AttachLog before Run; logging is off by default and costs
// nothing when absent.
type EventLog struct {
	Entries []LogEntry
	limit   int
}

// LogEntry is one completed bus transaction.
type LogEntry struct {
	When      int64
	Bus       int
	Cmd       bus.Cmd
	Block     uint64
	Requester int
	Lines     bus.Lines
	Cost      int64
}

// String renders the entry as one trace line.
func (e LogEntry) String() string {
	lines := ""
	if e.Lines.Hit {
		lines += " hit"
	}
	if e.Lines.SourceHit {
		lines += " src"
	}
	if e.Lines.Dirty {
		lines += " dirty"
	}
	if e.Lines.Locked {
		lines += " LOCKED"
	}
	return fmt.Sprintf("t=%-8d bus%d %-12s blk=%-6d req=%-3d cost=%-4d%s",
		e.When, e.Bus, e.Cmd, e.Block, e.Requester, e.Cost, lines)
}

// AttachLog enables transaction logging, keeping at most limit
// entries (0 means unlimited). It returns the log.
func (s *System) AttachLog(limit int) *EventLog {
	s.log = &EventLog{limit: limit}
	return s.log
}

func (s *System) logTxn(busIdx int, t *bus.Transaction, when, cost int64) {
	if s.log == nil {
		return
	}
	if s.log.limit > 0 && len(s.log.Entries) >= s.log.limit {
		return
	}
	s.log.Entries = append(s.log.Entries, LogEntry{
		When: when, Bus: busIdx, Cmd: t.Cmd, Block: uint64(t.Block),
		Requester: t.Requester, Lines: t.Lines, Cost: cost,
	})
}

// Dump writes the log to w, one entry per line.
func (l *EventLog) Dump(w io.Writer) error {
	for _, e := range l.Entries {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
