package sim

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/protocol"
	"cachesync/internal/stats"
)

// opKind distinguishes the primitive operations a processor can issue
// to the engine.
type opKind uint8

const (
	opMem          opKind = iota // a protocol.Op against the cache
	opCompute                    // local work for N cycles, no memory traffic
	opRMW                        // atomic read-modify-write, cache-held (Feature 6 method 2)
	opRMWMem                     // atomic read-modify-write held at memory (method 1)
	opTryWrite                   // write that fails if the block was stolen (method 3)
	opBlockWrite                 // whole-block write (Feature 9 when supported)
	opIO                         // I/O processor transfer (Section E.2)
	opLockPrefetch               // request a lock but keep working (Section E.4)
	opLockWait                   // join a previously prefetched lock
	opDone                       // workload finished
)

// ioKind selects the I/O operation for opIO.
type ioKind uint8

const (
	// IOInput writes a block to memory, invalidating cached copies.
	IOInput ioKind = iota
	// IOPageOut fetches a block with write privilege (invalidating).
	IOPageOut
	// IOOutput reads a block without disturbing source status.
	IOOutput
)

// procOp is one request from a processor goroutine to the engine. It
// is copied on every simulated operation (Program.Next returns it by
// value), so it is kept narrow: opCompute's cycle count shares the
// value field, and the block-write progress index is 32-bit.
type procOp struct {
	kind  opKind
	op    protocol.Op
	io    ioKind
	class interconnect.Class // routing class on a tiered machine
	idx   int32              // progress index of a lowered block write
	addr  addr.Addr
	value uint64   // written word, or opCompute cycles
	vals  []uint64 // opBlockWrite
	f     func(uint64) uint64
}

// procRes is the engine's reply unblocking the processor goroutine.
type procRes struct {
	value    uint64
	ok       bool
	now      int64
	canceled bool // the run was aborted; the workload must unwind
}

// simCancelPanic is the sentinel Proc.do panics with when the engine
// cancels the run; the workload-goroutine wrapper recovers exactly
// this type, so workloads unwind without cooperating.
type simCancelPanic struct{}

// procStatus tracks where a processor is in the engine's event loop.
type procStatus uint8

const (
	statusReady   procStatus = iota // has a pending op, scheduled in the ready heap
	statusBlocked                   // op in flight on the bus
	statusWaiting                   // parked in busy wait
	statusDone
)

// Proc is the processor-side handle a workload runs against. On the
// direct path the engine pulls ops from prog inline; on the shim path
// the blocking methods ferry ops over the channel pair, and the
// engine lock-steps every workload goroutine deterministically.
type Proc struct {
	id  int
	sys *System

	// prog, when set, is the direct-execution workload; the channels
	// stay nil. Otherwise RunContext creates the channels and runs the
	// blocking workload on its own goroutine.
	prog  Program
	reqCh chan procOp
	resCh chan procRes

	// engine-side state
	status  procStatus
	pending procOp
	now     int64
	opStart int64 // issue time of the in-flight op (latency stats)

	// plock is the state of a prefetched lock (Section E.4: "a
	// processor can work while waiting if it requests the lock when
	// ready but still has work to do").
	plock struct {
		armed    bool // a prefetch is outstanding or acquired
		acquired bool
		waiting  bool // the processor blocked in LockWait
		addr     addr.Addr
		value    uint64
	}

	Counts stats.Counters
}

// ID returns the processor's index.
func (p *Proc) ID() int { return p.id }

// Now returns the processor's local view of the simulation clock, in
// cycles, as of its last completed operation.
func (p *Proc) Now() int64 { return p.now }

func (p *Proc) do(op procOp) procRes {
	p.reqCh <- op
	r := <-p.resCh
	if r.canceled {
		panic(simCancelPanic{})
	}
	return r
}

// firstOp pulls the processor's first operation: Program.Next with a
// zero Result on the direct path, the workload goroutine's first
// channel send on the shim path.
func (p *Proc) firstOp() procOp {
	if p.prog != nil {
		op, ok := p.prog.Next(p, Result{})
		if !ok {
			return procOp{kind: opDone}
		}
		return op.raw
	}
	return <-p.reqCh
}

// nextOp delivers the completed result and pulls the next operation —
// an inline Program.Next call on the direct path, a resume/park
// channel round-trip on the shim path.
func (p *Proc) nextOp(res procRes) procOp {
	if p.prog != nil {
		op, ok := p.prog.Next(p, Result{Value: res.value, OK: res.ok, Now: res.now})
		if !ok {
			return procOp{kind: opDone}
		}
		return op.raw
	}
	p.resCh <- res
	return <-p.reqCh
}

// Read loads the word at a.
func (p *Proc) Read(a addr.Addr) uint64 {
	return p.do(procOp{kind: opMem, op: protocol.OpRead, addr: a}).value
}

// ReadEx loads the word at a with the compiler-declared
// read-for-write-privilege instruction (Feature 5 static form). Under
// protocols without it, it behaves as Read.
func (p *Proc) ReadEx(a addr.Addr) uint64 {
	return p.do(procOp{kind: opMem, op: protocol.OpReadEx, addr: a}).value
}

// Write stores v at a.
func (p *Proc) Write(a addr.Addr, v uint64) {
	p.do(procOp{kind: opMem, op: protocol.OpWrite, addr: a, value: v})
}

// ReadClass is Read tagged with a routing class for tiered machines;
// on a single-tier machine the class is inert.
func (p *Proc) ReadClass(a addr.Addr, c interconnect.Class) uint64 {
	return p.do(procOp{kind: opMem, op: protocol.OpRead, addr: a, class: c}).value
}

// ReadExClass is ReadEx tagged with a routing class.
func (p *Proc) ReadExClass(a addr.Addr, c interconnect.Class) uint64 {
	return p.do(procOp{kind: opMem, op: protocol.OpReadEx, addr: a, class: c}).value
}

// WriteClass is Write tagged with a routing class.
func (p *Proc) WriteClass(a addr.Addr, v uint64, c interconnect.Class) {
	p.do(procOp{kind: opMem, op: protocol.OpWrite, addr: a, value: v, class: c})
}

// InstrFetch loads the instruction word at a (class Instr): on a
// tiered machine it is served by the instruction buffer and the lower
// tier rather than the synchronization bus.
func (p *Proc) InstrFetch(a addr.Addr) uint64 {
	return p.do(procOp{kind: opMem, op: protocol.OpRead, addr: a, class: interconnect.Instr}).value
}

// LockRead performs the paper's lock operation (Section E.3): a read
// of the word at a with the processor lock line asserted. It blocks —
// busy-waiting via the busy-wait register, with no bus retries —
// until the lock is acquired, and returns the word's value. Only
// protocols with HardwareLock support it.
func (p *Proc) LockRead(a addr.Addr) uint64 {
	if !p.sys.proto.Features().HardwareLock {
		panic(fmt.Sprintf("sim: protocol %q has no hardware lock; lower locking via syncprim", p.sys.proto.Name()))
	}
	return p.do(procOp{kind: opMem, op: protocol.OpLock, addr: a, class: interconnect.Sync}).value
}

// UnlockWrite performs the paper's unlock operation: a store of v at
// a with the unlock line asserted (Figure 8).
func (p *Proc) UnlockWrite(a addr.Addr, v uint64) {
	p.do(procOp{kind: opMem, op: protocol.OpUnlock, addr: a, value: v, class: interconnect.Sync})
}

// LockPrefetch requests the lock at a and returns immediately so the
// processor can keep working — the paper's "ready section" (Section
// E.4): the busy-wait register waits while the processor computes.
// Follow with LockWait to join the lock. A second prefetch while one
// is outstanding is a no-op.
func (p *Proc) LockPrefetch(a addr.Addr) {
	if !p.sys.proto.Features().HardwareLock {
		panic(fmt.Sprintf("sim: protocol %q has no hardware lock", p.sys.proto.Name()))
	}
	p.do(procOp{kind: opLockPrefetch, op: protocol.OpLock, addr: a, class: interconnect.Sync})
}

// LockWait blocks until the lock requested by LockPrefetch is held
// and returns the locked word. Without a prior prefetch it behaves as
// LockRead.
func (p *Proc) LockWait(a addr.Addr) uint64 {
	if !p.sys.proto.Features().HardwareLock {
		panic(fmt.Sprintf("sim: protocol %q has no hardware lock", p.sys.proto.Name()))
	}
	return p.do(procOp{kind: opLockWait, op: protocol.OpLock, addr: a, class: interconnect.Sync}).value
}

// RMW atomically applies f to the word at a and returns the old
// value. The block is fetched with write privilege and the cache held
// for the duration (Feature 6, method 2).
func (p *Proc) RMW(a addr.Addr, f func(uint64) uint64) uint64 {
	return p.do(procOp{kind: opRMW, addr: a, f: f, class: interconnect.Sync}).value
}

// RMWMemory atomically applies f to the word at a while holding the
// memory module (Feature 6, method 1: Rudolph-Segall). The caches are
// bypassed; cached copies are invalidated or updated by the write
// broadcast.
func (p *Proc) RMWMemory(a addr.Addr, f func(uint64) uint64) uint64 {
	return p.do(procOp{kind: opRMWMem, addr: a, f: f, class: interconnect.Sync}).value
}

// TryWrite stores v at a only if the cache still holds the block; it
// reports success. It is the abort-on-steal write of Feature 6's
// method 3: a miss means the block was stolen between the read and
// the write, and the instruction must be aborted and retried.
func (p *Proc) TryWrite(a addr.Addr, v uint64) bool {
	return p.do(procOp{kind: opTryWrite, addr: a, value: v, class: interconnect.Sync}).ok
}

// WriteBlock overwrites the whole block containing a with vals
// (len == block words). Protocols with Feature 9 skip the fetch.
func (p *Proc) WriteBlock(a addr.Addr, vals []uint64) {
	cp := make([]uint64, len(vals))
	copy(cp, vals)
	p.do(procOp{kind: opBlockWrite, addr: a, vals: cp})
}

// WriteBlockClass is WriteBlock tagged with a routing class.
func (p *Proc) WriteBlockClass(a addr.Addr, vals []uint64, c interconnect.Class) {
	cp := make([]uint64, len(vals))
	copy(cp, vals)
	p.do(procOp{kind: opBlockWrite, addr: a, vals: cp, class: c})
}

// Compute advances the processor's local clock by n cycles of
// bus-free work.
func (p *Proc) Compute(n int64) {
	if n <= 0 {
		return
	}
	p.do(procOp{kind: opCompute, value: uint64(n)})
}

// IO issues an I/O-processor transfer against the block containing a
// (Section E.2). The data for IOInput is vals.
func (p *Proc) IO(kind ioKind, a addr.Addr, vals []uint64) {
	var cp []uint64
	if vals != nil {
		cp = make([]uint64, len(vals))
		copy(cp, vals)
	}
	p.do(procOp{kind: opIO, io: kind, addr: a, vals: cp, class: interconnect.Sync})
}
