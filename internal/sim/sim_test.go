package sim

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/core"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"

	_ "cachesync/internal/protocol/all"
)

func coreSystem(procs int) *System {
	cfg := DefaultConfig(core.Protocol{})
	cfg.Procs = procs
	return New(cfg)
}

func run(t *testing.T, s *System, ws []func(*Proc)) {
	t.Helper()
	if err := s.Run(ws); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcReadWrite(t *testing.T) {
	s := coreSystem(1)
	var got uint64
	run(t, s, []func(*Proc){func(p *Proc) {
		p.Write(10, 42)
		got = p.Read(10)
	}})
	if got != 42 {
		t.Errorf("read-after-write = %d, want 42", got)
	}
	if s.Clock() <= 0 {
		t.Error("clock did not advance")
	}
}

func TestReadMissUnsharedGetsWritePrivilege(t *testing.T) {
	// Figure 1 end-to-end: read miss with no other copy -> W.S.C, so
	// the following write needs no bus access.
	s := coreSystem(2)
	run(t, s, []func(*Proc){func(p *Proc) {
		p.Read(0)
		if st := s.Caches[0].State(0); st != core.WSC {
			t.Errorf("state after unshared read = %v, want W.S.C", s.proto.StateName(st))
		}
		before := s.Bus.Counts.Total("bus.")
		p.Write(0, 1)
		if after := s.Bus.Counts.Total("bus."); after != before {
			t.Errorf("write after unshared read used the bus (%d -> %d txns)", before, after)
		}
	}, nil})
}

func TestProducerConsumerValueFlows(t *testing.T) {
	s := coreSystem(2)
	var got uint64
	run(t, s, []func(*Proc){
		func(p *Proc) { p.Write(4, 99) },
		func(p *Proc) {
			p.Compute(500) // let the producer go first
			got = p.Read(4)
		},
	})
	if got != 99 {
		t.Errorf("consumer read %d, want 99", got)
	}
	// The consumer's fetch must have come cache-to-cache from the
	// producer (the source), dirty status attached.
	if st := s.Caches[1].State(1); st != core.RSD {
		t.Errorf("consumer state = %v, want R.S.D", s.proto.StateName(st))
	}
	if st := s.Caches[0].State(1); st != core.R {
		t.Errorf("producer state = %v, want R (source transferred)", s.proto.StateName(st))
	}
}

func TestLockExclusionAndCounter(t *testing.T) {
	// N processors increment a counter under the cache lock; the total
	// must be exact.
	const procs, iters = 4, 25
	s := coreSystem(procs)
	lockAddr := addr.Addr(0) // word 0 of block 0: the atom's first block
	ws := make([]func(*Proc), procs)
	for i := range ws {
		ws[i] = func(p *Proc) {
			for k := 0; k < iters; k++ {
				v := p.LockRead(lockAddr)
				p.Write(1, v) // scribble inside the locked atom
				p.UnlockWrite(lockAddr, v+1)
			}
		}
	}
	run(t, s, ws)
	var final uint64
	for _, c := range s.Caches {
		if v, ok := c.ReadWord(lockAddr); ok {
			final = v
		}
	}
	if final != procs*iters {
		t.Errorf("counter = %d, want %d", final, procs*iters)
	}
	if got := s.Counts.Get("lock.acquired"); got != procs*iters {
		t.Errorf("lock.acquired = %d, want %d", got, procs*iters)
	}
}

func TestBusyWaitNoRetries(t *testing.T) {
	// Section E.4's first purpose: no unsuccessful retries on the bus.
	// Each lock acquisition should cost at most one ReadX/Upgrade, no
	// matter how long the wait.
	const procs, iters = 4, 10
	s := coreSystem(procs)
	ws := make([]func(*Proc), procs)
	for i := range ws {
		ws[i] = func(p *Proc) {
			for k := 0; k < iters; k++ {
				v := p.LockRead(0)
				p.Compute(50) // long critical section
				p.UnlockWrite(0, v+1)
			}
		}
	}
	run(t, s, ws)
	acquired := s.Counts.Get("lock.acquired")
	attempts := s.Bus.Counts.Get("bus.readx") + s.Bus.Counts.Get("bus.upgrade")
	// Each acquisition needs at most one bus fetch attempt plus the
	// denied first attempt that armed the busy-wait register.
	if attempts > 2*acquired {
		t.Errorf("%d lock bus attempts for %d acquisitions: busy wait is retrying on the bus", attempts, acquired)
	}
	if s.Counts.Get("lock.broadcast") == 0 {
		t.Error("no unlock broadcasts despite contention")
	}
}

func TestDeterminism(t *testing.T) {
	build := func() (int64, map[string]int64) {
		s := coreSystem(3)
		ws := make([]func(*Proc), 3)
		for i := range ws {
			i := i
			ws[i] = func(p *Proc) {
				for k := 0; k < 20; k++ {
					a := addr.Addr((k*7 + i*13) % 64)
					p.Write(a, uint64(k))
					p.Read(addr.Addr((k * 3) % 64))
					if k%5 == 0 {
						v := p.LockRead(128)
						p.UnlockWrite(128, v+1)
					}
				}
			}
		}
		if err := s.Run(ws); err != nil {
			t.Fatal(err)
		}
		return s.Clock(), s.Stats().Snapshot()
	}
	c1, s1 := build()
	c2, s2 := build()
	if c1 != c2 {
		t.Fatalf("clocks differ: %d vs %d", c1, c2)
	}
	for k, v := range s1 {
		if s2[k] != v {
			t.Errorf("counter %s differs: %d vs %d", k, v, s2[k])
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := coreSystem(2)
	err := s.Run([]func(*Proc){
		func(p *Proc) {
			p.LockRead(0)
			// Never unlocks.
		},
		func(p *Proc) {
			p.Compute(100)
			p.LockRead(0) // waits forever
		},
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestEvictionWritebackPreservesData(t *testing.T) {
	cfg := DefaultConfig(core.Protocol{})
	cfg.Procs = 1
	cfg.Cache = cache.Config{Sets: 1, Ways: 2} // tiny cache forces evictions
	s := New(cfg)
	run(t, s, []func(*Proc){func(p *Proc) {
		p.Write(0, 11)  // block 0
		p.Write(4, 22)  // block 1
		p.Write(8, 33)  // block 2: evicts block 0 (dirty)
		p.Write(12, 44) // block 3: evicts block 1
		if v := p.Read(0); v != 11 {
			t.Errorf("after eviction, word 0 = %d, want 11", v)
		}
	}})
	if s.Counts.Get("evict.flush") == 0 {
		t.Error("no eviction flushes recorded")
	}
}

func TestLockPurgeToMemory(t *testing.T) {
	// Section E.3 "Two Concerns": purging a locked block writes a
	// lock bit to memory; the lock survives, other requesters are
	// denied, and the owner's unlock reclaims and releases it.
	cfg := DefaultConfig(core.Protocol{})
	cfg.Procs = 2
	cfg.Cache = cache.Config{Sets: 1, Ways: 1}
	s := New(cfg)
	run(t, s, []func(*Proc){
		func(p *Proc) {
			p.LockRead(0)  // lock block 0
			p.Write(4, 1)  // block 1 evicts the locked block -> lock purge
			p.Compute(200) // hold the lock while P1 tries
			p.UnlockWrite(0, 7)
		},
		func(p *Proc) {
			p.Compute(60)
			v := p.LockRead(0) // must be denied by the memory lock tag, then wait
			if v != 7 {
				t.Errorf("waiter read %d, want 7", v)
			}
			p.UnlockWrite(0, 8)
		},
	})
	if s.Counts.Get("evict.lockpurge") == 0 {
		t.Error("no lock purge recorded")
	}
	if s.Counts.Get("lock.reclaim") == 0 {
		t.Error("owner did not reclaim the lock from memory")
	}
	if tag := s.Mem.GetLockTag(0); tag.Locked {
		t.Error("lock tag still set after unlock")
	}
}

func TestRMWAtomicAcrossProtocols(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			cfg := DefaultConfig(p)
			if p.Features().OneWordBlocks {
				cfg.Geometry = addr.MustGeometry(1, 1)
			}
			cfg.Procs = 4
			s := New(cfg)
			const iters = 20
			ws := make([]func(*Proc), cfg.Procs)
			for i := range ws {
				ws[i] = func(pr *Proc) {
					for k := 0; k < iters; k++ {
						pr.RMW(3, func(v uint64) uint64 { return v + 1 })
					}
				}
			}
			run(t, s, ws)
			// The final value must be exactly procs*iters: read it via
			// a fresh RMW that returns the old value.
			var final uint64
			done := make(chan struct{})
			s2ws := make([]func(*Proc), cfg.Procs)
			_ = s2ws
			close(done)
			// Read from memory after flushing: use the stats-free path.
			final = s.Mem.ReadWord(3)
			for _, c := range s.Caches {
				if v, ok := c.ReadWord(3); ok && c.Protocol().IsDirty(c.State(s.Geometry().BlockOf(3))) {
					final = v
				}
			}
			if final != uint64(cfg.Procs*iters) {
				t.Errorf("counter = %d, want %d", final, cfg.Procs*iters)
			}
		})
	}
}

func TestRMWMemoryAtomic(t *testing.T) {
	s := coreSystem(3)
	const iters = 15
	ws := make([]func(*Proc), 3)
	for i := range ws {
		ws[i] = func(p *Proc) {
			for k := 0; k < iters; k++ {
				p.RMWMemory(5, func(v uint64) uint64 { return v + 1 })
			}
		}
	}
	run(t, s, ws)
	if v := s.Mem.ReadWord(5); v != 3*iters {
		t.Errorf("memory counter = %d, want %d", v, 3*iters)
	}
}

func TestTryWriteAbortsOnSteal(t *testing.T) {
	s := coreSystem(2)
	aborted := false
	run(t, s, []func(*Proc){
		func(p *Proc) {
			p.Read(0) // readable copy
			p.Compute(300)
			// By now P1 has taken the block for writing.
			if !p.TryWrite(0, 1) {
				aborted = true
			}
		},
		func(p *Proc) {
			p.Compute(50)
			p.Write(0, 2) // invalidates P0's copy
		},
	})
	if !aborted {
		t.Error("TryWrite should have aborted after the block was stolen")
	}
}

func TestWriteBlockNoFetchSkipsFetch(t *testing.T) {
	s := coreSystem(2)
	run(t, s, []func(*Proc){func(p *Proc) {
		p.WriteBlock(8, []uint64{1, 2, 3, 4})
		if v := p.Read(9); v != 2 {
			t.Errorf("word 9 = %d, want 2", v)
		}
	}, nil})
	if got := s.Bus.Counts.Get("bus.writenofetch"); got != 1 {
		t.Errorf("bus.writenofetch = %d, want 1", got)
	}
	if got := s.Bus.Counts.Get("bus.readx") + s.Bus.Counts.Get("bus.read"); got != 0 {
		t.Errorf("block write fetched data: %d fetches", got)
	}
}

func TestWriteBlockLoweredFetches(t *testing.T) {
	// Without Feature 9, the same block write must fetch the block.
	p := protocol.MustNew("illinois")
	cfg := DefaultConfig(p)
	cfg.Procs = 1
	s := New(cfg)
	run(t, s, []func(*Proc){func(pr *Proc) {
		pr.WriteBlock(8, []uint64{1, 2, 3, 4})
		if v := pr.Read(11); v != 4 {
			t.Errorf("word 11 = %d, want 4", v)
		}
	}})
	if got := s.Bus.Counts.Get("bus.readx"); got != 1 {
		t.Errorf("lowered block write: bus.readx = %d, want 1 (the wasted fetch)", got)
	}
}

func TestIOOperations(t *testing.T) {
	s := coreSystem(2)
	run(t, s, []func(*Proc){
		func(p *Proc) {
			p.Write(0, 5) // dirty block 0 in cache 0
			p.Compute(100)
			// Input: I/O writes the block; cached copies invalidate.
			p.IO(IOInput, 4, []uint64{9, 9, 9, 9})
			if v := p.Read(4); v != 9 {
				t.Errorf("after IO input, word 4 = %d, want 9", v)
			}
		},
		func(p *Proc) {
			p.Compute(50)
			p.IO(IOOutput, 0, nil) // non-paging output: source keeps status
			if st := s.Caches[0].State(0); st != core.WSD {
				t.Errorf("source state after IO output = %v, want unchanged W.S.D", s.proto.StateName(st))
			}
		},
	})
	if s.Counts.Get("io.ioread") != 1 || s.Counts.Get("io.iowrite") != 1 {
		t.Errorf("io counters: %v", s.Counts.Snapshot())
	}
}

func TestOneWordBlockGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rudolph with 4-word blocks should panic")
		}
	}()
	New(DefaultConfig(protocol.MustNew("rudolph")))
}

func TestZeroTimeLockOnHeldBlock(t *testing.T) {
	// Section E.3: lock/unlock in zero (bus) time when the block is
	// already held with write privilege.
	s := coreSystem(1)
	run(t, s, []func(*Proc){func(p *Proc) {
		p.Write(0, 3) // W.S.D
		before := s.Bus.Counts.Total("bus.")
		v := p.LockRead(0)
		p.UnlockWrite(0, v+1)
		if after := s.Bus.Counts.Total("bus."); after != before {
			t.Errorf("lock+unlock used %d bus transactions, want 0", after-before)
		}
	}})
	if s.Counts.Get("lock.unlock-silent") != 1 {
		t.Error("silent unlock not recorded")
	}
}

func TestWriteMissValueCommitsAcrossProtocols(t *testing.T) {
	// Regression: a write whose final phase completes as a local hit
	// (Dragon: fetch -> E -> silent write) must still commit the value.
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			cfg := DefaultConfig(p)
			if p.Features().OneWordBlocks {
				cfg.Geometry = addr.MustGeometry(1, 1)
			}
			cfg.Procs = 2
			s := New(cfg)
			var got uint64
			run(t, s, []func(*Proc){
				func(pr *Proc) { pr.Write(0, 123) }, // pure write miss
				func(pr *Proc) {
					pr.Compute(200)
					got = pr.Read(0)
				},
			})
			if got != 123 {
				t.Errorf("consumer read %d, want 123", got)
			}
		})
	}
}
