package sim

import (
	"testing"

	"cachesync/internal/addr"
)

func TestLockPrefetchUncontended(t *testing.T) {
	s := coreSystem(1)
	run(t, s, []func(*Proc){func(p *Proc) {
		p.LockPrefetch(0)
		p.Compute(50) // ready section
		if v := p.LockWait(0); v != 0 {
			t.Errorf("LockWait = %d, want 0", v)
		}
		p.UnlockWrite(0, 1)
	}})
	if s.Counts.Get("lock.acquired") != 1 {
		t.Errorf("lock.acquired = %d", s.Counts.Get("lock.acquired"))
	}
}

func TestLockPrefetchHidesWait(t *testing.T) {
	// The paper's point: a processor that requests the lock early and
	// works while waiting loses less time than one that blocks.
	elapsed := func(prefetch bool) int64 {
		s := coreSystem(2)
		var waited int64
		ws := []func(*Proc){
			func(p *Proc) {
				p.LockRead(0)
				p.Compute(200) // long critical section
				p.UnlockWrite(0, 1)
			},
			func(p *Proc) {
				p.Compute(20) // arrive while P0 holds the lock
				if prefetch {
					p.LockPrefetch(0)
					p.Compute(180) // ready section overlaps the wait
					start := p.Now()
					p.LockWait(0)
					waited = p.Now() - start
				} else {
					p.Compute(180) // same local work, done before asking
					start := p.Now()
					p.LockRead(0)
					waited = p.Now() - start
				}
				p.UnlockWrite(0, 2)
			},
		}
		if err := s.Run(ws); err != nil {
			t.Fatal(err)
		}
		return waited
	}
	blocked := elapsed(false)
	overlapped := elapsed(true)
	if overlapped >= blocked {
		t.Errorf("prefetch did not hide the wait: %d cycles vs %d blocked", overlapped, blocked)
	}
}

func TestLockWaitWithoutPrefetchIsLockRead(t *testing.T) {
	s := coreSystem(1)
	run(t, s, []func(*Proc){func(p *Proc) {
		if v := p.LockWait(4); v != 0 {
			t.Errorf("LockWait = %d", v)
		}
		p.UnlockWrite(4, 9)
	}})
	if s.Counts.Get("lock.acquired") != 1 {
		t.Error("fallback lock not recorded")
	}
}

func TestLockPrefetchMutualExclusion(t *testing.T) {
	const procs, iters = 4, 15
	s := coreSystem(procs)
	ws := make([]func(*Proc), procs)
	for i := range ws {
		ws[i] = func(p *Proc) {
			for k := 0; k < iters; k++ {
				p.LockPrefetch(0)
				p.Compute(int64(7 + p.ID())) // ready section
				v := p.LockWait(0)
				p.UnlockWrite(0, v+1)
			}
		}
	}
	run(t, s, ws)
	var final uint64
	for _, c := range s.Caches {
		if v, ok := c.ReadWord(0); ok && c.Protocol().IsDirty(c.State(0)) {
			final = v
		}
	}
	if final == 0 {
		final = s.Mem.ReadWord(0)
	}
	if final != procs*iters {
		t.Errorf("counter = %d, want %d", final, procs*iters)
	}
}

func TestDoublePrefetchIsNoop(t *testing.T) {
	s := coreSystem(1)
	run(t, s, []func(*Proc){func(p *Proc) {
		p.LockPrefetch(0)
		p.LockPrefetch(0) // no-op
		p.LockWait(0)
		p.UnlockWrite(0, 1)
	}})
	if got := s.Counts.Get("lock.acquired"); got != 1 {
		t.Errorf("lock.acquired = %d, want 1", got)
	}
}

func TestPrefetchWhileIssuingOtherOps(t *testing.T) {
	// The ready section may contain real memory operations, not just
	// computation; they proceed while the busy-wait register waits.
	s := coreSystem(2)
	var got uint64
	run(t, s, []func(*Proc){
		func(p *Proc) {
			p.LockRead(0)
			p.Compute(300)
			p.UnlockWrite(0, 42)
		},
		func(p *Proc) {
			p.Compute(20)
			p.LockPrefetch(0)
			// Ready section with real work on other blocks.
			for k := 0; k < 10; k++ {
				p.Write(addr.Addr(8+k%4), uint64(k))
				p.Read(addr.Addr(8 + (k+1)%4))
			}
			got = p.LockWait(0)
			p.UnlockWrite(0, got+1)
		},
	})
	if got != 42 {
		t.Errorf("LockWait value = %d, want 42", got)
	}
}

func TestPrefetchDeterminism(t *testing.T) {
	runOnce := func() int64 {
		s := coreSystem(3)
		ws := make([]func(*Proc), 3)
		for i := range ws {
			ws[i] = func(p *Proc) {
				for k := 0; k < 10; k++ {
					p.LockPrefetch(0)
					p.Compute(int64(5 * (p.ID() + 1)))
					v := p.LockWait(0)
					p.UnlockWrite(0, v+1)
				}
			}
		}
		if err := s.Run(ws); err != nil {
			t.Fatal(err)
		}
		return s.Clock()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("prefetch runs diverge: %d vs %d", a, b)
	}
}
