package sim

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

func protocolFor(t *testing.T, name string) protocol.Protocol {
	t.Helper()
	return protocol.MustNew(name)
}

func TestTxnCostTable(t *testing.T) {
	tm := DefaultTiming() // arb=1 addr=1 word=1 mem=4 inv=1 srcarb=2
	cases := []struct {
		name        string
		txn         func() *bus.Transaction
		words       int
		memSupplied bool
		want        int64
	}{
		{"read from memory", func() *bus.Transaction {
			return &bus.Transaction{Cmd: bus.Read}
		}, 4, true, 1 + 1 + 4 + 4},
		{"read cache-to-cache", func() *bus.Transaction {
			tx := &bus.Transaction{Cmd: bus.Read, Suppliers: []int{1}}
			tx.Lines.SourceHit = true
			return tx
		}, 4, false, 1 + 1 + 4},
		{"read with source arbitration", func() *bus.Transaction {
			tx := &bus.Transaction{Cmd: bus.Read, Suppliers: []int{1, 2}}
			tx.Lines.SourceHit = true
			return tx
		}, 4, false, 1 + 1 + 2 + 4},
		{"read denied by lock", func() *bus.Transaction {
			tx := &bus.Transaction{Cmd: bus.ReadX}
			tx.Lines.Locked = true
			return tx
		}, 0, false, 1 + 1},
		{"upgrade (one-cycle invalidate)", func() *bus.Transaction {
			return &bus.Transaction{Cmd: bus.Upgrade}
		}, 0, false, 1 + 1},
		{"unlock broadcast", func() *bus.Transaction {
			return &bus.Transaction{Cmd: bus.Unlock}
		}, 0, false, 1 + 1},
		{"writenofetch", func() *bus.Transaction {
			return &bus.Transaction{Cmd: bus.WriteNoFetch}
		}, 0, false, 1 + 1},
		{"write-through word", func() *bus.Transaction {
			return &bus.Transaction{Cmd: bus.WriteWord}
		}, 1, false, 1 + 1 + 4},
		{"update word", func() *bus.Transaction {
			return &bus.Transaction{Cmd: bus.UpdateWord}
		}, 1, false, 1 + 1 + 1},
		{"flush", func() *bus.Transaction {
			return &bus.Transaction{Cmd: bus.Flush}
		}, 4, false, 1 + 1 + 4},
		{"synapse retry: flushed then memory supplies", func() *bus.Transaction {
			tx := &bus.Transaction{Cmd: bus.Read, Flushed: true}
			return tx
		}, 4, true, 1 + 1 + 4 + 4 + 4},
	}
	for _, c := range cases {
		if got := tm.TxnCost(c.txn(), c.words, c.memSupplied); got != c.want {
			t.Errorf("%s: cost = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTxnCostConcurrentFlush(t *testing.T) {
	tm := DefaultTiming()
	tx := &bus.Transaction{Cmd: bus.Read, Flushed: true, Suppliers: []int{1}}
	tx.Lines.SourceHit = true
	withConc := tm.TxnCost(tx, 4, false)
	tm.ConcurrentFlush = false
	withoutConc := tm.TxnCost(tx, 4, false)
	if withoutConc != withConc+int64(tm.MemCycles) {
		t.Errorf("non-concurrent flush should add %d cycles: %d vs %d",
			tm.MemCycles, withConc, withoutConc)
	}
}

// TestLockFairness: round-robin arbitration plus the busy-wait
// protocol must not starve any contender.
func TestLockFairness(t *testing.T) {
	const procs, iters = 4, 25
	s := coreSystem(procs)
	acquired := make([]int, procs)
	ws := make([]func(*Proc), procs)
	for i := range ws {
		i := i
		ws[i] = func(p *Proc) {
			for k := 0; k < iters; k++ {
				v := p.LockRead(0)
				acquired[i]++
				p.Compute(10)
				p.UnlockWrite(0, v+1)
				p.Compute(5)
			}
		}
	}
	run(t, s, ws)
	for i, n := range acquired {
		if n != iters {
			t.Errorf("proc %d acquired %d times, want %d", i, n, iters)
		}
	}
	// Latency spread: the slowest acquisition should not be wildly
	// beyond one full rotation of critical sections.
	if max := s.LockLatency.Max(); max > int64(procs*40) {
		t.Errorf("max lock latency %d cycles suggests starvation", max)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := DefaultConfig(coreSystem(1).Protocol())
	cfg.Procs = 2
	cfg.MaxCycles = 500
	s := New(cfg)
	err := s.Run([]func(*Proc){
		func(p *Proc) {
			for { // spin forever
				p.Read(0)
				p.Compute(2)
			}
		},
		nil,
	})
	if err == nil {
		t.Fatal("expected cycle-overrun error")
	}
}

func TestIODeniedOnLockedBlock(t *testing.T) {
	s := coreSystem(2)
	run(t, s, []func(*Proc){
		func(p *Proc) {
			p.LockRead(0)
			p.Compute(200)
			p.UnlockWrite(0, 1)
		},
		func(p *Proc) {
			p.Compute(50)
			p.IO(IOInput, 0, []uint64{9, 9, 9, 9}) // block is locked: denied
		},
	})
	if s.Counts.Get("io.denied") != 1 {
		t.Errorf("io.denied = %d, want 1", s.Counts.Get("io.denied"))
	}
	// The locked atom's data must be intact (the unlock wrote 1).
	if v := s.Mem.ReadWord(0); v == 9 {
		t.Error("denied I/O input overwrote a locked block")
	}
}

func TestWriteThroughBlockWriteLowering(t *testing.T) {
	// Under classic write-through, a lowered block write issues one
	// WriteWord per word.
	p := protocolFor(t, "writethrough")
	cfg := DefaultConfig(p)
	cfg.Procs = 1
	s := New(cfg)
	run(t, s, []func(*Proc){func(pr *Proc) {
		pr.WriteBlock(0, []uint64{1, 2, 3, 4})
	}})
	if got := s.Bus.Counts.Get("bus.writeword"); got != 4 {
		t.Errorf("bus.writeword = %d, want 4 (one per word)", got)
	}
	for i := 0; i < 4; i++ {
		if v := s.Mem.ReadWord(addr.Addr(i)); v != uint64(i+1) {
			t.Errorf("memory word %d = %d, want %d", i, v, i+1)
		}
	}
}
