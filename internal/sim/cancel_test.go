package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"cachesync/internal/addr"
	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// longWorkloads builds per-processor loops long enough that a short
// deadline always lands mid-run: every processor hammers a small set
// of shared blocks with reads and writes (ops each, contended).
func longWorkloads(s *System, procs, ops int) []func(*Proc) {
	g := s.Geometry()
	ws := make([]func(*Proc), procs)
	for i := 0; i < procs; i++ {
		i := i
		ws[i] = func(p *Proc) {
			for n := 0; n < ops; n++ {
				a := g.Base(addr.Block((n + i) % 8))
				if (n+i)%3 == 0 {
					p.Write(a, uint64(n))
				} else {
					p.Read(a)
				}
			}
		}
	}
	return ws
}

// TestRunContextCancelsPromptlyWithoutLeaks aborts a long simulation
// mid-run and asserts (a) the error identifies the deadline, (b) the
// abort is prompt, and (c) every workload goroutine unwinds — the
// leak check the daemon's 504 path depends on.
func TestRunContextCancelsPromptlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	for i := 0; i < 4; i++ {
		s := New(DefaultConfig(protocol.MustNew("bitar")))
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
		start := time.Now()
		err := s.RunContext(ctx, longWorkloads(s, 4, 2_000_000))
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iteration %d: err = %v, want deadline exceeded", i, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("iteration %d: cancellation took %v", i, elapsed)
		}
	}

	// The four runs' workload goroutines (4 procs each) must all have
	// unwound; give the scheduler a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellations",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextExplicitCancel covers cancellation without a deadline.
func TestRunContextExplicitCancel(t *testing.T) {
	s := New(DefaultConfig(protocol.MustNew("illinois")))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := s.RunContext(ctx, longWorkloads(s, 4, 2_000_000)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCompletesUncanceled pins that a background context
// changes nothing about a normal run.
func TestRunContextCompletesUncanceled(t *testing.T) {
	s := New(DefaultConfig(protocol.MustNew("bitar")))
	if err := s.RunContext(context.Background(), longWorkloads(s, 4, 200)); err != nil {
		t.Fatal(err)
	}
	if s.Clock() == 0 {
		t.Fatal("simulation did not advance")
	}
}
