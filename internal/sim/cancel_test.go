package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"cachesync/internal/addr"
	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// longWorkloads builds per-processor loops long enough that a short
// deadline always lands mid-run: every processor hammers a small set
// of shared blocks with reads and writes (ops each, contended).
func longWorkloads(s *System, procs, ops int) []func(*Proc) {
	g := s.Geometry()
	ws := make([]func(*Proc), procs)
	for i := 0; i < procs; i++ {
		i := i
		ws[i] = func(p *Proc) {
			for n := 0; n < ops; n++ {
				a := g.Base(addr.Block((n + i) % 8))
				if (n+i)%3 == 0 {
					p.Write(a, uint64(n))
				} else {
					p.Read(a)
				}
			}
		}
	}
	return ws
}

// TestRunContextCancelsPromptlyWithoutLeaks aborts a long simulation
// mid-run and asserts (a) the error identifies the deadline, (b) the
// abort is prompt, and (c) every workload goroutine unwinds — the
// leak check the daemon's 504 path depends on.
func TestRunContextCancelsPromptlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	for i := 0; i < 4; i++ {
		s := New(DefaultConfig(protocol.MustNew("bitar")))
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
		start := time.Now()
		err := s.RunContext(ctx, longWorkloads(s, 4, 2_000_000))
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iteration %d: err = %v, want deadline exceeded", i, err)
		}
		// The engine checks ctx before every event, so the abort must
		// land within one event of the deadline; 500ms of wall-clock
		// headroom covers scheduler noise, nothing more.
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("iteration %d: cancellation took %v", i, elapsed)
		}
	}

	// The four runs' workload goroutines (4 procs each) must all have
	// unwound; give the scheduler a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellations",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunContextExplicitCancel covers cancellation without a deadline.
func TestRunContextExplicitCancel(t *testing.T) {
	s := New(DefaultConfig(protocol.MustNew("illinois")))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := s.RunContext(ctx, longWorkloads(s, 4, 2_000_000)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// hammerProg is the Program form of longWorkloads' loop body: an
// endless-enough read/write stream over eight contended blocks.
type hammerProg struct {
	g   addr.Geometry
	id  int
	n   int
	ops int
}

func (h *hammerProg) Next(p *Proc, last Result) (Op, bool) {
	if h.n >= h.ops {
		return Op{}, false
	}
	a := h.g.Base(addr.Block((h.n + h.id) % 8))
	n := h.n
	h.n++
	if (n+h.id)%3 == 0 {
		return WriteOp(a, uint64(n)), true
	}
	return ReadOp(a), true
}

// TestRunProgramsContextCancelsPromptly is the direct-path twin of
// the shim cancellation test: ctx expiry must abort the event loop
// within one event, and — the whole point of the direct engine —
// without a single goroutine to unwind.
func TestRunProgramsContextCancelsPromptly(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		s := New(DefaultConfig(protocol.MustNew("bitar")))
		progs := make([]Program, 4)
		for id := range progs {
			progs[id] = &hammerProg{g: s.Geometry(), id: id, ops: 2_000_000}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
		start := time.Now()
		err := s.RunProgramsContext(ctx, progs)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iteration %d: err = %v, want deadline exceeded", i, err)
		}
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("iteration %d: cancellation took %v", i, elapsed)
		}
		if s.Clock() == 0 {
			t.Fatalf("iteration %d: canceled run never advanced", i)
		}
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("direct path grew goroutines: %d before, %d after", before, after)
	}
}

// TestRunProgramsContextExplicitCancel covers plain cancel() on the
// direct path.
func TestRunProgramsContextExplicitCancel(t *testing.T) {
	s := New(DefaultConfig(protocol.MustNew("illinois")))
	progs := make([]Program, 4)
	for id := range progs {
		progs[id] = &hammerProg{g: s.Geometry(), id: id, ops: 2_000_000}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := s.RunProgramsContext(ctx, progs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunContextCompletesUncanceled pins that a background context
// changes nothing about a normal run.
func TestRunContextCompletesUncanceled(t *testing.T) {
	s := New(DefaultConfig(protocol.MustNew("bitar")))
	if err := s.RunContext(context.Background(), longWorkloads(s, 4, 200)); err != nil {
		t.Fatal(err)
	}
	if s.Clock() == 0 {
		t.Fatal("simulation did not advance")
	}
}
