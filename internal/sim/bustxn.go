package sim

import (
	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/cache"
	"cachesync/internal/memory"
	"cachesync/internal/protocol"
)

// ioCounterName returns the precomputed "io.<cmd>" statistic key for
// the three commands an I/O transfer can issue.
func ioCounterName(c bus.Cmd) string {
	switch c {
	case bus.IOWrite:
		return "io.iowrite"
	case bus.ReadX:
		return "io.readx"
	case bus.IORead:
		return "io.ioread"
	}
	return "io." + c.String()
}

// serveBus is called when ctx's processor wins bus arbitration. The
// access is re-run against the (possibly snooped-upon) line state; it
// may complete locally, run a transaction, or park in busy wait.
func (s *System) serveBus(ctx *opCtx) {
	ctx.active = false
	switch ctx.op.kind {
	case opIO:
		s.serveIO(ctx)
		return
	case opRMWMem:
		s.serveRMWMemory(ctx)
		return
	case opTryWrite:
		if s.Caches[ctx.p.id].State(s.cfg.Geometry.BlockOf(ctx.op.addr)) == protocol.Invalid {
			// Stolen while queued: abort (Feature 6, method 3).
			ctx.p.Counts.Inc("rmw.abort")
			s.respond(ctx.p, s.clock, procRes{ok: false})
			return
		}
	}
	s.advance(ctx)
}

// advance re-probes and either finishes locally, or runs the next bus
// transaction of the operation.
func (s *System) advance(ctx *opCtx) {
	if ctx.op.kind == opRMW {
		s.advanceRMW(ctx)
		return
	}
	c := s.Caches[ctx.p.id]
	r := c.Reprobe(ctx.protoOp, ctx.op.addr)
	if r.Hit {
		s.finishOp(ctx, s.clock+int64(s.cfg.Timing.HitCycles))
		return
	}
	ctx.pr = r
	s.serveTxn(ctx)
}

// advanceRMW is the grant-time entry for an atomic read-modify-write.
// Atomicity: anything captured when the request was queued may be
// stale — another processor's write, update broadcast, or
// invalidation can land in between. The state and old value are
// re-derived now; from here to the transaction nothing intervenes.
func (s *System) advanceRMW(ctx *opCtx) {
	c := s.Caches[ctx.p.id]
	b := s.cfg.Geometry.BlockOf(ctx.op.addr)
	if c.State(b) != protocol.Invalid {
		// A (possibly revived) local copy holds the current value.
		ctx.rmwOld, _ = c.ReadWord(ctx.op.addr)
		ctx.rmwHaveOld = true
		ctx.protoOp = protocol.OpWrite // the fetch phase is unnecessary now
		r := c.Reprobe(protocol.OpWrite, ctx.op.addr)
		if r.Hit {
			// Write privilege in hand: entirely local and atomic.
			c.WriteWord(ctx.op.addr, ctx.op.f(ctx.rmwOld))
			ctx.p.Counts.Inc("rmw.done")
			s.respond(ctx.p, s.clock+int64(s.cfg.Timing.HitCycles), procRes{value: ctx.rmwOld, ok: true})
			return
		}
		ctx.pr = r
		s.serveTxn(ctx)
		return
	}
	ctx.rmwHaveOld = false
	r := c.Reprobe(protocol.OpWrite, ctx.op.addr)
	if r.Cmd == bus.WriteWord {
		// A write-through path cannot return the old value: fetch a
		// readable copy first (the bus is held between the phases).
		ctx.protoOp = protocol.OpRead
		r = c.Reprobe(protocol.OpRead, ctx.op.addr)
	} else {
		ctx.protoOp = protocol.OpWrite
	}
	ctx.pr = r
	s.serveTxn(ctx)
}

// buildTxn materializes the pending bus command of ctx in the pooled
// transaction record. The record is live only until the transaction's
// completion is applied; every consumer that keeps block data copies
// it out.
func (s *System) buildTxn(ctx *opCtx) *bus.Transaction {
	b := s.cfg.Geometry.BlockOf(ctx.op.addr)
	t := &s.txnScratch
	t.Reset()
	t.Cmd = ctx.pr.Cmd
	t.Block = b
	t.Addr = ctx.op.addr
	t.Requester = ctx.p.id
	t.LockIntent = ctx.pr.LockIntent
	t.AfterWait = ctx.afterWait
	t.MemUpdate = ctx.pr.MemUpdate
	if ctx.protoOp == protocol.OpUnlock && (t.Cmd == bus.ReadX || t.Cmd == bus.Upgrade) {
		t.UnlockIntent = true
	}
	switch t.Cmd {
	case bus.WriteWord, bus.UpdateWord:
		if ctx.op.kind == opRMW {
			t.WordData = ctx.op.f(ctx.rmwOld)
		} else {
			t.WordData = ctx.op.value
		}
	}
	return t
}

// needsFrame reports whether the transaction will install a line.
func (s *System) needsFrame(cmd bus.Cmd) bool {
	switch cmd {
	case bus.Read, bus.ReadX, bus.WriteNoFetch:
		return true
	case bus.WriteWord:
		return s.feats.WriteAllocates
	}
	return false
}

// broadcast delivers t to every cache except the requester, bumping
// the bus's transaction counter. It is bus.Broadcast specialized to
// the simulator's topology — every cache snoops every bus, and cache
// IDs equal their slice index — so the fan-out runs over the concrete
// slice with no per-snooper interface dispatch. Snoopers attached
// after the caches (bus monitors, test probes) still get every
// transaction, after all caches, exactly as under bus.Broadcast.
func (s *System) broadcast(bi int, t *bus.Transaction) {
	b := s.Buses[bi]
	b.CountTxn(t.Cmd)
	for i, c := range s.Caches {
		if i == t.Requester {
			continue
		}
		c.Snoop(t)
	}
	for _, sn := range b.SnoopersFrom(len(s.Caches)) {
		if sn.ID() == t.Requester {
			continue
		}
		sn.Snoop(t)
	}
}

// evict performs a victim writeback (and lock purge) for cache c,
// advancing the bus clock.
func (s *System) evict(c *cache.Cache, v cache.Victim) {
	if v.Evict.Writeback {
		words := c.EvictWords(v.Block)
		t := &s.txnScratch
		t.Reset()
		t.Cmd = bus.Flush
		t.Block = v.Block
		t.Addr = s.cfg.Geometry.Base(v.Block)
		t.Requester = c.ID()
		t.BlockData = v.Data
		bi := s.busOf(v.Block)
		if s.clock < s.busFree[bi] {
			s.clock = s.busFree[bi]
		}
		s.broadcast(bi, t)
		s.Mem.Respond(t)
		cost := s.cfg.Timing.TxnCost(t, words, false)
		start := s.clock
		s.busFree[bi] = s.clock + cost
		s.clock = s.busFree[bi]
		s.countBus(cost, int64(words))
		s.Counts.Inc("evict.flush")
		s.logTxn(bi, t, start, cost)
	}
	if v.Evict.LockPurge {
		// Section E.3: the lock bit is written to memory so the lock
		// survives the purge.
		s.Mem.SetLockTag(v.Block, memory.LockTag{Locked: true, Owner: c.ID(), Waiter: v.Evict.Waiter})
		s.Counts.Inc("evict.lockpurge")
	}
	if s.feats.PartialBroadcast {
		s.Mem.Dir.Remove(v.Block, c.ID())
	}
	c.Drop(v.Block)
}

// serveTxn runs one bus transaction for ctx and applies its
// completion. The clock must equal busFree on entry.
func (s *System) serveTxn(ctx *opCtx) {
	c := s.Caches[ctx.p.id]
	b := s.cfg.Geometry.BlockOf(ctx.op.addr)

	if s.needsFrame(ctx.pr.Cmd) {
		if v := c.PrepareFill(b); v.Needed {
			s.evict(c, v)
		}
	}

	t := s.buildTxn(ctx)
	bi := s.busOf(b)
	if s.clock < s.busFree[bi] {
		s.clock = s.busFree[bi]
	}
	var dirCost int64
	if s.feats.PartialBroadcast {
		// Directory system (Censier-Feautrier): memory looks up the
		// presence directory and sends point-to-point messages to the
		// recorded holders — serialized, unlike a broadcast snoop.
		targets := s.Mem.Dir.Members(b, ctx.p.id)
		for _, id := range targets {
			s.Caches[id].Snoop(t)
		}
		s.Buses[bi].CountTxn(t.Cmd)
		dirCost = int64(s.cfg.Timing.DirLookupCycles + len(targets)*s.cfg.Timing.DirMsgCycles)
		s.Counts.Add("dir.msgs", int64(len(targets)))
	} else {
		s.broadcast(bi, t)
	}
	memSupplied := s.Mem.Respond(t)

	words := 0
	switch t.Cmd {
	case bus.Read, bus.ReadX, bus.IORead:
		switch {
		case t.Lines.Locked:
			words = 0
		case memSupplied:
			words = s.cfg.Geometry.BlockWords
			if s.cfg.Cache.UnitMode {
				words = s.cfg.Geometry.TransferWords
			}
		case t.SupplyWordCount > 0:
			words = t.SupplyWordCount
		default:
			words = s.cfg.Geometry.BlockWords
		}
	case bus.WriteWord, bus.UpdateWord:
		words = 1 // the written word crosses the bus
	}
	cost := s.cfg.Timing.TxnCost(t, words, memSupplied) + dirCost
	start := s.clock
	s.busFree[bi] = s.clock + cost
	s.clock = s.busFree[bi]
	s.countBus(cost, int64(words))
	s.logTxn(bi, t, start, cost)

	if s.feats.PartialBroadcast && !t.Lines.Locked {
		switch t.Cmd {
		case bus.Read:
			s.Mem.Dir.Add(b, ctx.p.id)
		case bus.ReadX, bus.Upgrade, bus.WriteNoFetch:
			s.Mem.Dir.SetSole(b, ctx.p.id)
		}
	}

	st := c.State(b)
	cres := s.complete(st, ctx.protoOp, t)

	if cres.BusyWait {
		if ctx.op.kind == opTryWrite {
			ctx.p.Counts.Inc("rmw.abort")
			s.respond(ctx.p, s.clock, procRes{ok: false})
			return
		}
		s.park(ctx, b)
		s.notifyTxn()
		return
	}
	s.applyCompletion(ctx, t, cres)
	s.notifyTxn()
}

// notifyTxn fires the OnTxn hook, if any.
func (s *System) notifyTxn() {
	if s.OnTxn != nil {
		s.OnTxn()
	}
}

// park puts the processor into busy wait (Figure 7): the busy-wait
// register is armed with the block address and the processor makes no
// further bus attempts until the unlock broadcast.
func (s *System) park(ctx *opCtx, b addr.Block) {
	p := ctx.p
	if !ctx.prefetch {
		p.status = statusWaiting
	}
	ctx.active = true
	s.Caches[p.id].BWReg = cache.BusyWaitRegister{Armed: true, Block: b}
	s.addWaiter(b, ctx.arbID)
	s.Counts.Inc("lock.denied")
	p.Counts.Inc("proc.busywait")
}

// addWaiter appends id to block b's waiter list, reusing a retired
// slice from the pool when the list is fresh.
func (s *System) addWaiter(b addr.Block, id int) {
	w, ok := s.waiters[b]
	if !ok && len(s.waiterPool) > 0 {
		n := len(s.waiterPool) - 1
		w = s.waiterPool[n]
		s.waiterPool = s.waiterPool[:n]
	}
	s.waiters[b] = append(w, id)
}

// wakeWaiters reacts to an Unlock broadcast on block b (Figure 9):
// every parked waiter joins the next arbitration at high priority.
func (s *System) wakeWaiters(b addr.Block) {
	ids := s.waiters[b]
	if len(ids) == 0 {
		return
	}
	delete(s.waiters, b)
	for _, id := range ids {
		ctx := &s.ctxs[id]
		if !ctx.active {
			continue
		}
		ctx.afterWait = true
		if !ctx.prefetch {
			ctx.p.status = statusBlocked
		}
		// The reserved high-priority bit (Section E.4), unless ablated.
		s.Buses[s.busOf(b)].RequestAt(id, !s.cfg.NoWaiterPriority, s.clock)
		s.Counts.Inc("lock.rearb")
	}
	s.waiterPool = append(s.waiterPool, ids[:0])
}

// withdrawLosers implements the losing half of Figure 9: once a
// re-arbitrated waiter has locked block b, the other waiters withdraw
// their bus requests — no retry ever reaches the bus — and go back to
// waiting on the (new) holder's unlock broadcast.
func (s *System) withdrawLosers(b addr.Block, winner int) {
	for id := range s.ctxs {
		ctx := &s.ctxs[id]
		if id == winner || !ctx.active || !ctx.afterWait {
			continue
		}
		if !ctx.prefetch && ctx.p.status != statusBlocked {
			continue
		}
		if s.cfg.Geometry.BlockOf(ctx.op.addr) != b {
			continue
		}
		s.Buses[s.busOf(b)].Withdraw(id)
		ctx.afterWait = false
		if !ctx.prefetch {
			ctx.p.status = statusWaiting
		}
		s.addWaiter(b, id)
		s.Counts.Inc("lock.backoff")
	}
}

// applyCompletion installs the post-transaction state and data, then
// finishes, continues, or re-queues the operation.
func (s *System) applyCompletion(ctx *opCtx, t *bus.Transaction, cres protocol.CompleteResult) {
	c := s.Caches[ctx.p.id]
	b := t.Block
	newState := cres.NewState

	// Lock-purge reclaim (Section E.3): the owner re-fetched a block
	// whose lock bit lives in memory; restore the lock state (with the
	// waiter bit) and clear the tag. Every fetch by the owner reclaims,
	// not just an unlock-intent one: if the tag stayed behind while the
	// owner held the block in an ordinary write state, a later
	// requester would be denied by memory only after the snooping
	// caches had already reacted — the owner's copy would hand off its
	// dirty data to a requester that never installs it.
	switch t.Cmd {
	case bus.Read, bus.ReadX, bus.Upgrade, bus.WriteNoFetch:
		if tag := s.Mem.GetLockTag(b); tag.Locked && tag.Owner == ctx.p.id {
			if lr, ok := s.proto.(protocol.LockReclaimer); ok {
				newState = lr.ReclaimedLockState(tag.Waiter)
			}
			s.Mem.SetLockTag(b, memory.LockTag{})
			s.Counts.Inc("lock.reclaim")
		}
	}

	// Install or update the line.
	switch t.Cmd {
	case bus.Read, bus.ReadX:
		if newState != protocol.Invalid {
			c.Install(b, t.BlockData, newState)
			if t.Lines.Dirty && t.DirtyUnits != nil {
				c.SetUnitDirty(b, t.DirtyUnits)
			}
		}
	case bus.WriteNoFetch:
		c.Install(b, nil, newState)
	case bus.WriteWord:
		if newState != protocol.Invalid {
			if c.State(b) == protocol.Invalid {
				// BlockView: Install copies, so the no-copy accessor is safe.
				c.Install(b, s.Mem.BlockView(b), newState)
			} else {
				c.SetState(b, newState)
			}
		}
	default: // Upgrade, UpdateWord, Unlock: the line is present
		if c.State(b) != protocol.Invalid || newState != protocol.Invalid {
			c.SetState(b, newState)
		}
	}

	// Frank's memory source bit (Feature 2).
	if s.feats.MemorySourceBit {
		if t.Flushed || t.Cmd == bus.WriteWord {
			s.Mem.SetSource(b, true)
		}
		if s.isDirty(newState) {
			s.Mem.SetSource(b, false)
		}
	}

	// Processor-side data effect, applied only when the operation is
	// complete: until the final phase serializes on the bus, the new
	// value must not be observable (e.g. between Goodman's fetch and
	// write-through phases).
	if ctx.op.kind != opRMW && cres.Done && ctx.protoOp.IsWrite() && c.State(b) != protocol.Invalid {
		switch ctx.protoOp {
		case protocol.OpWriteBlock:
			base := s.cfg.Geometry.Base(b)
			for i, v := range ctx.op.vals {
				c.WriteWord(base+addr.Addr(i), v)
			}
		default:
			c.WriteWord(ctx.op.addr, ctx.op.value)
		}
	}

	// An unlock broadcast wakes the busy-wait registers.
	if t.Cmd == bus.Unlock {
		s.Counts.Inc("lock.broadcast")
		s.wakeWaiters(b)
	}

	// RMW phase sequencing (engine-driven, bus held between phases).
	if ctx.op.kind == opRMW {
		s.continueRMW(ctx, cres)
		return
	}

	if !cres.Done {
		// Protocol multi-phase operation (e.g. Goodman's
		// fetch-then-write-through, Dragon's fetch-then-update): the
		// cache completes the pending processor access before
		// yielding the block, holding the bus between the phases —
		// releasing it would let spinning writers invalidate the
		// freshly fetched copy forever (write-miss livelock).
		r := c.Reprobe(ctx.protoOp, ctx.op.addr)
		if r.Hit {
			s.finishOp(ctx, s.clock+int64(s.cfg.Timing.HitCycles))
			return
		}
		ctx.pr = r
		s.serveTxn(ctx)
		return
	}
	s.finishOp(ctx, s.clock)
}

// continueRMW drives the atomic read-modify-write through its
// phases without releasing the bus (Feature 6, method 2 / the
// Papamarcos-Patel variant).
func (s *System) continueRMW(ctx *opCtx, cres protocol.CompleteResult) {
	c := s.Caches[ctx.p.id]
	// After any fetch-bearing phase, the old value is available.
	if !ctx.rmwHaveOld && c.State(s.cfg.Geometry.BlockOf(ctx.op.addr)) != protocol.Invalid {
		ctx.rmwOld, _ = c.ReadWord(ctx.op.addr)
		ctx.rmwHaveOld = true
	}
	if ctx.protoOp == protocol.OpRead {
		// Phase 0 (write-through protocols): the fetch completed;
		// switch to the write phase.
		ctx.protoOp = protocol.OpWrite
	} else if cres.Done {
		// Final phase done: commit the new value locally (memory and
		// other caches have already seen it if the phase was a
		// write-through).
		if c.State(s.cfg.Geometry.BlockOf(ctx.op.addr)) != protocol.Invalid {
			c.Reprobe(protocol.OpWrite, ctx.op.addr) // dirty-state transition
			c.WriteWord(ctx.op.addr, ctx.op.f(ctx.rmwOld))
		}
		ctx.p.Counts.Inc("rmw.done")
		s.respond(ctx.p, s.clock+int64(s.cfg.Timing.HitCycles), procRes{value: ctx.rmwOld, ok: true})
		return
	}
	// Next phase, bus still held: no other requester can slip between
	// the phases, which is what makes the instruction atomic.
	r := c.Reprobe(ctx.protoOp, ctx.op.addr)
	if r.Hit {
		c.WriteWord(ctx.op.addr, ctx.op.f(ctx.rmwOld))
		ctx.p.Counts.Inc("rmw.done")
		s.respond(ctx.p, s.clock+int64(s.cfg.Timing.HitCycles), procRes{value: ctx.rmwOld, ok: true})
		return
	}
	ctx.pr = r
	s.serveTxn(ctx)
}

// finishOp completes a bus-served operation at time t and responds to
// the processor.
func (s *System) finishOp(ctx *opCtx, t int64) {
	c := s.Caches[ctx.p.id]
	if ctx.prefetch {
		s.finishPrefetch(ctx, t)
		return
	}
	// Processor idle time spent on this bus-served operation — the
	// "concomitant processor idle time" of Section D.1.
	if stall := t - ctx.p.opStart; stall > 0 {
		ctx.p.Counts.Add("proc.stall-cycles", stall)
	}
	var res procRes
	res.ok = true
	switch ctx.op.kind {
	case opBlockWrite:
		if !s.feats.WriteNoFetch {
			// The first word's write completed; handle the rest.
			s.writeRemainder(ctx.p, t, &ctx.op)
			return
		}
	case opTryWrite:
		res.ok = true
	}
	switch ctx.protoOp {
	case protocol.OpRead, protocol.OpReadEx:
		res.value, _ = c.ReadWord(ctx.op.addr)
	case protocol.OpLock:
		res.value, _ = c.ReadWord(ctx.op.addr)
		s.recordLockAcquired(ctx.p, t)
		// Figure 9: the other waiters see the lock taken and withdraw.
		s.withdrawLosers(s.cfg.Geometry.BlockOf(ctx.op.addr), ctx.p.id)
	case protocol.OpUnlock:
		c.WriteWord(ctx.op.addr, ctx.op.value)
		s.Counts.Inc("lock.unlock-bus")
	case protocol.OpWrite:
		// A write whose final phase completed as a local hit (e.g.
		// Dragon's fetch-then-silent-write): commit the store.
		c.WriteWord(ctx.op.addr, ctx.op.value)
	case protocol.OpWriteBlock:
		base := s.cfg.Geometry.Base(s.cfg.Geometry.BlockOf(ctx.op.addr))
		for i, v := range ctx.op.vals {
			c.WriteWord(base+addr.Addr(i), v)
		}
	}
	if ctx.afterWait {
		// The operation a busy wait was armed for has completed.
		s.Caches[ctx.p.id].BWReg = cache.BusyWaitRegister{}
	}
	s.respond(ctx.p, t, res)
}

// serveIO runs an I/O-processor transfer (Section E.2). The I/O
// processor is not a cache: every cache snoops (Requester −1).
func (s *System) serveIO(ctx *opCtx) {
	g := s.cfg.Geometry
	b := g.BlockOf(ctx.op.addr)
	t := &s.txnScratch
	t.Reset()
	t.Block = b
	t.Addr = ctx.op.addr
	t.Requester = -1
	switch ctx.op.io {
	case IOInput:
		t.Cmd = bus.IOWrite
		data := make([]uint64, g.BlockWords)
		copy(data, ctx.op.vals)
		t.BlockData = data
	case IOPageOut:
		t.Cmd = bus.ReadX
	case IOOutput:
		t.Cmd = bus.IORead
	}
	bi := s.busOf(b)
	if s.clock < s.busFree[bi] {
		s.clock = s.busFree[bi]
	}
	s.broadcast(bi, t)
	memSupplied := s.Mem.Respond(t)
	words := g.BlockWords
	if t.Lines.Locked {
		words = 0
		s.Counts.Inc("io.denied")
	}
	cost := s.cfg.Timing.TxnCost(t, words, memSupplied)
	start := s.clock
	s.busFree[bi] = s.clock + cost
	s.clock = s.busFree[bi]
	s.countBus(cost, int64(words))
	s.Counts.Inc(ioCounterName(t.Cmd))
	s.logTxn(bi, t, start, cost)
	s.respond(ctx.p, s.clock, procRes{ok: !t.Lines.Locked})
	s.notifyTxn()
}

// serveRMWMemory runs the memory-held atomic read-modify-write
// (Feature 6, method 1): a read that collects the latest version —
// flushing any dirty cached copy — followed by the word write, with
// the bus and memory module held throughout.
func (s *System) serveRMWMemory(ctx *opCtx) {
	g := s.cfg.Geometry
	b := g.BlockOf(ctx.op.addr)

	bi := s.busOf(b)
	if s.clock < s.busFree[bi] {
		s.clock = s.busFree[bi]
	}
	// Both pooled records are live at once here: the read transaction
	// must survive until its TxnCost below, after the write broadcast.
	read := &s.txnScratch
	read.Reset()
	read.Cmd = bus.Read
	read.Block = b
	read.Addr = ctx.op.addr
	read.Requester = -1
	s.broadcast(bi, read)
	memSupplied := s.Mem.Respond(read)
	if !memSupplied && read.BlockData != nil {
		// A source cache supplied; memory takes the flush.
		s.Mem.WriteBlock(b, read.BlockData)
	}
	old := s.Mem.ReadWord(ctx.op.addr)

	write := &s.txnScratch2
	write.Reset()
	write.Cmd = bus.WriteWord
	write.Block = b
	write.Addr = ctx.op.addr
	write.Requester = -1
	write.WordData = ctx.op.f(old)
	s.broadcast(bi, write)
	s.Mem.Respond(write)

	cost := s.cfg.Timing.TxnCost(read, g.BlockWords, memSupplied) +
		s.cfg.Timing.TxnCost(write, 0, false)
	s.busFree[bi] = s.clock + cost
	s.clock = s.busFree[bi]
	s.Counts.Add("bus.cycles", cost)
	s.Counts.Inc("rmw.memory")
	ctx.p.Counts.Inc("rmw.done")
	s.respond(ctx.p, s.clock, procRes{value: old, ok: true})
	s.notifyTxn()
}
