package sim

import (
	"strings"
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/core"
)

func dualSystem(procs int) *System {
	cfg := DefaultConfig(core.Protocol{})
	cfg.Procs = procs
	cfg.NumBuses = 2
	return New(cfg)
}

func TestDualBusBasicCoherence(t *testing.T) {
	s := dualSystem(2)
	var even, odd uint64
	run(t, s, []func(*Proc){
		func(p *Proc) {
			p.Write(0, 10) // block 0: bus 0
			p.Write(4, 20) // block 1: bus 1
		},
		func(p *Proc) {
			p.Compute(200)
			even = p.Read(0)
			odd = p.Read(4)
		},
	})
	if even != 10 || odd != 20 {
		t.Errorf("reads = %d,%d want 10,20", even, odd)
	}
	if s.Buses[0].Counts.Total("bus.") == 0 || s.Buses[1].Counts.Total("bus.") == 0 {
		t.Error("traffic did not interleave across the buses")
	}
}

func TestDualBusParallelism(t *testing.T) {
	// Two processors hammering disjoint blocks on different buses
	// should finish faster with two buses than one.
	build := func(buses int) int64 {
		cfg := DefaultConfig(core.Protocol{})
		cfg.Procs = 4
		cfg.NumBuses = buses
		cfg.Cache.Ways = 2 // tiny: every access misses
		s := New(cfg)
		ws := make([]func(*Proc), 4)
		for i := range ws {
			i := i
			ws[i] = func(p *Proc) {
				for k := 0; k < 40; k++ {
					// Processor i sticks to blocks ≡ i mod 2, so its
					// traffic stays on one bus.
					b := addr.Block(100 + i%2 + 2*(k%8) + 16*i)
					p.Write(s.Geometry().Base(b), uint64(k))
				}
			}
		}
		if err := s.Run(ws); err != nil {
			t.Fatal(err)
		}
		return s.Clock()
	}
	single := build(1)
	dual := build(2)
	if dual >= single {
		t.Errorf("dual bus (%d cycles) not faster than single (%d)", dual, single)
	}
}

func TestDualBusLocking(t *testing.T) {
	// Locks and busy-wait must work regardless of which bus the lock
	// block maps to.
	const procs, iters = 4, 15
	s := dualSystem(procs)
	ws := make([]func(*Proc), procs)
	for i := range ws {
		ws[i] = func(p *Proc) {
			for k := 0; k < iters; k++ {
				v := p.LockRead(4) // block 1: bus 1
				p.UnlockWrite(4, v+1)
				u := p.LockRead(0) // block 0: bus 0
				p.UnlockWrite(0, u+1)
			}
		}
	}
	run(t, s, ws)
	for _, a := range []addr.Addr{0, 4} {
		var final uint64
		for _, c := range s.Caches {
			if v, ok := c.ReadWord(a); ok && c.Protocol().IsDirty(c.State(s.Geometry().BlockOf(a))) {
				final = v
			}
		}
		if final == 0 {
			final = s.Mem.ReadWord(a)
		}
		if final != procs*iters {
			t.Errorf("counter at %d = %d, want %d", a, final, procs*iters)
		}
	}
}

func TestDualBusDeterminism(t *testing.T) {
	runOnce := func() int64 {
		s := dualSystem(3)
		ws := make([]func(*Proc), 3)
		for i := range ws {
			i := i
			ws[i] = func(p *Proc) {
				for k := 0; k < 30; k++ {
					p.Write(addr.Addr((k*5+i*9)%64), uint64(k))
					p.Read(addr.Addr((k * 7) % 64))
				}
			}
		}
		if err := s.Run(ws); err != nil {
			t.Fatal(err)
		}
		return s.Clock()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("dual-bus runs diverge: %d vs %d", a, b)
	}
}

func TestNumBusesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NumBuses=3 accepted")
		}
	}()
	cfg := DefaultConfig(core.Protocol{})
	cfg.NumBuses = 3
	New(cfg)
}

func TestStallAccounting(t *testing.T) {
	s := coreSystem(2)
	run(t, s, []func(*Proc){
		func(p *Proc) { p.Write(0, 1) },
		func(p *Proc) {
			p.Compute(100)
			p.Read(0) // bus-served: stalls
			p.Read(0) // hit: no stall
		},
	})
	if s.Procs[1].Counts.Get("proc.stall-cycles") == 0 {
		t.Error("no stall cycles recorded for a bus-served read")
	}
}

func TestEventLog(t *testing.T) {
	s := coreSystem(2)
	log := s.AttachLog(0)
	run(t, s, []func(*Proc){
		func(p *Proc) { p.Write(0, 1) },
		func(p *Proc) {
			p.Compute(100)
			p.Read(0)
		},
	})
	if len(log.Entries) < 2 {
		t.Fatalf("log has %d entries", len(log.Entries))
	}
	if log.Entries[0].Cmd.String() != "readx" {
		t.Errorf("first entry = %s", log.Entries[0])
	}
	var sb strings.Builder
	if err := log.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "readx") || !strings.Contains(sb.String(), "src") {
		t.Errorf("dump:\n%s", sb.String())
	}
	// Entries are time-ordered per bus.
	for i := 1; i < len(log.Entries); i++ {
		if log.Entries[i].Bus == log.Entries[i-1].Bus && log.Entries[i].When < log.Entries[i-1].When {
			t.Errorf("entries out of order: %s then %s", log.Entries[i-1], log.Entries[i])
		}
	}
}

func TestEventLogLimit(t *testing.T) {
	s := coreSystem(1)
	log := s.AttachLog(2)
	run(t, s, []func(*Proc){func(p *Proc) {
		for k := 0; k < 10; k++ {
			p.Write(addr.Addr(k*4), 1)
		}
	}})
	if len(log.Entries) != 2 {
		t.Errorf("limited log has %d entries, want 2", len(log.Entries))
	}
}
