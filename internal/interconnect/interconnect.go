// Package interconnect models the interconnection networks a
// reference can travel over, separated from the coherence engine so a
// machine can be composed out of tiers (Figure 11, Section G.1):
//
//   - Bus: a single serializing channel — the cost-model form used as
//     a building block (the snooping coherence bus of the upper tier
//     is internal/bus, driven by the sim engine's arbitration);
//   - Crossbar: contention-costed interleaved memory banks, the lower
//     tier of the Aquarius machine ("will not need to serialize
//     accesses to a block, but will only need to provide the latest
//     version of each block");
//   - RemoteLink: a latency/bandwidth-costed network hop in front of
//     another interconnect — the Soul/GCS-style disaggregated-memory
//     tier (PAPERS.md, arXiv:2301.02576).
//
// Every model is deterministic: completion times are a pure function
// of the access sequence, so repeated runs of the same workload are
// byte-identical.
//
// The package also defines Class, the per-reference classification
// (sync vs instruction vs plain data) that workload generators and the
// trace format carry and the sim engine routes on.
package interconnect

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/stats"
)

// Class tags one memory reference with the tier it belongs on.
// Unclassified is the zero value so untagged references are
// distinguishable: a single-tier machine ignores classes, and a
// tiered machine rejects unclassified references instead of silently
// routing them.
type Class uint8

const (
	// Unclassified marks a reference with no routing information.
	Unclassified Class = iota
	// Sync is a hard atom or program synchronization datum: it needs
	// the full-broadcast synchronization protocol (Section G.1).
	Sync
	// Instr is an instruction fetch: read-only, served by the lower
	// tier (with a per-processor instruction buffer in front).
	Instr
	// Data is plain non-synchronization data: latest-version delivery
	// from the lower tier suffices.
	Data
)

var classNames = [...]string{"unclassified", "sync", "instr", "data"}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ParseClass parses the textual form used by the trace format.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if s == n {
			return Class(i), nil
		}
	}
	return Unclassified, fmt.Errorf("interconnect: unknown class %q", s)
}

// Interconnect prices one access: a reference by processor proc to
// word a issued at local time now, returning its completion time.
// Implementations keep their own occupancy state, so accesses must be
// issued in the deterministic event order of the driving engine.
type Interconnect interface {
	Access(proc int, a addr.Addr, now int64) int64
}

// bump increments the counter behind *h, resolving the handle on
// first use — counters register only once actually incremented, so a
// run that never waits renders no zero-valued wait line.
func bump(c *stats.Counters, h **int64, name string, delta int64) {
	if *h == nil {
		*h = c.Handle(name)
	}
	**h += delta
}

// Bus is a single serializing channel: one access at a time, each
// occupying the channel for Occupancy cycles. Accesses queue in issue
// order (the driving engine's event order).
type Bus struct {
	occupancy int64
	free      int64
	counts    *stats.Counters
	prefix    string
	accessH   *int64
	waitH     *int64
}

// NewBus returns a serializing channel with the given per-access
// occupancy, counting into counts under prefix (".access", ".wait").
func NewBus(occupancy int64, counts *stats.Counters, prefix string) *Bus {
	if occupancy < 0 {
		occupancy = 0
	}
	return &Bus{occupancy: occupancy, counts: counts, prefix: prefix}
}

// Access implements Interconnect.
func (b *Bus) Access(_ int, _ addr.Addr, now int64) int64 {
	start := now
	if b.free > start {
		bump(b.counts, &b.waitH, b.prefix+".wait", b.free-start)
		start = b.free
	}
	end := start + b.occupancy
	b.free = end
	bump(b.counts, &b.accessH, b.prefix+".access", 1)
	return end
}

// Crossbar is the Aquarius lower tier: interleaved memory banks
// behind a crossbar. Each access traverses the crossbar (WireCycles),
// queues on its word-interleaved bank (BankCycles service time), and
// traverses back. Per-bank occupancy is the only contention: accesses
// to different banks proceed in parallel.
type Crossbar struct {
	banks      int
	bankCycles int64
	wireCycles int64
	free       []int64
	counts     *stats.Counters

	// Stats handles are resolved once per counter — the per-access
	// fast path touches no map and formats no bank name.
	accessH *int64
	waitH   *int64
	bankH   []*int64
}

// NewCrossbar builds a crossbar over banks interleaved banks,
// counting into counts ("xbar.access", "xbar.bank-wait",
// "xbar.bank<i>").
func NewCrossbar(banks, bankCycles, wireCycles int, counts *stats.Counters) *Crossbar {
	if banks <= 0 {
		panic("interconnect: need at least one bank")
	}
	return &Crossbar{
		banks:      banks,
		bankCycles: int64(bankCycles),
		wireCycles: int64(wireCycles),
		free:       make([]int64, banks),
		counts:     counts,
		bankH:      make([]*int64, banks),
	}
}

// Banks returns the bank count.
func (x *Crossbar) Banks() int { return x.banks }

// BankOf returns the bank serving word address a (word-interleaved).
func (x *Crossbar) BankOf(a addr.Addr) int { return int(uint64(a) % uint64(x.banks)) }

// Access implements Interconnect.
func (x *Crossbar) Access(_ int, a addr.Addr, now int64) int64 {
	bank := x.BankOf(a)
	start := now + x.wireCycles
	if f := x.free[bank]; f > start {
		bump(x.counts, &x.waitH, "xbar.bank-wait", f-start)
		start = f
	}
	end := start + x.bankCycles
	x.free[bank] = end
	if x.bankH[bank] == nil {
		x.bankH[bank] = x.counts.Handle(fmt.Sprintf("xbar.bank%d", bank))
	}
	*x.bankH[bank]++
	bump(x.counts, &x.accessH, "xbar.access", 1)
	return end + x.wireCycles
}

// RemoteLink places another interconnect a network hop away: the
// disaggregated-memory configuration. A request serializes onto the
// outbound channel (Occupancy cycles), propagates for Latency cycles,
// is served by the inner interconnect, and the response serializes
// onto the inbound channel and propagates back. The two channel
// directions are independent (full duplex).
type RemoteLink struct {
	inner     Interconnect
	latency   int64
	occupancy int64
	reqFree   int64
	respFree  int64
	counts    *stats.Counters
	accessH   *int64
	reqWaitH  *int64
	respWaitH *int64
}

// NewRemoteLink wraps inner behind a link with one-way propagation
// latency and per-message channel occupancy, counting into counts
// ("remote.access", "remote.req-wait", "remote.resp-wait").
func NewRemoteLink(inner Interconnect, latency, occupancy int64, counts *stats.Counters) *RemoteLink {
	if latency < 0 {
		latency = 0
	}
	if occupancy < 0 {
		occupancy = 0
	}
	return &RemoteLink{inner: inner, latency: latency, occupancy: occupancy, counts: counts}
}

// Access implements Interconnect.
func (r *RemoteLink) Access(proc int, a addr.Addr, now int64) int64 {
	depart := now
	if r.reqFree > depart {
		bump(r.counts, &r.reqWaitH, "remote.req-wait", r.reqFree-depart)
		depart = r.reqFree
	}
	r.reqFree = depart + r.occupancy
	arrive := depart + r.occupancy + r.latency
	served := r.inner.Access(proc, a, arrive)
	back := served
	if r.respFree > back {
		bump(r.counts, &r.respWaitH, "remote.resp-wait", r.respFree-back)
		back = r.respFree
	}
	r.respFree = back + r.occupancy
	bump(r.counts, &r.accessH, "remote.access", 1)
	return back + r.occupancy + r.latency
}
