package interconnect

import (
	"fmt"
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/stats"
)

func TestClassString(t *testing.T) {
	cases := []struct {
		c    Class
		want string
	}{
		{Unclassified, "unclassified"},
		{Sync, "sync"},
		{Instr, "instr"},
		{Data, "data"},
		{Class(9), "class(9)"},
	}
	for _, c := range cases {
		if got := c.c.String(); got != c.want {
			t.Errorf("Class(%d).String() = %q, want %q", c.c, got, c.want)
		}
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range []Class{Unclassified, Sync, Instr, Data} {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(\"bogus\") succeeded, want error")
	}
}

func TestBusSerializes(t *testing.T) {
	cs := &stats.Counters{}
	b := NewBus(3, cs, "bus")
	if got := b.Access(0, 1, 10); got != 13 {
		t.Errorf("first access done at %d, want 13", got)
	}
	// Issued while the bus is busy: waits until 13, then 3 cycles.
	if got := b.Access(1, 2, 11); got != 16 {
		t.Errorf("second access done at %d, want 16", got)
	}
	// Issued after the bus drained: no wait.
	if got := b.Access(0, 3, 20); got != 23 {
		t.Errorf("third access done at %d, want 23", got)
	}
	if got := cs.Get("bus.access"); got != 3 {
		t.Errorf("bus.access = %d, want 3", got)
	}
	if got := cs.Get("bus.wait"); got != 2 {
		t.Errorf("bus.wait = %d, want 2", got)
	}
}

func TestCrossbarBankContention(t *testing.T) {
	cs := &stats.Counters{}
	x := NewCrossbar(4, 4, 1, cs)
	// Same bank back-to-back: second waits for the first's service.
	if got := x.Access(0, 0, 0); got != 6 { // 1 wire + 4 bank + 1 wire
		t.Errorf("access 1 done at %d, want 6", got)
	}
	if got := x.Access(1, 4, 0); got != 10 { // waits until 5, +4 +1
		t.Errorf("access 2 (same bank) done at %d, want 10", got)
	}
	// Different bank at the same time: full parallelism.
	if got := x.Access(2, 1, 0); got != 6 {
		t.Errorf("access 3 (other bank) done at %d, want 6", got)
	}
	if got := cs.Get("xbar.access"); got != 3 {
		t.Errorf("xbar.access = %d, want 3", got)
	}
	if got := cs.Get("xbar.bank-wait"); got != 4 {
		t.Errorf("xbar.bank-wait = %d, want 4", got)
	}
	if got := cs.Get("xbar.bank0"); got != 2 {
		t.Errorf("xbar.bank0 = %d, want 2", got)
	}
	if got := cs.Get("xbar.bank1"); got != 1 {
		t.Errorf("xbar.bank1 = %d, want 1", got)
	}
}

func TestCrossbarDeterministic(t *testing.T) {
	run := func() map[string]int64 {
		cs := &stats.Counters{}
		x := NewCrossbar(8, 4, 1, cs)
		now := int64(0)
		for i := 0; i < 1000; i++ {
			a := addr.Addr((i * 7) % 64)
			now = x.Access(i%4, a, now-2)
		}
		return cs.Snapshot()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("counter %s: %d vs %d", k, v, b[k])
		}
	}
}

// TestCrossbarAccessAllocs pins the hot path at zero allocations once
// every bank's stats handle is warm (satellite: no per-access
// fmt.Sprintf on the crossbar path).
func TestCrossbarAccessAllocs(t *testing.T) {
	cs := &stats.Counters{}
	x := NewCrossbar(8, 4, 1, cs)
	for b := 0; b < 8; b++ { // warm all bank handles + wait handle
		x.Access(0, addr.Addr(b), 0)
		x.Access(1, addr.Addr(b), 0)
	}
	var now int64
	allocs := testing.AllocsPerRun(1000, func() {
		now = x.Access(0, addr.Addr(now)%64, now)
	})
	if allocs != 0 {
		t.Errorf("crossbar Access allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestRemoteLinkLatency(t *testing.T) {
	cs := &stats.Counters{}
	x := NewCrossbar(4, 4, 1, cs)
	r := NewRemoteLink(x, 100, 2, cs)
	// depart 0, req channel until 2, arrive 102, xbar 102->108,
	// resp channel 108->110, arrive back 210.
	if got := r.Access(0, 0, 0); got != 210 {
		t.Errorf("remote access done at %d, want 210", got)
	}
	// Second access right behind: req channel busy until 2.
	// depart 2, arrive 104, same bank busy until 107 -> wait,
	// served 112, resp 112->114, back 214.
	if got := r.Access(1, 4, 1); got != 214 {
		t.Errorf("second remote access done at %d, want 214", got)
	}
	if got := cs.Get("remote.access"); got != 2 {
		t.Errorf("remote.access = %d, want 2", got)
	}
	if got := cs.Get("remote.req-wait"); got != 1 {
		t.Errorf("remote.req-wait = %d, want 1", got)
	}
}

func TestRemoteLinkZeroCostIsTransparent(t *testing.T) {
	csA := &stats.Counters{}
	xa := NewCrossbar(4, 4, 1, csA)
	csB := &stats.Counters{}
	xb := NewCrossbar(4, 4, 1, csB)
	r := NewRemoteLink(xb, 0, 0, csB)
	for i := 0; i < 100; i++ {
		a := addr.Addr(i % 16)
		da := xa.Access(i%4, a, int64(i))
		db := r.Access(i%4, a, int64(i))
		if da != db {
			t.Fatalf("access %d: direct %d vs zero-cost remote %d", i, da, db)
		}
	}
}

func TestBankCounterNames(t *testing.T) {
	cs := &stats.Counters{}
	x := NewCrossbar(3, 4, 1, cs)
	for i := 0; i < 3; i++ {
		x.Access(0, addr.Addr(i), 0)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("xbar.bank%d", i)
		if got := cs.Get(name); got != 1 {
			t.Errorf("%s = %d, want 1", name, got)
		}
	}
}
