package goodman

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestWriteOnceSequence(t *testing.T) {
	// Miss -> fetch; first write -> write-through -> Reserved;
	// second write -> Dirty with no bus access.
	r := p.ProcAccess(I, protocol.OpWrite)
	if r.Cmd != bus.Read {
		t.Fatalf("write miss should fetch first: %+v", r)
	}
	c := p.Complete(I, protocol.OpWrite, &bus.Transaction{Cmd: bus.Read})
	if c.NewState != V || c.Done {
		t.Fatalf("fetch phase: %+v, want V and not done", c)
	}
	r = p.ProcAccess(V, protocol.OpWrite)
	if r.Cmd != bus.WriteWord {
		t.Fatalf("first write: %+v, want write-through", r)
	}
	c = p.Complete(V, protocol.OpWrite, &bus.Transaction{Cmd: bus.WriteWord})
	if c.NewState != R || !c.Done {
		t.Fatalf("after first write: %+v, want Reserved", c)
	}
	r = p.ProcAccess(R, protocol.OpWrite)
	if !r.Hit || r.NewState != D {
		t.Fatalf("second write: %+v, want silent -> Dirty", r)
	}
}

func TestWriteThroughInvalidates(t *testing.T) {
	for _, s := range []protocol.State{V, R} {
		res := p.Snoop(s, &bus.Transaction{Cmd: bus.WriteWord})
		if res.NewState != I {
			t.Errorf("snoop writeword on %s -> %s, want I", p.StateName(s), p.StateName(res.NewState))
		}
	}
}

func TestDirtySourceSuppliesAndFlushes(t *testing.T) {
	res := p.Snoop(D, &bus.Transaction{Cmd: bus.Read})
	if !res.Supply || !res.Flush || res.NewState != V {
		t.Errorf("snoop read on D: %+v, want supply+flush -> V", res)
	}
}

func TestReserveLostOnFetch(t *testing.T) {
	res := p.Snoop(R, &bus.Transaction{Cmd: bus.Read})
	if res.NewState != V || !res.Hit {
		t.Errorf("snoop read on R: %+v, want -> V", res)
	}
}

func TestNoFetchForWriteOnReadMiss(t *testing.T) {
	// Feature 5 absent: a read miss always takes read privilege.
	c := p.Complete(I, protocol.OpRead, &bus.Transaction{Cmd: bus.Read})
	if c.NewState != V {
		t.Errorf("read miss -> %s, want V", p.StateName(c.NewState))
	}
	if f := p.Features(); f.ReadForWrite != "" || f.BusInvalidateSignal {
		t.Errorf("features: %+v", f)
	}
}

func TestEvictOnlyDirty(t *testing.T) {
	for s, want := range map[protocol.State]bool{I: false, V: false, R: false, D: true} {
		if got := p.Evict(s).Writeback; got != want {
			t.Errorf("Evict(%s).Writeback = %v", p.StateName(s), got)
		}
	}
}

func TestClassification(t *testing.T) {
	if p.Privilege(V) != protocol.PrivRead || p.Privilege(R) != protocol.PrivWrite || p.Privilege(D) != protocol.PrivWrite {
		t.Error("privilege classification wrong")
	}
	if p.IsSource(R) || !p.IsSource(D) {
		t.Error("only D is a source state in Goodman")
	}
	if p.IsDirty(R) {
		t.Error("Reserved is clean (the write went through)")
	}
}

// The complete write-once machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, V, R, D}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read},
		{S: I, Op: protocol.OpWrite, Cmd: bus.Read}, // fetch precedes the write-through
		{S: V, Op: protocol.OpRead, Hit: true, NS: V},
		{S: V, Op: protocol.OpReadEx, Hit: true, NS: V},
		{S: V, Op: protocol.OpWrite, Cmd: bus.WriteWord}, // write once: through to memory
		{S: R, Op: protocol.OpRead, Hit: true, NS: R},
		{S: R, Op: protocol.OpReadEx, Hit: true, NS: R},
		{S: R, Op: protocol.OpWrite, Hit: true, NS: D}, // second write: dirty, silent
		{S: D, Op: protocol.OpRead, Hit: true, NS: D},
		{S: D, Op: protocol.OpReadEx, Hit: true, NS: D},
		{S: D, Op: protocol.OpWrite, Hit: true, NS: D},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.WriteWord, NS: I},
		{S: V, Cmd: bus.Read, NS: V, Hit: true},
		{S: V, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: V, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: V, Cmd: bus.WriteWord, NS: I, Hit: true}, // invalidating write-through
		{S: R, Cmd: bus.Read, NS: V, Hit: true},      // reserve lost
		{S: R, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: R, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: R, Cmd: bus.WriteWord, NS: I, Hit: true},
		{S: D, Cmd: bus.Read, NS: V, Hit: true, Supply: true, Flush: true}, // Feature 7 "F"
		{S: D, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.Upgrade, NS: I, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.WriteWord, NS: I, Hit: true}, // unreachable in pure write-once
	})
}
