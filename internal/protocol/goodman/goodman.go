// Package goodman implements Goodman's 1983 write-once protocol
// (Sections F.1, F.2): the first full-broadcast write-in scheme, with
// identical dual directories and fully distributed
// read/write/dirty/source status. The first write to a block goes
// through to memory — the original Multibus allowed no invalidation
// signal concurrent with a fetch, so the write-through doubles as the
// invalidation broadcast — leaving the block clean in the Reserved
// state; only the second write makes the block dirty, at which point
// the cache becomes its source. Dirty blocks are flushed to memory
// when transferred cache-to-cache, so they arrive clean (Feature 7
// "F").
package goodman

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid.
	I protocol.State = iota
	// V is Valid: a clean, possibly shared copy.
	V
	// R is Reserved: written exactly once (the write went through to
	// memory, invalidating other copies), still clean.
	R
	// D is Dirty: written at least twice; the sole, dirty copy and the
	// source of the block.
	D
)

var stateNames = [...]string{I: "I", V: "V", R: "R", D: "D"}

// Protocol is Goodman's write-once scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("goodman", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "goodman" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol (Table 1, column 1).
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Goodman",
		Year:   1983,
		Policy: protocol.PolicyWriteIn,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowRead:       protocol.MarkNonSource,
			protocol.RowWriteClean: protocol.MarkNonSource, // Reserved
			protocol.RowWriteDirty: protocol.MarkSource,
		},
		CacheToCache:     true,
		DistributedState: "RWDS",
		DirectoryOrg:     "ID",
		FlushOnTransfer:  "F",
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I:
			// Write miss: fetch the block first; the write-through
			// follows as a second phase.
			return protocol.ProcResult{Cmd: bus.Read}
		case V:
			// First write: write through to memory; the broadcast
			// invalidates every other copy.
			return protocol.ProcResult{Cmd: bus.WriteWord}
		case R:
			// Second write: the block becomes dirty and this cache
			// becomes its source. No bus access needed.
			return protocol.ProcResult{Hit: true, NewState: D}
		default: // D
			return protocol.ProcResult{Hit: true, NewState: D}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		// Dirty blocks are flushed when transferred, so the copy
		// always arrives clean.
		done := op == protocol.OpRead || op == protocol.OpReadEx
		return protocol.CompleteResult{NewState: V, Done: done}
	case bus.WriteWord:
		return protocol.CompleteResult{NewState: R, Done: true}
	}
	panic(fmt.Sprintf("goodman: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case V:
			return protocol.SnoopResult{NewState: V, Hit: true}
		case R:
			// Reserve is lost once anyone else fetches the block.
			return protocol.SnoopResult{NewState: V, Hit: true}
		case D:
			// Source function: supply the block and flush it to
			// memory concurrently, so it arrives clean.
			return protocol.SnoopResult{NewState: V, Hit: true, Supply: true, Flush: true}
		}
	case bus.WriteWord:
		// Another cache's write-through invalidates the local copy.
		if s != I {
			return protocol.SnoopResult{NewState: I, Hit: true}
		}
	case bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.IOWrite:
		// Not issued by Goodman caches, but I/O and mixed-protocol
		// tests use them.
		switch s {
		case V, R:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case D:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Flush: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == D}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case V:
		return protocol.PrivRead
	case R, D:
		// Reserved and Dirty hold the sole copy: the invalidating
		// write-through purged every other cache.
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == D }

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool { return s == D }
