package protocol

import (
	"fmt"

	"cachesync/internal/bus"
)

// Test-only exports: the packed encodings and cell stores are
// unexported, so the exhaustive round-trip and table-vs-method tests
// reach them through these hooks.

const (
	NumOpsForTest           = numOps
	NumCmdsForTest          = numCmds
	NumCompleteFlagsForTest = numCompleteFlags
	MaxTableStateForTest    = maxTableState
)

// KeyTxnForTest builds the zero-noise transaction of a Complete key.
func KeyTxnForTest(cmd bus.Cmd, flags int) bus.Transaction { return keyTxn(cmd, flags) }

// NoisyTxnForTest builds the all-noise transaction of a Complete key.
func NoisyTxnForTest(cmd bus.Cmd, flags int) bus.Transaction { return noisyTxn(cmd, flags) }

// SnoopNoisyTxnForTest builds the all-noise transaction of a Snoop key.
func SnoopNoisyTxnForTest(cmd bus.Cmd) bus.Transaction { return snoopNoisyTxn(cmd) }

// ValidStatesForTest lists the compiled reachable states.
func (t *Table) ValidStatesForTest() []State { return t.sortedStates() }

// RoundTripAllCellsForTest re-encodes every cell of every table
// through its packed fixed-width form and returns the first mismatch.
func (t *Table) RoundTripAllCellsForTest() error {
	for i, c := range t.proc {
		if got := unpackProc(packProc(c)); got != c {
			return fmt.Errorf("proc cell %d: %+v -> %04x -> %+v", i, c, packProc(c), got)
		}
	}
	for i, c := range t.complete {
		if got := unpackComplete(packComplete(c)); got != c {
			return fmt.Errorf("complete cell %d: %+v -> %04x -> %+v", i, c, packComplete(c), got)
		}
	}
	for i, c := range t.snoop {
		if got := unpackSnoop(packSnoop(c)); got != c {
			return fmt.Errorf("snoop cell %d: %+v -> %04x -> %+v", i, c, packSnoop(c), got)
		}
	}
	for si := 0; si < t.nstates; si++ {
		packed := packEvict(t.evict[si], t.priv[si], t.dirty[si], t.source[si])
		e, priv, dirty, source := unpackEvict(packed)
		if e != t.evict[si] || priv != t.priv[si] || dirty != t.dirty[si] || source != t.source[si] {
			return fmt.Errorf("state cell %d: evict=%+v priv=%v dirty=%v source=%v -> %02x -> %+v %v %v %v",
				si, t.evict[si], t.priv[si], t.dirty[si], t.source[si], packed, e, priv, dirty, source)
		}
	}
	return nil
}

// PackRoundTripForTest round-trips arbitrary synthetic cells (all bit
// patterns, not just those a protocol reaches).
func PackRoundTripForTest(pr ProcResult, cc CompleteResult, cok bool, sr SnoopResult, sok bool, e Evict, priv Priv, dirty, source bool) error {
	if got := unpackProc(packProc(pr)); got != pr {
		return fmt.Errorf("proc %+v -> %+v", pr, got)
	}
	if got := unpackComplete(packComplete(completeCell{res: cc, ok: cok})); got.res != cc || got.ok != cok {
		return fmt.Errorf("complete %+v/%v -> %+v", cc, cok, got)
	}
	if got := unpackSnoop(packSnoop(snoopCell{res: sr, ok: sok})); got.res != sr || got.ok != sok {
		return fmt.Errorf("snoop %+v/%v -> %+v", sr, sok, got)
	}
	ge, gp, gd, gs := unpackEvict(packEvict(e, priv, dirty, source))
	if ge != e || gp != priv || gd != dirty || gs != source {
		return fmt.Errorf("evict %+v/%v/%v/%v -> %+v/%v/%v/%v", e, priv, dirty, source, ge, gp, gd, gs)
	}
	return nil
}
