// Package all registers every protocol implementation with the
// protocol registry. Blank-import it wherever protocols are looked up
// by name.
package all

import (
	// Each import registers its protocol in init.
	_ "cachesync/internal/core"
	_ "cachesync/internal/protocol/berkeley"
	_ "cachesync/internal/protocol/censier"
	_ "cachesync/internal/protocol/dragon"
	_ "cachesync/internal/protocol/firefly"
	_ "cachesync/internal/protocol/goodman"
	_ "cachesync/internal/protocol/illinois"
	_ "cachesync/internal/protocol/locke"
	_ "cachesync/internal/protocol/rudolph"
	_ "cachesync/internal/protocol/synapse"
	_ "cachesync/internal/protocol/writethrough"
	_ "cachesync/internal/protocol/yen"
)

// Names of the protocols in the paper's Table 1 column order.
var Table1Order = []string{
	"goodman", "synapse", "illinois", "yen", "berkeley", "bitar",
}

// Everything lists all protocols in historical order.
var Everything = []string{
	"writethrough", "censier", "goodman", "dragon", "firefly",
	"rudolph", "synapse", "illinois", "yen", "berkeley", "bitar",
	"bitar-memsrc", "locke",
}
