package protocol_test

import (
	"fmt"
	"strings"
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
)

// validStates enumerates a protocol's real states: those it gives a
// name to (unknown values render as "state(N)").
func validStates(p protocol.Protocol) []protocol.State {
	var out []protocol.State
	for s := protocol.State(0); s < 16; s++ {
		if p.StateName(s) != fmt.Sprintf("state(%d)", uint16(s)) {
			out = append(out, s)
		}
	}
	return out
}

// opsFor lists the processor operations the engine can actually issue
// against a protocol (locks only with hardware-lock support, block
// writes only with Feature 9 — otherwise the engine lowers them).
func opsFor(p protocol.Protocol) []protocol.Op {
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	f := p.Features()
	if f.HardwareLock {
		ops = append(ops, protocol.OpLock, protocol.OpUnlock)
	}
	if f.WriteNoFetch {
		ops = append(ops, protocol.OpWriteBlock)
	}
	return ops
}

func isValid(p protocol.Protocol, s protocol.State) bool {
	return p.StateName(s) != fmt.Sprintf("state(%d)", uint16(s))
}

// TestProcAccessTotality: every reachable (state, op) pair yields
// either a hit with a valid new state or a real bus command.
func TestProcAccessTotality(t *testing.T) {
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		for _, s := range validStates(p) {
			for _, op := range opsFor(p) {
				r := p.ProcAccess(s, op)
				if r.Hit {
					if !isValid(p, r.NewState) {
						t.Errorf("%s: ProcAccess(%s,%s) hit into invalid state %d",
							name, p.StateName(s), op, r.NewState)
					}
					if r.NewState == protocol.Invalid {
						t.Errorf("%s: ProcAccess(%s,%s) hit into Invalid", name, p.StateName(s), op)
					}
				} else if r.Cmd == bus.None {
					t.Errorf("%s: ProcAccess(%s,%s) neither hits nor issues a command",
						name, p.StateName(s), op)
				}
			}
		}
	}
}

// TestSnoopTotality: snooping any command against any valid state
// yields a valid state and asserts only lines the scheme can drive.
func TestSnoopTotality(t *testing.T) {
	cmds := []bus.Cmd{
		bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord, bus.UpdateWord,
		bus.Flush, bus.Unlock, bus.WriteNoFetch, bus.IORead, bus.IOWrite,
	}
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		hw := p.Features().HardwareLock
		for _, s := range validStates(p) {
			for _, cmd := range cmds {
				res := p.Snoop(s, &bus.Transaction{Cmd: cmd, Requester: 1})
				if !isValid(p, res.NewState) {
					t.Errorf("%s: Snoop(%s,%v) -> invalid state %d", name, p.StateName(s), cmd, res.NewState)
				}
				if res.Locked && !hw {
					t.Errorf("%s: Snoop(%s,%v) asserted Locked without a hardware lock",
						name, p.StateName(s), cmd)
				}
				if res.Supply && s == protocol.Invalid {
					t.Errorf("%s: invalid line supplied data on %v", name, cmd)
				}
			}
		}
	}
}

// TestDirtyImpliesWriteback: a dirty state must write back on
// eviction, a clean one must not (dirty data is never dropped,
// clean evictions are free).
func TestDirtyImpliesWriteback(t *testing.T) {
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		for _, s := range validStates(p) {
			if got := p.Evict(s).Writeback; got != p.IsDirty(s) {
				t.Errorf("%s: state %s dirty=%v but writeback=%v",
					name, p.StateName(s), p.IsDirty(s), got)
			}
		}
	}
}

// TestSourcesSupplyWritePrivilegeRequests: every non-locked source
// state must supply the block when another cache fetches it with
// write privilege (the minimum source function).
func TestSourcesSupplyWritePrivilegeRequests(t *testing.T) {
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		if !p.Features().CacheToCache {
			continue
		}
		for _, s := range validStates(p) {
			if !p.IsSource(s) || p.Privilege(s) == protocol.PrivLock {
				continue
			}
			res := p.Snoop(s, &bus.Transaction{Cmd: bus.ReadX, Requester: 1})
			if !res.Supply {
				t.Errorf("%s: source state %s did not supply on ReadX", name, p.StateName(s))
			}
		}
	}
}

// TestLockedStatesDenyEverything: lock-privilege states must assert
// the Locked line against every access request.
func TestLockedStatesDenyEverything(t *testing.T) {
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		for _, s := range validStates(p) {
			if p.Privilege(s) != protocol.PrivLock {
				continue
			}
			for _, cmd := range []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteNoFetch} {
				res := p.Snoop(s, &bus.Transaction{Cmd: cmd, Requester: 1})
				if !res.Locked {
					t.Errorf("%s: locked state %s did not deny %v", name, p.StateName(s), cmd)
				}
				if res.Supply {
					t.Errorf("%s: locked state %s supplied on %v", name, p.StateName(s), cmd)
				}
			}
		}
	}
}

// TestCompleteTotality drives Complete with every command the
// protocol actually issues and every plausible line combination.
func TestCompleteTotality(t *testing.T) {
	lineCombos := []bus.Lines{
		{},
		{Hit: true},
		{Hit: true, SourceHit: true, Inhibit: true},
		{Hit: true, SourceHit: true, Dirty: true, Inhibit: true},
	}
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		hw := p.Features().HardwareLock
		for _, s := range validStates(p) {
			for _, op := range opsFor(p) {
				r := p.ProcAccess(s, op)
				if r.Hit {
					continue
				}
				for _, lines := range lineCombos {
					txn := &bus.Transaction{Cmd: r.Cmd, Lines: lines}
					c := p.Complete(s, op, txn)
					if !isValid(p, c.NewState) {
						t.Errorf("%s: Complete(%s,%s,%v,%+v) -> invalid state %d",
							name, p.StateName(s), op, r.Cmd, lines, c.NewState)
					}
					if c.BusyWait {
						t.Errorf("%s: Complete busy-waits without a Locked line", name)
					}
				}
				if hw {
					txn := &bus.Transaction{Cmd: r.Cmd}
					txn.Lines.Locked = true
					c := p.Complete(s, op, txn)
					if r.Cmd != bus.Unlock && !c.BusyWait {
						t.Errorf("%s: Complete(%s,%s) ignored the Locked line", name, p.StateName(s), op)
					}
				}
			}
		}
	}
}

// TestStateNamesDistinct: state names must be unique within a
// protocol (they label traces and figures).
func TestStateNamesDistinct(t *testing.T) {
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		seen := map[string]protocol.State{}
		for _, s := range validStates(p) {
			n := p.StateName(s)
			if strings.TrimSpace(n) == "" {
				t.Errorf("%s: state %d has an empty name", name, s)
			}
			if prev, dup := seen[n]; dup {
				t.Errorf("%s: states %d and %d share the name %q", name, prev, s, n)
			}
			seen[n] = s
		}
	}
}

// TestInvalidSnoopsAreInert: protocols that do not snoop invalid
// lines must leave Invalid untouched for every command.
func TestInvalidSnoopsAreInert(t *testing.T) {
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.Flush, bus.Unlock, bus.IOWrite}
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		if p.Features().SnoopsInvalid {
			continue
		}
		for _, cmd := range cmds {
			res := p.Snoop(protocol.Invalid, &bus.Transaction{Cmd: cmd, Requester: 1})
			if res.NewState != protocol.Invalid || res.Supply || res.Hit || res.Locked {
				t.Errorf("%s: Snoop(Invalid,%v) = %+v, want inert", name, cmd, res)
			}
		}
	}
}
