// Compiled transition tables: every registered protocol is a pure
// state machine, so each hook can be flattened into a dense lookup
// table indexed by a packed (state, event) key and consulted with one
// array load instead of an interface call. Tables are compiled at
// first use by exhaustively enumerating the reachable state × event
// space against the method implementations — the methods stay the
// oracle (differentially tested in internal/ptest), and every lookup
// falls back to them outside the compiled domain, so behavior is
// byte-for-byte identical by construction.
//
// Key layout (mirrors what the engines actually pass):
//
//	ProcAccess  (state, op)
//	Complete    (state, op, t.Cmd, t.Lines.{Hit,SourceHit,Dirty,Locked}, t.AfterWait)
//	Snoop       (state, t.Cmd)
//	Evict/Privilege/IsDirty/IsSource (state)
//
// Complete and Snoop read only those Transaction fields; Compile
// verifies this per cell by probing each implementation twice — once
// with every irrelevant field zero, once with all of them set to
// noisy values — and refuses to compile a protocol whose results
// differ (the caller then keeps the method path).
package protocol

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"

	"cachesync/internal/bus"
)

const (
	// numOps is the number of processor-side operations (OpRead..OpWriteBlock).
	numOps = int(OpWriteBlock) + 1
	// numCmds is the number of bus commands, including bus.None.
	numCmds = int(bus.IOWrite) + 1
	// numCompleteFlags spans the packed response-line/AfterWait flag
	// combinations a Complete key distinguishes (5 bits).
	numCompleteFlags = 32
	// maxTableState bounds the dense state range; protocols encoding
	// per-line bookkeeping in high state bits exceed it and simply keep
	// the method path.
	maxTableState = 63
)

// Complete-key flag bits.
const (
	flagHit = 1 << iota
	flagSourceHit
	flagDirty
	flagLocked
	flagAfterWait
)

// completeFlags packs the transaction fields a Complete key carries.
func completeFlags(t *bus.Transaction) int {
	f := 0
	if t.Lines.Hit {
		f |= flagHit
	}
	if t.Lines.SourceHit {
		f |= flagSourceHit
	}
	if t.Lines.Dirty {
		f |= flagDirty
	}
	if t.Lines.Locked {
		f |= flagLocked
	}
	if t.AfterWait {
		f |= flagAfterWait
	}
	return f
}

// completeCell is one Complete table entry; ok=false marks a cell the
// implementation panicked on (unreachable event), which falls back to
// the method so the panic message stays identical.
type completeCell struct {
	res CompleteResult
	ok  bool
}

// snoopCell is one Snoop table entry.
type snoopCell struct {
	res SnoopResult
	ok  bool
}

// Table holds the compiled transition tables of one protocol. All
// lookups fall back to the underlying methods for states or events
// outside the compiled domain, so a Table is always safe to consult.
type Table struct {
	proto   Protocol
	nstates int

	valid    []bool         // [state]: state is in the compiled reachable set
	proc     []ProcResult   // [state][op]
	complete []completeCell // [state][op][cmd][flags]
	snoop    []snoopCell    // [state][cmd]
	evict    []Evict        // [state]
	priv     []Priv         // [state]
	dirty    []bool         // [state]
	source   []bool         // [state]
}

// Proto returns the protocol the table was compiled from.
func (t *Table) Proto() Protocol { return t.proto }

// NumStates returns the size of the compiled dense state range.
func (t *Table) NumStates() int { return t.nstates }

// ProcAccess is the table-driven Protocol.ProcAccess.
func (t *Table) ProcAccess(s State, op Op) ProcResult {
	if i := int(s)*numOps + int(op); i < len(t.proc) && t.valid[s] {
		return t.proc[i]
	}
	return t.proto.ProcAccess(s, op)
}

// Complete is the table-driven Protocol.Complete.
func (t *Table) Complete(s State, op Op, txn *bus.Transaction) CompleteResult {
	if int(s) < t.nstates && t.valid[s] && int(op) < numOps && int(txn.Cmd) < numCmds {
		c := t.complete[((int(s)*numOps+int(op))*numCmds+int(txn.Cmd))*numCompleteFlags+completeFlags(txn)]
		if c.ok {
			return c.res
		}
	}
	return t.proto.Complete(s, op, txn)
}

// Snoop is the table-driven Protocol.Snoop.
func (t *Table) Snoop(s State, txn *bus.Transaction) SnoopResult {
	if i := int(s)*numCmds + int(txn.Cmd); i < len(t.snoop) && t.valid[s] {
		if c := t.snoop[i]; c.ok {
			return c.res
		}
	}
	return t.proto.Snoop(s, txn)
}

// Evict is the table-driven Protocol.Evict.
func (t *Table) Evict(s State) Evict {
	if int(s) < t.nstates && t.valid[s] {
		return t.evict[s]
	}
	return t.proto.Evict(s)
}

// Privilege is the table-driven Protocol.Privilege.
func (t *Table) Privilege(s State) Priv {
	if int(s) < t.nstates && t.valid[s] {
		return t.priv[s]
	}
	return t.proto.Privilege(s)
}

// IsDirty is the table-driven Protocol.IsDirty.
func (t *Table) IsDirty(s State) bool {
	if int(s) < t.nstates && t.valid[s] {
		return t.dirty[s]
	}
	return t.proto.IsDirty(s)
}

// IsSource is the table-driven Protocol.IsSource.
func (t *Table) IsSource(s State) bool {
	if int(s) < t.nstates && t.valid[s] {
		return t.source[s]
	}
	return t.proto.IsSource(s)
}

// safeProc calls ProcAccess with panic recovery.
func safeProc(p Protocol, s State, op Op) (r ProcResult, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return p.ProcAccess(s, op), true
}

// safeComplete calls Complete with panic recovery.
func safeComplete(p Protocol, s State, op Op, t *bus.Transaction) (r CompleteResult, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return p.Complete(s, op, t), true
}

// safeSnoop calls Snoop with panic recovery.
func safeSnoop(p Protocol, s State, t *bus.Transaction) (r SnoopResult, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return p.Snoop(s, t), true
}

// keyTxn builds the transaction a (cmd, flags) Complete key denotes,
// with every non-key field zero. noisyTxn builds the same key with
// every non-key field set, for the field-dependence probe.
func keyTxn(cmd bus.Cmd, flags int) bus.Transaction {
	return bus.Transaction{
		Cmd: cmd,
		Lines: bus.Lines{
			Hit:       flags&flagHit != 0,
			SourceHit: flags&flagSourceHit != 0,
			Dirty:     flags&flagDirty != 0,
			Locked:    flags&flagLocked != 0,
		},
		AfterWait: flags&flagAfterWait != 0,
	}
}

func noisyTxn(cmd bus.Cmd, flags int) bus.Transaction {
	t := keyTxn(cmd, flags)
	t.Block = 3
	t.Addr = 29
	t.Requester = 5
	t.LockIntent = true
	t.UnlockIntent = true
	t.MemUpdate = true
	t.WordData = 0xdeadbeefcafe
	t.Lines.Inhibit = true
	t.BlockData = []uint64{1, 2, 3, 4}
	t.Suppliers = []int{1, 2}
	t.Flushed = true
	t.SupplyWordCount = 2
	t.DirtyUnits = []bool{true, false}
	return t
}

// snoopKeyTxn/snoopNoisyTxn are the Snoop-key analogues: only Cmd is
// in the key, so the noisy form sets every response line too.
func snoopKeyTxn(cmd bus.Cmd) bus.Transaction {
	return bus.Transaction{Cmd: cmd}
}

func snoopNoisyTxn(cmd bus.Cmd) bus.Transaction {
	t := noisyTxn(cmd, flagHit|flagSourceHit|flagDirty|flagLocked|flagAfterWait)
	return t
}

// Compile flattens p's state machine into dense tables by exhaustive
// enumeration of the reachable state × event space. It fails — and the
// caller keeps the method path — when the reachable states exceed the
// dense bound, when a per-state hook panics on a reachable state, or
// when Complete/Snoop turn out to depend on a Transaction field
// outside the table key.
func Compile(p Protocol) (*Table, error) {
	// Reachable-state closure, seeded with Invalid and the lock-purge
	// reclaim states (entered from memory lock tags, not transitions).
	seen := map[State]bool{Invalid: true}
	queue := []State{Invalid}
	add := func(s State) {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	if lr, ok := p.(LockReclaimer); ok {
		add(lr.ReclaimedLockState(false))
		add(lr.ReclaimedLockState(true))
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for op := Op(0); int(op) < numOps; op++ {
			if r, ok := safeProc(p, s, op); ok && r.Hit {
				add(r.NewState)
			}
			for cmd := bus.Cmd(0); int(cmd) < numCmds; cmd++ {
				for flags := 0; flags < numCompleteFlags; flags++ {
					t := keyTxn(cmd, flags)
					if r, ok := safeComplete(p, s, op, &t); ok {
						add(r.NewState)
					}
				}
			}
		}
		for cmd := bus.Cmd(0); int(cmd) < numCmds; cmd++ {
			t := snoopKeyTxn(cmd)
			if r, ok := safeSnoop(p, s, &t); ok {
				add(r.NewState)
			}
		}
	}

	maxState := State(0)
	for s := range seen {
		if s > maxState {
			maxState = s
		}
	}
	if int(maxState) > maxTableState {
		return nil, fmt.Errorf("protocol %s: state %d exceeds dense table bound %d",
			p.Name(), maxState, maxTableState)
	}

	n := int(maxState) + 1
	t := &Table{
		proto:    p,
		nstates:  n,
		valid:    make([]bool, n),
		proc:     make([]ProcResult, n*numOps),
		complete: make([]completeCell, n*numOps*numCmds*numCompleteFlags),
		snoop:    make([]snoopCell, n*numCmds),
		evict:    make([]Evict, n),
		priv:     make([]Priv, n),
		dirty:    make([]bool, n),
		source:   make([]bool, n),
	}
	for si := 0; si < n; si++ {
		s := State(si)
		if !seen[s] {
			continue
		}
		t.valid[si] = true
		// Per-state hooks must be total over reachable states: the
		// engines call them unconditionally.
		var perStateErr error
		func() {
			defer func() {
				if r := recover(); r != nil {
					perStateErr = fmt.Errorf("protocol %s: per-state hook panicked on reachable state %d: %v",
						p.Name(), si, r)
				}
			}()
			t.evict[si] = p.Evict(s)
			t.priv[si] = p.Privilege(s)
			t.dirty[si] = p.IsDirty(s)
			t.source[si] = p.IsSource(s)
		}()
		if perStateErr != nil {
			return nil, perStateErr
		}
		for op := Op(0); int(op) < numOps; op++ {
			r, ok := safeProc(p, s, op)
			if !ok {
				return nil, fmt.Errorf("protocol %s: ProcAccess(%d, %s) panicked on reachable state",
					p.Name(), si, op)
			}
			t.proc[si*numOps+int(op)] = r
			for cmd := bus.Cmd(0); int(cmd) < numCmds; cmd++ {
				for flags := 0; flags < numCompleteFlags; flags++ {
					zero := keyTxn(cmd, flags)
					noisy := noisyTxn(cmd, flags)
					rz, okz := safeComplete(p, s, op, &zero)
					rn, okn := safeComplete(p, s, op, &noisy)
					if okz != okn || (okz && rz != rn) {
						return nil, fmt.Errorf("protocol %s: Complete(%d, %s, %s/flags=%#x) depends on a transaction field outside the table key",
							p.Name(), si, op, cmd, flags)
					}
					idx := ((si*numOps+int(op))*numCmds+int(cmd))*numCompleteFlags + flags
					t.complete[idx] = completeCell{res: rz, ok: okz}
				}
			}
		}
		for cmd := bus.Cmd(0); int(cmd) < numCmds; cmd++ {
			zero := snoopKeyTxn(cmd)
			noisy := snoopNoisyTxn(cmd)
			rz, okz := safeSnoop(p, s, &zero)
			rn, okn := safeSnoop(p, s, &noisy)
			if okz != okn || (okz && rz != rn) {
				return nil, fmt.Errorf("protocol %s: Snoop(%d, %s) depends on a transaction field outside the table key",
					p.Name(), si, cmd)
			}
			t.snoop[si*numCmds+int(cmd)] = snoopCell{res: rz, ok: okz}
		}
	}
	return t, nil
}

// tableCache memoizes compiled tables per registry name (nil marks a
// protocol that failed to compile, so the failure is not retried).
var tableCache sync.Map // string -> *Table

// TableFor returns the compiled table for p, or nil when p should stay
// on the method path: p is not the registered implementation of its
// name (e.g. a model-checker mutant wrapper), or its machine does not
// fit the dense tables. Safe for concurrent use.
func TableFor(p Protocol) *Table {
	f, registered := registry[p.Name()]
	if !registered || reflect.TypeOf(f()) != reflect.TypeOf(p) {
		return nil
	}
	if v, hit := tableCache.Load(p.Name()); hit {
		return v.(*Table)
	}
	t, err := Compile(p)
	if err != nil {
		t = nil
	}
	v, _ := tableCache.LoadOrStore(p.Name(), t)
	return v.(*Table)
}

// Packed fixed-width cell encodings. The in-memory tables store plain
// structs (one load, no decode), but every cell round-trips through
// these packed forms: they are the golden-file representation gated by
// verify.sh, and the round-trip is exhaustively asserted in tests.

// packProc packs a ProcResult into 16 bits:
// bits 0-7 NewState, 8 Hit, 9-12 Cmd, 13 LockIntent, 14 MemUpdate.
func packProc(r ProcResult) uint16 {
	v := uint16(r.NewState) & 0xff
	if r.Hit {
		v |= 1 << 8
	}
	v |= (uint16(r.Cmd) & 0xf) << 9
	if r.LockIntent {
		v |= 1 << 13
	}
	if r.MemUpdate {
		v |= 1 << 14
	}
	return v
}

func unpackProc(v uint16) ProcResult {
	return ProcResult{
		NewState:   State(v & 0xff),
		Hit:        v&(1<<8) != 0,
		Cmd:        bus.Cmd(v >> 9 & 0xf),
		LockIntent: v&(1<<13) != 0,
		MemUpdate:  v&(1<<14) != 0,
	}
}

// packComplete packs a Complete cell into 16 bits:
// bits 0-7 NewState, 8 Done, 9 BusyWait, 15 ok.
func packComplete(c completeCell) uint16 {
	v := uint16(c.res.NewState) & 0xff
	if c.res.Done {
		v |= 1 << 8
	}
	if c.res.BusyWait {
		v |= 1 << 9
	}
	if c.ok {
		v |= 1 << 15
	}
	return v
}

func unpackComplete(v uint16) completeCell {
	return completeCell{
		res: CompleteResult{
			NewState: State(v & 0xff),
			Done:     v&(1<<8) != 0,
			BusyWait: v&(1<<9) != 0,
		},
		ok: v&(1<<15) != 0,
	}
}

// packSnoop packs a Snoop cell into 16 bits: bits 0-7 NewState, then
// Hit, Locked, Supply, Dirty, Flush, UpdateWord, TakeWord, ok.
func packSnoop(c snoopCell) uint16 {
	v := uint16(c.res.NewState) & 0xff
	bits := []bool{c.res.Hit, c.res.Locked, c.res.Supply, c.res.Dirty,
		c.res.Flush, c.res.UpdateWord, c.res.TakeWord, c.ok}
	for i, b := range bits {
		if b {
			v |= 1 << (8 + i)
		}
	}
	return v
}

func unpackSnoop(v uint16) snoopCell {
	bit := func(i int) bool { return v&(1<<(8+i)) != 0 }
	return snoopCell{
		res: SnoopResult{
			NewState:   State(v & 0xff),
			Hit:        bit(0),
			Locked:     bit(1),
			Supply:     bit(2),
			Dirty:      bit(3),
			Flush:      bit(4),
			UpdateWord: bit(5),
			TakeWord:   bit(6),
		},
		ok: bit(7),
	}
}

// packEvict packs an Evict plus the remaining per-state hooks into 8
// bits: Writeback, LockPurge, Waiter, dirty, source, then priv (2 bits).
func packEvict(e Evict, priv Priv, dirty, source bool) uint8 {
	v := uint8(0)
	bits := []bool{e.Writeback, e.LockPurge, e.Waiter, dirty, source}
	for i, b := range bits {
		if b {
			v |= 1 << i
		}
	}
	v |= (uint8(priv) & 3) << 5
	return v
}

func unpackEvict(v uint8) (e Evict, priv Priv, dirty, source bool) {
	e = Evict{Writeback: v&1 != 0, LockPurge: v&2 != 0, Waiter: v&4 != 0}
	return e, Priv(v >> 5 & 3), v&8 != 0, v&16 != 0
}

// GoldenText renders the table in the committed golden format: one
// deterministic, diffable text file per protocol. Every cell appears
// as its packed hex form; lines whose cells are all zero are elided.
func (t *Table) GoldenText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# compiled transition tables: %s (generated; go generate ./internal/protocol)\n", t.proto.Name())
	fmt.Fprintf(&b, "# proc cell: bits 0-7 newstate, 8 hit, 9-12 cmd, 13 lockintent, 14 memupdate\n")
	fmt.Fprintf(&b, "# complete cell: bits 0-7 newstate, 8 done, 9 busywait, 15 ok; 32 cells per line, flag order hit|sourcehit|dirty|locked|afterwait\n")
	fmt.Fprintf(&b, "# snoop cell: bits 0-7 newstate, then hit,locked,supply,dirty,flush,updateword,takeword,ok; one line per state, cmd order none..iowrite\n")
	fmt.Fprintf(&b, "protocol %s\nstates %d\n", t.proto.Name(), t.nstates)
	for si := 0; si < t.nstates; si++ {
		if !t.valid[si] {
			fmt.Fprintf(&b, "state %d unreachable\n", si)
			continue
		}
		fmt.Fprintf(&b, "state %d name=%s evict=%02x\n", si, t.proto.StateName(State(si)),
			packEvict(t.evict[si], t.priv[si], t.dirty[si], t.source[si]))
	}
	for si := 0; si < t.nstates; si++ {
		if !t.valid[si] {
			continue
		}
		fmt.Fprintf(&b, "proc %d", si)
		for op := 0; op < numOps; op++ {
			fmt.Fprintf(&b, " %04x", packProc(t.proc[si*numOps+op]))
		}
		b.WriteByte('\n')
	}
	for si := 0; si < t.nstates; si++ {
		if !t.valid[si] {
			continue
		}
		fmt.Fprintf(&b, "snoop %d", si)
		for cmd := 0; cmd < numCmds; cmd++ {
			fmt.Fprintf(&b, " %04x", packSnoop(t.snoop[si*numCmds+cmd]))
		}
		b.WriteByte('\n')
	}
	for si := 0; si < t.nstates; si++ {
		if !t.valid[si] {
			continue
		}
		for op := 0; op < numOps; op++ {
			for cmd := 0; cmd < numCmds; cmd++ {
				base := ((si*numOps+op)*numCmds + cmd) * numCompleteFlags
				any := false
				for f := 0; f < numCompleteFlags; f++ {
					if packComplete(t.complete[base+f]) != 0 {
						any = true
						break
					}
				}
				if !any {
					continue
				}
				fmt.Fprintf(&b, "complete %d %s %s", si, Op(op), bus.Cmd(cmd))
				for f := 0; f < numCompleteFlags; f++ {
					fmt.Fprintf(&b, " %04x", packComplete(t.complete[base+f]))
				}
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// GoldenTexts compiles every registered protocol and returns name →
// golden text; protocols that do not compile map to an explanatory
// stub so drift in *compilability* is also caught by the golden gate.
func GoldenTexts() map[string]string {
	out := make(map[string]string, len(registry))
	for _, name := range Names() {
		t, err := Compile(MustNew(name))
		if err != nil {
			out[name] = fmt.Sprintf("# compiled transition tables: %s\nuncompilable: %v\n", name, err)
			continue
		}
		out[name] = t.GoldenText()
	}
	return out
}

// sortedStates returns the compiled reachable states in order (test
// and debugging helper).
func (t *Table) sortedStates() []State {
	var out []State
	for si := 0; si < t.nstates; si++ {
		if t.valid[si] {
			out = append(out, State(si))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
