// Package protocol defines the abstraction every cache-synchronization
// scheme in the paper implements: a pure state machine over per-line
// states, driven from two sides — the processor (ProcAccess/Complete)
// and the bus (Snoop) — plus an eviction policy and a self-description
// used to regenerate the paper's Table 1.
//
// Protocols hold no per-line storage of their own: all per-line state
// is encoded in the State value stored by the cache, which keeps
// implementations table-like and directly unit-testable.
package protocol

// The compiled transition tables (table.go) are committed as diffable
// goldens under goldens/, one file per registered protocol; verify.sh
// gates on their freshness, so regenerate after any protocol change.
//go:generate go run ../../cmd/tables -write-transition-goldens -transition-golden-dir goldens

import (
	"fmt"
	"sort"

	"cachesync/internal/bus"
)

// State is a per-line protocol state. State 0 is Invalid in every
// protocol. Protocols may use high bits for private per-line
// bookkeeping (e.g. Rudolph-Segall's write run counter).
type State uint16

// Invalid is the universal empty-line state.
const Invalid State = 0

// Op is a processor-side operation on a cached word or block.
type Op uint8

const (
	// OpRead is a plain load.
	OpRead Op = iota
	// OpReadEx is a compiler-issued load of unshared data that should
	// acquire write privilege on a miss (Feature 5, static
	// determination: Yen et al., Katz et al.).
	OpReadEx
	// OpWrite is a plain store.
	OpWrite
	// OpLock is a lock-read: a load with the processor lock line
	// asserted (Section E.3). Only the paper's protocol implements it
	// natively; the syncprim layer lowers locking to test-and-set for
	// the other protocols.
	OpLock
	// OpUnlock is an unlock-write: a store with the unlock line
	// asserted (Figure 8).
	OpUnlock
	// OpWriteBlock overwrites a whole block; protocols with Feature 9
	// skip the fetch on a miss.
	OpWriteBlock
)

var opNames = [...]string{
	OpRead: "read", OpReadEx: "readex", OpWrite: "write",
	OpLock: "lock", OpUnlock: "unlock", OpWriteBlock: "writeblock",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsWrite reports whether the operation stores data.
func (o Op) IsWrite() bool {
	return o == OpWrite || o == OpUnlock || o == OpWriteBlock
}

// ProcResult is a protocol's answer to a processor access.
type ProcResult struct {
	// Hit: the access completes inside the cache with no bus work;
	// the line moves to NewState.
	Hit      bool
	NewState State

	// Otherwise the cache must issue Cmd on the bus; when the
	// transaction completes, Complete is consulted.
	Cmd        bus.Cmd
	LockIntent bool // the bus request carries lock intent
	MemUpdate  bool // UpdateWord also updates memory (Firefly)
}

// CompleteResult is a protocol's answer once the requested bus
// transaction has executed and the response lines are known.
type CompleteResult struct {
	NewState State
	// Done: the processor operation has finished. When false, the
	// engine re-invokes ProcAccess with the new state (multi-phase
	// operations such as Goodman's fetch-then-write-through).
	Done bool
	// BusyWait: the request was denied because the block is locked;
	// the cache arms its busy-wait register (Figure 7) and the
	// processor waits for the unlock broadcast.
	BusyWait bool
}

// SnoopResult is a protocol's reaction to another cache's bus
// transaction against a line in state s.
type SnoopResult struct {
	NewState State
	Hit      bool // assert the hit line
	Locked   bool // assert the locked line; the request is denied
	Supply   bool // offer to supply the block (source function)
	Dirty    bool // drive dirty status alongside the supplied block
	Flush    bool // also flush the block to memory during the transfer (Feature 7 "F")

	UpdateWord bool // apply the broadcast word to the local copy (update protocols)
	TakeWord   bool // accept the word even into an invalid line (Rudolph-Segall)
}

// Evict describes what must happen when a line in state s is chosen
// as a victim.
type Evict struct {
	Writeback bool // the block is dirty and must be flushed
	LockPurge bool // the line holds a lock: write the lock bit to memory (Section E.3)
	Waiter    bool // the purged lock had a recorded waiter
}

// Priv is the access privilege a state confers (Section C.1's
// atomicity/concurrency facets).
type Priv uint8

const (
	// PrivNone: the line is invalid.
	PrivNone Priv = iota
	// PrivRead: shared-access privilege.
	PrivRead
	// PrivWrite: sole-access (read and write) privilege.
	PrivWrite
	// PrivLock: sole-access privilege, locked by this cache.
	PrivLock
)

var privNames = [...]string{"none", "read", "write", "lock"}

// String implements fmt.Stringer.
func (p Priv) String() string {
	if int(p) < len(privNames) {
		return privNames[p]
	}
	return fmt.Sprintf("priv(%d)", uint8(p))
}

// Protocol is a cache-synchronization scheme. Implementations must be
// stateless (safe to share across caches): all per-line state lives in
// the State values held by each cache.
type Protocol interface {
	// Name returns the registry name, e.g. "bitar", "goodman".
	Name() string
	// Features describes the protocol for Table 1 regeneration.
	Features() Features
	// StateName renders a state for traces and figures.
	StateName(s State) string
	// ProcAccess decides how a processor operation proceeds from
	// state s.
	ProcAccess(s State, op Op) ProcResult
	// Complete installs the state after the cache's own bus
	// transaction t has executed (response lines are in t.Lines).
	Complete(s State, op Op, t *bus.Transaction) CompleteResult
	// Snoop reacts to another requester's transaction t against a
	// line in state s. It is called only for lines holding t.Block
	// (including Invalid lines only for protocols that declare
	// SnoopsInvalid in Features, e.g. Rudolph-Segall).
	Snoop(s State, t *bus.Transaction) SnoopResult
	// Evict describes the eviction obligations of state s.
	Evict(s State) Evict

	// Privilege classifies the access rights state s confers; used by
	// the coherence invariant checks and the syncprim layer.
	Privilege(s State) Priv
	// IsDirty reports whether state s holds data newer than memory;
	// used by the conservation invariant and the Feature 3
	// interference statistic (write hits to clean blocks).
	IsDirty(s State) bool
	// IsSource reports whether state s carries the source function
	// (it would supply the block on a fetch).
	IsSource(s State) bool
}

// registry of protocol constructors.
var registry = map[string]func() Protocol{}

// Register installs a protocol constructor under name. It panics on
// duplicates; registration happens in package init functions.
func Register(name string, f func() Protocol) {
	if _, dup := registry[name]; dup {
		panic("protocol: duplicate registration of " + name)
	}
	registry[name] = f
}

// New instantiates the named protocol.
func New(name string) (Protocol, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New for static configuration; it panics on unknown names.
func MustNew(name string) Protocol {
	p, err := New(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists all registered protocols in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
