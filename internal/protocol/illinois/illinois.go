// Package illinois implements the Papamarcos-Patel 1984 protocol
// (Section F.2): the Illinois scheme. It introduced the clean write
// (valid-exclusive) state for fetching unshared data with write
// privilege on a read miss, determined dynamically from the bus hit
// line (Feature 5 "D"), and it extends the source function to clean
// states: if any cache has the block, a cache — not memory — supplies
// it, with potential sources arbitrating first (Feature 8 "ARB").
// Dirty blocks are flushed to memory while transferred, so copies
// always arrive clean (Feature 7 "F").
package illinois

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States (the familiar MESI naming maps as: E=VE, S=SH, M=DI).
const (
	// I is Invalid.
	I protocol.State = iota
	// SH is Shared: clean, possibly in several caches; every holder is
	// a potential source (ARB).
	SH
	// VE is Valid-Exclusive: clean, sole copy; a later write needs no
	// bus access.
	VE
	// DI is Dirty: modified, sole copy.
	DI
)

var stateNames = [...]string{I: "I", SH: "S", VE: "E", DI: "M"}

// Protocol is the Papamarcos-Patel Illinois scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("illinois", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "illinois" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol (Table 1, column 3).
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Papamarcos, Patel",
		Year:   1984,
		Policy: protocol.PolicyWriteIn,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowReadClean:  protocol.MarkSource,
			protocol.RowWriteClean: protocol.MarkSource,
			protocol.RowWriteDirty: protocol.MarkSource,
		},
		CacheToCache:        true,
		DistributedState:    "RWDS",
		DirectoryOrg:        "ID",
		BusInvalidateSignal: true,
		ReadForWrite:        "D",
		AtomicRMW:           true,
		FlushOnTransfer:     "F",
		SourcePolicy:        "ARB",
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I:
			return protocol.ProcResult{Cmd: bus.ReadX}
		case SH:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		default: // VE, DI: exclusive, write silently
			return protocol.ProcResult{Hit: true, NewState: DI}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		if !t.Lines.Hit && !t.Lines.SourceHit {
			// No other copy: valid-exclusive (Feature 5 "D").
			return protocol.CompleteResult{NewState: VE, Done: true}
		}
		// Supplied by a cache after source arbitration; dirty blocks
		// were flushed during the transfer, so the copy is clean.
		return protocol.CompleteResult{NewState: SH, Done: true}
	case bus.ReadX, bus.Upgrade:
		return protocol.CompleteResult{NewState: DI, Done: true}
	}
	panic(fmt.Sprintf("illinois: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case SH:
			// Every holder is a potential source; the engine
			// arbitrates (Feature 8 "ARB").
			return protocol.SnoopResult{NewState: SH, Hit: true, Supply: true}
		case VE:
			return protocol.SnoopResult{NewState: SH, Hit: true, Supply: true}
		case DI:
			// Supply and flush concurrently (Feature 7 "F").
			ns := SH
			if t.Cmd == bus.IORead {
				ns = DI // non-paging output keeps the state
			}
			return protocol.SnoopResult{NewState: ns, Hit: true, Supply: true, Flush: true}
		}
	case bus.ReadX:
		switch s {
		case SH, VE:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true}
		case DI:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Flush: true}
		}
	case bus.Upgrade, bus.WriteNoFetch, bus.IOWrite, bus.WriteWord:
		switch s {
		case SH, VE:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case DI:
			return protocol.SnoopResult{NewState: I, Hit: true, Flush: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == DI}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case SH:
		return protocol.PrivRead
	case VE, DI:
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == DI }

// IsSource implements protocol.Protocol. Under Illinois every valid
// state is a potential source.
func (Protocol) IsSource(s protocol.State) bool { return s != I }
