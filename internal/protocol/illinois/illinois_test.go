package illinois

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestDynamicFetchForWrite(t *testing.T) {
	// Feature 5 "D": read miss with no other copy -> valid-exclusive.
	txn := &bus.Transaction{Cmd: bus.Read}
	c := p.Complete(I, protocol.OpRead, txn)
	if c.NewState != VE {
		t.Errorf("unshared read miss -> %s, want E", p.StateName(c.NewState))
	}
	txn2 := &bus.Transaction{Cmd: bus.Read}
	txn2.Lines.Hit = true
	txn2.Lines.SourceHit = true
	c = p.Complete(I, protocol.OpRead, txn2)
	if c.NewState != SH {
		t.Errorf("shared read miss -> %s, want S", p.StateName(c.NewState))
	}
}

func TestSilentWriteOnExclusive(t *testing.T) {
	r := p.ProcAccess(VE, protocol.OpWrite)
	if !r.Hit || r.NewState != DI {
		t.Errorf("write on E: %+v, want silent -> M", r)
	}
}

func TestEveryValidStateSupplies(t *testing.T) {
	// "if a cache has a block, it also has source status" (F.2).
	for _, s := range []protocol.State{SH, VE, DI} {
		res := p.Snoop(s, &bus.Transaction{Cmd: bus.Read})
		if !res.Supply {
			t.Errorf("snoop read on %s did not supply", p.StateName(s))
		}
	}
	if !p.IsSource(SH) || !p.IsSource(VE) || !p.IsSource(DI) {
		t.Error("all valid states are potential sources (ARB)")
	}
}

func TestDirtyFlushedOnTransfer(t *testing.T) {
	// Feature 7 "F": copies arrive clean.
	res := p.Snoop(DI, &bus.Transaction{Cmd: bus.Read})
	if !res.Flush || res.NewState != SH || res.Dirty {
		t.Errorf("snoop read on M: %+v, want flush -> S, no dirty status", res)
	}
}

func TestUpgradeOnSharedWrite(t *testing.T) {
	r := p.ProcAccess(SH, protocol.OpWrite)
	if r.Cmd != bus.Upgrade {
		t.Errorf("write on S: %+v, want Upgrade", r)
	}
}

func TestSnoopInvalidatesOnReadX(t *testing.T) {
	for _, s := range []protocol.State{SH, VE, DI} {
		res := p.Snoop(s, &bus.Transaction{Cmd: bus.ReadX})
		if res.NewState != I {
			t.Errorf("readx snoop on %s -> %s", p.StateName(s), p.StateName(res.NewState))
		}
	}
}

func TestFeatures(t *testing.T) {
	f := p.Features()
	if f.SourcePolicy != "ARB" || f.ReadForWrite != "D" || f.FlushOnTransfer != "F" {
		t.Errorf("features: %+v", f)
	}
	if !f.HasState(protocol.RowWriteClean) || f.States[protocol.RowReadClean] != protocol.MarkSource {
		t.Errorf("Table 1 states wrong: %+v", f.States)
	}
}

func TestEvict(t *testing.T) {
	if !p.Evict(DI).Writeback || p.Evict(VE).Writeback || p.Evict(SH).Writeback {
		t.Error("only M writes back")
	}
}

// The complete Illinois machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, SH, VE, DI}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read}, // dynamic determination: same fetch
		{S: I, Op: protocol.OpWrite, Cmd: bus.ReadX},
		{S: SH, Op: protocol.OpRead, Hit: true, NS: SH},
		{S: SH, Op: protocol.OpReadEx, Hit: true, NS: SH},
		{S: SH, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: VE, Op: protocol.OpRead, Hit: true, NS: VE},
		{S: VE, Op: protocol.OpReadEx, Hit: true, NS: VE},
		{S: VE, Op: protocol.OpWrite, Hit: true, NS: DI}, // silent write on exclusive
		{S: DI, Op: protocol.OpRead, Hit: true, NS: DI},
		{S: DI, Op: protocol.OpReadEx, Hit: true, NS: DI},
		{S: DI, Op: protocol.OpWrite, Hit: true, NS: DI},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.WriteWord, NS: I},
		// Every valid state is a potential source (ARB).
		{S: SH, Cmd: bus.Read, NS: SH, Hit: true, Supply: true},
		{S: SH, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true},
		{S: SH, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: SH, Cmd: bus.WriteWord, NS: I, Hit: true},
		{S: VE, Cmd: bus.Read, NS: SH, Hit: true, Supply: true},
		{S: VE, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true},
		{S: VE, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: VE, Cmd: bus.WriteWord, NS: I, Hit: true},
		// Dirty blocks are flushed while transferred (Feature 7 "F").
		{S: DI, Cmd: bus.Read, NS: SH, Hit: true, Supply: true, Flush: true},
		{S: DI, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Flush: true},
		{S: DI, Cmd: bus.Upgrade, NS: I, Hit: true, Flush: true},
		{S: DI, Cmd: bus.WriteWord, NS: I, Hit: true, Flush: true},
	})
}
