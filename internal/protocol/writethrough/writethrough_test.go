package writethrough

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestEveryWriteGoesToBus(t *testing.T) {
	// The classic scheme writes through on hit and miss alike — the
	// reason it cannot serialize hard-atom accesses without stalling
	// (Section F.1).
	for _, s := range []protocol.State{I, V} {
		r := p.ProcAccess(s, protocol.OpWrite)
		if r.Hit || r.Cmd != bus.WriteWord {
			t.Errorf("write in %s: %+v, want WriteWord", p.StateName(s), r)
		}
	}
}

func TestNoWriteAllocate(t *testing.T) {
	c := p.Complete(I, protocol.OpWrite, &bus.Transaction{Cmd: bus.WriteWord})
	if c.NewState != I || !c.Done {
		t.Errorf("write miss complete: %+v, want stay Invalid", c)
	}
	c = p.Complete(V, protocol.OpWrite, &bus.Transaction{Cmd: bus.WriteWord})
	if c.NewState != V {
		t.Errorf("write hit complete: %+v, want stay Valid", c)
	}
}

func TestReadMissFetches(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpRead)
	if r.Cmd != bus.Read {
		t.Errorf("read miss: %+v", r)
	}
	c := p.Complete(I, protocol.OpRead, &bus.Transaction{Cmd: bus.Read})
	if c.NewState != V || !c.Done {
		t.Errorf("read complete: %+v", c)
	}
}

func TestSnoopWriteInvalidates(t *testing.T) {
	res := p.Snoop(V, &bus.Transaction{Cmd: bus.WriteWord})
	if res.NewState != I || !res.Hit {
		t.Errorf("snoop write: %+v", res)
	}
	if res.UpdateWord || res.TakeWord {
		t.Error("classic write-through must invalidate, not update")
	}
}

func TestSnoopReadLeavesCopy(t *testing.T) {
	res := p.Snoop(V, &bus.Transaction{Cmd: bus.Read})
	if res.NewState != V || res.Supply {
		t.Errorf("snoop read: %+v (no cache-to-cache transfer in classic WT)", res)
	}
}

func TestNeverDirty(t *testing.T) {
	for _, s := range []protocol.State{I, V} {
		if p.IsDirty(s) || p.Evict(s).Writeback {
			t.Errorf("state %s should never be dirty", p.StateName(s))
		}
	}
}

func TestNoSerialization(t *testing.T) {
	f := p.Features()
	if f.CacheToCache {
		t.Error("classic WT has no cache-to-cache transfer (Feature 1)")
	}
	if p.Privilege(V) != protocol.PrivRead {
		t.Error("V should confer only read privilege")
	}
}

func TestRegistered(t *testing.T) {
	if _, err := protocol.New("writethrough"); err != nil {
		t.Fatal(err)
	}
}

// The complete classic write-through machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, V}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read},
		{S: I, Op: protocol.OpWrite, Cmd: bus.WriteWord}, // no write-allocate
		{S: V, Op: protocol.OpRead, Hit: true, NS: V},
		{S: V, Op: protocol.OpReadEx, Hit: true, NS: V},
		{S: V, Op: protocol.OpWrite, Cmd: bus.WriteWord}, // every write waits for the bus
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.WriteWord, NS: I},
		{S: V, Cmd: bus.Read, NS: V, Hit: true}, // memory supplies; no transfer
		{S: V, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: V, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: V, Cmd: bus.WriteWord, NS: I, Hit: true}, // the invalidation broadcast
	})
}
