// Package writethrough implements the classic (pre-1978)
// write-through-invalidate scheme of Section F.1: identical dual
// directories, every write goes through to main memory and broadcasts
// an invalidation of other cached copies. There is no cache-to-cache
// transfer and — as Censier and Feautrier observed — conflicting
// single reads and writes to hard atoms are not serialized by the
// caches, because serialization would require waiting for the bus on
// every write.
package writethrough

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid.
	I protocol.State = iota
	// V is Valid: a clean, readable copy; writes go through to memory.
	V
)

// Protocol is the classic write-through-invalidate scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("writethrough", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "writethrough" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	switch s {
	case I:
		return "I"
	case V:
		return "V"
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol.
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Classic write-through",
		Year:   1978,
		Policy: protocol.PolicyWriteThrough,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid: protocol.MarkNonSource,
			protocol.RowRead:    protocol.MarkNonSource,
		},
		DirectoryOrg: "ID",
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: V}
	default: // every store writes through; no write-allocate
		return protocol.ProcResult{Cmd: bus.WriteWord}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		return protocol.CompleteResult{NewState: V, Done: true}
	case bus.WriteWord:
		// No write-allocate: a write miss leaves the line invalid; a
		// write hit keeps the (updated) copy valid.
		return protocol.CompleteResult{NewState: s, Done: true}
	}
	panic(fmt.Sprintf("writethrough: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	if s != V {
		return protocol.SnoopResult{NewState: s}
	}
	switch t.Cmd {
	case bus.WriteWord, bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.IOWrite:
		// Another writer: invalidate the local copy.
		return protocol.SnoopResult{NewState: I, Hit: true}
	case bus.Read, bus.IORead:
		// Memory supplies; the copy just signals presence.
		return protocol.SnoopResult{NewState: V, Hit: true}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol. Write-through lines are never
// dirty.
func (Protocol) Evict(protocol.State) protocol.Evict { return protocol.Evict{} }

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	if s == V {
		return protocol.PrivRead
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(protocol.State) bool { return false }

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(protocol.State) bool { return false }
