package protocol_test

import (
	"testing"

	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
)

func TestRegistryHasAllProtocols(t *testing.T) {
	names := protocol.Names()
	if len(names) != len(all.Everything) {
		t.Fatalf("registry has %d protocols (%v), want %d", len(names), names, len(all.Everything))
	}
	for _, n := range all.Everything {
		p, err := protocol.New(n)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := protocol.New("nope"); err == nil {
		t.Error("New(nope) should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(nope) did not panic")
		}
	}()
	protocol.MustNew("nope")
}

func TestOpStrings(t *testing.T) {
	cases := map[protocol.Op]string{
		protocol.OpRead: "read", protocol.OpReadEx: "readex",
		protocol.OpWrite: "write", protocol.OpLock: "lock",
		protocol.OpUnlock: "unlock", protocol.OpWriteBlock: "writeblock",
		protocol.Op(99): "op(99)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
}

func TestOpIsWrite(t *testing.T) {
	writes := map[protocol.Op]bool{
		protocol.OpRead: false, protocol.OpReadEx: false,
		protocol.OpWrite: true, protocol.OpLock: false,
		protocol.OpUnlock: true, protocol.OpWriteBlock: true,
	}
	for op, want := range writes {
		if got := op.IsWrite(); got != want {
			t.Errorf("%v.IsWrite() = %v", op, got)
		}
	}
}

func TestPrivString(t *testing.T) {
	cases := map[protocol.Priv]string{
		protocol.PrivNone: "none", protocol.PrivRead: "read",
		protocol.PrivWrite: "write", protocol.PrivLock: "lock",
		protocol.Priv(9): "priv(9)",
	}
	for pr, want := range cases {
		if got := pr.String(); got != want {
			t.Errorf("Priv(%d).String() = %q, want %q", pr, got, want)
		}
	}
}

func TestEveryProtocolDescribesItsStates(t *testing.T) {
	for _, n := range all.Everything {
		p := protocol.MustNew(n)
		f := p.Features()
		if f.Title == "" || f.Year == 0 {
			t.Errorf("%s: missing title/year: %+v", n, f)
		}
		if !f.HasState(protocol.RowInvalid) {
			t.Errorf("%s: every protocol has an Invalid state", n)
		}
		// State 0 is Invalid everywhere, with no privilege and no
		// obligations.
		if p.Privilege(protocol.Invalid) != protocol.PrivNone {
			t.Errorf("%s: Invalid must confer no privilege", n)
		}
		if p.IsDirty(protocol.Invalid) || p.IsSource(protocol.Invalid) {
			t.Errorf("%s: Invalid must be clean and non-source", n)
		}
		if ev := p.Evict(protocol.Invalid); ev.Writeback || ev.LockPurge {
			t.Errorf("%s: evicting Invalid must be free", n)
		}
		if p.StateName(protocol.Invalid) != "I" {
			t.Errorf("%s: StateName(Invalid) = %q, want I", n, p.StateName(protocol.Invalid))
		}
	}
}

func TestTable1OrderRegistered(t *testing.T) {
	for _, n := range all.Table1Order {
		if _, err := protocol.New(n); err != nil {
			t.Errorf("Table 1 protocol %q missing: %v", n, err)
		}
	}
}

func TestStateRowsOrder(t *testing.T) {
	rows := protocol.StateRows()
	if len(rows) != 8 {
		t.Fatalf("StateRows() = %d rows, want 8", len(rows))
	}
	if rows[0] != protocol.RowInvalid || rows[7] != protocol.RowLockDirtyWait {
		t.Errorf("row order wrong: %v", rows)
	}
}
