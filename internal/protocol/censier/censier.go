// Package censier implements the Censier-Feautrier 1978 scheme
// (Sections F.1, F.2; Table 2 "Early Schemes"): a *partial-broadcast*
// write-in protocol. Main memory keeps a presence directory, so
// consistency requests are sent point-to-point to the recorded
// holders rather than broadcast — each message is serialized and
// priced by the engine (Timing.DirMsgCycles), which is exactly the
// cost the paper's full-broadcast systems avoid (Section A.2). The
// scheme contributed cache-to-cache transfer for dirty blocks and the
// primitive efficient busy wait of looping on a block in the cache.
package censier

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid.
	I protocol.State = iota
	// V is Valid: clean, possibly shared.
	V
	// D is Dirty: sole, modified copy; supplies on directory request.
	D
)

var stateNames = [...]string{I: "I", V: "V", D: "D"}

// Protocol is the Censier-Feautrier directory scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("censier", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "censier" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol. Censier-Feautrier predates
// Table 1 (which covers full-broadcast schemes); the descriptor
// records its own column.
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Censier, Feautrier",
		Year:   1978,
		Policy: protocol.PolicyWriteIn,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowRead:       protocol.MarkNonSource,
			protocol.RowWriteDirty: protocol.MarkSource,
		},
		CacheToCache:     true, // for dirty blocks
		DistributedState: "RWD",
		PartialBroadcast: true,
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I:
			return protocol.ProcResult{Cmd: bus.ReadX}
		case V:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		default: // D
			return protocol.ProcResult{Hit: true, NewState: D}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		return protocol.CompleteResult{NewState: V, Done: true}
	case bus.ReadX, bus.Upgrade:
		return protocol.CompleteResult{NewState: D, Done: true}
	}
	panic(fmt.Sprintf("censier: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol. Under a directory system this
// runs only in the caches the directory targeted.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case V:
			return protocol.SnoopResult{NewState: V, Hit: true}
		case D:
			// Cache-to-cache transfer for dirty blocks, flushed so
			// memory (and its directory) are current again.
			return protocol.SnoopResult{NewState: V, Hit: true, Supply: true, Flush: true}
		}
	case bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.WriteWord, bus.IOWrite:
		switch s {
		case V:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case D:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Flush: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == D}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case V:
		return protocol.PrivRead
	case D:
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == D }

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool { return s == D }
