package censier

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestPartialBroadcastDeclared(t *testing.T) {
	f := p.Features()
	if !f.PartialBroadcast {
		t.Error("Censier-Feautrier is a directory (partial-broadcast) scheme")
	}
	if f.Year != 1978 {
		t.Errorf("year = %d", f.Year)
	}
}

func TestDirtyCacheToCacheTransfer(t *testing.T) {
	// The scheme's contribution (Table 2): cache-to-cache transfer
	// for dirty blocks, with the flush restoring memory.
	res := p.Snoop(D, &bus.Transaction{Cmd: bus.Read})
	if !res.Supply || !res.Flush || res.NewState != V {
		t.Errorf("read snoop on D: %+v, want supply+flush -> V", res)
	}
}

func TestWriteMissAndUpgrade(t *testing.T) {
	if r := p.ProcAccess(I, protocol.OpWrite); r.Cmd != bus.ReadX {
		t.Errorf("write miss: %+v", r)
	}
	if r := p.ProcAccess(V, protocol.OpWrite); r.Cmd != bus.Upgrade {
		t.Errorf("write hit on V: %+v", r)
	}
	c := p.Complete(V, protocol.OpWrite, &bus.Transaction{Cmd: bus.Upgrade})
	if c.NewState != D {
		t.Errorf("upgrade complete -> %s", p.StateName(c.NewState))
	}
}

func TestReadMissStaysRead(t *testing.T) {
	// No hit line in a directory system: a read miss always takes
	// read privilege.
	c := p.Complete(I, protocol.OpRead, &bus.Transaction{Cmd: bus.Read})
	if c.NewState != V {
		t.Errorf("read miss -> %s, want V", p.StateName(c.NewState))
	}
}

func TestInvalidationOnTargetedMessage(t *testing.T) {
	for _, cmd := range []bus.Cmd{bus.ReadX, bus.Upgrade} {
		res := p.Snoop(V, &bus.Transaction{Cmd: cmd})
		if res.NewState != I {
			t.Errorf("snoop %v on V -> %s, want I", cmd, p.StateName(res.NewState))
		}
	}
}

func TestEvict(t *testing.T) {
	if !p.Evict(D).Writeback || p.Evict(V).Writeback {
		t.Error("only D writes back")
	}
}

func TestClassification(t *testing.T) {
	if p.Privilege(V) != protocol.PrivRead || p.Privilege(D) != protocol.PrivWrite {
		t.Error("privileges wrong")
	}
	if !p.IsDirty(D) || p.IsDirty(V) || !p.IsSource(D) || p.IsSource(V) {
		t.Error("classification wrong")
	}
}

// The complete Censier-Feautrier machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, V, D}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read},
		{S: I, Op: protocol.OpWrite, Cmd: bus.ReadX},
		{S: V, Op: protocol.OpRead, Hit: true, NS: V},
		{S: V, Op: protocol.OpReadEx, Hit: true, NS: V},
		{S: V, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: D, Op: protocol.OpRead, Hit: true, NS: D},
		{S: D, Op: protocol.OpReadEx, Hit: true, NS: D},
		{S: D, Op: protocol.OpWrite, Hit: true, NS: D},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.WriteWord, NS: I},
		{S: V, Cmd: bus.Read, NS: V, Hit: true},
		{S: V, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: V, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: V, Cmd: bus.WriteWord, NS: I, Hit: true},
		{S: D, Cmd: bus.Read, NS: V, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.Upgrade, NS: I, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.WriteWord, NS: I, Hit: true, Supply: true, Flush: true},
	})
}
