// Package synapse implements Frank's 1984 Synapse protocol (Section
// F.2): a write-in scheme on a proprietary bus that supports an
// explicit invalidate signal (Feature 4), so invalidation rides on
// the block fetch and Goodman's clean write state disappears. Source
// status is not fully distributed: main memory keeps a per-block
// source bit. A source cache provides data only for a write-privilege
// request (Table 1 note 1); a read request against a dirty block
// forces the holder to write the block back, and memory then supplies
// it — costed by the engine as the Synapse reject-and-retry penalty.
// Transfers are not flushed (Feature 7 "NF").
package synapse

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid.
	I protocol.State = iota
	// V is Valid: a clean, possibly shared copy.
	V
	// D is Dirty: sole copy, modified; source for write-privilege
	// requests only.
	D
)

var stateNames = [...]string{I: "I", V: "V", D: "D"}

// Protocol is Frank's Synapse scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("synapse", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "synapse" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol (Table 1, column 2).
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Frank (Synapse)",
		Year:   1984,
		Policy: protocol.PolicyWriteIn,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowRead:       protocol.MarkNonSource,
			protocol.RowWriteDirty: protocol.MarkSource, // note 1: write-privilege requests only
		},
		CacheToCache:        true,
		DistributedState:    "RWD", // source bit lives in memory
		DirectoryOrg:        "ID",
		BusInvalidateSignal: true,
		AtomicRMW:           true,
		FlushOnTransfer:     "NF",
		MemorySourceBit:     true,
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I:
			// Invalidation is concurrent with the fetch (Feature 4).
			return protocol.ProcResult{Cmd: bus.ReadX}
		case V:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		default: // D
			return protocol.ProcResult{Hit: true, NewState: D}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		return protocol.CompleteResult{NewState: V, Done: true}
	case bus.ReadX, bus.Upgrade:
		return protocol.CompleteResult{NewState: D, Done: true}
	}
	panic(fmt.Sprintf("synapse: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case V:
			return protocol.SnoopResult{NewState: V, Hit: true}
		case D:
			// A source cache does not provide data for a
			// read-privilege request: it writes the block back and
			// memory supplies it (the Synapse retry).
			return protocol.SnoopResult{NewState: V, Hit: true, Flush: true}
		}
	case bus.ReadX:
		switch s {
		case V:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case D:
			// Write-privilege request: supply without flushing
			// (Feature 7 "NF").
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Dirty: true}
		}
	case bus.Upgrade, bus.WriteNoFetch, bus.IOWrite, bus.WriteWord:
		switch s {
		case V:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case D:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Dirty: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == D}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case V:
		return protocol.PrivRead
	case D:
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == D }

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool { return s == D }
