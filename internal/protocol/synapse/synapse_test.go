package synapse

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestInvalidateConcurrentWithFetch(t *testing.T) {
	// Feature 4: a write miss gains write privilege while fetching.
	r := p.ProcAccess(I, protocol.OpWrite)
	if r.Cmd != bus.ReadX {
		t.Fatalf("write miss: %+v, want ReadX", r)
	}
	c := p.Complete(I, protocol.OpWrite, &bus.Transaction{Cmd: bus.ReadX})
	if c.NewState != D || !c.Done {
		t.Fatalf("write miss complete: %+v", c)
	}
}

func TestNoCleanWriteState(t *testing.T) {
	// Frank drops Goodman's Reserved state (Section F.2).
	f := p.Features()
	if f.HasState(protocol.RowWriteClean) {
		t.Error("Synapse should not have a clean write state")
	}
	if f.States[protocol.RowWriteDirty] != protocol.MarkSource {
		t.Error("Write,Dirty should be the (only) source state")
	}
}

func TestSourceSuppliesOnlyForWritePrivilege(t *testing.T) {
	// Table 1 note 1.
	res := p.Snoop(D, &bus.Transaction{Cmd: bus.Read})
	if res.Supply {
		t.Errorf("read snoop on D: %+v; source must not supply for read privilege", res)
	}
	if !res.Flush || res.NewState != V {
		t.Errorf("read snoop on D: %+v; want writeback -> V", res)
	}
	res = p.Snoop(D, &bus.Transaction{Cmd: bus.ReadX})
	if !res.Supply || !res.Dirty || res.Flush {
		t.Errorf("readx snoop on D: %+v; want supply, no flush (NF)", res)
	}
	if res.NewState != I {
		t.Errorf("readx snoop on D -> %s, want I", p.StateName(res.NewState))
	}
}

func TestMemorySourceBitDeclared(t *testing.T) {
	f := p.Features()
	if !f.MemorySourceBit {
		t.Error("Frank keeps a source bit in main memory (Feature 2)")
	}
	if f.DistributedState != "RWD" {
		t.Errorf("DistributedState = %q, want RWD (source bit not distributed)", f.DistributedState)
	}
}

func TestUpgradeOnWriteHit(t *testing.T) {
	r := p.ProcAccess(V, protocol.OpWrite)
	if r.Cmd != bus.Upgrade {
		t.Errorf("write hit on V: %+v, want Upgrade", r)
	}
	c := p.Complete(V, protocol.OpWrite, &bus.Transaction{Cmd: bus.Upgrade})
	if c.NewState != D {
		t.Errorf("upgrade complete -> %s", p.StateName(c.NewState))
	}
}

func TestReadMissTakesReadPrivilege(t *testing.T) {
	// Feature 5 absent.
	c := p.Complete(I, protocol.OpRead, &bus.Transaction{Cmd: bus.Read})
	if c.NewState != V {
		t.Errorf("read miss -> %s, want V", p.StateName(c.NewState))
	}
}

func TestEvict(t *testing.T) {
	if !p.Evict(D).Writeback || p.Evict(V).Writeback {
		t.Error("only D writes back")
	}
}

// The complete Synapse machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, V, D}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read},
		{S: I, Op: protocol.OpWrite, Cmd: bus.ReadX}, // invalidation rides the fetch (Feature 4)
		{S: V, Op: protocol.OpRead, Hit: true, NS: V},
		{S: V, Op: protocol.OpReadEx, Hit: true, NS: V},
		{S: V, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: D, Op: protocol.OpRead, Hit: true, NS: D},
		{S: D, Op: protocol.OpReadEx, Hit: true, NS: D},
		{S: D, Op: protocol.OpWrite, Hit: true, NS: D},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.WriteWord, NS: I},
		{S: V, Cmd: bus.Read, NS: V, Hit: true},
		{S: V, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: V, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: V, Cmd: bus.WriteWord, NS: I, Hit: true},
		// Table 1 note 1: the source supplies only write-privilege
		// requests; a read forces the write-back-and-retry.
		{S: D, Cmd: bus.Read, NS: V, Hit: true, Flush: true},
		{S: D, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Dirty: true},
		{S: D, Cmd: bus.Upgrade, NS: I, Hit: true, Supply: true, Dirty: true},
		{S: D, Cmd: bus.WriteWord, NS: I, Hit: true, Supply: true, Dirty: true},
	})
}
