// Package tabletest checks a protocol implementation against a
// hand-transcribed transition table: every (state × processor-op)
// and (state × snooped-command) cell is asserted, and the table must
// cover the protocol's whole reachable machine — so any future edit
// that changes a transition fails loudly against the literature.
package tabletest

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// ProcRow is one expected processor-side transition.
type ProcRow struct {
	S  protocol.State
	Op protocol.Op
	// Exactly one of the two outcomes:
	Hit bool
	NS  protocol.State // when Hit
	Cmd bus.Cmd        // when !Hit
}

// CheckProc asserts every row and that the rows cover all (state, op)
// pairs in states × ops.
func CheckProc(t *testing.T, p protocol.Protocol, states []protocol.State, ops []protocol.Op, rows []ProcRow) {
	t.Helper()
	covered := map[[2]uint32]bool{}
	for _, r := range rows {
		covered[[2]uint32{uint32(r.S), uint32(r.Op)}] = true
		got := p.ProcAccess(r.S, r.Op)
		if got.Hit != r.Hit {
			t.Errorf("%s: ProcAccess(%s,%s).Hit = %v, want %v",
				p.Name(), p.StateName(r.S), r.Op, got.Hit, r.Hit)
			continue
		}
		if r.Hit && got.NewState != r.NS {
			t.Errorf("%s: ProcAccess(%s,%s) -> %s, want %s",
				p.Name(), p.StateName(r.S), r.Op, p.StateName(got.NewState), p.StateName(r.NS))
		}
		if !r.Hit && got.Cmd != r.Cmd {
			t.Errorf("%s: ProcAccess(%s,%s) issues %v, want %v",
				p.Name(), p.StateName(r.S), r.Op, got.Cmd, r.Cmd)
		}
	}
	for _, s := range states {
		for _, op := range ops {
			if !covered[[2]uint32{uint32(s), uint32(op)}] {
				t.Errorf("%s: transition table misses ProcAccess(%s,%s)", p.Name(), p.StateName(s), op)
			}
		}
	}
}

// SnoopRow is one expected bus-side transition.
type SnoopRow struct {
	S                                               protocol.State
	Cmd                                             bus.Cmd
	NS                                              protocol.State
	Hit, Supply, Dirty, Flush, Locked, Update, Take bool
}

// CheckSnoop asserts every row and coverage of states × cmds.
func CheckSnoop(t *testing.T, p protocol.Protocol, states []protocol.State, cmds []bus.Cmd, rows []SnoopRow) {
	t.Helper()
	covered := map[[2]uint32]bool{}
	for _, r := range rows {
		covered[[2]uint32{uint32(r.S), uint32(r.Cmd)}] = true
		got := p.Snoop(r.S, &bus.Transaction{Cmd: r.Cmd, Requester: 1})
		if got.NewState != r.NS {
			t.Errorf("%s: Snoop(%s,%v) -> %s, want %s",
				p.Name(), p.StateName(r.S), r.Cmd, p.StateName(got.NewState), p.StateName(r.NS))
		}
		if got.Hit != r.Hit || got.Supply != r.Supply || got.Dirty != r.Dirty ||
			got.Flush != r.Flush || got.Locked != r.Locked ||
			got.UpdateWord != r.Update || got.TakeWord != r.Take {
			t.Errorf("%s: Snoop(%s,%v) = %+v, want hit=%v supply=%v dirty=%v flush=%v locked=%v update=%v take=%v",
				p.Name(), p.StateName(r.S), r.Cmd, got,
				r.Hit, r.Supply, r.Dirty, r.Flush, r.Locked, r.Update, r.Take)
		}
	}
	for _, s := range states {
		for _, cmd := range cmds {
			if !covered[[2]uint32{uint32(s), uint32(cmd)}] {
				t.Errorf("%s: transition table misses Snoop(%s,%v)", p.Name(), p.StateName(s), cmd)
			}
		}
	}
}
