package protocol

// This file mirrors the paper's Table 1 ("Evolution of Full-Broadcast,
// Write-In (Write-Back), Cache-Synchronization Schemes"): each
// protocol self-reports its state repertoire and the ten features, and
// internal/report renders the matrix and cross-checks it against the
// hard-coded values transcribed from the paper.

// StateRow identifies a row of the upper (states) part of Table 1.
type StateRow string

// The canonical state rows of Table 1, in the paper's order.
const (
	RowInvalid       StateRow = "Invalid"
	RowRead          StateRow = "Read"
	RowReadClean     StateRow = "Read, Clean"
	RowReadDirty     StateRow = "Read, Dirty"
	RowWriteClean    StateRow = "Write, Clean"
	RowWriteDirty    StateRow = "Write, Dirty"
	RowLockDirty     StateRow = "Lock, Dirty"
	RowLockDirtyWait StateRow = "Lock, Dirty, Waiter"
)

// StateRows lists the Table 1 state rows in presentation order.
func StateRows() []StateRow {
	return []StateRow{
		RowInvalid, RowRead, RowReadClean, RowReadDirty,
		RowWriteClean, RowWriteDirty, RowLockDirty, RowLockDirtyWait,
	}
}

// SourceMark is a cell of the states part of Table 1: whether the
// protocol has the state and whether it is a source state.
type SourceMark string

const (
	MarkAbsent    SourceMark = ""  // protocol lacks the state
	MarkNonSource SourceMark = "N" // non-source state
	MarkSource    SourceMark = "S" // source state
)

// WritePolicy classifies the protocol family (Sections D, F).
type WritePolicy string

const (
	PolicyWriteThrough WritePolicy = "write-through"
	PolicyWriteIn      WritePolicy = "write-in"
	PolicyUpdate       WritePolicy = "write-update"
	PolicyHybrid       WritePolicy = "dynamic WT/WI"
)

// Features is a protocol's Table 1 column plus behavioural switches
// the engine consults.
type Features struct {
	Title string // display title, e.g. "Papamarcos, Patel"
	Year  int

	Policy WritePolicy

	// States maps each Table 1 row to its source mark.
	States map[StateRow]SourceMark

	// Feature 1: cache-to-cache transfer and serialization of
	// conflicting single reads and writes.
	CacheToCache bool
	// Feature 2: which status is fully distributed among the caches,
	// rendered as in the paper, e.g. "RWDS", "RWLDS" ("RWD" for Frank,
	// whose source bit lives in memory).
	DistributedState string
	// Feature 3: directory organization: "", "ID" (identical dual),
	// "NID" (non-identical dual), "DPR" (dual-ported read).
	DirectoryOrg string
	// Feature 4: the bus supports a one-cycle invalidate signal
	// instead of an invalidation write-through.
	BusInvalidateSignal bool
	// Feature 5: fetching unshared data for write privilege on a read
	// miss: "" (absent), "D" (dynamic, hit line), "S" (static,
	// compiler-declared read-for-write instruction).
	ReadForWrite string
	// Feature 6: processor atomic read-modify-write instructions are
	// serialized.
	AtomicRMW bool
	// Feature 7: flushing on cache-to-cache transfer: "" (no
	// transfer), "F" (flush), "NF" (no flush), "NF,S" (no flush,
	// clean/dirty status transferred).
	FlushOnTransfer string
	// Feature 8: number of sources for a read-privilege block: "",
	// "ARB" (multiple sources, arbitrate), "MEM" (single source, fall
	// back to memory), "LRU,MEM" (last fetcher becomes source).
	SourcePolicy string
	// Feature 9: writing without fetch on a write miss.
	WriteNoFetch bool
	// Feature 10: efficient busy wait.
	EfficientBusyWait bool

	// Behavioural switches consulted by the engine and cache:

	// MemorySourceBit: memory maintains a per-block source bit
	// (Frank).
	MemorySourceBit bool
	// SnoopsInvalid: the protocol's Snoop must also run against
	// invalid lines whose tag matches (Rudolph-Segall updates invalid
	// copies).
	SnoopsInvalid bool
	// HardwareLock: the protocol supports OpLock/OpUnlock natively
	// (the paper's proposal). Without it, the syncprim layer lowers
	// locking to test-and-set.
	HardwareLock bool
	// OneWordBlocks: the protocol requires one-word blocks
	// (Rudolph-Segall, Section E.4).
	OneWordBlocks bool
	// WriteAllocates: a WriteWord bus transaction installs the line in
	// the writer's cache (Rudolph-Segall). Classic write-through does
	// not allocate on writes.
	WriteAllocates bool
	// PartialBroadcast: the scheme is directory-based
	// (Censier-Feautrier): memory keeps a presence directory and
	// consistency messages go point-to-point to recorded holders,
	// serialized and individually priced, instead of one parallel
	// broadcast (Section A.2).
	PartialBroadcast bool
}

// LockReclaimer is implemented by protocols that can push a lock bit
// to memory when a locked block is purged (Section E.3): it names the
// line state to re-install when the owner reclaims the lock.
type LockReclaimer interface {
	ReclaimedLockState(waiter bool) State
}

// HasState reports whether the protocol has the given Table 1 row.
func (f Features) HasState(r StateRow) bool {
	return f.States[r] != MarkAbsent
}
