package rudolph

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestFirstWriteThroughThenWriteIn(t *testing.T) {
	// Section E.4: write-through on the first write after another
	// processor accessed the block; write-in afterward.
	r := p.ProcAccess(V, protocol.OpWrite)
	if r.Cmd != bus.WriteWord {
		t.Fatalf("first write: %+v, want WriteWord", r)
	}
	c := p.Complete(V, protocol.OpWrite, &bus.Transaction{Cmd: bus.WriteWord})
	if c.NewState != W1 {
		t.Fatalf("after first write -> %s, want W1", p.StateName(c.NewState))
	}
	r = p.ProcAccess(W1, protocol.OpWrite)
	if r.Cmd != bus.Upgrade {
		t.Fatalf("second write: %+v, want invalidation (the write-in transition)", r)
	}
	c = p.Complete(W1, protocol.OpWrite, &bus.Transaction{Cmd: bus.Upgrade})
	if c.NewState != D {
		t.Fatalf("after second write -> %s, want D", p.StateName(c.NewState))
	}
	r = p.ProcAccess(D, protocol.OpWrite)
	if !r.Hit || r.NewState != D {
		t.Errorf("third write: %+v, want silent write-in", r)
	}
}

func TestWriteThroughUpdatesInvalidCopies(t *testing.T) {
	// The heart of their busy-wait support: write-throughs update
	// invalid as well as valid copies.
	res := p.Snoop(I, &bus.Transaction{Cmd: bus.WriteWord, WordData: 1})
	if !res.TakeWord || res.NewState != V {
		t.Errorf("snoop writeword on I: %+v, want take word -> V", res)
	}
	if res.Hit {
		t.Error("an invalid copy cannot raise the hit line")
	}
	res = p.Snoop(V, &bus.Transaction{Cmd: bus.WriteWord})
	if !res.UpdateWord || res.NewState != V || !res.Hit {
		t.Errorf("snoop writeword on V: %+v", res)
	}
}

func TestInterleavedAccessEndsWriteIn(t *testing.T) {
	res := p.Snoop(D, &bus.Transaction{Cmd: bus.Read})
	if !res.Supply || !res.Flush || res.NewState != V {
		t.Errorf("read snoop on D: %+v, want supply+flush -> V", res)
	}
	res = p.Snoop(W1, &bus.Transaction{Cmd: bus.Read})
	if res.NewState != V {
		t.Errorf("read snoop on W1 -> %s, want V (back to write-through mode)", p.StateName(res.NewState))
	}
}

func TestOneWordBlocksRequired(t *testing.T) {
	f := p.Features()
	if !f.OneWordBlocks {
		t.Error("block size is limited to one word (Section E.4)")
	}
	if !f.SnoopsInvalid {
		t.Error("invalid copies must snoop to take write-through words")
	}
	if !f.EfficientBusyWait {
		t.Error("the scheme is oriented around efficient busy wait")
	}
}

func TestSecondWriteInvalidatesCopies(t *testing.T) {
	res := p.Snoop(V, &bus.Transaction{Cmd: bus.Upgrade})
	if res.NewState != I {
		t.Errorf("upgrade snoop on V -> %s, want I", p.StateName(res.NewState))
	}
}

func TestWriteMissWritesThrough(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpWrite)
	if r.Cmd != bus.WriteWord {
		t.Errorf("write miss: %+v, want WriteWord", r)
	}
	c := p.Complete(I, protocol.OpWrite, &bus.Transaction{Cmd: bus.WriteWord})
	if c.NewState != W1 {
		t.Errorf("write-miss complete -> %s, want W1", p.StateName(c.NewState))
	}
}

func TestEvict(t *testing.T) {
	for s, want := range map[protocol.State]bool{I: false, V: false, W1: false, D: true} {
		if got := p.Evict(s).Writeback; got != want {
			t.Errorf("Evict(%s) = %v, want %v", p.StateName(s), got, want)
		}
	}
}

// The complete Rudolph-Segall machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, V, W1, D}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read},
		{S: I, Op: protocol.OpWrite, Cmd: bus.WriteWord}, // write-through, allocating
		{S: V, Op: protocol.OpRead, Hit: true, NS: V},
		{S: V, Op: protocol.OpReadEx, Hit: true, NS: V},
		{S: V, Op: protocol.OpWrite, Cmd: bus.WriteWord}, // first write after sharing
		{S: W1, Op: protocol.OpRead, Hit: true, NS: W1},
		{S: W1, Op: protocol.OpReadEx, Hit: true, NS: W1},
		{S: W1, Op: protocol.OpWrite, Cmd: bus.Upgrade}, // second write: switch to write-in
		{S: D, Op: protocol.OpRead, Hit: true, NS: D},
		{S: D, Op: protocol.OpReadEx, Hit: true, NS: D},
		{S: D, Op: protocol.OpWrite, Hit: true, NS: D},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		// Invalid copies take broadcast write-through words (the
		// busy-wait support of Section E.4) but stay inert otherwise.
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.WriteWord, NS: V, Take: true},
		{S: V, Cmd: bus.Read, NS: V, Hit: true},
		{S: V, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: V, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: V, Cmd: bus.WriteWord, NS: V, Hit: true, Update: true},
		{S: W1, Cmd: bus.Read, NS: V, Hit: true}, // interleaved access: back to WT mode
		{S: W1, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: W1, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: W1, Cmd: bus.WriteWord, NS: V, Hit: true, Update: true},
		{S: D, Cmd: bus.Read, NS: V, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.Upgrade, NS: I, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.WriteWord, NS: V, Hit: true, Update: true}, // defensive
	})
}
