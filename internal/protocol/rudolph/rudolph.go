// Package rudolph implements the Rudolph-Segall 1984 dynamic
// write-through/write-in scheme (Sections D.1, E.4): a block is
// considered shared while accesses interleave among processors.
// Write-through is used on a processor's first write to a block after
// another processor accessed it; write-in on subsequent writes. To
// make the scheme double as an efficient busy-wait mechanism,
// write-throughs update *invalid* as well as valid copies — which
// forces the block size down to one word (Section E.4).
//
// The second write — the transition into write-in mode — must
// invalidate any remaining copies; it is skipped when the
// write-through observed no other copy on the hit line.
package rudolph

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid; invalid copies still snoop and take broadcast
	// write-through words (the tag is retained).
	I protocol.State = iota
	// V is Valid: a readable copy kept current by the write-through
	// broadcasts.
	V
	// W1 is Written-once: this cache performed the write-through for
	// the block's first write after interleaved access; memory is
	// current.
	W1
	// D is Dirty: written at least twice with no interleaved access;
	// write-in mode, sole up-to-date copy, the source.
	D
)

var stateNames = [...]string{I: "I", V: "V", W1: "W1", D: "D"}

// Protocol is the Rudolph-Segall scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("rudolph", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "rudolph" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol.
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Rudolph, Segall",
		Year:   1984,
		Policy: protocol.PolicyHybrid,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowRead:       protocol.MarkNonSource,
			protocol.RowWriteClean: protocol.MarkNonSource,
			protocol.RowWriteDirty: protocol.MarkSource,
		},
		CacheToCache:      true,
		DistributedState:  "RWD",
		EfficientBusyWait: true,
		SnoopsInvalid:     true,
		OneWordBlocks:     true,
		WriteAllocates:    true,
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I, V:
			// First write after interleaved access (or a write miss):
			// write through, updating valid and invalid copies alike.
			return protocol.ProcResult{Cmd: bus.WriteWord}
		case W1:
			// Second write: switch to write-in. Remaining copies must
			// be invalidated.
			return protocol.ProcResult{Cmd: bus.Upgrade}
		default: // D
			return protocol.ProcResult{Hit: true, NewState: D}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		return protocol.CompleteResult{NewState: V, Done: true}
	case bus.WriteWord:
		// Even when no copy asserted hit, an invalid copy may have
		// taken the word and revived (it cannot raise the hit line),
		// so the second write must always run the invalidation.
		return protocol.CompleteResult{NewState: W1, Done: true}
	case bus.Upgrade:
		return protocol.CompleteResult{NewState: D, Done: true}
	}
	panic(fmt.Sprintf("rudolph: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol. Snoop is also called for
// invalid lines with a matching tag (SnoopsInvalid).
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case V, W1:
			// Another processor accessed the block: back to
			// write-through mode on the next write.
			return protocol.SnoopResult{NewState: V, Hit: true}
		case D:
			// Interleaved access ends write-in mode; supply and flush
			// so memory is current again.
			ns := V
			if t.Cmd == bus.IORead {
				ns = D
			}
			return protocol.SnoopResult{NewState: ns, Hit: true, Supply: true, Flush: true}
		}
	case bus.WriteWord:
		// Write-throughs update invalid as well as valid copies
		// (Section E.4) — the essence of their busy-wait support.
		switch s {
		case I:
			return protocol.SnoopResult{NewState: V, TakeWord: true}
		case V, W1:
			return protocol.SnoopResult{NewState: V, Hit: true, UpdateWord: true}
		case D:
			// Cannot happen for matched tags in a consistent system;
			// accept the word defensively.
			return protocol.SnoopResult{NewState: V, Hit: true, UpdateWord: true}
		}
	case bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.IOWrite:
		switch s {
		case V, W1:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case D:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Flush: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == D}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case V, W1:
		return protocol.PrivRead
	case D:
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == D }

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool { return s == D }
