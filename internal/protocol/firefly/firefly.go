// Package firefly implements the DEC Firefly protocol (Section D.1;
// reported by Archibald and Baer): like Dragon, write-in for unshared
// data and word-update broadcasts for shared data, but the update
// broadcasts also write through to main memory, so shared copies are
// always clean and no shared-dirty owner state is needed.
package firefly

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid.
	I protocol.State = iota
	// E is Exclusive-clean: sole copy.
	E
	// SC is Shared-Clean: one of several copies; memory is current.
	SC
	// M is Modified: sole, dirty copy.
	M
)

var stateNames = [...]string{I: "I", E: "E", SC: "Sc", M: "M"}

// Protocol is the Firefly update scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("firefly", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "firefly" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol.
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Firefly (DEC)",
		Year:   1984,
		Policy: protocol.PolicyUpdate,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowRead:       protocol.MarkNonSource,
			protocol.RowWriteClean: protocol.MarkSource,
			protocol.RowWriteDirty: protocol.MarkSource,
		},
		CacheToCache:     true,
		DistributedState: "RWDS",
		ReadForWrite:     "D",
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I:
			return protocol.ProcResult{Cmd: bus.Read}
		case E, M:
			return protocol.ProcResult{Hit: true, NewState: M}
		default: // SC: update broadcast, written through to memory too
			return protocol.ProcResult{Cmd: bus.UpdateWord, MemUpdate: true}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		shared := t.Lines.Hit || t.Lines.SourceHit
		ns := E
		if shared {
			ns = SC
		}
		done := op == protocol.OpRead || op == protocol.OpReadEx
		return protocol.CompleteResult{NewState: ns, Done: done}
	case bus.UpdateWord:
		if t.Lines.Hit {
			// Memory was written through: the copy stays clean-shared.
			return protocol.CompleteResult{NewState: SC, Done: true}
		}
		// No sharers remain; memory was just updated, so exclusive
		// and clean.
		return protocol.CompleteResult{NewState: E, Done: true}
	}
	panic(fmt.Sprintf("firefly: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case E, SC:
			return protocol.SnoopResult{NewState: SC, Hit: true}
		case M:
			// Supply and flush: shared copies are always clean under
			// Firefly.
			ns := SC
			if t.Cmd == bus.IORead {
				ns = M
			}
			return protocol.SnoopResult{NewState: ns, Hit: true, Supply: true, Flush: true}
		}
	case bus.UpdateWord, bus.WriteWord:
		if s == SC {
			return protocol.SnoopResult{NewState: SC, Hit: true, UpdateWord: true}
		}
		if s == E || s == M {
			return protocol.SnoopResult{NewState: SC, Hit: true, UpdateWord: true}
		}
	case bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.IOWrite:
		switch s {
		case E, SC:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case M:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Flush: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == M}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case SC:
		return protocol.PrivRead
	case E, M:
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == M }

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool { return s == M }
