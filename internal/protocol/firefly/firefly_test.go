package firefly

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestSharedWriteGoesThroughToMemory(t *testing.T) {
	r := p.ProcAccess(SC, protocol.OpWrite)
	if r.Cmd != bus.UpdateWord || !r.MemUpdate {
		t.Fatalf("shared write: %+v, want UpdateWord with memory update", r)
	}
	txn := &bus.Transaction{Cmd: bus.UpdateWord, MemUpdate: true}
	txn.Lines.Hit = true
	c := p.Complete(SC, protocol.OpWrite, txn)
	if c.NewState != SC {
		t.Errorf("update with sharers -> %s, want stay Sc (clean)", p.StateName(c.NewState))
	}
}

func TestNoSharedDirtyState(t *testing.T) {
	// Memory write-through keeps shared copies clean, so no Sd state.
	if p.IsDirty(SC) {
		t.Error("Sc must be clean")
	}
	txn := &bus.Transaction{Cmd: bus.UpdateWord}
	c := p.Complete(SC, protocol.OpWrite, txn)
	if c.NewState != E {
		t.Errorf("update with no sharers -> %s, want E (memory just updated)", p.StateName(c.NewState))
	}
}

func TestModifiedFlushesOnTransfer(t *testing.T) {
	res := p.Snoop(M, &bus.Transaction{Cmd: bus.Read})
	if !res.Supply || !res.Flush || res.NewState != SC {
		t.Errorf("read snoop on M: %+v, want supply+flush -> Sc", res)
	}
}

func TestExclusiveSilentWrite(t *testing.T) {
	r := p.ProcAccess(E, protocol.OpWrite)
	if !r.Hit || r.NewState != M {
		t.Errorf("write on E: %+v", r)
	}
}

func TestSnoopUpdateTakesWord(t *testing.T) {
	res := p.Snoop(SC, &bus.Transaction{Cmd: bus.UpdateWord})
	if !res.UpdateWord || res.NewState != SC || !res.Hit {
		t.Errorf("snoop update on Sc: %+v", res)
	}
}

func TestWriteMissTwoPhase(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpWrite)
	if r.Cmd != bus.Read {
		t.Fatalf("write miss: %+v", r)
	}
	c := p.Complete(I, protocol.OpWrite, &bus.Transaction{Cmd: bus.Read})
	if c.NewState != E || c.Done {
		t.Fatalf("unshared write-miss fetch: %+v", c)
	}
	r = p.ProcAccess(E, protocol.OpWrite)
	if !r.Hit || r.NewState != M {
		t.Errorf("second phase: %+v", r)
	}
}

func TestEvict(t *testing.T) {
	for s, want := range map[protocol.State]bool{I: false, E: false, SC: false, M: true} {
		if got := p.Evict(s).Writeback; got != want {
			t.Errorf("Evict(%s) = %v, want %v", p.StateName(s), got, want)
		}
	}
}

// The complete Firefly machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, E, SC, M}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read},
		{S: I, Op: protocol.OpWrite, Cmd: bus.Read},
		{S: E, Op: protocol.OpRead, Hit: true, NS: E},
		{S: E, Op: protocol.OpReadEx, Hit: true, NS: E},
		{S: E, Op: protocol.OpWrite, Hit: true, NS: M},
		{S: SC, Op: protocol.OpRead, Hit: true, NS: SC},
		{S: SC, Op: protocol.OpReadEx, Hit: true, NS: SC},
		{S: SC, Op: protocol.OpWrite, Cmd: bus.UpdateWord}, // written through to memory too
		{S: M, Op: protocol.OpRead, Hit: true, NS: M},
		{S: M, Op: protocol.OpReadEx, Hit: true, NS: M},
		{S: M, Op: protocol.OpWrite, Hit: true, NS: M},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.UpdateWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.UpdateWord, NS: I},
		{S: E, Cmd: bus.Read, NS: SC, Hit: true},
		{S: E, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: E, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: E, Cmd: bus.UpdateWord, NS: SC, Hit: true, Update: true},
		{S: SC, Cmd: bus.Read, NS: SC, Hit: true},
		{S: SC, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: SC, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: SC, Cmd: bus.UpdateWord, NS: SC, Hit: true, Update: true},
		// No shared-dirty state: a modified block flushes as it is
		// shared, so shared copies are always clean.
		{S: M, Cmd: bus.Read, NS: SC, Hit: true, Supply: true, Flush: true},
		{S: M, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Flush: true},
		{S: M, Cmd: bus.Upgrade, NS: I, Hit: true, Supply: true, Flush: true},
		{S: M, Cmd: bus.UpdateWord, NS: SC, Hit: true, Update: true},
	})
}
