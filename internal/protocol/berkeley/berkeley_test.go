package berkeley

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestDirtyReadState(t *testing.T) {
	// The Katz innovation: a write-dirty source converts to
	// read-dirty when another cache requests read privilege; the
	// block stays dirty because it is not flushed (Section F.2).
	res := p.Snoop(WD, &bus.Transaction{Cmd: bus.Read})
	if res.NewState != RD || !res.Supply || !res.Dirty || res.Flush {
		t.Errorf("read snoop on W.D: %+v, want supply+dirty status, no flush -> R.D", res)
	}
	// The dirty read source keeps supplying on later reads.
	res = p.Snoop(RD, &bus.Transaction{Cmd: bus.Read})
	if res.NewState != RD || !res.Supply || !res.Dirty {
		t.Errorf("read snoop on R.D: %+v, want keep ownership", res)
	}
}

func TestRequesterNeverBecomesSourceOnRead(t *testing.T) {
	// Feature 8 "MEM": single source; the fetcher takes the plain
	// read state.
	for _, ln := range []bus.Lines{{}, {Hit: true}, {Hit: true, SourceHit: true, Dirty: true}} {
		txn := &bus.Transaction{Cmd: bus.Read, Lines: ln}
		c := p.Complete(I, protocol.OpRead, txn)
		if c.NewState != R {
			t.Errorf("read complete with lines %+v -> %s, want R", ln, p.StateName(c.NewState))
		}
	}
}

func TestStaticReadForWrite(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpReadEx)
	if r.Cmd != bus.ReadX {
		t.Fatalf("readex miss: %+v", r)
	}
	c := p.Complete(I, protocol.OpReadEx, &bus.Transaction{Cmd: bus.ReadX})
	if c.NewState != WC {
		t.Errorf("readex complete -> %s, want W.C", p.StateName(c.NewState))
	}
}

func TestCleanWriteStateIsSource(t *testing.T) {
	// The inconsistency Section F.3 remarks on: Katz et al. give the
	// clean write state source status.
	if !p.IsSource(WC) {
		t.Error("WC should be a source state under Katz et al.")
	}
	res := p.Snoop(WC, &bus.Transaction{Cmd: bus.Read})
	if !res.Supply || res.Dirty || res.NewState != R {
		t.Errorf("read snoop on W.C: %+v, want clean supply -> R", res)
	}
}

func TestWriteOnDirtyReadUpgrades(t *testing.T) {
	r := p.ProcAccess(RD, protocol.OpWrite)
	if r.Cmd != bus.Upgrade {
		t.Errorf("write on R.D: %+v, want Upgrade", r)
	}
	c := p.Complete(RD, protocol.OpWrite, &bus.Transaction{Cmd: bus.Upgrade})
	if c.NewState != WD {
		t.Errorf("upgrade complete -> %s", p.StateName(c.NewState))
	}
}

func TestEvictDirtyStates(t *testing.T) {
	for s, want := range map[protocol.State]bool{I: false, R: false, RD: true, WC: false, WD: true} {
		if got := p.Evict(s).Writeback; got != want {
			t.Errorf("Evict(%s).Writeback = %v, want %v", p.StateName(s), got, want)
		}
	}
}

func TestFeatures(t *testing.T) {
	f := p.Features()
	if f.FlushOnTransfer != "NF,S" || f.SourcePolicy != "MEM" || f.DirectoryOrg != "DPR" || f.ReadForWrite != "S" {
		t.Errorf("features: %+v", f)
	}
	if f.States[protocol.RowReadDirty] != protocol.MarkSource {
		t.Error("Read,Dirty must be a source state")
	}
	if f.HasState(protocol.RowReadClean) {
		t.Error("Katz has no clean read source state")
	}
}

// The complete Berkeley machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, R, RD, WC, WD}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.ReadX}, // static (Feature 5 "S")
		{S: I, Op: protocol.OpWrite, Cmd: bus.ReadX},
		{S: R, Op: protocol.OpRead, Hit: true, NS: R},
		{S: R, Op: protocol.OpReadEx, Hit: true, NS: R},
		{S: R, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: RD, Op: protocol.OpRead, Hit: true, NS: RD},
		{S: RD, Op: protocol.OpReadEx, Hit: true, NS: RD},
		{S: RD, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: WC, Op: protocol.OpRead, Hit: true, NS: WC},
		{S: WC, Op: protocol.OpReadEx, Hit: true, NS: WC},
		{S: WC, Op: protocol.OpWrite, Hit: true, NS: WD},
		{S: WD, Op: protocol.OpRead, Hit: true, NS: WD},
		{S: WD, Op: protocol.OpReadEx, Hit: true, NS: WD},
		{S: WD, Op: protocol.OpWrite, Hit: true, NS: WD},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.WriteWord, NS: I},
		{S: R, Cmd: bus.Read, NS: R, Hit: true},
		{S: R, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: R, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: R, Cmd: bus.WriteWord, NS: I, Hit: true},
		// The dirty read source keeps ownership and supplies with the
		// dirty status on the bus (Feature 7 "NF,S").
		{S: RD, Cmd: bus.Read, NS: RD, Hit: true, Supply: true, Dirty: true},
		{S: RD, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Dirty: true},
		{S: RD, Cmd: bus.Upgrade, NS: I, Hit: true, Dirty: true},
		{S: RD, Cmd: bus.WriteWord, NS: I, Hit: true, Dirty: true},
		// The clean write state is a source (the Section F.3
		// inconsistency); it supplies and falls to plain R.
		{S: WC, Cmd: bus.Read, NS: R, Hit: true, Supply: true},
		{S: WC, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true},
		{S: WC, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: WC, Cmd: bus.WriteWord, NS: I, Hit: true},
		{S: WD, Cmd: bus.Read, NS: RD, Hit: true, Supply: true, Dirty: true},
		{S: WD, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Dirty: true},
		{S: WD, Cmd: bus.Upgrade, NS: I, Hit: true, Dirty: true},
		{S: WD, Cmd: bus.WriteWord, NS: I, Hit: true, Dirty: true},
	})
}
