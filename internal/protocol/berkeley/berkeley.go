// Package berkeley implements the Katz, Eggers, Wood, Perkins,
// Sheldon 1985 protocol (Section F.2): the Berkeley ownership scheme
// built for SPUR. It introduced the dirty read state — a write-dirty
// source converts to read-dirty, remaining the (single) source and
// remaining dirty, when another cache requests read privilege —
// because the block is not flushed on transfer (Feature 7 "NF,S":
// clean/dirty status travels with the block). Unshared data is
// fetched for write privilege by a compiler-issued read instruction
// (Feature 5 "S"), entering the clean write state. If the single
// source purges a block, the next fetch falls back to memory (Feature
// 8 "MEM"). A single dual-ported-read directory replaces the dual
// directories (Feature 3 "DPR").
package berkeley

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid.
	I protocol.State = iota
	// R is Read: a clean, non-source, possibly shared copy.
	R
	// RD is Read-Dirty: readable, dirty, the single source
	// ("owned shared").
	RD
	// WC is Write-Clean: sole copy fetched for write privilege by the
	// static read instruction; clean but a source state (Table 1).
	WC
	// WD is Write-Dirty: sole, modified copy; the source.
	WD
)

var stateNames = [...]string{I: "I", R: "R", RD: "R.D", WC: "W.C", WD: "W.D"}

// Protocol is the Katz et al. Berkeley scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("berkeley", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "berkeley" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol (Table 1, column 5).
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Katz et al.",
		Year:   1985,
		Policy: protocol.PolicyWriteIn,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowRead:       protocol.MarkNonSource,
			protocol.RowReadDirty:  protocol.MarkSource,
			protocol.RowWriteClean: protocol.MarkSource,
			protocol.RowWriteDirty: protocol.MarkSource,
		},
		CacheToCache:        true,
		DistributedState:    "RWDS",
		DirectoryOrg:        "DPR",
		BusInvalidateSignal: true,
		ReadForWrite:        "S",
		AtomicRMW:           true,
		FlushOnTransfer:     "NF,S",
		SourcePolicy:        "MEM",
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	case protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.ReadX}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I:
			return protocol.ProcResult{Cmd: bus.ReadX}
		case R, RD:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		default: // WC, WD
			return protocol.ProcResult{Hit: true, NewState: WD}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		// The requester never becomes source by a plain read: the old
		// source keeps ownership (or memory supplied).
		return protocol.CompleteResult{NewState: R, Done: true}
	case bus.ReadX:
		if op == protocol.OpReadEx {
			return protocol.CompleteResult{NewState: WC, Done: true}
		}
		return protocol.CompleteResult{NewState: WD, Done: true}
	case bus.Upgrade:
		return protocol.CompleteResult{NewState: WD, Done: true}
	}
	panic(fmt.Sprintf("berkeley: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case R:
			return protocol.SnoopResult{NewState: R, Hit: true}
		case RD:
			// The dirty read source supplies without flushing and
			// keeps ownership; dirty status travels on the bus
			// (Feature 7 "NF,S").
			return protocol.SnoopResult{NewState: RD, Hit: true, Supply: true, Dirty: true}
		case WC:
			// Write privilege is lost. Katz et al. give the clean
			// write state source status, so it supplies, then drops
			// to the plain read state (there is no clean read source
			// state — the inconsistency Section F.3 remarks on).
			ns := R
			if t.Cmd == bus.IORead {
				ns = WC
			}
			return protocol.SnoopResult{NewState: ns, Hit: true, Supply: true}
		case WD:
			ns := RD
			if t.Cmd == bus.IORead {
				ns = WD
			}
			return protocol.SnoopResult{NewState: ns, Hit: true, Supply: true, Dirty: true}
		}
	case bus.ReadX:
		switch s {
		case R:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case RD, WD:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Dirty: true}
		case WC:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true}
		}
	case bus.Upgrade, bus.WriteNoFetch, bus.IOWrite, bus.WriteWord:
		switch s {
		case R, WC:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case RD, WD:
			// The upgrader holds an identical copy; dirty
			// responsibility transfers with the privilege.
			return protocol.SnoopResult{NewState: I, Hit: true, Dirty: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == RD || s == WD}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case R, RD:
		return protocol.PrivRead
	case WC, WD:
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == RD || s == WD }

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool { return s == RD || s == WC || s == WD }
