// Package yen implements the Yen, Yen, Fu 1985 protocol (Section
// F.2): Goodman's states combined with a bus invalidate signal
// (Feature 4) and a *static* determination of unshared data — the
// compiler issues a special read-for-write-privilege instruction for
// reads of unshared data, which takes effect only on misses (Feature
// 5 "S"). The clean write state is a non-source state (Table 1), and
// dirty blocks are flushed on cache-to-cache transfer (Feature 7 "F").
package yen

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid.
	I protocol.State = iota
	// V is Valid: clean, possibly shared.
	V
	// WC is Write-Clean: sole copy with write privilege, clean,
	// non-source; entered by the static read-for-write instruction.
	WC
	// D is Dirty: sole, modified copy; the source.
	D
)

var stateNames = [...]string{I: "I", V: "V", WC: "WC", D: "D"}

// Protocol is the Yen-Yen-Fu scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("yen", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "yen" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol (Table 1, column 4).
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Yen, Yen, Fu",
		Year:   1985,
		Policy: protocol.PolicyWriteIn,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowRead:       protocol.MarkNonSource,
			protocol.RowWriteClean: protocol.MarkNonSource,
			protocol.RowWriteDirty: protocol.MarkSource,
		},
		CacheToCache:        true,
		DistributedState:    "RWDS",
		BusInvalidateSignal: true,
		ReadForWrite:        "S",
		FlushOnTransfer:     "F",
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	case protocol.OpReadEx:
		// The special instruction affects a cache access only on a
		// miss (Section F.3, Feature 5).
		if s == I {
			return protocol.ProcResult{Cmd: bus.ReadX}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I:
			return protocol.ProcResult{Cmd: bus.ReadX}
		case V:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		default: // WC, D
			return protocol.ProcResult{Hit: true, NewState: D}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		return protocol.CompleteResult{NewState: V, Done: true}
	case bus.ReadX:
		if op == protocol.OpReadEx {
			// Unshared data fetched for write privilege arrives clean.
			return protocol.CompleteResult{NewState: WC, Done: true}
		}
		return protocol.CompleteResult{NewState: D, Done: true}
	case bus.Upgrade:
		return protocol.CompleteResult{NewState: D, Done: true}
	}
	panic(fmt.Sprintf("yen: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case V:
			return protocol.SnoopResult{NewState: V, Hit: true}
		case WC:
			// Write privilege is lost; the clean copy remains
			// readable. Non-source: memory supplies.
			return protocol.SnoopResult{NewState: V, Hit: true}
		case D:
			return protocol.SnoopResult{NewState: V, Hit: true, Supply: true, Flush: true}
		}
	case bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.IOWrite, bus.WriteWord:
		switch s {
		case V, WC:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case D:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Flush: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == D}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case V:
		return protocol.PrivRead
	case WC, D:
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == D }

// IsSource implements protocol.Protocol. The clean write state is a
// non-source state under Yen et al. (Table 1).
func (Protocol) IsSource(s protocol.State) bool { return s == D }
