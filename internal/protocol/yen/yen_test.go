package yen

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestStaticReadForWrite(t *testing.T) {
	// Feature 5 "S": the special instruction fetches with write
	// privilege, but only on a miss.
	r := p.ProcAccess(I, protocol.OpReadEx)
	if r.Cmd != bus.ReadX {
		t.Fatalf("readex miss: %+v, want ReadX", r)
	}
	c := p.Complete(I, protocol.OpReadEx, &bus.Transaction{Cmd: bus.ReadX})
	if c.NewState != WC {
		t.Fatalf("readex complete -> %s, want WC", p.StateName(c.NewState))
	}
	// On a hit the instruction has no effect.
	r = p.ProcAccess(V, protocol.OpReadEx)
	if !r.Hit || r.NewState != V {
		t.Errorf("readex hit on V: %+v, want plain hit", r)
	}
}

func TestPlainReadMissStaysRead(t *testing.T) {
	// No dynamic determination: a plain read miss takes read
	// privilege even when no other cache holds the block.
	c := p.Complete(I, protocol.OpRead, &bus.Transaction{Cmd: bus.Read})
	if c.NewState != V {
		t.Errorf("read miss -> %s, want V", p.StateName(c.NewState))
	}
}

func TestCleanWriteStateIsNonSource(t *testing.T) {
	// Table 1: Yen's Write,Clean is marked N.
	if p.IsSource(WC) {
		t.Error("WC must be non-source")
	}
	res := p.Snoop(WC, &bus.Transaction{Cmd: bus.Read})
	if res.Supply {
		t.Errorf("WC supplied on read snoop: %+v", res)
	}
	if res.NewState != V {
		t.Errorf("read snoop on WC -> %s, want V", p.StateName(res.NewState))
	}
}

func TestSilentWriteOnWC(t *testing.T) {
	r := p.ProcAccess(WC, protocol.OpWrite)
	if !r.Hit || r.NewState != D {
		t.Errorf("write on WC: %+v, want silent -> D", r)
	}
}

func TestDirtyFlushesOnTransfer(t *testing.T) {
	res := p.Snoop(D, &bus.Transaction{Cmd: bus.Read})
	if !res.Supply || !res.Flush || res.NewState != V {
		t.Errorf("read snoop on D: %+v, want supply+flush (Feature 7 F)", res)
	}
}

func TestWriteMissAndUpgrade(t *testing.T) {
	if r := p.ProcAccess(I, protocol.OpWrite); r.Cmd != bus.ReadX {
		t.Errorf("write miss: %+v", r)
	}
	if r := p.ProcAccess(V, protocol.OpWrite); r.Cmd != bus.Upgrade {
		t.Errorf("write hit on V: %+v", r)
	}
	c := p.Complete(I, protocol.OpWrite, &bus.Transaction{Cmd: bus.ReadX})
	if c.NewState != D {
		t.Errorf("write miss complete -> %s", p.StateName(c.NewState))
	}
}

func TestFeatures(t *testing.T) {
	f := p.Features()
	if f.ReadForWrite != "S" || !f.BusInvalidateSignal || f.FlushOnTransfer != "F" {
		t.Errorf("features: %+v", f)
	}
	if f.States[protocol.RowWriteClean] != protocol.MarkNonSource {
		t.Errorf("WC mark = %q, want N", f.States[protocol.RowWriteClean])
	}
}

// The complete Yen-Yen-Fu machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, V, WC, D}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.ReadX}, // static read-for-write (Feature 5 "S")
		{S: I, Op: protocol.OpWrite, Cmd: bus.ReadX},
		{S: V, Op: protocol.OpRead, Hit: true, NS: V},
		{S: V, Op: protocol.OpReadEx, Hit: true, NS: V}, // only applies on misses
		{S: V, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: WC, Op: protocol.OpRead, Hit: true, NS: WC},
		{S: WC, Op: protocol.OpReadEx, Hit: true, NS: WC},
		{S: WC, Op: protocol.OpWrite, Hit: true, NS: D},
		{S: D, Op: protocol.OpRead, Hit: true, NS: D},
		{S: D, Op: protocol.OpReadEx, Hit: true, NS: D},
		{S: D, Op: protocol.OpWrite, Hit: true, NS: D},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.WriteWord, NS: I},
		{S: V, Cmd: bus.Read, NS: V, Hit: true},
		{S: V, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: V, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: V, Cmd: bus.WriteWord, NS: I, Hit: true},
		// The clean write state is non-source (Table 1): it never
		// supplies, and demotes to V on a foreign read.
		{S: WC, Cmd: bus.Read, NS: V, Hit: true},
		{S: WC, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: WC, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: WC, Cmd: bus.WriteWord, NS: I, Hit: true},
		{S: D, Cmd: bus.Read, NS: V, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.Upgrade, NS: I, Hit: true, Supply: true, Flush: true},
		{S: D, Cmd: bus.WriteWord, NS: I, Hit: true, Supply: true, Flush: true},
	})
}
