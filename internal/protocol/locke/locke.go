// Package locke implements LOCKE, the lock-based coherence protocol
// of Menezo, Puente and Gregorio, from its published specification
// tables (arXiv:1203.5349), as the repository's 13th protocol.
//
// LOCKE is specified for unordered point-to-point networks, where each
// controller walks a lock/unlock handshake through transient states
// before a request completes. On this repository's atomic broadcast
// bus every transaction is globally ordered and runs to completion in
// one step, so the handshake collapses and only the specification's
// stable states remain:
//
//	I   Invalid
//	S   Shared          read privilege, not the source
//	E   Exclusive       sole clean copy, write privilege
//	O   Owned           shared dirty copy, source, read privilege
//	M   Modified        sole dirty copy, write privilege
//	L   Locked          sole dirty copy, locked by this cache
//	LW  Locked, Waiter  as L, with a recorded waiter
//
// The ownership half is the specification's MOESI repertoire: a read
// miss with no cached copy installs E (dynamic read-for-write,
// Feature 5 "D"); a dirty source answers a fetch with the block and
// its dirty status but keeps ownership (O), so memory is never
// updated on a cache-to-cache transfer (Feature 7 "NF,S") and falls
// back to being the source only when no owner exists (Feature 8
// "MEM") — the opposite of the paper's last-fetcher-becomes-source
// rule, which makes LOCKE a useful 13th point in the design space.
// The lock half is the specification's distinguishing feature mapped
// onto the bus exactly as Section E maps the paper's proposal: a lock
// rides the fetch (ReadX/Upgrade with lock intent), a locked line
// answers snoops with the locked signal and records the waiter
// (L→LW), unlocking broadcasts only when a waiter is recorded, and
// evicting a locked line purges the lock bit to memory for later
// reclaim.
package locke

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// The seven stable states.
const (
	// I is Invalid.
	I protocol.State = iota
	// S is Shared: read privilege, non-source.
	S
	// E is Exclusive: the sole copy, clean, write privilege.
	E
	// O is Owned: a shared dirty copy with the source function.
	O
	// M is Modified: the sole copy, dirty, write privilege.
	M
	// L is Locked: as M, locked by this cache.
	L
	// LW is Locked with a recorded waiter.
	LW
)

var stateNames = [...]string{
	I: "I", S: "S", E: "E", O: "O", M: "M", L: "L", LW: "LW",
}

// Protocol is the LOCKE adaptation. The zero value is ready to use; it
// is stateless and safe to share across caches.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}
var _ protocol.LockReclaimer = Protocol{}

func init() {
	protocol.Register("locke", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "locke" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol.
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "LOCKE (Menezo, Puente, Gregorio)",
		Year:   2012,
		Policy: protocol.PolicyWriteIn,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:       protocol.MarkNonSource,
			protocol.RowRead:          protocol.MarkNonSource, // S
			protocol.RowReadDirty:     protocol.MarkSource,    // O
			protocol.RowWriteClean:    protocol.MarkSource,    // E
			protocol.RowWriteDirty:    protocol.MarkSource,    // M
			protocol.RowLockDirty:     protocol.MarkSource,    // L
			protocol.RowLockDirtyWait: protocol.MarkSource,    // LW
		},
		CacheToCache:        true,
		DistributedState:    "RWLDS",
		BusInvalidateSignal: true,
		ReadForWrite:        "D",
		AtomicRMW:           true,
		FlushOnTransfer:     "NF,S",
		SourcePolicy:        "MEM",
		WriteNoFetch:        true,
		EfficientBusyWait:   true,
		HardwareLock:        true,
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		// Unshared status is determined dynamically from the hit line,
		// so OpReadEx behaves exactly like OpRead.
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}

	case protocol.OpWrite:
		switch s {
		case I:
			return protocol.ProcResult{Cmd: bus.ReadX}
		case S, O:
			// A valid copy exists — the owner included: O confers read
			// privilege only while other sharers may hold the block, so
			// writing requires the one-cycle invalidation.
			return protocol.ProcResult{Cmd: bus.Upgrade}
		case E, M:
			return protocol.ProcResult{Hit: true, NewState: M}
		default: // L, LW: writing while locked stays locked.
			return protocol.ProcResult{Hit: true, NewState: s}
		}

	case protocol.OpLock:
		switch s {
		case I:
			// Locking rides the fetch: no extra bus traffic.
			return protocol.ProcResult{Cmd: bus.ReadX, LockIntent: true}
		case S, O:
			return protocol.ProcResult{Cmd: bus.Upgrade, LockIntent: true}
		case E, M:
			// Zero-time lock: sole access already held.
			return protocol.ProcResult{Hit: true, NewState: L}
		default: // L, LW: recursive lock is a no-op.
			return protocol.ProcResult{Hit: true, NewState: s}
		}

	case protocol.OpUnlock:
		switch s {
		case L:
			// Zero-time unlock: the unlock is the final write to the
			// block, no bus access.
			return protocol.ProcResult{Hit: true, NewState: M}
		case LW:
			// A waiter was recorded: broadcast the unlock so busy-wait
			// registers re-arbitrate.
			return protocol.ProcResult{Cmd: bus.Unlock}
		case E, M:
			// Unlock without a held lock degenerates to a write (the
			// lock may have been reclaimed from a memory lock tag).
			return protocol.ProcResult{Hit: true, NewState: M}
		case S, O:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		default: // I: the locked block was purged; re-fetch to unlock.
			return protocol.ProcResult{Cmd: bus.ReadX}
		}

	case protocol.OpWriteBlock:
		switch s {
		case I:
			// The whole block will be written: gain write privilege
			// without fetching (Feature 9).
			return protocol.ProcResult{Cmd: bus.WriteNoFetch}
		case S, O:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		case E, M:
			return protocol.ProcResult{Hit: true, NewState: M}
		default: // L, LW
			return protocol.ProcResult{Hit: true, NewState: s}
		}
	}
	panic(fmt.Sprintf("locke: unknown op %v", op))
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	if t.Lines.Locked {
		// The block is locked elsewhere: the request is denied and the
		// cache initiates busy wait.
		return protocol.CompleteResult{NewState: s, BusyWait: true}
	}
	switch t.Cmd {
	case bus.Read:
		if !t.Lines.Hit && !t.Lines.SourceHit {
			// No other cache has the block: install Exclusive so a
			// later write needs no bus access.
			return protocol.CompleteResult{NewState: E, Done: true}
		}
		// A cached copy exists. A dirty source keeps ownership (it
		// stays O), so the fetcher always installs plain Shared —
		// whether the block came from the owner or from memory.
		return protocol.CompleteResult{NewState: S, Done: true}
	case bus.ReadX, bus.Upgrade:
		switch op {
		case protocol.OpLock:
			if t.AfterWait {
				// The arbitration winner locks in the waiter state,
				// since other waiters probably remain.
				return protocol.CompleteResult{NewState: LW, Done: true}
			}
			return protocol.CompleteResult{NewState: L, Done: true}
		case protocol.OpUnlock:
			// Lock-purge reclaim: the block is back with lock
			// privilege; re-run the unlock against it. The engine fixes
			// up L vs LW from the memory lock tag's waiter bit.
			return protocol.CompleteResult{NewState: L, Done: false}
		default:
			return protocol.CompleteResult{NewState: M, Done: true}
		}
	case bus.WriteNoFetch:
		return protocol.CompleteResult{NewState: M, Done: true}
	case bus.Unlock:
		// The unlock broadcast completes the unlock-write.
		return protocol.CompleteResult{NewState: M, Done: true}
	}
	panic(fmt.Sprintf("locke: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read:
		switch s {
		case S:
			return protocol.SnoopResult{NewState: S, Hit: true}
		case E:
			// The clean sole copy supplies and demotes to Shared;
			// memory becomes the source again.
			return protocol.SnoopResult{NewState: S, Hit: true, Supply: true}
		case O:
			// The owner supplies the block and its dirty status but
			// keeps ownership: no flush, no source handoff.
			return protocol.SnoopResult{NewState: O, Hit: true, Supply: true, Dirty: true}
		case M:
			return protocol.SnoopResult{NewState: O, Hit: true, Supply: true, Dirty: true}
		case L:
			// Another processor wants the locked block: record the
			// waiter.
			return protocol.SnoopResult{NewState: LW, Locked: true}
		case LW:
			return protocol.SnoopResult{NewState: LW, Locked: true}
		}

	case bus.ReadX:
		switch s {
		case S:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case E:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true}
		case O, M:
			// Dirty responsibility moves with the sole-access grant.
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Dirty: true}
		case L:
			return protocol.SnoopResult{NewState: LW, Locked: true}
		case LW:
			return protocol.SnoopResult{NewState: LW, Locked: true}
		}

	case bus.Upgrade, bus.WriteNoFetch, bus.WriteWord:
		switch s {
		case S, E:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case O, M:
			return protocol.SnoopResult{NewState: I, Hit: true, Dirty: true}
		case L:
			return protocol.SnoopResult{NewState: LW, Locked: true}
		case LW:
			return protocol.SnoopResult{NewState: LW, Locked: true}
		}

	case bus.IORead:
		// Non-paging output: supply but keep line state.
		switch s {
		case S:
			return protocol.SnoopResult{NewState: S, Hit: true}
		case E:
			return protocol.SnoopResult{NewState: E, Hit: true, Supply: true}
		case O, M:
			return protocol.SnoopResult{NewState: s, Hit: true, Supply: true, Dirty: true}
		case L, LW:
			return protocol.SnoopResult{NewState: s, Locked: true}
		}

	case bus.IOWrite:
		// Input: the I/O processor writes memory; cached copies
		// invalidate.
		switch s {
		case I:
			return protocol.SnoopResult{NewState: I}
		case L, LW:
			return protocol.SnoopResult{NewState: s, Locked: true}
		default:
			return protocol.SnoopResult{NewState: I, Hit: true}
		}

	case bus.Unlock, bus.Flush:
		// Unlock wakes busy-wait registers (cache level); a Flush is
		// another cache's writeback. Neither changes line state.
		return protocol.SnoopResult{NewState: s}
	}
	return protocol.SnoopResult{NewState: s}
}

// ReclaimedLockState implements protocol.LockReclaimer: when the owner
// re-fetches a block whose lock bit was purged to memory, the line
// re-enters the lock state, carrying over the recorded-waiter bit.
func (Protocol) ReclaimedLockState(waiter bool) protocol.State {
	if waiter {
		return LW
	}
	return L
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	switch s {
	case O, M:
		return protocol.Evict{Writeback: true}
	case L:
		return protocol.Evict{Writeback: true, LockPurge: true}
	case LW:
		return protocol.Evict{Writeback: true, LockPurge: true, Waiter: true}
	}
	return protocol.Evict{}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case S, O:
		return protocol.PrivRead
	case E, M:
		return protocol.PrivWrite
	case L, LW:
		return protocol.PrivLock
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool {
	return s == O || s == M || s == L || s == LW
}

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool {
	return s != I && s != S
}
