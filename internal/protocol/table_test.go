package protocol_test

import (
	"fmt"
	"sync"
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
)

// TestTableCompilesAllProtocols pins the guarantee the perf work rests
// on: every registered protocol fits the dense tables. A protocol that
// stops compiling would silently fall back to the (slow) method path.
func TestTableCompilesAllProtocols(t *testing.T) {
	for _, name := range all.Everything {
		p := protocol.MustNew(name)
		tab, err := protocol.Compile(p)
		if err != nil {
			t.Errorf("%s: does not compile: %v", name, err)
			continue
		}
		if got := protocol.TableFor(p); got == nil {
			t.Errorf("%s: TableFor returned nil for the registered implementation", name)
		}
		if len(tab.ValidStatesForTest()) == 0 {
			t.Errorf("%s: no reachable states", name)
		}
	}
}

// call captures a result or a panic, so table and method outcomes can
// be compared even on cells the implementation rejects.
func call(f func() any) (res any, panicked any) {
	defer func() { panicked = recover() }()
	return f(), nil
}

// TestTableMatchesMethodsExhaustive sweeps the full (state × event)
// space — including states beyond the compiled range and panic cells —
// and asserts the table-driven hooks agree with the methods on every
// outcome, result and panic alike.
func TestTableMatchesMethodsExhaustive(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			tab := protocol.TableFor(p)
			if tab == nil {
				t.Fatalf("no table")
			}
			// Two states past the compiled range exercise the fallback.
			maxS := protocol.State(tab.NumStates() + 2)
			for s := protocol.State(0); s <= maxS; s++ {
				s := s
				wantEv, evPanic := call(func() any { return p.Evict(s) })
				gotEv, gotEvPanic := call(func() any { return tab.Evict(s) })
				if fmt.Sprint(wantEv, evPanic) != fmt.Sprint(gotEv, gotEvPanic) {
					t.Errorf("Evict(%d): table %v/%v, method %v/%v", s, gotEv, gotEvPanic, wantEv, evPanic)
				}
				if tab.Privilege(s) != p.Privilege(s) || tab.IsDirty(s) != p.IsDirty(s) || tab.IsSource(s) != p.IsSource(s) {
					t.Errorf("per-state hooks diverge at state %d", s)
				}
				for op := protocol.Op(0); int(op) < protocol.NumOpsForTest; op++ {
					op := op
					want, wantP := call(func() any { return p.ProcAccess(s, op) })
					got, gotP := call(func() any { return tab.ProcAccess(s, op) })
					if fmt.Sprint(want, wantP) != fmt.Sprint(got, gotP) {
						t.Errorf("ProcAccess(%d,%s): table %v/%v, method %v/%v", s, op, got, gotP, want, wantP)
					}
					for cmd := bus.Cmd(0); int(cmd) < protocol.NumCmdsForTest; cmd++ {
						for flags := 0; flags < protocol.NumCompleteFlagsForTest; flags++ {
							mt := protocol.KeyTxnForTest(cmd, flags)
							tt := protocol.KeyTxnForTest(cmd, flags)
							want, wantP := call(func() any { return p.Complete(s, op, &mt) })
							got, gotP := call(func() any { return tab.Complete(s, op, &tt) })
							if fmt.Sprint(want, wantP != nil) != fmt.Sprint(got, gotP != nil) {
								t.Fatalf("Complete(%d,%s,%s,%#x): table %v/%v, method %v/%v",
									s, op, cmd, flags, got, gotP, want, wantP)
							}
						}
					}
				}
				for cmd := bus.Cmd(0); int(cmd) < protocol.NumCmdsForTest; cmd++ {
					mt := bus.Transaction{Cmd: cmd}
					tt := bus.Transaction{Cmd: cmd}
					want, wantP := call(func() any { return p.Snoop(s, &mt) })
					got, gotP := call(func() any { return tab.Snoop(s, &tt) })
					if fmt.Sprint(want, wantP != nil) != fmt.Sprint(got, gotP != nil) {
						t.Errorf("Snoop(%d,%s): table %v/%v, method %v/%v", s, cmd, got, gotP, want, wantP)
					}
					// Noisy non-key fields must not change the table result
					// (the compile-time probe guarantees the method agrees).
					noisy := protocol.SnoopNoisyTxnForTest(cmd)
					noisy.Lines = bus.Lines{}
					noisy.AfterWait = false
					gotN, gotNP := call(func() any { return tab.Snoop(s, &noisy) })
					if fmt.Sprint(got, gotP != nil) != fmt.Sprint(gotN, gotNP != nil) {
						t.Errorf("Snoop(%d,%s): noisy fields changed the result: %v vs %v", s, cmd, got, gotN)
					}
				}
			}
		})
	}
}

// TestTableCellsRoundTripEncodeDecode asserts every compiled cell of
// every protocol survives the packed fixed-width encode/decode.
func TestTableCellsRoundTripEncodeDecode(t *testing.T) {
	for _, name := range all.Everything {
		tab := protocol.TableFor(protocol.MustNew(name))
		if tab == nil {
			t.Fatalf("%s: no table", name)
		}
		if err := tab.RoundTripAllCellsForTest(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTableLookupsDoNotAllocate pins the hot-path contract of the
// compiled tables: a steady-state lookup on any hook is a plain array
// load, never an allocation.
func TestTableLookupsDoNotAllocate(t *testing.T) {
	tab := protocol.TableFor(protocol.MustNew("bitar"))
	if tab == nil {
		t.Fatal("no table for bitar")
	}
	txn := &bus.Transaction{Cmd: bus.Read, Lines: bus.Lines{Hit: true}}
	var sink protocol.Evict
	if n := testing.AllocsPerRun(200, func() {
		r := tab.ProcAccess(protocol.Invalid, protocol.OpRead)
		s := tab.Snoop(r.NewState, txn)
		c := tab.Complete(s.NewState, protocol.OpRead, txn)
		sink = tab.Evict(c.NewState)
		_ = tab.IsDirty(c.NewState)
	}); n != 0 {
		t.Fatalf("table lookups allocate %.1f times per iteration", n)
	}
	_ = sink
}

// TestPackRoundTripSynthetic round-trips synthetic cells over the full
// encodable ranges, beyond what any one protocol reaches.
func TestPackRoundTripSynthetic(t *testing.T) {
	bools := []bool{false, true}
	for _, ns := range []protocol.State{0, 1, 7, 63, 255} {
		for _, hit := range bools {
			for cmd := bus.Cmd(0); int(cmd) < protocol.NumCmdsForTest; cmd++ {
				for _, li := range bools {
					for _, mu := range bools {
						for _, done := range bools {
							for _, bw := range bools {
								for _, ok := range bools {
									err := protocol.PackRoundTripForTest(
										protocol.ProcResult{Hit: hit, NewState: ns, Cmd: cmd, LockIntent: li, MemUpdate: mu},
										protocol.CompleteResult{NewState: ns, Done: done, BusyWait: bw}, ok,
										protocol.SnoopResult{NewState: ns, Hit: hit, Locked: li, Supply: mu, Dirty: done, Flush: bw, UpdateWord: li, TakeWord: mu}, ok,
										protocol.Evict{Writeback: hit, LockPurge: li, Waiter: mu},
										protocol.Priv(int(cmd)%4), done, bw)
									if err != nil {
										t.Fatal(err)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// wrapped is a protocol wrapper that keeps the registered name but is
// not the registered implementation — the shape of a model-checker
// mutant. TableFor must refuse it.
type wrapped struct{ protocol.Protocol }

func TestTableForRejectsWrappers(t *testing.T) {
	p := protocol.MustNew("bitar")
	if tab := protocol.TableFor(wrapped{p}); tab != nil {
		t.Fatalf("TableFor accepted a wrapper type")
	}
	if tab := protocol.TableFor(p); tab == nil {
		t.Fatalf("TableFor rejected the registered implementation")
	}
}

// TestTableForConcurrent hammers the memoizing lookup from many
// goroutines; the returned table must be one shared instance.
func TestTableForConcurrent(t *testing.T) {
	p := protocol.MustNew("illinois")
	want := protocol.TableFor(p)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if got := protocol.TableFor(protocol.MustNew("illinois")); got != want {
					t.Error("TableFor returned a different instance")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestGoldenTextsDeterministic pins that golden generation is a pure
// function — the freshness gate in verify.sh depends on it.
func TestGoldenTextsDeterministic(t *testing.T) {
	a, b := protocol.GoldenTexts(), protocol.GoldenTexts()
	if len(a) != len(all.Everything) {
		t.Fatalf("GoldenTexts covers %d protocols, want %d", len(a), len(all.Everything))
	}
	for name, text := range a {
		if b[name] != text {
			t.Errorf("%s: golden text not deterministic", name)
		}
		if text == "" {
			t.Errorf("%s: empty golden text", name)
		}
	}
}
