// Package dragon implements the Xerox Dragon protocol (Section D.1;
// McCreight 1984): write-in for unshared data and write-through *to
// other caches* — word-granularity update broadcasts — for actively
// shared data. Sharing is determined dynamically from the bus hit
// line. Memory is not updated by the broadcasts; a shared-dirty owner
// retains write-back responsibility. This is the update-based
// counterpoint the paper's Section D.2 analysis argues against for
// general shared data.
package dragon

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// States.
const (
	// I is Invalid.
	I protocol.State = iota
	// E is Exclusive-clean: sole copy; writes need no bus.
	E
	// SC is Shared-Clean: one of several copies, memory current (or a
	// shared-dirty owner exists elsewhere).
	SC
	// SD is Shared-Dirty: one of several copies, and this cache owns
	// the write-back responsibility (it wrote the block last).
	SD
	// M is Modified: sole, dirty copy.
	M
)

var stateNames = [...]string{I: "I", E: "E", SC: "Sc", SD: "Sd", M: "M"}

// Protocol is the Dragon update scheme.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("dragon", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "dragon" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol.
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Dragon (McCreight)",
		Year:   1984,
		Policy: protocol.PolicyUpdate,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:    protocol.MarkNonSource,
			protocol.RowRead:       protocol.MarkNonSource,
			protocol.RowReadDirty:  protocol.MarkSource,
			protocol.RowWriteClean: protocol.MarkSource,
			protocol.RowWriteDirty: protocol.MarkSource,
		},
		CacheToCache:     true,
		DistributedState: "RWDS",
		ReadForWrite:     "D",
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}
	default: // writes
		switch s {
		case I:
			// Write miss: fetch first; the write is a second phase.
			return protocol.ProcResult{Cmd: bus.Read}
		case E:
			return protocol.ProcResult{Hit: true, NewState: M}
		case M:
			return protocol.ProcResult{Hit: true, NewState: M}
		default: // SC, SD: broadcast the word to the other caches.
			return protocol.ProcResult{Cmd: bus.UpdateWord}
		}
	}
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	switch t.Cmd {
	case bus.Read:
		shared := t.Lines.Hit || t.Lines.SourceHit
		ns := E
		if shared {
			ns = SC
		}
		done := op == protocol.OpRead || op == protocol.OpReadEx
		return protocol.CompleteResult{NewState: ns, Done: done}
	case bus.UpdateWord:
		if t.Lines.Hit {
			// Sharers remain: this cache is now the owner.
			return protocol.CompleteResult{NewState: SD, Done: true}
		}
		// The sharers have vanished: sole dirty copy.
		return protocol.CompleteResult{NewState: M, Done: true}
	}
	panic(fmt.Sprintf("dragon: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read, bus.IORead:
		switch s {
		case E:
			return protocol.SnoopResult{NewState: SC, Hit: true}
		case SC:
			return protocol.SnoopResult{NewState: SC, Hit: true}
		case SD:
			// The owner supplies (memory is stale) and stays owner.
			return protocol.SnoopResult{NewState: SD, Hit: true, Supply: true, Dirty: true}
		case M:
			ns := SD
			if t.Cmd == bus.IORead {
				ns = M
			}
			return protocol.SnoopResult{NewState: ns, Hit: true, Supply: true, Dirty: true}
		}
	case bus.UpdateWord, bus.WriteWord:
		switch s {
		case SC:
			return protocol.SnoopResult{NewState: SC, Hit: true, UpdateWord: true}
		case SD:
			// The writer takes over ownership; this copy demotes.
			return protocol.SnoopResult{NewState: SC, Hit: true, UpdateWord: true}
		case E, M:
			// Cannot happen in a pure Dragon system (an update implies
			// sharing); accept the word defensively.
			return protocol.SnoopResult{NewState: SC, Hit: true, UpdateWord: true}
		}
	case bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.IOWrite:
		// Only I/O and cross-protocol tests issue these in a Dragon
		// system.
		switch s {
		case E, SC:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case SD, M:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Dirty: true}
		}
	}
	return protocol.SnoopResult{NewState: s}
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	return protocol.Evict{Writeback: s == SD || s == M}
}

// Privilege implements protocol.Protocol. Shared copies may be
// written only via a bus broadcast, so they classify as read
// privilege.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case SC, SD:
		return protocol.PrivRead
	case E, M:
		return protocol.PrivWrite
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool { return s == SD || s == M }

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool { return s == SD || s == M }
