package dragon

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func TestWriteMissFetchesThenUpdates(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpWrite)
	if r.Cmd != bus.Read {
		t.Fatalf("write miss: %+v, want fetch first", r)
	}
	txn := &bus.Transaction{Cmd: bus.Read}
	txn.Lines.Hit = true
	c := p.Complete(I, protocol.OpWrite, txn)
	if c.NewState != SC || c.Done {
		t.Fatalf("fetch phase: %+v, want Sc, not done", c)
	}
	r = p.ProcAccess(SC, protocol.OpWrite)
	if r.Cmd != bus.UpdateWord || r.MemUpdate {
		t.Fatalf("shared write: %+v, want UpdateWord without memory update", r)
	}
}

func TestExclusiveWriteIsSilent(t *testing.T) {
	r := p.ProcAccess(E, protocol.OpWrite)
	if !r.Hit || r.NewState != M {
		t.Errorf("write on E: %+v, want silent -> M", r)
	}
}

func TestUpdateOwnershipHandoff(t *testing.T) {
	// Writer with sharers -> Sd; old owner demotes to Sc.
	txn := &bus.Transaction{Cmd: bus.UpdateWord}
	txn.Lines.Hit = true
	c := p.Complete(SC, protocol.OpWrite, txn)
	if c.NewState != SD {
		t.Errorf("update with sharers -> %s, want Sd", p.StateName(c.NewState))
	}
	res := p.Snoop(SD, &bus.Transaction{Cmd: bus.UpdateWord})
	if res.NewState != SC || !res.UpdateWord {
		t.Errorf("snoop update on Sd: %+v, want take word -> Sc", res)
	}
}

func TestUpdateWithoutSharersGoesExclusive(t *testing.T) {
	txn := &bus.Transaction{Cmd: bus.UpdateWord}
	c := p.Complete(SD, protocol.OpWrite, txn)
	if c.NewState != M {
		t.Errorf("update with no sharers -> %s, want M", p.StateName(c.NewState))
	}
}

func TestOwnerSuppliesOnRead(t *testing.T) {
	res := p.Snoop(SD, &bus.Transaction{Cmd: bus.Read})
	if !res.Supply || !res.Dirty || res.NewState != SD {
		t.Errorf("read snoop on Sd: %+v, want supply, stay owner", res)
	}
	res = p.Snoop(M, &bus.Transaction{Cmd: bus.Read})
	if !res.Supply || res.NewState != SD {
		t.Errorf("read snoop on M: %+v, want supply -> Sd", res)
	}
	if res.Flush {
		t.Error("Dragon does not write memory on transfer")
	}
}

func TestMemoryNotUpdatedByBroadcast(t *testing.T) {
	r := p.ProcAccess(SD, protocol.OpWrite)
	if r.MemUpdate {
		t.Error("Dragon updates caches only, not memory")
	}
}

func TestReadMissDynamicSharing(t *testing.T) {
	c := p.Complete(I, protocol.OpRead, &bus.Transaction{Cmd: bus.Read})
	if c.NewState != E {
		t.Errorf("unshared read miss -> %s, want E", p.StateName(c.NewState))
	}
}

func TestEvictOwnedStates(t *testing.T) {
	for s, want := range map[protocol.State]bool{E: false, SC: false, SD: true, M: true} {
		if got := p.Evict(s).Writeback; got != want {
			t.Errorf("Evict(%s) = %v, want %v", p.StateName(s), got, want)
		}
	}
}

// The complete Dragon machine, locked in cell by cell.
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, E, SC, SD, M}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read},
		{S: I, Op: protocol.OpWrite, Cmd: bus.Read}, // fetch first, then update/silent write
		{S: E, Op: protocol.OpRead, Hit: true, NS: E},
		{S: E, Op: protocol.OpReadEx, Hit: true, NS: E},
		{S: E, Op: protocol.OpWrite, Hit: true, NS: M},
		{S: SC, Op: protocol.OpRead, Hit: true, NS: SC},
		{S: SC, Op: protocol.OpReadEx, Hit: true, NS: SC},
		{S: SC, Op: protocol.OpWrite, Cmd: bus.UpdateWord}, // word broadcast to sharers
		{S: SD, Op: protocol.OpRead, Hit: true, NS: SD},
		{S: SD, Op: protocol.OpReadEx, Hit: true, NS: SD},
		{S: SD, Op: protocol.OpWrite, Cmd: bus.UpdateWord},
		{S: M, Op: protocol.OpRead, Hit: true, NS: M},
		{S: M, Op: protocol.OpReadEx, Hit: true, NS: M},
		{S: M, Op: protocol.OpWrite, Hit: true, NS: M},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.UpdateWord}
	tabletest.CheckSnoop(t, p, states, cmds, []tabletest.SnoopRow{
		{S: I, Cmd: bus.Read, NS: I},
		{S: I, Cmd: bus.ReadX, NS: I},
		{S: I, Cmd: bus.Upgrade, NS: I},
		{S: I, Cmd: bus.UpdateWord, NS: I},
		{S: E, Cmd: bus.Read, NS: SC, Hit: true},
		{S: E, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: E, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: E, Cmd: bus.UpdateWord, NS: SC, Hit: true, Update: true}, // defensive
		{S: SC, Cmd: bus.Read, NS: SC, Hit: true},
		{S: SC, Cmd: bus.ReadX, NS: I, Hit: true},
		{S: SC, Cmd: bus.Upgrade, NS: I, Hit: true},
		{S: SC, Cmd: bus.UpdateWord, NS: SC, Hit: true, Update: true},
		// The shared-dirty owner supplies (memory is stale) and keeps
		// ownership on reads; an update hands ownership to the writer.
		{S: SD, Cmd: bus.Read, NS: SD, Hit: true, Supply: true, Dirty: true},
		{S: SD, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Dirty: true},
		{S: SD, Cmd: bus.Upgrade, NS: I, Hit: true, Supply: true, Dirty: true},
		{S: SD, Cmd: bus.UpdateWord, NS: SC, Hit: true, Update: true},
		{S: M, Cmd: bus.Read, NS: SD, Hit: true, Supply: true, Dirty: true},
		{S: M, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Dirty: true},
		{S: M, Cmd: bus.Upgrade, NS: I, Hit: true, Supply: true, Dirty: true},
		{S: M, Cmd: bus.UpdateWord, NS: SC, Hit: true, Update: true},
	})
}
