// Package addr provides word-addressed memory geometry: the mapping
// between word addresses, cache blocks, and sub-block transfer units.
//
// The simulated machine is word addressed, matching the bus-wide-word
// granularity the paper uses when it reasons about traffic ("blocks
// having n bus-wide words"). A Geometry fixes the block size and the
// transfer-unit size (Section D.3 of the paper discusses transfer
// units smaller than a block to fight internal fragmentation).
package addr

import "fmt"

// Addr is the address of a single bus-wide word.
type Addr uint64

// Block identifies a cache block (an aligned group of words).
type Block uint64

// Geometry describes the block and transfer-unit sizes of a memory
// system. Both sizes are in words and must be powers of two, with
// TransferWords dividing BlockWords.
type Geometry struct {
	BlockWords    int // words per cache block
	TransferWords int // words per transfer unit (== BlockWords when whole blocks transfer)

	blockShift uint
	blockMask  uint64
}

// NewGeometry validates the sizes and returns a ready-to-use Geometry.
func NewGeometry(blockWords, transferWords int) (Geometry, error) {
	if blockWords <= 0 || blockWords&(blockWords-1) != 0 {
		return Geometry{}, fmt.Errorf("addr: block size %d words is not a positive power of two", blockWords)
	}
	if transferWords <= 0 || transferWords&(transferWords-1) != 0 {
		return Geometry{}, fmt.Errorf("addr: transfer unit %d words is not a positive power of two", transferWords)
	}
	if transferWords > blockWords || blockWords%transferWords != 0 {
		return Geometry{}, fmt.Errorf("addr: transfer unit %d must divide block size %d", transferWords, blockWords)
	}
	g := Geometry{BlockWords: blockWords, TransferWords: transferWords}
	for s := blockWords; s > 1; s >>= 1 {
		g.blockShift++
	}
	g.blockMask = uint64(blockWords - 1)
	return g, nil
}

// MustGeometry is NewGeometry for static configuration; it panics on error.
func MustGeometry(blockWords, transferWords int) Geometry {
	g, err := NewGeometry(blockWords, transferWords)
	if err != nil {
		panic(err)
	}
	return g
}

// BlockOf returns the block containing a.
func (g Geometry) BlockOf(a Addr) Block { return Block(uint64(a) >> g.blockShift) }

// Base returns the address of the first word of block b.
func (g Geometry) Base(b Block) Addr { return Addr(uint64(b) << g.blockShift) }

// Offset returns a's word offset within its block.
func (g Geometry) Offset(a Addr) int { return int(uint64(a) & g.blockMask) }

// UnitOf returns the index of the transfer unit within the block that
// contains a.
func (g Geometry) UnitOf(a Addr) int { return g.Offset(a) / g.TransferWords }

// Units returns the number of transfer units per block.
func (g Geometry) Units() int { return g.BlockWords / g.TransferWords }

// UnitBase returns the address of the first word of transfer unit u of
// block b.
func (g Geometry) UnitBase(b Block, u int) Addr {
	return g.Base(b) + Addr(u*g.TransferWords)
}

// SameBlock reports whether two addresses fall in the same block.
func (g Geometry) SameBlock(a, b Addr) bool { return g.BlockOf(a) == g.BlockOf(b) }

// String implements fmt.Stringer.
func (g Geometry) String() string {
	return fmt.Sprintf("block=%dw unit=%dw", g.BlockWords, g.TransferWords)
}
