package addr

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryValid(t *testing.T) {
	cases := []struct{ block, unit int }{
		{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 4}, {8, 8}, {16, 4}, {64, 16},
	}
	for _, c := range cases {
		g, err := NewGeometry(c.block, c.unit)
		if err != nil {
			t.Fatalf("NewGeometry(%d,%d): %v", c.block, c.unit, err)
		}
		if g.BlockWords != c.block || g.TransferWords != c.unit {
			t.Errorf("NewGeometry(%d,%d) = %v", c.block, c.unit, g)
		}
		if got := g.Units(); got != c.block/c.unit {
			t.Errorf("Units() = %d, want %d", got, c.block/c.unit)
		}
	}
}

func TestNewGeometryInvalid(t *testing.T) {
	cases := []struct{ block, unit int }{
		{0, 1}, {-4, 1}, {3, 1}, {6, 2}, {4, 3}, {4, 8}, {4, 0}, {8, -2},
	}
	for _, c := range cases {
		if _, err := NewGeometry(c.block, c.unit); err == nil {
			t.Errorf("NewGeometry(%d,%d): want error, got nil", c.block, c.unit)
		}
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry(3,1) did not panic")
		}
	}()
	MustGeometry(3, 1)
}

func TestBlockMapping(t *testing.T) {
	g := MustGeometry(4, 2)
	for a := Addr(0); a < 64; a++ {
		wantBlock := Block(a / 4)
		if got := g.BlockOf(a); got != wantBlock {
			t.Fatalf("BlockOf(%d) = %d, want %d", a, got, wantBlock)
		}
		if got := g.Offset(a); got != int(a%4) {
			t.Fatalf("Offset(%d) = %d, want %d", a, got, a%4)
		}
		if got := g.UnitOf(a); got != int(a%4)/2 {
			t.Fatalf("UnitOf(%d) = %d, want %d", a, got, int(a%4)/2)
		}
	}
}

func TestBaseAndUnitBase(t *testing.T) {
	g := MustGeometry(8, 4)
	if got := g.Base(3); got != 24 {
		t.Errorf("Base(3) = %d, want 24", got)
	}
	if got := g.UnitBase(3, 1); got != 28 {
		t.Errorf("UnitBase(3,1) = %d, want 28", got)
	}
	if got := g.UnitBase(0, 0); got != 0 {
		t.Errorf("UnitBase(0,0) = %d, want 0", got)
	}
}

func TestSameBlock(t *testing.T) {
	g := MustGeometry(4, 4)
	if !g.SameBlock(0, 3) {
		t.Error("SameBlock(0,3) = false, want true")
	}
	if g.SameBlock(3, 4) {
		t.Error("SameBlock(3,4) = true, want false")
	}
}

func TestSingleWordBlocks(t *testing.T) {
	// Rudolph-Segall limits block size to one word (Section E.4).
	g := MustGeometry(1, 1)
	for a := Addr(0); a < 16; a++ {
		if got := g.BlockOf(a); got != Block(a) {
			t.Fatalf("BlockOf(%d) = %d, want %d", a, got, a)
		}
		if got := g.Offset(a); got != 0 {
			t.Fatalf("Offset(%d) = %d, want 0", a, got)
		}
	}
}

// Property: Base(BlockOf(a)) + Offset(a) == a, for any geometry and address.
func TestRoundTripProperty(t *testing.T) {
	geoms := []Geometry{
		MustGeometry(1, 1), MustGeometry(2, 1), MustGeometry(4, 2),
		MustGeometry(8, 8), MustGeometry(16, 4), MustGeometry(64, 16),
	}
	f := func(raw uint64, pick uint8) bool {
		g := geoms[int(pick)%len(geoms)]
		a := Addr(raw >> 8) // keep well clear of overflow when shifted back
		return g.Base(g.BlockOf(a))+Addr(g.Offset(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: UnitBase covers the block exactly: unit u spans
// [UnitBase(b,u), UnitBase(b,u)+TransferWords) and UnitOf maps each
// word of the span back to u.
func TestUnitCoverProperty(t *testing.T) {
	f := func(rawBlock uint32, blockPow, unitPow uint8) bool {
		bw := 1 << (blockPow % 7) // 1..64
		uw := 1 << (unitPow % 7)
		if uw > bw {
			uw = bw
		}
		g := MustGeometry(bw, uw)
		b := Block(rawBlock)
		for u := 0; u < g.Units(); u++ {
			base := g.UnitBase(b, u)
			for w := 0; w < g.TransferWords; w++ {
				a := base + Addr(w)
				if g.BlockOf(a) != b || g.UnitOf(a) != u {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGeometryString(t *testing.T) {
	if got := MustGeometry(8, 2).String(); got != "block=8w unit=2w" {
		t.Errorf("String() = %q", got)
	}
}
