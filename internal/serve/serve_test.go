package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	_ "cachesync/internal/protocol/all"
	"cachesync/internal/runner"
	"cachesync/internal/simrun"
)

// newTestServer builds a Server and an httptest front end; both are
// torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJSON posts body and returns the status plus decoded response.
func postJSON(t *testing.T, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

// waitBusy polls until the server has n busy execution slots — the
// synchronization point for "a slow request is definitely running".
func waitBusy(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.gate.InUse() < n {
		if time.Now().After(deadline) {
			t.Fatalf("slot never became busy (in use: %d, want %d)", s.gate.InUse(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSimulateMatchesCLI pins the tentpole contract: the daemon's
// /v1/simulate output is byte-identical to what cmd/cachesim prints
// for the same configuration (both delegate to internal/simrun, and
// this test would catch either side drifting).
func TestSimulateMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Cache: nil})

	for _, cfg := range []simrun.Config{
		{Protocol: "bitar", Ops: 300, Seed: 3},
		{Protocol: "illinois", Procs: 2, Workload: "lock", Iters: 10, Seed: 5},
		{Protocol: "goodman", Ops: 200, Seed: 9, LogN: 4},
	} {
		want, err := simrun.Run(context.Background(), cfg.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		code, _, body := postJSON(t, ts.URL+"/v1/simulate", cfg)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", cfg.Protocol, code, body)
		}
		var resp SimulateResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Output != want.Output {
			t.Fatalf("%s: daemon output differs from CLI output:\ndaemon:\n%s\nCLI:\n%s",
				cfg.Protocol, resp.Output, want.Output)
		}
		if resp.Pass != want.Pass || resp.Cycles != want.Cycles {
			t.Fatalf("%s: pass/cycles = %v/%d, want %v/%d",
				cfg.Protocol, resp.Pass, resp.Cycles, want.Pass, want.Cycles)
		}
	}
}

// TestSimulateValidation rejects bad configurations with 400 before
// any work happens.
func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	cases := []any{
		simrun.Config{Protocol: "no-such-protocol"},
		simrun.Config{Protocol: "bitar", Workload: "trace", TraceFile: "/etc/passwd"},
		simrun.Config{Protocol: "bitar", Procs: 99},
		map[string]any{"protocol": "bitar", "bogus_field": 1},
	}
	for i, c := range cases {
		code, _, body := postJSON(t, ts.URL+"/v1/simulate", c)
		if code != http.StatusBadRequest {
			t.Fatalf("case %d: status %d (%s), want 400", i, code, body)
		}
	}
}

// TestCheckEndpoint runs a clean check and an injected-bug check: the
// first passes, the second returns a counterexample.
func TestCheckEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, _, body := postJSON(t, ts.URL+"/v1/check", CheckRequest{Protocol: "bitar", Depth: 4})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp CheckResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Pass {
		t.Fatalf("clean bitar check failed: %s", resp.Result)
	}
	var res struct {
		States         int64 `json:"states"`
		Counterexample any   `json:"counterexample"`
	}
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.States < 2 {
		t.Fatalf("states = %d, want >= 2", res.States)
	}

	code, _, body = postJSON(t, ts.URL+"/v1/check",
		CheckRequest{Protocol: "bitar", Inject: "drop-invalidate", Depth: 5})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Pass {
		t.Fatal("injected bug not caught")
	}
	if !bytes.Contains(resp.Result, []byte("counterexample")) {
		t.Fatalf("no counterexample in result: %s", resp.Result)
	}

	code, _, body = postJSON(t, ts.URL+"/v1/check", CheckRequest{Protocol: "bitar", Depth: 99})
	if code != http.StatusBadRequest {
		t.Fatalf("depth 99: status %d (%s), want 400", code, body)
	}
}

// TestSweepEndpoint fans out protocols × procs and returns one summary
// point per cell.
func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, _, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Protocols: []string{"bitar", "illinois"}, Procs: []int{1, 2}, Ops: 200,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(resp.Points))
	}
	if !resp.Pass {
		t.Fatalf("sweep reported coherence violations: %+v", resp.Points)
	}
	for _, p := range resp.Points {
		if p.Cycles <= 0 {
			t.Fatalf("point %+v has no cycles", p)
		}
	}
}

// TestSweepWorkerCountInvariant pins the parallel sweep executor's
// contract at the HTTP layer: the response body is byte-identical at
// every SweepWorkers setting (cells merge in submission order).
func TestSweepWorkerCountInvariant(t *testing.T) {
	req := SweepRequest{
		Protocols: []string{"bitar", "dragon", "illinois"}, Procs: []int{1, 2}, Ops: 150,
	}
	var want []byte
	for _, sweepWorkers := range []int{1, 2, 8} {
		_, ts := newTestServer(t, Config{Workers: 2, SweepWorkers: sweepWorkers})
		code, _, body := postJSON(t, ts.URL+"/v1/sweep", req)
		if code != http.StatusOK {
			t.Fatalf("sweep-workers=%d: status %d: %s", sweepWorkers, code, body)
		}
		// The job ID differs per server instance; compare the payload.
		var resp SweepResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		resp.Job = ""
		canon, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = canon
		} else if string(canon) != string(want) {
			t.Errorf("sweep-workers=%d: response diverges:\n%s\nwant:\n%s", sweepWorkers, canon, want)
		}
	}
}

// TestQueueFullReturns429WithRetryAfter fills the single execution
// slot with a slow request, sets queue capacity to zero, and asserts
// the next arrival is shed with 429 + Retry-After.
func TestQueueFullReturns429WithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 0, RetryAfter: 2 * time.Second})

	done := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, ts.URL+"/v1/simulate",
			simrun.Config{Protocol: "bitar", Ops: 30_000, Seed: 41})
		done <- code
	}()
	waitBusy(t, s, 1)

	code, hdr, body := postJSON(t, ts.URL+"/v1/simulate",
		simrun.Config{Protocol: "bitar", Ops: 30_000, Seed: 42})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", code, body)
	}
	if hdr.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", hdr.Get("Retry-After"))
	}
	if got := <-done; got != http.StatusOK {
		t.Fatalf("slot-holding request finished with %d, want 200", got)
	}
}

// TestDeadlineReturns504Promptly gives a long simulation a 100ms
// budget and asserts the 504 arrives promptly — i.e. the deadline
// propagated into the simulation step loop and aborted it mid-run
// rather than letting it run to completion.
func TestDeadlineReturns504Promptly(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	start := time.Now()
	code, _, body := postJSON(t, ts.URL+"/v1/simulate?timeout=100ms",
		simrun.Config{Protocol: "bitar", Ops: 1_000_000, Seed: 43})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, body)
	}
	// A 1M-op run takes tens of seconds; a prompt abort is orders of
	// magnitude faster. The generous bound absorbs -race and CI noise.
	if elapsed > 10*time.Second {
		t.Fatalf("504 took %v — cancellation did not reach the simulation", elapsed)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("error body %q does not identify the deadline", body)
	}

	// The aborted run must release its slot and unwind its goroutines:
	// the next request executes fresh.
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slot still busy after 504")
		}
		time.Sleep(time.Millisecond)
	}
	code, _, body = postJSON(t, ts.URL+"/v1/simulate",
		simrun.Config{Protocol: "bitar", Ops: 200, Seed: 43})
	if code != http.StatusOK {
		t.Fatalf("follow-up request: status %d (%s)", code, body)
	}
}

// TestGracefulDrainAnswersInFlight starts a request, flips the server
// into drain mode, and asserts: the in-flight request completes with
// 200, new work is rejected with 503 + Retry-After, /healthz reports
// draining, and Close returns once the request is done.
func TestGracefulDrainAnswersInFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		code, _, body := postJSON(t, ts.URL+"/v1/simulate",
			simrun.Config{Protocol: "bitar", Ops: 20_000, Seed: 51})
		done <- result{code, body}
	}()
	waitBusy(t, s, 1)
	s.StartDrain()

	code, hdr, body := postJSON(t, ts.URL+"/v1/simulate",
		simrun.Config{Protocol: "bitar", Ops: 200, Seed: 52})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: status %d (%s), want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 during drain has no Retry-After")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503", resp.StatusCode)
	}

	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d (%s), want 200", r.code, r.body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(r.body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Pass {
		t.Fatal("drained request's simulation did not pass")
	}

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after drain")
	}
}

// TestConcurrentIdenticalRequestsCoalesce fires identical requests
// concurrently and asserts exactly one execution happened: everyone
// else was served by the single flight or the result cache, and all
// answers are identical.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	cache, err := runner.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 4, Cache: cache})

	cfg := simrun.Config{Protocol: "bitar", Ops: 5_000, Seed: 61}
	const n = 8
	var wg sync.WaitGroup
	resps := make([]SimulateResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, body := postJSON(t, ts.URL+"/v1/simulate", cfg)
			codes[i] = code
			_ = json.Unmarshal(body, &resps[i])
		}(i)
	}
	wg.Wait()

	executed := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if resps[i].Output != resps[0].Output {
			t.Fatalf("request %d: output differs", i)
		}
		if !resps[i].Cached && !resps[i].Coalesced {
			executed++
		}
	}
	if executed != 1 {
		t.Fatalf("%d requests executed fresh, want exactly 1 (rest coalesced or cached)", executed)
	}
}

// TestJobStreamNDJSON runs a request asynchronously and streams its
// job events: queued → started → buslog lines → done, each one valid
// JSON on its own line.
func TestJobStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, _, body := postJSON(t, ts.URL+"/v1/simulate?async=1",
		simrun.Config{Protocol: "bitar", Ops: 2_000, Seed: 71, LogN: 5})
	if code != http.StatusAccepted {
		t.Fatalf("async submit: status %d (%s), want 202", code, body)
	}
	var acc struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Job == "" {
		t.Fatal("202 response has no job id")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + acc.Job)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body) // stream closes when the job finishes
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	var types []string
	for i, ln := range lines {
		var ev JobEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %q", i, ln)
		}
		if ev.Seq != i {
			t.Fatalf("line %d has seq %d", i, ev.Seq)
		}
		types = append(types, ev.T)
	}
	if types[0] != "queued" || types[len(types)-1] != "done" {
		t.Fatalf("event types = %v, want queued ... done", types)
	}
	buslog := 0
	for _, ty := range types {
		if ty == "buslog" {
			buslog++
		}
	}
	if buslog == 0 || buslog > 5 {
		t.Fatalf("buslog events = %d, want 1..5 (LogN=5)", buslog)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestOverloadShedsCleanly slams a 1-worker, 1-queue server with a
// burst and asserts every response is either a success or a clean 429
// — never a 5xx, never a hang — and that the whole episode leaks no
// goroutines.
func TestOverloadShedsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})
		const n = 12
		var wg sync.WaitGroup
		codes := make([]int, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				codes[i], _, _ = postJSON(t, ts.URL+"/v1/simulate?timeout=30s",
					simrun.Config{Protocol: "bitar", Ops: 5_000, Seed: int64(100 + i)})
			}(i)
		}
		wg.Wait()
		ok, shed := 0, 0
		for i, c := range codes {
			switch c {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				shed++
			default:
				t.Fatalf("request %d: status %d — overload must produce only 200s and 429s", i, c)
			}
		}
		if ok == 0 {
			t.Fatal("no request succeeded under overload")
		}
		t.Logf("overload: %d ok, %d shed", ok, shed)
		ts.Close()
		s.Close()
		http.DefaultClient.CloseIdleConnections()
	}()

	// Everything the burst spawned — workload goroutines, pool workers,
	// watchers — must unwind once the server closes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after overload+close", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGateDirect exercises the admission gate's three outcomes
// deterministically: immediate grant, bounded wait, and rejection.
func TestGateDirect(t *testing.T) {
	g := newGate(1, 1)
	rel1, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan error, 1)
	go func() {
		rel2, err := g.acquire(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiting() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := g.acquire(context.Background()); err != errQueueFull {
		t.Fatalf("third acquire: %v, want errQueueFull", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.acquire(ctx); err != errQueueFull {
		// With the queue occupied, even a deadline-bearing caller is
		// shed immediately rather than waiting.
		t.Fatalf("acquire with full queue: %v, want errQueueFull", err)
	}

	rel1()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if g.InUse() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inuse=%d waiting=%d", g.InUse(), g.Waiting())
	}
}

// TestMetricsEndpoint checks the exposition after some traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	code, _, _ := postJSON(t, ts.URL+"/v1/simulate", simrun.Config{Protocol: "bitar", Ops: 200, Seed: 81})
	if code != http.StatusOK {
		t.Fatalf("simulate: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`cachesyncd_requests_total{route="POST /v1/simulate"} 1`,
		`cachesyncd_responses_total{code="200"} 1`,
		"cachesyncd_uptime_seconds",
		"cachesyncd_inflight",
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("metrics missing %q:\n%s", want, raw)
		}
	}
}

// TestTimeoutParam rejects malformed and non-positive timeouts.
func TestTimeoutParam(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, q := range []string{"timeout=banana", "timeout=-3s", "timeout=0s"} {
		code, _, body := postJSON(t, ts.URL+"/v1/simulate?"+q, simrun.Config{Protocol: "bitar", Ops: 100})
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", q, code, body)
		}
	}
}

// TestPprofMount covers the /debug/pprof/ diagnostic mount: present
// only when Config.Pprof is set, served outside the instrumented
// route table (no /metrics footprint, no admission), and still
// answering while the daemon drains.
func TestPprofMount(t *testing.T) {
	t.Run("disabled-by-default", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 1})
		resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("pprof without Config.Pprof: code %d, want 404", resp.StatusCode)
		}
	})

	t.Run("enabled", func(t *testing.T) {
		s, ts := newTestServer(t, Config{Workers: 1, Pprof: true})
		for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: code %d, want 200", path, resp.StatusCode)
			}
		}

		// Not instrumented: the probes above must not appear in /metrics.
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "pprof") {
			t.Fatalf("/metrics mentions pprof routes:\n%s", body)
		}

		// Still served while draining (new work is 503 then).
		s.StartDrain()
		resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof while draining: code %d, want 200", resp.StatusCode)
		}
	})
}
