package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// routeStat accumulates one route's request count and latency — the
// per-route view the cluster router and BENCH_cluster read to compute
// fleet hit ratios and route-level latencies without parsing bodies.
type routeStat struct {
	count  int64
	micros int64
}

// metrics is the daemon's counter set, rendered in Prometheus text
// exposition format at GET /metrics. Everything is atomic or
// mutex-guarded: handlers update concurrently.
type metrics struct {
	start time.Time

	mu       sync.Mutex
	routes   map[string]*routeStat // by route
	statuses map[int]int64         // by HTTP status

	inflight     atomic.Int64
	rejected     atomic.Int64 // 429s from the admission gate
	timeouts     atomic.Int64 // 504s from expired deadlines
	coalesced    atomic.Int64 // requests served by another's execution
	cacheHits    atomic.Int64 // requests served from the result cache
	peerHits     atomic.Int64 // cache entries fetched from fleet peers
	artifactHits atomic.Int64 // GET /v1/artifact answered 200
	artifactMiss atomic.Int64 // GET /v1/artifact answered 404
	shardOpens   atomic.Int64 // distributed-check shard sessions opened
	cacheMisses  atomic.Int64 // requests that executed fresh (X-Cache: miss)
	reqMicros    atomic.Int64 // summed request latency
	reqCount     atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		start:    time.Now(),
		routes:   make(map[string]*routeStat),
		statuses: make(map[int]int64),
	}
}

func (m *metrics) request(route string) {
	m.mu.Lock()
	if m.routes[route] == nil {
		m.routes[route] = &routeStat{}
	}
	m.routes[route].count++
	m.mu.Unlock()
}

func (m *metrics) status(code int) {
	m.mu.Lock()
	m.statuses[code]++
	m.mu.Unlock()
}

func (m *metrics) observe(route string, d time.Duration) {
	m.reqMicros.Add(d.Microseconds())
	m.reqCount.Add(1)
	m.mu.Lock()
	if m.routes[route] == nil {
		m.routes[route] = &routeStat{}
	}
	m.routes[route].micros += d.Microseconds()
	m.mu.Unlock()
}

// render writes the exposition text.
func (m *metrics) render(g *gate, jobs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# TYPE cachesyncd_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "cachesyncd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	m.mu.Lock()
	routes := make([]string, 0, len(m.routes))
	for r := range m.routes {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	fmt.Fprintf(&b, "# TYPE cachesyncd_requests_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(&b, "cachesyncd_requests_total{route=%q} %d\n", r, m.routes[r].count)
	}
	fmt.Fprintf(&b, "# TYPE cachesyncd_route_seconds_sum counter\n")
	for _, r := range routes {
		fmt.Fprintf(&b, "cachesyncd_route_seconds_sum{route=%q} %.6f\n", r, float64(m.routes[r].micros)/1e6)
	}
	fmt.Fprintf(&b, "# TYPE cachesyncd_route_seconds_count counter\n")
	for _, r := range routes {
		fmt.Fprintf(&b, "cachesyncd_route_seconds_count{route=%q} %d\n", r, m.routes[r].count)
	}
	codes := make([]int, 0, len(m.statuses))
	for c := range m.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Fprintf(&b, "# TYPE cachesyncd_responses_total counter\n")
	for _, c := range codes {
		fmt.Fprintf(&b, "cachesyncd_responses_total{code=\"%d\"} %d\n", c, m.statuses[c])
	}
	m.mu.Unlock()

	fmt.Fprintf(&b, "# TYPE cachesyncd_inflight gauge\ncachesyncd_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_queue_waiting gauge\ncachesyncd_queue_waiting %d\n", g.Waiting())
	fmt.Fprintf(&b, "# TYPE cachesyncd_slots_busy gauge\ncachesyncd_slots_busy %d\n", g.InUse())
	fmt.Fprintf(&b, "# TYPE cachesyncd_rejected_total counter\ncachesyncd_rejected_total %d\n", m.rejected.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_timeout_total counter\ncachesyncd_timeout_total %d\n", m.timeouts.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_coalesced_total counter\ncachesyncd_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_cache_hits_total counter\ncachesyncd_cache_hits_total %d\n", m.cacheHits.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_cache_misses_total counter\ncachesyncd_cache_misses_total %d\n", m.cacheMisses.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_peer_hits_total counter\ncachesyncd_peer_hits_total %d\n", m.peerHits.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_artifact_hits_total counter\ncachesyncd_artifact_hits_total %d\n", m.artifactHits.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_artifact_misses_total counter\ncachesyncd_artifact_misses_total %d\n", m.artifactMiss.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_shard_sessions_total counter\ncachesyncd_shard_sessions_total %d\n", m.shardOpens.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncd_jobs_stored gauge\ncachesyncd_jobs_stored %d\n", jobs)
	fmt.Fprintf(&b, "# TYPE cachesyncd_request_seconds_sum counter\ncachesyncd_request_seconds_sum %.6f\n",
		float64(m.reqMicros.Load())/1e6)
	fmt.Fprintf(&b, "# TYPE cachesyncd_request_seconds_count counter\ncachesyncd_request_seconds_count %d\n",
		m.reqCount.Load())
	return b.String()
}
