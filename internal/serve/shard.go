package serve

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"cachesync/internal/mcheck"
)

// Distributed-check hosting: the /v1/shard/* endpoints expose one
// mcheck.ShardSession per (session id, replica) to a fleet
// coordinator (internal/cluster), which drives the level-synchronized
// expand/absorb phases over HTTP. Sessions are in-memory state — they
// hold a slice of the visited set between calls — so they live in a
// small TTL-bounded store rather than the stateless job machinery the
// other endpoints use. Expansion and absorption occupy an admission
// slot per call: a replica serving shard phases shares its execution
// width with simulate/check/sweep traffic instead of bypassing the
// arbiter.

const (
	shardSessionTTL  = 2 * time.Minute
	maxShardSessions = 16
	// shardBodyLimit caps absorb bodies, whose candidate lists scale
	// with the frontier rather than the request — far past the 1 MB
	// general-purpose body cap.
	shardBodyLimit = 64 << 20
)

// shardSess is one hosted session plus its bookkeeping. The mutex
// serializes phase calls: a coordinator drives phases strictly in
// order, so contention only appears when a confused or duplicate
// coordinator shows up — and then the lock keeps the session coherent.
type shardSess struct {
	mu      sync.Mutex
	sess    *mcheck.ShardSession
	touched time.Time
}

// shardStore is the session table.
type shardStore struct {
	mu       sync.Mutex
	sessions map[string]*shardSess
}

func newShardStore() *shardStore {
	return &shardStore{sessions: make(map[string]*shardSess)}
}

// prune drops sessions idle past the TTL. Callers hold st.mu.
func (st *shardStore) prune(now time.Time) {
	for k, s := range st.sessions {
		if now.Sub(s.touched) > shardSessionTTL {
			delete(st.sessions, k)
		}
	}
}

func (st *shardStore) put(key string, s *mcheck.ShardSession) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	st.prune(now)
	if _, ok := st.sessions[key]; ok {
		return fmt.Errorf("shard session %q already open", key)
	}
	if len(st.sessions) >= maxShardSessions {
		return fmt.Errorf("shard session table full (%d sessions)", maxShardSessions)
	}
	st.sessions[key] = &shardSess{sess: s, touched: now}
	return nil
}

func (st *shardStore) get(key string) *shardSess {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	st.prune(now)
	s := st.sessions[key]
	if s != nil {
		s.touched = now
	}
	return s
}

func (st *shardStore) drop(key string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.sessions, key)
}

func (st *shardStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// shardOpenRequest opens one session shard: the check configuration
// plus the session's coordinates.
type shardOpenRequest struct {
	CheckRequest
	Session string `json:"session"`
	Self    int    `json:"self"`
	Total   int    `json:"total"`
	// Resume asks the session to restore itself from a checkpoint
	// under the server's ShardCheckpointRoot — the coordinator's
	// re-dispatch path after this session's previous replica died.
	Resume bool `json:"resume,omitempty"`
}

// shardCallRequest addresses a phase call to an open session.
type shardCallRequest struct {
	Session string            `json:"session"`
	Seq     int64             `json:"seq,omitempty"`
	Cands   []mcheck.WireCand `json:"cands,omitempty"`
	ID      uint64            `json:"id,omitempty"`
}

func (s *Server) handleShardOpen(w http.ResponseWriter, r *http.Request) {
	var req shardOpenRequest
	if err := decodeBodyLimit(r, &req, shardBodyLimit); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	if req.Session == "" || len(req.Session) > 128 {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad session id"}, false)
		return
	}
	opts, err := req.CheckRequest.Normalize().Options()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	opts.Workers = s.cfg.Workers
	sess, err := mcheck.NewShardSession(opts, req.Self, req.Total)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	if root := s.cfg.ShardCheckpointRoot; root != "" {
		dir := filepath.Join(root, sanitizeSession(req.Session))
		if err := sess.SetCheckpointDir(dir, req.Resume); err != nil {
			s.writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()}, false)
			return
		}
	}
	if err := s.shards.put(req.Session, sess); err != nil {
		s.met.rejected.Add(1)
		s.writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error()}, true)
		return
	}
	reply, err := sess.Open()
	if err != nil {
		s.shards.drop(req.Session)
		s.writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()}, false)
		return
	}
	s.met.shardOpens.Add(1)
	s.writeJSON(w, http.StatusOK, reply, false)
}

// shardPhase is the shared lookup + serialize + admission tail of the
// expand/absorb/trace handlers. gated marks the compute-heavy phases
// that must hold an execution slot.
func (s *Server) shardPhase(w http.ResponseWriter, r *http.Request, gated bool,
	call func(sess *mcheck.ShardSession, req *shardCallRequest) (any, error)) {

	var req shardCallRequest
	if err := decodeBodyLimit(r, &req, shardBodyLimit); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	ss := s.shards.get(req.Session)
	if ss == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown shard session"}, false)
		return
	}
	if gated {
		release, err := s.gate.acquire(r.Context())
		if err != nil {
			s.writeError(w, err)
			return
		}
		defer release()
	}
	ss.mu.Lock()
	reply, err := call(ss.sess, &req)
	ss.mu.Unlock()
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()}, false)
		return
	}
	s.writeJSON(w, http.StatusOK, reply, false)
}

func (s *Server) handleShardExpand(w http.ResponseWriter, r *http.Request) {
	s.shardPhase(w, r, true, func(sess *mcheck.ShardSession, req *shardCallRequest) (any, error) {
		return sess.Expand()
	})
}

func (s *Server) handleShardAbsorb(w http.ResponseWriter, r *http.Request) {
	s.shardPhase(w, r, true, func(sess *mcheck.ShardSession, req *shardCallRequest) (any, error) {
		return sess.Absorb(req.Seq, req.Cands)
	})
}

func (s *Server) handleShardTrace(w http.ResponseWriter, r *http.Request) {
	s.shardPhase(w, r, false, func(sess *mcheck.ShardSession, req *shardCallRequest) (any, error) {
		return sess.TraceHop(req.ID)
	})
}

func (s *Server) handleShardClose(w http.ResponseWriter, r *http.Request) {
	var req shardCallRequest
	if err := decodeBodyLimit(r, &req, 1<<20); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	if ss := s.shards.get(req.Session); ss != nil {
		ss.mu.Lock()
		ss.sess.DiscardCheckpoint()
		ss.mu.Unlock()
	}
	s.shards.drop(req.Session)
	s.writeJSON(w, http.StatusOK, map[string]any{"closed": true}, false)
}

// sanitizeSession flattens a coordinator session id ("check-3/1") into
// a single directory name: anything outside [A-Za-z0-9_-] becomes '_',
// so an id can never traverse out of the checkpoint root.
func sanitizeSession(id string) string {
	b := []byte(id)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
