package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errQueueFull is the admission queue's backpressure signal, mapped to
// 429 + Retry-After at the HTTP layer.
var errQueueFull = errors.New("serve: admission queue full")

// gate is the bounded admission queue in front of the worker pool: at
// most `slots` requests execute concurrently, at most `queue` more
// wait for a slot, and everything beyond that is rejected immediately
// — the bus-arbitration lesson applied to the daemon: a shared
// resource under contention must bound its queue and shed load at the
// edge, or every request's latency degrades together.
type gate struct {
	slots   chan struct{}
	queue   int64
	waiting atomic.Int64
}

// newGate sizes the gate: slots executing, queue waiting.
func newGate(slots, queue int) *gate {
	g := &gate{slots: make(chan struct{}, slots), queue: int64(queue)}
	return g
}

// acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns errQueueFull when the queue is at
// capacity and ctx.Err() when the caller's deadline expires while
// waiting. On success the returned release function must be called
// exactly once.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	default:
	}
	if g.waiting.Add(1) > g.queue {
		g.waiting.Add(-1)
		return nil, errQueueFull
	}
	defer g.waiting.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return func() { <-g.slots }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Waiting reports the current queue occupancy.
func (g *gate) Waiting() int64 { return g.waiting.Load() }

// InUse reports the busy execution slots.
func (g *gate) InUse() int { return len(g.slots) }
