package serve

import (
	"fmt"
	"sync"
	"time"
)

// JobEvent is one NDJSON line of a job's progress stream.
type JobEvent struct {
	Seq int `json:"seq"`
	// T is the event type: queued, coalesced, started, progress,
	// buslog, done, error.
	T string `json:"t"`
	// Msg is the human-readable payload (a bus-transaction line for
	// buslog, a level summary for progress, the error text for error).
	Msg string `json:"msg,omitempty"`
	// MS is milliseconds since the job was created.
	MS int64 `json:"ms"`
}

// jobRec is one request's progress record. Watchers stream its events
// as NDJSON from GET /v1/jobs/{id}; the record keeps every event, so a
// watcher attaching after completion replays the whole history.
type jobRec struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`

	born time.Time

	mu      sync.Mutex
	events  []JobEvent
	done    bool
	changed chan struct{} // closed and replaced on every append
}

// emit appends one event and wakes the watchers.
func (j *jobRec) emit(t, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return
	}
	j.events = append(j.events, JobEvent{
		Seq: len(j.events), T: t, Msg: msg,
		MS: time.Since(j.born).Milliseconds(),
	})
	close(j.changed)
	j.changed = make(chan struct{})
}

// emitf is emit with formatting.
func (j *jobRec) emitf(t, format string, args ...any) {
	j.emit(t, fmt.Sprintf(format, args...))
}

// finish appends the terminal event and marks the record done.
func (j *jobRec) finish(t, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return
	}
	j.events = append(j.events, JobEvent{
		Seq: len(j.events), T: t, Msg: msg,
		MS: time.Since(j.born).Milliseconds(),
	})
	j.done = true
	close(j.changed)
	j.changed = make(chan struct{})
}

// snapshot returns the events from seq `from` on, whether the job is
// finished, and a channel that closes on the next change — the
// poll-free watcher loop's three ingredients.
func (j *jobRec) snapshot(from int) ([]JobEvent, bool, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []JobEvent
	if from < len(j.events) {
		evs = j.events[from:]
	}
	return evs, j.done, j.changed
}

// jobStore holds recent job records, evicting the oldest finished
// records beyond cap.
type jobStore struct {
	mu    sync.Mutex
	seq   int64
	byID  map[string]*jobRec
	order []string // creation order, for eviction
	cap   int
}

func newJobStore(capacity int) *jobStore {
	return &jobStore{byID: make(map[string]*jobRec), cap: capacity}
}

// create registers a new record.
func (s *jobStore) create(kind string) *jobRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &jobRec{
		ID:      fmt.Sprintf("j%06d", s.seq),
		Kind:    kind,
		born:    time.Now(),
		changed: make(chan struct{}),
	}
	s.byID[j.ID] = j
	s.order = append(s.order, j.ID)
	// Evict oldest finished records beyond capacity; live records are
	// never evicted (a watcher may still be attached).
	for len(s.order) > s.cap {
		evicted := false
		for i, id := range s.order {
			old := s.byID[id]
			old.mu.Lock()
			done := old.done
			old.mu.Unlock()
			if done {
				delete(s.byID, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live: let the store exceed cap briefly
		}
	}
	return j
}

// get looks a record up.
func (s *jobStore) get(id string) *jobRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// count reports stored records.
func (s *jobStore) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}
