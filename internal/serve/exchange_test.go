package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cachesync/internal/portfile"
	"cachesync/internal/runner"
	"cachesync/internal/simrun"
)

// openCache opens a result cache rooted in its own temp dir.
func openCache(t *testing.T, dir string) *runner.Cache {
	t.Helper()
	c, err := runner.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func getHeader(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

// TestXCacheHeader pins the X-Cache contract: first execution is a
// miss, a repeat with a result cache is a hit, and concurrent
// identical requests mark exactly the followers as coalesced.
func TestXCacheHeader(t *testing.T) {
	cache := openCache(t, filepath.Join(t.TempDir(), "cache"))
	_, ts := newTestServer(t, Config{Workers: 2, Cache: cache})

	cfg := simrun.Config{Protocol: "bitar", Ops: 150, Seed: 77}
	code, hdr, _ := postJSON(t, ts.URL+"/v1/simulate", cfg)
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first request: code=%d X-Cache=%q, want 200/miss", code, hdr.Get("X-Cache"))
	}
	code, hdr, _ = postJSON(t, ts.URL+"/v1/simulate", cfg)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("repeat request: code=%d X-Cache=%q, want 200/hit", code, hdr.Get("X-Cache"))
	}
}

// TestXCacheCoalesced: among concurrent identical uncached requests,
// followers carry X-Cache: coalesced.
func TestXCacheCoalesced(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cfg := simrun.Config{Protocol: "illinois", Ops: 400, Seed: 31}
	const n = 6
	var wg sync.WaitGroup
	headers := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, hdr, _ := postJSON(t, ts.URL+"/v1/simulate", cfg)
			if code == http.StatusOK {
				headers[i] = hdr.Get("X-Cache")
			}
		}(i)
	}
	wg.Wait()
	var miss, coal int
	for _, h := range headers {
		switch h {
		case "miss":
			miss++
		case "coalesced":
			coal++
		}
	}
	// Scheduling may let some requests arrive after the leader
	// finished (they re-execute as misses); what must never happen is
	// zero coalescing with zero extra misses, or an unlabeled success.
	if miss+coal != n {
		t.Fatalf("X-Cache headers = %q: %d miss + %d coalesced != %d requests", headers, miss, coal, n)
	}
	if miss < 1 {
		t.Fatalf("no leader marked miss among %q", headers)
	}
}

// TestArtifactEndpoint: raw entries are served by key, bad keys are
// rejected, unknown keys 404, and a cacheless daemon has no artifacts.
func TestArtifactEndpoint(t *testing.T) {
	cache := openCache(t, filepath.Join(t.TempDir(), "cache"))
	_, ts := newTestServer(t, Config{Workers: 1, Cache: cache})

	cfg := simrun.Config{Protocol: "bitar", Ops: 120, Seed: 5}.Normalize()
	if code, _, body := postJSON(t, ts.URL+"/v1/simulate", cfg); code != http.StatusOK {
		t.Fatalf("simulate: %d %s", code, body)
	}
	key := cache.KeyFor("simulate", "simulate|"+cfg.Hash())
	code, hdr, body := getHeader(t, ts.URL+"/v1/artifact/"+key)
	if code != http.StatusOK {
		t.Fatalf("artifact by key: %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("artifact content type %q", ct)
	}
	var entry struct {
		Name       string `json:"name"`
		ConfigHash string `json:"config_hash"`
	}
	if err := json.Unmarshal(body, &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Name != "simulate" {
		t.Fatalf("entry name %q", entry.Name)
	}

	if code, _, _ := getHeader(t, ts.URL+"/v1/artifact/zz"); code != http.StatusBadRequest {
		t.Fatalf("short key: %d, want 400", code)
	}
	unknown := strings.Repeat("a", 64)
	if code, _, _ := getHeader(t, ts.URL+"/v1/artifact/"+unknown); code != http.StatusNotFound {
		t.Fatalf("unknown key: %d, want 404", code)
	}

	_, noCache := newTestServer(t, Config{Workers: 1})
	if code, _, _ := getHeader(t, noCache.URL+"/v1/artifact/"+unknown); code != http.StatusNotFound {
		t.Fatalf("cacheless daemon: %d, want 404", code)
	}
}

// TestPeerArtifactExchange is the fleet cache story end to end: two
// daemons with separate cache directories discover each other through
// a shared portfile directory; after A computes a configuration, B's
// first request for it is a fleet-wide hit served from A's cache —
// X-Cache: hit, peer-hit counter incremented, entry landed in B's own
// cache for subsequent local hits.
func TestPeerArtifactExchange(t *testing.T) {
	peerDir := t.TempDir()

	cacheA := openCache(t, filepath.Join(t.TempDir(), "cache-a"))
	peersA := NewPeerSource(peerDir)
	_, tsA := newTestServer(t, Config{Workers: 1, Cache: cacheA, Peers: peersA})
	addrA := strings.TrimPrefix(tsA.URL, "http://")
	peersA.SetSelf(addrA)
	if err := portfile.Write(filepath.Join(peerDir, "a.port"), addrA); err != nil {
		t.Fatal(err)
	}

	cacheB := openCache(t, filepath.Join(t.TempDir(), "cache-b"))
	peersB := NewPeerSource(peerDir)
	sB, tsB := newTestServer(t, Config{Workers: 1, Cache: cacheB, Peers: peersB})
	addrB := strings.TrimPrefix(tsB.URL, "http://")
	peersB.SetSelf(addrB)
	if err := portfile.Write(filepath.Join(peerDir, "b.port"), addrB); err != nil {
		t.Fatal(err)
	}

	cfg := simrun.Config{Protocol: "goodman", Ops: 130, Seed: 9}
	code, hdr, bodyA := postJSON(t, tsA.URL+"/v1/simulate", cfg)
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("A first: code=%d X-Cache=%q", code, hdr.Get("X-Cache"))
	}

	code, hdr, bodyB := postJSON(t, tsB.URL+"/v1/simulate", cfg)
	if code != http.StatusOK {
		t.Fatalf("B: code=%d %s", code, bodyB)
	}
	if got := hdr.Get("X-Cache"); got != "hit" {
		t.Fatalf("B X-Cache = %q, want hit (served from A's cache)", got)
	}
	if n := sB.met.peerHits.Load(); n != 1 {
		t.Fatalf("B peer hits = %d, want 1", n)
	}
	var ra, rb SimulateResponse
	if err := json.Unmarshal(bodyA, &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyB, &rb); err != nil {
		t.Fatal(err)
	}
	if ra.Output != rb.Output || ra.Cycles != rb.Cycles {
		t.Fatal("peer-served result differs from the origin's")
	}

	// Entry landed locally: a repeat on B needs no peer traffic.
	code, hdr, _ = postJSON(t, tsB.URL+"/v1/simulate", cfg)
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("B repeat: code=%d X-Cache=%q", code, hdr.Get("X-Cache"))
	}
	if n := sB.met.peerHits.Load(); n != 1 {
		t.Fatalf("B peer hits grew to %d on a local hit", n)
	}
}

// TestPerRouteMetrics: /metrics exposes per-route request counts and
// latency sums.
func TestPerRouteMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code, _, _ := postJSON(t, ts.URL+"/v1/simulate", simrun.Config{Protocol: "bitar", Ops: 100}); code != http.StatusOK {
		t.Fatal("simulate failed")
	}
	_, _, body := getHeader(t, ts.URL+"/metrics")
	text := string(body)
	for _, want := range []string{
		`cachesyncd_requests_total{route="POST /v1/simulate"} 1`,
		`cachesyncd_route_seconds_count{route="POST /v1/simulate"} 1`,
		`cachesyncd_route_seconds_sum{route="POST /v1/simulate"}`,
		"cachesyncd_cache_misses_total 1",
		"cachesyncd_peer_hits_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestSweepCells: explicit cells execute exactly those coordinates in
// order, and mixing cells with the cross-product lists is rejected.
func TestSweepCells(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := SweepRequest{
		Cells: []SweepCell{{Protocol: "bitar", Procs: 2}, {Protocol: "illinois", Procs: 1}},
		Ops:   100, Seed: 3,
	}
	code, _, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("cells sweep: %d %s", code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 2 ||
		resp.Points[0].Protocol != "bitar" || resp.Points[0].Procs != 2 ||
		resp.Points[1].Protocol != "illinois" || resp.Points[1].Procs != 1 {
		t.Fatalf("cells sweep points: %+v", resp.Points)
	}

	bad := SweepRequest{
		Cells:     []SweepCell{{Protocol: "bitar", Procs: 2}},
		Protocols: []string{"illinois"},
	}
	if code, _, _ := postJSON(t, ts.URL+"/v1/sweep", bad); code != http.StatusBadRequest {
		t.Fatalf("cells+protocols: %d, want 400", code)
	}

	// A cells sweep and the equivalent cross-product sweep agree cell
	// for cell.
	prod := SweepRequest{Protocols: []string{"bitar"}, Procs: []int{2}, Ops: 100, Seed: 3}
	_, _, pbody := postJSON(t, ts.URL+"/v1/sweep", prod)
	var presp SweepResponse
	if err := json.Unmarshal(pbody, &presp); err != nil {
		t.Fatal(err)
	}
	if len(presp.Points) != 1 || presp.Points[0].Cycles != resp.Points[0].Cycles {
		t.Fatalf("cells vs product cycles: %+v vs %+v", resp.Points[0], presp.Points)
	}
}
