package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"cachesync/internal/simrun"
)

// TestSimulateTwoTier: /v1/simulate accepts tiers/remote and reports
// the broadcast fraction of the routed Aquarius machine.
func TestSimulateTwoTier(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, _, body := postJSON(t, ts.URL+"/v1/simulate",
		simrun.Config{Protocol: "bitar", Tiers: 2, Workload: "lockdata", Iters: 10})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp SimulateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Pass {
		t.Fatalf("two-tier simulate failed:\n%s", resp.Output)
	}
	if !strings.Contains(resp.Output, "broadcast fraction:") {
		t.Errorf("output missing broadcast fraction:\n%s", resp.Output)
	}

	// Remote latency without the two-tier machine is a 400.
	code, _, body = postJSON(t, ts.URL+"/v1/simulate",
		simrun.Config{Protocol: "bitar", RemoteCycles: 64})
	if code != http.StatusBadRequest {
		t.Fatalf("remote without tiers=2: status %d (%s), want 400", code, body)
	}
}

// TestSweepRemoteAxis: the remotes axis expands as an inner loop and
// each point carries its remote latency back.
func TestSweepRemoteAxis(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	code, _, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Protocols: []string{"bitar"}, Procs: []int{2}, Workload: "lockdata",
		Iters: 6, Tiers: 2, Remotes: []int{0, 64},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(resp.Points))
	}
	if !resp.Pass {
		t.Fatalf("sweep failed: %+v", resp.Points)
	}
	if resp.Points[0].Remote != 0 || resp.Points[1].Remote != 64 {
		t.Fatalf("remote axis lost: %+v", resp.Points)
	}
	if resp.Points[1].Cycles <= resp.Points[0].Cycles {
		t.Errorf("remote tier at 64 cycles (%d total) not slower than local (%d)",
			resp.Points[1].Cycles, resp.Points[0].Cycles)
	}
}
