// Package serve is the cachesyncd daemon core: an HTTP/JSON service
// exposing the repository's engines — the protocol simulator
// (internal/simrun), the bounded model checker (internal/mcheck), and
// protocol×procs sweeps — as long-running endpoints on a shared worker
// pool with bounded admission, per-request deadlines, single-flight
// deduplication of identical in-flight requests, an on-disk result
// cache, NDJSON progress streaming, and graceful drain.
//
// The serving discipline is the paper's bus-arbitration story applied
// to a network service: the worker pool is the shared bus, the
// admission gate is the bounded arbiter queue, and requests beyond its
// capacity are rejected at the edge (429 + Retry-After) instead of
// being allowed to queue without bound and degrade everyone's latency.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cachesync"
	"cachesync/internal/flight"
	"cachesync/internal/mcheck"
	"cachesync/internal/protocol"
	"cachesync/internal/runner"
	"cachesync/internal/simrun"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the execution width: how many simulations/checks run
	// concurrently (< 1 means GOMAXPROCS). The admission gate's slot
	// count and the worker pool's size are both set from it.
	Workers int
	// SweepWorkers is the in-process parallelism of one sweep request:
	// how many of a sweep's cells run concurrently inside the sweep's
	// single admission slot (simrun.RunCells). < 1 means Workers —
	// sweeps use the daemon's execution width by default. Results
	// merge in submission order, so the response and the streamed
	// progress events are byte-identical at any setting.
	SweepWorkers int
	// Queue bounds how many admitted requests may wait for a slot;
	// arrivals beyond slots+queue are rejected with 429 (< 0 means the
	// default of 64; 0 means reject whenever every slot is busy).
	Queue int
	// DefaultTimeout is the per-request execution deadline when the
	// caller sets none (?timeout=); zero means 60s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps caller-requested deadlines; zero means 5m.
	MaxTimeout time.Duration
	// RetryAfter is the hint attached to 429/503 responses; zero means 1s.
	RetryAfter time.Duration
	// Cache, when non-nil, is the on-disk result cache shared with the
	// worker pool: identical requests are answered from disk across
	// process restarts, and concurrent identical requests collapse onto
	// one execution.
	Cache *runner.Cache
	// MaxJobs bounds the in-memory job-record store for NDJSON
	// streaming; zero means 512.
	MaxJobs int
	// Peers, when non-nil (and Cache is non-nil), is the fleet artifact
	// exchange: on a local result-cache miss the daemon asks its peer
	// replicas for the entry via GET /v1/artifact/{key} before
	// computing, so a warm entry anywhere in the fleet is a hit
	// everywhere.
	Peers *PeerSource
	// Pprof mounts the net/http/pprof diagnostic endpoints under
	// /debug/pprof/. They are an operator tool, off by default: enable
	// only on loopback or an admin-restricted listener. Profiling
	// requests bypass the instrumented route table, so they are not
	// admission-counted, do not appear in /metrics, and keep working
	// while the daemon drains — exactly what debugging an overloaded
	// or draining daemon needs.
	Pprof bool
	// ShardCheckpointRoot, when set, makes hosted shard sessions
	// checkpoint themselves under <root>/<session>/ after every
	// mutating phase, and lets an open with "resume" restore a
	// session another replica lost. Point every replica in a fleet at
	// the same (shared) root to make distributed checks survive
	// replica death.
	ShardCheckpointRoot string
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.SweepWorkers < 1 {
		c.SweepWorkers = c.Workers
	}
	if c.Queue < 0 {
		c.Queue = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 512
	}
	return c
}

// execOut is what one deduplicated execution yields: the pool's result
// plus the leading request's job ID, so coalesced followers can point
// their watchers at the stream that actually ran.
type execOut struct {
	jr    runner.JobResult
	jobID string
}

// Server is the daemon. Create with New, mount Handler, and Close when
// done.
type Server struct {
	cfg    Config
	pool   *runner.Pool
	gate   *gate
	jobs   *jobStore
	met    *metrics
	shards *shardStore
	fl     flight.Group[execOut]

	draining atomic.Bool
	inflight sync.WaitGroup
	closeMu  sync.Mutex
	closed   bool
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		pool:   runner.NewPool(cfg.Workers, cfg.Cache),
		gate:   newGate(cfg.Workers, cfg.Queue),
		jobs:   newJobStore(cfg.MaxJobs),
		met:    newMetrics(),
		shards: newShardStore(),
	}
	if cfg.Cache != nil && cfg.Peers != nil {
		// Count fleet hits here so /metrics reports them; the cache
		// itself validates and stores whatever the peers return.
		cfg.Cache.SetFetcher(func(key string) ([]byte, bool) {
			data, ok := cfg.Peers.Fetch(key)
			if ok {
				s.met.peerHits.Add(1)
			}
			return data, ok
		})
	}
	return s
}

// StartDrain flips the server into draining mode: /healthz reports 503
// so load balancers stop routing here, and new work requests are
// rejected with 503 + Retry-After while in-flight requests run to
// completion.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains: it stops admitting work, waits for every in-flight
// request (including ?async=1 executions), then stops the worker pool.
// Safe to call more than once.
func (s *Server) Close() {
	s.StartDrain()
	s.inflight.Wait()
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if !s.closed {
		s.closed = true
		s.pool.Close()
	}
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/shard/open", s.handleShardOpen)
	mux.HandleFunc("POST /v1/shard/expand", s.handleShardExpand)
	mux.HandleFunc("POST /v1/shard/absorb", s.handleShardAbsorb)
	mux.HandleFunc("POST /v1/shard/trace", s.handleShardTrace)
	mux.HandleFunc("POST /v1/shard/close", s.handleShardClose)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/artifact/{key}", s.handleArtifact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	h := s.instrument(mux)
	if !s.cfg.Pprof {
		return h
	}
	// The pprof mount wraps the instrumented handler from outside:
	// see Config.Pprof for why profiling skips instrumentation.
	outer := http.NewServeMux()
	outer.HandleFunc("/debug/pprof/", pprof.Index)
	outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
	outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
	outer.Handle("/", h)
	return outer
}

// route maps a request to its metrics label.
func route(r *http.Request) string {
	p := r.URL.Path
	if strings.HasPrefix(p, "/v1/jobs/") {
		p = "/v1/jobs/{id}"
	}
	if strings.HasPrefix(p, "/v1/artifact/") {
		p = "/v1/artifact/{key}"
	}
	return r.Method + " " + p
}

// statusWriter records the response code for metrics and forwards
// Flush for NDJSON streaming.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the mux with metrics, in-flight tracking, and the
// drain gate.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := route(r)
		s.met.request(rt)
		if s.draining.Load() && r.URL.Path != "/healthz" && r.URL.Path != "/metrics" {
			s.met.status(http.StatusServiceUnavailable)
			s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error": "draining", "retry_after_ms": s.cfg.RetryAfter.Milliseconds(),
			}, true)
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.met.status(sw.code)
		s.met.observe(rt, time.Since(t0))
	})
}

// timeoutFor resolves the request's execution deadline from ?timeout=,
// defaulted and clamped by the server config.
func (s *Server) timeoutFor(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad timeout %q: %w", raw, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("timeout %q must be positive", raw)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// writeJSON renders one response. retry attaches the Retry-After hint.
func (s *Server) writeJSON(w http.ResponseWriter, code int, body any, retry bool) {
	w.Header().Set("Content-Type", "application/json")
	if retry {
		secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// writeError maps an execution error onto its status code.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		s.met.rejected.Add(1)
		s.writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": "admission queue full", "retry_after_ms": s.cfg.RetryAfter.Milliseconds(),
		}, true)
	case errors.Is(err, context.DeadlineExceeded):
		s.met.timeouts.Add(1)
		s.writeJSON(w, http.StatusGatewayTimeout, map[string]any{"error": err.Error()}, false)
	case errors.Is(err, context.Canceled):
		// The client went away; 499 follows the nginx convention. The
		// response is written for the logs — nobody is reading it.
		s.writeJSON(w, 499, map[string]any{"error": "client closed request"}, false)
	case errors.Is(err, runner.ErrPoolClosed):
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "shutting down"}, true)
	default:
		s.writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()}, false)
	}
}

// decodeBody parses one JSON request body strictly.
func decodeBody(r *http.Request, into any) error {
	return decodeBodyLimit(r, into, 1<<20)
}

// decodeBodyLimit is decodeBody with a caller-chosen size cap — the
// shard endpoints move frontier-sized candidate lists.
func decodeBodyLimit(r *http.Request, into any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// execute runs one deduplicated, admission-controlled request: the
// single-flight group collapses concurrent identical requests so only
// the leader passes the admission gate and occupies a pool worker;
// followers wait on the leader's result without consuming capacity.
// run receives the execution context and the job record to stream
// progress into.
func (s *Server) execute(ctx context.Context, jb *jobRec, kind, key string,
	run func(ctx context.Context, jb *jobRec) (runner.Artifact, error)) (runner.Artifact, execMeta, error) {

	jb.emit("queued", kind)
	out, coalesced, err := s.fl.DoCtx(ctx, key, func() (execOut, error) {
		release, err := s.gate.acquire(ctx)
		if err != nil {
			jb.finish("error", err.Error())
			return execOut{}, err
		}
		defer release()
		jb.emit("started", "")
		jr, err := s.pool.Submit(ctx, runner.Job{
			Name:       kind,
			ConfigHash: key,
			Run: func() (runner.Artifact, error) {
				return run(ctx, jb)
			},
		})
		if err != nil {
			jb.finish("error", err.Error())
			return execOut{}, err
		}
		if jr.Cached {
			jb.emit("progress", "served from result cache")
		}
		jb.finish("done", fmt.Sprintf("pass=%v cached=%v", jr.Artifact.Pass, jr.Cached))
		return execOut{jr: jr, jobID: jb.ID}, nil
	})
	if err != nil {
		// A follower's record never saw the leader's events; close it out.
		jb.finish("error", err.Error())
		return runner.Artifact{}, execMeta{}, err
	}
	meta := execMeta{jobID: out.jobID, cached: out.jr.Cached, coalesced: coalesced || out.jr.Shared}
	if coalesced {
		s.met.coalesced.Add(1)
		jb.finish("coalesced", "result shared with job "+out.jobID)
	}
	if out.jr.Cached {
		s.met.cacheHits.Add(1)
	} else if !meta.coalesced {
		s.met.cacheMisses.Add(1)
	}
	return out.jr.Artifact, meta, nil
}

// xcache is the X-Cache response-header value for an execution: "hit"
// (served from the result cache — local disk or a fleet peer),
// "coalesced" (shared another in-flight request's execution), or
// "miss" (executed fresh). The cluster router and BENCH_cluster read
// this header to measure fleet hit ratio without parsing bodies.
func (m execMeta) xcache() string {
	switch {
	case m.cached:
		return "hit"
	case m.coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

type execMeta struct {
	jobID     string
	cached    bool
	coalesced bool
}

// respond is the shared synchronous/asynchronous tail of the three
// work endpoints: ?async=1 detaches the execution from the connection
// (202 + job id for streaming), otherwise the handler waits and
// renders.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, kind, key string,
	run func(ctx context.Context, jb *jobRec) (runner.Artifact, error),
	render func(art runner.Artifact, meta execMeta) any) {

	d, err := s.timeoutFor(r)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	jb := s.jobs.create(kind)
	if r.URL.Query().Get("async") == "1" {
		ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), d)
		s.inflight.Add(1)
		go func() {
			defer s.inflight.Done()
			defer cancel()
			_, _, _ = s.execute(ctx, jb, kind, key, run)
		}()
		s.writeJSON(w, http.StatusAccepted, map[string]any{"job": jb.ID, "status": "accepted"}, false)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	art, meta, err := s.execute(ctx, jb, kind, key, run)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("X-Cache", meta.xcache())
	s.writeJSON(w, http.StatusOK, render(art, meta), false)
}

// --- /v1/simulate ---

// simPayload is the cached artifact body for a simulation: the
// rendered report (byte-identical to cmd/cachesim's output for the
// same configuration) plus the finishing cycle count.
type simPayload struct {
	Output string `json:"output"`
	Cycles int64  `json:"cycles"`
}

// SimulateResponse is the /v1/simulate response body.
type SimulateResponse struct {
	Job       string `json:"job"`
	Pass      bool   `json:"pass"`
	Cycles    int64  `json:"cycles"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	// Output is byte-identical to cmd/cachesim's stdout for the same
	// configuration (asserted by TestSimulateMatchesCLI).
	Output string `json:"output"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var cfg simrun.Config
	if err := decodeBody(r, &cfg); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	cfg = cfg.Normalize()
	if cfg.TraceFile != "" || cfg.Workload == "trace" {
		// Network callers must not name server-side files.
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": "trace workloads are CLI-only"}, false)
		return
	}
	if cfg.LogN > 10_000 {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": "log must be <= 10000"}, false)
		return
	}
	if err := cfg.Validate(); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	key := "simulate|" + cfg.Hash()
	run := func(ctx context.Context, jb *jobRec) (runner.Artifact, error) {
		var hooks simrun.Hooks
		if cfg.LogN > 0 {
			hooks.BusTxn = func(line string) { jb.emit("buslog", line) }
		}
		res, err := simrun.RunWithHooks(ctx, cfg, hooks)
		if err != nil {
			return runner.Artifact{}, err
		}
		body, err := json.Marshal(simPayload{Output: res.Output, Cycles: res.Cycles})
		if err != nil {
			return runner.Artifact{}, err
		}
		return runner.Artifact{Output: string(body), Pass: res.Pass}, nil
	}
	s.respond(w, r, "simulate", key, run, func(art runner.Artifact, meta execMeta) any {
		var p simPayload
		_ = json.Unmarshal([]byte(art.Output), &p)
		return SimulateResponse{
			Job: meta.jobID, Pass: art.Pass, Cycles: p.Cycles,
			Cached: meta.cached, Coalesced: meta.coalesced, Output: p.Output,
		}
	})
}

// --- /v1/check ---

// CheckRequest is the /v1/check request body: a bounded model-check
// configuration. The BFS worker count is a server-side concern — the
// exploration is deterministic for any worker count, so it is not part
// of the request or the cache key.
type CheckRequest struct {
	Protocol  string `json:"protocol"`
	Inject    string `json:"inject,omitempty"`
	Procs     int    `json:"procs,omitempty"`
	Blocks    int    `json:"blocks,omitempty"`
	Words     int    `json:"words,omitempty"`
	Depth     int    `json:"depth,omitempty"`
	Symmetry  bool   `json:"symmetry,omitempty"`
	POR       bool   `json:"por,omitempty"`
	MaxStates int    `json:"maxstates,omitempty"`
}

// Normalize fills defaulted fields, mirroring the server's handling
// of a sparse request body (exported for the cluster router, which
// must compute the same routing key the replica will cache under).
func (cr CheckRequest) Normalize() CheckRequest {
	if cr.Procs == 0 {
		cr.Procs = 2
	}
	if cr.Blocks == 0 {
		cr.Blocks = 1
	}
	if cr.Words == 0 {
		cr.Words = 1
	}
	if cr.Depth == 0 {
		cr.Depth = 6
	}
	if cr.MaxStates == 0 {
		cr.MaxStates = 1 << 21
	}
	return cr
}

func (cr CheckRequest) validate() error {
	if _, err := protocol.New(cr.Protocol); err != nil {
		return err
	}
	if cr.Inject != "" {
		if _, err := mcheck.Mutate(protocol.MustNew(cr.Protocol), cr.Inject); err != nil {
			return err
		}
	}
	if cr.Procs < 2 || cr.Procs > 5 {
		return fmt.Errorf("procs %d out of range [2,5]", cr.Procs)
	}
	if cr.Blocks < 1 || cr.Blocks > 2 {
		return fmt.Errorf("blocks %d out of range [1,2]", cr.Blocks)
	}
	if cr.Words < 1 || cr.Words > 4 {
		return fmt.Errorf("words %d out of range [1,4]", cr.Words)
	}
	if cr.Depth < 1 || cr.Depth > 12 {
		return fmt.Errorf("depth %d out of range [1,12]", cr.Depth)
	}
	if cr.MaxStates < 0 || cr.MaxStates > 1<<22 {
		return fmt.Errorf("maxstates %d out of range", cr.MaxStates)
	}
	return nil
}

// Options resolves a normalized request into the model checker's
// options: validation, protocol construction, and mutant injection in
// one place. The replica uses it for /v1/check and /v1/shard/open;
// the cluster coordinator uses it to drive a distributed check with
// exactly the configuration a single replica would run.
func (cr CheckRequest) Options() (mcheck.Options, error) {
	if err := cr.validate(); err != nil {
		return mcheck.Options{}, err
	}
	p := protocol.MustNew(cr.Protocol)
	if cr.Inject != "" {
		var err error
		if p, err = mcheck.Mutate(p, cr.Inject); err != nil {
			return mcheck.Options{}, err
		}
	}
	return mcheck.Options{
		Protocol: p, Procs: cr.Procs, Blocks: cr.Blocks, Words: cr.Words,
		Depth: cr.Depth, Symmetry: cr.Symmetry, POR: cr.POR, MaxStates: cr.MaxStates,
	}, nil
}

// Hash is the request's cache/single-flight/routing key. Hash a
// normalized request so equivalent bodies collide.
func (cr CheckRequest) Hash() string {
	return fmt.Sprintf("check|%s inject=%s p=%d b=%d w=%d d=%d sym=%v por=%v max=%d",
		cr.Protocol, cr.Inject, cr.Procs, cr.Blocks, cr.Words, cr.Depth, cr.Symmetry, cr.POR, cr.MaxStates)
}

// CheckResponse is the /v1/check response body; Result is the
// mcheck.Result JSON, counterexample included when one was found.
type CheckResponse struct {
	Job       string          `json:"job"`
	Pass      bool            `json:"pass"`
	Cached    bool            `json:"cached,omitempty"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Result    json.RawMessage `json:"result"`
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var cr CheckRequest
	if err := decodeBody(r, &cr); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	cr = cr.Normalize()
	if err := cr.validate(); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	run := func(ctx context.Context, jb *jobRec) (runner.Artifact, error) {
		opts, err := cr.Options()
		if err != nil {
			return runner.Artifact{}, err
		}
		opts.Workers = s.cfg.Workers
		opts.Context = ctx
		opts.Progress = func(p mcheck.ProgressInfo) {
			jb.emitf("progress", "depth %d: %d states, %d transitions", p.Depth, p.States, p.Transitions)
		}
		res, err := mcheck.Run(opts)
		if err != nil {
			return runner.Artifact{}, err
		}
		body, err := json.Marshal(res)
		if err != nil {
			return runner.Artifact{}, err
		}
		return runner.Artifact{Output: string(body), Pass: res.Counterexample == nil}, nil
	}
	s.respond(w, r, "check", cr.Hash(), run, func(art runner.Artifact, meta execMeta) any {
		return CheckResponse{
			Job: meta.jobID, Pass: art.Pass,
			Cached: meta.cached, Coalesced: meta.coalesced,
			Result: json.RawMessage(art.Output),
		}
	})
}

// --- /v1/sweep ---

// SweepRequest fans one workload out over protocols × processor
// counts. Empty lists mean every registered protocol / {1,2,4,8}.
// Cells, when set, names the exact (protocol, procs) pairs instead of
// the cross product — the form the cluster router uses to hand each
// replica its shard of a sweep, which is rarely a full product.
type SweepRequest struct {
	Protocols []string    `json:"protocols,omitempty"`
	Procs     []int       `json:"procs,omitempty"`
	Cells     []SweepCell `json:"cells,omitempty"`
	Workload  string      `json:"workload,omitempty"`
	Ops       int         `json:"ops,omitempty"`
	Iters     int         `json:"iters,omitempty"`
	Seed      int64       `json:"seed,omitempty"`
	// Tiers selects the machine for every cell (2 = routed two-tier
	// Aquarius); Remotes adds an inner sweep axis of lower-tier
	// latencies (requires Tiers 2; empty means {0}).
	Tiers   int   `json:"tiers,omitempty"`
	Remotes []int `json:"remotes,omitempty"`
}

// SweepCell is one explicit sweep coordinate.
type SweepCell struct {
	Protocol string `json:"protocol"`
	Procs    int    `json:"procs"`
	Remote   int    `json:"remote,omitempty"`
}

// Expand resolves the request into its normalized, validated cell
// configurations in deterministic order (protocols outer, procs
// inner; or Cells verbatim). The router and the replica both call
// this, so a sharded sweep executes exactly the cells — in exactly
// the per-shard order — that a single-replica sweep would.
func (sr SweepRequest) Expand() ([]simrun.Config, error) {
	var cells []SweepCell
	if len(sr.Cells) > 0 {
		if len(sr.Protocols) > 0 || len(sr.Procs) > 0 {
			return nil, fmt.Errorf("cells and protocols/procs are mutually exclusive")
		}
		cells = sr.Cells
	} else {
		protos := sr.Protocols
		if len(protos) == 0 {
			protos = cachesync.Protocols()
		}
		procs := sr.Procs
		if len(procs) == 0 {
			procs = []int{1, 2, 4, 8}
		}
		remotes := sr.Remotes
		if len(remotes) == 0 {
			remotes = []int{0}
		}
		for _, p := range protos {
			for _, n := range procs {
				for _, r := range remotes {
					cells = append(cells, SweepCell{Protocol: p, Procs: n, Remote: r})
				}
			}
		}
	}
	if len(cells) > 256 {
		return nil, fmt.Errorf("sweep exceeds 256 points")
	}
	// Validate every point up front so a bad cell fails fast as a 400,
	// not mid-sweep as a 500.
	cfgs := make([]simrun.Config, 0, len(cells))
	for _, c := range cells {
		cfg := simrun.Config{
			Protocol: c.Protocol, Procs: c.Procs,
			Workload: sr.Workload, Ops: sr.Ops, Iters: sr.Iters, Seed: sr.Seed,
			Tiers: sr.Tiers, RemoteCycles: c.Remote,
		}.Normalize()
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}

// SweepPoint is one sweep cell's summary.
type SweepPoint struct {
	Protocol string `json:"protocol"`
	Procs    int    `json:"procs"`
	Remote   int    `json:"remote,omitempty"`
	Pass     bool   `json:"pass"`
	Cycles   int64  `json:"cycles"`
}

// SweepResponse is the /v1/sweep response body.
type SweepResponse struct {
	Job       string       `json:"job"`
	Pass      bool         `json:"pass"`
	Cached    bool         `json:"cached,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
	Points    []SweepPoint `json:"points"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var sr SweepRequest
	if err := decodeBody(r, &sr); err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	cfgs, err := sr.Expand()
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()}, false)
		return
	}
	var keyb strings.Builder
	keyb.WriteString("sweep")
	for _, cfg := range cfgs {
		keyb.WriteString("|")
		keyb.WriteString(cfg.Hash())
	}
	run := func(ctx context.Context, jb *jobRec) (runner.Artifact, error) {
		// The whole sweep occupies one admission slot (fairness across
		// requests), but its cells fan out over the in-process worker
		// pool. RunCells delivers in submission order on this
		// goroutine, so the points slice and the streamed progress
		// events are byte-identical to a sequential loop at any
		// SweepWorkers setting.
		points := make([]SweepPoint, 0, len(cfgs))
		pass := true
		err := simrun.RunCells(ctx, cfgs, s.cfg.SweepWorkers, func(i int, res simrun.Result) {
			cfg := cfgs[i]
			points = append(points, SweepPoint{Protocol: cfg.Protocol, Procs: cfg.Procs,
				Remote: cfg.RemoteCycles, Pass: res.Pass, Cycles: res.Cycles})
			pass = pass && res.Pass
			jb.emitf("progress", "%d/%d %s p=%d: cycles=%d pass=%v",
				i+1, len(cfgs), cfg.Protocol, cfg.Procs, res.Cycles, res.Pass)
		})
		if err != nil {
			return runner.Artifact{}, err
		}
		body, err := json.Marshal(points)
		if err != nil {
			return runner.Artifact{}, err
		}
		return runner.Artifact{Output: string(body), Pass: pass}, nil
	}
	s.respond(w, r, "sweep", keyb.String(), run, func(art runner.Artifact, meta execMeta) any {
		var points []SweepPoint
		_ = json.Unmarshal([]byte(art.Output), &points)
		return SweepResponse{
			Job: meta.jobID, Pass: art.Pass,
			Cached: meta.cached, Coalesced: meta.coalesced, Points: points,
		}
	})
}

// --- /v1/jobs/{id} ---

// handleJob streams a job's events as NDJSON: everything recorded so
// far replays immediately, then the stream follows live until the job
// finishes or the client disconnects.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	jb := s.jobs.get(r.PathValue("id"))
	if jb == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown job"}, false)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	from := 0
	for {
		evs, done, changed := jb.snapshot(from)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from += len(evs)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// --- /v1/artifact/{key} ---

// handleArtifact serves one raw result-cache entry by content-addressed
// key — the fleet artifact exchange's read side. It is a pure disk
// lookup: no admission slot, no computation, no recursion into the
// peer fetcher (a replica that does not hold the entry answers 404,
// never "let me go ask around"). Entries are only served when they
// verify against the requested key and this process's source hash, so
// a mixed-version fleet degrades to misses instead of serving results
// the local code would not produce.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Cache == nil {
		s.writeJSON(w, http.StatusNotFound, map[string]any{"error": "no result cache"}, false)
		return
	}
	key := r.PathValue("key")
	if len(key) != 64 {
		s.writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed artifact key"}, false)
		return
	}
	data, ok := s.cfg.Cache.GetRaw(key)
	if !ok {
		s.met.artifactMiss.Add(1)
		s.writeJSON(w, http.StatusNotFound, map[string]any{"error": "unknown artifact"}, false)
		return
	}
	s.met.artifactHits.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// --- /healthz, /metrics ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "draining": true}, true)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "workers": s.cfg.Workers, "queue": s.cfg.Queue,
		"uptime_ms": time.Since(s.met.start).Milliseconds(),
	}, false)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(s.met.render(s.gate, s.jobs.count())))
}
