package serve

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"cachesync/internal/portfile"
)

// PeerSource discovers fleet peers through a shared portfile directory
// — the same handshake the coordinator already uses to find replicas —
// and fetches result-cache entries from them. Every replica writes its
// own "<name>.port" file into the directory; a replica's peers are all
// the other complete portfiles in it, re-scanned with a short TTL so
// respawned replicas (new ephemeral port, same file) are picked up
// without any registration protocol.
//
// Fetch is the runner.Cache fetcher the daemon installs on its result
// cache: it runs on the cache-miss path, so its latency is bounded by
// a short per-peer timeout — a slow or dead peer costs one timeout,
// then the replica computes locally as if the fleet were cold.
type PeerSource struct {
	dir    string
	client *http.Client

	selfMu sync.Mutex
	self   string

	scanMu  sync.Mutex
	scanned time.Time
	peers   []string
}

// peerTimeout bounds one peer artifact probe. It only needs to cover
// a loopback round trip plus one small disk read; keeping it tight
// bounds the worst-case cold-request penalty at peers×timeout.
const peerTimeout = 300 * time.Millisecond

// peerScanTTL is how long a directory scan is reused.
const peerScanTTL = time.Second

// NewPeerSource watches dir for peer portfiles. Call SetSelf once the
// local listener is bound so the source never asks the local process
// for entries it just missed.
func NewPeerSource(dir string) *PeerSource {
	return &PeerSource{
		dir:    dir,
		client: &http.Client{Timeout: peerTimeout},
	}
}

// SetSelf records the local daemon's bound address, excluded from
// every scan.
func (p *PeerSource) SetSelf(addr string) {
	p.selfMu.Lock()
	p.self = addr
	p.selfMu.Unlock()
}

// scan lists the current peer addresses: every complete portfile in
// the directory except our own address, sorted for deterministic probe
// order. Results are cached for peerScanTTL.
func (p *PeerSource) scan() []string {
	p.scanMu.Lock()
	defer p.scanMu.Unlock()
	if time.Since(p.scanned) < peerScanTTL {
		return p.peers
	}
	p.selfMu.Lock()
	self := p.self
	p.selfMu.Unlock()
	ents, err := os.ReadDir(p.dir)
	if err != nil {
		p.peers, p.scanned = nil, time.Now()
		return nil
	}
	var addrs []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".port") {
			continue
		}
		addr, ok := portfile.Read(filepath.Join(p.dir, e.Name()))
		if !ok || addr == self {
			continue
		}
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	p.peers, p.scanned = addrs, time.Now()
	return addrs
}

// Fetch asks each peer for the entry, first answer wins. It matches
// runner.Fetcher.
func (p *PeerSource) Fetch(key string) ([]byte, bool) {
	for _, addr := range p.scan() {
		resp, err := p.client.Get(fmt.Sprintf("http://%s/v1/artifact/%s", addr, key))
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil || len(data) == 0 {
			continue
		}
		return data, true
	}
	return nil, false
}
