// Package core implements the paper's primary contribution: the
// Bitar-Despain cache-synchronization protocol (Section E), a
// full-broadcast write-in scheme whose eight states carry lock
// privilege in addition to read/write privilege:
//
//	Invalid
//	Read
//	Read, Source, Clean        Read, Source, Dirty
//	Write, Source, Clean       Write, Source, Dirty
//	Lock, Source, Dirty        Lock, Source, Dirty, Waiter
//
// Locking rides on the block fetch (a lock is a processor read with
// the lock line asserted, Figure 6), so locking and unlocking usually
// occur in zero time; the lock-waiter state records that another
// cache requested the block while locked (Figure 7); unlocking
// broadcasts on the bus only when a waiter is recorded (Figure 8);
// and the per-cache busy-wait register joins the next arbitration at
// high priority so that no unsuccessful retry ever appears on the bus
// (Figure 9).
//
// The protocol also carries the rest of the paper's Table 1 column:
// cache-to-cache transfer without flushing but with clean/dirty status
// (Feature 7 "NF,S"), last-fetcher-becomes-source (Feature 8
// "LRU,MEM"), fetching unshared data for write privilege on a read
// miss with dynamic determination (Feature 5 "D", Figure 1), the bus
// invalidate signal (Feature 4), and writing without fetch on a write
// miss (Feature 9).
package core

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// The eight states of Section E.1.
const (
	// I is Invalid.
	I protocol.State = iota
	// R is Read: read privilege, not the source.
	R
	// RSC is Read, Source, Clean.
	RSC
	// RSD is Read, Source, Dirty.
	RSD
	// WSC is Write, Source, Clean.
	WSC
	// WSD is Write, Source, Dirty.
	WSD
	// LSD is Lock, Source, Dirty.
	LSD
	// LSDW is Lock, Source, Dirty, Waiter.
	LSDW
)

var stateNames = [...]string{
	I: "I", R: "R", RSC: "R.S.C", RSD: "R.S.D",
	WSC: "W.S.C", WSD: "W.S.D", LSD: "L.S.D", LSDW: "L.S.D.W",
}

// Protocol is the Bitar-Despain proposal. The zero value is ready to
// use; it is stateless and safe to share across caches.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

func init() {
	protocol.Register("bitar", func() protocol.Protocol { return Protocol{} })
}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "bitar" }

// StateName implements protocol.Protocol.
func (Protocol) StateName(s protocol.State) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint16(s))
}

// Features implements protocol.Protocol (the paper's own Table 1
// column).
func (Protocol) Features() protocol.Features {
	return protocol.Features{
		Title:  "Our proposal (Bitar, Despain)",
		Year:   1986,
		Policy: protocol.PolicyWriteIn,
		States: map[protocol.StateRow]protocol.SourceMark{
			protocol.RowInvalid:       protocol.MarkNonSource,
			protocol.RowRead:          protocol.MarkNonSource,
			protocol.RowReadClean:     protocol.MarkSource,
			protocol.RowReadDirty:     protocol.MarkSource,
			protocol.RowWriteClean:    protocol.MarkSource,
			protocol.RowWriteDirty:    protocol.MarkSource,
			protocol.RowLockDirty:     protocol.MarkSource,
			protocol.RowLockDirtyWait: protocol.MarkSource,
		},
		CacheToCache:        true,
		DistributedState:    "RWLDS",
		DirectoryOrg:        "NID",
		BusInvalidateSignal: true,
		ReadForWrite:        "D",
		AtomicRMW:           true,
		FlushOnTransfer:     "NF,S",
		SourcePolicy:        "LRU,MEM",
		WriteNoFetch:        true,
		EfficientBusyWait:   true,
		HardwareLock:        true,
	}
}

// ProcAccess implements protocol.Protocol.
func (Protocol) ProcAccess(s protocol.State, op protocol.Op) protocol.ProcResult {
	switch op {
	case protocol.OpRead, protocol.OpReadEx:
		// Unshared status is determined dynamically (Feature 5 "D"),
		// so OpReadEx behaves exactly like OpRead here.
		if s == I {
			return protocol.ProcResult{Cmd: bus.Read}
		}
		return protocol.ProcResult{Hit: true, NewState: s}

	case protocol.OpWrite:
		switch s {
		case I:
			return protocol.ProcResult{Cmd: bus.ReadX}
		case R, RSC, RSD:
			// A valid copy exists: request write privilege only, not
			// the block (Figure 5, Feature 4 one-cycle invalidation).
			return protocol.ProcResult{Cmd: bus.Upgrade}
		case WSC, WSD:
			return protocol.ProcResult{Hit: true, NewState: WSD}
		default: // LSD, LSDW: writing while locked stays locked.
			return protocol.ProcResult{Hit: true, NewState: s}
		}

	case protocol.OpLock:
		switch s {
		case I:
			// Locking is concurrent with fetching the block: no extra
			// bus traffic, no processor delay (Figure 6).
			return protocol.ProcResult{Cmd: bus.ReadX, LockIntent: true}
		case R, RSC, RSD:
			return protocol.ProcResult{Cmd: bus.Upgrade, LockIntent: true}
		case WSC, WSD:
			// Zero-time lock: sole access already held.
			return protocol.ProcResult{Hit: true, NewState: LSD}
		default: // LSD, LSDW: recursive lock is a no-op.
			return protocol.ProcResult{Hit: true, NewState: s}
		}

	case protocol.OpUnlock:
		switch s {
		case LSD:
			// Zero-time unlock: the unlock occurs at the final write
			// to the block (Figure 8), no bus access.
			return protocol.ProcResult{Hit: true, NewState: WSD}
		case LSDW:
			// A waiter was recorded: broadcast the unlocking so the
			// busy-wait registers can re-arbitrate (Figures 8, 9).
			return protocol.ProcResult{Cmd: bus.Unlock}
		case WSC, WSD:
			// Unlock without a held lock degenerates to a write (the
			// lock may have been reclaimed from a memory lock tag).
			return protocol.ProcResult{Hit: true, NewState: WSD}
		case R, RSC, RSD:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		default: // I: the locked block was purged; re-fetch to unlock.
			return protocol.ProcResult{Cmd: bus.ReadX}
		}

	case protocol.OpWriteBlock:
		switch s {
		case I:
			// Feature 9: the whole block will be written, so gain
			// write privilege without fetching.
			return protocol.ProcResult{Cmd: bus.WriteNoFetch}
		case R, RSC, RSD:
			return protocol.ProcResult{Cmd: bus.Upgrade}
		case WSC, WSD:
			return protocol.ProcResult{Hit: true, NewState: WSD}
		default: // LSD, LSDW
			return protocol.ProcResult{Hit: true, NewState: s}
		}
	}
	panic(fmt.Sprintf("core: unknown op %v", op))
}

// Complete implements protocol.Protocol.
func (Protocol) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	if t.Lines.Locked {
		// The block is locked elsewhere: the request is denied and
		// the cache initiates busy wait (Figure 7).
		return protocol.CompleteResult{NewState: s, BusyWait: true}
	}
	switch t.Cmd {
	case bus.Read:
		switch {
		case !t.Lines.Hit && !t.Lines.SourceHit:
			// No other cache has the block: assume write privilege so
			// a later write needs no bus access (Figure 1).
			return protocol.CompleteResult{NewState: WSC, Done: true}
		case t.Lines.SourceHit && t.Lines.Dirty:
			// Source transferred with dirty status (Feature 7 "NF,S"):
			// the last fetcher becomes the source (Feature 8 "LRU").
			return protocol.CompleteResult{NewState: RSD, Done: true}
		default:
			// Clean transfer from a source cache, or supplied by
			// memory (Figures 2, 4): requester becomes clean source.
			return protocol.CompleteResult{NewState: RSC, Done: true}
		}
	case bus.ReadX, bus.Upgrade:
		switch op {
		case protocol.OpLock:
			if t.AfterWait {
				// Figure 9: the arbitration winner locks using the
				// lock-waiter state, since other waiters probably
				// remain.
				return protocol.CompleteResult{NewState: LSDW, Done: true}
			}
			return protocol.CompleteResult{NewState: LSD, Done: true}
		case protocol.OpUnlock:
			// Lock-purge reclaim: the block is back with lock
			// privilege; re-run the unlock against it. The engine
			// fixes up LSD vs LSDW from the memory lock tag's waiter
			// bit.
			return protocol.CompleteResult{NewState: LSD, Done: false}
		default:
			return protocol.CompleteResult{NewState: WSD, Done: true}
		}
	case bus.WriteNoFetch:
		return protocol.CompleteResult{NewState: WSD, Done: true}
	case bus.Unlock:
		// The unlock broadcast completes the unlock-write.
		return protocol.CompleteResult{NewState: WSD, Done: true}
	}
	panic(fmt.Sprintf("core: Complete with unexpected cmd %v", t.Cmd))
}

// Snoop implements protocol.Protocol.
func (Protocol) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	switch t.Cmd {
	case bus.Read:
		switch s {
		case R:
			return protocol.SnoopResult{NewState: R, Hit: true}
		case RSC, WSC:
			// Source provides the block and its clean status; source
			// status moves to the last fetcher (Feature 8 "LRU").
			return protocol.SnoopResult{NewState: R, Hit: true, Supply: true}
		case RSD, WSD:
			// Dirty status transfers with the block, no flush
			// (Feature 7 "NF,S").
			return protocol.SnoopResult{NewState: R, Hit: true, Supply: true, Dirty: true}
		case LSD:
			// Another processor wants the locked block: record the
			// waiter (Figure 7).
			return protocol.SnoopResult{NewState: LSDW, Locked: true}
		case LSDW:
			return protocol.SnoopResult{NewState: LSDW, Locked: true}
		}

	case bus.ReadX:
		switch s {
		case R:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case RSC, WSC:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true}
		case RSD, WSD:
			return protocol.SnoopResult{NewState: I, Hit: true, Supply: true, Dirty: true}
		case LSD:
			return protocol.SnoopResult{NewState: LSDW, Locked: true}
		case LSDW:
			return protocol.SnoopResult{NewState: LSDW, Locked: true}
		}

	case bus.Upgrade, bus.WriteNoFetch, bus.WriteWord:
		switch s {
		case R, RSC, WSC:
			return protocol.SnoopResult{NewState: I, Hit: true}
		case RSD, WSD:
			// The requester either holds an identical copy (Upgrade)
			// or will overwrite the whole block (WriteNoFetch); dirty
			// responsibility moves with the privilege.
			return protocol.SnoopResult{NewState: I, Hit: true, Dirty: true}
		case LSD:
			return protocol.SnoopResult{NewState: LSDW, Locked: true}
		case LSDW:
			return protocol.SnoopResult{NewState: LSDW, Locked: true}
		}

	case bus.IORead:
		// Non-paging output: supply but keep source status
		// (Section E.2).
		switch s {
		case R:
			return protocol.SnoopResult{NewState: R, Hit: true}
		case RSC, WSC:
			return protocol.SnoopResult{NewState: s, Hit: true, Supply: true}
		case RSD, WSD:
			return protocol.SnoopResult{NewState: s, Hit: true, Supply: true, Dirty: true}
		case LSD, LSDW:
			return protocol.SnoopResult{NewState: s, Locked: true}
		}

	case bus.IOWrite:
		// Input: the I/O processor writes memory; all cached copies
		// invalidate (Section E.2).
		switch s {
		case I:
			return protocol.SnoopResult{NewState: I}
		case LSD, LSDW:
			return protocol.SnoopResult{NewState: s, Locked: true}
		default:
			return protocol.SnoopResult{NewState: I, Hit: true}
		}

	case bus.Unlock, bus.Flush:
		// Unlock wakes busy-wait registers (cache level); a Flush is
		// another cache's writeback. Neither changes line state.
		return protocol.SnoopResult{NewState: s}
	}
	return protocol.SnoopResult{NewState: s}
}

// ReclaimedLockState implements protocol.LockReclaimer: when the
// owner re-fetches a block whose lock bit was pushed to memory, the
// line re-enters the lock state, carrying over the recorded-waiter
// bit so the eventual unlock still broadcasts.
func (Protocol) ReclaimedLockState(waiter bool) protocol.State {
	if waiter {
		return LSDW
	}
	return LSD
}

// Evict implements protocol.Protocol.
func (Protocol) Evict(s protocol.State) protocol.Evict {
	switch s {
	case RSD, WSD:
		return protocol.Evict{Writeback: true}
	case LSD:
		// Purging a locked block writes the lock bit to memory
		// (Section E.3, "Two Concerns").
		return protocol.Evict{Writeback: true, LockPurge: true}
	case LSDW:
		return protocol.Evict{Writeback: true, LockPurge: true, Waiter: true}
	}
	return protocol.Evict{}
}

// Privilege implements protocol.Protocol.
func (Protocol) Privilege(s protocol.State) protocol.Priv {
	switch s {
	case R, RSC, RSD:
		return protocol.PrivRead
	case WSC, WSD:
		return protocol.PrivWrite
	case LSD, LSDW:
		return protocol.PrivLock
	}
	return protocol.PrivNone
}

// IsDirty implements protocol.Protocol.
func (Protocol) IsDirty(s protocol.State) bool {
	return s == RSD || s == WSD || s == LSD || s == LSDW
}

// IsSource implements protocol.Protocol.
func (Protocol) IsSource(s protocol.State) bool {
	return s != I && s != R
}
