package core

import (
	"testing"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/tabletest"
)

var p = Protocol{}

func lines(hit, srcHit, dirty, locked bool) bus.Lines {
	return bus.Lines{Hit: hit, SourceHit: srcHit, Dirty: dirty, Locked: locked}
}

func TestRegistered(t *testing.T) {
	got, err := protocol.New("bitar")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "bitar" {
		t.Errorf("Name = %q", got.Name())
	}
}

func TestStateNames(t *testing.T) {
	want := map[protocol.State]string{
		I: "I", R: "R", RSC: "R.S.C", RSD: "R.S.D",
		WSC: "W.S.C", WSD: "W.S.D", LSD: "L.S.D", LSDW: "L.S.D.W",
	}
	for s, name := range want {
		if got := p.StateName(s); got != name {
			t.Errorf("StateName(%d) = %q, want %q", s, got, name)
		}
	}
	if got := p.StateName(protocol.State(99)); got != "state(99)" {
		t.Errorf("StateName(99) = %q", got)
	}
}

func TestReadHitStates(t *testing.T) {
	for _, s := range []protocol.State{R, RSC, RSD, WSC, WSD, LSD, LSDW} {
		r := p.ProcAccess(s, protocol.OpRead)
		if !r.Hit || r.NewState != s {
			t.Errorf("read hit in %s: %+v", p.StateName(s), r)
		}
	}
}

func TestReadMissIssuesBusRead(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpRead)
	if r.Hit || r.Cmd != bus.Read {
		t.Errorf("read miss: %+v", r)
	}
}

// Figure 1: read miss, no other cache has the block: assume write
// privilege, clean.
func TestFigure1FetchUnsharedOnReadMiss(t *testing.T) {
	txn := &bus.Transaction{Cmd: bus.Read, Lines: lines(false, false, false, false)}
	c := p.Complete(I, protocol.OpRead, txn)
	if c.NewState != WSC || !c.Done {
		t.Errorf("unshared read miss -> %s, want W.S.C", p.StateName(c.NewState))
	}
}

// Figures 2, 3: no source cache; memory provides; requester takes
// read privilege (another cache signalled hit).
func TestFigure23FetchWithoutSource(t *testing.T) {
	txn := &bus.Transaction{Cmd: bus.Read, Lines: lines(true, false, false, false)}
	c := p.Complete(I, protocol.OpRead, txn)
	if c.NewState != RSC {
		t.Errorf("read miss with hit, memory supply -> %s, want R.S.C (last fetcher becomes source)",
			p.StateName(c.NewState))
	}
}

// Figure 4: cache-to-cache transfer carries dirty status (NF,S).
func TestFigure4CacheToCacheTransfer(t *testing.T) {
	txn := &bus.Transaction{Cmd: bus.Read, Lines: lines(true, true, true, false)}
	c := p.Complete(I, protocol.OpRead, txn)
	if c.NewState != RSD {
		t.Errorf("dirty c2c read -> %s, want R.S.D", p.StateName(c.NewState))
	}
	txn2 := &bus.Transaction{Cmd: bus.Read, Lines: lines(true, true, false, false)}
	c2 := p.Complete(I, protocol.OpRead, txn2)
	if c2.NewState != RSC {
		t.Errorf("clean c2c read -> %s, want R.S.C", p.StateName(c2.NewState))
	}
}

// Figure 5: write hit on a read-privilege copy requests write
// privilege only (Upgrade), not the block.
func TestFigure5UpgradeNotFetch(t *testing.T) {
	for _, s := range []protocol.State{R, RSC, RSD} {
		r := p.ProcAccess(s, protocol.OpWrite)
		if r.Hit || r.Cmd != bus.Upgrade {
			t.Errorf("write on %s: %+v, want Upgrade", p.StateName(s), r)
		}
	}
	c := p.Complete(R, protocol.OpWrite, &bus.Transaction{Cmd: bus.Upgrade})
	if c.NewState != WSD || !c.Done {
		t.Errorf("upgrade complete -> %s", p.StateName(c.NewState))
	}
}

func TestWriteHitOnWritePrivilege(t *testing.T) {
	r := p.ProcAccess(WSC, protocol.OpWrite)
	if !r.Hit || r.NewState != WSD {
		t.Errorf("write on W.S.C: %+v", r)
	}
	r = p.ProcAccess(WSD, protocol.OpWrite)
	if !r.Hit || r.NewState != WSD {
		t.Errorf("write on W.S.D: %+v", r)
	}
}

// Figure 6: locking. A lock on a write-privilege block is zero-time;
// a lock miss fetches with lock intent.
func TestFigure6Lock(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpLock)
	if r.Hit || r.Cmd != bus.ReadX || !r.LockIntent {
		t.Errorf("lock miss: %+v", r)
	}
	c := p.Complete(I, protocol.OpLock, &bus.Transaction{Cmd: bus.ReadX, LockIntent: true})
	if c.NewState != LSD || !c.Done {
		t.Errorf("lock fetch complete -> %s", p.StateName(c.NewState))
	}
	r = p.ProcAccess(WSD, protocol.OpLock)
	if !r.Hit || r.NewState != LSD {
		t.Errorf("zero-time lock: %+v", r)
	}
	r = p.ProcAccess(R, protocol.OpLock)
	if r.Hit || r.Cmd != bus.Upgrade || !r.LockIntent {
		t.Errorf("lock on read copy: %+v", r)
	}
}

// Figure 7: a request against a locked block is denied; the holder
// records the waiter; the requester initiates busy wait.
func TestFigure7LockedDenial(t *testing.T) {
	for _, cmd := range []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade} {
		res := p.Snoop(LSD, &bus.Transaction{Cmd: cmd})
		if !res.Locked || res.NewState != LSDW {
			t.Errorf("snoop %v on L.S.D: %+v, want Locked -> L.S.D.W", cmd, res)
		}
		res = p.Snoop(LSDW, &bus.Transaction{Cmd: cmd})
		if !res.Locked || res.NewState != LSDW {
			t.Errorf("snoop %v on L.S.D.W: %+v", cmd, res)
		}
	}
	// Requester side: denial arms busy wait.
	txn := &bus.Transaction{Cmd: bus.ReadX, LockIntent: true, Lines: lines(false, false, false, true)}
	c := p.Complete(I, protocol.OpLock, txn)
	if !c.BusyWait {
		t.Errorf("denied lock fetch: %+v, want BusyWait", c)
	}
}

// Figure 8: unlock is zero-time without a waiter, broadcasts with one.
func TestFigure8Unlock(t *testing.T) {
	r := p.ProcAccess(LSD, protocol.OpUnlock)
	if !r.Hit || r.NewState != WSD {
		t.Errorf("unlock without waiter: %+v, want zero-time -> W.S.D", r)
	}
	r = p.ProcAccess(LSDW, protocol.OpUnlock)
	if r.Hit || r.Cmd != bus.Unlock {
		t.Errorf("unlock with waiter: %+v, want Unlock broadcast", r)
	}
	c := p.Complete(LSDW, protocol.OpUnlock, &bus.Transaction{Cmd: bus.Unlock})
	if c.NewState != WSD || !c.Done {
		t.Errorf("unlock broadcast complete -> %s", p.StateName(c.NewState))
	}
}

// Figure 9: the re-arbitrated winner locks into the lock-waiter state.
func TestFigure9AfterWaitLocksAsWaiter(t *testing.T) {
	txn := &bus.Transaction{Cmd: bus.ReadX, LockIntent: true, AfterWait: true}
	c := p.Complete(I, protocol.OpLock, txn)
	if c.NewState != LSDW || !c.Done {
		t.Errorf("after-wait lock -> %s, want L.S.D.W", p.StateName(c.NewState))
	}
}

func TestSnoopReadTransfersSource(t *testing.T) {
	cases := []struct {
		s      protocol.State
		supply bool
		dirty  bool
	}{
		{R, false, false},
		{RSC, true, false},
		{RSD, true, true},
		{WSC, true, false},
		{WSD, true, true},
	}
	for _, c := range cases {
		res := p.Snoop(c.s, &bus.Transaction{Cmd: bus.Read})
		if res.NewState != R {
			t.Errorf("snoop read on %s -> %s, want R", p.StateName(c.s), p.StateName(res.NewState))
		}
		if res.Supply != c.supply || res.Dirty != c.dirty || !res.Hit {
			t.Errorf("snoop read on %s: %+v", p.StateName(c.s), res)
		}
		if res.Flush {
			t.Errorf("snoop read on %s flushed; protocol is NF,S", p.StateName(c.s))
		}
	}
}

func TestSnoopReadXInvalidates(t *testing.T) {
	for _, s := range []protocol.State{R, RSC, RSD, WSC, WSD} {
		res := p.Snoop(s, &bus.Transaction{Cmd: bus.ReadX})
		if res.NewState != I {
			t.Errorf("snoop readx on %s -> %s, want I", p.StateName(s), p.StateName(res.NewState))
		}
	}
}

func TestSnoopUpgradeInvalidates(t *testing.T) {
	for _, s := range []protocol.State{R, RSC, RSD, WSC, WSD} {
		res := p.Snoop(s, &bus.Transaction{Cmd: bus.Upgrade})
		if res.NewState != I {
			t.Errorf("snoop upgrade on %s -> %s, want I", p.StateName(s), p.StateName(res.NewState))
		}
		if res.Supply {
			t.Errorf("upgrade should not transfer data (requester holds a copy)")
		}
	}
}

func TestSnoopIOReadKeepsSource(t *testing.T) {
	for _, s := range []protocol.State{RSC, RSD, WSC, WSD} {
		res := p.Snoop(s, &bus.Transaction{Cmd: bus.IORead})
		if res.NewState != s || !res.Supply {
			t.Errorf("ioread on %s: %+v, want supply, keep state", p.StateName(s), res)
		}
	}
}

func TestSnoopIOWriteInvalidates(t *testing.T) {
	for _, s := range []protocol.State{R, RSC, RSD, WSC, WSD} {
		res := p.Snoop(s, &bus.Transaction{Cmd: bus.IOWrite})
		if res.NewState != I {
			t.Errorf("iowrite on %s -> %s, want I", p.StateName(s), p.StateName(res.NewState))
		}
	}
	res := p.Snoop(LSD, &bus.Transaction{Cmd: bus.IOWrite})
	if !res.Locked {
		t.Error("iowrite on locked block should be denied")
	}
}

func TestSnoopUnlockAndFlushNoop(t *testing.T) {
	for _, s := range []protocol.State{I, R, RSC, RSD, WSC, WSD, LSD, LSDW} {
		for _, cmd := range []bus.Cmd{bus.Unlock, bus.Flush} {
			res := p.Snoop(s, &bus.Transaction{Cmd: cmd})
			if res.NewState != s || res.Supply || res.Locked {
				t.Errorf("snoop %v on %s: %+v, want no-op", cmd, p.StateName(s), res)
			}
		}
	}
}

func TestWriteBlockNoFetch(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpWriteBlock)
	if r.Hit || r.Cmd != bus.WriteNoFetch {
		t.Errorf("writeblock miss: %+v, want WriteNoFetch", r)
	}
	c := p.Complete(I, protocol.OpWriteBlock, &bus.Transaction{Cmd: bus.WriteNoFetch})
	if c.NewState != WSD || !c.Done {
		t.Errorf("writenofetch complete -> %s", p.StateName(c.NewState))
	}
	res := p.Snoop(WSD, &bus.Transaction{Cmd: bus.WriteNoFetch})
	if res.NewState != I {
		t.Errorf("snoop writenofetch on W.S.D -> %s, want I", p.StateName(res.NewState))
	}
}

func TestUnlockAfterPurgeRefetches(t *testing.T) {
	r := p.ProcAccess(I, protocol.OpUnlock)
	if r.Hit || r.Cmd != bus.ReadX {
		t.Errorf("unlock on purged block: %+v, want ReadX refetch", r)
	}
	c := p.Complete(I, protocol.OpUnlock, &bus.Transaction{Cmd: bus.ReadX})
	if c.Done || c.NewState != LSD {
		t.Errorf("reclaim complete: %+v, want L.S.D and not done", c)
	}
	// Re-invoked access now unlocks in zero time.
	r = p.ProcAccess(LSD, protocol.OpUnlock)
	if !r.Hit || r.NewState != WSD {
		t.Errorf("post-reclaim unlock: %+v", r)
	}
}

func TestEvict(t *testing.T) {
	cases := map[protocol.State]protocol.Evict{
		I:    {},
		R:    {},
		RSC:  {},
		WSC:  {},
		RSD:  {Writeback: true},
		WSD:  {Writeback: true},
		LSD:  {Writeback: true, LockPurge: true},
		LSDW: {Writeback: true, LockPurge: true, Waiter: true},
	}
	for s, want := range cases {
		if got := p.Evict(s); got != want {
			t.Errorf("Evict(%s) = %+v, want %+v", p.StateName(s), got, want)
		}
	}
}

func TestClassification(t *testing.T) {
	type cls struct {
		priv   protocol.Priv
		dirty  bool
		source bool
	}
	cases := map[protocol.State]cls{
		I:    {protocol.PrivNone, false, false},
		R:    {protocol.PrivRead, false, false},
		RSC:  {protocol.PrivRead, false, true},
		RSD:  {protocol.PrivRead, true, true},
		WSC:  {protocol.PrivWrite, false, true},
		WSD:  {protocol.PrivWrite, true, true},
		LSD:  {protocol.PrivLock, true, true},
		LSDW: {protocol.PrivLock, true, true},
	}
	for s, want := range cases {
		if got := p.Privilege(s); got != want.priv {
			t.Errorf("Privilege(%s) = %v, want %v", p.StateName(s), got, want.priv)
		}
		if got := p.IsDirty(s); got != want.dirty {
			t.Errorf("IsDirty(%s) = %v, want %v", p.StateName(s), got, want.dirty)
		}
		if got := p.IsSource(s); got != want.source {
			t.Errorf("IsSource(%s) = %v, want %v", p.StateName(s), got, want.source)
		}
	}
}

func TestFeaturesTable1Column(t *testing.T) {
	f := p.Features()
	if f.DistributedState != "RWLDS" {
		t.Errorf("DistributedState = %q, want RWLDS", f.DistributedState)
	}
	if f.SourcePolicy != "LRU,MEM" || f.FlushOnTransfer != "NF,S" || f.ReadForWrite != "D" {
		t.Errorf("features mismatch: %+v", f)
	}
	if !f.EfficientBusyWait || !f.WriteNoFetch || !f.HardwareLock {
		t.Errorf("boolean features mismatch: %+v", f)
	}
	for _, row := range protocol.StateRows() {
		if !f.HasState(row) {
			t.Errorf("missing Table 1 state row %q", row)
		}
	}
	// All states except Invalid and Read are source states.
	for row, mark := range f.States {
		wantSource := row != protocol.RowInvalid && row != protocol.RowRead
		if (mark == protocol.MarkSource) != wantSource {
			t.Errorf("state row %q mark = %q", row, mark)
		}
	}
}

func TestLockedDenialKeepsRequesterState(t *testing.T) {
	// A read-privilege holder attempting a lock upgrade that is
	// denied must keep its old state.
	txn := &bus.Transaction{Cmd: bus.Upgrade, LockIntent: true, Lines: lines(false, false, false, true)}
	c := p.Complete(R, protocol.OpLock, txn)
	if !c.BusyWait || c.NewState != R {
		t.Errorf("denied upgrade-lock: %+v", c)
	}
}

// The complete eight-state machine of Figure 10, locked in cell by
// cell (processor side and bus side).
func TestFullTransitionTable(t *testing.T) {
	states := []protocol.State{I, R, RSC, RSD, WSC, WSD, LSD, LSDW}
	ops := []protocol.Op{protocol.OpRead, protocol.OpReadEx, protocol.OpWrite,
		protocol.OpLock, protocol.OpUnlock, protocol.OpWriteBlock}
	tabletest.CheckProc(t, p, states, ops, []tabletest.ProcRow{
		{S: I, Op: protocol.OpRead, Cmd: bus.Read},
		{S: I, Op: protocol.OpReadEx, Cmd: bus.Read},
		{S: I, Op: protocol.OpWrite, Cmd: bus.ReadX},
		{S: I, Op: protocol.OpLock, Cmd: bus.ReadX},
		{S: I, Op: protocol.OpUnlock, Cmd: bus.ReadX}, // purged-lock reclaim
		{S: I, Op: protocol.OpWriteBlock, Cmd: bus.WriteNoFetch},
		{S: R, Op: protocol.OpRead, Hit: true, NS: R},
		{S: R, Op: protocol.OpReadEx, Hit: true, NS: R},
		{S: R, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: R, Op: protocol.OpLock, Cmd: bus.Upgrade},
		{S: R, Op: protocol.OpUnlock, Cmd: bus.Upgrade},
		{S: R, Op: protocol.OpWriteBlock, Cmd: bus.Upgrade},
		{S: RSC, Op: protocol.OpRead, Hit: true, NS: RSC},
		{S: RSC, Op: protocol.OpReadEx, Hit: true, NS: RSC},
		{S: RSC, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: RSC, Op: protocol.OpLock, Cmd: bus.Upgrade},
		{S: RSC, Op: protocol.OpUnlock, Cmd: bus.Upgrade},
		{S: RSC, Op: protocol.OpWriteBlock, Cmd: bus.Upgrade},
		{S: RSD, Op: protocol.OpRead, Hit: true, NS: RSD},
		{S: RSD, Op: protocol.OpReadEx, Hit: true, NS: RSD},
		{S: RSD, Op: protocol.OpWrite, Cmd: bus.Upgrade},
		{S: RSD, Op: protocol.OpLock, Cmd: bus.Upgrade},
		{S: RSD, Op: protocol.OpUnlock, Cmd: bus.Upgrade},
		{S: RSD, Op: protocol.OpWriteBlock, Cmd: bus.Upgrade},
		{S: WSC, Op: protocol.OpRead, Hit: true, NS: WSC},
		{S: WSC, Op: protocol.OpReadEx, Hit: true, NS: WSC},
		{S: WSC, Op: protocol.OpWrite, Hit: true, NS: WSD},
		{S: WSC, Op: protocol.OpLock, Hit: true, NS: LSD}, // zero-time lock
		{S: WSC, Op: protocol.OpUnlock, Hit: true, NS: WSD},
		{S: WSC, Op: protocol.OpWriteBlock, Hit: true, NS: WSD},
		{S: WSD, Op: protocol.OpRead, Hit: true, NS: WSD},
		{S: WSD, Op: protocol.OpReadEx, Hit: true, NS: WSD},
		{S: WSD, Op: protocol.OpWrite, Hit: true, NS: WSD},
		{S: WSD, Op: protocol.OpLock, Hit: true, NS: LSD},
		{S: WSD, Op: protocol.OpUnlock, Hit: true, NS: WSD},
		{S: WSD, Op: protocol.OpWriteBlock, Hit: true, NS: WSD},
		{S: LSD, Op: protocol.OpRead, Hit: true, NS: LSD},
		{S: LSD, Op: protocol.OpReadEx, Hit: true, NS: LSD},
		{S: LSD, Op: protocol.OpWrite, Hit: true, NS: LSD},
		{S: LSD, Op: protocol.OpLock, Hit: true, NS: LSD},
		{S: LSD, Op: protocol.OpUnlock, Hit: true, NS: WSD}, // zero-time unlock
		{S: LSD, Op: protocol.OpWriteBlock, Hit: true, NS: LSD},
		{S: LSDW, Op: protocol.OpRead, Hit: true, NS: LSDW},
		{S: LSDW, Op: protocol.OpReadEx, Hit: true, NS: LSDW},
		{S: LSDW, Op: protocol.OpWrite, Hit: true, NS: LSDW},
		{S: LSDW, Op: protocol.OpLock, Hit: true, NS: LSDW},
		{S: LSDW, Op: protocol.OpUnlock, Cmd: bus.Unlock}, // broadcast for the waiters
		{S: LSDW, Op: protocol.OpWriteBlock, Hit: true, NS: LSDW},
	})
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.Unlock}
	var snoopRows []tabletest.SnoopRow
	// Invalid and the Unlock command are inert everywhere.
	for _, s := range states {
		snoopRows = append(snoopRows, tabletest.SnoopRow{S: s, Cmd: bus.Unlock, NS: s})
	}
	for _, cmd := range []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteNoFetch} {
		snoopRows = append(snoopRows, tabletest.SnoopRow{S: I, Cmd: cmd, NS: I})
	}
	snoopRows = append(snoopRows,
		tabletest.SnoopRow{S: R, Cmd: bus.Read, NS: R, Hit: true},
		tabletest.SnoopRow{S: R, Cmd: bus.ReadX, NS: I, Hit: true},
		tabletest.SnoopRow{S: R, Cmd: bus.Upgrade, NS: I, Hit: true},
		tabletest.SnoopRow{S: R, Cmd: bus.WriteNoFetch, NS: I, Hit: true},
		tabletest.SnoopRow{S: RSC, Cmd: bus.Read, NS: R, Hit: true, Supply: true},
		tabletest.SnoopRow{S: RSC, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true},
		tabletest.SnoopRow{S: RSC, Cmd: bus.Upgrade, NS: I, Hit: true},
		tabletest.SnoopRow{S: RSC, Cmd: bus.WriteNoFetch, NS: I, Hit: true},
		tabletest.SnoopRow{S: RSD, Cmd: bus.Read, NS: R, Hit: true, Supply: true, Dirty: true},
		tabletest.SnoopRow{S: RSD, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Dirty: true},
		tabletest.SnoopRow{S: RSD, Cmd: bus.Upgrade, NS: I, Hit: true, Dirty: true},
		tabletest.SnoopRow{S: RSD, Cmd: bus.WriteNoFetch, NS: I, Hit: true, Dirty: true},
		tabletest.SnoopRow{S: WSC, Cmd: bus.Read, NS: R, Hit: true, Supply: true},
		tabletest.SnoopRow{S: WSC, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true},
		tabletest.SnoopRow{S: WSC, Cmd: bus.Upgrade, NS: I, Hit: true},
		tabletest.SnoopRow{S: WSC, Cmd: bus.WriteNoFetch, NS: I, Hit: true},
		tabletest.SnoopRow{S: WSD, Cmd: bus.Read, NS: R, Hit: true, Supply: true, Dirty: true},
		tabletest.SnoopRow{S: WSD, Cmd: bus.ReadX, NS: I, Hit: true, Supply: true, Dirty: true},
		tabletest.SnoopRow{S: WSD, Cmd: bus.Upgrade, NS: I, Hit: true, Dirty: true},
		tabletest.SnoopRow{S: WSD, Cmd: bus.WriteNoFetch, NS: I, Hit: true, Dirty: true},
	)
	for _, s := range []protocol.State{LSD, LSDW} {
		for _, cmd := range []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteNoFetch} {
			snoopRows = append(snoopRows, tabletest.SnoopRow{S: s, Cmd: cmd, NS: LSDW, Locked: true})
		}
	}
	tabletest.CheckSnoop(t, p, states, cmds, snoopRows)
}
