package core

import (
	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// MemSourceVariant ablates Feature 8's "LRU" half: instead of the
// last fetcher becoming the source, the current source keeps source
// status on a read (like Katz et al.), so when it purges the block
// the next fetch falls back to memory ("MEM" alone). The paper argues
// last-fetcher-becomes-source reduces the chance of losing a source
// when LRU replacement tends to hold across caches; this variant
// exists to measure that argument (ablation bench A3).
type MemSourceVariant struct {
	Protocol
}

var _ protocol.Protocol = MemSourceVariant{}

func init() {
	protocol.Register("bitar-memsrc", func() protocol.Protocol { return MemSourceVariant{} })
}

// Name implements protocol.Protocol.
func (MemSourceVariant) Name() string { return "bitar-memsrc" }

// Features implements protocol.Protocol.
func (v MemSourceVariant) Features() protocol.Features {
	f := v.Protocol.Features()
	f.Title = "Bitar-Despain (MEM-source ablation)"
	f.SourcePolicy = "MEM"
	return f
}

// Snoop implements protocol.Protocol: on a read request the source
// supplies but keeps source status (write-privilege sources drop to
// read-privilege sources).
func (v MemSourceVariant) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	if t.Cmd == bus.Read {
		switch s {
		case RSC:
			return protocol.SnoopResult{NewState: RSC, Hit: true, Supply: true}
		case RSD:
			return protocol.SnoopResult{NewState: RSD, Hit: true, Supply: true, Dirty: true}
		case WSC:
			return protocol.SnoopResult{NewState: RSC, Hit: true, Supply: true}
		case WSD:
			return protocol.SnoopResult{NewState: RSD, Hit: true, Supply: true, Dirty: true}
		}
	}
	return v.Protocol.Snoop(s, t)
}

// Complete implements protocol.Protocol: a read fetch served by a
// source cache leaves the requester as a plain (non-source) reader.
func (v MemSourceVariant) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	if t.Cmd == bus.Read && !t.Lines.Locked && t.Lines.SourceHit {
		return protocol.CompleteResult{NewState: R, Done: true}
	}
	return v.Protocol.Complete(s, op, t)
}
