// Package stats collects simulation metrics: named counters,
// latency histograms, and plain-text table rendering used by the
// table/figure regeneration tools and the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a set of named monotonically increasing counters.
// The zero value is ready to use. Counters are stored behind stable
// pointers so hot paths can resolve a Handle once and increment
// through it without a per-event map operation.
type Counters struct {
	m    map[string]*int64
	off  bool
	sink int64
}

// Handle returns a stable pointer to the named counter, registering
// it at zero if new. The pointer stays valid for the life of the
// Counters, so per-event code resolves it once and increments through
// it. A disabled set hands back a shared sink.
func (c *Counters) Handle(name string) *int64 {
	if c.off {
		return &c.sink
	}
	if c.m == nil {
		c.m = make(map[string]*int64)
	}
	p := c.m[name]
	if p == nil {
		p = new(int64)
		c.m[name] = p
	}
	return p
}

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta int64) {
	if c.off {
		return
	}
	*c.Handle(name) += delta
}

// Disable turns the counter set into a no-op sink. The model checker
// disables the counters of its caches and memory: counting costs a
// map update on paths it executes hundreds of thousands of times per
// second, and the counts are never read.
func (c *Counters) Disable() { c.off = true }

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of counter name (zero if never incremented).
func (c *Counters) Get(name string) int64 {
	if p := c.m[name]; p != nil {
		return *p
	}
	return 0
}

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every counter of other into c.
func (c *Counters) Merge(other *Counters) {
	for n, v := range other.m {
		c.Add(n, *v)
	}
}

// Total sums all counters whose name has the given prefix.
func (c *Counters) Total(prefix string) int64 {
	var t int64
	for n, v := range c.m {
		if strings.HasPrefix(n, prefix) {
			t += *v
		}
	}
	return t
}

// Snapshot returns a copy of the counter map.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.m))
	for n, v := range c.m {
		out[n] = *v
	}
	return out
}

// Histogram accumulates integer observations (typically latencies in
// cycles) and reports summary statistics. The zero value is ready to
// use. Observations are retained, so percentiles are exact.
type Histogram struct {
	vals   []int64
	sum    int64
	sorted bool
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.vals = append(h.vals, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return len(h.vals) }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	return float64(h.sum) / float64(len(h.vals))
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.vals, func(i, j int) bool { return h.vals[i] < h.vals[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, or 0 with no observations.
func (h *Histogram) Percentile(p float64) int64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.ensureSorted()
	rank := int(math.Ceil(p / 100 * float64(len(h.vals))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(h.vals) {
		rank = len(h.vals)
	}
	return h.vals[rank-1]
}

// Min returns the smallest observation, or 0 with none.
func (h *Histogram) Min() int64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.vals[0]
}

// Max returns the largest observation, or 0 with none.
func (h *Histogram) Max() int64 {
	if len(h.vals) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.vals[len(h.vals)-1]
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Table renders aligned plain-text tables, used to regenerate the
// paper's Table 1 and 2 and the experiment tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped,
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the aligned plain-text form of the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		line := make([]string, len(cells))
		for i, cell := range cells {
			line[i] = cell + strings.Repeat(" ", widths[i]-len(cell))
		}
		b.WriteString(strings.TrimRight(strings.Join(line, "  "), " "))
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV form (quoting cells that
// contain commas or quotes), title omitted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRec(t.headers)
	for _, row := range t.rows {
		writeRec(row)
	}
	return b.String()
}

// Ratio formats a/b as a fixed-precision ratio string, handling b==0.
func Ratio(a, b int64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", float64(a)/float64(b))
}

// Pct formats a/b as a percentage string, handling b==0.
func Pct(a, b int64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(a)/float64(b))
}
