package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersBasic(t *testing.T) {
	var c Counters
	if got := c.Get("x"); got != 0 {
		t.Errorf("Get on zero Counters = %d, want 0", got)
	}
	c.Inc("x")
	c.Add("x", 4)
	c.Add("y", 2)
	if got := c.Get("x"); got != 5 {
		t.Errorf("Get(x) = %d, want 5", got)
	}
	if got := c.Get("y"); got != 2 {
		t.Errorf("Get(y) = %d, want 2", got)
	}
}

func TestCountersNamesSorted(t *testing.T) {
	var c Counters
	c.Inc("zeta")
	c.Inc("alpha")
	c.Inc("mid")
	names := c.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestCountersMergeAndTotal(t *testing.T) {
	var a, b Counters
	a.Add("bus.read", 3)
	a.Add("bus.readx", 1)
	b.Add("bus.read", 2)
	b.Add("proc.hit", 7)
	a.Merge(&b)
	if got := a.Get("bus.read"); got != 5 {
		t.Errorf("merged bus.read = %d, want 5", got)
	}
	if got := a.Total("bus."); got != 6 {
		t.Errorf("Total(bus.) = %d, want 6", got)
	}
	if got := a.Total("proc."); got != 7 {
		t.Errorf("Total(proc.) = %d, want 7", got)
	}
	if got := a.Total("nothing."); got != 0 {
		t.Errorf("Total(nothing.) = %d, want 0", got)
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	var c Counters
	c.Add("k", 1)
	s := c.Snapshot()
	s["k"] = 99
	if got := c.Get("k"); got != 1 {
		t.Errorf("Snapshot mutated source: %d", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 1, 9, 3, 7} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Sum() != 25 {
		t.Errorf("Sum = %d", h.Sum())
	}
	if h.Mean() != 5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 5 {
		t.Errorf("P50 = %d, want 5", got)
	}
	if got := h.Percentile(100); got != 9 {
		t.Errorf("P100 = %d, want 9", got)
	}
	if got := h.Percentile(1); got != 1 {
		t.Errorf("P1 = %d, want 1", got)
	}
}

func TestHistogramObserveAfterSort(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Max() // forces sort
	h.Observe(1)
	if got := h.Min(); got != 1 {
		t.Errorf("Min after late observe = %d, want 1", got)
	}
}

// Property: percentiles are monotonic in p and bounded by [Min, Max].
func TestHistogramPercentileMonotonic(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(int64(v))
		}
		prev := h.Min()
		for p := 1; p <= 100; p++ {
			cur := h.Percentile(float64(p))
			if cur < prev || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [Min, Max].
func TestHistogramMeanBounded(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(int64(v))
		}
		m := h.Mean()
		return m >= float64(h.Min()) && m <= float64(h.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22")
	out := tb.Render()
	if !strings.Contains(out, "Demo\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[1] != "name   value" {
		t.Errorf("header = %q", lines[1])
	}
	if lines[2] != "-----  -----" {
		t.Errorf("separator = %q", lines[2])
	}
	if lines[3] != "alpha  1" {
		t.Errorf("row = %q", lines[3])
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "overflow-dropped")
	out := tb.Render()
	if strings.Contains(out, "overflow") {
		t.Errorf("extra cell not dropped:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Errorf("short row missing:\n%s", out)
	}
}

func TestRatioAndPct(t *testing.T) {
	if got := Ratio(1, 2); got != "0.500" {
		t.Errorf("Ratio(1,2) = %q", got)
	}
	if got := Ratio(1, 0); got != "n/a" {
		t.Errorf("Ratio(1,0) = %q", got)
	}
	if got := Pct(1, 4); got != "25.00%" {
		t.Errorf("Pct(1,4) = %q", got)
	}
	if got := Pct(3, 0); got != "n/a" {
		t.Errorf("Pct(3,0) = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("plain", `with "quote", comma`)
	got := tb.CSV()
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if got != want {
		t.Errorf("CSV() = %q, want %q", got, want)
	}
}
