package report

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/aquarius"
	"cachesync/internal/cache"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/schedqueue"
	"cachesync/internal/sim"
	"cachesync/internal/stats"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

// rig builds a machine for an experiment.
func rig(protoName string, procs, ways int, unitMode bool, geom addr.Geometry) (*sim.System, workload.Layout) {
	p := protocol.MustNew(protoName)
	cfg := sim.DefaultConfig(p)
	cfg.Procs = procs
	cfg.Geometry = geom
	if p.Features().OneWordBlocks {
		cfg.Geometry = addr.MustGeometry(1, 1)
	}
	cfg.Cache = cache.Config{Sets: 1, Ways: ways, UnitMode: unitMode}
	s := sim.New(cfg)
	return s, workload.Layout{G: s.Geometry()}
}

var g4 = addr.MustGeometry(4, 4)

func mustRun(s *sim.System, ws []func(*sim.Proc)) {
	if err := s.Run(ws); err != nil {
		panic(fmt.Sprintf("report: experiment run failed: %v", err))
	}
}

func perOp(total int64, ops int64) string { return stats.Ratio(total, ops) }

// E1LockCost quantifies Section E.3's zero-time locking claim: bus
// transactions and cycles per lock acquire/release pair, cache-state
// locking versus test-and-set spinning.
func E1LockCost() *stats.Table {
	t := stats.NewTable("E1. Cost of locking (Section E.3): per acquire/release pair",
		"protocol", "scheme", "bus txns/pair", "bus cycles/pair", "mean acquire latency")
	const procs, iters = 4, 40
	cases := []struct {
		proto  string
		scheme syncprim.Scheme
	}{
		{"bitar", syncprim.CacheLock},
		{"bitar", syncprim.TTAS},
		{"illinois", syncprim.TTAS},
		{"illinois", syncprim.TAS},
		{"goodman", syncprim.TTAS},
		{"synapse", syncprim.TTAS},
	}
	for _, c := range cases {
		s, l := rig(c.proto, procs, 64, false, g4)
		w := workload.LockContention{Locks: 1, Iters: iters, HoldCycles: 20, ThinkCycles: 10,
			CSWrites: 2, Scheme: c.scheme, Seed: 17}
		mustRun(s, w.Build(l, procs))
		pairs := int64(procs * iters)
		txns := s.Bus.Counts.Total("bus.")
		cycles := s.Counts.Get("bus.cycles")
		lat := "n/a"
		if c.scheme == syncprim.CacheLock {
			lat = fmt.Sprintf("%.1f", s.LockLatency.Mean())
		}
		t.AddRow(c.proto, c.scheme.String(), perOp(txns, pairs), perOp(cycles, pairs), lat)
	}
	return t
}

// E2BusyWait quantifies Section E.4's first purpose — eliminating
// unsuccessful retries from the bus — across contender counts.
func E2BusyWait() *stats.Table {
	t := stats.NewTable("E2. Busy wait (Section E.4): lock-related bus transactions per acquisition",
		"contenders", "bitar cache-lock", "illinois ttas", "illinois tas", "rudolph ttas")
	for _, procs := range []int{2, 4, 8} {
		row := []string{fmt.Sprintf("%d", procs)}
		for _, c := range []struct {
			proto  string
			scheme syncprim.Scheme
		}{
			{"bitar", syncprim.CacheLock},
			{"illinois", syncprim.TTAS},
			{"illinois", syncprim.TAS},
			{"rudolph", syncprim.TTAS},
		} {
			s, l := rig(c.proto, procs, 64, false, g4)
			w := workload.LockContention{Locks: 1, Iters: 20, HoldCycles: 40,
				Scheme: c.scheme, Seed: 23}
			mustRun(s, w.Build(l, procs))
			acq := int64(procs * 20)
			// Lock-related traffic: everything except the (absent)
			// data traffic — these workloads only touch the lock.
			txns := s.Bus.Counts.Total("bus.")
			row = append(row, perOp(txns, acq))
		}
		t.AddRow(row...)
	}
	return t
}

// E3SharedData is Section D.2's analysis: write-in versus
// write-through (update) for actively shared data, sweeping the
// number of writes per lock hold ("inappropriate for an atom whose
// blocks are written more than a few times while the atom is
// locked").
func E3SharedData() *stats.Table {
	t := stats.NewTable("E3. Shared data, write-in vs write-through (Section D.2): bus cycles per item passed",
		"writes/hold", "bitar (write-in)", "dragon (update)", "firefly (update)", "writethrough")
	for _, n := range []int{1, 2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d", n)}
		for _, proto := range []string{"bitar", "dragon", "firefly", "writethrough"} {
			s, l := rig(proto, 2, 64, false, g4)
			scheme := syncprim.SchemeFor(s.Protocol())
			w := workload.ProducerConsumer{Items: 25, WritesPerItem: n, Scheme: scheme}
			mustRun(s, w.Build(l, 2))
			row = append(row, perOp(s.Counts.Get("bus.cycles"), 25))
		}
		t.AddRow(row...)
	}
	return t
}

// E4TransferUnits is Section D.3: internal fragmentation under
// write-in, with and without sub-block transfer units.
func E4TransferUnits() *stats.Table {
	t := stats.NewTable("E4. Transfer units (Section D.3): bus words moved, 2-word atom in a block",
		"block words", "whole-block transfer", "2-word transfer units", "savings")
	for _, bw := range []int{2, 4, 8, 16} {
		var words [2]int64
		for i, unitMode := range []bool{false, true} {
			unit := bw
			if unitMode {
				unit = 2
			}
			s, l := rig("bitar", 4, 64, unitMode, addr.MustGeometry(bw, unit))
			w := workload.LockContention{Locks: 1, Iters: 25, HoldCycles: 5, CSWrites: 1,
				Scheme: syncprim.CacheLock, Seed: 29}
			mustRun(s, w.Build(l, 4))
			words[i] = s.Counts.Get("bus.words")
		}
		saving := "n/a"
		if words[0] > 0 {
			saving = stats.Pct(words[0]-words[1], words[0])
		}
		t.AddRow(fmt.Sprintf("%d", bw), fmt.Sprintf("%d", words[0]), fmt.Sprintf("%d", words[1]), saving)
	}
	return t
}

// E5InvalidateSignal is Feature 4: gaining write privilege with a
// one-cycle invalidation instead of an invalidating word write. The
// paper argues the fractional increase in bus traffic without the
// signal "appears to be much less than 1/n" for n-word blocks: the
// invalidation write-through moves one word against the n-word block
// transfers that dominate the traffic. Measured in bus words over a
// workload of block fetches with occasional writes to shared blocks.
func E5InvalidateSignal() *stats.Table {
	t := stats.NewTable("E5. Bus invalidate signal (Feature 4): bus words, fetch-dominated workload",
		"block words n", "goodman (write-through inv)", "synapse (1-cycle inv)", "delta", "1/n bound")
	for _, bw := range []int{2, 4, 8, 16} {
		var words [2]int64
		for i, proto := range []string{"goodman", "synapse"} {
			s, l := rig(proto, 2, 8, false, addr.MustGeometry(bw, bw))
			// A sweep of read misses (block transfers) with one shared
			// write hit per eight fetches — the invalidation events.
			ws := []func(*sim.Proc){
				func(p *sim.Proc) {
					for k := 0; k < 160; k++ {
						p.Read(l.G.Base(l.SharedBlock(k % 24)))
						if k%8 == 0 {
							p.Read(l.G.Base(l.SharedBlock(100)))
							p.Write(l.G.Base(l.SharedBlock(100)), uint64(k))
						}
					}
				},
				func(p *sim.Proc) {
					for k := 0; k < 160; k++ {
						p.Read(l.G.Base(l.SharedBlock(100))) // keep the block shared
						p.Compute(9)
					}
				},
			}
			mustRun(s, ws)
			words[i] = s.Counts.Get("bus.words")
		}
		delta := "n/a"
		if words[1] > 0 {
			delta = stats.Pct(words[0]-words[1], words[1])
		}
		t.AddRow(fmt.Sprintf("%d", bw), fmt.Sprintf("%d", words[0]), fmt.Sprintf("%d", words[1]),
			delta, stats.Pct(1, int64(bw)))
	}
	return t
}

// E6ReadForWrite is Feature 5: fetching unshared data for write
// privilege on a read miss, dynamic (hit line) and static (compiler)
// variants against a protocol without the feature.
func E6ReadForWrite() *stats.Table {
	t := stats.NewTable("E6. Fetch unshared data for write privilege (Feature 5): private read-then-write sweeps",
		"protocol", "variant", "bus txns", "bus cycles", "upgrades paid")
	cases := []struct {
		proto   string
		static  bool
		variant string
	}{
		{"goodman", false, "absent"},
		{"illinois", false, "dynamic (D)"},
		{"bitar", false, "dynamic (D)"},
		{"yen", true, "static (S)"},
		{"berkeley", true, "static (S)"},
		{"yen", false, "static unused"},
	}
	for _, c := range cases {
		s, l := rig(c.proto, 2, 128, false, g4)
		w := workload.PrivateRuns{Blocks: 32, Sweeps: 2, WriteBack: 1.0, Static: c.static, Seed: 31}
		mustRun(s, w.Build(l, 2))
		t.AddRow(c.proto, c.variant,
			fmt.Sprintf("%d", s.Bus.Counts.Total("bus.")),
			fmt.Sprintf("%d", s.Counts.Get("bus.cycles")),
			fmt.Sprintf("%d", s.Bus.Counts.Get("bus.upgrade")+s.Bus.Counts.Get("bus.writeword")))
	}
	return t
}

// E7SourcePolicy is Feature 8: who supplies a read-shared block —
// arbitrated multiple sources (Illinois), single source with memory
// fallback (Berkeley), or last-fetcher-becomes-source (the paper).
func E7SourcePolicy() *stats.Table {
	t := stats.NewTable("E7. Source policy for read-shared blocks (Feature 8)",
		"protocol", "policy", "bus cycles", "memory supplies", "cache supplies")
	for _, proto := range []string{"illinois", "berkeley", "bitar"} {
		s, l := rig(proto, 4, 8, false, g4)
		// All processors repeatedly read a set of shared blocks larger
		// than one cache's capacity, forcing purges and re-fetches.
		ws := make([]func(*sim.Proc), 4)
		for i := range ws {
			i := i
			ws[i] = func(p *sim.Proc) {
				for k := 0; k < 60; k++ {
					p.Read(l.G.Base(l.SharedBlock((k + i*3) % 12)))
					p.Compute(3)
				}
			}
		}
		mustRun(s, ws)
		agg := s.Stats()
		t.AddRow(proto, s.Protocol().Features().SourcePolicy,
			fmt.Sprintf("%d", s.Counts.Get("bus.cycles")),
			fmt.Sprintf("%d", agg.Get("mem.supply")),
			fmt.Sprintf("%d", agg.Get("snoop.supply")))
	}
	return t
}

// E8WriteNoFetch is Feature 9: saving process state without fetching
// the blocks about to be overwritten.
func E8WriteNoFetch() *stats.Table {
	t := stats.NewTable("E8. Writing without fetch on write miss (Feature 9): process-switch state save",
		"protocol", "feature", "bus cycles/switch", "fetches paid")
	for _, proto := range []string{"bitar", "berkeley", "illinois", "goodman"} {
		s, l := rig(proto, 2, 64, false, g4)
		const switches, blocks = 10, 4
		w := workload.StateSave{Switches: switches, StateBlocks: blocks}
		mustRun(s, w.Build(l, 2))
		fetches := s.Bus.Counts.Get("bus.read") + s.Bus.Counts.Get("bus.readx")
		t.AddRow(proto, check(s.Protocol().Features().WriteNoFetch),
			perOp(s.Counts.Get("bus.cycles"), switches*2),
			fmt.Sprintf("%d", fetches))
	}
	return t
}

// E9Protocols is the Archibald-Baer-style cross-protocol comparison
// the paper looks forward to (Section G.2): one mixed workload over
// every implemented protocol.
func E9Protocols() *stats.Table {
	t := stats.NewTable("E9. Cross-protocol comparison: mixed workload (35% writes, 30% shared)",
		"protocol", "policy", "total cycles", "bus cycles", "bus words", "invalidations", "updates", "proc idle")
	for _, name := range all.Everything {
		s, l := rig(name, 4, 32, false, g4)
		w := workload.Mixed{Ops: 400, SharedBlocks: 8, PrivBlocks: 24,
			SharedFrac: 0.3, WriteFrac: 0.35, Seed: 37}
		mustRun(s, w.Build(l, 4))
		agg := s.Stats()
		// Section D.1: write-in reduces "bus traffic and concomitant
		// processor idle time" — report the idle fraction directly.
		idle := stats.Pct(agg.Get("proc.stall-cycles"), 4*s.Clock())
		t.AddRow(name, string(s.Protocol().Features().Policy),
			fmt.Sprintf("%d", s.Clock()),
			fmt.Sprintf("%d", s.Counts.Get("bus.cycles")),
			fmt.Sprintf("%d", s.Counts.Get("bus.words")),
			fmt.Sprintf("%d", agg.Get("snoop.invalidated")),
			fmt.Sprintf("%d", agg.Get("snoop.update")),
			idle)
	}
	return t
}

// E10RudolphSegall compares the two efficient-busy-wait designs the
// paper discusses (Section E.4): Rudolph-Segall's update-invalid-copy
// scheme versus the lock state plus busy-wait register.
func E10RudolphSegall() *stats.Table {
	t := stats.NewTable("E10. Efficient busy wait (Section E.4): lock handoff chains",
		"scheme", "bus txns/acquisition", "bus cycles/acquisition", "total cycles")
	const procs, iters = 4, 25
	cases := []struct {
		label  string
		proto  string
		scheme syncprim.Scheme
	}{
		{"bitar lock state + busy-wait register", "bitar", syncprim.CacheLock},
		{"rudolph-segall dynamic WT/WI", "rudolph", syncprim.TTAS},
		{"illinois ttas (no busy-wait support)", "illinois", syncprim.TTAS},
	}
	for _, c := range cases {
		s, l := rig(c.proto, procs, 64, false, g4)
		w := workload.LockContention{Locks: 1, Iters: iters, HoldCycles: 30,
			Scheme: c.scheme, Seed: 41}
		mustRun(s, w.Build(l, procs))
		acq := int64(procs * iters)
		t.AddRow(c.label,
			perOp(s.Bus.Counts.Total("bus."), acq),
			perOp(s.Counts.Get("bus.cycles"), acq),
			fmt.Sprintf("%d", s.Clock()))
	}
	return t
}

// E11Directory is Feature 3's question: is the frequency of write
// hits to clean blocks — the events that update dirty status in the
// bus directory — high enough to warrant non-identical directories?
// Bitar 1985 estimates 0.2%-1.2% of references from Smith's data.
func E11Directory() *stats.Table {
	t := stats.NewTable("E11. Dirty-status update interference (Feature 3): write hits to clean blocks",
		"protocol", "references", "write-hit-clean", "frequency", "paper estimate")
	for _, name := range []string{"bitar", "illinois", "berkeley", "goodman"} {
		s, l := rig(name, 4, 64, false, g4)
		// Mostly re-referencing a resident working set: misses are
		// rare, writes mostly hit already-dirty blocks.
		w := workload.Mixed{Ops: 2000, SharedBlocks: 4, PrivBlocks: 12,
			SharedFrac: 0.1, WriteFrac: 0.30, Seed: 43}
		mustRun(s, w.Build(l, 4))
		agg := s.Stats()
		refs := agg.Total("proc.hit.") + agg.Total("proc.miss.") + agg.Total("proc.busop.")
		whc := agg.Get("dir.write-hit-clean")
		t.AddRow(name, fmt.Sprintf("%d", refs), fmt.Sprintf("%d", whc),
			stats.Pct(whc, refs), "0.2%-1.2%")
	}
	return t
}

// E12RMWMethods compares the four atomic read-modify-write methods of
// Feature 6 under contention.
func E12RMWMethods() *stats.Table {
	t := stats.NewTable("E12. Atomic read-modify-write methods (Feature 6): contended counter",
		"method", "protocol", "bus cycles/op", "aborts", "total cycles")
	const procs, iters = 4, 30
	cases := []struct {
		m     syncprim.RMWMethod
		proto string
	}{
		{syncprim.MethodMemoryHold, "bitar"},
		{syncprim.MethodCacheHold, "bitar"},
		{syncprim.MethodOptimistic, "bitar"},
		{syncprim.MethodLockState, "bitar"},
		{syncprim.MethodCacheHold, "illinois"},
		{syncprim.MethodOptimistic, "illinois"},
	}
	for _, c := range cases {
		s, l := rig(c.proto, procs, 64, false, g4)
		a := l.G.Base(l.SharedBlock(0))
		ws := make([]func(*sim.Proc), procs)
		for i := range ws {
			ws[i] = func(p *sim.Proc) {
				for k := 0; k < iters; k++ {
					syncprim.AtomicAdd(p, c.m, a, 1)
					p.Compute(8)
				}
			}
		}
		mustRun(s, ws)
		agg := s.Stats()
		t.AddRow(c.m.String(), c.proto,
			perOp(s.Counts.Get("bus.cycles"), int64(procs*iters)),
			fmt.Sprintf("%d", agg.Get("rmw.abort")+agg.Get("sync.optimistic-retry")),
			fmt.Sprintf("%d", s.Clock()))
	}
	return t
}

// E13IO exercises the three I/O transfer kinds of Section E.2.
func E13IO() *stats.Table {
	t := stats.NewTable("E13. I/O transfer (Section E.2)",
		"operation", "bus cmd", "source keeps status", "cached copies after")
	s, l := rig("bitar", 2, 64, false, g4)
	blk := l.SharedBlock(0)
	a := l.G.Base(blk)
	mustRun(s, []func(*sim.Proc){
		func(p *sim.Proc) {
			p.Write(a, 5) // dirty in cache 0
			p.IO(sim.IOOutput, a, nil)
			keeps := s.Caches[0].State(blk)
			t.AddRow("non-paging output", "ioread", check(s.Protocol().IsSource(keeps)),
				s.Protocol().StateName(keeps))
			p.IO(sim.IOPageOut, a, nil)
			t.AddRow("paging out", "readx", "", s.Protocol().StateName(s.Caches[0].State(blk)))
			p.Write(a, 6)
			p.IO(sim.IOInput, a, []uint64{9, 9, 9, 9})
			t.AddRow("input", "iowrite", "", s.Protocol().StateName(s.Caches[0].State(blk)))
		}, nil,
	})
	return t
}

// E14LockPurge exercises Section E.3's purged-lock path: a small-set
// cache evicts a locked block, the lock bit moves to memory, denials
// and reclaim work, and no increment is lost.
func E14LockPurge() *stats.Table {
	t := stats.NewTable("E14. Lock purge to memory (Section E.3)",
		"cache ways", "lock purges", "memory denials asserted", "reclaims", "counter exact")
	for _, ways := range []int{1, 2, 64} {
		s, l := rig("bitar", 3, ways, false, g4)
		lock := l.LockAddr(0)
		const iters = 10
		ws := make([]func(*sim.Proc), 3)
		for i := range ws {
			ws[i] = func(p *sim.Proc) {
				for k := 0; k < iters; k++ {
					v := p.LockRead(lock)
					// Touch enough blocks to evict the locked one in a
					// tiny cache.
					p.Read(l.G.Base(l.PrivateBlock(p.ID(), k%4)))
					p.Read(l.G.Base(l.PrivateBlock(p.ID(), 4+k%4)))
					p.UnlockWrite(lock, v+1)
				}
			}
		}
		mustRun(s, ws)
		var final uint64
		final = s.Mem.ReadWord(lock)
		for _, c := range s.Caches {
			if v, ok := c.ReadWord(lock); ok && c.Protocol().IsDirty(c.State(l.G.BlockOf(lock))) {
				final = v
			}
		}
		t.AddRow(fmt.Sprintf("%d", ways),
			fmt.Sprintf("%d", s.Counts.Get("evict.lockpurge")),
			fmt.Sprintf("%d", s.Stats().Get("snoop.locked-denial")+s.Counts.Get("lock.denied")),
			fmt.Sprintf("%d", s.Counts.Get("lock.reclaim")),
			check(final == 3*iters))
	}
	return t
}

// E15Broadcast is Section A.2's motivation for full broadcast: "the
// operation is entirely distributed and parallel, hence is fast" —
// compared against the Censier-Feautrier directory scheme, whose
// consistency messages are looked up and delivered point-to-point.
func E15Broadcast() *stats.Table {
	t := stats.NewTable("E15. Full broadcast vs partial broadcast (Section A.2): sharing-heavy workload",
		"protocol", "organization", "total cycles", "bus cycles", "directory messages")
	for _, proto := range []string{"bitar", "illinois", "goodman", "censier"} {
		for _, sharers := range []int{2, 8} {
			s, l := rig(proto, sharers, 32, false, g4)
			w := workload.Mixed{Ops: 150, SharedBlocks: 6, PrivBlocks: 8,
				SharedFrac: 0.6, WriteFrac: 0.35, Seed: 47}
			mustRun(s, w.Build(l, sharers))
			org := "broadcast"
			if s.Protocol().Features().PartialBroadcast {
				org = "directory"
			}
			t.AddRow(fmt.Sprintf("%s (%d procs)", proto, sharers), org,
				fmt.Sprintf("%d", s.Clock()),
				fmt.Sprintf("%d", s.Counts.Get("bus.cycles")),
				fmt.Sprintf("%d", s.Counts.Get("dir.msgs")))
		}
	}
	return t
}

// E16WorkWhileWaiting is Section E.4's second purpose: "relieve a
// waiting processor of polling the status of a lock, allowing it to
// work while waiting" — lock prefetch with a ready section against
// blocking acquisition, sweeping the ready-section length.
func E16WorkWhileWaiting() *stats.Table {
	t := stats.NewTable("E16. Work while waiting (Section E.4): ready section overlapping an expected wait",
		"ready section (cycles)", "hold (cycles)", "blocked wait/acq", "prefetch wait/acq", "wait hidden")
	const iters = 20
	// One holder occupies the lock for `hold` cycles; the other
	// processor has `ready` cycles of independent work per iteration.
	// Prefetching before the ready section lets the busy-wait
	// register absorb the wait ("the offset depending on the expected
	// wait time").
	for _, cfg := range []struct{ ready, hold int64 }{
		{0, 100}, {50, 100}, {100, 100}, {100, 40},
	} {
		var waits [2]int64
		for i, usePrefetch := range []bool{false, true} {
			s, l := rig("bitar", 2, 64, false, g4)
			lock := l.LockAddr(0)
			var waited int64
			ws := []func(*sim.Proc){
				func(p *sim.Proc) {
					for k := 0; k < iters; k++ {
						v := p.LockRead(lock)
						p.Compute(cfg.hold)
						p.UnlockWrite(lock, v+1)
						p.Compute(10)
					}
				},
				func(p *sim.Proc) {
					for k := 0; k < iters; k++ {
						if usePrefetch {
							p.LockPrefetch(lock)
							p.Compute(cfg.ready)
							start := p.Now()
							v := p.LockWait(lock)
							waited += p.Now() - start
							p.UnlockWrite(lock, v+1)
						} else {
							p.Compute(cfg.ready)
							start := p.Now()
							v := p.LockRead(lock)
							waited += p.Now() - start
							p.UnlockWrite(lock, v+1)
						}
					}
				},
			}
			mustRun(s, ws)
			waits[i] = waited / iters
		}
		hidden := "n/a"
		if waits[0] > 0 {
			hidden = stats.Pct(waits[0]-waits[1], waits[0])
		}
		t.AddRow(fmt.Sprintf("%d", cfg.ready), fmt.Sprintf("%d", cfg.hold),
			fmt.Sprintf("%d", waits[0]), fmt.Sprintf("%d", waits[1]), hidden)
	}
	return t
}

// E17SleepWait is Section B.2's second reason for busy wait: software
// sleep wait is built on busy-wait-protected queues, and the global
// ready queue is the high-contention atom whose manipulation costs
// "several block fetches, say three or four, per queue" — so the
// efficiency of busy-wait locking governs scheduler throughput.
func E17SleepWait() *stats.Table {
	t := stats.NewTable("E17. Software sleep wait (Section B.2): global ready-queue scheduler",
		"protocol", "scheme", "total cycles", "cycles/dispatch", "queue-lock bus txns")
	const workers, processes, dispatches = 4, 8, 12
	cases := []struct {
		proto  string
		scheme syncprim.Scheme
	}{
		{"bitar", syncprim.CacheLock},
		{"bitar", syncprim.TTAS},
		{"illinois", syncprim.TTAS},
		{"illinois", syncprim.TAS},
	}
	for _, c := range cases {
		s, l := rig(c.proto, workers, 64, false, g4)
		sched := schedqueue.NewScheduler(schedqueue.SchedulerConfig{
			Geometry:  l.G,
			LockBlock: 0, DescBlock: 2,
			Capacity:  processes + 2,
			StateBase: 200, StateBlocks: 2,
			Quantum: 30,
			Scheme:  c.scheme,
		})
		ws := make([]func(*sim.Proc), workers)
		ws[0] = func(p *sim.Proc) {
			sched.Seed(p, processes)
			sched.Worker(dispatches)(p)
		}
		for i := 1; i < workers; i++ {
			ws[i] = func(p *sim.Proc) {
				p.Compute(80)
				sched.Worker(dispatches)(p)
			}
		}
		mustRun(s, ws)
		total := int64(workers * dispatches)
		t.AddRow(c.proto, c.scheme.String(),
			fmt.Sprintf("%d", s.Clock()),
			perOp(s.Clock(), total),
			fmt.Sprintf("%d", s.Bus.Counts.Total("bus.")))
	}
	return t
}

// E18DualBus is Section A.2's observation that broadcast appears in
// single- and dual-bus systems: the same workload on one block-
// interleaved bus versus two, sweeping processor count.
func E18DualBus() *stats.Table {
	t := stats.NewTable("E18. Single vs dual bus (Section A.2): mixed workload",
		"processors", "1-bus total cycles", "2-bus total cycles", "speedup")
	for _, procs := range []int{2, 4, 8} {
		var clocks [2]int64
		for i, buses := range []int{1, 2} {
			p := protocol.MustNew("bitar")
			cfg := sim.DefaultConfig(p)
			cfg.Procs = procs
			cfg.NumBuses = buses
			cfg.Cache = cache.Config{Sets: 1, Ways: 16}
			s := sim.New(cfg)
			l := workload.Layout{G: s.Geometry()}
			w := workload.Mixed{Ops: 300, SharedBlocks: 8, PrivBlocks: 24,
				SharedFrac: 0.3, WriteFrac: 0.35, Seed: 59}
			mustRun(s, w.Build(l, procs))
			clocks[i] = s.Clock()
		}
		t.AddRow(fmt.Sprintf("%d", procs),
			fmt.Sprintf("%d", clocks[0]), fmt.Sprintf("%d", clocks[1]),
			stats.Ratio(clocks[0], clocks[1]))
	}
	return t
}

// E19Aquarius is Figure 11's design rationale (Section G.1): putting
// the synchronization data on its own full-broadcast bus and the
// instructions/non-synchronization data on a crossbar, versus pushing
// everything through one broadcast bus.
func E19Aquarius() *stats.Table {
	t := stats.NewTable("E19. Aquarius two-tier split (Figure 11, Section G.1): Prolog-style workload",
		"organization", "total cycles", "sync-bus cycles", "crossbar accesses")
	const procs, rounds = 4, 25

	// Two-tier: locks/queues on the sync bus, data via the crossbar.
	a := aquarius.New(aquarius.DefaultConfig(procs))
	l := workload.Layout{G: a.Sync.Geometry()}
	twoTier := make([]func(*sim.Proc), procs)
	for i := range twoTier {
		i := i
		twoTier[i] = func(p *sim.Proc) {
			for k := 0; k < rounds; k++ {
				for pc := 0; pc < 4; pc++ {
					a.InstrFetch(p, addr.Addr(4096+i*64+pc))
				}
				a.DataWrite(p, addr.Addr(8192+i*rounds+k), uint64(k))
				lock := l.LockAddr(2 + (i+k)%procs)
				syncprim.Acquire(p, syncprim.CacheLock, lock)
				p.Write(l.G.Base(l.SharedBlock(1+(i+k)%procs)), uint64(k))
				syncprim.Release(p, syncprim.CacheLock, lock)
			}
		}
	}
	mustRun(a.Sync, twoTier)
	t.AddRow("two-tier (sync bus + crossbar)",
		fmt.Sprintf("%d", a.Sync.Clock()),
		fmt.Sprintf("%d", a.Sync.Counts.Get("bus.cycles")),
		fmt.Sprintf("%d", a.Counts.Get("xbar.access")))

	// One-tier: the same references all through the broadcast bus.
	s1, l1 := rig("bitar", procs, 128, false, g4)
	oneTier := make([]func(*sim.Proc), procs)
	for i := range oneTier {
		i := i
		oneTier[i] = func(p *sim.Proc) {
			for k := 0; k < rounds; k++ {
				for pc := 0; pc < 4; pc++ {
					p.Read(l1.G.Base(l1.PrivateBlock(i, pc)))
				}
				p.Write(l1.G.Base(l1.PrivateBlock(i, 64+(k%32))), uint64(k))
				lock := l1.LockAddr(2 + (i+k)%procs)
				syncprim.Acquire(p, syncprim.CacheLock, lock)
				p.Write(l1.G.Base(l1.SharedBlock(1+(i+k)%procs)), uint64(k))
				syncprim.Release(p, syncprim.CacheLock, lock)
			}
		}
	}
	mustRun(s1, oneTier)
	t.AddRow("one-tier (everything on the broadcast bus)",
		fmt.Sprintf("%d", s1.Clock()),
		fmt.Sprintf("%d", s1.Counts.Get("bus.cycles")),
		"0")
	return t
}

// AllExperiments runs every experiment table in order.
func AllExperiments() []*stats.Table {
	return []*stats.Table{
		E1LockCost(), E2BusyWait(), E3SharedData(), E4TransferUnits(),
		E5InvalidateSignal(), E6ReadForWrite(), E7SourcePolicy(),
		E8WriteNoFetch(), E9Protocols(), E10RudolphSegall(),
		E11Directory(), E12RMWMethods(), E13IO(), E14LockPurge(),
		E15Broadcast(), E16WorkWhileWaiting(), E17SleepWait(),
		E18DualBus(), E19Aquarius(), E20BroadcastFraction(),
		E21Disaggregated(),
	}
}

// mustRunPrograms is mustRun for direct-execution programs.
func mustRunPrograms(s *sim.System, progs []sim.Program) {
	if err := s.RunPrograms(progs); err != nil {
		panic(fmt.Sprintf("report: experiment run failed: %v", err))
	}
}

// E20BroadcastFraction is Section G's quantitative core: once every
// reference carries a routing class, only the synchronization
// references need the full-broadcast bus — the crossbar absorbs the
// rest. The same classified programs run on the routed two-tier
// machine and, unchanged, on a one-bus baseline (classes are inert
// without a lower tier), so the cycle columns compare matched
// reference streams.
func E20BroadcastFraction() *stats.Table {
	t := stats.NewTable("E20. Broadcast fraction on the two-tier machine (Section G): classified workloads vs one-bus baseline",
		"workload", "references", "broadcast refs", "fraction", "two-tier cycles", "one-bus cycles")
	const procs = 4
	cases := []struct {
		name string
		gen  interface {
			Programs(workload.Layout, int) []sim.Program
		}
	}{
		{"mixed", workload.Mixed{Ops: 300, SharedBlocks: 8, PrivBlocks: 24,
			SharedFrac: 0.3, WriteFrac: 0.35, Seed: 59}},
		{"lockdata", workload.LockedData{Locks: 2, Iters: 15, Records: 6,
			Instrs: 4, Think: 10, Scheme: syncprim.CacheLock, Seed: 61}},
	}
	for _, c := range cases {
		cfg := aquarius.DefaultConfig(procs)
		cfg.Routed = true
		a := aquarius.New(cfg)
		l := workload.Layout{G: a.Sync.Geometry()}
		mustRunPrograms(a.Sync, c.gen.Programs(l, procs))
		syncRefs, total := a.BroadcastFraction()

		s1 := sim.New(aquarius.DefaultConfig(procs).Sync)
		l1 := workload.Layout{G: s1.Geometry()}
		mustRunPrograms(s1, c.gen.Programs(l1, procs))

		t.AddRow(c.name,
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%d", syncRefs),
			fmt.Sprintf("%.1f%%", 100*float64(syncRefs)/float64(total)),
			fmt.Sprintf("%d", a.Clock()),
			fmt.Sprintf("%d", s1.Clock()))
	}
	return t
}

// E21Disaggregated is the Soul/GCS stretch: the crossbar tier moves
// behind a latency- and occupancy-costed remote link, and lock
// hand-off degrades as the link gets slower — the data a critical
// section touches now crosses the link even though the lock word
// itself stays on the local broadcast bus.
func E21Disaggregated() *stats.Table {
	t := stats.NewTable("E21. Disaggregated lower tier (Soul/GCS): lock hand-off vs remote-link latency",
		"remote cycles", "scheme", "total cycles", "mean lock acquire", "spin retries", "remote waits")
	const procs = 4
	schemes := []struct {
		name string
		s    syncprim.Scheme
	}{
		{"cachelock", syncprim.CacheLock},
		{"ttas", syncprim.TTAS},
	}
	for _, remote := range []int{0, 16, 64, 256} {
		for _, sch := range schemes {
			cfg := aquarius.DefaultConfig(procs)
			cfg.Routed = true
			cfg.RemoteCycles = remote
			a := aquarius.New(cfg)
			l := workload.Layout{G: a.Sync.Geometry()}
			ld := workload.LockedData{Locks: 1, Iters: 15, Records: 6,
				Instrs: 4, Think: 10, Scheme: sch.s, Seed: 61}
			mustRunPrograms(a.Sync, ld.Programs(l, procs))

			mean := "-"
			if a.Sync.LockLatency.Count() > 0 {
				mean = fmt.Sprintf("%.1f", a.Sync.LockLatency.Mean())
			}
			st := a.Stats()
			retries := st.Get("sync.tas-retry") + st.Get("sync.optimistic-retry")
			waits := st.Get("remote.req-wait") + st.Get("remote.resp-wait")
			t.AddRow(fmt.Sprintf("%d", remote), sch.name,
				fmt.Sprintf("%d", a.Clock()), mean,
				fmt.Sprintf("%d", retries), fmt.Sprintf("%d", waits))
		}
	}
	return t
}
