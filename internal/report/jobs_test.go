package report

import (
	"strings"
	"testing"

	"cachesync/internal/runner"
)

// TestSuiteByteIdenticalAcrossWorkers is the acceptance check for the
// parallel experiment engine: regenerating the full suite with -j 8
// (or any pool size) produces output byte-identical to -j 1.
func TestSuiteByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full experiment suite")
	}
	jobs := AllJobs(false)
	seq, err := runner.Run(jobs, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.AllPass() {
		t.Fatalf("an artifact diverged from the paper:\n%s", seq.Output())
	}
	for _, workers := range []int{4, 8} {
		par, err := runner.Run(jobs, runner.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Output() != seq.Output() {
			t.Errorf("workers=%d output is not byte-identical to sequential (%d vs %d bytes)",
				workers, len(par.Output()), len(seq.Output()))
		}
	}
}

func TestParseSweepSpec(t *testing.T) {
	got, err := ParseSweepSpec("procs=2..5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Fatalf("procs=2..5 -> %v", got)
	}
	for _, bad := range []string{"", "procs=", "procs=5..2", "procs=0..3", "ways=2..4", "procs=a..b"} {
		if _, err := ParseSweepSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestSweepJobsAssembleIntoTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	protos := []string{"bitar", "illinois"}
	jobs := SweepJobs(protos, []int{2, 3})
	if len(jobs) != 4 {
		t.Fatalf("want 4 sweep cells, got %d", len(jobs))
	}
	res, err := runner.Run(jobs, runner.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb := SweepTable(res.Output())
	if tb.NumRows() != 4 {
		t.Fatalf("sweep table has %d rows, want 4", tb.NumRows())
	}
	rendered := tb.Render()
	for _, want := range []string{"bitar", "illinois"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("sweep table missing %s:\n%s", want, rendered)
		}
	}
}
