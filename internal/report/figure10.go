package report

import (
	"fmt"

	"cachesync/internal/bus"
	"cachesync/internal/core"
	"cachesync/internal/protocol"
	"cachesync/internal/stats"
)

// coreStates are the eight states of Figure 10 in presentation order.
var coreStates = []protocol.State{
	core.I, core.R, core.RSC, core.RSD, core.WSC, core.WSD, core.LSD, core.LSDW,
}

// Figure10Processor renders the processor-request half of Figure 10:
// for each state and processor operation, the resulting state or the
// bus request issued.
func Figure10Processor() *stats.Table {
	p := core.Protocol{}
	t := stats.NewTable("Figure 10 (processor side): state × processor request → action",
		"state", "read", "write", "lock", "unlock", "writeblock")
	ops := []protocol.Op{protocol.OpRead, protocol.OpWrite, protocol.OpLock, protocol.OpUnlock, protocol.OpWriteBlock}
	for _, s := range coreStates {
		row := []string{p.StateName(s)}
		for _, op := range ops {
			r := p.ProcAccess(s, op)
			if r.Hit {
				row = append(row, "-> "+p.StateName(r.NewState))
			} else {
				cell := "bus:" + r.Cmd.String()
				if r.LockIntent {
					cell += "+lock"
				}
				row = append(row, cell)
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Figure10Bus renders the bus-request half of Figure 10: for each
// state and snooped bus request, the next state and asserted lines.
func Figure10Bus() *stats.Table {
	p := core.Protocol{}
	t := stats.NewTable("Figure 10 (bus side): state × snooped bus request → next state [lines]",
		"state", "read", "readx", "upgrade", "writenofetch", "unlock")
	cmds := []bus.Cmd{bus.Read, bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.Unlock}
	for _, s := range coreStates {
		row := []string{p.StateName(s)}
		for _, cmd := range cmds {
			r := p.Snoop(s, &bus.Transaction{Cmd: cmd})
			cell := "-> " + p.StateName(r.NewState)
			switch {
			case r.Locked:
				cell += " [locked]"
			case r.Supply && r.Dirty:
				cell += " [supply,dirty]"
			case r.Supply:
				cell += " [supply]"
			case r.Hit:
				cell += " [hit]"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}

// figure10Expected encodes the arcs of the paper's Figure 10 that are
// visible in the diagram (processor side), as
// state -> op -> expected outcome. "->X" means a silent transition to
// state X; "bus:c" means bus command c is issued.
var figure10Expected = []struct {
	state protocol.State
	op    protocol.Op
	want  string
}{
	// From Invalid.
	{core.I, protocol.OpRead, "bus:read"},
	{core.I, protocol.OpWrite, "bus:readx"},
	{core.I, protocol.OpLock, "bus:readx+lock"},
	{core.I, protocol.OpWriteBlock, "bus:writenofetch"},
	// From Read (non-source).
	{core.R, protocol.OpRead, "->R"},
	{core.R, protocol.OpWrite, "bus:upgrade"},
	{core.R, protocol.OpLock, "bus:upgrade+lock"},
	// From the read source states.
	{core.RSC, protocol.OpRead, "->R.S.C"},
	{core.RSD, protocol.OpRead, "->R.S.D"},
	{core.RSC, protocol.OpWrite, "bus:upgrade"},
	{core.RSD, protocol.OpWrite, "bus:upgrade"},
	// From the write source states (zero-time lock, silent writes).
	{core.WSC, protocol.OpWrite, "->W.S.D"},
	{core.WSD, protocol.OpWrite, "->W.S.D"},
	{core.WSC, protocol.OpLock, "->L.S.D"},
	{core.WSD, protocol.OpLock, "->L.S.D"},
	// From the lock states (zero-time unlock; broadcast with waiter).
	{core.LSD, protocol.OpUnlock, "->W.S.D"},
	{core.LSDW, protocol.OpUnlock, "bus:unlock"},
	{core.LSD, protocol.OpWrite, "->L.S.D"},
	{core.LSDW, protocol.OpWrite, "->L.S.D.W"},
}

// ExpectedArc is one processor-side arc of Figure 10 as transcribed
// from the paper: in State, operation Op produces Outcome ("->X" for a
// silent transition to state X, "bus:c" for bus command c).
type ExpectedArc struct {
	State   protocol.State
	Op      protocol.Op
	Outcome string
}

// Figure10ExpectedArcs returns the transcribed arc table for external
// cross-checks — the bounded model checker (internal/mcheck) compares
// it against the arcs actually exercised during exhaustive
// exploration, regenerating Figure 10 from reachability.
func Figure10ExpectedArcs() []ExpectedArc {
	out := make([]ExpectedArc, len(figure10Expected))
	for i, e := range figure10Expected {
		out[i] = ExpectedArc{State: e.state, Op: e.op, Outcome: e.want}
	}
	return out
}

// VerifyFigure10 checks the implemented state machine against the
// arcs transcribed from the paper's Figure 10, returning mismatches.
func VerifyFigure10() []string {
	p := core.Protocol{}
	var diffs []string
	for _, e := range figure10Expected {
		r := p.ProcAccess(e.state, e.op)
		var got string
		if r.Hit {
			got = "->" + p.StateName(r.NewState)
		} else {
			got = "bus:" + r.Cmd.String()
			if r.LockIntent {
				got += "+lock"
			}
		}
		if got != e.want {
			diffs = append(diffs, fmt.Sprintf("state %s op %s: got %q, paper arc %q",
				p.StateName(e.state), e.op, got, e.want))
		}
	}
	return diffs
}
