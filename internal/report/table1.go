// Package report regenerates the paper's evaluation artifacts from
// the implementations: Table 1 (the evolution matrix), Table 2 (the
// innovation summary), Figures 1-10 (protocol interaction scenarios
// and the state-transition table), and the quantitative experiment
// tables E1-E14 grounding the paper's qualitative claims.
package report

import (
	"fmt"
	"strings"

	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/stats"
)

func check(b bool) string {
	if b {
		return "yes"
	}
	return ""
}

// Table1 renders the paper's Table 1 — "Evolution of Full-Broadcast,
// Write-In (Write-Back), Cache-Synchronization Schemes" — from each
// protocol's self-reported Features.
func Table1() *stats.Table {
	cols := []string{"Row"}
	protos := make([]protocol.Protocol, 0, len(all.Table1Order))
	for _, name := range all.Table1Order {
		p := protocol.MustNew(name)
		protos = append(protos, p)
		cols = append(cols, fmt.Sprintf("%s (%d)", p.Features().Title, p.Features().Year))
	}
	t := stats.NewTable("Table 1. Evolution of Full-Broadcast, Write-In Cache-Synchronization Schemes", cols...)

	// States part (N = non-source state; S = source state).
	for _, row := range protocol.StateRows() {
		cells := []string{string("State: " + row)}
		for _, p := range protos {
			cells = append(cells, string(p.Features().States[row]))
		}
		t.AddRow(cells...)
	}

	type featureRow struct {
		label string
		get   func(protocol.Features) string
	}
	rows := []featureRow{
		{"1. Cache-to-cache transfer; serialization", func(f protocol.Features) string { return check(f.CacheToCache) }},
		{"2. Fully-distributed state information", func(f protocol.Features) string { return f.DistributedState }},
		{"3. Directory duality", func(f protocol.Features) string { return f.DirectoryOrg }},
		{"4. Bus invalidate signal", func(f protocol.Features) string { return check(f.BusInvalidateSignal) }},
		{"5. Fetch unshared for write privilege", func(f protocol.Features) string { return f.ReadForWrite }},
		{"6. Processor atomic read-modify-write", func(f protocol.Features) string { return check(f.AtomicRMW) }},
		{"7. Flushing on cache-to-cache transfer", func(f protocol.Features) string { return f.FlushOnTransfer }},
		{"8. Sources for read-privilege block", func(f protocol.Features) string { return f.SourcePolicy }},
		{"9. Writing without fetch on write miss", func(f protocol.Features) string { return check(f.WriteNoFetch) }},
		{"10. Efficient busy wait", func(f protocol.Features) string { return check(f.EfficientBusyWait) }},
	}
	for _, r := range rows {
		cells := []string{r.label}
		for _, p := range protos {
			cells = append(cells, r.get(p.Features()))
		}
		t.AddRow(cells...)
	}
	return t
}

// table1Expected is the matrix transcribed from the paper, used to
// cross-check the self-reported features. Keyed by protocol name;
// each value is states (8 marks, Table 1 row order) followed by the
// ten feature cells.
var table1Expected = map[string]struct {
	states   [8]protocol.SourceMark
	features [10]string
}{
	//         Inv  Read RC   RD   WC   WD   LD   LDW
	"goodman":  {[8]protocol.SourceMark{"N", "N", "", "", "N", "S", "", ""}, [10]string{"yes", "RWDS", "ID", "", "", "", "F", "", "", ""}},
	"synapse":  {[8]protocol.SourceMark{"N", "N", "", "", "", "S", "", ""}, [10]string{"yes", "RWD", "ID", "yes", "", "yes", "NF", "", "", ""}},
	"illinois": {[8]protocol.SourceMark{"N", "", "S", "", "S", "S", "", ""}, [10]string{"yes", "RWDS", "ID", "yes", "D", "yes", "F", "ARB", "", ""}},
	"yen":      {[8]protocol.SourceMark{"N", "N", "", "", "N", "S", "", ""}, [10]string{"yes", "RWDS", "", "yes", "S", "", "F", "", "", ""}},
	"berkeley": {[8]protocol.SourceMark{"N", "N", "", "S", "S", "S", "", ""}, [10]string{"yes", "RWDS", "DPR", "yes", "S", "yes", "NF,S", "MEM", "", ""}},
	"bitar":    {[8]protocol.SourceMark{"N", "N", "S", "S", "S", "S", "S", "S"}, [10]string{"yes", "RWLDS", "NID", "yes", "D", "yes", "NF,S", "LRU,MEM", "yes", "yes"}},
}

// VerifyTable1 compares every implementation's self-description
// against the matrix transcribed from the paper, returning a list of
// mismatches (empty when faithful).
func VerifyTable1() []string {
	var diffs []string
	for _, name := range all.Table1Order {
		p := protocol.MustNew(name)
		f := p.Features()
		want := table1Expected[name]
		for i, row := range protocol.StateRows() {
			if got := f.States[row]; got != want.states[i] {
				diffs = append(diffs, fmt.Sprintf("%s: state %q = %q, paper says %q", name, row, got, want.states[i]))
			}
		}
		got := [10]string{
			check(f.CacheToCache), f.DistributedState, f.DirectoryOrg,
			check(f.BusInvalidateSignal), f.ReadForWrite, check(f.AtomicRMW),
			f.FlushOnTransfer, f.SourcePolicy, check(f.WriteNoFetch),
			check(f.EfficientBusyWait),
		}
		for i := range got {
			if got[i] != want.features[i] {
				diffs = append(diffs, fmt.Sprintf("%s: feature %d = %q, paper says %q", name, i+1, got[i], want.features[i]))
			}
		}
	}
	return diffs
}

// Table2 renders the paper's Table 2 innovation summary, generated
// from the feature descriptors plus the historically attributed
// innovations.
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2. Innovation Summary\n\n")
	sections := []struct {
		head  string
		items []string
	}{
		{"Early Schemes (Sections F.1, F.2, E.4)", []string{
			"Classic (pre-1978) write-through: identical dual directories; broadcast an invalidation request on every write [writethrough]",
			"Censier, Feautrier (1978): partial-broadcast write-in; cache-to-cache transfer for dirty blocks; primitive efficient busy wait (loop on block in cache)",
		}},
		{"Full Broadcast, Write-In (Sections F, E.3, E.4)", []string{
			"Goodman (1983): identical dual directories; fully-distributed R/W/D/S status; cache-to-cache transfer (source status) for dirty blocks; flushing on transfer; serializing conflicting single reads and writes [goodman]",
			"Frank (1984): bus invalidate signal; no flushing on cache-to-cache transfer; memory source bit [synapse]",
			"Papamarcos, Patel (1984): source status for clean blocks; fetching unshared data for write privilege on read miss (dynamic, hit line); multiple sources with arbitration; serializing atomic read-modify-writes [illinois]",
			"Yen, Yen, Fu (1985): static determination of unshared status via program declaration [yen]",
			"Katz, Eggers, Wood, Perkins, Sheldon (1985): dirty read state (transfer without flushing); dual-ported-read directory; single source with memory fallback [berkeley]",
			"Our proposal: lock state for efficient busy-wait locking; lock-waiter state and busy-wait register for efficient waiting; interdirectory interference analysis; last-fetcher-becomes-source (LRU across caches); writing without fetch on write miss [bitar]",
		}},
		{"Write-In/Write-Through Schemes (Sections D.1, E.4)", []string{
			"Dragon (McCreight 1984): dynamic shared status via hit line; word-update broadcasts to other caches [dragon]",
			"Firefly (DEC): as Dragon, with updates written through to memory [firefly]",
			"Rudolph, Segall (1984): dynamic shared status via access interleaving; write-throughs update invalid copies; efficient busy wait [rudolph]",
		}},
	}
	for _, s := range sections {
		b.WriteString(s.head + "\n")
		for _, it := range s.items {
			b.WriteString("  - " + it + "\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
