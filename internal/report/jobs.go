package report

// Job definitions for the parallel experiment engine
// (internal/runner). Every table, experiment, ablation, and figure
// the sequential drivers used to print becomes one independent Job;
// the runner merges artifacts in job order, so parallel regeneration
// is byte-identical to the old sequential output.

import (
	"fmt"
	"strconv"
	"strings"

	"cachesync/internal/protocol/all"
	"cachesync/internal/runner"
	"cachesync/internal/stats"
	"cachesync/internal/workload"
)

// Experiments maps experiment IDs to their generators; ExperimentOrder
// gives the print order the drivers use.
var Experiments = map[string]func() *stats.Table{
	"E1": E1LockCost, "E2": E2BusyWait,
	"E3": E3SharedData, "E4": E4TransferUnits,
	"E5": E5InvalidateSignal, "E6": E6ReadForWrite,
	"E7": E7SourcePolicy, "E8": E8WriteNoFetch,
	"E9": E9Protocols, "E10": E10RudolphSegall,
	"E11": E11Directory, "E12": E12RMWMethods,
	"E13": E13IO, "E14": E14LockPurge,
	"E15": E15Broadcast, "E16": E16WorkWhileWaiting,
	"E17": E17SleepWait, "E18": E18DualBus,
	"E19": E19Aquarius, "E20": E20BroadcastFraction,
	"E21": E21Disaggregated,
}

// ExperimentOrder lists the quantitative experiments in print order.
var ExperimentOrder = []string{
	"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
	"E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19",
	"E20", "E21",
}

// tableArtifact renders a table exactly the way the sequential driver
// printed it: text via Println (render plus a blank separator line),
// CSV as title, rows, blank line.
func tableArtifact(t *stats.Table, csv bool) string {
	if csv {
		return t.Title + "\n" + t.CSV() + "\n"
	}
	return t.Render() + "\n"
}

// renderMode keys the cache on the output format.
func renderMode(csv bool) string {
	if csv {
		return "csv"
	}
	return "text"
}

func tableJob(name string, csv bool, f func() *stats.Table) runner.Job {
	return runner.Job{
		Name:       name,
		ConfigHash: renderMode(csv),
		Run: func() (runner.Artifact, error) {
			return runner.Artifact{Output: tableArtifact(f(), csv), Pass: true}, nil
		},
	}
}

// TableJobs covers Table 1 (with its cross-check against the matrix
// transcribed from the paper) and Table 2.
func TableJobs() []runner.Job {
	return []runner.Job{
		{Name: "table1", ConfigHash: "text", Run: func() (runner.Artifact, error) {
			var b strings.Builder
			b.WriteString(Table1().Render())
			b.WriteString("\n")
			diffs := VerifyTable1()
			if len(diffs) > 0 {
				b.WriteString("Table 1 mismatches against the paper:\n")
				for _, d := range diffs {
					b.WriteString("  " + d + "\n")
				}
			} else {
				b.WriteString("Table 1 matches the matrix transcribed from the paper.\n")
			}
			b.WriteString("\n")
			return runner.Artifact{Output: b.String(), Pass: len(diffs) == 0}, nil
		}},
		{Name: "table2", ConfigHash: "text", Run: func() (runner.Artifact, error) {
			return runner.Artifact{Output: Table2() + "\n", Pass: true}, nil
		}},
	}
}

// ExperimentJobs builds one job per quantitative experiment E1..E19.
func ExperimentJobs(csv bool) []runner.Job {
	jobs := make([]runner.Job, 0, len(ExperimentOrder))
	for _, id := range ExperimentOrder {
		jobs = append(jobs, tableJob(id, csv, Experiments[id]))
	}
	return jobs
}

// AblationJobs builds one job per ablation table A1..A5.
func AblationJobs(csv bool) []runner.Job {
	cases := []struct {
		name string
		f    func() *stats.Table
	}{
		{"A1", A1WaiterPriority}, {"A2", A2ConcurrentFlush},
		{"A3", A3SourceRetention}, {"A4", A4UnitState}, {"A5", A5Replacement},
	}
	jobs := make([]runner.Job, 0, len(cases))
	for _, c := range cases {
		jobs = append(jobs, tableJob(c.name, csv, c.f))
	}
	return jobs
}

// FigureJobs builds one job per figure reproduction, the two bus
// sequence diagrams, and the Figure 10 state-transition cross-check.
func FigureJobs() []runner.Job {
	figs := []struct {
		name string
		f    func() FigureResult
	}{
		{"figure1", Figure1}, {"figures2-3", Figure2and3},
		{"figure4", Figure4}, {"figure5", Figure5}, {"figure6", Figure6},
		{"figure7", Figure7}, {"figure8", Figure8}, {"figure9", Figure9},
	}
	var jobs []runner.Job
	for _, fg := range figs {
		f := fg.f
		jobs = append(jobs, runner.Job{Name: fg.name, ConfigHash: "text",
			Run: func() (runner.Artifact, error) {
				r := f()
				return runner.Artifact{Output: r.Render() + "\n", Pass: r.Pass}, nil
			}})
	}
	for _, fig := range []string{"4", "9"} {
		fig := fig
		jobs = append(jobs, runner.Job{Name: "figure" + fig + "-sequence", ConfigHash: "text",
			Run: func() (runner.Artifact, error) {
				seq, err := FigureSequence(fig)
				if err != nil {
					return runner.Artifact{Output: err.Error() + "\n", Pass: false}, nil
				}
				return runner.Artifact{Output: seq + "\n", Pass: true}, nil
			}})
	}
	jobs = append(jobs, runner.Job{Name: "figure10", ConfigHash: "text",
		Run: func() (runner.Artifact, error) {
			var b strings.Builder
			b.WriteString(Figure10Processor().Render() + "\n")
			b.WriteString(Figure10Bus().Render() + "\n")
			diffs := VerifyFigure10()
			if len(diffs) > 0 {
				b.WriteString("Figure 10 mismatches against the paper:\n")
				for _, d := range diffs {
					b.WriteString("  " + d + "\n")
				}
			} else {
				b.WriteString("Figure 10: every transcribed arc of the paper's diagram matches the implementation\n")
			}
			return runner.Artifact{Output: b.String(), Pass: len(diffs) == 0}, nil
		}})
	return jobs
}

// AllJobs is the full regeneration suite — tables, experiments,
// ablations, figures — in the order the sequential drivers printed
// them. This is the job list the artifact manifest and gate cover.
func AllJobs(csv bool) []runner.Job {
	jobs := TableJobs()
	jobs = append(jobs, ExperimentJobs(csv)...)
	jobs = append(jobs, AblationJobs(csv)...)
	jobs = append(jobs, FigureJobs()...)
	return jobs
}

// ParseSweepSpec parses a "-sweep procs=LO..HI" argument into the
// processor counts to fan across.
func ParseSweepSpec(spec string) ([]int, error) {
	body, ok := strings.CutPrefix(spec, "procs=")
	if !ok {
		return nil, fmt.Errorf("sweep spec %q: want procs=LO..HI", spec)
	}
	lo, hi, ok := strings.Cut(body, "..")
	if !ok {
		return nil, fmt.Errorf("sweep spec %q: want procs=LO..HI", spec)
	}
	a, err1 := strconv.Atoi(lo)
	b, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || a < 1 || b < a {
		return nil, fmt.Errorf("sweep spec %q: bad range %s..%s", spec, lo, hi)
	}
	procs := make([]int, 0, b-a+1)
	for n := a; n <= b; n++ {
		procs = append(procs, n)
	}
	return procs, nil
}

// SweepJobs fans the E9 mixed workload across processor counts and
// every protocol — one independent job per grid cell, the repo's
// first many-core scaling surface outside the model checker. Each
// artifact is one tab-separated row; SweepTable folds them back into
// a table.
func SweepJobs(protos []string, procs []int) []runner.Job {
	var jobs []runner.Job
	for _, n := range procs {
		for _, name := range protos {
			n, name := n, name
			jobs = append(jobs, runner.Job{
				Name:       fmt.Sprintf("sweep/%s/p%d", name, n),
				ConfigHash: fmt.Sprintf("mixed ops=%d procs=%d", 100*n, n),
				Run: func() (runner.Artifact, error) {
					return runner.Artifact{Output: sweepRow(name, n), Pass: true}, nil
				},
			})
		}
	}
	return jobs
}

// sweepRow runs one (protocol, procs) cell of the sweep: the E9 mixed
// workload scaled to the processor count.
func sweepRow(proto string, procs int) string {
	s, l := rig(proto, procs, 32, false, g4)
	w := workload.Mixed{Ops: 100 * procs, SharedBlocks: 8, PrivBlocks: 8 * procs,
		SharedFrac: 0.3, WriteFrac: 0.35, Seed: 37}
	mustRun(s, w.Build(l, procs))
	agg := s.Stats()
	idle := stats.Pct(agg.Get("proc.stall-cycles"), int64(procs)*s.Clock())
	cells := []string{
		proto,
		strconv.Itoa(procs),
		strconv.FormatInt(s.Clock(), 10),
		strconv.FormatInt(s.Counts.Get("bus.cycles"), 10),
		strconv.FormatInt(s.Counts.Get("bus.words"), 10),
		idle,
	}
	return strings.Join(cells, "\t") + "\n"
}

// SweepProtocols is the default protocol set for -sweep: every
// registered protocol.
func SweepProtocols() []string { return all.Everything }

// SweepTable folds the merged sweep rows (one tab-separated line per
// cell, in job order) back into a single table.
func SweepTable(rows string) *stats.Table {
	t := stats.NewTable("Sweep: mixed workload scaling (ops scale with processor count)",
		"protocol", "procs", "total cycles", "bus cycles", "bus words", "proc idle")
	for _, line := range strings.Split(strings.TrimRight(rows, "\n"), "\n") {
		if line == "" {
			continue
		}
		t.AddRow(strings.Split(line, "\t")...)
	}
	return t
}
