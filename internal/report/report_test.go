package report

import (
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	if diffs := VerifyTable1(); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	out := Table1().Render()
	for _, want := range []string{"Goodman", "Papamarcos", "Our proposal", "RWLDS", "LRU,MEM", "Lock, Dirty, Waiter"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	out := Table2()
	for _, want := range []string{"Goodman (1983)", "lock state", "busy-wait register", "Rudolph, Segall"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFigure10MatchesPaper(t *testing.T) {
	if diffs := VerifyFigure10(); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
	}
}

func TestFigure10Renders(t *testing.T) {
	proc := Figure10Processor().Render()
	busSide := Figure10Bus().Render()
	if !strings.Contains(proc, "L.S.D.W") || !strings.Contains(busSide, "[locked]") {
		t.Errorf("figure 10 rendering incomplete:\n%s\n%s", proc, busSide)
	}
}

func TestAllFiguresPass(t *testing.T) {
	for _, f := range AllFigures() {
		if !f.Pass {
			t.Errorf("%s does not match the paper:\n%s", f.Name, f.Render())
		}
	}
}

func TestExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are not short")
	}
	tables := AllExperiments()
	if len(tables) != 21 {
		t.Fatalf("got %d experiment tables, want 21", len(tables))
	}
	for _, tb := range tables {
		if tb.NumRows() == 0 {
			t.Errorf("experiment %q produced no rows", tb.Title)
		}
	}
}

func TestE2BusyWaitShape(t *testing.T) {
	// The paper's shape claim: the cache-lock scheme's per-acquisition
	// bus transactions stay flat (~2) while TAS grows with contention.
	tb := E2BusyWait()
	out := tb.Render()
	if !strings.Contains(out, "contenders") {
		t.Fatalf("unexpected table:\n%s", out)
	}
}

func TestFigureSequences(t *testing.T) {
	for _, fig := range []string{"4", "9"} {
		out, err := FigureSequence(fig)
		if err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
		if !strings.Contains(out, "cache 0") || !strings.Contains(out, "memory") {
			t.Errorf("figure %s sequence missing lanes:\n%s", fig, out)
		}
		if fig == "9" && !strings.Contains(out, "LOCKED") {
			t.Errorf("figure 9 sequence shows no denials:\n%s", out)
		}
	}
	if _, err := FigureSequence("nope"); err == nil {
		t.Error("unknown figure accepted")
	}
}
