package report

import (
	"fmt"
	"strings"

	"cachesync/internal/bus"
	"cachesync/internal/sim"
)

// SequenceDiagram renders a recorded transaction stream as an ASCII
// sequence diagram in the spirit of the paper's Figures 1-9: one lane
// per cache plus a memory lane, one row per bus transaction, showing
// who requested, which lines were asserted, and where the data came
// from.
type SequenceDiagram struct {
	Procs int
	Title string
	txns  []*bus.Transaction
}

// NewSequenceDiagram starts a diagram over the given transaction
// recording (e.g. a monitor's capture).
func NewSequenceDiagram(title string, procs int, txns []*bus.Transaction) *SequenceDiagram {
	return &SequenceDiagram{Procs: procs, Title: title, txns: txns}
}

// lane widths
const laneW = 14

func center(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	left := (w - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", w-len(s)-left)
}

// Render draws the diagram.
func (d *SequenceDiagram) Render() string {
	var b strings.Builder
	if d.Title != "" {
		b.WriteString(d.Title + "\n")
	}
	// Header lanes.
	cells := make([]string, d.Procs+1)
	for i := 0; i < d.Procs; i++ {
		cells[i] = center(fmt.Sprintf("cache %d", i), laneW)
	}
	cells[d.Procs] = center("memory", laneW)
	b.WriteString(strings.Join(cells, "|") + "\n")
	b.WriteString(strings.Repeat("-", (laneW+1)*(d.Procs+1)-1) + "\n")

	for _, t := range d.txns {
		row := make([]string, d.Procs+1)
		for i := range row {
			row[i] = center(".", laneW)
		}
		// Requester lane: the command it issued.
		label := t.Cmd.String()
		if t.LockIntent {
			label += "+lock"
		}
		if t.AfterWait {
			label += "(rearb)"
		}
		label += fmt.Sprintf(" b%d", t.Block)
		if t.Requester >= 0 && t.Requester < d.Procs {
			row[t.Requester] = center(">"+label, laneW)
		} else {
			// I/O or memory-direct requester: annotate the memory lane.
			row[d.Procs] = center(">"+label, laneW)
		}
		// Supplier lanes.
		for _, id := range t.Suppliers {
			if id >= 0 && id < d.Procs {
				tag := "supplies"
				if t.Lines.Dirty {
					tag = "supplies*D"
				}
				row[id] = center(tag, laneW)
			}
		}
		if t.Flushed {
			row[d.Procs] = center("<flush", laneW)
		}
		if !t.Lines.Inhibit && (t.Cmd == bus.Read || t.Cmd == bus.ReadX || t.Cmd == bus.IORead) && !t.Lines.Locked {
			row[d.Procs] = center("supplies", laneW)
		}
		// Response lines summary on the right.
		var lines []string
		if t.Lines.Hit {
			lines = append(lines, "hit")
		}
		if t.Lines.SourceHit {
			lines = append(lines, "src")
		}
		if t.Lines.Dirty {
			lines = append(lines, "dirty")
		}
		if t.Lines.Locked {
			lines = append(lines, "LOCKED")
		}
		suffix := ""
		if len(lines) > 0 {
			suffix = "  [" + strings.Join(lines, ",") + "]"
		}
		b.WriteString(strings.Join(row, "|") + suffix + "\n")
	}
	return b.String()
}

// FigureSequence runs a named scenario and renders its bus activity
// as a sequence diagram; used by cmd/figures for a paper-like
// depiction.
func FigureSequence(fig string) (string, error) {
	switch fig {
	case "4":
		_, m, err := scenario(2, []func(*sim.Proc){
			func(p *sim.Proc) { p.Write(0, 7) },
			func(p *sim.Proc) { p.Compute(100); p.Read(0) },
		})
		if err != nil {
			return "", err
		}
		return NewSequenceDiagram("Figure 4 as a bus sequence (cache-to-cache transfer):", 2, m.txns).Render(), nil
	case "9":
		ws := make([]func(*sim.Proc), 4)
		ws[0] = func(p *sim.Proc) {
			p.LockRead(0)
			p.Compute(500)
			p.UnlockWrite(0, 1)
		}
		for i := 1; i < 4; i++ {
			ws[i] = func(p *sim.Proc) {
				p.Compute(50)
				p.LockRead(0)
				p.Compute(20)
				p.UnlockWrite(0, uint64(p.ID()))
			}
		}
		_, m, err := scenario(4, ws)
		if err != nil {
			return "", err
		}
		return NewSequenceDiagram("Figure 9 as a bus sequence (end busy wait):", 4, m.txns).Render(), nil
	default:
		return "", fmt.Errorf("report: no sequence rendering for figure %q", fig)
	}
}
