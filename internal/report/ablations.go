package report

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/core"
	"cachesync/internal/protocol"
	"cachesync/internal/sim"
	"cachesync/internal/stats"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

// This file ablates the individual design choices of the paper's
// proposal, one at a time, to measure what each contributes.

// A1WaiterPriority ablates the reserved most-significant arbitration
// priority bit of Section E.4: after an unlock broadcast, do the
// re-arbitrating waiters actually need to outrank ordinary traffic?
func A1WaiterPriority() *stats.Table {
	t := stats.NewTable("A1. Ablation: busy-wait high-priority arbitration bit (Section E.4)",
		"waiter priority", "mean lock latency", "p99 lock latency", "total cycles")
	const procs, iters = 6, 20
	for _, disable := range []bool{false, true} {
		cfg := sim.DefaultConfig(core.Protocol{})
		cfg.Procs = procs
		cfg.NoWaiterPriority = disable
		s := sim.New(cfg)
		l := workload.Layout{G: s.Geometry()}
		ws := make([]func(*sim.Proc), procs)
		for i := range ws {
			i := i
			ws[i] = func(p *sim.Proc) {
				for k := 0; k < iters; k++ {
					if i < procs/2 {
						// Half the processors contend for the lock.
						v := p.LockRead(l.LockAddr(0))
						p.Compute(20)
						p.UnlockWrite(l.LockAddr(0), v+1)
						p.Compute(5)
					} else {
						// The other half floods the bus with ordinary
						// traffic that competes in arbitration.
						for j := 0; j < 4; j++ {
							p.Write(l.G.Base(l.PrivateBlock(i, (k*4+j)%128)), uint64(k))
						}
					}
				}
			}
		}
		if err := s.Run(ws); err != nil {
			panic(err)
		}
		label := "on (paper)"
		if disable {
			label = "off (ablated)"
		}
		t.AddRow(label,
			fmt.Sprintf("%.1f", s.LockLatency.Mean()),
			fmt.Sprintf("%d", s.LockLatency.Percentile(99)),
			fmt.Sprintf("%d", s.Clock()))
	}
	return t
}

// A2ConcurrentFlush ablates Feature 7's premise: flushing during a
// cache-to-cache transfer is free only when bus and memory can absorb
// it concurrently; otherwise each flush adds a memory access to the
// transfer.
func A2ConcurrentFlush() *stats.Table {
	t := stats.NewTable("A2. Ablation: concurrent flush on cache-to-cache transfer (Feature 7)",
		"protocol", "flush policy", "concurrent flush", "bus cycles")
	// Goodman/Illinois flush on transfer (F); the paper's protocol
	// does not (NF,S) and is insensitive to the switch.
	for _, proto := range []string{"goodman", "illinois", "bitar"} {
		for _, concurrent := range []bool{true, false} {
			cfg := sim.DefaultConfig(protocol.MustNew(proto))
			cfg.Procs = 2
			cfg.Timing.ConcurrentFlush = concurrent
			s := sim.New(cfg)
			l := workload.Layout{G: s.Geometry()}
			// Dirty hand-offs: P0 writes a block, P1 reads it, repeat.
			flag := l.LockAddr(0)
			data := l.G.Base(l.SharedBlock(0))
			ws := []func(*sim.Proc){
				func(p *sim.Proc) {
					for k := uint64(1); k <= 30; k++ {
						p.Write(data, k)
						p.Write(flag, k)
						for p.Read(flag) != 0 {
							p.Compute(4)
						}
					}
				},
				func(p *sim.Proc) {
					for k := uint64(1); k <= 30; k++ {
						for p.Read(flag) != k {
							p.Compute(4)
						}
						p.Read(data)
						p.Write(flag, 0)
					}
				},
			}
			if err := s.Run(ws); err != nil {
				panic(err)
			}
			t.AddRow(proto, s.Protocol().Features().FlushOnTransfer,
				fmt.Sprintf("%v", concurrent),
				fmt.Sprintf("%d", s.Counts.Get("bus.cycles")))
		}
	}
	return t
}

// A3SourceRetention ablates Feature 8's LRU half: the paper's
// last-fetcher-becomes-source against a keep-source variant that
// falls back to memory once the single source purges.
func A3SourceRetention() *stats.Table {
	t := stats.NewTable("A3. Ablation: last-fetcher-becomes-source (Feature 8 LRU)",
		"variant", "bus cycles", "memory supplies", "cache supplies")
	for _, proto := range []string{"bitar", "bitar-memsrc"} {
		s, l := rig(proto, 4, 8, false, g4)
		ws := make([]func(*sim.Proc), 4)
		for i := range ws {
			i := i
			ws[i] = func(p *sim.Proc) {
				for k := 0; k < 60; k++ {
					p.Read(l.G.Base(l.SharedBlock((k + i*3) % 12)))
					p.Compute(3)
				}
			}
		}
		mustRun(s, ws)
		agg := s.Stats()
		t.AddRow(proto,
			fmt.Sprintf("%d", s.Counts.Get("bus.cycles")),
			fmt.Sprintf("%d", agg.Get("mem.supply")),
			fmt.Sprintf("%d", agg.Get("snoop.supply")))
	}
	return t
}

// A4UnitState ablates Section D.3's transfer-unit bookkeeping cost
// sweep: the bus-word savings of unit mode across atom sizes, at a
// fixed 16-word block.
func A4UnitState() *stats.Table {
	t := stats.NewTable("A4. Ablation: transfer-unit size for a 16-word block (Section D.3)",
		"unit words", "bus words", "vs whole-block")
	var whole int64
	for _, unit := range []int{16, 8, 4, 2, 1} {
		cfg := sim.DefaultConfig(core.Protocol{})
		cfg.Procs = 4
		cfg.Geometry = addr.MustGeometry(16, unit)
		cfg.Cache = cache.Config{Sets: 1, Ways: 64, UnitMode: unit != 16}
		s := sim.New(cfg)
		l := workload.Layout{G: s.Geometry()}
		w := workload.LockContention{Locks: 1, Iters: 25, HoldCycles: 5, CSWrites: 1,
			Scheme: syncprim.CacheLock, Seed: 53}
		mustRun(s, w.Build(l, 4))
		words := s.Counts.Get("bus.words")
		if unit == 16 {
			whole = words
		}
		t.AddRow(fmt.Sprintf("%d", unit), fmt.Sprintf("%d", words),
			stats.Pct(whole-words, whole))
	}
	return t
}

// A5Replacement ablates the premise behind Feature 8's LRU argument:
// "If LRU replacement tends to hold across caches, our protocol can
// take advantage of it since the last cache to fetch a block always
// becomes the new source." Under FIFO or random replacement the
// newest source is no likelier to survive, so the advantage should
// shrink.
func A5Replacement() *stats.Table {
	t := stats.NewTable("A5. Ablation: cache replacement policy under last-fetcher-becomes-source (Feature 8)",
		"replacement", "bus cycles", "memory supplies", "cache supplies")
	for _, rp := range []cache.Replacement{cache.LRU, cache.FIFO, cache.Random} {
		cfg := sim.DefaultConfig(core.Protocol{})
		cfg.Procs = 4
		cfg.Cache = cache.Config{Sets: 1, Ways: 8, Replace: rp}
		s := sim.New(cfg)
		l := workload.Layout{G: s.Geometry()}
		ws := make([]func(*sim.Proc), 4)
		for i := range ws {
			i := i
			ws[i] = func(p *sim.Proc) {
				for k := 0; k < 60; k++ {
					p.Read(l.G.Base(l.SharedBlock((k + i*3) % 12)))
					p.Compute(3)
				}
			}
		}
		mustRun(s, ws)
		agg := s.Stats()
		t.AddRow(rp.String(),
			fmt.Sprintf("%d", s.Counts.Get("bus.cycles")),
			fmt.Sprintf("%d", agg.Get("mem.supply")),
			fmt.Sprintf("%d", agg.Get("snoop.supply")))
	}
	return t
}

// Ablations runs every ablation table.
func Ablations() []*stats.Table {
	return []*stats.Table{A1WaiterPriority(), A2ConcurrentFlush(), A3SourceRetention(), A4UnitState(), A5Replacement()}
}
