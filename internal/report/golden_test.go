package report

// Golden-file tests: the rendered output of cmd/tables and
// cmd/figures is committed under testdata/golden/, so artifact drift
// fails `go test ./...` instead of silently changing what
// EXPERIMENTS.md claims. After an intentional change, regenerate with
//
//	go test ./internal/report/ -run Golden -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachesync/internal/runner"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenCompare diffs got against the committed golden file,
// rewriting it under -update.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("%s drifted at line %d:\n got: %q\nwant: %q\n(inspect, then regenerate with -update)",
				name, i+1, g, w)
		}
	}
	t.Fatalf("%s drifted (got %d bytes, want %d)", name, len(got), len(want))
}

// TestGoldenTables pins the full cmd/tables print-mode output: both
// paper tables, experiments E1..E19, and the ablations.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full experiment suite")
	}
	jobs := TableJobs()
	jobs = append(jobs, ExperimentJobs(false)...)
	jobs = append(jobs, AblationJobs(false)...)
	res, err := runner.Run(jobs, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllPass() {
		t.Fatalf("an artifact diverged from the paper:\n%s", res.Output())
	}
	goldenCompare(t, "tables.txt", res.Output())
}

// TestGoldenFigures pins the full cmd/figures output: every figure
// reproduction, both sequence diagrams, and the Figure 10 arc check.
func TestGoldenFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every figure")
	}
	res, err := runner.Run(FigureJobs(), runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllPass() {
		t.Fatalf("a figure diverged from the paper:\n%s", res.Output())
	}
	goldenCompare(t, "figures.txt", res.Output())
}
