package report

import (
	"fmt"
	"strings"

	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/core"
	"cachesync/internal/protocol"
	"cachesync/internal/sim"
)

// monitor records every bus transaction; it is attached as an extra
// snooper (ID -2, never a requester, after every cache so all lines
// are already asserted) so figure reproductions can show the bus
// activity of a scenario. It clones what it sees: the engine pools
// its transaction records.
type monitor struct {
	txns []*bus.Transaction
}

func (m *monitor) ID() int                  { return -2 }
func (m *monitor) Snoop(t *bus.Transaction) { m.txns = append(m.txns, t.Clone()) }

// scenario runs workloads on a fresh bitar machine with a bus monitor
// attached and returns the system and the recorded transactions.
func scenario(procs int, ws []func(*sim.Proc)) (*sim.System, *monitor, error) {
	cfg := sim.DefaultConfig(core.Protocol{})
	cfg.Procs = procs
	s := sim.New(cfg)
	m := &monitor{}
	s.Bus.Attach(m)
	err := s.Run(ws)
	return s, m, err
}

// FigureResult is one reproduced figure: its caption, the narrative
// steps, and a pass/fail verdict against the paper's expected
// behavior.
type FigureResult struct {
	Name    string
	Caption string
	Steps   []string
	Pass    bool
}

// Render formats the figure reproduction as text.
func (f FigureResult) Render() string {
	var b strings.Builder
	verdict := "MATCHES PAPER"
	if !f.Pass {
		verdict = "MISMATCH"
	}
	fmt.Fprintf(&b, "%s — %s [%s]\n", f.Name, f.Caption, verdict)
	for _, s := range f.Steps {
		b.WriteString("  " + s + "\n")
	}
	return b.String()
}

func stateName(s *sim.System, c int, b addr.Block) string {
	return s.Protocol().StateName(s.Caches[c].State(b))
}

// Figure1 reproduces "Fetching Unshared Data on Read Miss": no cache
// signals hit, so the requester assumes write privilege (W.S.C).
func Figure1() FigureResult {
	s, m, err := scenario(2, []func(*sim.Proc){func(p *sim.Proc) { p.Read(0) }, nil})
	f := FigureResult{Name: "Figure 1", Caption: "Fetching unshared data on read miss"}
	if err != nil {
		f.Steps = append(f.Steps, "error: "+err.Error())
		return f
	}
	f.Steps = append(f.Steps,
		"P0 reads word 0; no cache signals hit; memory provides the block",
		fmt.Sprintf("bus: %s", m.txns[0]),
		fmt.Sprintf("cache 0 state: %s (write privilege assumed, clean)", stateName(s, 0, 0)))
	f.Pass = len(m.txns) == 1 && m.txns[0].Cmd == bus.Read &&
		!m.txns[0].Lines.Hit && s.Caches[0].State(0) == core.WSC
	return f
}

// Figure2and3 reproduces "Fetching Without Source Cache": another
// cache has the block but no source exists (it lost source status),
// so memory provides it and the requester takes read privilege.
func Figure2and3() FigureResult {
	f := FigureResult{Name: "Figures 2, 3", Caption: "Fetching without source cache (memory provides)"}
	s, _, err := scenario(3, []func(*sim.Proc){
		func(p *sim.Proc) { p.Read(0) }, // P0: W.S.C
		func(p *sim.Proc) { // P1 fetches: P0 supplies, P1 becomes source
			p.Compute(100)
			p.Read(0)
		},
		func(p *sim.Proc) { // P2 fetches after P1 purges -> no source
			p.Compute(200)
			// Evict P1's copy by... instead: P1 keeps it; P2 fetch: P1 is source.
			p.Read(0)
		},
	})
	if err != nil {
		f.Steps = append(f.Steps, "error: "+err.Error())
		return f
	}
	// Simulate the source purging its copy: the remaining copies are
	// plain R (non-source), so the next fetch is served by memory with
	// the hit line raised — the situation of Figures 2 and 3.
	s.Caches[2].Drop(0) // P2 was the last fetcher, hence the source
	probe := &bus.Transaction{Cmd: bus.Read, Block: 0, Addr: 0, Requester: -2}
	s.Bus.Broadcast(probe)
	memSupplied := s.Mem.Respond(probe)
	f.Steps = append(f.Steps,
		"P0 fetched unshared (W.S.C); P1 fetched (P0 supplied, source moved to P1)",
		"P2 fetched (P1 supplied, source moved to P2); P2 then purges the block",
		fmt.Sprintf("states: c0=%s c1=%s c2=%s", stateName(s, 0, 0), stateName(s, 1, 0), stateName(s, 2, 0)),
		fmt.Sprintf("a further fetch: hit line=%v, source hit=%v, memory supplied=%v",
			probe.Lines.Hit, probe.Lines.SourceHit, memSupplied))
	f.Pass = s.Caches[0].State(0) == core.R && s.Caches[1].State(0) == core.R &&
		s.Caches[2].State(0) == protocol.Invalid &&
		probe.Lines.Hit && !probe.Lines.SourceHit && memSupplied
	return f
}

// Figure4 reproduces "Cache-to-Cache Transfer": the source provides
// the block along with its clean/dirty status.
func Figure4() FigureResult {
	f := FigureResult{Name: "Figure 4", Caption: "Cache-to-cache transfer with dirty status (NF,S)"}
	s, m, err := scenario(2, []func(*sim.Proc){
		func(p *sim.Proc) { p.Write(0, 7) }, // P0: W.S.D (dirty)
		func(p *sim.Proc) {
			p.Compute(100)
			if v := p.Read(0); v != 7 {
				panic("figure 4: wrong data")
			}
		},
	})
	if err != nil {
		f.Steps = append(f.Steps, "error: "+err.Error())
		return f
	}
	last := m.txns[len(m.txns)-1]
	f.Steps = append(f.Steps,
		"P0 writes word 0 (W.S.D, dirty); P1 reads it",
		fmt.Sprintf("bus: %s (source hit, dirty status on bus, memory inhibited)", last),
		fmt.Sprintf("states: c0=%s (source lost) c1=%s (last fetcher becomes dirty source)",
			stateName(s, 0, 0), stateName(s, 1, 0)))
	f.Pass = last.Cmd == bus.Read && last.Lines.SourceHit && last.Lines.Dirty &&
		last.Lines.Inhibit && !last.Flushed &&
		s.Caches[0].State(0) == core.R && s.Caches[1].State(0) == core.RSD
	return f
}

// Figure5 reproduces "Request Only For Write Privilege": a write hit
// on a read-privilege copy sends the one-cycle invalidation, not a
// fetch.
func Figure5() FigureResult {
	f := FigureResult{Name: "Figure 5", Caption: "Request only write privilege (no data transfer)"}
	s, m, err := scenario(2, []func(*sim.Proc){
		func(p *sim.Proc) { p.Write(0, 1) },
		func(p *sim.Proc) {
			p.Compute(100)
			p.Read(0)     // shared copy (R.S.D via transfer)
			p.Write(0, 2) // upgrade only
		},
	})
	if err != nil {
		f.Steps = append(f.Steps, "error: "+err.Error())
		return f
	}
	last := m.txns[len(m.txns)-1]
	f.Steps = append(f.Steps,
		"P1 holds a valid copy and writes: it requests write privilege only",
		fmt.Sprintf("bus: %s (no block data moves)", last),
		fmt.Sprintf("states: c0=%s c1=%s", stateName(s, 0, 0), stateName(s, 1, 0)))
	f.Pass = last.Cmd == bus.Upgrade && s.Caches[1].State(0) == core.WSD &&
		s.Caches[0].State(0) == protocol.Invalid
	return f
}

// Figure6 reproduces "Locking a Block": the lock rides on the fetch;
// zero extra traffic, and zero time when privilege is already held.
func Figure6() FigureResult {
	f := FigureResult{Name: "Figure 6", Caption: "Locking a block (lock rides on the fetch)"}
	s, m, err := scenario(1, []func(*sim.Proc){func(p *sim.Proc) {
		p.LockRead(0) // lock miss: one ReadX with lock intent
		p.Write(1, 5)
		p.UnlockWrite(0, 1)
		p.Write(4, 9) // W.S.D on block 1
		p.LockRead(4) // zero-time lock
		p.UnlockWrite(4, 10)
	}})
	if err != nil {
		f.Steps = append(f.Steps, "error: "+err.Error())
		return f
	}
	var lockTxns int
	for _, t := range m.txns {
		if t.LockIntent {
			lockTxns++
		}
	}
	f.Steps = append(f.Steps,
		fmt.Sprintf("lock miss: %s (fetch and lock in one transaction)", m.txns[0]),
		"unlock with no waiter: zero bus transactions",
		"lock of an already-held block: zero bus transactions (zero-time lock)",
		fmt.Sprintf("total bus transactions: %d (1 lock fetch + 1 write fetch)", len(m.txns)))
	f.Pass = len(m.txns) == 2 && m.txns[0].Cmd == bus.ReadX && m.txns[0].LockIntent &&
		lockTxns == 1 && s.Caches[0].State(1) == core.WSD
	return f
}

// Figure7 reproduces "Requesting Locked Block; Initiating Busy Wait":
// the holder records the waiter; the requester arms its busy-wait
// register and stays off the bus.
func Figure7() FigureResult {
	f := FigureResult{Name: "Figure 7", Caption: "Requesting a locked block initiates busy wait"}
	s, m, err := scenario(2, []func(*sim.Proc){
		func(p *sim.Proc) {
			p.LockRead(0)
			p.Compute(300) // hold while P1 asks
			p.UnlockWrite(0, 1)
		},
		func(p *sim.Proc) {
			p.Compute(50)
			p.LockRead(0) // denied -> busy wait
			p.UnlockWrite(0, 2)
		},
	})
	if err != nil {
		f.Steps = append(f.Steps, "error: "+err.Error())
		return f
	}
	var denied *bus.Transaction
	for _, t := range m.txns {
		if t.Lines.Locked {
			denied = t
			break
		}
	}
	f.Steps = append(f.Steps,
		"P0 locks block 0 (L.S.D); P1 requests it with lock intent",
		fmt.Sprintf("bus: %s — Locked line asserted, request denied", denied),
		"P0's line enters L.S.D.W (waiter recorded); P1 arms its busy-wait register",
		fmt.Sprintf("denials on bus: %d; busy waits: %d; final lock owner count correct: %v",
			s.Counts.Get("lock.denied"), s.Stats().Get("proc.busywait"),
			s.Counts.Get("lock.acquired") == 2))
	f.Pass = denied != nil && s.Counts.Get("lock.denied") == 1 &&
		s.Counts.Get("lock.acquired") == 2
	return f
}

// Figure8 reproduces "Unlocking a Block": silent without a waiter,
// a one-cycle broadcast with one.
func Figure8() FigureResult {
	f := FigureResult{Name: "Figure 8", Caption: "Unlock: silent without waiter, broadcast with waiter"}
	s, m, err := scenario(2, []func(*sim.Proc){
		func(p *sim.Proc) {
			p.LockRead(0)
			p.UnlockWrite(0, 1) // no waiter: silent
			p.LockRead(0)
			p.Compute(300)      // P1 arrives and is denied
			p.UnlockWrite(0, 2) // waiter recorded: broadcast
		},
		func(p *sim.Proc) {
			p.Compute(100)
			p.LockRead(0)
			p.UnlockWrite(0, 3)
		},
	})
	if err != nil {
		f.Steps = append(f.Steps, "error: "+err.Error())
		return f
	}
	var unlocks int
	for _, t := range m.txns {
		if t.Cmd == bus.Unlock {
			unlocks++
		}
	}
	f.Steps = append(f.Steps,
		fmt.Sprintf("first unlock (no waiter): silent (%d silent unlocks recorded)", s.Counts.Get("lock.unlock-silent")),
		fmt.Sprintf("second unlock (waiter recorded): broadcast on bus (%d Unlock transactions)", unlocks),
		fmt.Sprintf("final state of block 0 at P1: %s", stateName(s, 1, 0)))
	f.Pass = unlocks >= 1 && s.Counts.Get("lock.unlock-silent") >= 1 &&
		s.Counts.Get("lock.broadcast") >= 1
	return f
}

// Figure9 reproduces "End Busy Wait": on the unlock broadcast all
// waiters re-arbitrate at high priority; the winner locks in the
// lock-waiter state; the losers withdraw without touching the bus.
func Figure9() FigureResult {
	f := FigureResult{Name: "Figure 9", Caption: "End busy wait: one winner, losers stay off the bus"}
	const waiters = 3
	ws := make([]func(*sim.Proc), waiters+1)
	ws[0] = func(p *sim.Proc) {
		p.LockRead(0)
		p.Compute(500) // everyone queues up
		p.UnlockWrite(0, 1)
	}
	for i := 1; i <= waiters; i++ {
		ws[i] = func(p *sim.Proc) {
			p.Compute(50)
			p.LockRead(0)
			p.Compute(20)
			p.UnlockWrite(0, uint64(p.ID()))
		}
	}
	s, m, err := scenario(waiters+1, ws)
	if err != nil {
		f.Steps = append(f.Steps, "error: "+err.Error())
		return f
	}
	// Count lock attempts on the bus: each of the 4 processors should
	// fetch-with-lock-intent exactly once plus the denied first
	// attempts; crucially, no waiter retries while the lock is held.
	var lockFetches, denials int64
	for _, t := range m.txns {
		if t.LockIntent {
			if t.Lines.Locked {
				denials++
			} else {
				lockFetches++
			}
		}
	}
	f.Steps = append(f.Steps,
		fmt.Sprintf("%d waiters denied once each (%d denials), then silent", waiters, denials),
		fmt.Sprintf("unlock broadcasts: %d; high-priority re-arbitrations: %d; losers backed off: %d",
			s.Counts.Get("lock.broadcast"), s.Counts.Get("lock.rearb"), s.Counts.Get("lock.backoff")),
		fmt.Sprintf("successful lock fetches: %d (exactly one per acquisition)", lockFetches),
		fmt.Sprintf("lock acquisitions: %d", s.Counts.Get("lock.acquired")))
	f.Pass = denials == waiters && s.Counts.Get("lock.acquired") == waiters+1 &&
		s.Counts.Get("lock.backoff") > 0 && lockFetches == waiters+1
	return f
}

// AllFigures runs every figure reproduction.
func AllFigures() []FigureResult {
	return []FigureResult{
		Figure1(), Figure2and3(), Figure4(), Figure5(), Figure6(),
		Figure7(), Figure8(), Figure9(),
	}
}
