package aquarius

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

func TestTwoTierBasic(t *testing.T) {
	a := New(DefaultConfig(2))
	var got uint64
	err := a.Run([]func(*sim.Proc){
		func(p *sim.Proc) {
			a.DataWrite(p, 100, 77)
			p.Write(0, 1) // sync-tier traffic
		},
		func(p *sim.Proc) {
			p.Compute(200)
			got = a.DataRead(p, 100)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Errorf("lower tier read %d, want 77 (latest version)", got)
	}
	if a.Counts.Get("xbar.access") != 2 {
		t.Errorf("xbar accesses = %d, want 2", a.Counts.Get("xbar.access"))
	}
}

func TestBankContention(t *testing.T) {
	a := New(DefaultConfig(2))
	err := a.Run([]func(*sim.Proc){
		func(p *sim.Proc) {
			for k := 0; k < 10; k++ {
				a.DataWrite(p, 8, uint64(k)) // same bank every time
			}
		},
		func(p *sim.Proc) {
			for k := 0; k < 10; k++ {
				a.DataRead(p, 16) // also bank 0 (16 % 8 == 0)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts.Get("xbar.bank-wait") == 0 {
		t.Error("no bank contention recorded despite same-bank hammering")
	}
}

func TestBankInterleaving(t *testing.T) {
	a := New(DefaultConfig(1))
	err := a.Run([]func(*sim.Proc){func(p *sim.Proc) {
		for k := 0; k < 64; k++ {
			a.DataRead(p, addr.Addr(k))
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	loads := a.BankLoads()
	for i, n := range loads {
		if n != 8 {
			t.Errorf("bank %d load = %d, want 8 (interleaved)", i, n)
		}
	}
}

func TestInstructionBuffer(t *testing.T) {
	a := New(DefaultConfig(1))
	err := a.Run([]func(*sim.Proc){func(p *sim.Proc) {
		for k := 0; k < 5; k++ {
			for pc := 0; pc < 8; pc++ {
				a.InstrFetch(p, addr.Addr(1000+pc)) // tight loop
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts.Get("ibuf.miss") != 8 {
		t.Errorf("ibuf misses = %d, want 8 (first pass only)", a.Counts.Get("ibuf.miss"))
	}
	if a.Counts.Get("ibuf.hit") != 32 {
		t.Errorf("ibuf hits = %d, want 32", a.Counts.Get("ibuf.hit"))
	}
}

func TestHardAtomsOnSyncTier(t *testing.T) {
	// The Figure 11 split: locks on the sync bus, data through the
	// crossbar; both compose on one timeline and the lock totals are
	// exact.
	const procs, iters = 4, 10
	a := New(DefaultConfig(procs))
	l := workload.Layout{G: a.Sync.Geometry()}
	lock := l.LockAddr(0)
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		i := i
		ws[i] = func(p *sim.Proc) {
			for k := 0; k < iters; k++ {
				syncprim.Acquire(p, syncprim.CacheLock, lock)
				v := a.DataRead(p, 500) // shared counter in the lower tier
				a.DataWrite(p, 500, v+1)
				syncprim.Release(p, syncprim.CacheLock, lock)
				p.Compute(int64(5 + i))
			}
		}
	}
	if err := a.Run(ws); err != nil {
		t.Fatal(err)
	}
	if got := a.mem[500]; got != procs*iters {
		t.Errorf("lower-tier counter = %d, want %d (lock on sync tier must serialize crossbar data)",
			got, procs*iters)
	}
	if a.Sync.Counts.Get("lock.acquired") != procs*iters {
		t.Errorf("sync tier acquired = %d", a.Sync.Counts.Get("lock.acquired"))
	}
}

func TestBankSweepContention(t *testing.T) {
	// More banks, less bank-wait: the crossbar scales where a bus
	// would serialize (the Figure 11 rationale).
	waitFor := func(banks int) int64 {
		cfg := DefaultConfig(4)
		cfg.Banks = banks
		a := New(cfg)
		ws := make([]func(*sim.Proc), 4)
		for i := range ws {
			i := i
			ws[i] = func(p *sim.Proc) {
				for k := 0; k < 40; k++ {
					a.DataRead(p, addr.Addr(i*40+k))
				}
			}
		}
		if err := a.Run(ws); err != nil {
			t.Fatal(err)
		}
		return a.Counts.Get("xbar.bank-wait")
	}
	one := waitFor(1)
	eight := waitFor(8)
	if eight >= one {
		t.Errorf("bank-wait with 8 banks (%d) not below 1 bank (%d)", eight, one)
	}
	if one == 0 {
		t.Error("a single bank under 4 processors should queue")
	}
}
