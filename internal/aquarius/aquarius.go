// Package aquarius models Figure 11's two-tier Aquarius memory
// architecture: an upper switch-memory system — a single bus running
// the full-broadcast synchronization protocol, holding all hard atoms
// and program synchronization data — and a lower system — a crossbar
// to interleaved memory banks for instructions and non-synchronization
// data, which "will not need to serialize accesses to a block, but
// will only need to provide the latest version of each block"
// (Section G.1).
//
// The upper tier is a full sim.System. The lower tier is modeled as a
// contention-costed crossbar: each access queues on its bank and
// advances the issuing processor's clock via Compute, composing the
// two tiers on one timeline. Latest-version delivery in the lower
// tier is trivially exact because every access reaches its bank (a
// small per-processor instruction buffer captures the read-only
// instruction stream).
package aquarius

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/core"
	"cachesync/internal/sim"
	"cachesync/internal/stats"
)

// Config sizes the two-tier system.
type Config struct {
	Procs int
	// Upper (synchronization) tier.
	Sync sim.Config
	// Lower (crossbar) tier.
	Banks       int
	BankCycles  int // bank service time per access
	WireCycles  int // crossbar traversal
	IBufEntries int // per-processor instruction-buffer entries (read-only stream)
}

// DefaultConfig returns a machine shaped like Figure 11: PPs on a
// synchronization bus plus a crossbar over interleaved banks.
func DefaultConfig(procs int) Config {
	sc := sim.DefaultConfig(core.Protocol{})
	sc.Procs = procs
	return Config{
		Procs:       procs,
		Sync:        sc,
		Banks:       8,
		BankCycles:  4,
		WireCycles:  1,
		IBufEntries: 16,
	}
}

// System is the two-tier Aquarius machine.
type System struct {
	cfg Config
	// Sync is the upper tier: the broadcast bus with the paper's
	// protocol, where all hard atoms live.
	Sync *sim.System

	bankFree []int64
	ibuf     []map[addr.Addr]bool
	mem      map[addr.Addr]uint64 // lower-tier storage

	Counts stats.Counters
}

// New builds the two-tier system.
func New(cfg Config) *System {
	if cfg.Banks <= 0 {
		panic("aquarius: need at least one bank")
	}
	s := &System{
		cfg:      cfg,
		Sync:     sim.New(cfg.Sync),
		bankFree: make([]int64, cfg.Banks),
		ibuf:     make([]map[addr.Addr]bool, cfg.Procs),
		mem:      make(map[addr.Addr]uint64),
	}
	for i := range s.ibuf {
		s.ibuf[i] = make(map[addr.Addr]bool)
	}
	return s
}

// Run executes the workloads on the synchronization tier's
// processors; lower-tier accesses are issued through DataRead,
// DataWrite, and InstrFetch.
func (s *System) Run(ws []func(*sim.Proc)) error { return s.Sync.Run(ws) }

func (s *System) bankOf(a addr.Addr) int { return int(uint64(a) % uint64(s.cfg.Banks)) }

// crossbar charges the crossbar-plus-bank cost of one lower-tier
// access issued by p at its current time.
func (s *System) crossbar(p *sim.Proc, a addr.Addr) {
	bank := s.bankOf(a)
	start := p.Now() + int64(s.cfg.WireCycles)
	if s.bankFree[bank] > start {
		s.Counts.Add("xbar.bank-wait", s.bankFree[bank]-start)
		start = s.bankFree[bank]
	}
	end := start + int64(s.cfg.BankCycles)
	s.bankFree[bank] = end
	s.Counts.Inc(fmt.Sprintf("xbar.bank%d", bank))
	s.Counts.Inc("xbar.access")
	p.Compute(end + int64(s.cfg.WireCycles) - p.Now())
}

// DataRead reads non-synchronization data through the crossbar:
// always the latest version, straight from the bank.
func (s *System) DataRead(p *sim.Proc, a addr.Addr) uint64 {
	s.crossbar(p, a)
	return s.mem[a]
}

// DataWrite writes non-synchronization data through the crossbar.
func (s *System) DataWrite(p *sim.Proc, a addr.Addr, v uint64) {
	s.crossbar(p, a)
	s.mem[a] = v
}

// InstrFetch fetches an instruction word: the read-only stream hits a
// small per-processor buffer; misses go through the crossbar.
func (s *System) InstrFetch(p *sim.Proc, a addr.Addr) {
	buf := s.ibuf[p.ID()]
	if buf[a] {
		s.Counts.Inc("ibuf.hit")
		p.Compute(1)
		return
	}
	s.Counts.Inc("ibuf.miss")
	s.crossbar(p, a)
	if len(buf) >= s.cfg.IBufEntries {
		for k := range buf {
			delete(buf, k)
			break
		}
	}
	buf[a] = true
}

// BankLoads reports per-bank access counts (to observe interleaving).
func (s *System) BankLoads() []int64 {
	out := make([]int64, s.cfg.Banks)
	for i := range out {
		out[i] = s.Counts.Get(fmt.Sprintf("xbar.bank%d", i))
	}
	return out
}
