// Package aquarius models Figure 11's two-tier Aquarius memory
// architecture: an upper switch-memory system — a single bus running
// the full-broadcast synchronization protocol, holding all hard atoms
// and program synchronization data — and a lower system — a crossbar
// to interleaved memory banks for instructions and non-synchronization
// data, which "will not need to serialize accesses to a block, but
// will only need to provide the latest version of each block"
// (Section G.1).
//
// The upper tier is a full sim.System. The lower tier is built from
// internal/interconnect cost models: a contention-costed crossbar,
// optionally placed a network hop away behind a RemoteLink (the
// Soul/GCS disaggregated-memory configuration, PAPERS.md
// arXiv:2301.02576). With Routed set, the machine attaches itself as
// the sim engine's lower tier and classified references (sync vs
// instruction vs plain data) route automatically; the explicit
// DataRead/DataWrite/InstrFetch methods remain for workloads that
// drive the split by hand.
//
// Lower-tier values are applied in the engine's deterministic event
// order at issue time — the "latest version of each block" delivery
// of Section G.1, with bank occupancy as the only contention.
package aquarius

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/core"
	"cachesync/internal/interconnect"
	"cachesync/internal/protocol"
	"cachesync/internal/sim"
	"cachesync/internal/stats"
)

// Config sizes the two-tier system.
type Config struct {
	Procs int
	// Upper (synchronization) tier.
	Sync sim.Config
	// Lower (crossbar) tier.
	Banks       int
	BankCycles  int // bank service time per access
	WireCycles  int // crossbar traversal
	IBufEntries int // per-processor instruction-buffer entries (read-only stream)
	// RemoteCycles, when positive, places the whole lower tier a
	// network hop away: one-way propagation latency in cycles.
	RemoteCycles int
	// RemoteOccupancy is the per-message channel occupancy of the
	// remote link (per direction); used only with RemoteCycles > 0.
	RemoteOccupancy int
	// Routed attaches the machine as the sim engine's lower tier, so
	// Instr/Data-class references route there automatically and
	// unclassified references are rejected. Leave false to drive the
	// split by hand through DataRead/DataWrite/InstrFetch.
	Routed bool
}

// DefaultConfig returns a machine shaped like Figure 11: PPs on a
// synchronization bus plus a crossbar over interleaved banks.
func DefaultConfig(procs int) Config {
	sc := sim.DefaultConfig(core.Protocol{})
	sc.Procs = procs
	return Config{
		Procs:           procs,
		Sync:            sc,
		Banks:           8,
		BankCycles:      4,
		WireCycles:      1,
		IBufEntries:     16,
		RemoteOccupancy: 2,
	}
}

// ibuf is a per-processor FIFO instruction buffer. Eviction order is
// insertion order — a deterministic function of the fetch stream, so
// repeated runs produce byte-identical hit/miss/crossbar counters.
type ibuf struct {
	present map[addr.Addr]struct{}
	order   []addr.Addr
	head    int
	n       int
}

func newIbuf(entries int) *ibuf {
	if entries <= 0 {
		entries = 1
	}
	return &ibuf{
		present: make(map[addr.Addr]struct{}, entries),
		order:   make([]addr.Addr, entries),
	}
}

func (b *ibuf) has(a addr.Addr) bool {
	_, ok := b.present[a]
	return ok
}

// insert adds a missing address, evicting the oldest entry when full.
func (b *ibuf) insert(a addr.Addr) {
	if b.n == len(b.order) {
		old := b.order[b.head]
		delete(b.present, old)
		b.order[b.head] = a
		b.head = (b.head + 1) % len(b.order)
	} else {
		b.order[(b.head+b.n)%len(b.order)] = a
		b.n++
	}
	b.present[a] = struct{}{}
}

// System is the two-tier Aquarius machine.
type System struct {
	cfg Config
	// Sync is the upper tier: the broadcast bus with the paper's
	// protocol, where all hard atoms live.
	Sync *sim.System

	xbar *interconnect.Crossbar
	data interconnect.Interconnect // xbar, or the remote link in front of it
	ibuf []*ibuf
	mem  map[addr.Addr]uint64 // lower-tier storage

	Counts    stats.Counters
	ibufHitH  *int64
	ibufMissH *int64
}

// New builds the two-tier system.
func New(cfg Config) *System {
	if cfg.Banks <= 0 {
		panic("aquarius: need at least one bank")
	}
	s := &System{
		cfg:  cfg,
		Sync: sim.New(cfg.Sync),
		ibuf: make([]*ibuf, cfg.Procs),
		mem:  make(map[addr.Addr]uint64),
	}
	s.xbar = interconnect.NewCrossbar(cfg.Banks, cfg.BankCycles, cfg.WireCycles, &s.Counts)
	s.data = s.xbar
	if cfg.RemoteCycles > 0 {
		s.data = interconnect.NewRemoteLink(s.xbar, int64(cfg.RemoteCycles), int64(cfg.RemoteOccupancy), &s.Counts)
	}
	for i := range s.ibuf {
		s.ibuf[i] = newIbuf(cfg.IBufEntries)
	}
	// The lower tier is always attached so every fabric access runs
	// inside the engine's single-threaded event loop (shim workload
	// goroutines run concurrently between blocking calls — touching
	// crossbar/ibuf state from them would race). Routed additionally
	// makes classification mandatory: unclassified references are
	// rejected instead of staying on the synchronization bus.
	s.Sync.AttachLower(s, cfg.Routed)
	return s
}

// Run executes the workloads on the synchronization tier's
// processors. With Routed, classified references route to the lower
// tier automatically; otherwise lower-tier accesses are issued
// through DataRead, DataWrite, and InstrFetch.
func (s *System) Run(ws []func(*sim.Proc)) error { return s.Sync.Run(ws) }

// RunPrograms executes one direct-execution Program per processor.
func (s *System) RunPrograms(progs []sim.Program) error { return s.Sync.RunPrograms(progs) }

// LowerAccess implements sim.LowerTier: the engine hands over every
// Instr/Data-class reference in deterministic event order.
func (s *System) LowerAccess(ref sim.LowerRef) (int64, uint64, error) {
	if ref.Class == interconnect.Instr {
		b := s.ibuf[ref.Proc]
		if b.has(ref.Addr) {
			bump(&s.Counts, &s.ibufHitH, "ibuf.hit")
			return ref.Now + 1, s.mem[ref.Addr], nil
		}
		bump(&s.Counts, &s.ibufMissH, "ibuf.miss")
		done := s.data.Access(ref.Proc, ref.Addr, ref.Now)
		b.insert(ref.Addr)
		return done, s.mem[ref.Addr], nil
	}
	done := s.data.Access(ref.Proc, ref.Addr, ref.Now)
	switch ref.Op {
	case protocol.OpRead, protocol.OpReadEx:
		return done, s.mem[ref.Addr], nil
	case protocol.OpWrite:
		s.mem[ref.Addr] = ref.Value
		return done, 0, nil
	case protocol.OpWriteBlock:
		for i, v := range ref.Vals {
			s.mem[ref.Addr+addr.Addr(i)] = v
		}
		return done, 0, nil
	}
	return 0, 0, fmt.Errorf("aquarius: unsupported lower-tier op %v", ref.Op)
}

func bump(c *stats.Counters, h **int64, name string) {
	if *h == nil {
		*h = c.Handle(name)
	}
	**h++
}

// DataRead reads non-synchronization data through the crossbar:
// always the latest version, straight from the bank. It issues an
// engine-routed Data-class read, so the fabric bookkeeping happens in
// deterministic event order even from shim workload goroutines.
func (s *System) DataRead(p *sim.Proc, a addr.Addr) uint64 {
	return p.ReadClass(a, interconnect.Data)
}

// DataWrite writes non-synchronization data through the crossbar.
func (s *System) DataWrite(p *sim.Proc, a addr.Addr, v uint64) {
	p.WriteClass(a, v, interconnect.Data)
}

// InstrFetch fetches an instruction word: the read-only stream hits a
// small per-processor buffer; misses go through the crossbar.
func (s *System) InstrFetch(p *sim.Proc, a addr.Addr) {
	p.InstrFetch(a)
}

// BankLoads reports per-bank access counts (to observe interleaving).
func (s *System) BankLoads() []int64 {
	out := make([]int64, s.cfg.Banks)
	for i := range out {
		out[i] = s.Counts.Get(fmt.Sprintf("xbar.bank%d", i))
	}
	return out
}

// Clock returns the machine's global time: the synchronization tier's
// high-water mark, which covers lower-tier completion times because
// every routed reference completes its processor's operation there.
func (s *System) Clock() int64 { return s.Sync.Clock() }

// BroadcastFraction reports how many routed references needed the
// full-broadcast synchronization tier versus the total routed — the
// paper's Section G claim quantified. Meaningful on Routed machines.
func (s *System) BroadcastFraction() (syncRefs, totalRefs int64) {
	syncRefs = s.Sync.Counts.Get("route.sync")
	totalRefs = syncRefs + s.Sync.Counts.Get("route.instr") + s.Sync.Counts.Get("route.data")
	return syncRefs, totalRefs
}

// Stats merges the synchronization tier's counters with the lower
// tier's (crossbar, instruction buffers, remote link).
func (s *System) Stats() *stats.Counters {
	out := s.Sync.Stats()
	out.Merge(&s.Counts)
	return out
}
