package aquarius

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
)

// TestIbufFIFOEviction pins the replacement policy: with a 4-entry
// buffer and a 5-address loop, FIFO evicts exactly the line about to
// be refetched, so every fetch after the first pass misses.
func TestIbufFIFOEviction(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.IBufEntries = 4
	a := New(cfg)
	err := a.Run([]func(*sim.Proc){func(p *sim.Proc) {
		for k := 0; k < 3; k++ {
			for pc := 0; pc < 5; pc++ {
				a.InstrFetch(p, addr.Addr(1000+pc))
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Counts.Get("ibuf.miss"); got != 15 {
		t.Errorf("ibuf.miss = %d, want 15 (FIFO thrashes a loop one entry too big)", got)
	}
	if got := a.Counts.Get("ibuf.hit"); got != 0 {
		t.Errorf("ibuf.hit = %d, want 0", got)
	}
}

// TestIbufEvictionDeterministic is the satellite regression for the
// old map-iteration eviction: a fetch stream that overflows the
// buffer must produce byte-identical counters on every run.
func TestIbufEvictionDeterministic(t *testing.T) {
	run := func() map[string]int64 {
		cfg := DefaultConfig(2)
		cfg.IBufEntries = 8
		a := New(cfg)
		ws := make([]func(*sim.Proc), 2)
		for i := range ws {
			i := i
			ws[i] = func(p *sim.Proc) {
				// A strided stream over 3x the buffer size: constant
				// eviction, and hits depend entirely on eviction order.
				for k := 0; k < 200; k++ {
					a.InstrFetch(p, addr.Addr(2000+i*64+(k*7)%24))
				}
			}
		}
		if err := a.Run(ws); err != nil {
			t.Fatal(err)
		}
		return a.Stats().Snapshot()
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("trial %d: stats size %d vs %d", trial, len(again), len(first))
		}
		for k, v := range first {
			if again[k] != v {
				t.Fatalf("trial %d: counter %s = %d, first run %d", trial, k, again[k], v)
			}
		}
	}
}

// twoTierProgs is a hand-classified workload: instruction fetches and
// private data through the lower tier, a lock and its guarded record
// on the synchronization tier.
func twoTierProgs(a *System, procs, iters int) []func(*sim.Proc) {
	lock := addr.Addr(0)
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		i := i
		ws[i] = func(p *sim.Proc) {
			for k := 0; k < iters; k++ {
				for pc := 0; pc < 4; pc++ {
					p.InstrFetch(addr.Addr(4096 + i*64 + pc))
				}
				syncprim.Acquire(p, syncprim.CacheLock, lock)
				v := p.ReadClass(900, interconnect.Data)
				p.WriteClass(900, v+1, interconnect.Data)
				syncprim.Release(p, syncprim.CacheLock, lock)
				p.WriteClass(addr.Addr(8192+i*64+k), uint64(k), interconnect.Data)
				p.Compute(int64(3 + i))
			}
		}
	}
	return ws
}

// TestRoutedTwoTierEndToEnd runs a classified lock workload on a
// Routed machine: sync traffic serializes the lower-tier record, and
// the route counters split the reference stream.
func TestRoutedTwoTierEndToEnd(t *testing.T) {
	const procs, iters = 4, 10
	cfg := DefaultConfig(procs)
	cfg.Routed = true
	a := New(cfg)
	if err := a.Run(twoTierProgs(a, procs, iters)); err != nil {
		t.Fatal(err)
	}
	if got := a.mem[900]; got != procs*iters {
		t.Errorf("guarded lower-tier record = %d, want %d", got, procs*iters)
	}
	if got := a.Sync.Counts.Get("lock.acquired"); got != procs*iters {
		t.Errorf("lock.acquired = %d, want %d", got, procs*iters)
	}
	syncRefs, total := a.BroadcastFraction()
	if syncRefs == 0 || total == 0 {
		t.Fatalf("broadcast fraction %d/%d: route counters missing", syncRefs, total)
	}
	if instr := a.Sync.Counts.Get("route.instr"); instr != int64(procs*iters*4) {
		t.Errorf("route.instr = %d, want %d", instr, procs*iters*4)
	}
	if syncRefs >= total {
		t.Errorf("every reference counted as broadcast (%d/%d); data/instr split missing", syncRefs, total)
	}
}

// TestRoutedDeterministic: byte-identical stats and final clock
// across repeated routed runs, local and remote.
func TestRoutedDeterministic(t *testing.T) {
	for _, remote := range []int{0, 64} {
		run := func() (int64, map[string]int64) {
			cfg := DefaultConfig(4)
			cfg.Routed = true
			cfg.RemoteCycles = remote
			a := New(cfg)
			if err := a.Run(twoTierProgs(a, 4, 8)); err != nil {
				t.Fatal(err)
			}
			return a.Clock(), a.Stats().Snapshot()
		}
		c1, s1 := run()
		c2, s2 := run()
		if c1 != c2 {
			t.Errorf("remote=%d: clock %d vs %d", remote, c1, c2)
		}
		if len(s1) != len(s2) {
			t.Fatalf("remote=%d: stats size %d vs %d", remote, len(s1), len(s2))
		}
		for k, v := range s1 {
			if s2[k] != v {
				t.Errorf("remote=%d: counter %s: %d vs %d", remote, k, v, s2[k])
			}
		}
	}
}

// TestRemoteTierSlowsLockHandoff: moving the plain-data tier a
// network hop away lengthens the run (the guarded record is remote)
// without changing its outcome.
func TestRemoteTierSlowsLockHandoff(t *testing.T) {
	clockFor := func(remote int) int64 {
		cfg := DefaultConfig(4)
		cfg.Routed = true
		cfg.RemoteCycles = remote
		a := New(cfg)
		if err := a.Run(twoTierProgs(a, 4, 8)); err != nil {
			t.Fatal(err)
		}
		if got := a.mem[900]; got != 32 {
			t.Fatalf("remote=%d: record = %d, want 32", remote, got)
		}
		return a.Clock()
	}
	local := clockFor(0)
	far := clockFor(128)
	if far <= local {
		t.Errorf("remote tier at 128 cycles (%d total) not slower than local (%d)", far, local)
	}
	if got := clockFor(0); got != local {
		t.Errorf("repeated local run clock %d vs %d", got, local)
	}
}

// TestRoutedRejectsUnclassified: the tiered machine refuses untagged
// references instead of guessing a tier.
func TestRoutedRejectsUnclassified(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Routed = true
	a := New(cfg)
	err := a.Run([]func(*sim.Proc){func(p *sim.Proc) {
		p.Write(10, 1)
	}})
	if err == nil {
		t.Fatal("unclassified reference on a Routed machine did not error")
	}
}
