package mcheck

import (
	"sort"
	"time"
)

// Partial-order reduction.
//
// Every action in the model touches exactly one block: a processor
// operation or eviction on block b reads and writes only block b's
// cache lines, memory words, lock tag, and shadow state (the packed
// key is block-major — see keyLayout — so this is visible in the
// encoding: an action on block b changes only block b's key section).
// Every invariant checked is likewise per-block. Actions on different
// blocks therefore commute, and any trace is equivalent — same final
// state, same per-block verdicts — to a reordering that groups each
// block's actions together.
//
// The reduction exploits this by never exploring a state with two
// modified blocks: it runs one unreduced BFS per block with expansion
// restricted to that block's actions (runCore's porBlock filter) and
// takes the union. Soundness and counterexample exactness:
//
//   - A shortest violating trace only contains actions on the violated
//     block: dropping the other blocks' actions leaves the violation
//     intact (per-block invariants + commutation) and any strictly
//     off-block violation would itself be shorter. So block b's
//     sub-run finds a violation at depth d iff the full run has a
//     violating candidate on block b at depth d, and the first
//     violating level is the min over blocks.
//   - Within a sub-run, the frontier at each level is exactly the full
//     run's pure-b states (states whose key differs from the root only
//     in block b's section) in the full run's relative order: frontier
//     order is (table shard, key), which is intrinsic to the states.
//     Action indices stay relative to the full action list. Stored
//     parent edges — least (frontier, action) — therefore coincide
//     with the full run's, and the rebuilt (and de-canonicalized)
//     trace is byte-identical.
//   - Across sub-runs, the winning violation is the least cexOrd
//     (depth, parent table shard, parent key, action index) — the
//     same tiebreak the unreduced BFS applies to simultaneous
//     violations, evaluated on intrinsic state data instead of
//     frontier positions so it is comparable between runs.
//
// Counts cover the union of the sub-runs: every non-root state of
// sub-run b has block b modified, so the unions are disjoint and
// States = 1 + Σ(states_b − 1); Transitions is the sum; DepthReached
// the max (or the winning violation's depth); Exhausted requires every
// sub-run exhausted; MaxStates is a shared budget consumed in block
// order. The differential test (TestPOREquivalence) checks verdicts
// and counterexamples against unreduced runs for every protocol, and
// that the reduced state set is exactly the full run's pure states.

// runPOR explores each block's subsystem with a separate restricted
// BFS and merges the results. o has defaults applied and is validated.
func runPOR(o Options) (*Result, error) {
	start := time.Now()
	res := &Result{
		Protocol: o.Protocol.Name(),
		Procs:    o.Procs, Blocks: o.Blocks, Words: o.Words,
		Depth: o.Depth, Workers: o.Workers, Symmetry: o.Symmetry,
		POR: true,
	}
	finalize := func() *Result {
		res.Elapsed = time.Since(start)
		if s := res.Elapsed.Seconds(); s > 0 {
			res.StatesPerSec = float64(res.States) / s
		}
		return res
	}

	type found struct {
		ord cexOrd
		cex *Counterexample
	}
	var best *found
	depthLimit := o.Depth
	exhausted := true
	var arcRuns [][]ObservedArc

	// Checkpointing: each sub-run checkpoints under block-<b>/ and the
	// accumulator persists completed clean blocks' numbers, so a
	// resumed POR check replays neither. On completion (done) the whole
	// POR checkpoint is removed. A violation stops persistence — see
	// checkpoint.go.
	var acc *porAccum
	done := false
	if o.CheckpointDir != "" {
		var err error
		acc, err = loadPORAccum(o)
		if err != nil {
			return nil, err
		}
		defer func() {
			if done {
				finishPOR(o.CheckpointDir)
			}
		}()
		for i := range acc.Blocks {
			br := &acc.Blocks[i]
			if i == 0 {
				res.States = br.States
			} else {
				res.States += br.States - 1
			}
			res.Transitions += br.Transitions
			if br.Truncated {
				res.Truncated = true
			}
			if br.DepthReached > res.DepthReached {
				res.DepthReached = br.DepthReached
			}
			if !br.Exhausted {
				exhausted = false
			}
			res.SpilledStates += br.SpilledStates
			res.SpilledBytes += br.SpilledBytes
			res.SpillRuns += br.SpillRuns
			res.SpillSeals += br.SpillSeals
		}
	}
	finish := func() *Result {
		done = true
		if o.MemBudget > 0 {
			res.MemBudget = o.MemBudget
		}
		return finalize()
	}
	startBlock := 0
	if acc != nil {
		startBlock = len(acc.Blocks)
	}

	for b := startBlock; b < o.Blocks; b++ {
		so := o
		so.POR = false
		so.Depth = depthLimit
		if acc == nil {
			// Either checkpointing is off, or a violation ended
			// persistence; sub-runs from here on run unchckpointed.
			so.CheckpointDir = ""
			so.Resume = false
		}
		// Sub-runs share one MaxStates budget; the root is counted
		// once globally but revisited by every sub-run.
		so.MaxStates = o.MaxStates - int(res.States) + 1
		if b > 0 && so.MaxStates <= 1 {
			res.Truncated = true
			break
		}
		if o.stateHook != nil && b > 0 {
			// Later sub-runs re-seed the shared root; report only their
			// fresh (pure-b, hence globally new) states.
			hook, skipRoot := o.stateHook, true
			so.stateHook = func(key []uint64) {
				if skipRoot {
					skipRoot = false
					return
				}
				hook(key)
			}
		}
		if o.Progress != nil {
			prevS, prevT := res.States, res.Transitions
			rootDup := int64(0)
			if b > 0 {
				rootDup = 1
			}
			so.Progress = func(p ProgressInfo) {
				p.States = prevS + p.States - rootDup
				p.Transitions = prevT + p.Transitions
				o.Progress(p)
			}
		}
		sub, ord, err := runCore(so, b)
		if err != nil {
			return nil, err
		}
		if b == 0 {
			res.States = sub.States
		} else {
			res.States += sub.States - 1
		}
		res.Transitions += sub.Transitions
		if sub.Truncated {
			res.Truncated = true
		}
		if sub.DepthReached > res.DepthReached {
			res.DepthReached = sub.DepthReached
		}
		if sub.Counterexample == nil && !sub.Exhausted {
			exhausted = false
		}
		res.SpilledStates += sub.SpilledStates
		res.SpilledBytes += sub.SpilledBytes
		res.SpillRuns += sub.SpillRuns
		res.SpillSeals += sub.SpillSeals
		if sub.Arcs != nil {
			arcRuns = append(arcRuns, sub.Arcs)
		}
		if sub.Counterexample != nil {
			if len(sub.Counterexample.Trace) == 0 {
				// Root violation: every sub-run reports it identically.
				res.Counterexample = sub.Counterexample
				res.States = 1
				res.DepthReached = 0
				res.Truncated = false
				return finish(), nil
			}
			if best == nil || ord.before(best.ord) {
				best = &found{ord: *ord, cex: sub.Counterexample}
			}
			// No later sub-run can beat a violation at this depth with
			// one at a greater depth, so tighten the bound.
			if ord.depth < depthLimit {
				depthLimit = ord.depth
			}
			acc = nil
		} else if acc != nil {
			acc.Blocks = append(acc.Blocks, porBlockResult{
				States: sub.States, Transitions: sub.Transitions,
				DepthReached: sub.DepthReached, Truncated: sub.Truncated,
				Exhausted:     sub.Exhausted,
				SpilledStates: sub.SpilledStates, SpilledBytes: sub.SpilledBytes,
				SpillRuns: sub.SpillRuns, SpillSeals: sub.SpillSeals,
			})
			if err := acc.save(); err != nil {
				return nil, err
			}
		}
	}

	if best != nil {
		res.Counterexample = best.cex
		res.DepthReached = best.ord.depth
	} else {
		res.Exhausted = exhausted && !res.Truncated
	}
	if o.RecordArcs {
		res.Arcs = mergeArcs(arcRuns)
	}
	return finish(), nil
}

// mergeArcs unions per-run observed arcs, first sighting winning —
// the same policy runCore applies across workers.
func mergeArcs(runs [][]ObservedArc) []ObservedArc {
	seen := make(map[arcKey]struct{})
	var out []ObservedArc
	for _, run := range runs {
		for _, a := range run {
			key := arcKey{state: a.State, op: a.Op}
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Op < out[j].Op
	})
	return out
}
