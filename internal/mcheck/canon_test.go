package mcheck

import (
	"fmt"
	"reflect"
	"testing"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

func TestPermutations(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 2, 3: 6, 4: 24, 5: 120} {
		perms := permutations(n)
		if len(perms) != want {
			t.Errorf("permutations(%d): %d permutations, want %d", n, len(perms), want)
		}
		seen := map[string]bool{}
		for _, p := range perms {
			seen[fmt.Sprint(p)] = true
		}
		if len(seen) != want {
			t.Errorf("permutations(%d): duplicates among %d", n, len(perms))
		}
		for i, v := range perms[0] {
			if v != i {
				t.Fatalf("permutations(%d): first permutation %v is not the identity", n, perms[0])
			}
		}
	}
}

// keyString gives packed keys a map-key form for test bookkeeping.
func keyString(k []uint64) string {
	b := make([]byte, 0, 8*len(k))
	for _, w := range k {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(w>>uint(s)))
		}
	}
	return string(b)
}

// reachedKeys explores o and returns a copy of every distinct visited
// key.
func reachedKeys(t *testing.T, o Options) [][]uint64 {
	t.Helper()
	var keys [][]uint64
	o.stateHook = func(k []uint64) { keys = append(keys, append([]uint64(nil), k...)) }
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(keys)) != res.States {
		t.Fatalf("stateHook saw %d states, Result says %d", len(keys), res.States)
	}
	return keys
}

// TestCanonicalizeOrbit checks, on real reached states, that
// canonicalize is constant on permutation orbits and that the returned
// permutation actually achieves the canonical key.
func TestCanonicalizeOrbit(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 1, Words: 2, Depth: 4}
	od := o.withDefaults()
	keys := reachedKeys(t, o)
	lay := makeKeyLayout(od.Procs, od.Blocks, od.Words)
	c := newCanonizer(lay)
	img := make([]uint64, lay.total)
	for _, k := range keys {
		canon, perm := c.canonicalize(k)
		canon = append([]uint64(nil), canon...)
		inv := make([]int, len(perm))
		for i, p := range perm {
			inv[p] = i
		}
		permuteKey(k, img, perm, inv, lay)
		if !reflect.DeepEqual(img, canon) {
			t.Fatalf("returned permutation %v does not reproduce the canonical key\nkey   %v\ngot   %v\ncanon %v", perm, k, img, canon)
		}
		for pi, p := range c.perms {
			permuteKey(k, img, p, c.invs[pi], lay)
			got, _ := c.canonicalize(img)
			if !reflect.DeepEqual(append([]uint64(nil), got...), canon) {
				t.Fatalf("canonicalize not orbit-invariant under %v:\nkey %v\ngot %v\nwant %v", p, k, got, canon)
			}
		}
	}
}

// checkSymmetryEquivalence runs one protocol with and without symmetry
// reduction and checks (a) identical verdicts, (b) a genuine reduction
// — the quotient explores at most half the states — and (c) the
// quotient is exact: canonicalizing the full run's states yields
// exactly the reduced run's state count.
func checkSymmetryEquivalence(t *testing.T, name string, procs, depth int) {
	o := Options{Protocol: protocol.MustNew(name), Procs: procs, Blocks: 1, Depth: depth, Workers: 2}
	full := reachedKeys(t, o)

	so := o
	so.Symmetry = true
	so.Protocol = protocol.MustNew(name)
	var reduced int64
	so.stateHook = func([]uint64) { reduced++ }
	sres, err := Run(so)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Counterexample != nil {
		t.Fatalf("violation only under symmetry: %v", sres.Counterexample.Violations)
	}
	if sres.States > int64(len(full))/2 {
		t.Errorf("symmetry saved too little: %d of %d states", sres.States, len(full))
	}

	od := o.withDefaults()
	c := newCanonizer(makeKeyLayout(od.Procs, od.Blocks, od.Words))
	orbits := map[string]bool{}
	for _, k := range full {
		canon, _ := c.canonicalize(k)
		orbits[keyString(canon)] = true
	}
	if int64(len(orbits)) != sres.States {
		t.Errorf("quotient inexact: full run has %d orbits, symmetry run visited %d states",
			len(orbits), sres.States)
	}
}

func TestSymmetryEquivalence(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			checkSymmetryEquivalence(t, name, 3, 4)
		})
	}
}

// TestSymmetryEquivalenceP5 covers the widened processor range: the
// 120-permutation orbit machinery must stay exact past the old p=4
// cap (shallower depth — the unreduced p5 space grows fast).
func TestSymmetryEquivalenceP5(t *testing.T) {
	for _, name := range []string{"bitar", "illinois"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			checkSymmetryEquivalence(t, name, 5, 3)
		})
	}
}

// TestSymmetryMutant checks that fault injection is caught identically
// under symmetry reduction: same minimal trace length, a replayable
// de-canonicalized trace, and the same violation classes.
func TestSymmetryMutant(t *testing.T) {
	for _, mc := range []struct{ proto, mut string }{
		{"bitar", "ignore-lock"},
		{"illinois", "drop-invalidate"},
		{"berkeley", "skip-writeback"},
	} {
		mc := mc
		t.Run(mc.proto+"+"+mc.mut, func(t *testing.T) {
			t.Parallel()
			run := func(sym bool) *Counterexample {
				mut, err := Mutate(protocol.MustNew(mc.proto), mc.mut)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(Options{Protocol: mut, Procs: 3, Blocks: 1, Depth: 5, Workers: 2, Symmetry: sym})
				if err != nil {
					t.Fatal(err)
				}
				if res.Counterexample == nil {
					t.Fatalf("mutant not caught (symmetry=%v)", sym)
				}
				return res.Counterexample
			}
			plain, sym := run(false), run(true)
			if len(plain.Trace) != len(sym.Trace) {
				t.Fatalf("trace lengths differ: %d plain vs %d symmetry", len(plain.Trace), len(sym.Trace))
			}
			if len(sym.Violations) == 0 {
				t.Fatal("symmetry counterexample carries no violations")
			}

			// The de-canonicalized trace must actually execute and end in
			// a violating state.
			mut, err := Mutate(protocol.MustNew(mc.proto), mc.mut)
			if err != nil {
				t.Fatal(err)
			}
			o := Options{Protocol: mut, Procs: 3, Blocks: 1, Depth: 5}
			m := newMachine(o.withDefaults())
			var viols []string
			for _, a := range sym.Trace {
				viols = m.step(a)
			}
			if !reflect.DeepEqual(viols, sym.Violations) {
				t.Fatalf("replaying the de-canonicalized trace gives %v, counterexample says %v", viols, sym.Violations)
			}
		})
	}
}

// TestDeterministicWorkersMutant pins down full determinism of the
// counterexample under both modes: any worker count must produce a
// byte-identical minimal trace.
func TestDeterministicWorkersMutant(t *testing.T) {
	for _, sym := range []bool{false, true} {
		var want []Action
		for _, w := range []int{1, 2, 8} {
			mut, err := Mutate(protocol.MustNew("bitar"), "ignore-lock")
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Options{Protocol: mut, Procs: 3, Blocks: 1, Depth: 5, Workers: w, Symmetry: sym})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counterexample == nil {
				t.Fatalf("workers=%d symmetry=%v: mutant not caught", w, sym)
			}
			if want == nil {
				want = res.Counterexample.Trace
			} else if !reflect.DeepEqual(want, res.Counterexample.Trace) {
				t.Fatalf("workers=%d symmetry=%v: trace %v differs from workers=1 trace %v",
					w, sym, res.Counterexample.Trace, want)
			}
		}
	}
}
