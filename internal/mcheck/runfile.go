package mcheck

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Sealed visited runs: the on-disk half of the spill store (spill.go).
//
// A run is an immutable file holding one contiguous slice of a shard's
// visited set — every entry sealed together when the shard crossed its
// memory budget. The file carries three views of the same entries:
//
//   - keys, sorted, delta-compressed: blocks of up to runBlockLen keys
//     where the first key is raw and each following key stores one
//     uvarint per word of the XOR against its predecessor. Sorted
//     neighbours share almost every word, so a key costs ~kw bytes
//     instead of 8·kw. Membership probes binary-search the in-memory
//     block index and decode one block.
//   - hashes, in sorted-key order: re-seeds the shard's in-memory
//     fingerprint set when a run is reopened on resume.
//   - edges, in insertion (global-index) order, fixed 32 bytes each:
//     parent pointers stay addressable by stateID after the keys
//     spill, so counterexample traces rebuild across sealed levels
//     with one pread per hop.
//
// The footer pins the section offsets and an FNV-1a checksum of
// everything before it; openRun rejects files whose geometry, order,
// or checksum is off, so a truncated or corrupted spill never decodes
// into a silently wrong visited set (FuzzRunFileDecode hammers this).

const (
	runMagic    = 0x3152434d // "MCR1" little-endian
	runFooterSz = 48
	runHeaderSz = 32
	// runBlockLen is the number of keys per compressed block: large
	// enough to amortize the raw first key, small enough that a probe
	// decodes only a few KB.
	runBlockLen = 64
	// runEdgeSz is the fixed on-disk size of one parent edge.
	runEdgeSz = 32
)

// runFileName names the seq-th sealed run of a store.
func runFileName(seq int) string { return fmt.Sprintf("run-%06d.mcr", seq) }

// fnv1a is the checksum used by the run and snapshot codecs — cheap,
// streaming, and dependency-free. Integrity against bugs and truncation,
// not adversaries.
func fnv1a(h uint64, p []byte) uint64 {
	if h == 0 {
		h = 0xcbf29ce484222325
	}
	for _, b := range p {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h
}

// putEdge encodes one parent edge into a fixed 32-byte record.
func putEdge(dst []byte, e edge) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(e.parent))
	binary.LittleEndian.PutUint64(dst[8:], e.act.Block)
	binary.LittleEndian.PutUint64(dst[16:], e.act.Value)
	dst[24] = uint8(e.act.Proc)
	dst[25] = uint8(e.act.Kind)
	dst[26] = uint8(e.act.Op)
	dst[27] = uint8(e.act.Word)
	dst[28], dst[29], dst[30], dst[31] = 0, 0, 0, 0
}

// getEdge decodes a 32-byte edge record.
func getEdge(src []byte) edge {
	return edge{
		parent: stateID(binary.LittleEndian.Uint64(src[0:])),
		act: Action{
			Block: binary.LittleEndian.Uint64(src[8:]),
			Value: binary.LittleEndian.Uint64(src[16:]),
			Proc:  int(src[24]),
			Kind:  ActionKind(src[25]),
			Op:    opFromByte(src[26]),
			Word:  int(src[27]),
		},
	}
}

// runWriter streams one sealed run to disk: keys added in sorted order,
// then the edge section, then hashes/index/footer on close.
type runWriter struct {
	f       *os.File
	path    string
	kw      int
	base    uint64
	buf     []byte
	off     uint64
	sum     uint64
	count   int
	inBlock int
	prev    []uint64
	index   []runBlockRef
	hashes  []uint64
}

// runBlockRef is one block-index entry: the block's first key (owned
// copy) and its file offset.
type runBlockRef struct {
	first []uint64
	off   uint64
}

func newRunWriter(dir string, seq int, kw int, base uint64) (*runWriter, error) {
	path := filepath.Join(dir, runFileName(seq))
	f, err := os.OpenFile(path+".tmp", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &runWriter{f: f, path: path, kw: kw, base: base, prev: make([]uint64, kw)}
	hdr := make([]byte, runHeaderSz)
	binary.LittleEndian.PutUint32(hdr[0:], runMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(kw))
	binary.LittleEndian.PutUint64(hdr[8:], base)
	// count and nBlocks land in the footer; header bytes 16..32 are
	// reserved (zero) so the header can be written up front.
	return w, w.write(hdr)
}

func (w *runWriter) write(p []byte) error {
	w.sum = fnv1a(w.sum, p)
	w.off += uint64(len(p))
	_, err := w.f.Write(p)
	return err
}

// add appends one key (strictly greater than the previous) plus its
// hash.
func (w *runWriter) add(key []uint64, hash uint64) error {
	w.buf = w.buf[:0]
	if w.inBlock == 0 {
		w.index = append(w.index, runBlockRef{first: append([]uint64(nil), key...), off: w.off})
		for _, v := range key {
			w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
		}
	} else {
		for i, v := range key {
			w.buf = binary.AppendUvarint(w.buf, v^w.prev[i])
		}
	}
	copy(w.prev, key)
	w.hashes = append(w.hashes, hash)
	w.count++
	w.inBlock++
	if w.inBlock == runBlockLen {
		w.inBlock = 0
	}
	return w.write(w.buf)
}

// finish writes the edge, hash, index, and footer sections. edges must
// hold count records in insertion order, already encoded (runEdgeSz
// bytes each).
func (w *runWriter) finish(edges []byte) (retErr error) {
	defer func() {
		if w.f != nil {
			w.f.Close()
			os.Remove(w.path + ".tmp")
		}
	}()
	if len(edges) != w.count*runEdgeSz {
		return fmt.Errorf("mcheck: run writer: %d edge bytes for %d entries", len(edges), w.count)
	}
	edgesOff := w.off
	if err := w.write(edges); err != nil {
		return err
	}
	hashesOff := w.off
	w.buf = w.buf[:0]
	for _, h := range w.hashes {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, h)
	}
	if err := w.write(w.buf); err != nil {
		return err
	}
	indexOff := w.off
	w.buf = w.buf[:0]
	for _, br := range w.index {
		for _, v := range br.first {
			w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
		}
		w.buf = binary.LittleEndian.AppendUint64(w.buf, br.off)
	}
	if err := w.write(w.buf); err != nil {
		return err
	}
	ftr := make([]byte, runFooterSz)
	binary.LittleEndian.PutUint64(ftr[0:], edgesOff)
	binary.LittleEndian.PutUint64(ftr[8:], hashesOff)
	binary.LittleEndian.PutUint64(ftr[16:], indexOff)
	binary.LittleEndian.PutUint64(ftr[24:], uint64(w.count))
	binary.LittleEndian.PutUint32(ftr[32:], uint32(len(w.index)))
	binary.LittleEndian.PutUint32(ftr[36:], runMagic)
	// The checksum covers every preceding byte, footer head included,
	// so verification can hash [0, size-8) in one pass.
	w.sum = fnv1a(w.sum, ftr[:40])
	binary.LittleEndian.PutUint64(ftr[40:], w.sum)
	if _, err := w.f.Write(ftr); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.f = nil
		os.Remove(w.path + ".tmp")
		return err
	}
	w.f = nil
	return os.Rename(w.path+".tmp", w.path)
}

// runReader is one open sealed run: the block index and bounds live in
// memory; key blocks and edges are read on demand with ReadAt, so
// concurrent probes from BFS workers share the file handle statelessly.
type runReader struct {
	f         *os.File
	path      string
	kw        int
	base      uint64 // global index of the first edge entry
	count     int
	edgesOff  uint64
	hashesOff uint64
	index     []runBlockRef
	last      []uint64 // greatest key in the run
}

// openRun validates and indexes a sealed run. verify re-reads the whole
// file to check the footer checksum — done when adopting files from a
// checkpoint (resume), skipped for files this process just wrote.
func openRun(path string, kw int, verify bool) (*runReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := indexRun(f, path, kw, verify)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func indexRun(f *os.File, path string, kw int, verify bool) (*runReader, error) {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("mcheck: run %s: %s", path, fmt.Sprintf(format, args...))
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < runHeaderSz+runFooterSz {
		return nil, fail("short file (%d bytes)", size)
	}
	hdr := make([]byte, runHeaderSz)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != runMagic {
		return nil, fail("bad magic")
	}
	if got := int(binary.LittleEndian.Uint32(hdr[4:])); got != kw {
		return nil, fail("key width %d, want %d", got, kw)
	}
	ftr := make([]byte, runFooterSz)
	if _, err := f.ReadAt(ftr, size-runFooterSz); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(ftr[36:]) != runMagic {
		return nil, fail("bad footer magic")
	}
	r := &runReader{
		f: f, path: path, kw: kw,
		base:      binary.LittleEndian.Uint64(hdr[8:]),
		edgesOff:  binary.LittleEndian.Uint64(ftr[0:]),
		hashesOff: binary.LittleEndian.Uint64(ftr[8:]),
		count:     int(binary.LittleEndian.Uint64(ftr[24:])),
	}
	indexOff := binary.LittleEndian.Uint64(ftr[16:])
	nBlocks := int(binary.LittleEndian.Uint32(ftr[32:]))
	bodyEnd := uint64(size - runFooterSz)
	// Geometry checks: every section must be in order, inside the file,
	// and exactly the size its entry count implies.
	if r.count <= 0 || r.count > 1<<40 || nBlocks != (r.count+runBlockLen-1)/runBlockLen {
		return nil, fail("inconsistent entry/block counts (%d entries, %d blocks)", r.count, nBlocks)
	}
	if r.edgesOff < runHeaderSz || r.edgesOff > r.hashesOff || r.hashesOff > indexOff || indexOff > bodyEnd {
		return nil, fail("section offsets out of order")
	}
	if r.hashesOff-r.edgesOff != uint64(r.count)*runEdgeSz {
		return nil, fail("edge section size mismatch")
	}
	if indexOff-r.hashesOff != uint64(r.count)*8 {
		return nil, fail("hash section size mismatch")
	}
	if bodyEnd-indexOff != uint64(nBlocks)*uint64(kw+1)*8 {
		return nil, fail("index section size mismatch")
	}
	if verify {
		sum, err := checksumFile(f, size-8)
		if err != nil {
			return nil, err
		}
		if sum != binary.LittleEndian.Uint64(ftr[40:]) {
			return nil, fail("checksum mismatch")
		}
	}
	idx := make([]byte, bodyEnd-indexOff)
	if _, err := f.ReadAt(idx, int64(indexOff)); err != nil {
		return nil, err
	}
	r.index = make([]runBlockRef, nBlocks)
	prevOff := uint64(runHeaderSz)
	for i := range r.index {
		rec := idx[i*(kw+1)*8:]
		first := make([]uint64, kw)
		for j := range first {
			first[j] = binary.LittleEndian.Uint64(rec[j*8:])
		}
		off := binary.LittleEndian.Uint64(rec[kw*8:])
		if off < prevOff || off >= r.edgesOff {
			return nil, fail("block %d offset out of range", i)
		}
		if i > 0 && !lessKey(r.index[i-1].first, first) {
			return nil, fail("block index not sorted")
		}
		r.index[i] = runBlockRef{first: first, off: off}
		prevOff = off
	}
	// Decode the last block once to learn the run's greatest key and
	// prove the tail decodes.
	sc := newProbeScratch(kw)
	keys, n, err := r.readBlock(len(r.index)-1, sc)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fail("empty final block")
	}
	r.last = append([]uint64(nil), keys[(n-1)*kw:n*kw]...)
	return r, nil
}

// checksumFile re-reads [0, end) and returns its FNV-1a sum. end is the
// checksum field's own offset.
func checksumFile(f *os.File, end int64) (uint64, error) {
	var sum uint64
	buf := make([]byte, 1<<16)
	for off := int64(0); off < end; {
		n := int64(len(buf))
		if off+n > end {
			n = end - off
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return 0, err
		}
		sum = fnv1a(sum, buf[:n])
		off += n
	}
	return sum, nil
}

func (r *runReader) close() error { return r.f.Close() }

// blockLen returns the number of keys in block i.
func (r *runReader) blockLen(i int) int {
	if i == len(r.index)-1 {
		return r.count - i*runBlockLen
	}
	return runBlockLen
}

// blockBytes returns block i's byte extent.
func (r *runReader) blockBytes(i int) (off, n uint64) {
	off = r.index[i].off
	end := r.edgesOff
	if i+1 < len(r.index) {
		end = r.index[i+1].off
	}
	return off, end - off
}

// readBlock decodes block i into sc's cache slot and returns the flat
// key array (n keys of kw words).
func (r *runReader) readBlock(i int, sc *probeScratch) ([]uint64, int, error) {
	slot := &sc.blocks[i%len(sc.blocks)]
	if slot.r == r && slot.block == i && slot.n > 0 {
		return slot.keys, slot.n, nil
	}
	off, bn := r.blockBytes(i)
	if cap(sc.buf) < int(bn) {
		sc.buf = make([]byte, bn)
	}
	buf := sc.buf[:bn]
	if _, err := r.f.ReadAt(buf, int64(off)); err != nil {
		return nil, 0, fmt.Errorf("mcheck: run %s: block %d: %w", r.path, i, err)
	}
	n := r.blockLen(i)
	if need := n * r.kw; cap(slot.keys) < need {
		slot.keys = make([]uint64, need)
	}
	keys := slot.keys[:n*r.kw]
	if len(buf) < r.kw*8 {
		return nil, 0, fmt.Errorf("mcheck: run %s: block %d truncated", r.path, i)
	}
	for j := 0; j < r.kw; j++ {
		keys[j] = binary.LittleEndian.Uint64(buf[j*8:])
	}
	p := r.kw * 8
	for k := 1; k < n; k++ {
		prev := keys[(k-1)*r.kw : k*r.kw]
		cur := keys[k*r.kw : (k+1)*r.kw]
		for j := 0; j < r.kw; j++ {
			d, sz := binary.Uvarint(buf[p:])
			if sz <= 0 {
				return nil, 0, fmt.Errorf("mcheck: run %s: block %d key %d corrupt varint", r.path, i, k)
			}
			p += sz
			cur[j] = prev[j] ^ d
		}
	}
	slot.r, slot.block, slot.n = r, i, n
	return keys, n, nil
}

// inRange reports whether key could be in this run.
func (r *runReader) inRange(key []uint64) bool {
	return !lessKey(key, r.index[0].first) && !lessKey(r.last, key)
}

// probe reports whether key is present in the run.
func (r *runReader) probe(key []uint64, sc *probeScratch) (bool, error) {
	if !r.inRange(key) {
		return false, nil
	}
	// Last block whose first key is <= key.
	i := sort.Search(len(r.index), func(i int) bool {
		return lessKey(key, r.index[i].first)
	}) - 1
	if i < 0 {
		return false, nil
	}
	keys, n, err := r.readBlock(i, sc)
	if err != nil {
		return false, err
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		k := keys[mid*r.kw : (mid+1)*r.kw]
		switch {
		case equalKey(k, key):
			return true, nil
		case lessKey(k, key):
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return false, nil
}

// contains reports whether this run covers global edge index idx.
func (r *runReader) containsIdx(idx uint64) bool {
	return idx >= r.base && idx < r.base+uint64(r.count)
}

// edgeAt reads the parent edge of global index idx.
func (r *runReader) edgeAt(idx uint64, sc *probeScratch) (edge, error) {
	if cap(sc.buf) < runEdgeSz {
		sc.buf = make([]byte, runEdgeSz)
	}
	buf := sc.buf[:runEdgeSz]
	off := r.edgesOff + (idx-r.base)*runEdgeSz
	if _, err := r.f.ReadAt(buf, int64(off)); err != nil {
		return edge{}, fmt.Errorf("mcheck: run %s: edge %d: %w", r.path, idx, err)
	}
	return getEdge(buf), nil
}

// readHashes returns the run's hash section (sorted-key order), for
// re-seeding the in-memory fingerprint set on resume.
func (r *runReader) readHashes() ([]uint64, error) {
	buf := make([]byte, r.count*8)
	if _, err := r.f.ReadAt(buf, int64(r.hashesOff)); err != nil {
		return nil, fmt.Errorf("mcheck: run %s: hashes: %w", r.path, err)
	}
	out := make([]uint64, r.count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return out, nil
}

// readEdgesRaw returns the raw edge section, for compaction.
func (r *runReader) readEdgesRaw() ([]byte, error) {
	buf := make([]byte, r.count*runEdgeSz)
	if _, err := r.f.ReadAt(buf, int64(r.edgesOff)); err != nil {
		return nil, fmt.Errorf("mcheck: run %s: edges: %w", r.path, err)
	}
	return buf, nil
}

// fileSize returns the run's on-disk byte size.
func (r *runReader) fileSize() int64 {
	st, err := r.f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// runIter streams a run's sorted keys+hashes for compaction merges.
type runIter struct {
	r      *runReader
	sc     *probeScratch
	hashes []uint64
	block  int
	pos    int
	keys   []uint64
	n      int
}

func newRunIter(r *runReader) (*runIter, error) {
	hashes, err := r.readHashes()
	if err != nil {
		return nil, err
	}
	return &runIter{r: r, sc: newProbeScratch(r.kw), hashes: hashes, block: -1}, nil
}

// next advances and returns the next key (aliasing an internal buffer)
// plus its hash; ok is false at the end.
func (it *runIter) next() (key []uint64, hash uint64, ok bool, err error) {
	if it.block < 0 || it.pos >= it.n {
		it.block++
		if it.block >= len(it.r.index) {
			return nil, 0, false, nil
		}
		it.keys, it.n, err = it.r.readBlock(it.block, it.sc)
		if err != nil {
			return nil, 0, false, err
		}
		it.pos = 0
	}
	i := it.block*runBlockLen + it.pos
	key = it.keys[it.pos*it.r.kw : (it.pos+1)*it.r.kw]
	it.pos++
	return key, it.hashes[i], true, nil
}
