package mcheck

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// fuzzKW is the key width every fuzzed decoder runs at. Width
// mismatches are part of what the decoders must reject, so corpus
// bytes written at other widths are still useful inputs.
const fuzzKW = 3

// fuzzSessionOptions builds the session whose loadSession the fuzzer
// drives; its key layout must be stable, not pretty (kw here is
// whatever bitar p2 b2 w2 packs to, not fuzzKW).
func fuzzSessionOptions() Options {
	return Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 2, Words: 2, Depth: 3, Workers: 1}
}

// FuzzRunFileDecode throws arbitrary bytes at every on-disk decoder of
// the spill/checkpoint layer — sealed run files, checkpoint snapshots,
// and shard-session snapshots, selected by the first input byte. Each
// decoder may reject the input (they almost always must) but may never
// panic, hang, or allocate unboundedly: all three read length fields
// from the file and the bounds checks on those are exactly what this
// target exercises.
func FuzzRunFileDecode(f *testing.F) {
	f.Fuzz(func(t *testing.T, which byte, data []byte) {
		dir := t.TempDir()
		switch which % 3 {
		case 0:
			path := filepath.Join(dir, "fuzz.mcr")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := openRun(path, fuzzKW, true)
			if err == nil {
				// A file that passes verification must also scan cleanly.
				var sc probeScratch
				if it, err := newRunIter(r); err == nil {
					for {
						key, _, ok, err := it.next()
						if err != nil || !ok {
							break
						}
						if _, err := r.probe(key, &sc); err != nil {
							break
						}
					}
				}
				r.close()
			}
		case 1:
			path := filepath.Join(dir, "fuzz.mcs")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			st := newSpillStore(fuzzKW, dir, 0)
			_, _, _ = readSnapshot(path, st)
		case 2:
			s, err := NewShardSession(fuzzSessionOptions(), 0, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.SetCheckpointDir(dir, true); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, sessFileName), data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _ = s.loadSession()
		}
	})
}

// TestRegenerateFuzzSeeds rewrites the committed seed corpus under
// testdata/fuzz/FuzzRunFileDecode from freshly encoded valid files —
// one per decoder — so the fuzzer starts from inputs that reach deep
// past the header checks. Run with MCHECK_WRITE_FUZZ_SEEDS=1 after an
// on-disk format change; it is a no-op otherwise.
func TestRegenerateFuzzSeeds(t *testing.T) {
	if os.Getenv("MCHECK_WRITE_FUZZ_SEEDS") == "" {
		t.Skip("set MCHECK_WRITE_FUZZ_SEEDS=1 to regenerate the seed corpus")
	}
	corpusDir := filepath.Join("testdata", "fuzz", "FuzzRunFileDecode")
	if err := os.MkdirAll(corpusDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSeed := func(name string, which byte, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\nbyte(%q)\n[]byte(%q)\n", which, data)
		if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()

	// Seed 0: a sealed run file with enough keys for delta blocks.
	w, err := newRunWriter(dir, 1, fuzzKW, 0)
	if err != nil {
		t.Fatal(err)
	}
	var edges []byte
	var ebuf [runEdgeSz]byte
	cur := make([]uint64, fuzzKW)
	for i := 0; i < 200; i++ {
		cur[0] += 1 + uint64(i%7)
		cur[1] = uint64(i) * 3
		if err := w.add(cur, hashKey(cur)); err != nil {
			t.Fatal(err)
		}
		putEdge(ebuf[:], edge{parent: packID(i%shardCount, i), act: Action{Proc: i % 2}})
		edges = append(edges, ebuf[:]...)
	}
	if err := w.finish(edges); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(w.path)
	if err != nil {
		t.Fatal(err)
	}
	writeSeed("seed-runfile", 0, data)

	// Seed 1: a checkpoint snapshot of a small live store.
	st := newSpillStore(fuzzKW, dir, 0)
	key := make([]uint64, fuzzKW)
	for i := 0; i < 50; i++ {
		key[0] = uint64(i) + 1
		key[2] = uint64(i * i)
		h := hashKey(key)
		st.shards[shardOfHash(h)].live.insert(key, h, edge{parent: noParent})
	}
	snapPath := filepath.Join(dir, "seed.mcs")
	if err := writeSnapshot(snapPath, st, 2, 50, 199, make([]int, shardCount)); err != nil {
		t.Fatal(err)
	}
	if data, err = os.ReadFile(snapPath); err != nil {
		t.Fatal(err)
	}
	writeSeed("seed-snapshot", 1, data)

	// Seed 2: a shard-session snapshot, written by a real Open+Absorb
	// so it has states, ext edges, and a frontier.
	sessDir := filepath.Join(dir, "sess")
	s, err := NewShardSession(fuzzSessionOptions(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetCheckpointDir(sessDir, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(); err != nil {
		t.Fatal(err)
	}
	ex, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Absorb(1, ex.Out[0]); err != nil {
		t.Fatal(err)
	}
	if data, err = os.ReadFile(filepath.Join(sessDir, sessFileName)); err != nil {
		t.Fatal(err)
	}
	writeSeed("seed-session", 2, data)
}
