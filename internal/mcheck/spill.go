package mcheck

import (
	"fmt"
	"os"
	"sort"

	"cachesync/internal/protocol"
)

// LSM-shaped visited store. With Options.MemBudget set, each of the 64
// visited shards holds only its recent states in the open-addressing
// live table; when a shard's live bytes cross the per-shard budget at a
// level boundary, every non-frontier entry is sealed into a sorted,
// delta+varint-compressed immutable run on disk (runfile.go) and the
// live table is rebuilt holding just the frontier. What stays in RAM
// per sealed state is one 64-bit hash fingerprint, so the dominant
// probe — a state never seen before — is answered negatively without
// touching disk; only a fingerprint hit (a true duplicate, or a 2^-64
// collision) pays a pread to confirm against the exact keys. Runs
// merge-compact when a shard accumulates spillCompactAt of them.
//
// Invariants the explorer relies on:
//
//   - stateID stability: an entry's global index (insertion order
//     within its shard) never changes. The live table holds the suffix
//     [sealed, count); sealed prefixes are addressed through each
//     run's base. Frontier entries are never sealed — the next level
//     reads their keys from the live table — because a seal covers
//     exactly [sealed, frontierStart).
//   - Exactness: membership is live-table lookup ∨ (fingerprint hit ∧
//     exact key match on disk). Fingerprints alone never admit a
//     state, so a hash collision costs a read, not soundness.
//   - Determinism: seals fire at level boundaries from byte counts
//     that depend only on the explored state space, never on worker
//     scheduling — so run files, spill counters, and the resumed
//     exploration are byte-identical across worker counts and across
//     kill/resume (checkpoint.go leans on this).

// spillCompactAt is the per-shard run count that triggers a full merge
// compaction.
const spillCompactAt = 4

// edgeMemSz approximates one in-memory edge (stateID + Action) for
// budget accounting.
const edgeMemSz = 48

func opFromByte(b byte) protocol.Op { return protocol.Op(b) }

// fpSet is an open-addressing set of 64-bit key hashes — the in-memory
// fingerprint of a shard's sealed entries.
type fpSet struct {
	slots   []uint64
	mask    uint64
	n       int
	hasZero bool
}

func (f *fpSet) add(h uint64) {
	if h == 0 {
		f.hasZero = true
		return
	}
	if f.slots == nil {
		f.slots = make([]uint64, 256)
		f.mask = 255
	}
	if 4*(f.n+1) > 3*len(f.slots) {
		ns := make([]uint64, 2*len(f.slots))
		nm := uint64(len(ns) - 1)
		for _, v := range f.slots {
			if v == 0 {
				continue
			}
			p := v & nm
			for ns[p] != 0 {
				p = (p + 1) & nm
			}
			ns[p] = v
		}
		f.slots, f.mask = ns, nm
	}
	pos := h & f.mask
	for {
		v := f.slots[pos]
		if v == 0 {
			f.slots[pos] = h
			f.n++
			return
		}
		if v == h {
			return
		}
		pos = (pos + 1) & f.mask
	}
}

func (f *fpSet) contains(h uint64) bool {
	if h == 0 {
		return f.hasZero
	}
	if f.slots == nil {
		return false
	}
	pos := h & f.mask
	for {
		v := f.slots[pos]
		if v == 0 {
			return false
		}
		if v == h {
			return true
		}
		pos = (pos + 1) & f.mask
	}
}

func (f *fpSet) bytes() int64 { return int64(len(f.slots)) * 8 }

// probeScratch is per-goroutine scratch for disk probes: a read buffer
// and a small cache of decoded key blocks, so repeated probes into the
// same neighbourhood decode once.
type probeScratch struct {
	buf    []byte
	blocks [8]blockCache
}

type blockCache struct {
	r     *runReader
	block int
	n     int
	keys  []uint64
}

func newProbeScratch(kw int) *probeScratch { return &probeScratch{} }

// spillShard is one visited shard: live suffix table, sealed runs, and
// the sealed fingerprint set.
type spillShard struct {
	live   *shardTable
	sealed int // global index of the first live entry
	runs   []*runReader
	fp     fpSet
}

// spillStore is the visited set of one exploration: 64 spillShards plus
// the spill directory and budget. With budget 0 it degenerates to the
// pure in-memory store (no dir, no seals, identical behavior to the
// pre-spill checker).
type spillStore struct {
	kw       int
	dir      string
	budget   int64 // per-shard live-byte budget; 0 = never seal
	shards   [shardCount]spillShard
	nextSeq  int
	seals    int
	obsolete []string // compacted-away files, deleted after next checkpoint
}

// newSpillStore builds an empty store. dir may be "" when budget is 0.
func newSpillStore(kw int, dir string, memBudget int64) *spillStore {
	st := &spillStore{kw: kw, dir: dir}
	if memBudget > 0 {
		st.budget = memBudget / shardCount
		if st.budget < 1 {
			st.budget = 1
		}
	}
	for i := range st.shards {
		st.shards[i].live = newShardTable(kw)
	}
	return st
}

func (st *spillStore) close() {
	for i := range st.shards {
		for _, r := range st.shards[i].runs {
			r.close()
		}
		st.shards[i].runs = nil
	}
}

// count returns shard s's total entry count (sealed + live).
func (st *spillStore) count(s int) int { return st.shards[s].sealed + st.shards[s].live.n }

// key returns the key of id, which must be live (callers only read
// frontier keys, and frontiers are never sealed).
func (st *spillStore) key(id stateID) []uint64 {
	sh := &st.shards[id.shard()]
	return sh.live.key(id.index() - sh.sealed)
}

// insert adds a key that must not be present and returns its global
// index within shard s.
func (st *spillStore) insert(s int, key []uint64, h uint64, e edge) int {
	sh := &st.shards[s]
	return sh.sealed + sh.live.insert(key, h, e)
}

// contains reports whether key (hash h) has been visited, consulting
// the live table first, then the fingerprint set, and only on a
// fingerprint hit the sealed runs on disk.
func (st *spillStore) contains(s int, key []uint64, h uint64, sc *probeScratch) (bool, error) {
	sh := &st.shards[s]
	if sh.live.lookup(key, h) >= 0 {
		return true, nil
	}
	if !sh.fp.contains(h) {
		return false, nil
	}
	for _, r := range sh.runs {
		ok, err := r.probe(key, sc)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// edgeOf returns id's parent edge, reading from disk when the entry is
// sealed.
func (st *spillStore) edgeOf(id stateID, sc *probeScratch) (edge, error) {
	sh := &st.shards[id.shard()]
	if i := id.index(); i >= sh.sealed {
		return sh.live.edges[i-sh.sealed], nil
	}
	idx := uint64(id.index())
	for _, r := range sh.runs {
		if r.containsIdx(idx) {
			return r.edgeAt(idx, sc)
		}
	}
	return edge{}, fmt.Errorf("mcheck: spill: no run covers shard %d entry %d", id.shard(), id.index())
}

// liveBytes approximates shard s's live-table memory.
func (st *spillStore) liveBytes(s int) int64 {
	t := st.shards[s].live
	return int64(len(t.keys))*8 + int64(len(t.hashes))*8 +
		int64(len(t.edges))*edgeMemSz + int64(len(t.slots))*4
}

// sealOver seals every over-budget shard after a level's merge.
// frontierStart[s] is shard s's global count before the merge: entries
// below it are no longer frontier and may go to disk.
func (st *spillStore) sealOver(frontierStart []int) error {
	if st.budget == 0 {
		return nil
	}
	for s := range st.shards {
		if st.liveBytes(s) <= st.budget || frontierStart[s] <= st.shards[s].sealed {
			continue
		}
		if err := st.seal(s, frontierStart[s]); err != nil {
			return err
		}
		if len(st.shards[s].runs) >= spillCompactAt {
			if err := st.compact(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// seal writes shard s's live entries [sealed, upto) into a new run and
// rebuilds the live table holding only [upto, count).
func (st *spillStore) seal(s, upto int) error {
	sh := &st.shards[s]
	t := sh.live
	n := upto - sh.sealed // live entries to seal
	// Sort the sealed range by key; edges stay in insertion order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return lessKey(t.key(order[i]), t.key(order[j]))
	})
	w, err := newRunWriter(st.dir, st.nextSeq, st.kw, uint64(sh.sealed))
	if err != nil {
		return err
	}
	for _, i := range order {
		if err := w.add(t.key(i), t.hashes[i]); err != nil {
			return err
		}
	}
	edges := make([]byte, n*runEdgeSz)
	for i := 0; i < n; i++ {
		putEdge(edges[i*runEdgeSz:], t.edges[i])
	}
	if err := w.finish(edges); err != nil {
		return err
	}
	r, err := openRun(w.path, st.kw, false)
	if err != nil {
		return err
	}
	for _, i := range order {
		sh.fp.add(t.hashes[i])
	}
	sh.runs = append(sh.runs, r)
	st.nextSeq++
	st.seals++
	// Rebuild the live table with the surviving frontier entries
	// [upto, count), preserving their insertion order.
	nl := newShardTable(st.kw)
	for i := n; i < t.n; i++ {
		nl.insert(t.key(i), t.hashes[i], t.edges[i])
	}
	sh.live = nl
	sh.sealed = upto
	return nil
}

// compact merges all of shard s's runs into one. Runs hold disjoint
// key sets (a key is sealed exactly once), so the merge is a plain
// k-way interleave; edge sections concatenate in base order to stay in
// insertion order.
func (st *spillStore) compact(s int) error {
	sh := &st.shards[s]
	old := append([]*runReader(nil), sh.runs...)
	sort.Slice(old, func(i, j int) bool { return old[i].base < old[j].base })
	w, err := newRunWriter(st.dir, st.nextSeq, st.kw, old[0].base)
	if err != nil {
		return err
	}
	type head struct {
		it   *runIter
		key  []uint64
		hash uint64
	}
	heads := make([]*head, 0, len(old))
	for _, r := range old {
		it, err := newRunIter(r)
		if err != nil {
			return err
		}
		k, h, ok, err := it.next()
		if err != nil {
			return err
		}
		if ok {
			heads = append(heads, &head{it: it, key: append([]uint64(nil), k...), hash: h})
		}
	}
	for len(heads) > 0 {
		mi := 0
		for i := 1; i < len(heads); i++ {
			if lessKey(heads[i].key, heads[mi].key) {
				mi = i
			}
		}
		if err := w.add(heads[mi].key, heads[mi].hash); err != nil {
			return err
		}
		k, h, ok, err := heads[mi].it.next()
		if err != nil {
			return err
		}
		if ok {
			heads[mi].key = append(heads[mi].key[:0], k...)
			heads[mi].hash = h
		} else {
			heads[mi] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
	}
	var edges []byte
	for _, r := range old {
		raw, err := r.readEdgesRaw()
		if err != nil {
			return err
		}
		edges = append(edges, raw...)
	}
	if err := w.finish(edges); err != nil {
		return err
	}
	r, err := openRun(w.path, st.kw, false)
	if err != nil {
		return err
	}
	for _, o := range old {
		o.close()
		st.obsolete = append(st.obsolete, o.path)
	}
	sh.runs = []*runReader{r}
	st.nextSeq++
	return nil
}

// dropObsolete deletes run files superseded by compaction. With
// checkpointing the caller holds the deletes until after the manifest
// rename, so a crash between compaction and checkpoint leaves the
// files the old manifest references intact.
func (st *spillStore) dropObsolete() {
	for _, p := range st.obsolete {
		os.Remove(p)
	}
	st.obsolete = nil
}

// Aggregate stats for Result and -progress.

func (st *spillStore) ramBytes() int64 {
	var b int64
	for s := range st.shards {
		b += st.liveBytes(s) + st.shards[s].fp.bytes()
	}
	return b
}

func (st *spillStore) spilledBytes() int64 {
	var b int64
	for s := range st.shards {
		for _, r := range st.shards[s].runs {
			b += r.fileSize()
		}
	}
	return b
}

func (st *spillStore) spilledStates() int64 {
	var n int64
	for s := range st.shards {
		n += int64(st.shards[s].sealed)
	}
	return n
}

func (st *spillStore) runCount() int {
	n := 0
	for s := range st.shards {
		n += len(st.shards[s].runs)
	}
	return n
}
