// Package mcheck is a bounded exhaustive model checker for the ten
// cache-synchronization protocols: it enumerates every interleaving of
// processor operations (reads, writes, lock acquire/release,
// whole-block writes, and evictions) over a small configuration (2–3
// caches, 1–2 blocks, depth ≤ ~10) and verifies the DESIGN §6
// invariants — serialization, latest version with real data values,
// single source, lock mutual exclusion, and conservation — at every
// reachable state.
//
// The checker is built from the same parts as the simulator: it drives
// real cache.Cache, memory.Memory, and protocol.Protocol objects
// through an atomic-step executor mirroring internal/sim's bus
// semantics (probe → broadcast snoop → memory respond → complete →
// install), so a state the checker reaches is a state the simulator
// can reach. States are packed into fixed-width binary keys (machine
// encodeKey), optionally quotiented by processor symmetry (canon.go),
// hashed once, deduplicated in open-addressing shard tables (table.go),
// and explored by a level-synchronized parallel BFS (workers shard the
// frontier; the level barrier preserves BFS order), so the first
// violation found is a shortest — minimized — counterexample. A
// counterexample replays both through the executor and, when the trace
// is sim-representable, through a real sim.System run whose bus
// activity renders as a paper-style sequence diagram
// (report.SequenceDiagram).
//
// As a derived artifact, exploring the paper's own protocol regenerates
// the processor half of Figure 10 from reachability: every
// (state, operation) → outcome arc actually exercised is collected and
// cross-checked against the expected-arc table transcribed from the
// paper (report.Figure10ExpectedArcs), closing the loop between the
// diagram and the explored state space.
package mcheck

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"cachesync/internal/protocol"
)

// Options configures one bounded exploration.
type Options struct {
	// Protocol is the scheme under check (possibly wrapped by Mutate
	// for fault-injection testing).
	Protocol protocol.Protocol
	// Procs is the number of caches/processors (1–8). Symmetry
	// reduction canonicalizes over all Procs! permutations, so its
	// per-state cost grows factorially; p=5 (120 orbits) is the widest
	// configuration exercised by the test suite.
	Procs int
	// Blocks is the number of distinct memory blocks in the universe.
	Blocks int
	// Words is the block size in words (forced to 1 for protocols that
	// require one-word blocks).
	Words int
	// Depth bounds the operation-sequence length explored.
	Depth int
	// Workers is the parallel BFS worker count (≤ 1 means serial).
	Workers int
	// MaxStates truncates the search after this many distinct states
	// (0 means a safe default).
	MaxStates int
	// RecordArcs collects the (state, op) → outcome arcs exercised by
	// the acting cache, for the Figure 10 reachability cross-check.
	RecordArcs bool
	// NoTables keeps the executor and its caches on the protocol
	// method path instead of the compiled transition tables (mutant
	// wrappers fall back automatically either way).
	NoTables bool
	// Symmetry enables processor-symmetry reduction: states are
	// explored up to permutation of processor indices, shrinking the
	// reachable space by up to Procs! with identical verdicts (see
	// canon.go). Counterexample traces are de-canonicalized, so they
	// replay unchanged.
	Symmetry bool
	// POR enables partial-order reduction: actions on different blocks
	// commute (each touches only its own block's caches lines, memory
	// words, lock tag, and shadow, and every invariant is per-block),
	// so instead of exploring their interleavings the checker explores
	// each block's subsystem separately and never visits a state with
	// two modified blocks. Verdicts and counterexamples are identical
	// to the unreduced run (see por.go for the argument and the
	// differential test for the proof); state/transition counts and
	// Exhausted/DepthReached cover the union of the per-block runs.
	// Composes with Symmetry.
	POR bool
	// MemBudget, when positive, bounds the visited set's in-memory
	// bytes: each of the 64 shards gets MemBudget/64, and a shard that
	// crosses it at a level boundary seals its non-frontier entries
	// into a sorted, delta+varint-compressed immutable run on disk
	// (see spill.go), keeping one 64-bit fingerprint per sealed state
	// in RAM. Verdicts, counterexamples, and counts are identical to
	// the in-memory run; only disk usage and speed differ. 0 keeps the
	// whole visited set in memory.
	MemBudget int64
	// CheckpointDir, when set, enables checkpoint/resume: after every
	// completed BFS level the frontier, live visited tables, sealed-run
	// manifest, and counters are atomically serialized into this
	// directory (spilled runs live there too). A run killed mid-flight
	// can be resumed with Resume and produces a byte-identical Result.
	// Does not compose with RecordArcs.
	CheckpointDir string
	// Resume, with CheckpointDir, resumes from the checkpoint in the
	// directory if one exists (same options required), and starts
	// fresh otherwise — so a caller can always pass Resume and get
	// at-most-once exploration of each level.
	Resume bool
	// Context, when non-nil, cancels the exploration: every BFS worker
	// polls it per frontier state, so a deadline or Ctrl-C aborts
	// mid-level rather than after the frontier drains. Run then returns
	// an error wrapping ctx.Err() (test with errors.Is).
	Context context.Context
	// Progress, when set, is called from the coordinating goroutine
	// after every completed BFS level with the cumulative counts and
	// the visited-store footprint — the daemon streams these to job
	// watchers and cmd/mcheck -progress renders them.
	Progress func(ProgressInfo)

	// stateHook, when set, is called once for every distinct visited
	// state with its packed key (the canonical key under Symmetry).
	// The slice aliases table storage and must not be retained. Tests
	// use it to prove the symmetry quotient exact.
	stateHook func(key []uint64)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Procs == 0 {
		out.Procs = 2
	}
	if out.Blocks == 0 {
		out.Blocks = 1
	}
	if out.Words == 0 {
		out.Words = 1
	}
	if out.Depth == 0 {
		out.Depth = 6
	}
	if out.Workers < 1 {
		out.Workers = 1
	}
	if out.MaxStates == 0 {
		out.MaxStates = 1 << 21
	}
	if out.Protocol != nil && out.Protocol.Features().OneWordBlocks {
		out.Words = 1
	}
	return out
}

// ProgressInfo is the per-level snapshot passed to Options.Progress.
type ProgressInfo struct {
	// Depth is the just-completed BFS level.
	Depth int
	// States and Transitions are cumulative (across a resume, too).
	States      int64
	Transitions int64
	// StatesPerSec is the exploration rate of this process (states
	// explored since start or resume over wall time).
	StatesPerSec float64
	// RAMBytes approximates the visited store's in-memory footprint
	// (live tables + sealed fingerprints); SpilledBytes and SpillRuns
	// describe the sealed runs on disk (zero without MemBudget).
	RAMBytes     int64
	SpilledBytes int64
	SpillRuns    int
}

// ActionKind discriminates the two step families.
type ActionKind uint8

const (
	// ActOp is a processor operation (read/write/lock/...).
	ActOp ActionKind = iota
	// ActEvict victimizes a block from a cache, exercising writeback
	// and lock-purge obligations.
	ActEvict
)

// Action is one atomic step of the model: a processor either performs
// one memory operation to completion (bus transactions included) or
// evicts a block from its cache.
type Action struct {
	Proc  int
	Kind  ActionKind
	Op    protocol.Op
	Block uint64
	Word  int
	Value uint64
}

// String renders the action for counterexample traces.
func (a Action) String() string {
	if a.Kind == ActEvict {
		return fmt.Sprintf("p%d evict b%d", a.Proc, a.Block)
	}
	switch a.Op {
	case protocol.OpRead, protocol.OpReadEx, protocol.OpLock:
		return fmt.Sprintf("p%d %s b%d.%d", a.Proc, a.Op, a.Block, a.Word)
	default:
		return fmt.Sprintf("p%d %s b%d.%d=%d", a.Proc, a.Op, a.Block, a.Word, a.Value)
	}
}

// MarshalJSON renders the action in trace notation ("p0 write
// b0.0=1") — counterexample JSON is a human-facing summary.
func (a Action) MarshalJSON() ([]byte, error) {
	return json.Marshal(a.String())
}

// Counterexample is a shortest violating operation sequence.
type Counterexample struct {
	Trace      []Action `json:"trace"`
	Violations []string `json:"violations"`
}

// ObservedArc is one exercised transition of the acting cache: the
// pre-state of its line, the operation, and the outcome in Figure 10
// notation ("->R.S.C" for a silent transition, "bus:readx+lock" for a
// bus request).
type ObservedArc struct {
	State   protocol.State
	Op      protocol.Op
	Outcome string
}

// Result summarizes one exploration.
type Result struct {
	Protocol       string          `json:"protocol"`
	Procs          int             `json:"procs"`
	Blocks         int             `json:"blocks"`
	Words          int             `json:"words"`
	Depth          int             `json:"depth"`
	Workers        int             `json:"workers"`
	Symmetry       bool            `json:"symmetry"`
	POR            bool            `json:"por,omitempty"`
	States         int64           `json:"states"`
	Transitions    int64           `json:"transitions"`
	DepthReached   int             `json:"depth_reached"`
	Exhausted      bool            `json:"exhausted"` // frontier emptied before the depth bound
	Truncated      bool            `json:"truncated"` // MaxStates reached
	Elapsed        time.Duration   `json:"elapsed_ns"`
	StatesPerSec   float64         `json:"states_per_sec"`
	Counterexample *Counterexample `json:"counterexample,omitempty"`
	Arcs           []ObservedArc   `json:"-"`

	// Spill statistics, set only when MemBudget was positive. They are
	// deterministic — seals fire at level boundaries from byte counts
	// that do not depend on worker scheduling — so they participate in
	// the byte-identity contracts like every other non-timing field.
	MemBudget     int64 `json:"mem_budget,omitempty"`
	SpilledStates int64 `json:"spilled_states,omitempty"` // states sealed to disk at the end
	SpilledBytes  int64 `json:"spilled_bytes,omitempty"`  // on-disk run bytes at the end
	SpillRuns     int   `json:"spill_runs,omitempty"`     // run files at the end
	SpillSeals    int   `json:"spill_seals,omitempty"`    // seal events over the whole run
}
