package mcheck

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint/resume. At every completed BFS level, runCore serializes
// the exploration's resumable state into Options.CheckpointDir:
//
//   - snap-<depth>.mcs — binary snapshot of the live visited tables
//     (the part of the store not yet sealed to disk), the frontier
//     boundary per shard, and the counters. Bounded by MemBudget when
//     spilling; the full visited set otherwise.
//   - run-*.mcr — the sealed runs themselves (spill.go writes them
//     here when checkpointing is on, so they survive the process).
//   - MANIFEST.json — names the snapshot and the run files per shard.
//     Written last via tmp+rename, so the manifest on disk always
//     describes a complete, consistent set of files: the new snapshot
//     is durable before the manifest points at it, the previous
//     snapshot and compacted-away runs are deleted only after the
//     rename. A kill at any instant leaves either the old or the new
//     checkpoint intact.
//
// Resume (Options.Resume) loads the manifest if present — verifying
// an options fingerprint, every run's checksum, and the snapshot's —
// rebuilds the fingerprint sets from the runs' hash sections, and
// continues from the next level. Because seals and merges are
// deterministic functions of the explored state space, a resumed run
// produces a byte-identical Result (timing aside) to an uninterrupted
// one, at any worker count; violations are never checkpointed (a level
// that finds one completes the run), so a killed run re-finds its
// counterexample deterministically. On completion the checkpoint is
// deleted; only a run killed mid-flight leaves one behind, which is
// what makes always-pass-Resume kill/retry loops safe.
//
// POR runs checkpoint hierarchically: each per-block sub-run keeps its
// own checkpoint under block-<b>/, and POR_MANIFEST.json accumulates
// the numeric results of completed clean blocks. A block that finds a
// violation stops all persistence — the remaining work is bounded by
// the violation's depth, and a resumed run re-derives it.

const (
	snapMagic        = 0x3153434d // "MCS1" little-endian
	ckptManifestName = "MANIFEST.json"
	porManifestName  = "POR_MANIFEST.json"
	ckptVersion      = 1
)

type ckptManifest struct {
	Version     int        `json:"version"`
	OptionsHash string     `json:"options_hash"`
	Snap        string     `json:"snap"`
	Runs        [][]string `json:"runs"` // per visited shard, in probe order
}

// optionsHash fingerprints everything that shapes the explored state
// space, so a checkpoint is never resumed under different options.
// Workers is deliberately absent: resuming with a different worker
// count is legal and byte-identical.
func optionsHash(o Options, porBlock int) string {
	s := fmt.Sprintf("v%d|%s|p%d b%d w%d d%d|sym=%t tables=%t|por=%d|max=%d|budget=%d",
		ckptVersion, o.Protocol.Name(), o.Procs, o.Blocks, o.Words, o.Depth,
		o.Symmetry, !o.NoTables, porBlock, o.MaxStates, o.MemBudget)
	return fmt.Sprintf("%016x", fnv1a(0, []byte(s)))
}

// resumePoint is a loaded checkpoint: counters plus the reconstructed
// frontier.
type resumePoint struct {
	depth       int
	states      int64
	transitions int64
	frontier    []stateID
}

// checkpointer owns one runCore's checkpoint directory.
type checkpointer struct {
	dir  string
	hash string
	snap string // current snapshot file name; "" before the first save
	sub  bool   // dir is a per-block subdirectory we created
}

func newCheckpointer(o Options, porBlock int) (*checkpointer, error) {
	c := &checkpointer{dir: o.CheckpointDir, hash: optionsHash(o, porBlock)}
	if porBlock >= 0 {
		c.dir = filepath.Join(o.CheckpointDir, fmt.Sprintf("block-%d", porBlock))
		c.sub = true
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return nil, fmt.Errorf("mcheck: checkpoint dir: %w", err)
	}
	return c, nil
}

// load reads the checkpoint in c.dir into st, or returns nil if there
// is none. A present checkpoint without Options.Resume is an error —
// starting fresh would clobber it.
func (c *checkpointer) load(st *spillStore, o Options) (*resumePoint, error) {
	data, err := os.ReadFile(filepath.Join(c.dir, ckptManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if !o.Resume {
		return nil, fmt.Errorf("mcheck: %s already holds a checkpoint; pass Resume to continue it or use a fresh directory", c.dir)
	}
	var m ckptManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("mcheck: checkpoint manifest: %w", err)
	}
	if m.Version != ckptVersion {
		return nil, fmt.Errorf("mcheck: checkpoint version %d, want %d", m.Version, ckptVersion)
	}
	if m.OptionsHash != c.hash {
		return nil, fmt.Errorf("mcheck: checkpoint was written under different options (hash %s, want %s)", m.OptionsHash, c.hash)
	}
	if len(m.Runs) != shardCount {
		return nil, fmt.Errorf("mcheck: checkpoint manifest has %d shards, want %d", len(m.Runs), shardCount)
	}
	rp, _, err := readSnapshot(filepath.Join(c.dir, m.Snap), st)
	if err != nil {
		return nil, err
	}
	// Adopt the sealed runs: verify checksums (they crossed a process
	// boundary), check they tile [0, sealed) exactly, and rebuild the
	// in-memory fingerprint sets from their hash sections.
	for s := range m.Runs {
		sh := &st.shards[s]
		next := uint64(0)
		for _, name := range m.Runs[s] {
			r, err := openRun(filepath.Join(c.dir, name), st.kw, true)
			if err != nil {
				return nil, err
			}
			sh.runs = append(sh.runs, r)
			if r.base != next {
				return nil, fmt.Errorf("mcheck: checkpoint shard %d: run %s starts at %d, want %d", s, name, r.base, next)
			}
			next = r.base + uint64(r.count)
			hashes, err := r.readHashes()
			if err != nil {
				return nil, err
			}
			for _, h := range hashes {
				sh.fp.add(h)
			}
		}
		if next != uint64(sh.sealed) {
			return nil, fmt.Errorf("mcheck: checkpoint shard %d: runs cover %d sealed states, snapshot says %d", s, next, sh.sealed)
		}
	}
	c.snap = m.Snap
	return rp, nil
}

// save checkpoints a completed level: snapshot first, manifest rename
// second, garbage (previous snapshot, compacted-away runs) last.
func (c *checkpointer) save(st *spillStore, depth int, states, transitions int64, frontStart []int) error {
	snapName := fmt.Sprintf("snap-%06d.mcs", depth)
	if err := writeSnapshot(filepath.Join(c.dir, snapName), st, depth, states, transitions, frontStart); err != nil {
		return err
	}
	m := ckptManifest{Version: ckptVersion, OptionsHash: c.hash, Snap: snapName, Runs: make([][]string, shardCount)}
	for s := range st.shards {
		files := []string{}
		for _, r := range st.shards[s].runs {
			files = append(files, filepath.Base(r.path))
		}
		m.Runs[s] = files
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	mpath := filepath.Join(c.dir, ckptManifestName)
	if err := writeFileSync(mpath+".tmp", data); err != nil {
		return err
	}
	if err := os.Rename(mpath+".tmp", mpath); err != nil {
		return err
	}
	syncDir(c.dir)
	if c.snap != "" && c.snap != snapName {
		os.Remove(filepath.Join(c.dir, c.snap))
	}
	c.snap = snapName
	st.dropObsolete()
	return nil
}

// finish removes the checkpoint after the exploration completes: a
// finished run must not be resumable into a stale re-exploration.
func (c *checkpointer) finish(st *spillStore) {
	st.close()
	os.Remove(filepath.Join(c.dir, ckptManifestName))
	for _, pat := range []string{"snap-*.mcs", "snap-*.mcs.tmp", "run-*.mcr", "run-*.mcr.tmp", ckptManifestName + ".tmp"} {
		matches, _ := filepath.Glob(filepath.Join(c.dir, pat))
		for _, p := range matches {
			os.Remove(p)
		}
	}
	if c.sub {
		os.Remove(c.dir)
	}
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames within it are durable; best
// effort (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// writeSnapshot serializes the store's live half plus counters:
//
//	u32 magic, u32 kw
//	u64 depth, states, transitions, seals, nextSeq
//	64 × shard: u64 sealed, u64 frontStart, u64 liveN,
//	            liveN × (kw×8 key, u64 hash, 32-byte edge)
//	u64 fnv-1a checksum of everything above
func writeSnapshot(path string, st *spillStore, depth int, states, transitions int64, frontStart []int) (retErr error) {
	f, err := os.OpenFile(path+".tmp", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if retErr != nil {
			f.Close()
			os.Remove(path + ".tmp")
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	var sum uint64
	wr := func(p []byte) {
		sum = fnv1a(sum, p)
		bw.Write(p) // sticky error, checked at Flush
	}
	buf := make([]byte, 0, 1<<12)
	buf = binary.LittleEndian.AppendUint32(buf, snapMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.kw))
	for _, v := range []uint64{uint64(depth), uint64(states), uint64(transitions), uint64(st.seals), uint64(st.nextSeq)} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	wr(buf)
	var ebuf [runEdgeSz]byte
	for s := range st.shards {
		sh := &st.shards[s]
		t := sh.live
		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(sh.sealed))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(frontStart[s]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.n))
		wr(buf)
		for i := 0; i < t.n; i++ {
			buf = buf[:0]
			for _, w := range t.key(i) {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
			buf = binary.LittleEndian.AppendUint64(buf, t.hashes[i])
			putEdge(ebuf[:], t.edges[i])
			buf = append(buf, ebuf[:]...)
			wr(buf)
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf[:0], sum)
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}

// readSnapshot decodes a snapshot into st (live tables, sealed counts,
// seal/seq counters) and returns the resume point plus the per-shard
// frontier starts. Every field is bounds-checked against the file size
// before it drives an allocation, and the checksum is verified first —
// FuzzRunFileDecode feeds this arbitrary bytes.
func readSnapshot(path string, st *spillStore) (*resumePoint, []int, error) {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("mcheck: snapshot %s: %s", path, fmt.Sprintf(format, args...))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	const hdrSz = 8 + 5*8
	if len(data) < hdrSz+shardCount*24+8 {
		return nil, nil, fail("short file (%d bytes)", len(data))
	}
	if got := fnv1a(0, data[:len(data)-8]); got != binary.LittleEndian.Uint64(data[len(data)-8:]) {
		return nil, nil, fail("checksum mismatch")
	}
	if binary.LittleEndian.Uint32(data) != snapMagic {
		return nil, nil, fail("bad magic")
	}
	if got := int(binary.LittleEndian.Uint32(data[4:])); got != st.kw {
		return nil, nil, fail("key width %d, want %d", got, st.kw)
	}
	depth := binary.LittleEndian.Uint64(data[8:])
	states := binary.LittleEndian.Uint64(data[16:])
	transitions := binary.LittleEndian.Uint64(data[24:])
	seals := binary.LittleEndian.Uint64(data[32:])
	nextSeq := binary.LittleEndian.Uint64(data[40:])
	if depth > 1<<20 || states > 1<<40 || transitions > 1<<50 || seals > 1<<32 || nextSeq > 1<<32 {
		return nil, nil, fail("implausible counters")
	}
	body := data[:len(data)-8]
	off := hdrSz
	entSz := st.kw*8 + 8 + runEdgeSz
	frontStart := make([]int, shardCount)
	var frontier []stateID
	for s := 0; s < shardCount; s++ {
		if off+24 > len(body) {
			return nil, nil, fail("truncated at shard %d header", s)
		}
		sealed := binary.LittleEndian.Uint64(body[off:])
		fs := binary.LittleEndian.Uint64(body[off+8:])
		liveN := binary.LittleEndian.Uint64(body[off+16:])
		off += 24
		if liveN > uint64((len(body)-off)/entSz) {
			return nil, nil, fail("shard %d claims %d live entries beyond file size", s, liveN)
		}
		total := sealed + liveN
		if total >= 1<<32 || fs < sealed || fs > total {
			return nil, nil, fail("shard %d counts out of range (sealed %d, frontier %d, live %d)", s, sealed, fs, liveN)
		}
		sh := &st.shards[s]
		sh.sealed = int(sealed)
		frontStart[s] = int(fs)
		key := make([]uint64, st.kw)
		for i := uint64(0); i < liveN; i++ {
			for j := 0; j < st.kw; j++ {
				key[j] = binary.LittleEndian.Uint64(body[off+j*8:])
			}
			h := binary.LittleEndian.Uint64(body[off+st.kw*8:])
			e := getEdge(body[off+st.kw*8+8:])
			sh.live.insert(key, h, e)
			off += entSz
		}
		for g := fs; g < total; g++ {
			frontier = append(frontier, packID(s, int(g)))
		}
	}
	if off != len(body) {
		return nil, nil, fail("%d trailing bytes", len(body)-off)
	}
	st.seals = int(seals)
	st.nextSeq = int(nextSeq)
	return &resumePoint{
		depth:       int(depth),
		states:      int64(states),
		transitions: int64(transitions),
		frontier:    frontier,
	}, frontStart, nil
}

// POR accumulator: the numeric results of completed clean per-block
// sub-runs, persisted so a resumed POR check skips them.

type porBlockResult struct {
	States        int64 `json:"states"`
	Transitions   int64 `json:"transitions"`
	DepthReached  int   `json:"depth_reached"`
	Truncated     bool  `json:"truncated"`
	Exhausted     bool  `json:"exhausted"`
	SpilledStates int64 `json:"spilled_states,omitempty"`
	SpilledBytes  int64 `json:"spilled_bytes,omitempty"`
	SpillRuns     int   `json:"spill_runs,omitempty"`
	SpillSeals    int   `json:"spill_seals,omitempty"`
}

type porManifest struct {
	Version     int              `json:"version"`
	OptionsHash string           `json:"options_hash"`
	Blocks      []porBlockResult `json:"blocks"`
}

type porAccum struct {
	dir    string
	hash   string
	Blocks []porBlockResult
}

// loadPORAccum opens (creating if needed) the POR checkpoint directory
// and loads the accumulated block results, mirroring checkpointer.load's
// resume-if-present semantics.
func loadPORAccum(o Options) (*porAccum, error) {
	if err := os.MkdirAll(o.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("mcheck: checkpoint dir: %w", err)
	}
	a := &porAccum{dir: o.CheckpointDir, hash: optionsHash(o, -2)}
	data, err := os.ReadFile(filepath.Join(a.dir, porManifestName))
	if os.IsNotExist(err) {
		return a, nil
	}
	if err != nil {
		return nil, err
	}
	if !o.Resume {
		return nil, fmt.Errorf("mcheck: %s already holds a checkpoint; pass Resume to continue it or use a fresh directory", a.dir)
	}
	var m porManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("mcheck: POR manifest: %w", err)
	}
	if m.Version != ckptVersion {
		return nil, fmt.Errorf("mcheck: POR checkpoint version %d, want %d", m.Version, ckptVersion)
	}
	if m.OptionsHash != a.hash {
		return nil, fmt.Errorf("mcheck: POR checkpoint was written under different options (hash %s, want %s)", m.OptionsHash, a.hash)
	}
	a.Blocks = m.Blocks
	return a, nil
}

func (a *porAccum) save() error {
	m := porManifest{Version: ckptVersion, OptionsHash: a.hash, Blocks: a.Blocks}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	p := filepath.Join(a.dir, porManifestName)
	if err := writeFileSync(p+".tmp", data); err != nil {
		return err
	}
	if err := os.Rename(p+".tmp", p); err != nil {
		return err
	}
	syncDir(a.dir)
	return nil
}

// finishPOR removes the POR checkpoint (manifest and any per-block
// subdirectories) after the check completes.
func finishPOR(dir string) {
	os.Remove(filepath.Join(dir, porManifestName))
	os.Remove(filepath.Join(dir, porManifestName+".tmp"))
	matches, _ := filepath.Glob(filepath.Join(dir, "block-*"))
	for _, p := range matches {
		os.RemoveAll(p)
	}
}
