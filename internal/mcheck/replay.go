package mcheck

import (
	"cachesync/internal/addr"
	"cachesync/internal/protocol"
)

// Replayer drives the model checker's atomic-step executor one action
// at a time — the external interface for differential testing: the
// sim↔mcheck harness in internal/ptest pushes the same action trace
// through a Replayer and through a real sim.System and cross-checks
// the outcomes and reached states.
type Replayer struct {
	m *machine
}

// NewReplayer builds a replayer at the all-invalid initial state.
func NewReplayer(opts Options) *Replayer {
	return &Replayer{m: newMachine(opts.withDefaults())}
}

// Options returns the defaulted options the replayer runs with (Words
// is forced to 1 for one-word-block protocols).
func (r *Replayer) Options() Options { return r.m.opts }

// Outcome is the observable result of one replayed action.
type Outcome struct {
	// Denied reports a refused request: the block is locked by another
	// processor and the operation was left unperformed (busy wait).
	Denied bool
	// DidRead is set for read-class operations; Value is what the
	// processor observed.
	DidRead bool
	Value   uint64
}

// Apply executes one action atomically — the same transition the BFS
// explores — and returns its outcome plus any invariant violations
// the reached state exhibits (coherence predicates, shadow-memory
// conservation, stale-read detection).
func (r *Replayer) Apply(a Action) (Outcome, []string, error) {
	sr, err := r.m.apply(a)
	if err != nil {
		return Outcome{}, nil, err
	}
	r.m.commitShadow(a, sr)
	viols := r.m.checkInvariants(a, sr)
	return Outcome{Denied: sr.denied, DidRead: sr.didRead, Value: sr.value}, viols, nil
}

// CacheState reports cache c's copy of block b: the protocol state
// name, the line data, and whether the line is present at all.
func (r *Replayer) CacheState(c, b int) (name string, data []uint64, present bool) {
	blk := addr.Block(b)
	st := r.m.caches[c].State(blk)
	if st == protocol.Invalid {
		return r.m.proto.StateName(st), nil, false
	}
	return r.m.proto.StateName(st), r.m.caches[c].Data(blk), true
}

// MemBlock returns memory's copy of block b.
func (r *Replayer) MemBlock(b int) []uint64 {
	view := r.m.mem.BlockView(addr.Block(b))
	out := make([]uint64, len(view))
	copy(out, view)
	return out
}
