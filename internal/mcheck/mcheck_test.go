package mcheck

import (
	"reflect"
	"strings"
	"testing"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// TestSmokeAllProtocols is the short-depth exhaustive sweep wired into
// the ordinary test run: every registered protocol, every interleaving
// of two processors over one block to depth 5, zero violations.
func TestSmokeAllProtocols(t *testing.T) {
	for _, name := range protocol.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Options{Protocol: protocol.MustNew(name), Procs: 2, Blocks: 1, Depth: 5, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counterexample != nil {
				t.Fatalf("violation: %v\ntrace: %v\n%s", res.Counterexample.Violations,
					res.Counterexample.Trace, RenderCounterexample(Options{Protocol: protocol.MustNew(name), Procs: 2, Blocks: 1}, res.Counterexample))
			}
			if res.States < 2 {
				t.Fatalf("suspiciously small state space: %d states", res.States)
			}
		})
	}
}

// TestDeepBitar drives the paper's protocol further — three
// processors, two blocks — where lock purges, reclaims, waiter bits,
// and cross-block interactions all occur.
func TestDeepBitar(t *testing.T) {
	depth := 6
	if testing.Short() {
		depth = 4
	}
	res, err := Run(Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 2, Depth: depth, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("violation: %v\ntrace: %v", res.Counterexample.Violations, res.Counterexample.Trace)
	}
	t.Logf("states=%d transitions=%d elapsed=%v (%.0f states/s)",
		res.States, res.Transitions, res.Elapsed, res.StatesPerSec)
}

// TestDeterministicAcrossWorkers checks that worker count affects only
// wall-clock: state counts and counterexample traces are identical.
func TestDeterministicAcrossWorkers(t *testing.T) {
	clean1, err := Run(Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 1, Depth: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	clean4, err := Run(Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 1, Depth: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if clean1.States != clean4.States || clean1.Transitions != clean4.Transitions || clean1.Exhausted != clean4.Exhausted {
		t.Fatalf("worker count changed the exploration: %+v vs %+v", clean1, clean4)
	}

	mut, err := Mutate(protocol.MustNew("illinois"), "drop-invalidate")
	if err != nil {
		t.Fatal(err)
	}
	var traces [][]Action
	for _, w := range []int{1, 3} {
		res, err := Run(Options{Protocol: mut, Procs: 2, Blocks: 1, Depth: 6, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counterexample == nil {
			t.Fatalf("workers=%d: mutant not caught", w)
		}
		traces = append(traces, res.Counterexample.Trace)
	}
	if !reflect.DeepEqual(traces[0], traces[1]) {
		t.Fatalf("counterexample differs by worker count: %v vs %v", traces[0], traces[1])
	}
}

// TestMutantsCaughtMinimally seeds one bug per invariant class and
// checks that the BFS reports it with a shortest (2-step) trace — and
// that depth 1 is genuinely violation-free, confirming minimality.
func TestMutantsCaughtMinimally(t *testing.T) {
	cases := []struct {
		proto, mut, wantViolation string
	}{
		{"goodman", "drop-invalidate", "diverges from memory"},
		{"illinois", "drop-invalidate", "sole-access holders"},
		{"berkeley", "skip-writeback", "conservation violated"},
		{"bitar", "drop-invalidate", "sole-access holders"},
		{"bitar", "skip-writeback", "conservation violated"},
		{"bitar", "ignore-lock", "sole-access holders"},
		{"bitar", "stale-lock-grant", "sole-access holders"},
		{"locke", "drop-invalidate", "sole-access holders"},
		{"locke", "skip-writeback", "conservation violated"},
		{"locke", "ignore-lock", "sole-access holders"},
		{"locke", "stale-lock-grant", "sole-access holders"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.proto+"+"+c.mut, func(t *testing.T) {
			t.Parallel()
			mut, err := Mutate(protocol.MustNew(c.proto), c.mut)
			if err != nil {
				t.Fatal(err)
			}
			short, err := Run(Options{Protocol: mut, Procs: 2, Blocks: 1, Depth: 1})
			if err != nil {
				t.Fatal(err)
			}
			if short.Counterexample != nil {
				t.Fatalf("violation already at depth 1: %v", short.Counterexample.Violations)
			}
			res, err := Run(Options{Protocol: mut, Procs: 2, Blocks: 1, Depth: 6})
			if err != nil {
				t.Fatal(err)
			}
			cex := res.Counterexample
			if cex == nil {
				t.Fatal("seeded bug not caught")
			}
			if len(cex.Trace) != 2 {
				t.Fatalf("counterexample not minimized: %d steps %v", len(cex.Trace), cex.Trace)
			}
			if !containsSubstring(cex.Violations, c.wantViolation) {
				t.Fatalf("violations %v lack %q", cex.Violations, c.wantViolation)
			}
		})
	}
}

// TestUnknownMutant exercises Mutate's validation.
func TestUnknownMutant(t *testing.T) {
	if _, err := Mutate(protocol.MustNew("bitar"), "nope"); err == nil {
		t.Fatal("unknown mutation accepted")
	}
	if _, err := Mutate(protocol.MustNew("goodman"), "ignore-lock"); err == nil {
		t.Fatal("ignore-lock accepted for a protocol without hardware locks")
	}
}

// TestRenderCounterexample checks the bus-sequence rendering of a
// failure: numbered steps, the sequence diagram, and the violations.
func TestRenderCounterexample(t *testing.T) {
	mut, err := Mutate(protocol.MustNew("bitar"), "skip-writeback")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Protocol: mut, Procs: 2, Blocks: 1, Depth: 6}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	out := RenderCounterexample(o, res.Counterexample)
	for _, want := range []string{"counterexample for bitar+skip-writeback", "bus sequence:", "cache 0", "memory", "violated:", "evict"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
}

// TestSimReplay replays an eviction-free counterexample through the
// real discrete-event engine and expects the online coherence checker
// to confirm the violation there too.
func TestSimReplay(t *testing.T) {
	mut, err := Mutate(protocol.MustNew("goodman"), "drop-invalidate")
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Protocol: mut, Procs: 2, Blocks: 1, Depth: 6}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	out, err := SimReplay(o, res.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "confirms the violation") {
		t.Fatalf("sim replay did not confirm the violation:\n%s", out)
	}

	// A trace with an eviction is not sim-representable.
	evMut, err := Mutate(protocol.MustNew("berkeley"), "skip-writeback")
	if err != nil {
		t.Fatal(err)
	}
	eo := Options{Protocol: evMut, Procs: 2, Blocks: 1, Depth: 6}
	evRes, err := Run(eo)
	if err != nil {
		t.Fatal(err)
	}
	if evRes.Counterexample == nil {
		t.Fatal("no counterexample")
	}
	if _, err := SimReplay(eo, evRes.Counterexample); err == nil {
		t.Fatal("eviction trace unexpectedly sim-replayable")
	}
}

// TestFigure10Reachability regenerates the processor half of Figure 10
// from the explored state space: every one of the paper's arcs must be
// exercised, with the outcome the paper shows.
func TestFigure10Reachability(t *testing.T) {
	res, err := Run(Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 1, Depth: 5, Workers: 2, RecordArcs: true})
	if err != nil {
		t.Fatal(err)
	}
	mismatches, unreached := CrossCheckFigure10(res.Arcs)
	if len(mismatches) > 0 {
		t.Errorf("explored arcs disagree with the paper's Figure 10:\n  %s", strings.Join(mismatches, "\n  "))
	}
	if len(unreached) > 0 {
		t.Errorf("paper arcs not reached at depth 5:\n  %s", strings.Join(unreached, "\n  "))
	}
	if len(res.Arcs) == 0 {
		t.Fatal("no arcs recorded")
	}
}

// TestEncodeRestoreRoundtrip drives a machine through a few steps,
// transplants its encoded state into a fresh machine, and checks the
// two evolve identically.
func TestEncodeRestoreRoundtrip(t *testing.T) {
	opts := Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 2, Words: 2}
	o := opts.withDefaults()
	m := newMachine(o)
	script := []Action{
		{Proc: 0, Op: protocol.OpLock, Block: 0},
		{Proc: 1, Op: protocol.OpWrite, Block: 1, Word: 1, Value: 7},
		{Proc: 0, Kind: ActEvict, Block: 0},
		{Proc: 2, Op: protocol.OpRead, Block: 1},
	}
	for _, a := range script {
		sr, err := m.apply(a)
		if err != nil {
			t.Fatal(err)
		}
		m.commitShadow(a, sr)
	}
	enc := append([]uint64(nil), m.encodeKey()...)

	m2 := newMachine(o)
	m2.restoreKey(enc)
	if got := m2.encodeKey(); !reflect.DeepEqual(append([]uint64(nil), got...), enc) {
		t.Fatal("restore → encode is not the identity")
	}
	next := Action{Proc: 0, Op: protocol.OpUnlock, Block: 0, Value: 9}
	for _, mm := range []*machine{m, m2} {
		sr, err := mm.apply(next)
		if err != nil {
			t.Fatal(err)
		}
		mm.commitShadow(next, sr)
	}
	if !reflect.DeepEqual(append([]uint64(nil), m.encodeKey()...), append([]uint64(nil), m2.encodeKey()...)) {
		t.Fatal("restored machine diverged from the original after one step")
	}
}

// TestRunValidation covers the option guard rails.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("nil protocol accepted")
	}
	if _, err := Run(Options{Protocol: protocol.MustNew("bitar"), Procs: 40}); err == nil {
		t.Fatal("absurd processor count accepted")
	}
}

func containsSubstring(list []string, sub string) bool {
	for _, s := range list {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
