package mcheck

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// normalizeSpill zeroes the spill statistics so a spilled Result can be
// compared structurally against an in-memory one.
func normalizeSpill(r *Result) {
	r.MemBudget = 0
	r.SpilledStates = 0
	r.SpilledBytes = 0
	r.SpillRuns = 0
	r.SpillSeals = 0
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSpillEquivalence is the spill differential: a run forced to seal
// nearly every level by a tiny MemBudget must produce the byte-identical
// Result (verdict, counts, counterexample bytes) of the all-in-memory
// run, at worker counts 1 and 8 — and the spill statistics themselves
// must be identical across worker counts. Mutant cases force
// counterexample traces whose parent edges live in sealed runs.
func TestSpillEquivalence(t *testing.T) {
	cases := []struct {
		proto, inject string
		procs, blocks int
		sym           bool
		depth         int
	}{
		{proto: "bitar", procs: 3, blocks: 2, sym: true, depth: 5},
		{proto: "locke", procs: 2, blocks: 2, sym: false, depth: 5},
		{proto: "illinois", procs: 3, blocks: 1, sym: true, depth: 6},
		{proto: "bitar", inject: "ignore-lock", procs: 3, blocks: 1, sym: true, depth: 6},
		{proto: "berkeley", inject: "skip-writeback", procs: 2, blocks: 2, sym: false, depth: 5},
	}
	for _, c := range cases {
		c := c
		name := c.proto
		if c.inject != "" {
			name += "+" + c.inject
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mk := func() protocol.Protocol {
				p := protocol.MustNew(c.proto)
				if c.inject != "" {
					mp, err := Mutate(p, c.inject)
					if err != nil {
						t.Fatal(err)
					}
					p = mp
				}
				return p
			}
			o := Options{Protocol: mk(), Procs: c.procs, Blocks: c.blocks, Depth: c.depth, Workers: 1, Symmetry: c.sym}
			base, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			normalizeTiming(base)
			base.Workers = 0
			want := mustJSON(t, base)

			var prevSpill string
			for _, workers := range []int{1, 8} {
				so := o
				so.Protocol = mk()
				so.Workers = workers
				so.MemBudget = 4096 // 64 bytes per shard: every level seals
				spilled, err := Run(so)
				if err != nil {
					t.Fatal(err)
				}
				if spilled.SpillSeals == 0 || spilled.SpilledStates == 0 || spilled.SpilledBytes == 0 {
					t.Fatalf("workers=%d: budget %d did not force spilling: %+v", workers, so.MemBudget, spilled)
				}
				normalizeTiming(spilled)
				spilled.Workers = 0
				full := mustJSON(t, spilled)
				if prevSpill == "" {
					prevSpill = full
				} else if full != prevSpill {
					t.Fatalf("spill statistics depend on worker count:\n w=1 %s\n w=%d %s", prevSpill, workers, full)
				}
				normalizeSpill(spilled)
				if got := mustJSON(t, spilled); got != want {
					t.Fatalf("workers=%d: spilled result differs\n got %s\nwant %s", workers, got, want)
				}
			}
		})
	}
}

// TestSpillCompaction forces many seals and checks that runs
// merge-compact: the final run count must stay below the seal count
// and under the compaction threshold per shard.
func TestSpillCompaction(t *testing.T) {
	o := Options{
		Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 2,
		Depth: 6, Workers: 2, Symmetry: true, MemBudget: 4096,
	}
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpillSeals < spillCompactAt {
		t.Fatalf("expected at least %d seals, got %d", spillCompactAt, res.SpillSeals)
	}
	if res.SpillRuns >= res.SpillSeals {
		t.Fatalf("no compaction: %d runs from %d seals", res.SpillRuns, res.SpillSeals)
	}
	// Per-shard runs are compacted to one at spillCompactAt, so no
	// shard can end with more than spillCompactAt runs.
	if res.SpillRuns > spillCompactAt*shardCount {
		t.Fatalf("run count %d exceeds the compaction bound", res.SpillRuns)
	}
}

// TestSpillTruncationParity checks the MaxStates cutoff is unchanged
// by spilling.
func TestSpillTruncationParity(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 1, Depth: 6, Workers: 2, MaxStates: 200}
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	so := o
	so.MemBudget = 2048
	sp, err := Run(so)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Truncated || !sp.Truncated || base.States != sp.States || base.DepthReached != sp.DepthReached {
		t.Fatalf("truncation diverged: base states=%d trunc=%v, spill states=%d trunc=%v",
			base.States, base.Truncated, sp.States, sp.Truncated)
	}
}

// TestPORSpillBudget pins the POR interaction the spill store must
// preserve: per-block sub-runs share one MaxStates budget, so a POR
// run with a tiny MemBudget must report the same states, verdict, and
// truncation as the in-memory POR run — and actually spill.
func TestPORSpillBudget(t *testing.T) {
	for _, maxStates := range []int{0, 120} {
		o := Options{
			Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 2,
			Depth: 5, Workers: 2, Symmetry: true, POR: true, MaxStates: maxStates,
		}
		base, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		so := o
		so.MemBudget = 4096
		sp, err := Run(so)
		if err != nil {
			t.Fatal(err)
		}
		if sp.SpillSeals == 0 || sp.SpilledStates == 0 {
			t.Fatalf("maxstates=%d: POR run did not spill: %+v", maxStates, sp)
		}
		normalizeTiming(base)
		normalizeTiming(sp)
		spillSeen := *sp
		normalizeSpill(&spillSeen)
		if got, want := mustJSON(t, &spillSeen), mustJSON(t, base); got != want {
			t.Fatalf("maxstates=%d: POR+spill diverged\n got %s\nwant %s", maxStates, got, want)
		}
	}
}

// TestRunFileRoundTrip unit-tests the sealed-run codec: sorted keys
// with hashes and edges in, identical keys, hashes, and edges out —
// through probes, the iterator, and raw section reads.
func TestRunFileRoundTrip(t *testing.T) {
	const kw, n = 3, 1000
	dir := t.TempDir()
	// Deterministic pseudo-random sorted keys with structure a delta
	// coder must handle: long shared prefixes and full-width jumps.
	keys := make([][]uint64, n)
	x := uint64(0x9E3779B97F4A7C15)
	cur := []uint64{0, 0, 0}
	for i := range keys {
		x = x*6364136223846793005 + 1442695040888963407
		switch x % 4 {
		case 0:
			cur[2] += 1 + x%255
		case 1:
			cur[1] += 1 + x%1024
			cur[2] = 0
		case 2:
			cur[0] += 1 + x%3
			cur[2] = x >> 32
		default:
			cur[2] += 1 + x%7
		}
		keys[i] = append([]uint64(nil), cur...)
	}
	w, err := newRunWriter(dir, 7, kw, 100)
	if err != nil {
		t.Fatal(err)
	}
	edges := make([]byte, n*runEdgeSz)
	for i, k := range keys {
		if err := w.add(k, hashKey(k)); err != nil {
			t.Fatal(err)
		}
		putEdge(edges[i*runEdgeSz:], edge{
			parent: packID(i%shardCount, i),
			act:    Action{Proc: i % 8, Kind: ActionKind(i % 2), Op: protocol.OpWrite, Block: uint64(i % 4), Word: i % 8, Value: uint64(i)},
		})
	}
	if err := w.finish(edges); err != nil {
		t.Fatal(err)
	}
	r, err := openRun(filepath.Join(dir, runFileName(7)), kw, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	if r.base != 100 || r.count != n {
		t.Fatalf("base/count = %d/%d, want 100/%d", r.base, r.count, n)
	}
	sc := newProbeScratch(kw)
	for i, k := range keys {
		ok, err := r.probe(k, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("key %d not found", i)
		}
		miss := append([]uint64(nil), k...)
		miss[2] ^= 1 << 63
		if ok, _ := r.probe(miss, sc); ok {
			t.Fatalf("mutated key %d reported present", i)
		}
	}
	for i := 0; i < n; i++ {
		e, err := r.edgeAt(uint64(100+i), sc)
		if err != nil {
			t.Fatal(err)
		}
		if e.parent != packID(i%shardCount, i) || e.act.Value != uint64(i) || e.act.Proc != i%8 {
			t.Fatalf("edge %d decoded wrong: %+v", i, e)
		}
	}
	it, err := newRunIter(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		k, h, ok, err := it.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != n {
				t.Fatalf("iterator stopped at %d of %d", i, n)
			}
			break
		}
		if !equalKey(k, keys[i]) || h != hashKey(keys[i]) {
			t.Fatalf("iterator entry %d mismatched", i)
		}
	}
}

// TestRunFileRejectsCorruption flips bytes across a sealed run and
// asserts open-with-verify never accepts the file silently.
func TestRunFileRejectsCorruption(t *testing.T) {
	const kw = 2
	dir := t.TempDir()
	w, err := newRunWriter(dir, 0, kw, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := [][]uint64{{1, 2}, {1, 3}, {2, 9}, {4, 4}}
	edges := make([]byte, len(keys)*runEdgeSz)
	for i, k := range keys {
		if err := w.add(k, hashKey(k)); err != nil {
			t.Fatal(err)
		}
		putEdge(edges[i*runEdgeSz:], edge{parent: noParent})
	}
	if err := w.finish(edges); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, runFileName(0))
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(orig); off += 7 {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if r, err := openRun(path, kw, true); err == nil {
			// A flipped byte must fail open, except bits the format
			// genuinely does not cover (there are none: every byte is
			// checksummed).
			r.close()
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
}
