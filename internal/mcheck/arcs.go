package mcheck

import (
	"fmt"
	"strings"

	"cachesync/internal/core"
	"cachesync/internal/protocol"
	"cachesync/internal/report"
)

// CrossCheckFigure10 compares the arcs observed while exploring the
// paper's own protocol against the processor-side arc table
// transcribed from Figure 10. A mismatch (an exercised arc whose
// outcome differs from the paper) is an error; an unreached arc only
// means the configuration was too small to drive the state machine
// through it.
func CrossCheckFigure10(arcs []ObservedArc) (mismatches, unreached []string) {
	p := core.Protocol{}
	obs := make(map[arcKey]string, len(arcs))
	for _, a := range arcs {
		obs[arcKey{state: a.State, op: a.Op}] = a.Outcome
	}
	for _, e := range report.Figure10ExpectedArcs() {
		got, ok := obs[arcKey{state: e.State, op: e.Op}]
		if !ok {
			unreached = append(unreached, fmt.Sprintf("%s × %s (paper: %s)", p.StateName(e.State), e.Op, e.Outcome))
			continue
		}
		if got != e.Outcome {
			mismatches = append(mismatches, fmt.Sprintf("%s × %s: explored %q, paper arc %q",
				p.StateName(e.State), e.Op, got, e.Outcome))
		}
	}
	return mismatches, unreached
}

// RenderArcs formats observed arcs as a state × operation arc table —
// for the paper's protocol this regenerates the processor half of
// Figure 10 from reachability rather than by direct table walking.
func RenderArcs(p protocol.Protocol, arcs []ObservedArc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "arcs exercised during exploration of %s (state × op → outcome):\n", p.Name())
	for _, a := range arcs {
		fmt.Fprintf(&b, "  %-8s × %-10s → %s\n", p.StateName(a.State), a.Op, a.Outcome)
	}
	return b.String()
}
