package mcheck

import (
	"context"
	"errors"
	"testing"
	"time"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// TestRunHonorsDeadline aborts a deep exploration mid-flight: the run
// must return promptly with an error identifying the deadline, not
// finish the frontier first.
func TestRunHonorsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(Options{
		Protocol: protocol.MustNew("bitar"),
		Procs:    3, Blocks: 2, Words: 2, Depth: 10, Workers: 2,
		Context: ctx,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The full p3 b2 d10 space takes far longer than this; a prompt
	// abort stays within a generous multiple of the 30ms budget.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — workers did not poll the context", elapsed)
	}
}

// TestRunHonorsCancel covers explicit cancellation (the Ctrl-C path).
func TestRunHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := Run(Options{
		Protocol: protocol.MustNew("bitar"),
		Procs:    3, Blocks: 2, Words: 2, Depth: 10, Workers: 4,
		Context: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunNilContextUnchanged pins that omitting Context leaves the
// exploration untouched (the pre-existing API contract).
func TestRunNilContextUnchanged(t *testing.T) {
	res, err := Run(Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 1, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil || res.DepthReached != 4 || res.States < 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

// TestProgressReportsEveryLevel asserts the per-level callback fires
// in depth order with monotone counts that end at the final totals.
func TestProgressReportsEveryLevel(t *testing.T) {
	type tick struct {
		depth  int
		states int64
		trans  int64
	}
	var ticks []tick
	res, err := Run(Options{
		Protocol: protocol.MustNew("bitar"),
		Procs:    2, Blocks: 1, Depth: 5, Workers: 2,
		Progress: func(p ProgressInfo) {
			ticks = append(ticks, tick{p.Depth, p.States, p.Transitions})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != res.DepthReached {
		t.Fatalf("progress fired %d times, want one per level (%d)", len(ticks), res.DepthReached)
	}
	for i, tk := range ticks {
		if tk.depth != i+1 {
			t.Fatalf("tick %d reports depth %d", i, tk.depth)
		}
		if i > 0 && (tk.states < ticks[i-1].states || tk.trans < ticks[i-1].trans) {
			t.Fatalf("progress counts regressed at level %d: %+v -> %+v", tk.depth, ticks[i-1], tk)
		}
	}
	last := ticks[len(ticks)-1]
	if last.states != res.States || last.trans != res.Transitions {
		t.Fatalf("final tick %+v != result totals states=%d transitions=%d", last, res.States, res.Transitions)
	}
}
