package mcheck

import (
	"fmt"
	"reflect"
	"testing"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// modifiedBlocks counts the block sections of key that differ from the
// root key (the packed key is block-major, so block b owns the word
// range [b·stride, (b+1)·stride)).
func modifiedBlocks(lay keyLayout, root, key []uint64) int {
	n := 0
	for b := 0; b < lay.blocks; b++ {
		lo, hi := b*lay.blockStride, (b+1)*lay.blockStride
		for w := lo; w < hi; w++ {
			if key[w] != root[w] {
				n++
				break
			}
		}
	}
	return n
}

// TestPOREquivalence is the POR analogue of TestSymmetryEquivalence:
// for every registered protocol it runs the blocks=2 exploration with
// and without partial-order reduction, at several worker counts, and
// checks (a) identical verdicts and byte-identical counterexamples,
// (b) a genuine reduction — at blocks=2 the reduced run must explore
// under half the states — and (c) the reduction is exact: the reduced
// state set is precisely the full run's states with at most one block
// section differing from the root.
func TestPOREquivalence(t *testing.T) {
	for _, name := range protocol.Names() {
		for _, sym := range []bool{false, true} {
			name, sym := name, sym
			t.Run(fmt.Sprintf("%s/sym=%v", name, sym), func(t *testing.T) {
				t.Parallel()
				o := Options{Protocol: protocol.MustNew(name), Procs: 3, Blocks: 2, Depth: 4, Symmetry: sym, Workers: 2}
				full := reachedKeys(t, o)
				fres, err := Run(o)
				if err != nil {
					t.Fatal(err)
				}

				od := o.withDefaults()
				lay := makeKeyLayout(od.Procs, od.Blocks, od.Words)
				root := append([]uint64(nil), newMachine(od).encodeKey()...)
				pure := 0
				for _, k := range full {
					if modifiedBlocks(lay, root, k) <= 1 {
						pure++
					}
				}

				for _, w := range []int{1, 2, 8} {
					po := o
					po.POR = true
					po.Workers = w
					po.Protocol = protocol.MustNew(name)
					var visited [][]uint64
					po.stateHook = func(k []uint64) { visited = append(visited, append([]uint64(nil), k...)) }
					pres, err := Run(po)
					if err != nil {
						t.Fatal(err)
					}
					if pres.Counterexample != nil {
						t.Fatalf("workers=%d: violation only under POR: %v", w, pres.Counterexample.Violations)
					}
					if fres.Counterexample != nil {
						t.Fatalf("violation only without POR: %v", fres.Counterexample.Violations)
					}
					if pres.Exhausted != fres.Exhausted {
						t.Errorf("workers=%d: exhausted %v under POR, %v without", w, pres.Exhausted, fres.Exhausted)
					}
					if int64(len(visited)) != pres.States {
						t.Fatalf("workers=%d: stateHook saw %d states, Result says %d", w, len(visited), pres.States)
					}
					if pres.States != int64(pure) {
						t.Errorf("workers=%d: reduction inexact: POR visited %d states, full run has %d pure states",
							w, pres.States, pure)
					}
					for _, k := range visited {
						if modifiedBlocks(lay, root, k) > 1 {
							t.Fatalf("workers=%d: POR visited a state with two modified blocks", w)
						}
					}
					if pres.States > int64(len(full))/2 {
						t.Errorf("workers=%d: POR saved too little: %d of %d states", w, pres.States, len(full))
					}
				}
			})
		}
	}
}

// TestPORMutant checks that fault injection under POR yields the
// byte-identical minimal counterexample the unreduced run reports, for
// every worker count and both symmetry modes — the de-reduced-trace
// half of the equivalence proof.
func TestPORMutant(t *testing.T) {
	for _, mc := range []struct{ proto, mut string }{
		{"bitar", "ignore-lock"},
		{"bitar", "drop-invalidate"},
		{"illinois", "drop-invalidate"},
		{"berkeley", "skip-writeback"},
		{"locke", "stale-lock-grant"},
	} {
		mc := mc
		t.Run(mc.proto+"+"+mc.mut, func(t *testing.T) {
			t.Parallel()
			for _, sym := range []bool{false, true} {
				var want *Counterexample
				for _, por := range []bool{false, true} {
					for _, w := range []int{1, 2, 8} {
						mut, err := Mutate(protocol.MustNew(mc.proto), mc.mut)
						if err != nil {
							t.Fatal(err)
						}
						res, err := Run(Options{Protocol: mut, Procs: 2, Blocks: 2, Depth: 6,
							Workers: w, Symmetry: sym, POR: por})
						if err != nil {
							t.Fatal(err)
						}
						if res.Counterexample == nil {
							t.Fatalf("por=%v workers=%d sym=%v: mutant not caught", por, w, sym)
						}
						if want == nil {
							want = res.Counterexample
						} else if !reflect.DeepEqual(want, res.Counterexample) {
							t.Fatalf("por=%v workers=%d sym=%v: counterexample differs:\n got %+v\nwant %+v",
								por, w, sym, res.Counterexample, want)
						}
					}
				}
			}
		})
	}
}
