package mcheck

import (
	"fmt"
	"sort"

	"cachesync/internal/bus"
	"cachesync/internal/protocol"
)

// A mutant wraps a protocol with one deliberately seeded coherence
// bug, for validating that the checker detects — and minimizes — real
// failure classes. Each mutation targets a different invariant:
//
//	drop-invalidate  — a snooped invalidation is ignored        (serialization)
//	skip-writeback   — dirty evictions skip the flush           (conservation / latest version)
//	ignore-lock      — a locked line never asserts the lock     (lock mutual exclusion)
//	stale-lock-grant — the requester disregards a busy signal   (lock mutual exclusion)
type mutant struct {
	protocol.Protocol
	kind string
}

// MutantNames lists the available seeded-bug mutations.
func MutantNames() []string {
	out := []string{"drop-invalidate", "skip-writeback", "ignore-lock", "stale-lock-grant"}
	sort.Strings(out)
	return out
}

// Mutate wraps p with the named seeded bug. It returns an error for
// an unknown name, or for a lock-targeting mutation on a protocol
// without hardware locks.
func Mutate(p protocol.Protocol, name string) (protocol.Protocol, error) {
	switch name {
	case "drop-invalidate", "skip-writeback":
	case "ignore-lock", "stale-lock-grant":
		if !p.Features().HardwareLock {
			return nil, fmt.Errorf("mcheck: mutation %q needs a hardware-lock protocol, %s has none", name, p.Name())
		}
	default:
		return nil, fmt.Errorf("mcheck: unknown mutation %q (have %v)", name, MutantNames())
	}
	return &mutant{Protocol: p, kind: name}, nil
}

// Name implements protocol.Protocol.
func (m *mutant) Name() string { return m.Protocol.Name() + "+" + m.kind }

// Snoop implements protocol.Protocol, applying the snoop-side bugs.
func (m *mutant) Snoop(s protocol.State, t *bus.Transaction) protocol.SnoopResult {
	r := m.Protocol.Snoop(s, t)
	switch m.kind {
	case "drop-invalidate":
		// The cache fails to invalidate its copy on an ownership
		// acquisition: stale sole-access coexistence.
		switch t.Cmd {
		case bus.ReadX, bus.Upgrade, bus.WriteNoFetch, bus.WriteWord:
			if s != protocol.Invalid && r.NewState == protocol.Invalid {
				r.NewState = s
			}
		}
	case "ignore-lock":
		// The locked line answers the bus as if unlocked: the lock
		// line is never asserted, so two caches can lock one block.
		if r.Locked {
			r.Locked = false
			r.NewState = s
		}
	}
	return r
}

// Complete implements protocol.Protocol, applying the requester-side
// lock bug.
func (m *mutant) Complete(s protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	r := m.Protocol.Complete(s, op, t)
	if m.kind == "stale-lock-grant" && r.BusyWait {
		// The requester misses the lock line on the bus and installs
		// the line as if the grant succeeded: a second cache acquires
		// an already-held lock.
		tt := *t
		tt.Lines.Locked = false
		return m.Protocol.Complete(s, op, &tt)
	}
	return r
}

// Evict implements protocol.Protocol, applying the eviction-side bug.
func (m *mutant) Evict(s protocol.State) protocol.Evict {
	e := m.Protocol.Evict(s)
	if m.kind == "skip-writeback" {
		// The victim's dirty data is silently discarded.
		e.Writeback = false
	}
	return e
}

// ReclaimedLockState forwards protocol.LockReclaimer when the wrapped
// protocol has one, so a mutant keeps the interface surface of the
// original.
func (m *mutant) ReclaimedLockState(waiter bool) protocol.State {
	if lr, ok := m.Protocol.(protocol.LockReclaimer); ok {
		return lr.ReclaimedLockState(waiter)
	}
	return protocol.Invalid
}
