package mcheck

import "math/bits"

// This file is the storage layer of the exploration core: packed
// binary state keys hashed once with a single xxhash-style mix, stored
// in custom open-addressing tables whose key arenas are flat []uint64
// slabs. A duplicate hit costs one hash, one probe chain, and zero
// allocations — the previous map[string]visitedEntry design paid a
// string conversion plus two FNV passes per explored transition.

// shardCount fixes the number of hash shards of the visited set; the
// per-level merge parallelizes over shards. It must stay a power of
// two ≤ 256 because shardOfHash takes the hash's top bits.
const shardCount = 64

// stateID names a visited state: shard index in the high 32 bits,
// entry index within the shard in the low 32.
type stateID uint64

// noParent marks the root's parent edge.
const noParent = ^stateID(0)

func packID(shard, idx int) stateID { return stateID(shard)<<32 | stateID(uint32(idx)) }

func (id stateID) shard() int { return int(id >> 32) }
func (id stateID) index() int { return int(uint32(id)) }

// edge is the parent pointer of a visited state, for counterexample
// trace reconstruction.
type edge struct {
	parent stateID
	act    Action
}

// hashKey mixes a packed state key with one xxhash-style pass: a
// rotate-multiply round per word and a murmur-style avalanche
// finalizer. The single 64-bit result serves both purposes the old
// code FNV-hashed twice for — shard selection (top bits) and
// open-addressing probe position (low bits).
func hashKey(k []uint64) uint64 {
	const (
		prime1 = 0x9E3779B185EBCA87
		prime2 = 0xC2B2AE3D27D4EB4F
		prime3 = 0x165667B19E3779F9
	)
	h := uint64(len(k))*prime3 + prime2
	for _, w := range k {
		h ^= bits.RotateLeft64(w*prime2, 31) * prime1
		h = bits.RotateLeft64(h, 27)*prime1 + prime3
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 29
	h *= 0xC4CEB9FE1A85EC53
	h ^= h >> 32
	return h
}

// shardOfHash maps a key hash to its visited-set shard (the probe
// position uses the low bits, so the shard must come from the top).
func shardOfHash(h uint64) int { return int(h >> (64 - 6)) }

func equalKey(a, b []uint64) bool {
	for i, w := range a {
		if b[i] != w {
			return false
		}
	}
	return true
}

// lessKey is lexicographic word-wise comparison; it orders canonical
// frontier keys deterministically.
func lessKey(a, b []uint64) bool {
	for i, w := range a {
		if w != b[i] {
			return w < b[i]
		}
	}
	return false
}

// shardTable is one shard of the visited set: an open-addressing hash
// table over fixed-width []uint64 keys held in a flat arena, with the
// parent edge of every entry stored alongside. Lookups never allocate;
// inserts amortize into three slab appends.
type shardTable struct {
	kw     int      // words per key
	mask   uint64   // len(slots) - 1
	slots  []uint32 // entry index + 1; 0 = empty
	keys   []uint64 // entry i's key at [i*kw : (i+1)*kw]
	hashes []uint64
	edges  []edge
	n      int
}

func newShardTable(kw int) *shardTable {
	t := &shardTable{kw: kw}
	t.rehash(256)
	return t
}

func (t *shardTable) rehash(slots int) {
	t.slots = make([]uint32, slots)
	t.mask = uint64(slots - 1)
	for i := 0; i < t.n; i++ {
		pos := t.hashes[i] & t.mask
		for t.slots[pos] != 0 {
			pos = (pos + 1) & t.mask
		}
		t.slots[pos] = uint32(i + 1)
	}
}

// key returns entry i's key view into the arena.
func (t *shardTable) key(i int) []uint64 { return t.keys[i*t.kw : (i+1)*t.kw] }

// lookup returns the entry index of key (whose hash is h), or -1.
func (t *shardTable) lookup(key []uint64, h uint64) int {
	pos := h & t.mask
	for {
		s := t.slots[pos]
		if s == 0 {
			return -1
		}
		if i := int(s - 1); t.hashes[i] == h && equalKey(t.key(i), key) {
			return i
		}
		pos = (pos + 1) & t.mask
	}
}

// insert adds a key that must not already be present and returns its
// entry index.
func (t *shardTable) insert(key []uint64, h uint64, e edge) int {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.rehash(2 * len(t.slots))
	}
	i := t.n
	t.n++
	t.keys = append(t.keys, key...)
	t.hashes = append(t.hashes, h)
	t.edges = append(t.edges, e)
	pos := h & t.mask
	for t.slots[pos] != 0 {
		pos = (pos + 1) & t.mask
	}
	t.slots[pos] = uint32(i + 1)
	return i
}

// keySet is the per-worker intra-level duplicate filter: the same
// open-addressing scheme without parent edges. Its arena doubles as
// the worker's candidate-key storage — a candidate references its key
// by entry index, and the merge phase reads it from here.
type keySet struct {
	kw     int
	mask   uint64
	slots  []uint32
	keys   []uint64
	hashes []uint64
	n      int
}

func newKeySet(kw int) *keySet {
	s := &keySet{kw: kw, slots: make([]uint32, 256), mask: 255}
	return s
}

// reset empties the set for the next BFS level, keeping its storage.
func (s *keySet) reset() {
	clear(s.slots)
	s.keys = s.keys[:0]
	s.hashes = s.hashes[:0]
	s.n = 0
}

func (s *keySet) key(i int) []uint64 { return s.keys[i*s.kw : (i+1)*s.kw] }

// add inserts key unless present. It returns the entry index and
// whether the key was newly added.
func (s *keySet) add(key []uint64, h uint64) (int, bool) {
	pos := h & s.mask
	for {
		sl := s.slots[pos]
		if sl == 0 {
			break
		}
		if i := int(sl - 1); s.hashes[i] == h && equalKey(s.key(i), key) {
			return i, false
		}
		pos = (pos + 1) & s.mask
	}
	if 4*(s.n+1) > 3*len(s.slots) {
		ns := make([]uint32, 2*len(s.slots))
		nm := uint64(len(ns) - 1)
		for i := 0; i < s.n; i++ {
			p := s.hashes[i] & nm
			for ns[p] != 0 {
				p = (p + 1) & nm
			}
			ns[p] = uint32(i + 1)
		}
		s.slots, s.mask = ns, nm
		pos = h & s.mask
		for s.slots[pos] != 0 {
			pos = (pos + 1) & s.mask
		}
	}
	i := s.n
	s.n++
	s.keys = append(s.keys, key...)
	s.hashes = append(s.hashes, h)
	s.slots[pos] = uint32(i + 1)
	return i, true
}
