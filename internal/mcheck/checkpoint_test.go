package mcheck

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// interruptAtDepth runs o with checkpointing into dir and cancels the
// context from the Progress callback at the given depth — Progress
// fires after the level's checkpoint is saved, so cancellation leaves
// a valid checkpoint for exactly that level on disk. Returns whether
// the run was actually interrupted (a counterexample can end it first).
func interruptAtDepth(t *testing.T, o Options, dir string, depth int) bool {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	co := o
	co.Context = ctx
	co.CheckpointDir = dir
	co.Resume = true
	prev := co.Progress
	co.Progress = func(p ProgressInfo) {
		if prev != nil {
			prev(p)
		}
		if p.Depth >= depth {
			cancel()
		}
	}
	_, err := Run(co)
	if err == nil {
		return false
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run failed with %v, want context.Canceled", err)
	}
	return true
}

// TestKillResumeByteIdentical is the kill-and-resume differential: a
// run interrupted at a level boundary and resumed from its checkpoint
// must produce the byte-identical Result — counterexample bytes
// included — of an uninterrupted run, at worker counts 1 and 8, with
// and without spilling. The in-process SIGKILL stand-in is context
// cancellation right after the checkpoint lands (verify.sh kills a
// real process for the end-to-end version).
func TestKillResumeByteIdentical(t *testing.T) {
	cases := []struct {
		name          string
		proto, inject string
		procs, blocks int
		sym           bool
		depth         int
		memBudget     int64
		cancelAt      int
	}{
		{name: "clean", proto: "bitar", procs: 3, blocks: 2, sym: true, depth: 5, cancelAt: 2},
		{name: "clean-spill", proto: "bitar", procs: 3, blocks: 2, sym: true, depth: 5, memBudget: 4096, cancelAt: 3},
		{name: "mutant", proto: "bitar", inject: "ignore-lock", procs: 3, blocks: 1, sym: true, depth: 6, cancelAt: 2},
		{name: "mutant-spill", proto: "berkeley", inject: "skip-writeback", procs: 2, blocks: 2, depth: 5, memBudget: 4096, cancelAt: 2},
		{name: "truncated", proto: "bitar", procs: 3, blocks: 1, depth: 6, memBudget: 4096, cancelAt: 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			mk := func() protocol.Protocol {
				p := protocol.MustNew(c.proto)
				if c.inject != "" {
					mp, err := Mutate(p, c.inject)
					if err != nil {
						t.Fatal(err)
					}
					p = mp
				}
				return p
			}
			o := Options{Protocol: mk(), Procs: c.procs, Blocks: c.blocks, Depth: c.depth, Workers: 1, Symmetry: c.sym, MemBudget: c.memBudget}
			if c.name == "truncated" {
				o.MaxStates = 2000
			}
			plain, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			normalizeTiming(plain)
			plain.Workers = 0
			want := mustJSON(t, plain)

			for _, workers := range []int{1, 8} {
				io := o
				io.Protocol = mk()
				io.Workers = workers
				dir := t.TempDir()
				interrupted := interruptAtDepth(t, io, dir, c.cancelAt)
				if interrupted {
					if _, err := os.Stat(filepath.Join(dir, ckptManifestName)); err != nil {
						t.Fatalf("interrupted run left no checkpoint: %v", err)
					}
				} else if c.name == "clean" || c.name == "clean-spill" {
					t.Fatalf("workers=%d: clean run was not interrupted at depth %d", workers, c.cancelAt)
				}
				ro := o
				ro.Protocol = mk()
				ro.Workers = workers
				ro.CheckpointDir = dir
				ro.Resume = true
				resumed, err := Run(ro)
				if err != nil {
					t.Fatal(err)
				}
				normalizeTiming(resumed)
				resumed.Workers = 0
				if got := mustJSON(t, resumed); got != want {
					t.Fatalf("workers=%d interrupted=%v: resumed result differs\n got %s\nwant %s", workers, interrupted, got, want)
				}
				// A completed run removes its checkpoint so the directory
				// can be reused by kill/retry loops.
				if _, err := os.Stat(filepath.Join(dir, ckptManifestName)); !os.IsNotExist(err) {
					t.Fatalf("workers=%d: checkpoint manifest survived completion (err=%v)", workers, err)
				}
			}
		})
	}
}

// TestKillResumeAcrossWorkerCounts interrupts at one worker count and
// resumes at another: the options hash deliberately excludes Workers,
// and the result must still be byte-identical.
func TestKillResumeAcrossWorkerCounts(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 2, Depth: 5, Workers: 1, Symmetry: true, MemBudget: 4096}
	plain, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	normalizeTiming(plain)
	plain.Workers = 0

	dir := t.TempDir()
	if !interruptAtDepth(t, o, dir, 2) {
		t.Fatal("run was not interrupted")
	}
	ro := o
	ro.Protocol = protocol.MustNew("bitar")
	ro.Workers = 8
	ro.CheckpointDir = dir
	ro.Resume = true
	resumed, err := Run(ro)
	if err != nil {
		t.Fatal(err)
	}
	normalizeTiming(resumed)
	resumed.Workers = 0
	if got, want := mustJSON(t, resumed), mustJSON(t, plain); got != want {
		t.Fatalf("resume at different worker count diverged\n got %s\nwant %s", got, want)
	}
}

// TestKillResumePOR interrupts a POR check and resumes it: completed
// clean blocks are replayed from the accumulator, the interrupted
// block from its own sub-checkpoint.
func TestKillResumePOR(t *testing.T) {
	for _, memBudget := range []int64{0, 4096} {
		o := Options{
			Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 2,
			Depth: 5, Workers: 2, Symmetry: true, POR: true, MemBudget: memBudget,
		}
		plain, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		normalizeTiming(plain)

		// Cancel on the 6th progress tick: past block 0 (5 levels), into
		// block 1, so the resume exercises both the accumulator replay
		// and a sub-run checkpoint.
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		ticks := 0
		co := o
		co.Context = ctx
		co.CheckpointDir = dir
		co.Resume = true
		co.Progress = func(ProgressInfo) {
			if ticks++; ticks >= 6 {
				cancel()
			}
		}
		if _, err := Run(co); !errors.Is(err, context.Canceled) {
			cancel()
			t.Fatalf("budget=%d: interrupted POR run: %v, want context.Canceled", memBudget, err)
		}
		cancel()
		if _, err := os.Stat(filepath.Join(dir, porManifestName)); err != nil {
			t.Fatalf("budget=%d: no POR manifest after interrupt: %v", memBudget, err)
		}

		ro := o
		ro.CheckpointDir = dir
		ro.Resume = true
		resumed, err := Run(ro)
		if err != nil {
			t.Fatal(err)
		}
		normalizeTiming(resumed)
		if got, want := mustJSON(t, resumed), mustJSON(t, plain); got != want {
			t.Fatalf("budget=%d: resumed POR result differs\n got %s\nwant %s", memBudget, got, want)
		}
		if _, err := os.Stat(filepath.Join(dir, porManifestName)); !os.IsNotExist(err) {
			t.Fatalf("budget=%d: POR manifest survived completion (err=%v)", memBudget, err)
		}
	}
}

// TestCheckpointRefusesMismatchedOptions pins the guard against
// resuming a checkpoint under a different model: same directory,
// different depth, must fail loudly rather than blend two runs.
func TestCheckpointRefusesMismatchedOptions(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 2, Depth: 5, Workers: 2, Symmetry: true}
	dir := t.TempDir()
	if !interruptAtDepth(t, o, dir, 2) {
		t.Fatal("run was not interrupted")
	}
	ro := o
	ro.Depth = 6
	ro.CheckpointDir = dir
	ro.Resume = true
	if _, err := Run(ro); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("resume under different depth: %v, want options-mismatch error", err)
	}
}

// TestCheckpointRequiresResumeFlag: a directory that already holds a
// checkpoint must not be silently overwritten.
func TestCheckpointRequiresResumeFlag(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 2, Depth: 5, Workers: 2, Symmetry: true}
	dir := t.TempDir()
	if !interruptAtDepth(t, o, dir, 2) {
		t.Fatal("run was not interrupted")
	}
	co := o
	co.CheckpointDir = dir
	if _, err := Run(co); err == nil || !strings.Contains(err.Error(), "already holds a checkpoint") {
		t.Fatalf("checkpoint dir reuse without Resume: %v, want refusal", err)
	}
}

// TestResumeEmptyDirStartsFresh: Resume against a directory with no
// checkpoint is a plain run (the idiom for kill/retry loops is to
// always pass -resume).
func TestResumeEmptyDirStartsFresh(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 1, Depth: 4, Workers: 1}
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	ro := o
	ro.CheckpointDir = t.TempDir()
	ro.Resume = true
	res, err := Run(ro)
	if err != nil {
		t.Fatal(err)
	}
	normalizeTiming(base)
	normalizeTiming(res)
	if got, want := mustJSON(t, res), mustJSON(t, base); got != want {
		t.Fatalf("resume on empty dir diverged\n got %s\nwant %s", got, want)
	}
}

// TestCheckpointOptionValidation covers the new Options error cases.
func TestCheckpointOptionValidation(t *testing.T) {
	base := Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 1, Depth: 3}

	o := base
	o.Resume = true
	if _, err := Run(o); err == nil {
		t.Fatal("Resume without CheckpointDir accepted")
	}
	o = base
	o.CheckpointDir = t.TempDir()
	o.RecordArcs = true
	if _, err := Run(o); err == nil {
		t.Fatal("CheckpointDir with RecordArcs accepted")
	}
	o = base
	o.MemBudget = -1
	if _, err := Run(o); err == nil {
		t.Fatal("negative MemBudget accepted")
	}
}

// TestSnapshotRejectsCorruption flips bytes across a snapshot file and
// asserts resume never silently accepts it.
func TestSnapshotRejectsCorruption(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 1, Depth: 5, Workers: 1, MemBudget: 4096}
	dir := t.TempDir()
	if !interruptAtDepth(t, o, dir, 2) {
		t.Fatal("run was not interrupted")
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.mcs"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot, got %v (err=%v)", snaps, err)
	}
	orig, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	ro := o
	ro.CheckpointDir = dir
	ro.Resume = true
	for off := 0; off < len(orig); off += 97 {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x10
		if err := os.WriteFile(snaps[0], mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(ro); err == nil {
			t.Fatalf("corrupted snapshot (offset %d) accepted", off)
		}
	}
	// Restore and prove the pristine snapshot still resumes.
	if err := os.WriteFile(snaps[0], orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ro); err != nil {
		t.Fatalf("pristine snapshot no longer resumes: %v", err)
	}
}
