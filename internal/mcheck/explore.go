package mcheck

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// shardCount fixes the number of hash shards of the visited set; the
// per-level merge parallelizes over shards.
const shardCount = 64

// visitedEntry is the parent pointer of an explored state, for
// counterexample trace reconstruction.
type visitedEntry struct {
	parent string
	act    Action
}

// candidate is a newly discovered state: the frontier/action indexes
// (pi, ai) make parent selection deterministic — when several
// transitions reach the same state in one level, the lexicographically
// least (pi, ai) wins regardless of worker scheduling.
type candidate struct {
	pi, ai int
	parent string
	act    Action
	enc    string
}

func (c candidate) before(o candidate) bool {
	return c.pi < o.pi || (c.pi == o.pi && c.ai < o.ai)
}

// violation is a violating transition found during a level.
type violation struct {
	candidate
	violations []string
}

// shardOf is FNV-1a inlined (hash/fnv's New64a allocates; this runs
// twice per explored transition).
func shardOf(enc string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(enc); i++ {
		h ^= uint64(enc[i])
		h *= 1099511628211
	}
	return int(h % shardCount)
}

func shardOfBytes(enc []byte) int {
	h := uint64(14695981039346656037)
	for _, c := range enc {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return int(h % shardCount)
}

// step applies one action and validates the resulting state, turning
// executor panics and livelocks into reported violations (a broken —
// possibly fault-injected — protocol may drive the engine anywhere).
func (m *machine) step(a Action) (violations []string) {
	defer func() {
		if r := recover(); r != nil {
			violations = []string{fmt.Sprintf("panic during %s: %v", a, r)}
		}
	}()
	sr, err := m.apply(a)
	if err != nil {
		return []string{err.Error()}
	}
	m.commitShadow(a, sr)
	return m.checkInvariants(a, sr)
}

// Run explores every interleaving of processor operations up to
// opts.Depth steps with a level-synchronized parallel BFS over
// canonically encoded states. Because levels are explored in order and
// the violating transition is chosen by least (frontier, action)
// index, the returned counterexample — if any — is a shortest
// violating sequence, and the whole result is deterministic for any
// worker count.
func Run(opts Options) (*Result, error) {
	o := opts.withDefaults()
	if o.Protocol == nil {
		return nil, fmt.Errorf("mcheck: Options.Protocol is required")
	}
	if o.Procs < 1 || o.Procs > 8 {
		return nil, fmt.Errorf("mcheck: procs %d out of range [1,8]", o.Procs)
	}
	if o.Blocks < 1 || o.Blocks > 4 {
		return nil, fmt.Errorf("mcheck: blocks %d out of range [1,4]", o.Blocks)
	}

	start := time.Now()
	res := &Result{
		Protocol: o.Protocol.Name(),
		Procs:    o.Procs, Blocks: o.Blocks, Words: o.Words,
		Depth: o.Depth, Workers: o.Workers,
	}
	finalize := func() *Result {
		res.Elapsed = time.Since(start)
		if s := res.Elapsed.Seconds(); s > 0 {
			res.StatesPerSec = float64(res.States) / s
		}
		return res
	}

	machines := make([]*machine, o.Workers)
	for i := range machines {
		machines[i] = newMachine(o)
	}
	root := machines[0].encode()
	if v := machines[0].checkInvariants(Action{}, stepResult{}); len(v) > 0 {
		res.Counterexample = &Counterexample{Violations: v}
		res.States = 1
		return finalize(), nil
	}

	visited := make([]map[string]visitedEntry, shardCount)
	for i := range visited {
		visited[i] = make(map[string]visitedEntry)
	}
	visited[shardOf(root)][root] = visitedEntry{}
	res.States = 1

	frontier := []string{root}
	var transitions int64

	for depth := 1; depth <= o.Depth && len(frontier) > 0; depth++ {
		nw := o.Workers
		if nw > len(frontier) {
			nw = len(frontier)
		}
		workerCands := make([][][]candidate, nw) // [worker][shard][]candidate
		workerViol := make([]*violation, nw)
		var cursor int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m := machines[w]
				cands := make([][]candidate, shardCount)
				seen := map[string]bool{}
				var best *violation
				for {
					i := int(atomic.AddInt64(&cursor, 1))
					if i >= len(frontier) {
						break
					}
					enc := frontier[i]
					if err := m.restore(enc); err != nil {
						panic(err) // states we produced must re-decode
					}
					acts := m.actions()
					for j, a := range acts {
						if j > 0 {
							if err := m.restore(enc); err != nil {
								panic(err)
							}
						}
						atomic.AddInt64(&transitions, 1)
						if v := m.step(a); len(v) > 0 {
							c := candidate{pi: i, ai: j, parent: enc, act: a}
							if best == nil || c.before(best.candidate) {
								best = &violation{candidate: c, violations: v}
							}
							continue
						}
						// Duplicate checks on the raw encode buffer:
						// map[string] lookups keyed by string(neb) do not
						// allocate, so only genuinely new states pay for
						// a string conversion.
						neb := m.encodeBytes()
						if seen[string(neb)] {
							continue
						}
						s := shardOfBytes(neb)
						if _, ok := visited[s][string(neb)]; ok {
							continue
						}
						ne := string(neb)
						seen[ne] = true
						cands[s] = append(cands[s], candidate{pi: i, ai: j, parent: enc, act: a, enc: ne})
					}
				}
				workerCands[w] = cands
				workerViol[w] = best
			}(w)
		}
		wg.Wait()

		var best *violation
		for _, v := range workerViol {
			if v != nil && (best == nil || v.before(best.candidate)) {
				best = v
			}
		}
		if best != nil {
			trace := rebuildTrace(visited, root, best.parent)
			trace = append(trace, best.act)
			res.Counterexample = &Counterexample{Trace: trace, Violations: best.violations}
			res.DepthReached = depth
			break
		}

		// Merge the level's discoveries shard-parallel: per state, the
		// least (frontier, action) parent wins.
		newByShard := make([][]string, shardCount)
		var mwg sync.WaitGroup
		for s := 0; s < shardCount; s++ {
			mwg.Add(1)
			go func(s int) {
				defer mwg.Done()
				bestC := map[string]candidate{}
				for w := 0; w < nw; w++ {
					for _, c := range workerCands[w][s] {
						if e, ok := bestC[c.enc]; !ok || c.before(e) {
							bestC[c.enc] = c
						}
					}
				}
				keys := make([]string, 0, len(bestC))
				for enc, c := range bestC {
					visited[s][enc] = visitedEntry{parent: c.parent, act: c.act}
					keys = append(keys, enc)
				}
				newByShard[s] = keys
			}(s)
		}
		mwg.Wait()

		var next []string
		for _, keys := range newByShard {
			next = append(next, keys...)
		}
		sort.Strings(next) // deterministic frontier order ⇒ deterministic (pi, ai)
		res.States += int64(len(next))
		res.DepthReached = depth
		frontier = next
		if res.States >= int64(o.MaxStates) {
			res.Truncated = true
			break
		}
	}

	res.Transitions = transitions
	res.Exhausted = res.Counterexample == nil && !res.Truncated && len(frontier) == 0
	if o.RecordArcs {
		merged := machines[0]
		for _, m := range machines[1:] {
			for k, v := range m.arcs {
				if _, ok := merged.arcs[k]; !ok {
					merged.arcs[k] = v
				}
			}
		}
		res.Arcs = merged.sortedArcs()
	}
	return finalize(), nil
}

// rebuildTrace walks parent pointers from enc back to the root and
// returns the action sequence in execution order.
func rebuildTrace(visited []map[string]visitedEntry, root, enc string) []Action {
	var rev []Action
	for enc != root {
		e, ok := visited[shardOf(enc)][enc]
		if !ok {
			break
		}
		rev = append(rev, e.act)
		enc = e.parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
