package mcheck

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// candidate is a newly discovered state: the frontier/action indexes
// (pi, ai) make parent selection deterministic — when several
// transitions reach the same state in one level, the lexicographically
// least (pi, ai) wins regardless of worker scheduling. The state's key
// lives in the discovering worker's keySet arena at entry keyIdx.
type candidate struct {
	pi, ai int32
	keyIdx int32
	hash   uint64
	parent stateID
	act    Action
}

func (c candidate) before(o candidate) bool {
	return c.pi < o.pi || (c.pi == o.pi && c.ai < o.ai)
}

// violation is a violating transition found during a level.
type violation struct {
	candidate
	violations []string
}

// step applies one action and validates the resulting state, turning
// executor panics and livelocks into reported violations (a broken —
// possibly fault-injected — protocol may drive the engine anywhere).
func (m *machine) step(a Action) (violations []string) {
	defer func() {
		if r := recover(); r != nil {
			violations = []string{fmt.Sprintf("panic during %s: %v", a, r)}
		}
	}()
	sr, err := m.apply(a)
	if err != nil {
		return []string{err.Error()}
	}
	m.commitShadow(a, sr)
	return m.checkInvariants(a, sr)
}

// Run explores every interleaving of processor operations up to
// opts.Depth steps with a level-synchronized parallel BFS over packed
// binary state keys — canonicalized under processor symmetry when
// opts.Symmetry is set. Because levels are explored in order and the
// violating transition is chosen by least (frontier, action) index,
// the returned counterexample — if any — is a shortest violating
// sequence, and the whole result is deterministic for any worker
// count: the next frontier is ordered shard-major with keys sorted
// within each shard, which depends only on the set of discovered
// states.
func Run(opts Options) (*Result, error) {
	o := opts.withDefaults()
	if err := validate(o); err != nil {
		return nil, err
	}
	if o.POR {
		return runPOR(o)
	}
	res, _, err := runCore(o, -1)
	return res, err
}

func validate(o Options) error {
	if o.Protocol == nil {
		return fmt.Errorf("mcheck: Options.Protocol is required")
	}
	if o.Procs < 1 || o.Procs > 8 {
		return fmt.Errorf("mcheck: procs %d out of range [1,8]", o.Procs)
	}
	if o.Blocks < 1 || o.Blocks > 4 {
		return fmt.Errorf("mcheck: blocks %d out of range [1,4]", o.Blocks)
	}
	if o.MemBudget < 0 {
		return fmt.Errorf("mcheck: negative mem budget %d", o.MemBudget)
	}
	if o.Resume && o.CheckpointDir == "" {
		return fmt.Errorf("mcheck: Resume requires CheckpointDir")
	}
	if o.CheckpointDir != "" && o.RecordArcs {
		return fmt.Errorf("mcheck: RecordArcs does not compose with checkpointing (arcs are not serialized)")
	}
	return nil
}

// cexOrd orders a violating transition the way the unreduced BFS
// breaks ties between simultaneous violations: first by depth (BFS
// finds shortest first), then by the parent's frontier position —
// which is (visited-table shard, parent key) since frontiers are
// shard-major and key-sorted — then by the action's index in the
// parent's full action list. Per-block POR sub-runs keep full-list
// action indices even though they expand a filtered subset, so these
// ordinals are comparable across sub-runs and the cross-run least is
// exactly the violation the unreduced run would report.
type cexOrd struct {
	depth     int
	tshard    int
	parentKey []uint64
	ai        int32
}

func (c cexOrd) before(o cexOrd) bool {
	if c.depth != o.depth {
		return c.depth < o.depth
	}
	if c.tshard != o.tshard {
		return c.tshard < o.tshard
	}
	if !equalKey(c.parentKey, o.parentKey) {
		return lessKey(c.parentKey, o.parentKey)
	}
	return c.ai < o.ai
}

// runCore is one unreduced BFS. porBlock < 0 explores every action;
// porBlock >= 0 restricts expansion to actions on that block (the
// POR sub-run), keeping action indices relative to the full list. The
// returned cexOrd is non-nil iff a counterexample was found.
func runCore(o Options, porBlock int) (*Result, *cexOrd, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}

	start := time.Now()
	res := &Result{
		Protocol: o.Protocol.Name(),
		Procs:    o.Procs, Blocks: o.Blocks, Words: o.Words,
		Depth: o.Depth, Workers: o.Workers, Symmetry: o.Symmetry,
	}

	machines := make([]*machine, o.Workers)
	for i := range machines {
		machines[i] = newMachine(o)
	}
	kw := machines[0].lay.total

	// Visited-store plumbing. With a checkpoint directory, sealed runs
	// live there so a resumed process can adopt them; with only a
	// budget, they live in a throwaway temp dir. On completion — any
	// verdict — the checkpoint is deleted (done flag), so a later
	// Resume into the same directory starts fresh; on error it stays
	// for a retry.
	var ck *checkpointer
	spillDir := ""
	if o.CheckpointDir != "" {
		var err error
		ck, err = newCheckpointer(o, porBlock)
		if err != nil {
			return nil, nil, err
		}
		spillDir = ck.dir
	} else if o.MemBudget > 0 {
		dir, err := os.MkdirTemp("", "mcheck-spill-")
		if err != nil {
			return nil, nil, fmt.Errorf("mcheck: spill dir: %w", err)
		}
		spillDir = dir
		defer os.RemoveAll(dir)
	}
	st := newSpillStore(kw, spillDir, o.MemBudget)
	defer st.close()
	done := false
	if ck != nil {
		defer func() {
			if done {
				ck.finish(st)
			}
		}()
	}

	finalize := func() *Result {
		done = true
		res.Elapsed = time.Since(start)
		if s := res.Elapsed.Seconds(); s > 0 {
			res.StatesPerSec = float64(res.States) / s
		}
		if o.MemBudget > 0 {
			res.MemBudget = o.MemBudget
			res.SpilledStates = st.spilledStates()
			res.SpilledBytes = st.spilledBytes()
			res.SpillRuns = st.runCount()
			res.SpillSeals = st.seals
		}
		return res
	}

	root := machines[0].encodeKey()
	if o.Symmetry {
		// The initial state is fully symmetric, so canonicalization is
		// the identity; run it anyway so any future asymmetric initial
		// state is still handled correctly.
		root, _ = machines[0].canon.canonicalize(root)
	}
	if v := machines[0].checkInvariants(Action{}, stepResult{}); len(v) > 0 {
		res.Counterexample = &Counterexample{Violations: v}
		res.States = 1
		return finalize(), &cexOrd{}, nil
	}

	rootHash := hashKey(root)
	rootID := packID(shardOfHash(rootHash), 0) // the root is always its shard's first insert
	startDepth := 1
	var frontier []stateID
	var transitions int64
	resumed := false
	if ck != nil {
		rp, err := ck.load(st, o)
		if err != nil {
			return nil, nil, err
		}
		if rp != nil {
			resumed = true
			res.States = rp.states
			transitions = rp.transitions
			res.DepthReached = rp.depth
			frontier = rp.frontier
			startDepth = rp.depth + 1
		}
	}
	if !resumed {
		st.insert(rootID.shard(), root, rootHash, edge{parent: noParent})
		res.States = 1
		frontier = []stateID{rootID}
		if o.stateHook != nil {
			o.stateHook(root)
		}
	}
	statesAtStart := res.States
	var ord *cexOrd

	for depth := startDepth; depth <= o.Depth && len(frontier) > 0; depth++ {
		nw := o.Workers
		if nw > len(frontier) {
			nw = len(frontier)
		}
		workerCands := make([][][]candidate, nw) // [worker][shard][]candidate
		workerSets := make([]*keySet, nw)
		workerViol := make([]*violation, nw)
		workerErr := make([]error, nw)
		var cursor int64 = -1
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m := machines[w]
				cands := make([][]candidate, shardCount)
				seen := m.seen
				if seen == nil {
					seen = newKeySet(kw)
					m.seen = seen
				}
				seen.reset()
				sc := newProbeScratch(kw)
				var localTransitions int64
				var best *violation
			scan:
				for {
					i := int(atomic.AddInt64(&cursor, 1))
					if i >= len(frontier) {
						break
					}
					// One poll per frontier state: cheap next to the
					// state's expansion, prompt enough that a deadline
					// aborts deep levels mid-flight.
					if ctx.Err() != nil {
						break
					}
					id := frontier[i]
					enc := st.key(id)
					m.restoreKey(enc)
					acts := m.actions()
					dirty := false
					for j, a := range acts {
						if porBlock >= 0 && a.Block != uint64(porBlock) {
							continue
						}
						if dirty {
							m.restoreKey(enc)
						}
						dirty = true
						localTransitions++
						if v := m.step(a); len(v) > 0 {
							c := candidate{pi: int32(i), ai: int32(j), parent: id, act: a}
							if best == nil || c.before(best.candidate) {
								best = &violation{candidate: c, violations: v}
							}
							continue
						}
						nk := m.encodeKey()
						if m.canon != nil {
							nk, _ = m.canon.canonicalize(nk)
						}
						// Self-loop in the (possibly quotiented) state
						// graph: the successor is the expanding state
						// itself, visited by construction — skip without
						// hashing or probing.
						if equalKey(nk, enc) {
							continue
						}
						h := hashKey(nk)
						s := shardOfHash(h)
						// Intra-level dedup before the visited probe: a
						// key this worker already handled this level —
						// whether it became a candidate or turned out
						// visited — never needs a second probe, which
						// matters once probes can touch sealed runs on
						// disk. Order is equivalent to probing visited
						// first: both paths skip, and candidates are
						// only recorded below.
						ki, fresh := seen.add(nk, h)
						if !fresh {
							continue
						}
						ok, err := st.contains(s, nk, h, sc)
						if err != nil {
							workerErr[w] = err
							break scan
						}
						if ok {
							continue
						}
						cands[s] = append(cands[s], candidate{
							pi: int32(i), ai: int32(j), keyIdx: int32(ki), hash: h, parent: id, act: a,
						})
					}
				}
				atomic.AddInt64(&transitions, localTransitions)
				workerCands[w] = cands
				workerSets[w] = seen
				workerViol[w] = best
			}(w)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("mcheck: exploration canceled at depth %d after %d states: %w",
				depth, res.States, err)
		}
		for _, err := range workerErr {
			if err != nil {
				return nil, nil, fmt.Errorf("mcheck: visited-store probe at depth %d: %w", depth, err)
			}
		}

		var best *violation
		for _, v := range workerViol {
			if v != nil && (best == nil || v.before(best.candidate)) {
				best = v
			}
		}
		if best != nil {
			pk := st.key(best.parent)
			ord = &cexOrd{
				depth:     depth,
				tshard:    best.parent.shard(),
				parentKey: append([]uint64(nil), pk...),
				ai:        best.ai,
			}
			trace, terr := rebuildTrace(st, rootID, best.parent)
			if terr != nil {
				return nil, nil, terr
			}
			trace = append(trace, best.act)
			viols := best.violations
			if o.Symmetry {
				// Stored actions live in canonical frames; rewrite them
				// into one executable run and recompute the violations so
				// their messages name the actual processor indices.
				dtrace, dviols := decanonicalizeTrace(o, trace)
				trace = dtrace
				if len(dviols) > 0 {
					viols = dviols
				}
			}
			res.Counterexample = &Counterexample{Trace: trace, Violations: viols}
			res.DepthReached = depth
			break
		}

		// Merge the level's discoveries shard-parallel: per state, the
		// least (frontier, action) parent wins; each shard then sorts
		// its winners by key, making the next frontier's order — and
		// with it every (pi, ai) of the next level — independent of how
		// workers split this one. frontStart records each shard's count
		// before the merge: the new frontier is exactly the global
		// indices [frontStart[s], count(s)), which is what sealing and
		// checkpointing key off.
		frontStart := make([]int, shardCount)
		for s := range frontStart {
			frontStart[s] = st.count(s)
		}
		newByShard := make([][]stateID, shardCount)
		var mwg sync.WaitGroup
		for s := 0; s < shardCount; s++ {
			mwg.Add(1)
			go func(s int) {
				defer mwg.Done()
				newByShard[s] = mergeShard(st, s, workerCands, workerSets)
			}(s)
		}
		mwg.Wait()

		var added int64
		for _, ids := range newByShard {
			added += int64(len(ids))
		}
		next := make([]stateID, 0, added)
		for _, ids := range newByShard {
			next = append(next, ids...)
		}
		if o.stateHook != nil {
			for _, id := range next {
				o.stateHook(st.key(id))
			}
		}
		res.States += added
		res.DepthReached = depth
		frontier = next
		if res.States >= int64(o.MaxStates) {
			res.Truncated = true
		}
		// Seal over-budget shards now that the frontier boundary is
		// known, then checkpoint the completed level. A truncated or
		// drained run is complete — no checkpoint needed; obsolete
		// compacted files are then dropped immediately.
		if err := st.sealOver(frontStart); err != nil {
			return nil, nil, err
		}
		if ck != nil && !res.Truncated && len(frontier) > 0 {
			if err := ck.save(st, depth, res.States, atomic.LoadInt64(&transitions), frontStart); err != nil {
				return nil, nil, err
			}
		} else {
			st.dropObsolete()
		}
		if o.Progress != nil {
			info := ProgressInfo{
				Depth: depth, States: res.States,
				Transitions:  atomic.LoadInt64(&transitions),
				RAMBytes:     st.ramBytes(),
				SpilledBytes: st.spilledBytes(),
				SpillRuns:    st.runCount(),
			}
			if s := time.Since(start).Seconds(); s > 0 {
				info.StatesPerSec = float64(res.States-statesAtStart) / s
			}
			o.Progress(info)
		}
		if res.Truncated {
			break
		}
	}

	res.Transitions = transitions
	res.Exhausted = res.Counterexample == nil && !res.Truncated && len(frontier) == 0
	if o.RecordArcs {
		merged := machines[0]
		for _, m := range machines[1:] {
			for k, v := range m.arcs {
				if _, ok := merged.arcs[k]; !ok {
					merged.arcs[k] = v
				}
			}
		}
		res.Arcs = merged.sortedArcs()
	}
	return finalize(), ord, nil
}

// mergeShard folds every worker's candidates for shard s into the
// shard's visited store: duplicates resolve to the least (pi, ai)
// candidate, winners are inserted in key order, and their state IDs
// are returned in that order. The result depends only on the candidate
// sets, not on how workers partitioned the frontier.
func mergeShard(st *spillStore, s int, workerCands [][][]candidate, workerSets []*keySet) []stateID {
	total := 0
	for w := range workerCands {
		total += len(workerCands[w][s])
	}
	if total == 0 {
		return nil
	}
	type winner struct {
		cand candidate
		w    int32 // worker whose keySet holds the key
	}
	winners := make([]winner, 0, total)
	slotsLen := 4
	for slotsLen < 2*total {
		slotsLen *= 2
	}
	slots := make([]int32, slotsLen) // winner index + 1; 0 = empty
	mask := uint64(slotsLen - 1)
	for w := range workerCands {
		for _, c := range workerCands[w][s] {
			key := workerSets[w].key(int(c.keyIdx))
			pos := c.hash & mask
			for {
				sl := slots[pos]
				if sl == 0 {
					winners = append(winners, winner{cand: c, w: int32(w)})
					slots[pos] = int32(len(winners))
					break
				}
				wi := &winners[sl-1]
				if wi.cand.hash == c.hash && equalKey(workerSets[wi.w].key(int(wi.cand.keyIdx)), key) {
					if c.before(wi.cand) {
						*wi = winner{cand: c, w: int32(w)}
					}
					break
				}
				pos = (pos + 1) & mask
			}
		}
	}
	sort.Slice(winners, func(i, j int) bool {
		return lessKey(workerSets[winners[i].w].key(int(winners[i].cand.keyIdx)),
			workerSets[winners[j].w].key(int(winners[j].cand.keyIdx)))
	})
	ids := make([]stateID, len(winners))
	for i, wi := range winners {
		idx := st.insert(s, workerSets[wi.w].key(int(wi.cand.keyIdx)), wi.cand.hash,
			edge{parent: wi.cand.parent, act: wi.cand.act})
		ids[i] = packID(s, idx)
	}
	return ids
}

// rebuildTrace walks parent edges from id back to the root and returns
// the action sequence in execution order. Edges of sealed entries are
// read back from their runs — one pread per hop.
func rebuildTrace(st *spillStore, rootID, id stateID) ([]Action, error) {
	sc := newProbeScratch(st.kw)
	var rev []Action
	for id != rootID {
		e, err := st.edgeOf(id, sc)
		if err != nil {
			return nil, err
		}
		rev = append(rev, e.act)
		id = e.parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}
