package mcheck

import (
	"fmt"
	"sort"

	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/cache"
	"cachesync/internal/coherence"
	"cachesync/internal/memory"
	"cachesync/internal/protocol"
)

// machine is one executable copy of the model: real caches and memory
// driven by an atomic-step executor that mirrors internal/sim's bus
// semantics without the clock. Each BFS worker owns one machine and
// repeatedly restores it to a frontier state, applies an action, and
// re-encodes.
type machine struct {
	opts  Options
	proto protocol.Protocol
	// tab is the compiled transition table of proto (nil for mutant
	// wrappers and under Options.NoTables): the atomic-step executor
	// makes the same protocol decisions through the same tables the
	// simulator uses, keeping exploration off the interface-dispatch
	// path.
	tab    *protocol.Table
	feats  protocol.Features
	geom   addr.Geometry
	caches []*cache.Cache
	mem    *memory.Memory

	// shadow is the sequentially-consistent expected value of every
	// word: the value of the last completed write in step order. It
	// backs the latest-version and conservation checks with real data.
	shadow []uint64

	// txns records the bus transactions of the last apply, for
	// counterexample rendering and replay validation.
	txns []*bus.Transaction

	// arcs collects (pre-state, op) → outcome for the acting cache
	// when opts.RecordArcs is set.
	arcs map[arcKey]string

	// universe is the fixed block set, precomputed.
	universe []addr.Block

	// Reused scratch buffers: restore/encode run once per explored
	// transition, so they must not allocate.
	lay      keyLayout
	keyBuf   []uint64
	decLines [][]cache.LineSnapshot // per cache, full capacity, Data preallocated
	decCount []int
	dirIDs   []int
	actsBuf  []Action

	// canon holds the processor-symmetry canonicalizer (nil when
	// Options.Symmetry is off).
	canon *canonizer

	// seen is the owning worker's intra-level duplicate filter and
	// candidate-key arena, kept across BFS levels to reuse its storage.
	seen *keySet

	// checker is the invariant suite with its scratch, run once per
	// explored transition.
	checker *coherence.Checker
}

// keyLayout fixes the packed binary state-key format. Keys are
// fixed-width []uint64 vectors laid out block-major; per block:
//
//	ctrlWords words   one 16-bit lane per cache: present(bit 0) | state<<1
//	procs*words words cache line data, cache-major (zero when absent)
//	words words       memory block data
//	1 word            locked(bit 0) | waiter(bit 1) | owner<<2 | dirmask<<8
//	words words       shadow (sequentially consistent reference) data
//
// Fixed width makes keys comparable word-wise, hashable in one pass,
// and storable in flat arenas with no per-state allocation.
type keyLayout struct {
	procs, blocks, words int
	ctrlWords            int // per block
	blockStride          int // words per block section
	total                int // words per key
}

func makeKeyLayout(procs, blocks, words int) keyLayout {
	l := keyLayout{procs: procs, blocks: blocks, words: words}
	l.ctrlWords = (procs + 3) / 4
	l.blockStride = l.ctrlWords + words*(procs+2) + 1
	l.total = blocks * l.blockStride
	return l
}

type arcKey struct {
	state protocol.State
	op    protocol.Op
}

// stepResult is the observable outcome of one action.
type stepResult struct {
	denied  bool // the request was refused (block locked elsewhere)
	didRead bool
	value   uint64 // value returned by a read-class op
	addr    addr.Addr
}

// complete, privilege, evictOf, and isDirty consult the compiled
// table when present, falling back to the protocol methods (mutants,
// NoTables).
func (m *machine) complete(st protocol.State, op protocol.Op, t *bus.Transaction) protocol.CompleteResult {
	if m.tab != nil {
		return m.tab.Complete(st, op, t)
	}
	return m.proto.Complete(st, op, t)
}

func (m *machine) privilege(st protocol.State) protocol.Priv {
	if m.tab != nil {
		return m.tab.Privilege(st)
	}
	return m.proto.Privilege(st)
}

func (m *machine) evictOf(st protocol.State) protocol.Evict {
	if m.tab != nil {
		return m.tab.Evict(st)
	}
	return m.proto.Evict(st)
}

func (m *machine) isDirty(st protocol.State) bool {
	if m.tab != nil {
		return m.tab.IsDirty(st)
	}
	return m.proto.IsDirty(st)
}

const maxPhases = 16

func newMachine(opts Options) *machine {
	geom := addr.MustGeometry(opts.Words, opts.Words)
	m := &machine{
		opts:   opts,
		proto:  opts.Protocol,
		feats:  opts.Protocol.Features(),
		geom:   geom,
		mem:    memory.New(geom),
		shadow: make([]uint64, opts.Blocks*opts.Words),
		arcs:   make(map[arcKey]string),
	}
	if !opts.NoTables {
		m.tab = protocol.TableFor(opts.Protocol) // nil for mutants: they stay on methods
	}
	// The checker never reads simulation counters; disabling them takes
	// the per-probe/per-snoop counting off the exploration hot path.
	m.mem.Counts.Disable()
	for i := 0; i < opts.Procs; i++ {
		c := cache.New(i, geom, m.proto, cache.Config{Sets: 1, Ways: opts.Blocks, NoTables: opts.NoTables}, m.mem)
		c.Counts.Disable()
		m.caches = append(m.caches, c)
	}
	m.universe = make([]addr.Block, opts.Blocks)
	for i := range m.universe {
		m.universe[i] = addr.Block(i)
	}
	m.decLines = make([][]cache.LineSnapshot, opts.Procs)
	for i := range m.decLines {
		m.decLines[i] = make([]cache.LineSnapshot, opts.Blocks)
		for j := range m.decLines[i] {
			m.decLines[i][j].Data = make([]uint64, opts.Words)
		}
	}
	m.decCount = make([]int, opts.Procs)
	m.lay = makeKeyLayout(opts.Procs, opts.Blocks, opts.Words)
	m.keyBuf = make([]uint64, m.lay.total)
	if opts.Symmetry {
		m.canon = newCanonizer(m.lay)
	}
	m.checker = coherence.NewChecker(m.proto)
	return m
}

// actions enumerates every enabled action from the machine's current
// state, in a deterministic order, into a per-machine reused buffer
// valid until the next call.
func (m *machine) actions() []Action {
	out := m.actsBuf[:0]
	hwLock := m.feats.HardwareLock
	for p := 0; p < m.opts.Procs; p++ {
		c := m.caches[p]
		for b := 0; b < m.opts.Blocks; b++ {
			blk := addr.Block(b)
			st := c.State(blk)
			for w := 0; w < m.opts.Words; w++ {
				out = append(out,
					Action{Proc: p, Op: protocol.OpRead, Block: uint64(b), Word: w},
					Action{Proc: p, Op: protocol.OpWrite, Block: uint64(b), Word: w, Value: uint64(p + 1)})
			}
			if m.feats.WriteNoFetch {
				out = append(out, Action{Proc: p, Op: protocol.OpWriteBlock, Block: uint64(b), Value: uint64(p + 1 + m.opts.Procs)})
			}
			if hwLock {
				out = append(out, Action{Proc: p, Op: protocol.OpLock, Block: uint64(b)})
				// Unlock is a legal program action only for the lock
				// holder — by cache state, or by the memory lock tag a
				// purge left behind (Section E.3).
				tag := m.mem.GetLockTag(blk)
				if m.privilege(st) == protocol.PrivLock || (tag.Locked && tag.Owner == p) {
					out = append(out, Action{Proc: p, Op: protocol.OpUnlock, Block: uint64(b), Value: uint64(p + 1)})
				}
			}
			if st != protocol.Invalid {
				out = append(out, Action{Proc: p, Kind: ActEvict, Block: uint64(b)})
			}
		}
	}
	m.actsBuf = out
	return out
}

// apply executes one action atomically, mirroring the engine's
// serveTxn/applyCompletion sequence (internal/sim/bustxn.go) without
// the clock: the step's bus transactions broadcast to the other
// caches, memory responds, and the protocol's Complete installs the
// outcome; multi-phase operations run to completion with the bus
// logically held between phases.
func (m *machine) apply(a Action) (stepResult, error) {
	m.txns = m.txns[:0]
	if a.Kind == ActEvict {
		m.evictBlock(a)
		return stepResult{}, nil
	}
	c := m.caches[a.Proc]
	blk := addr.Block(a.Block)
	at := m.geom.Base(blk) + addr.Addr(a.Word)
	op := a.Op

	pre := c.State(blk)
	// Reprobe is Probe without statistics; the checker keeps no counts.
	r := c.Reprobe(op, at)
	m.recordArc(pre, op, r)
	if r.Hit {
		return m.finish(a, c, at, op), nil
	}
	for phase := 0; ; phase++ {
		if phase >= maxPhases {
			return stepResult{}, fmt.Errorf("mcheck: %s under %s exceeded %d bus phases (livelocked operation)",
				a, m.proto.Name(), maxPhases)
		}
		if m.needsFrame(r.Cmd) {
			if v := c.PrepareFill(blk); v.Needed {
				m.evictVictim(c, v)
			}
		}
		t := m.buildTxn(a, c, at, op, r)
		m.broadcast(t)
		m.mem.Respond(t)
		if m.feats.PartialBroadcast && !t.Lines.Locked {
			switch t.Cmd {
			case bus.Read:
				m.mem.Dir.Add(blk, a.Proc)
			case bus.ReadX, bus.Upgrade, bus.WriteNoFetch:
				m.mem.Dir.SetSole(blk, a.Proc)
			}
		}
		cres := m.complete(c.State(blk), op, t)
		if cres.BusyWait {
			// Denied: the cache would arm its busy-wait register and
			// the processor would park. The model leaves the operation
			// unperformed; a retry is simply another step.
			return stepResult{denied: true, addr: at}, nil
		}
		m.applyCompletion(a, c, op, t, cres)
		if cres.Done {
			return m.finish(a, c, at, op), nil
		}
		// Multi-phase operation (Goodman's fetch-then-write-through,
		// Dragon's fetch-then-update): re-probe with the bus held.
		r = c.Reprobe(op, at)
		if r.Hit {
			return m.finish(a, c, at, op), nil
		}
	}
}

// recordArc notes the acting cache's (pre-state, op) → outcome in
// Figure 10 notation: "->X" for a silent (hit) transition to state X,
// "bus:cmd" (plus "+lock" under lock intent) for a bus request.
func (m *machine) recordArc(pre protocol.State, op protocol.Op, r protocol.ProcResult) {
	if !m.opts.RecordArcs {
		return
	}
	k := arcKey{state: pre, op: op}
	if _, ok := m.arcs[k]; ok {
		return
	}
	if r.Hit {
		m.arcs[k] = "->" + m.proto.StateName(r.NewState)
		return
	}
	out := "bus:" + r.Cmd.String()
	if r.LockIntent {
		out += "+lock"
	}
	m.arcs[k] = out
}

// needsFrame mirrors sim.System.needsFrame.
func (m *machine) needsFrame(cmd bus.Cmd) bool {
	switch cmd {
	case bus.Read, bus.ReadX, bus.WriteNoFetch:
		return true
	case bus.WriteWord:
		return m.feats.WriteAllocates
	}
	return false
}

// buildTxn mirrors sim.System.buildTxn.
func (m *machine) buildTxn(a Action, c *cache.Cache, at addr.Addr, op protocol.Op, r protocol.ProcResult) *bus.Transaction {
	t := &bus.Transaction{
		Cmd:        r.Cmd,
		Block:      addr.Block(a.Block),
		Addr:       at,
		Requester:  a.Proc,
		LockIntent: r.LockIntent,
		MemUpdate:  r.MemUpdate,
	}
	if op == protocol.OpUnlock && (t.Cmd == bus.ReadX || t.Cmd == bus.Upgrade) {
		t.UnlockIntent = true
	}
	switch t.Cmd {
	case bus.WriteWord, bus.UpdateWord:
		t.WordData = a.Value
	}
	return t
}

// broadcast delivers t to every snooping cache — all of them under
// full broadcast, only the directory-recorded holders under a
// partial-broadcast (directory) scheme — and records the transaction.
func (m *machine) broadcast(t *bus.Transaction) {
	m.txns = append(m.txns, t)
	if m.feats.PartialBroadcast && t.Cmd != bus.Flush {
		for _, id := range m.mem.Dir.Members(t.Block, t.Requester) {
			m.caches[id].Snoop(t)
		}
		return
	}
	for _, c := range m.caches {
		if c.ID() != t.Requester {
			c.Snoop(t)
		}
	}
}

// applyCompletion mirrors sim.System.applyCompletion: lock-tag
// reclaim, line install/update, with the processor-side data effect
// deferred to finish.
func (m *machine) applyCompletion(a Action, c *cache.Cache, op protocol.Op, t *bus.Transaction, cres protocol.CompleteResult) {
	b := t.Block
	newState := cres.NewState

	// Every fetch by the lock-tag owner reclaims the purged lock into
	// the line (see sim.System.applyCompletion for why).
	switch t.Cmd {
	case bus.Read, bus.ReadX, bus.Upgrade, bus.WriteNoFetch:
		if tag := m.mem.GetLockTag(b); tag.Locked && tag.Owner == a.Proc {
			if lr, ok := m.proto.(protocol.LockReclaimer); ok {
				newState = lr.ReclaimedLockState(tag.Waiter)
			}
			m.mem.SetLockTag(b, memory.LockTag{})
		}
	}

	switch t.Cmd {
	case bus.Read, bus.ReadX:
		if newState != protocol.Invalid {
			c.Install(b, t.BlockData, newState)
			if t.Lines.Dirty && t.DirtyUnits != nil {
				c.SetUnitDirty(b, t.DirtyUnits)
			}
		}
	case bus.WriteNoFetch:
		c.Install(b, nil, newState)
	case bus.WriteWord:
		if newState != protocol.Invalid {
			if c.State(b) == protocol.Invalid {
				c.Install(b, m.mem.ReadBlock(b), newState)
			} else {
				c.SetState(b, newState)
			}
		}
	default: // Upgrade, UpdateWord, Unlock: the line is present
		if c.State(b) != protocol.Invalid || newState != protocol.Invalid {
			c.SetState(b, newState)
		}
	}
}

// finish applies the processor-side data effect of a completed
// operation, mirroring sim's finishLocal/finishOp.
func (m *machine) finish(a Action, c *cache.Cache, at addr.Addr, op protocol.Op) stepResult {
	res := stepResult{addr: at}
	switch op {
	case protocol.OpRead, protocol.OpReadEx, protocol.OpLock:
		res.value, _ = c.ReadWord(at)
		res.didRead = true
	case protocol.OpWrite, protocol.OpUnlock:
		c.WriteWord(at, a.Value)
	case protocol.OpWriteBlock:
		base := m.geom.Base(addr.Block(a.Block))
		for i := 0; i < m.geom.BlockWords; i++ {
			c.WriteWord(base+addr.Addr(i), a.Value)
		}
	}
	return res
}

// commitShadow records a completed write in the shadow memory (the
// model's sequentially-consistent reference).
func (m *machine) commitShadow(a Action, res stepResult) {
	if a.Kind != ActOp || res.denied || !a.Op.IsWrite() {
		return
	}
	if a.Op == protocol.OpWriteBlock {
		base := int(a.Block) * m.opts.Words
		for i := 0; i < m.opts.Words; i++ {
			m.shadow[base+i] = a.Value
		}
		return
	}
	m.shadow[int(a.Block)*m.opts.Words+a.Word] = a.Value
}

// evictBlock performs the explicit eviction action, mirroring
// sim.System.evict for the chosen victim.
func (m *machine) evictBlock(a Action) {
	c := m.caches[a.Proc]
	blk := addr.Block(a.Block)
	st := c.State(blk)
	if st == protocol.Invalid {
		return
	}
	ev := m.evictOf(st)
	if ev.Writeback {
		t := &bus.Transaction{Cmd: bus.Flush, Block: blk, Addr: m.geom.Base(blk),
			Requester: c.ID(), BlockData: c.Data(blk)}
		m.broadcast(t)
		m.mem.Respond(t)
	}
	if ev.LockPurge {
		m.mem.SetLockTag(blk, memory.LockTag{Locked: true, Owner: c.ID(), Waiter: ev.Waiter})
	}
	if m.feats.PartialBroadcast {
		m.mem.Dir.Remove(blk, c.ID())
	}
	c.Drop(blk)
}

// evictVictim mirrors sim.System.evict for a capacity victim (cannot
// occur with Ways == Blocks, but kept for smaller-cache configs).
func (m *machine) evictVictim(c *cache.Cache, v cache.Victim) {
	if v.Evict.Writeback {
		t := &bus.Transaction{Cmd: bus.Flush, Block: v.Block, Addr: m.geom.Base(v.Block),
			Requester: c.ID(), BlockData: v.Data}
		m.broadcast(t)
		m.mem.Respond(t)
	}
	if v.Evict.LockPurge {
		m.mem.SetLockTag(v.Block, memory.LockTag{Locked: true, Owner: c.ID(), Waiter: v.Evict.Waiter})
	}
	if m.feats.PartialBroadcast {
		m.mem.Dir.Remove(v.Block, c.ID())
	}
	c.Drop(v.Block)
}

// checkInvariants validates the current state: the shared coherence
// predicates over real caches and memory, the shadow-backed
// latest-version/conservation check, and the read-value check of the
// step that produced the state.
func (m *machine) checkInvariants(a Action, res stepResult) []string {
	out := m.checker.Check(m.caches, m.mem, m.universe)
	for _, b := range m.universe {
		owner := m.ownerView(b)
		base := int(b) * m.opts.Words
		for w := 0; w < m.opts.Words; w++ {
			if owner[w] != m.shadow[base+w] {
				out = append(out, fmt.Sprintf(
					"block %d word %d: conservation violated: latest value %d lost (owner/memory holds %d)",
					b, w, m.shadow[base+w], owner[w]))
			}
		}
	}
	if res.didRead {
		base := int(a.Block) * m.opts.Words
		if want := m.shadow[base+a.Word]; res.value != want {
			out = append(out, fmt.Sprintf(
				"stale read: %s returned %d, latest write in step order is %d", a, res.value, want))
		}
	}
	return out
}

// ownerView returns a read-only view of the authoritative copy of
// block b: the dirty cache copy when one exists, memory otherwise.
func (m *machine) ownerView(b addr.Block) []uint64 {
	for _, c := range m.caches {
		st := c.State(b)
		if st != protocol.Invalid && m.isDirty(st) {
			return c.DataView(b)
		}
	}
	return m.mem.BlockView(b)
}

// --- canonical state encoding -------------------------------------------

// encodeKey serializes the machine's complete behavioral state — cache
// frames (including tag-only invalid frames), memory data, lock tags,
// directory presence, and the shadow memory — into the fixed-width
// binary key described by keyLayout. The returned slice aliases a
// per-machine buffer reused by the next call.
func (m *machine) encodeKey() []uint64 {
	k := m.keyBuf
	clear(k)
	lay := &m.lay
	for bi, b := range m.universe {
		base := bi * lay.blockStride
		pos := base + lay.ctrlWords
		for ci, c := range m.caches {
			if st, data, ok := c.FrameView(b); ok {
				// protocol.State is a small enum (uint16 with the top bit
				// never set), so present|state<<1 fits the 16-bit lane.
				k[base+ci/4] |= (1 | uint64(st)<<1) << uint((ci%4)*16)
				copy(k[pos:pos+lay.words], data)
			}
			pos += lay.words
		}
		copy(k[pos:pos+lay.words], m.mem.BlockView(b))
		pos += lay.words
		var lw uint64
		if tag := m.mem.GetLockTag(b); tag.Locked {
			lw = 1 | uint64(tag.Owner)<<2
			if tag.Waiter {
				lw |= 2
			}
		}
		k[pos] = lw | m.mem.Dir.Mask(b)<<8
		pos++
		copy(k[pos:pos+lay.words], m.shadow[bi*lay.words:(bi+1)*lay.words])
	}
	return k
}

// restoreKey re-materializes the machine at an encoded state. It is
// the other per-transition hot path and decodes into reused buffers.
func (m *machine) restoreKey(k []uint64) {
	lay := &m.lay
	if len(k) != lay.total {
		panic(fmt.Sprintf("mcheck: state key has %d words, want %d", len(k), lay.total))
	}
	clear(m.decCount)
	for bi, b := range m.universe {
		base := bi * lay.blockStride
		pos := base + lay.ctrlWords
		for ci := range m.caches {
			lane := (k[base+ci/4] >> uint((ci%4)*16)) & 0xffff
			if lane&1 != 0 {
				ls := &m.decLines[ci][m.decCount[ci]]
				m.decCount[ci]++
				ls.Block = b
				ls.State = protocol.State(lane >> 1)
				copy(ls.Data, k[pos:pos+lay.words])
			}
			pos += lay.words
		}
		m.mem.WriteBlock(b, k[pos:pos+lay.words])
		pos += lay.words
		lw := k[pos]
		pos++
		var tag memory.LockTag
		if lw&1 != 0 {
			tag = memory.LockTag{Locked: true, Owner: int(lw >> 2 & 7), Waiter: lw&2 != 0}
		}
		m.mem.SetLockTag(b, tag)
		m.dirIDs = m.dirIDs[:0]
		mask := lw >> 8 & 0xff
		for id := 0; id < m.opts.Procs; id++ {
			if mask&(1<<uint(id)) != 0 {
				m.dirIDs = append(m.dirIDs, id)
			}
		}
		m.mem.Dir.Set(b, m.dirIDs)
		copy(m.shadow[bi*lay.words:(bi+1)*lay.words], k[pos:pos+lay.words])
	}
	for ci, c := range m.caches {
		c.Restore(m.decLines[ci][:m.decCount[ci]])
	}
}

// sortedArcs returns the collected arcs in a deterministic order.
func (m *machine) sortedArcs() []ObservedArc {
	out := make([]ObservedArc, 0, len(m.arcs))
	for k, v := range m.arcs {
		out = append(out, ObservedArc{State: k.state, Op: k.op, Outcome: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Op < out[j].Op
	})
	return out
}
