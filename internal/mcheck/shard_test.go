package mcheck

import (
	"encoding/json"
	"testing"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// runShardedInProc drives RunSharded over n in-process sessions.
func runShardedInProc(t *testing.T, o Options, n int) *Result {
	t.Helper()
	peers := make([]ShardPeer, n)
	for i := range peers {
		s, err := NewShardSession(o, i, n)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = s
	}
	res, err := RunSharded(o, peers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// normalizeTiming zeroes the wall-clock fields so results compare
// structurally.
func normalizeTiming(r *Result) {
	r.Elapsed = 0
	r.StatesPerSec = 0
}

// TestShardedEquivalence checks that sharded exploration merges to the
// byte-identical Result JSON of a single-process run, for several
// shard counts, protocols, symmetry modes, and a seeded mutant whose
// counterexample must survive the cross-shard trace rebuild.
func TestShardedEquivalence(t *testing.T) {
	cases := []struct {
		proto, inject string
		procs, blocks int
		sym           bool
	}{
		{proto: "bitar", procs: 2, blocks: 2, sym: true},
		{proto: "bitar", procs: 3, blocks: 1, sym: false},
		{proto: "locke", procs: 2, blocks: 2, sym: true},
		{proto: "illinois", procs: 3, blocks: 2, sym: true},
		{proto: "bitar", inject: "ignore-lock", procs: 3, blocks: 1, sym: true},
		{proto: "locke", inject: "stale-lock-grant", procs: 2, blocks: 2, sym: false},
		{proto: "berkeley", inject: "skip-writeback", procs: 2, blocks: 2, sym: true},
	}
	for _, c := range cases {
		c := c
		name := c.proto
		if c.inject != "" {
			name += "+" + c.inject
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mk := func() protocol.Protocol {
				p := protocol.MustNew(c.proto)
				if c.inject != "" {
					mp, err := Mutate(p, c.inject)
					if err != nil {
						t.Fatal(err)
					}
					p = mp
				}
				return p
			}
			o := Options{Protocol: mk(), Procs: c.procs, Blocks: c.blocks, Depth: 5, Workers: 1, Symmetry: c.sym}
			single, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			normalizeTiming(single)
			want, err := json.Marshal(single)
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 2, 3, 5} {
				so := o
				so.Protocol = mk()
				sharded := runShardedInProc(t, so, n)
				normalizeTiming(sharded)
				got, err := json.Marshal(sharded)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Fatalf("shards=%d: result differs\n got %s\nwant %s", n, got, want)
				}
			}
		})
	}
}

// TestShardedTruncation checks MaxStates parity with the single
// process: same Truncated flag and state count at the cap.
func TestShardedTruncation(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 3, Blocks: 1, Depth: 6, Workers: 1, MaxStates: 200}
	single, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Protocol = protocol.MustNew("bitar")
	sharded := runShardedInProc(t, o, 3)
	if !single.Truncated || !sharded.Truncated {
		t.Fatalf("expected truncation: single=%v sharded=%v", single.Truncated, sharded.Truncated)
	}
	if single.States != sharded.States || single.DepthReached != sharded.DepthReached {
		t.Fatalf("truncation diverged: states %d vs %d, depth %d vs %d",
			single.States, sharded.States, single.DepthReached, sharded.DepthReached)
	}
}

// TestShardedRejectsPOR pins the documented scope limit.
func TestShardedRejectsPOR(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 2, POR: true}
	if _, err := NewShardSession(o, 0, 2); err == nil {
		t.Fatal("NewShardSession accepted POR")
	}
	if _, err := RunSharded(o, []ShardPeer{nil}); err == nil {
		t.Fatal("RunSharded accepted POR")
	}
}
