package mcheck

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Shard-session checkpointing. A distributed check's sessions are
// in-memory state pinned to one replica each; losing the replica used
// to lose the whole fleet check. With a checkpoint directory set
// (serve wires Config.ShardCheckpointRoot through; the root must be
// storage every replica can reach), a session snapshots itself after
// Open and after every Absorb — the only mutating phases — so the
// coordinator can re-open it with resume on a healthy replica and
// retry the failed call. The snapshot is one file, replaced by
// tmp+rename, holding everything Expand/Absorb/TraceHop read: the
// visited tables in insertion order (state IDs must survive the move —
// other sessions hold them as parent pointers), the cross-session
// parent edges, the frontier, and the (seq, lastAdded) pair that makes
// an Absorb retry idempotent.

const (
	sessMagic    = 0x3353434d // "MCS3"
	sessFileName = "session.mss"
)

// sessionHash pins a snapshot to its exploration: the single-run
// options hash extended with the session coordinates. A snapshot
// written by a different configuration or a different shard index
// must never restore.
func sessionHash(o Options, self, total int) string {
	return fmt.Sprintf("%s|sess%d/%d", optionsHash(o, -1), self, total)
}

// SetCheckpointDir enables checkpointing into dir; resume makes the
// next Open restore an existing snapshot instead of seeding. Must be
// called before Open.
func (s *ShardSession) SetCheckpointDir(dir string, resume bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("mcheck: session checkpoint dir: %w", err)
	}
	s.ckptDir = dir
	s.resume = resume
	return nil
}

// DiscardCheckpoint removes the session's snapshot and its directory;
// called when the distributed check completes and the session closes.
func (s *ShardSession) DiscardCheckpoint() {
	if s.ckptDir == "" {
		return
	}
	s.removeSessionFile()
	os.Remove(s.ckptDir)
}

func (s *ShardSession) removeSessionFile() {
	os.Remove(filepath.Join(s.ckptDir, sessFileName))
	os.Remove(filepath.Join(s.ckptDir, sessFileName+".tmp"))
}

// saveSession writes the snapshot:
//
//	u32 magic, u32 kw
//	u32 hashLen, hashLen bytes  session hash
//	u64 seq, u64 lastAdded
//	64 × shard: u64 n, n × (kw×8 key, u64 hash,
//	            32-byte edge, u32 parentSess two's-complement)
//	u32 frontLen, frontLen × u64 packed state IDs
//	u64 fnv-1a checksum of everything above
func (s *ShardSession) saveSession() error {
	hash := sessionHash(s.o, s.self, s.total)
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, sessMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.kw))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hash)))
	buf = append(buf, hash...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.seq))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.lastAdded))
	var ebuf [runEdgeSz]byte
	for ts := 0; ts < shardCount; ts++ {
		t := s.visited[ts]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.n))
		for i := 0; i < t.n; i++ {
			for _, w := range t.key(i) {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
			buf = binary.LittleEndian.AppendUint64(buf, t.hashes[i])
			e := s.ext[ts][i]
			putEdge(ebuf[:], edge{parent: e.parent, act: e.act})
			buf = append(buf, ebuf[:]...)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.parentSess))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.front)))
	for _, id := range s.front {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	buf = binary.LittleEndian.AppendUint64(buf, fnv1a(0, buf))

	path := filepath.Join(s.ckptDir, sessFileName)
	if err := writeFileSync(path+".tmp", buf); err != nil {
		return err
	}
	if err := os.Rename(path+".tmp", path); err != nil {
		return err
	}
	syncDir(s.ckptDir)
	return nil
}

// loadSession restores a snapshot if one exists. Returns false when
// the directory holds none. Every field is bounds-checked before it
// drives an allocation, and the checksum is verified first —
// FuzzRunFileDecode feeds this arbitrary bytes.
func (s *ShardSession) loadSession() (bool, error) {
	path := filepath.Join(s.ckptDir, sessFileName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("mcheck: session snapshot %s: %s", path, fmt.Sprintf(format, args...))
	}
	if len(data) < 32 {
		return false, fail("truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if got, want := binary.LittleEndian.Uint64(tail), fnv1a(0, body); got != want {
		return false, fail("checksum mismatch")
	}
	off := 0
	u32 := func() uint32 { v := binary.LittleEndian.Uint32(body[off:]); off += 4; return v }
	u64 := func() uint64 { v := binary.LittleEndian.Uint64(body[off:]); off += 8; return v }
	need := func(n int) bool { return len(body)-off >= n }
	if u32() != sessMagic {
		return false, fail("bad magic")
	}
	if kw := u32(); int(kw) != s.kw {
		return false, fail("key width %d, want %d", kw, s.kw)
	}
	hlen := u32()
	if hlen > 4096 || !need(int(hlen)) {
		return false, fail("bad hash length %d", hlen)
	}
	wantHash := sessionHash(s.o, s.self, s.total)
	if got := string(body[off : off+int(hlen)]); got != wantHash {
		return false, fmt.Errorf("mcheck: session snapshot %s was written under different options or coordinates (hash %s, want %s)", path, got, wantHash)
	}
	off += int(hlen)
	if !need(16) {
		return false, fail("truncated counters")
	}
	seq := int64(u64())
	lastAdded := int64(u64())
	if seq < 0 || lastAdded < 0 {
		return false, fail("negative counters")
	}

	entSz := s.kw*8 + 8 + runEdgeSz + 4
	total := 0
	for ts := 0; ts < shardCount; ts++ {
		if !need(8) {
			return false, fail("truncated shard header %d", ts)
		}
		n := u64()
		if n > uint64((len(body)-off)/entSz) {
			return false, fail("shard %d claims %d entries", ts, n)
		}
		total += int(n)
		if total >= 1<<32 {
			return false, fail("implausible entry total")
		}
		t := newShardTable(s.kw)
		ext := make([]extEdge, 0, n)
		key := make([]uint64, s.kw)
		for i := uint64(0); i < n; i++ {
			for w := range key {
				key[w] = u64()
			}
			h := u64()
			e := getEdge(body[off:])
			off += runEdgeSz
			ps := int32(u32())
			if ps < -1 || int(ps) >= s.total {
				return false, fail("shard %d entry %d: parent session %d", ts, i, ps)
			}
			if t.lookup(key, h) >= 0 {
				return false, fail("shard %d entry %d: duplicate key", ts, i)
			}
			t.insert(key, h, edge{})
			ext = append(ext, extEdge{parentSess: ps, parent: e.parent, act: e.act})
		}
		s.visited[ts] = t
		s.ext[ts] = ext
	}
	if !need(4) {
		return false, fail("truncated frontier header")
	}
	fn := u32()
	if !need(int(fn)*8) || int64(fn) != lastAdded && seq > 0 {
		return false, fail("frontier length %d, lastAdded %d", fn, lastAdded)
	}
	front := make([]stateID, 0, fn)
	for i := uint32(0); i < fn; i++ {
		id := stateID(u64())
		ts, idx := id.shard(), id.index()
		if ts < 0 || ts >= shardCount || idx >= s.visited[ts].n {
			return false, fail("frontier entry %d out of range", i)
		}
		front = append(front, id)
	}
	if off != len(body) {
		return false, fail("%d trailing bytes", len(body)-off)
	}
	s.front = front
	s.seq = seq
	s.lastAdded = lastAdded
	return true, nil
}
