package mcheck

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cachesync/internal/protocol"
)

// Distributed exploration.
//
// The visited set is partitioned across N session shards by state
// hash (sessionShardOf); each shard holds the states it owns, expands
// its slice of the global frontier, and mails newly discovered states
// to their owners. A coordinator (RunSharded) drives the shards
// through level-synchronized phases — expand, then absorb — so the
// global exploration is the same BFS runCore performs, with the level
// barrier stretched over the network.
//
// Equivalence with the single-process run rests on the same idea as
// partial-order reduction's counterexample proof: every tiebreak the
// single-process BFS makes by frontier position is re-expressed in
// intrinsic state data. The global frontier at each level is ordered
// (visited-table shard, key); a shard's slice of it is a subsequence,
// so a candidate's ordinal (parent table shard, parent key, action
// index) — wireOrd — compares across shards exactly as the global
// (frontier index, action index) pair does. Duplicate discoveries
// resolve to the least ordinal wherever they land (absorb), and
// simultaneous violations resolve to the least ordinal at the
// coordinator, which rebuilds the trace by following parent pointers
// across shards and de-canonicalizes it exactly as runCore would. The
// HTTP-level differential test asserts the merged Result is
// byte-identical to a single-replica run.
//
// Sharded expansion is deliberately single-threaded per session —
// the in-order scan is what makes first-seen-wins equal
// least-ordinal-wins — so fleet throughput comes from running the
// shards on different machines, not from intra-shard workers. POR
// does not compose with sharding (per-block sub-runs would each need
// their own fleet pass); RunSharded and NewShardSession reject it.

// sessionShardOf maps a state hash to its owning session shard. It
// must stay independent of shardOfHash (which takes the top 6 bits),
// so it folds the low bits.
func sessionShardOf(h uint64, total int) int {
	return int((h ^ h>>17) % uint64(total))
}

// WireAction is Action in a JSON-round-trippable shape (Action's own
// MarshalJSON renders the human trace string, which does not parse
// back).
type WireAction struct {
	Proc  int         `json:"proc"`
	Kind  ActionKind  `json:"kind"`
	Op    protocol.Op `json:"op"`
	Block uint64      `json:"block"`
	Word  int         `json:"word"`
	Value uint64      `json:"value"`
}

func toWire(a Action) WireAction {
	return WireAction{Proc: a.Proc, Kind: a.Kind, Op: a.Op, Block: a.Block, Word: a.Word, Value: a.Value}
}

func fromWire(w WireAction) Action {
	return Action{Proc: w.Proc, Kind: w.Kind, Op: w.Op, Block: w.Block, Word: w.Word, Value: w.Value}
}

// WireOrd is a transition's global tiebreak ordinal: the discovering
// parent's visited-table shard and key (its position in the global
// frontier order) plus the action's index in the parent's full action
// list.
type WireOrd struct {
	TShard    int      `json:"tshard"`
	ParentKey []uint64 `json:"pkey"`
	AI        int32    `json:"ai"`
}

func (o WireOrd) before(p WireOrd) bool {
	if o.TShard != p.TShard {
		return o.TShard < p.TShard
	}
	if !equalKey(o.ParentKey, p.ParentKey) {
		return lessKey(o.ParentKey, p.ParentKey)
	}
	return o.AI < p.AI
}

// WireCand is one newly discovered state in flight to its owning
// session shard.
type WireCand struct {
	Key        []uint64   `json:"key"`
	Hash       uint64     `json:"hash"`
	Ord        WireOrd    `json:"ord"`
	ParentSess int        `json:"psess"`
	Parent     uint64     `json:"parent"` // packed stateID in the parent's session
	Act        WireAction `json:"act"`
}

// ShardOpenReply reports a session's view after seeding.
type ShardOpenReply struct {
	Root           bool     `json:"root"` // this session owns the initial state
	Workers        int      `json:"workers"`
	RootViolations []string `json:"root_violations,omitempty"`
	// Resumed reports that the session restored itself from a
	// checkpoint instead of seeding fresh; Seq is the last absorbed
	// level. A coordinator re-dispatching a dead replica's session
	// verifies Seq against its own progress before trusting the peer.
	Resumed bool  `json:"resumed,omitempty"`
	Seq     int64 `json:"seq,omitempty"`
}

// ShardViolation is a violating transition found during expansion.
type ShardViolation struct {
	Ord        WireOrd    `json:"ord"`
	ParentSess int        `json:"psess"`
	Parent     uint64     `json:"parent"`
	Act        WireAction `json:"act"`
	Violations []string   `json:"violations"`
}

// ShardExpandReply is one session's expansion of its frontier slice:
// candidates grouped by destination session shard, plus the least
// violating transition, if any.
type ShardExpandReply struct {
	Out         [][]WireCand    `json:"out"`
	Transitions int64           `json:"transitions"`
	Violation   *ShardViolation `json:"violation,omitempty"`
}

// ShardAbsorbReply reports how many mailed candidates were new. Seq
// echoes the absorbed level so a coordinator can detect replays.
type ShardAbsorbReply struct {
	Added int64 `json:"added"`
	Seq   int64 `json:"seq"`
}

// ShardHopReply is one backward step of cross-shard trace rebuilding.
type ShardHopReply struct {
	Root       bool       `json:"root"`
	Act        WireAction `json:"act"`
	ParentSess int        `json:"psess"`
	Parent     uint64     `json:"parent"`
}

// ShardPeer is one session shard as the coordinator sees it — either
// a local ShardSession or a remote replica spoken to over HTTP.
type ShardPeer interface {
	Open() (*ShardOpenReply, error)
	Expand() (*ShardExpandReply, error)
	// Absorb folds one level's candidates in; seq is the level number
	// (1-based), making retries after a session re-dispatch idempotent.
	Absorb(seq int64, cands []WireCand) (*ShardAbsorbReply, error)
	TraceHop(id uint64) (*ShardHopReply, error)
	Close() error
}

// extEdge is a visited state's parent pointer across session shards.
type extEdge struct {
	parentSess int32 // -1 marks the root
	parent     stateID
	act        Action
}

// ShardSession is one session shard's state: the slice of the visited
// set it owns, its frontier, and a machine for expansion.
type ShardSession struct {
	o       Options
	self    int
	total   int
	m       *machine
	kw      int
	visited []*shardTable
	ext     [][]extEdge // parallel to each shardTable's entries
	front   []stateID
	seen    *keySet

	// Checkpointing (sessionckpt.go): with ckptDir set, the session
	// snapshots itself after Open and after every Absorb, so a
	// coordinator can re-dispatch it to another replica when this one
	// dies. seq counts absorbed levels; lastAdded makes an Absorb
	// retry after a re-dispatch idempotent.
	ckptDir   string
	resume    bool
	seq       int64
	lastAdded int64
}

// NewShardSession builds session shard self of total for one
// exploration. The configuration must be identical on every shard.
func NewShardSession(opts Options, self, total int) (*ShardSession, error) {
	o := opts.withDefaults()
	if err := validate(o); err != nil {
		return nil, err
	}
	if o.POR {
		return nil, fmt.Errorf("mcheck: POR does not compose with sharded exploration")
	}
	if o.MemBudget > 0 {
		return nil, fmt.Errorf("mcheck: MemBudget does not compose with sharded exploration (spilling is per-process)")
	}
	if total < 1 || self < 0 || self >= total {
		return nil, fmt.Errorf("mcheck: shard %d/%d out of range", self, total)
	}
	s := &ShardSession{o: o, self: self, total: total, m: newMachine(o)}
	s.kw = s.m.lay.total
	s.visited = make([]*shardTable, shardCount)
	s.ext = make([][]extEdge, shardCount)
	for i := range s.visited {
		s.visited[i] = newShardTable(s.kw)
	}
	s.seen = newKeySet(s.kw)
	return s, nil
}

// Open seeds the initial state into its owning session and reports
// root invariant violations. With a checkpoint directory set and
// resume requested, an existing session snapshot is restored instead
// of seeding — the re-dispatch path after a replica death.
func (s *ShardSession) Open() (*ShardOpenReply, error) {
	reply := &ShardOpenReply{Workers: s.o.Workers}
	root := s.m.encodeKey()
	if s.m.canon != nil {
		root, _ = s.m.canon.canonicalize(root)
	}
	if v := s.m.checkInvariants(Action{}, stepResult{}); len(v) > 0 {
		reply.RootViolations = v
	}
	h := hashKey(root)
	owns := sessionShardOf(h, s.total) == s.self
	if s.ckptDir != "" {
		if s.resume {
			ok, err := s.loadSession()
			if err != nil {
				return nil, err
			}
			if ok {
				reply.Root = owns
				reply.Resumed = true
				reply.Seq = s.seq
				return reply, nil
			}
		} else {
			// A fresh open owns the directory: drop any stale snapshot a
			// crashed earlier session with the same name left behind.
			s.removeSessionFile()
		}
	}
	if owns {
		ts := shardOfHash(h)
		idx := s.visited[ts].insert(root, h, edge{parent: noParent})
		s.ext[ts] = append(s.ext[ts], extEdge{parentSess: -1})
		s.front = []stateID{packID(ts, idx)}
		reply.Root = true
	}
	if s.ckptDir != "" {
		if err := s.saveSession(); err != nil {
			return nil, err
		}
	}
	return reply, nil
}

// Expand walks the session's frontier slice in (table shard, key)
// order — the global frontier order restricted to owned states — and
// returns the discovered candidates routed by owner. Because the scan
// is in ordinal order, first-seen intra-level dedup keeps the
// least-ordinal discoverer, matching runCore's merge.
func (s *ShardSession) Expand() (*ShardExpandReply, error) {
	reply := &ShardExpandReply{Out: make([][]WireCand, s.total)}
	s.seen.reset()
	for _, id := range s.front {
		enc := s.visited[id.shard()].key(id.index())
		s.m.restoreKey(enc)
		acts := s.m.actions()
		dirty := false
		for j, a := range acts {
			if dirty {
				s.m.restoreKey(enc)
			}
			dirty = true
			reply.Transitions++
			if v := s.m.step(a); len(v) > 0 {
				ord := WireOrd{TShard: id.shard(), ParentKey: append([]uint64(nil), enc...), AI: int32(j)}
				if reply.Violation == nil || ord.before(reply.Violation.Ord) {
					reply.Violation = &ShardViolation{
						Ord: ord, ParentSess: s.self, Parent: uint64(id),
						Act: toWire(a), Violations: v,
					}
				}
				continue
			}
			nk := s.m.encodeKey()
			if s.m.canon != nil {
				nk, _ = s.m.canon.canonicalize(nk)
			}
			h := hashKey(nk)
			dest := sessionShardOf(h, s.total)
			if dest == s.self && s.visited[shardOfHash(h)].lookup(nk, h) >= 0 {
				continue
			}
			if _, fresh := s.seen.add(nk, h); !fresh {
				continue
			}
			reply.Out[dest] = append(reply.Out[dest], WireCand{
				Key:  append([]uint64(nil), nk...),
				Hash: h,
				Ord: WireOrd{
					TShard: id.shard(), ParentKey: append([]uint64(nil), enc...), AI: int32(j),
				},
				ParentSess: s.self, Parent: uint64(id), Act: toWire(a),
			})
		}
	}
	return reply, nil
}

// Absorb folds the level's candidates owned by this session into its
// visited slice: per state the least-ordinal discoverer wins, new
// states insert in (table shard, key) order, and they become the next
// frontier slice. seq is the level number: a retry of the last
// absorbed level (after a coordinator re-dispatched this session)
// returns the recorded reply without reapplying; anything else out of
// order is an error.
func (s *ShardSession) Absorb(seq int64, cands []WireCand) (*ShardAbsorbReply, error) {
	if seq == s.seq && seq > 0 {
		return &ShardAbsorbReply{Added: s.lastAdded, Seq: s.seq}, nil
	}
	if seq != s.seq+1 {
		return nil, fmt.Errorf("mcheck: shard %d: absorb seq %d, session at %d", s.self, seq, s.seq)
	}
	for i := range cands {
		if len(cands[i].Key) != s.kw || len(cands[i].Ord.ParentKey) != s.kw {
			return nil, fmt.Errorf("mcheck: shard %d: candidate key width mismatch", s.self)
		}
		if sessionShardOf(cands[i].Hash, s.total) != s.self {
			return nil, fmt.Errorf("mcheck: shard %d: misrouted candidate", s.self)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := shardOfHash(cands[i].Hash), shardOfHash(cands[j].Hash)
		if si != sj {
			return si < sj
		}
		if !equalKey(cands[i].Key, cands[j].Key) {
			return lessKey(cands[i].Key, cands[j].Key)
		}
		return cands[i].Ord.before(cands[j].Ord)
	})
	s.front = s.front[:0]
	for i := range cands {
		c := &cands[i]
		if i > 0 && cands[i-1].Hash == c.Hash && equalKey(cands[i-1].Key, c.Key) {
			continue // duplicate; the sort put the least ordinal first
		}
		ts := shardOfHash(c.Hash)
		if s.visited[ts].lookup(c.Key, c.Hash) >= 0 {
			continue
		}
		idx := s.visited[ts].insert(c.Key, c.Hash, edge{})
		s.ext[ts] = append(s.ext[ts], extEdge{
			parentSess: int32(c.ParentSess), parent: stateID(c.Parent), act: fromWire(c.Act),
		})
		s.front = append(s.front, packID(ts, idx))
	}
	s.seq = seq
	s.lastAdded = int64(len(s.front))
	if s.ckptDir != "" {
		if err := s.saveSession(); err != nil {
			return nil, err
		}
	}
	return &ShardAbsorbReply{Added: s.lastAdded, Seq: s.seq}, nil
}

// TraceHop resolves one owned state to its discovering action and
// parent, for cross-shard counterexample reconstruction.
func (s *ShardSession) TraceHop(id uint64) (*ShardHopReply, error) {
	sid := stateID(id)
	ts, idx := sid.shard(), sid.index()
	if ts < 0 || ts >= shardCount || idx >= len(s.ext[ts]) {
		return nil, fmt.Errorf("mcheck: shard %d: unknown state %#x", s.self, id)
	}
	e := s.ext[ts][idx]
	return &ShardHopReply{
		Root: e.parentSess < 0, Act: toWire(e.act),
		ParentSess: int(e.parentSess), Parent: uint64(e.parent),
	}, nil
}

// Close implements ShardPeer; an in-process session has nothing to
// release.
func (s *ShardSession) Close() error { return nil }

// RunSharded explores opts across the given session shards and merges
// the per-level results into the Result a single-process Run of the
// same options would produce (timing fields aside). The peers must
// have been created for this configuration with matching (self,
// total) indices; RunSharded calls Open on each.
func RunSharded(opts Options, peers []ShardPeer) (*Result, error) {
	o := opts.withDefaults()
	if err := validate(o); err != nil {
		return nil, err
	}
	if o.POR {
		return nil, fmt.Errorf("mcheck: POR does not compose with sharded exploration")
	}
	if len(peers) < 1 {
		return nil, fmt.Errorf("mcheck: no shard peers")
	}

	start := time.Now()
	res := &Result{
		Protocol: o.Protocol.Name(),
		Procs:    o.Procs, Blocks: o.Blocks, Words: o.Words,
		Depth: o.Depth, Workers: o.Workers, Symmetry: o.Symmetry,
	}
	finalize := func() *Result {
		res.Elapsed = time.Since(start)
		if s := res.Elapsed.Seconds(); s > 0 {
			res.StatesPerSec = float64(res.States) / s
		}
		return res
	}

	rooted := false
	for i, p := range peers {
		reply, err := p.Open()
		if err != nil {
			return nil, fmt.Errorf("mcheck: shard %d open: %w", i, err)
		}
		if i == 0 {
			if reply.Workers > 0 {
				res.Workers = reply.Workers
			}
			if len(reply.RootViolations) > 0 {
				res.Counterexample = &Counterexample{Violations: reply.RootViolations}
				res.States = 1
				return finalize(), nil
			}
		}
		if reply.Root {
			rooted = true
		}
	}
	if !rooted {
		return nil, fmt.Errorf("mcheck: no shard owns the initial state")
	}
	res.States = 1

	frontier := int64(1)
	for depth := 1; depth <= o.Depth && frontier > 0; depth++ {
		expands := make([]*ShardExpandReply, len(peers))
		errs := make([]error, len(peers))
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p ShardPeer) {
				defer wg.Done()
				expands[i], errs[i] = p.Expand()
			}(i, p)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("mcheck: shard %d expand at depth %d: %w", i, depth, err)
			}
		}
		var viol *ShardViolation
		for _, er := range expands {
			res.Transitions += er.Transitions
			if er.Violation != nil && (viol == nil || er.Violation.Ord.before(viol.Ord)) {
				viol = er.Violation
			}
		}
		if viol != nil {
			trace, err := rebuildShardTrace(peers, viol)
			if err != nil {
				return nil, err
			}
			viols := viol.Violations
			if o.Symmetry {
				dtrace, dviols := decanonicalizeTrace(o, trace)
				trace = dtrace
				if len(dviols) > 0 {
					viols = dviols
				}
			}
			res.Counterexample = &Counterexample{Trace: trace, Violations: viols}
			res.DepthReached = depth
			break
		}

		frontier = 0
		for d, p := range peers {
			var in []WireCand
			for _, er := range expands {
				in = append(in, er.Out[d]...)
			}
			reply, err := p.Absorb(int64(depth), in)
			if err != nil {
				return nil, fmt.Errorf("mcheck: shard %d absorb at depth %d: %w", d, depth, err)
			}
			frontier += reply.Added
		}
		res.States += frontier
		res.DepthReached = depth
		if o.Progress != nil {
			info := ProgressInfo{Depth: depth, States: res.States, Transitions: res.Transitions}
			if s := time.Since(start).Seconds(); s > 0 {
				info.StatesPerSec = float64(res.States) / s
			}
			o.Progress(info)
		}
		if res.States >= int64(o.MaxStates) {
			res.Truncated = true
			break
		}
	}

	res.Exhausted = res.Counterexample == nil && !res.Truncated && frontier == 0
	return finalize(), nil
}

// rebuildShardTrace follows parent pointers from the violating
// transition back to the root, hopping between session shards.
func rebuildShardTrace(peers []ShardPeer, viol *ShardViolation) ([]Action, error) {
	var rev []Action
	sess, id := viol.ParentSess, viol.Parent
	for {
		if sess < 0 || sess >= len(peers) {
			return nil, fmt.Errorf("mcheck: trace walks into unknown shard %d", sess)
		}
		hop, err := peers[sess].TraceHop(id)
		if err != nil {
			return nil, fmt.Errorf("mcheck: shard %d trace hop: %w", sess, err)
		}
		if hop.Root {
			break
		}
		rev = append(rev, fromWire(hop.Act))
		sess, id = hop.ParentSess, hop.Parent
		if len(rev) > 1<<16 {
			return nil, fmt.Errorf("mcheck: trace rebuild did not reach the root")
		}
	}
	trace := make([]Action, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		trace = append(trace, rev[i])
	}
	return append(trace, fromWire(viol.Act)), nil
}
