package mcheck

import "cachesync/internal/protocol"

// Processor-symmetry reduction. Under full broadcast every cache is
// interchangeable (the paper's Section E treats all caches
// identically): the transition relation commutes with any permutation
// of processor indices, provided everything that names a processor is
// permuted together — cache frames, the memory lock tag's owner, the
// directory presence bits, and the data values themselves (actions()
// writes value p+1 for word writes and unlocks, p+1+Procs for
// whole-block writes, so the written values carry the writer's
// identity). The checker therefore explores one representative per
// orbit: each reached state is mapped to the lexicographically least
// key over all P! index permutations, shrinking the reachable space by
// up to P! while preserving every invariant verdict — the invariants
// are themselves permutation-symmetric. Counterexample traces are
// rebuilt in canonical frames and de-canonicalized on replay
// (decanonicalizeTrace), so rendered traces and sim replay still work.

// permutations returns every permutation of 0..n-1 in a fixed
// deterministic order with the identity first.
func permutations(n int) [][]int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := k; i < n; i++ {
			idx[k], idx[i] = idx[i], idx[k]
			rec(k + 1)
			idx[k], idx[i] = idx[i], idx[k]
		}
	}
	rec(0)
	return out
}

// canonizer maps state keys to their orbit representative.
type canonizer struct {
	lay   keyLayout
	perms [][]int // perms[p][i] = source cache placed at slot i
	invs  [][]int // invs[p][old cache] = its slot under perms[p]
	buf   []uint64
	best  []uint64
}

func newCanonizer(lay keyLayout) *canonizer {
	c := &canonizer{
		lay:   lay,
		perms: permutations(lay.procs),
		buf:   make([]uint64, lay.total),
		best:  make([]uint64, lay.total),
	}
	c.invs = make([][]int, len(c.perms))
	for p, perm := range c.perms {
		inv := make([]int, lay.procs)
		for i, o := range perm {
			inv[o] = i
		}
		c.invs[p] = inv
	}
	return c
}

// remapVal rewrites a data value under the permutation described by
// inv. Values are 0 (initial) or carry a writer identity: p+1 for a
// word write or unlock, p+1+procs for a whole-block write. Anything
// outside that range carries no processor identity and stays fixed.
func remapVal(v uint64, inv []int, procs int) uint64 {
	if v == 0 || v > uint64(2*procs) {
		return v
	}
	if v <= uint64(procs) {
		return uint64(inv[v-1]) + 1
	}
	return uint64(inv[v-1-uint64(procs)]) + 1 + uint64(procs)
}

// permuteKey writes the permuted image of src into dst: dst's cache
// slot i receives src's cache perm[i], with owner fields, directory
// bits, and writer-identifying data values rewritten through inv.
func permuteKey(src, dst []uint64, perm, inv []int, lay keyLayout) {
	procs := lay.procs
	for bi := 0; bi < lay.blocks; bi++ {
		base := bi * lay.blockStride
		for i := 0; i < lay.ctrlWords; i++ {
			dst[base+i] = 0
		}
		pos := base + lay.ctrlWords
		for ci := 0; ci < procs; ci++ {
			o := perm[ci]
			lane := (src[base+o/4] >> uint((o%4)*16)) & 0xffff
			dst[base+ci/4] |= lane << uint((ci%4)*16)
			srcOff := base + lay.ctrlWords + o*lay.words
			for w := 0; w < lay.words; w++ {
				dst[pos+w] = remapVal(src[srcOff+w], inv, procs)
			}
			pos += lay.words
		}
		for w := 0; w < lay.words; w++ {
			dst[pos] = remapVal(src[pos], inv, procs)
			pos++
		}
		lw := src[pos]
		var out uint64
		if lw&1 != 0 {
			out = 1 | lw&2 | uint64(inv[lw>>2&7])<<2
		}
		mask := lw >> 8 & 0xff
		var nm uint64
		for o := 0; o < procs; o++ {
			if mask&(1<<uint(o)) != 0 {
				nm |= 1 << uint(inv[o])
			}
		}
		dst[pos] = out | nm<<8
		pos++
		for w := 0; w < lay.words; w++ {
			dst[pos] = remapVal(src[pos], inv, procs)
			pos++
		}
	}
}

// canonicalize returns the lexicographically least permuted image of
// key and the permutation that achieves it (canonical slot i holds the
// original cache perm[i]). The returned slice aliases canonizer
// scratch (or key itself when the identity wins) and is valid until
// the next call.
func (c *canonizer) canonicalize(key []uint64) ([]uint64, []int) {
	best := key
	bestPerm := c.perms[0]
	for p := 1; p < len(c.perms); p++ {
		permuteKey(key, c.buf, c.perms[p], c.invs[p], c.lay)
		if lessKey(c.buf, best) {
			c.buf, c.best = c.best, c.buf
			best = c.best
			bestPerm = c.perms[p]
		}
	}
	return best, bestPerm
}

// remapAction rewrites a canonical-frame action into the frame where
// canonical slot i is actual processor perm[i]. The value is recomputed
// from the new processor index exactly as actions() constructs it, so
// the remapped action is the one the permuted run would enumerate.
func remapAction(a Action, perm []int, procs int) Action {
	a.Proc = perm[a.Proc]
	if a.Kind == ActOp {
		switch {
		case a.Op == protocol.OpWriteBlock:
			a.Value = uint64(a.Proc + 1 + procs)
		case a.Value != 0:
			a.Value = uint64(a.Proc + 1)
		}
	}
	return a
}

// decanonicalizeTrace converts a trace whose k-th action lives in the
// canonical frame of the (k-1)-th canonical state into an executable
// trace over actual machine states, by replaying it and tracking the
// canonicalizing permutation at every step. By equivariance the
// replayed run stays in the same orbits, so the final state violates
// the same invariants; the violations recomputed on the actual run are
// returned so rendered messages name the actual processor indices.
func decanonicalizeTrace(o Options, trace []Action) ([]Action, []string) {
	m := newMachine(o)
	out := make([]Action, 0, len(trace))
	perm := m.canon.perms[0] // the root state is symmetric: identity frame
	var viols []string
	for k, a := range trace {
		aa := remapAction(a, perm, o.Procs)
		out = append(out, aa)
		viols = m.step(aa)
		if k < len(trace)-1 {
			_, perm = m.canon.canonicalize(m.encodeKey())
		}
	}
	return out, viols
}
