package mcheck

import (
	"fmt"
	"strings"

	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/cache"
	"cachesync/internal/coherence"
	"cachesync/internal/protocol"
	"cachesync/internal/report"
	"cachesync/internal/sim"
)

// RenderCounterexample re-executes a counterexample trace on a fresh
// machine, collects the bus transactions of every step, and renders
// the failure in the style of the paper's figures: the numbered
// operation sequence, the bus activity as a sequence diagram, and the
// invariants the final state violates.
func RenderCounterexample(opts Options, cex *Counterexample) string {
	o := opts.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample for %s (%d procs, %d blocks, %d steps):\n",
		o.Protocol.Name(), o.Procs, o.Blocks, len(cex.Trace))

	m := newMachine(o)
	var all []*bus.Transaction
	for i, a := range cex.Trace {
		var note string
		func() {
			defer func() {
				if r := recover(); r != nil {
					note = fmt.Sprintf("panic: %v", r)
				}
			}()
			sr, err := m.apply(a)
			switch {
			case err != nil:
				note = err.Error()
			case sr.denied:
				note = "denied (busy wait)"
			case sr.didRead:
				note = fmt.Sprintf("returns %d", sr.value)
			}
			m.commitShadow(a, sr)
		}()
		fmt.Fprintf(&b, "  %2d. %-22s", i+1, a)
		if len(m.txns) > 0 {
			cmds := make([]string, len(m.txns))
			for j, t := range m.txns {
				cmds[j] = t.Cmd.String()
			}
			fmt.Fprintf(&b, " bus: %s", strings.Join(cmds, ", "))
		} else {
			b.WriteString(" (no bus access)")
		}
		if note != "" {
			fmt.Fprintf(&b, "  — %s", note)
		}
		b.WriteString("\n")
		all = append(all, m.txns...)
	}
	b.WriteString("\n")
	b.WriteString(report.NewSequenceDiagram("bus sequence:", o.Procs, all).Render())
	b.WriteString("\nfinal state:\n")
	for _, c := range m.caches {
		for _, blk := range m.universe {
			if st := c.State(blk); st != protocol.Invalid {
				fmt.Fprintf(&b, "  cache %d b%d: %s %v\n", c.ID(), blk, m.proto.StateName(st), c.Data(blk))
			}
		}
	}
	for _, blk := range m.universe {
		fmt.Fprintf(&b, "  memory  b%d: %v", blk, m.mem.ReadBlock(blk))
		if tag := m.mem.GetLockTag(blk); tag.Locked {
			fmt.Fprintf(&b, " [lock tag: owner %d, waiter %v]", tag.Owner, tag.Waiter)
		}
		b.WriteString("\n")
	}
	b.WriteString("violated:\n")
	for _, v := range cex.Violations {
		fmt.Fprintf(&b, "  - %s\n", v)
	}
	return b.String()
}

// recorder captures every bus transaction of a sim run (an extra
// snooper, never a requester). It clones each transaction: the engine
// pools its records.
type recorder struct{ txns []*bus.Transaction }

func (r *recorder) ID() int                  { return -2 }
func (r *recorder) Snoop(t *bus.Transaction) { r.txns = append(r.txns, t.Clone()) }

// stepGap spaces the counterexample's steps far enough apart in
// simulated time that the sim reproduces the exact interleaving.
const stepGap = 20000

// SimReplay replays a counterexample through a real sim.System — the
// full discrete-event engine, not the checker's executor — by pacing
// each processor's operations with Compute so the global step order is
// preserved. It returns the engine's own bus log as a sequence diagram
// plus the online coherence checker's verdict, confirming the
// violation outside the model checker. Traces containing evictions or
// denied operations are not sim-representable (the engine picks its
// own victims, and a denied processor blocks); those return an error.
func SimReplay(opts Options, cex *Counterexample) (out string, err error) {
	o := opts.withDefaults()

	// Pre-screen on the executor: a trace with denied steps would park
	// a sim processor and stall the remaining operations.
	pre := newMachine(o)
	for _, a := range cex.Trace {
		if a.Kind == ActEvict {
			return "", fmt.Errorf("mcheck: trace contains an eviction; not sim-replayable")
		}
		sr, aerr := pre.apply(a)
		if aerr != nil {
			return "", fmt.Errorf("mcheck: trace not replayable: %v", aerr)
		}
		if sr.denied {
			return "", fmt.Errorf("mcheck: trace contains a denied operation; not sim-replayable")
		}
		pre.commitShadow(a, sr)
	}

	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mcheck: sim replay panicked: %v", r)
		}
	}()

	cfg := sim.Config{
		Procs:     o.Procs,
		Protocol:  o.Protocol,
		Geometry:  addr.MustGeometry(o.Words, o.Words),
		Cache:     cache.Config{Sets: 1, Ways: o.Blocks},
		Timing:    sim.DefaultTiming(),
		MaxCycles: int64(len(cex.Trace)+2) * stepGap * 10,
	}
	s := sim.New(cfg)
	rec := &recorder{}
	s.Bus.Attach(rec)

	perProc := make([][]int, o.Procs) // global step indexes per processor
	for k, a := range cex.Trace {
		perProc[a.Proc] = append(perProc[a.Proc], k)
	}
	geom := cfg.Geometry
	trace := cex.Trace
	ws := make([]func(*sim.Proc), o.Procs)
	for pid := 0; pid < o.Procs; pid++ {
		steps := perProc[pid]
		ws[pid] = func(p *sim.Proc) {
			for _, k := range steps {
				a := trace[k]
				if w := int64(k)*stepGap - p.Now(); w > 0 {
					p.Compute(w)
				}
				at := geom.Base(addr.Block(a.Block)) + addr.Addr(a.Word)
				switch a.Op {
				case protocol.OpRead, protocol.OpReadEx:
					p.Read(at)
				case protocol.OpWrite:
					p.Write(at, a.Value)
				case protocol.OpLock:
					p.LockRead(at)
				case protocol.OpUnlock:
					p.UnlockWrite(at, a.Value)
				case protocol.OpWriteBlock:
					vals := make([]uint64, geom.BlockWords)
					for i := range vals {
						vals[i] = a.Value
					}
					p.WriteBlock(geom.Base(addr.Block(a.Block)), vals)
				}
			}
		}
	}
	if rerr := s.Run(ws); rerr != nil {
		return "", fmt.Errorf("mcheck: sim replay: %w", rerr)
	}

	var b strings.Builder
	b.WriteString(report.NewSequenceDiagram(
		fmt.Sprintf("sim replay of the counterexample (%s):", o.Protocol.Name()), o.Procs, rec.txns).Render())
	viols := coherence.Check(s)
	if len(viols) == 0 {
		b.WriteString("\nsim replay: final state COHERENT (violation not reproduced by the engine)\n")
	} else {
		b.WriteString("\nsim replay confirms the violation in the real engine:\n")
		for _, v := range viols {
			fmt.Fprintf(&b, "  - %s\n", v)
		}
	}
	return b.String(), nil
}
