package mcheck

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// crashPeer wraps one in-process ShardSession and simulates its
// replica dying at a chosen Absorb: the session object is thrown away
// and a fresh one is resumed from the checkpoint directory, exactly
// what a coordinator re-dispatching to another replica does. mode
// "before" kills the replica before the absorb applied (the retry is
// a first delivery to the restored session); "after" kills it once the
// absorb applied but before the reply arrived (the retry must hit the
// idempotent-replay path).
type crashPeer struct {
	t       *testing.T
	o       Options
	self    int
	total   int
	dir     string
	sess    *ShardSession
	absorbs int
	crashAt int
	mode    string
}

func (p *crashPeer) swap(wantSeq int64) {
	s, err := NewShardSession(p.o, p.self, p.total)
	if err != nil {
		p.t.Fatal(err)
	}
	if err := s.SetCheckpointDir(p.dir, true); err != nil {
		p.t.Fatal(err)
	}
	reply, err := s.Open()
	if err != nil {
		p.t.Fatalf("resume open: %v", err)
	}
	if !reply.Resumed {
		p.t.Fatalf("session %d did not resume from %s", p.self, p.dir)
	}
	if reply.Seq != wantSeq {
		p.t.Fatalf("session %d resumed at seq %d, want %d", p.self, reply.Seq, wantSeq)
	}
	p.sess = s
}

func (p *crashPeer) Open() (*ShardOpenReply, error) {
	s, err := NewShardSession(p.o, p.self, p.total)
	if err != nil {
		return nil, err
	}
	if err := s.SetCheckpointDir(p.dir, false); err != nil {
		return nil, err
	}
	p.sess = s
	return s.Open()
}

func (p *crashPeer) Expand() (*ShardExpandReply, error) { return p.sess.Expand() }

func (p *crashPeer) Absorb(seq int64, cands []WireCand) (*ShardAbsorbReply, error) {
	p.absorbs++
	crash := p.absorbs == p.crashAt
	if crash && p.mode == "before" {
		p.swap(seq - 1)
	}
	reply, err := p.sess.Absorb(seq, cands)
	if err != nil || !(crash && p.mode == "after") {
		return reply, err
	}
	p.swap(seq)
	retry, err := p.sess.Absorb(seq, cands)
	if err != nil {
		p.t.Fatalf("idempotent retry of absorb seq %d: %v", seq, err)
	}
	if retry.Added != reply.Added || retry.Seq != reply.Seq {
		p.t.Fatalf("retry of absorb seq %d replied (%d,%d), first delivery said (%d,%d)",
			seq, retry.Added, retry.Seq, reply.Added, reply.Seq)
	}
	return retry, nil
}

func (p *crashPeer) TraceHop(id uint64) (*ShardHopReply, error) { return p.sess.TraceHop(id) }
func (p *crashPeer) Close() error                               { return nil }

// TestShardSessionCheckpointResume kills one session shard mid-run —
// both before and after the fatal absorb applied — resumes it from its
// checkpoint, and requires the merged Result to stay byte-identical to
// the single-process run. The mutant case additionally drags the
// counterexample trace rebuild through the resurrected session.
func TestShardSessionCheckpointResume(t *testing.T) {
	cases := []struct {
		name    string
		inject  string
		crashAt int
		mode    string
	}{
		{name: "before-first", crashAt: 1, mode: "before"},
		{name: "before-mid", crashAt: 3, mode: "before"},
		{name: "after-mid", crashAt: 3, mode: "after"},
		// The mutant violates during the depth-2 expansion, so the last
		// absorb is level 1 — crash there and the counterexample trace
		// rebuild walks through the resurrected sessions.
		{name: "mutant-after", inject: "ignore-lock", crashAt: 1, mode: "after"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			mk := func() protocol.Protocol {
				p := protocol.MustNew("bitar")
				if c.inject != "" {
					mp, err := Mutate(p, c.inject)
					if err != nil {
						t.Fatal(err)
					}
					p = mp
				}
				return p
			}
			o := Options{Protocol: mk(), Procs: 3, Blocks: 1, Depth: 5, Workers: 1, Symmetry: true}
			single, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			normalizeTiming(single)
			want, err := json.Marshal(single)
			if err != nil {
				t.Fatal(err)
			}

			const shards = 3
			root := t.TempDir()
			so := o
			so.Protocol = mk()
			peers := make([]ShardPeer, shards)
			for i := range peers {
				peers[i] = &crashPeer{
					t: t, o: so, self: i, total: shards,
					dir:     filepath.Join(root, fmt.Sprintf("sess%d", i)),
					crashAt: c.crashAt, mode: c.mode,
				}
			}
			res, err := RunSharded(so, peers)
			if err != nil {
				t.Fatal(err)
			}
			normalizeTiming(res)
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("result differs after crash+resume\n got %s\nwant %s", got, want)
			}
			for i, p := range peers {
				if cp := p.(*crashPeer); cp.absorbs < cp.crashAt {
					t.Errorf("session %d saw %d absorbs; the crash at %d never happened", i, cp.absorbs, cp.crashAt)
				}
			}
		})
	}
}

// TestShardSessionAbsorbSeq pins the sequence discipline: a replayed
// level is answered from the recorded reply without reapplying, and
// anything out of order is an error, not silent corruption.
func TestShardSessionAbsorbSeq(t *testing.T) {
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 2, Depth: 4, Workers: 1}
	s, err := NewShardSession(o, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(); err != nil {
		t.Fatal(err)
	}
	ex, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Absorb(1, ex.Out[0])
	if err != nil {
		t.Fatal(err)
	}
	replay, err := s.Absorb(1, ex.Out[0])
	if err != nil {
		t.Fatalf("replay of seq 1: %v", err)
	}
	if replay.Added != first.Added || replay.Seq != 1 {
		t.Fatalf("replay replied (%d,%d), first delivery said (%d,1)", replay.Added, replay.Seq, first.Added)
	}
	if states := s.visited[0].n + func() (n int) {
		for _, tb := range s.visited[1:] {
			n += tb.n
		}
		return
	}(); int64(states) != first.Added+1 {
		t.Fatalf("replay reapplied: %d visited states, want %d", states, first.Added+1)
	}
	for _, bad := range []int64{0, 3} {
		if _, err := s.Absorb(bad, nil); err == nil || !strings.Contains(err.Error(), "absorb seq") {
			t.Fatalf("absorb seq %d (session at 1): err = %v, want sequence error", bad, err)
		}
	}
}

// TestShardSessionSnapshotRejectsMismatch: a snapshot written under
// one configuration must not restore into a session with another.
func TestShardSessionSnapshotRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	o := Options{Protocol: protocol.MustNew("bitar"), Procs: 2, Blocks: 2, Depth: 4, Workers: 1}
	s, err := NewShardSession(o, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetCheckpointDir(dir, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(); err != nil {
		t.Fatal(err)
	}

	od := o
	od.Depth = 5
	od.Protocol = protocol.MustNew("bitar")
	s2, err := NewShardSession(od, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.SetCheckpointDir(dir, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Open(); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("resume under different depth: err = %v, want options mismatch", err)
	}

	// Same options, different coordinates: shard 1's session must not
	// swallow shard 0's snapshot.
	oc := o
	oc.Protocol = protocol.MustNew("bitar")
	s3, err := NewShardSession(oc, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.SetCheckpointDir(dir, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Open(); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("resume under different coordinates: err = %v, want mismatch", err)
	}
}
