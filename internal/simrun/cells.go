package simrun

import (
	"context"
	"runtime"
	"sync"
)

// CellResult pairs one sweep cell's outcome with its error, so a
// failed cell does not hide the cells that completed before it.
type CellResult struct {
	Res Result
	Err error
}

// RunCells executes a batch of simulation configs on an in-process
// worker pool and delivers the results in submission order: deliver
// is called exactly once per completed cell, on the caller's
// goroutine, with deliver(i, ...) strictly after deliver(i-1, ...).
// Output is therefore byte-identical to a sequential loop at any
// worker count — each cell builds its own sim.System, so cells share
// nothing but read-only configuration.
//
// workers < 1 means GOMAXPROCS; the pool never exceeds the number of
// cells. The first cell error cancels the remaining cells and is
// returned (cells already finished are still delivered first);
// cancellation of ctx does the same via the per-cell context.
func RunCells(ctx context.Context, cfgs []Config, workers int, deliver func(int, Result)) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i, cfg := range cfgs {
			res, err := Run(ctx, cfg)
			if err != nil {
				return err
			}
			deliver(i, res)
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]CellResult, len(cfgs))
	done := make([]chan struct{}, len(cfgs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var wg sync.WaitGroup
	next := 0
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(cfgs) {
					return
				}
				res, err := Run(cctx, cfgs[i])
				results[i] = CellResult{Res: res, Err: err}
				if err != nil {
					cancel() // first failure aborts the cells behind it
				}
				close(done[i])
			}
		}()
	}

	// Merge on the caller's goroutine, strictly in submission order.
	var firstErr error
	for i := range cfgs {
		<-done[i]
		if results[i].Err != nil {
			firstErr = results[i].Err
			break
		}
		deliver(i, results[i].Res)
	}
	if firstErr != nil {
		cancel() // abort cells still in flight behind the failed one
	}
	wg.Wait()
	return firstErr
}
