package simrun

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// sweepCfgs builds a small protocol×procs sweep with bus logging on,
// so the merged output exercises real report bytes.
func sweepCfgs() []Config {
	var cfgs []Config
	for _, proto := range []string{"bitar", "dragon", "illinois", "writethrough"} {
		for _, procs := range []int{2, 4} {
			cfgs = append(cfgs, Config{
				Protocol: proto, Procs: procs, Ops: 120, LogN: 16,
			}.Normalize())
		}
	}
	return cfgs
}

// merge renders a sweep the way a caller would: one labeled section
// per cell, in delivery order.
func merge(t *testing.T, cfgs []Config, workers int) string {
	t.Helper()
	var b strings.Builder
	err := RunCells(context.Background(), cfgs, workers, func(i int, r Result) {
		fmt.Fprintf(&b, "=== cell %d %s p%d ===\n%s", i, cfgs[i].Protocol, cfgs[i].Procs, r.Output)
	})
	if err != nil {
		t.Fatalf("RunCells(workers=%d): %v", workers, err)
	}
	return b.String()
}

// TestRunCellsWorkerCountInvariant is the executor's core contract:
// the merged sweep output is byte-identical at any worker count.
func TestRunCellsWorkerCountInvariant(t *testing.T) {
	cfgs := sweepCfgs()
	want := merge(t, cfgs, 1)
	for _, workers := range []int{0, 2, 8} {
		if got := merge(t, cfgs, workers); got != want {
			t.Errorf("workers=%d: merged output differs from sequential run", workers)
		}
	}
}

// TestRunCellsDeliveryOrder pins strict submission-order delivery
// even when later cells finish first (smaller cells behind a big one).
func TestRunCellsDeliveryOrder(t *testing.T) {
	cfgs := []Config{
		Config{Protocol: "bitar", Ops: 2000}.Normalize(), // slowest first
		Config{Protocol: "bitar", Ops: 10}.Normalize(),
		Config{Protocol: "bitar", Ops: 10}.Normalize(),
		Config{Protocol: "bitar", Ops: 10}.Normalize(),
	}
	var order []int
	err := RunCells(context.Background(), cfgs, 4, func(i int, r Result) {
		order = append(order, i)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("delivery order %v, want submission order", order)
		}
	}
}

// TestRunCellsErrorPropagation: an invalid cell fails the batch, the
// cells before it are still delivered, and the cells after it are
// not.
func TestRunCellsErrorPropagation(t *testing.T) {
	cfgs := []Config{
		Config{Protocol: "bitar", Ops: 10}.Normalize(),
		Config{Protocol: "no-such-protocol"}.Normalize(),
		Config{Protocol: "bitar", Ops: 10}.Normalize(),
	}
	var delivered []int
	err := RunCells(context.Background(), cfgs, 2, func(i int, r Result) {
		delivered = append(delivered, i)
	})
	if err == nil {
		t.Fatal("want error from the invalid cell")
	}
	for _, i := range delivered {
		if i >= 1 {
			t.Errorf("cell %d delivered after the failing cell", i)
		}
	}
}

// cellsMallocs runs one RunCells batch and returns total heap
// allocations across all its workers.
func cellsMallocs(t *testing.T, cfgs []Config, workers int) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := RunCells(context.Background(), cfgs, workers, func(int, Result) {}); err != nil {
		t.Fatalf("RunCells(workers=%d): %v", workers, err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestRunCellsParallelMachineryOverhead bounds the allocation cost of
// the worker pool itself: fanning a sweep over 4 workers must cost at
// most a few hundred extra allocations over the sequential path —
// goroutines, channels, and result slots, not per-operation garbage.
func TestRunCellsParallelMachineryOverhead(t *testing.T) {
	cfgs := sweepCfgs()
	seq := cellsMallocs(t, cfgs, 1)
	par := cellsMallocs(t, cfgs, 4)
	// The cells themselves dominate both counts; the budget below is
	// ~50 allocs per cell of pool machinery plus slack for runtime
	// bookkeeping on the extra goroutines.
	budget := seq + 200 + 50*uint64(len(cfgs))
	if par > budget {
		t.Errorf("parallel run allocated %d times, sequential %d: machinery overhead above budget %d",
			par, seq, budget)
	}
}

// TestRunCellsCancel: context cancellation aborts the batch.
func TestRunCellsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{Config{Protocol: "bitar", Ops: 5000}.Normalize()}
	err := RunCells(ctx, cfgs, 2, func(int, Result) {})
	if err == nil {
		t.Fatal("want error from a canceled context")
	}
}
