// Package simrun is the shared "one configured simulation" layer:
// cmd/cachesim and the cachesyncd daemon both build a sim.System from
// the same Config, run the same workloads, apply the same online
// coherence checking, and render the same report — so a daemon
// response is byte-identical to what the CLI prints for the same
// configuration.
package simrun

import (
	"context"
	"fmt"
	"os"
	"strings"

	"cachesync"
	"cachesync/internal/addr"
	"cachesync/internal/aquarius"
	"cachesync/internal/cache"
	"cachesync/internal/coherence"
	"cachesync/internal/mcheck"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
	"cachesync/internal/trace"
	"cachesync/internal/workload"

	"cachesync/internal/protocol"
)

// Config captures one simulation's parameters. The JSON form is the
// daemon's /v1/simulate request body; zero values mean the CLI's
// defaults (see Normalize), so a minimal request like
// {"protocol":"bitar"} is complete.
type Config struct {
	Protocol string `json:"protocol"`
	// Inject names a seeded protocol bug (mcheck.MutantNames); with
	// Check on, the run is expected to fail.
	Inject     string `json:"inject,omitempty"`
	Procs      int    `json:"procs,omitempty"`
	Ways       int    `json:"ways,omitempty"`
	BlockWords int    `json:"block,omitempty"`
	UnitWords  int    `json:"unit,omitempty"`
	UnitMode   bool   `json:"unitmode,omitempty"`
	Buses      int    `json:"buses,omitempty"`
	// Tiers selects the machine: 1 (default) is the classic one-bus
	// system; 2 is the routed two-tier Aquarius machine (sync bus +
	// crossbar over interleaved banks).
	Tiers int `json:"tiers,omitempty"`
	// RemoteCycles, with Tiers 2, places the lower tier a network hop
	// away: one-way latency in cycles (the disaggregated configuration).
	RemoteCycles int    `json:"remote,omitempty"`
	Workload     string `json:"workload,omitempty"`
	Ops          int    `json:"ops,omitempty"`
	Iters        int    `json:"iters,omitempty"`
	Hold         int64  `json:"hold,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
	TraceFile    string `json:"trace,omitempty"`
	Scheme       string `json:"scheme,omitempty"`
	LogN         int    `json:"log,omitempty"`
	// NoCheck disables the online coherence checker (the CLI's -check
	// flag, inverted so the JSON zero value keeps checking on).
	NoCheck bool `json:"nocheck,omitempty"`
	// NoTables keeps every protocol decision on the method path
	// instead of the compiled transition tables — the oracle side of
	// the table-vs-method differential (internal/ptest).
	NoTables bool `json:"notables,omitempty"`
}

// Normalize fills defaulted fields in place and returns the config,
// mirroring cmd/cachesim's flag defaults.
func (c Config) Normalize() Config {
	if c.Protocol == "" {
		c.Protocol = "bitar"
	}
	if c.Procs == 0 {
		c.Procs = 4
	}
	if c.Ways == 0 {
		c.Ways = 64
	}
	if c.BlockWords == 0 {
		c.BlockWords = 4
	}
	if c.Buses == 0 {
		c.Buses = 1
	}
	if c.Tiers == 0 {
		c.Tiers = 1
	}
	if c.Workload == "" {
		c.Workload = "mixed"
	}
	if c.Ops == 0 {
		c.Ops = 500
	}
	if c.Iters == 0 {
		c.Iters = 25
	}
	if c.Hold == 0 {
		c.Hold = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Hash summarizes every parameter the output depends on — the runner
// ConfigHash for caching and the daemon's single-flight key. Callers
// should hash the normalized config so equivalent requests collide.
func (c Config) Hash() string {
	return fmt.Sprintf("%s inject=%s p=%d w=%d b=%d u=%d um=%v buses=%d tiers=%d remote=%d %s ops=%d it=%d hold=%d seed=%d trace=%s scheme=%s log=%d check=%v tables=%v",
		c.Protocol, c.Inject, c.Procs, c.Ways, c.BlockWords, c.UnitWords, c.UnitMode, c.Buses, c.Tiers, c.RemoteCycles,
		c.Workload, c.Ops, c.Iters, c.Hold, c.Seed, c.TraceFile, c.Scheme, c.LogN, !c.NoCheck, !c.NoTables)
}

// Validate rejects configurations the engine would panic on or that a
// network caller must not request, before any work happens.
func (c Config) Validate() error {
	if _, err := protocol.New(c.Protocol); err != nil {
		return err
	}
	if c.Inject != "" {
		p := protocol.MustNew(c.Protocol)
		if _, err := mcheck.Mutate(p, c.Inject); err != nil {
			return err
		}
	}
	if c.Procs < 1 || c.Procs > 64 {
		return fmt.Errorf("simrun: procs %d out of range [1,64]", c.Procs)
	}
	if c.Buses < 1 || c.Buses > 2 {
		return fmt.Errorf("simrun: buses must be 1 or 2, got %d", c.Buses)
	}
	if c.Tiers < 1 || c.Tiers > 2 {
		return fmt.Errorf("simrun: tiers must be 1 or 2, got %d", c.Tiers)
	}
	if c.RemoteCycles < 0 || c.RemoteCycles > 1_000_000 {
		return fmt.Errorf("simrun: remote cycles %d out of range [0,1000000]", c.RemoteCycles)
	}
	if c.RemoteCycles > 0 && c.Tiers != 2 {
		return fmt.Errorf("simrun: remote cycles need tiers=2")
	}
	switch c.Workload {
	case "mixed", "lock", "pc", "queues", "statesave", "lockdata":
	case "trace":
		if c.TraceFile == "" {
			return fmt.Errorf("simrun: workload trace needs a trace file")
		}
	default:
		return fmt.Errorf("simrun: unknown workload %q", c.Workload)
	}
	if c.Ops < 0 || c.Ops > 5_000_000 {
		return fmt.Errorf("simrun: ops %d out of range [0,5000000]", c.Ops)
	}
	if c.Iters < 0 || c.Iters > 1_000_000 {
		return fmt.Errorf("simrun: iters %d out of range", c.Iters)
	}
	return nil
}

// Result is one completed simulation.
type Result struct {
	// Output is the full rendered report — byte-identical to what
	// cmd/cachesim prints for this config.
	Output string
	// Pass is false when the coherence checker found violations.
	Pass bool
	// Cycles is the finishing simulated time.
	Cycles int64
}

// Hooks are optional observation points for a run.
type Hooks struct {
	// BusTxn receives each logged bus-transaction line as it completes
	// (requires Config.LogN > 0; the daemon streams these to job
	// watchers as NDJSON events).
	BusTxn func(line string)
}

// buildSimConfig assembles the synchronization-tier sim.Config for cfg
// (normalized), wrapping the protocol with an injected bug when
// requested — which is why this does not go through the cachesync
// facade: mutants are not registered names.
func buildSimConfig(cfg Config) (sim.Config, error) {
	p, err := protocol.New(cfg.Protocol)
	if err != nil {
		return sim.Config{}, err
	}
	if cfg.Inject != "" {
		if p, err = mcheck.Mutate(p, cfg.Inject); err != nil {
			return sim.Config{}, err
		}
	}
	bw := cfg.BlockWords
	if bw == 0 {
		bw = 4
	}
	if p.Features().OneWordBlocks {
		bw = 1
	}
	unit := cfg.UnitWords
	if unit == 0 || unit > bw {
		unit = bw
	}
	g, err := addr.NewGeometry(bw, unit)
	if err != nil {
		return sim.Config{}, err
	}
	if cfg.Buses < 1 || cfg.Buses > 2 {
		return sim.Config{}, fmt.Errorf("simrun: buses must be 1 or 2, got %d", cfg.Buses)
	}
	return sim.Config{
		Procs:    cfg.Procs,
		Protocol: p,
		Geometry: g,
		Cache:    cache.Config{Sets: 1, Ways: cfg.Ways, UnitMode: cfg.UnitMode, NoTables: cfg.NoTables},
		Timing:   sim.DefaultTiming(),
		NumBuses: cfg.Buses,
	}, nil
}

// BuildSystem assembles the one-tier simulator for cfg (normalized).
func BuildSystem(cfg Config) (*sim.System, error) {
	sc, err := buildSimConfig(cfg)
	if err != nil {
		return nil, err
	}
	return sim.New(sc), nil
}

// BuildMachine assembles the machine cfg asks for: always the
// synchronization-tier sim.System, plus — with Tiers 2 — the routed
// two-tier Aquarius system wrapped around it.
func BuildMachine(cfg Config) (*sim.System, *aquarius.System, error) {
	sc, err := buildSimConfig(cfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Tiers < 2 {
		return sim.New(sc), nil, nil
	}
	ac := aquarius.DefaultConfig(cfg.Procs)
	ac.Sync = sc
	ac.RemoteCycles = cfg.RemoteCycles
	ac.Routed = true
	aq := aquarius.New(ac)
	return aq.Sync, aq, nil
}

// buildPrograms constructs the direct-execution Program form of the
// generator workloads. Trace replay returns nil: its closures carry
// decoder state that has no resumable form yet, so it stays on the
// blocking shim.
func buildPrograms(cfg Config, l workload.Layout, scheme syncprim.Scheme) []sim.Program {
	switch cfg.Workload {
	case "mixed":
		return workload.Mixed{Ops: cfg.Ops, SharedBlocks: 8, PrivBlocks: 24,
			SharedFrac: 0.3, WriteFrac: 0.35, Seed: cfg.Seed}.Programs(l, cfg.Procs)
	case "lock":
		return workload.LockContention{Locks: 1, Iters: cfg.Iters, HoldCycles: cfg.Hold,
			ThinkCycles: 10, CSWrites: 2, Scheme: scheme, Seed: cfg.Seed}.Programs(l, cfg.Procs)
	case "pc":
		return workload.ProducerConsumer{Items: cfg.Iters, WritesPerItem: 4, Scheme: scheme}.Programs(l, cfg.Procs)
	case "queues":
		return workload.ServiceQueues{Requests: cfg.Iters, Scheme: scheme, Seed: cfg.Seed}.Programs(l, cfg.Procs)
	case "statesave":
		return workload.StateSave{Switches: cfg.Iters, StateBlocks: 4}.Programs(l, cfg.Procs)
	case "lockdata":
		return workload.LockedData{Locks: 1, Iters: cfg.Iters, Records: 6, Instrs: 4,
			Think: cfg.Hold, Scheme: scheme, Seed: cfg.Seed}.Programs(l, cfg.Procs)
	default:
		return nil
	}
}

// buildWorkload constructs the per-processor workload closures.
func buildWorkload(cfg Config, l workload.Layout, scheme syncprim.Scheme) ([]func(*sim.Proc), error) {
	switch cfg.Workload {
	case "mixed":
		return workload.Mixed{Ops: cfg.Ops, SharedBlocks: 8, PrivBlocks: 24,
			SharedFrac: 0.3, WriteFrac: 0.35, Seed: cfg.Seed}.Build(l, cfg.Procs), nil
	case "lock":
		return workload.LockContention{Locks: 1, Iters: cfg.Iters, HoldCycles: cfg.Hold,
			ThinkCycles: 10, CSWrites: 2, Scheme: scheme, Seed: cfg.Seed}.Build(l, cfg.Procs), nil
	case "pc":
		return workload.ProducerConsumer{Items: cfg.Iters, WritesPerItem: 4, Scheme: scheme}.Build(l, cfg.Procs), nil
	case "queues":
		return workload.ServiceQueues{Requests: cfg.Iters, Scheme: scheme, Seed: cfg.Seed}.Build(l, cfg.Procs), nil
	case "statesave":
		return workload.StateSave{Switches: cfg.Iters, StateBlocks: 4}.Build(l, cfg.Procs), nil
	case "lockdata":
		return workload.LockedData{Locks: 1, Iters: cfg.Iters, Records: 6, Instrs: 4,
			Think: cfg.Hold, Scheme: scheme, Seed: cfg.Seed}.Build(l, cfg.Procs), nil
	case "trace":
		f, err := os.Open(cfg.TraceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.Decode(f)
		if err != nil {
			return nil, err
		}
		return tr.Workloads(cfg.Procs), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", cfg.Workload)
	}
}

// Run executes one configured simulation and renders its report.
func Run(ctx context.Context, cfg Config) (Result, error) {
	return RunWithHooks(ctx, cfg, Hooks{})
}

// RunWithHooks is Run with observation points. Cancellation of ctx
// aborts the simulation mid-run (sim.System.RunContext) and returns
// the context's error.
func RunWithHooks(ctx context.Context, cfg Config, h Hooks) (Result, error) {
	sys, aq, err := BuildMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	scheme, serr := cachesync.BestScheme(cfg.Protocol)
	if serr == nil && cfg.Scheme != "" {
		for s := syncprim.CacheLock; s <= syncprim.TASMemory; s++ {
			if s.String() == cfg.Scheme {
				scheme = s
			}
		}
	}
	l := workload.Layout{G: sys.Geometry()}
	// Generator workloads run on the direct (goroutine-free) engine;
	// trace replay falls back to the blocking shim. Both paths produce
	// byte-identical runs (workload.TestDirectMatchesShim).
	progs := buildPrograms(cfg, l, scheme)
	var ws []func(*sim.Proc)
	if progs == nil {
		if ws, err = buildWorkload(cfg, l, scheme); err != nil {
			return Result{}, err
		}
	}

	var evlog *sim.EventLog
	if cfg.LogN > 0 {
		evlog = sys.AttachLog(cfg.LogN)
	}
	check := !cfg.NoCheck
	var violations []string
	seen := map[string]bool{}
	streamed := 0
	if check || (evlog != nil && h.BusTxn != nil) {
		sys.OnTxn = func() {
			if check {
				for _, v := range coherence.Check(sys) {
					if !seen[v] {
						seen[v] = true
						violations = append(violations, fmt.Sprintf("cycle %d: %s", sys.Clock(), v))
					}
				}
			}
			if evlog != nil && h.BusTxn != nil {
				for ; streamed < len(evlog.Entries); streamed++ {
					h.BusTxn(evlog.Entries[streamed].String())
				}
			}
		}
	}
	if progs != nil {
		err = sys.RunProgramsContext(ctx, progs)
	} else {
		err = sys.RunContext(ctx, ws)
	}
	if err != nil {
		return Result{}, err
	}
	if check {
		// The checker runs between transactions, so transient in-flight
		// states are quiesced; any report is a real incoherence.
		violations = appendFinalCheck(sys, violations)
	}

	var b strings.Builder
	if evlog != nil {
		_ = evlog.Dump(&b)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "protocol=%s procs=%d workload=%s scheme=%v\n", sys.Protocol().Name(), cfg.Procs, cfg.Workload, scheme)
	if aq != nil {
		fmt.Fprintf(&b, "tiers=2 remote=%d\n", cfg.RemoteCycles)
	}
	fmt.Fprintf(&b, "finished at cycle %d\n\n", sys.Clock())
	hist := &sys.LockLatency
	if hist.Count() > 0 {
		fmt.Fprintf(&b, "hardware lock acquisitions: %d (mean %.1f cycles, max %d)\n\n", hist.Count(), hist.Mean(), hist.Max())
	}
	if aq != nil {
		if syncRefs, total := aq.BroadcastFraction(); total > 0 {
			fmt.Fprintf(&b, "broadcast fraction: %d/%d references (%.1f%%) needed the synchronization bus\n\n",
				syncRefs, total, 100*float64(syncRefs)/float64(total))
		}
	}
	if aq != nil {
		b.WriteString(cachesync.RenderStats(aq.Stats().Snapshot()))
	} else {
		b.WriteString(cachesync.RenderStats(sys.Stats().Snapshot()))
	}
	b.WriteString("\n")
	res := Result{Cycles: sys.Clock()}
	if len(violations) > 0 {
		fmt.Fprintf(&b, "coherence checker: %d violation(s):\n", len(violations))
		for _, v := range violations {
			b.WriteString("  " + v + "\n")
		}
		res.Output = b.String()
		return res, nil
	}
	if check {
		b.WriteString("coherence checker: clean (every bus transaction and the final state)\n")
	}
	res.Output = b.String()
	res.Pass = true
	return res, nil
}

// appendFinalCheck re-validates the quiesced final state (a run whose
// last operation is a pure cache hit fires no OnTxn afterwards).
func appendFinalCheck(sys *sim.System, violations []string) []string {
	for _, v := range coherence.Check(sys) {
		entry := fmt.Sprintf("final state: %s", v)
		dup := false
		for _, have := range violations {
			if have == entry {
				dup = true
				break
			}
		}
		if !dup {
			violations = append(violations, entry)
		}
	}
	return violations
}
