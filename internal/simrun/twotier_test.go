package simrun

import (
	"context"
	"strings"
	"testing"
)

// TestTwoTierRun: tiers=2 runs existing workloads end-to-end on the
// routed Aquarius machine and reports the broadcast fraction.
func TestTwoTierRun(t *testing.T) {
	for _, wl := range []string{"mixed", "lock", "lockdata"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Tiers: 2, Workload: wl, Ops: 300, Iters: 10}.Normalize()
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Pass {
				t.Fatalf("two-tier %s run failed:\n%s", wl, res.Output)
			}
			if !strings.Contains(res.Output, "broadcast fraction:") {
				t.Errorf("report missing broadcast fraction:\n%s", res.Output)
			}
			if !strings.Contains(res.Output, "tiers=2") {
				t.Errorf("report missing tier header:\n%s", res.Output)
			}
		})
	}
}

// TestTwoTierDeterministicAcrossWorkers is the sweep-reproducibility
// gate for the new machine: a batch of two-tier cells (including
// remote configurations) must render byte-identical output at any
// worker count.
func TestTwoTierDeterministicAcrossWorkers(t *testing.T) {
	var cfgs []Config
	for _, remote := range []int{0, 32, 128} {
		for _, wl := range []string{"mixed", "lockdata"} {
			cfgs = append(cfgs, Config{Tiers: 2, RemoteCycles: remote,
				Workload: wl, Ops: 200, Iters: 8}.Normalize())
		}
	}
	collect := func(workers int) []string {
		out := make([]string, len(cfgs))
		if err := RunCells(context.Background(), cfgs, workers, func(i int, r Result) {
			out[i] = r.Output
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := collect(1)
	par := collect(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("cell %d differs between 1 and 4 workers:\n--- seq ---\n%s\n--- par ---\n%s", i, seq[i], par[i])
		}
	}
}

// TestValidateTiers pins the tier validation rules.
func TestValidateTiers(t *testing.T) {
	if err := (Config{Tiers: 3}).Normalize().Validate(); err == nil {
		t.Error("tiers=3 accepted")
	}
	if err := (Config{RemoteCycles: 10}).Normalize().Validate(); err == nil {
		t.Error("remote cycles without tiers=2 accepted")
	}
	if err := (Config{Tiers: 2, RemoteCycles: 10}).Normalize().Validate(); err != nil {
		t.Errorf("valid two-tier config rejected: %v", err)
	}
	if err := (Config{Workload: "lockdata"}).Normalize().Validate(); err != nil {
		t.Errorf("lockdata on one tier rejected: %v", err)
	}
}
