// Package schedqueue implements Section B.2's software queuing: when
// the hardware does not itself implement queuing, sleep wait must be
// built in software, and "a queue-manager procedure will busy wait
// for access to software-implemented queues, and when it gains
// access to a queue, will insert or delete a process, as
// appropriate".
//
// A Queue is a bounded ring of process identifiers living in
// simulated shared memory: a lock block (the hard atom), a descriptor
// block (count/head/tail — "if semaphores are used, they will be part
// of the queue descriptor"), and slot blocks. Queue operations
// therefore cost the several block fetches per queue the paper
// estimates ("say three or four"), which is why efficient busy-wait
// locking matters most here: the global ready queue is exactly the
// high-contention atom Section E.4 worries about.
//
// Scheduler builds sleep wait on top: worker processors pop a process
// from the shared ready queue, run it for a quantum, save its state
// with whole-block writes (Feature 9's motivating case), and requeue
// it.
package schedqueue

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
)

// Descriptor word offsets within the descriptor block.
const (
	descCount = 0
	descHead  = 1
	descTail  = 2
)

// Queue is a busy-wait-protected, bounded process queue in simulated
// shared memory.
type Queue struct {
	g      addr.Geometry
	lock   addr.Addr
	desc   addr.Addr
	slot0  addr.Addr
	cap    int
	scheme syncprim.Scheme
}

// New lays out a queue: lockBlock holds the lock (a whole block, per
// the paper's block-per-atom rule), descBlock the descriptor, and the
// slots start in the block after descBlock. capSlots must be positive.
func New(g addr.Geometry, lockBlock, descBlock addr.Block, capSlots int, scheme syncprim.Scheme) *Queue {
	if capSlots <= 0 {
		panic(fmt.Sprintf("schedqueue: capacity %d", capSlots))
	}
	if lockBlock == descBlock {
		panic("schedqueue: lock and descriptor must live on different blocks")
	}
	if g.BlockWords < 3 {
		panic("schedqueue: descriptor needs a block of at least 3 words")
	}
	return &Queue{
		g:      g,
		lock:   g.Base(lockBlock),
		desc:   g.Base(descBlock),
		slot0:  g.Base(descBlock + 1),
		cap:    capSlots,
		scheme: scheme,
	}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return q.cap }

// slotAddr returns the address of ring slot i.
func (q *Queue) slotAddr(i uint64) addr.Addr {
	return q.slot0 + addr.Addr(i%uint64(q.cap))
}

// Enqueue appends v; it reports false when the queue is full. The
// queue lock is held for the duration (the insert of Section B.2).
func (q *Queue) Enqueue(p *sim.Proc, v uint64) bool {
	syncprim.Acquire(p, q.scheme, q.lock)
	defer syncprim.Release(p, q.scheme, q.lock)
	n := p.Read(q.desc + descCount)
	if n >= uint64(q.cap) {
		p.Counts.Inc("queue.full")
		return false
	}
	tail := p.Read(q.desc + descTail)
	p.Write(q.slotAddr(tail), v)
	p.Write(q.desc+descTail, (tail+1)%uint64(q.cap))
	p.Write(q.desc+descCount, n+1)
	p.Counts.Inc("queue.enqueue")
	return true
}

// Dequeue removes the oldest entry; ok is false when the queue is
// empty.
func (q *Queue) Dequeue(p *sim.Proc) (v uint64, ok bool) {
	syncprim.Acquire(p, q.scheme, q.lock)
	defer syncprim.Release(p, q.scheme, q.lock)
	n := p.Read(q.desc + descCount)
	if n == 0 {
		p.Counts.Inc("queue.empty")
		return 0, false
	}
	head := p.Read(q.desc + descHead)
	v = p.Read(q.slotAddr(head))
	p.Write(q.desc+descHead, (head+1)%uint64(q.cap))
	p.Write(q.desc+descCount, n-1)
	p.Counts.Inc("queue.dequeue")
	return v, true
}

// Len returns the current queue length (a racy snapshot; it takes the
// lock to read consistently).
func (q *Queue) Len(p *sim.Proc) uint64 {
	syncprim.Acquire(p, q.scheme, q.lock)
	defer syncprim.Release(p, q.scheme, q.lock)
	return p.Read(q.desc + descCount)
}

// Scheduler is software sleep wait (Section B.2): lightweight
// processes move between a shared ready queue and the worker
// processors that run them.
type Scheduler struct {
	Ready *Queue

	g           addr.Geometry
	stateBase   addr.Block // process state blocks start here
	stateBlocks int        // blocks of state per process
	quantum     int64
}

// SchedulerConfig sizes a Scheduler.
type SchedulerConfig struct {
	Geometry    addr.Geometry
	LockBlock   addr.Block // ready-queue lock
	DescBlock   addr.Block // ready-queue descriptor (slots follow)
	Capacity    int        // ready-queue capacity (>= number of processes)
	StateBase   addr.Block // first process-state block
	StateBlocks int        // state blocks per process (default 2)
	Quantum     int64      // cycles a process runs per dispatch (default 40)
	Scheme      syncprim.Scheme
}

// NewScheduler builds the scheduler and its ready queue.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	if cfg.StateBlocks == 0 {
		cfg.StateBlocks = 2
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 40
	}
	return &Scheduler{
		Ready:       New(cfg.Geometry, cfg.LockBlock, cfg.DescBlock, cfg.Capacity, cfg.Scheme),
		g:           cfg.Geometry,
		stateBase:   cfg.StateBase,
		stateBlocks: cfg.StateBlocks,
		quantum:     cfg.Quantum,
	}
}

// Seed enqueues process identifiers 1..n (run once, from one worker,
// before scheduling starts).
func (s *Scheduler) Seed(p *sim.Proc, n int) {
	for pid := 1; pid <= n; pid++ {
		if !s.Ready.Enqueue(p, uint64(pid)) {
			panic("schedqueue: ready queue too small for seed")
		}
	}
}

// stateBlock returns process pid's i-th state block.
func (s *Scheduler) stateBlock(pid uint64, i int) addr.Block {
	return s.stateBase + addr.Block(int(pid-1)*s.stateBlocks+i)
}

// Dispatch pops one process, restores its state, runs it for a
// quantum, saves its state with whole-block writes (Feature 9), and
// requeues it. It reports whether a process was available.
func (s *Scheduler) Dispatch(p *sim.Proc) bool {
	pid, ok := s.Ready.Dequeue(p)
	if !ok {
		return false
	}
	// Restore: read the process state.
	for i := 0; i < s.stateBlocks; i++ {
		p.Read(s.g.Base(s.stateBlock(pid, i)))
	}
	// Run the process.
	p.Compute(s.quantum)
	// Save state at the switch: whole blocks are overwritten, the
	// write-without-fetch case the paper highlights for Aquarius.
	vals := make([]uint64, s.g.BlockWords)
	for i := 0; i < s.stateBlocks; i++ {
		for k := range vals {
			vals[k] = pid<<16 | uint64(i)
		}
		p.WriteBlock(s.g.Base(s.stateBlock(pid, i)), vals)
	}
	if !s.Ready.Enqueue(p, pid) {
		panic("schedqueue: requeue failed (capacity must cover all processes)")
	}
	p.Counts.Inc("sched.dispatch")
	return true
}

// Worker returns a workload that dispatches processes `dispatches`
// times, idling briefly when the ready queue is momentarily empty.
func (s *Scheduler) Worker(dispatches int) func(*sim.Proc) {
	return func(p *sim.Proc) {
		done := 0
		for done < dispatches {
			if s.Dispatch(p) {
				done++
			} else {
				p.Compute(10)
			}
		}
	}
}
