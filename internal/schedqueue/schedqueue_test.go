package schedqueue

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
)

func mk(t *testing.T, name string, procs int) *sim.System {
	t.Helper()
	cfg := sim.DefaultConfig(protocol.MustNew(name))
	cfg.Procs = procs
	return sim.New(cfg)
}

func TestNewValidation(t *testing.T) {
	g := addr.MustGeometry(4, 4)
	for _, f := range []func(){
		func() { New(g, 0, 0, 4, syncprim.CacheLock) },                  // same block
		func() { New(g, 0, 1, 0, syncprim.CacheLock) },                  // zero capacity
		func() { New(addr.MustGeometry(2, 2), 0, 1, 4, syncprim.TTAS) }, // descriptor too small
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFIFOOrder(t *testing.T) {
	s := mk(t, "bitar", 1)
	q := New(s.Geometry(), 0, 1, 8, syncprim.CacheLock)
	if err := s.Run([]func(*sim.Proc){func(p *sim.Proc) {
		for v := uint64(10); v < 15; v++ {
			if !q.Enqueue(p, v) {
				t.Errorf("enqueue %d failed", v)
			}
		}
		if n := q.Len(p); n != 5 {
			t.Errorf("Len = %d, want 5", n)
		}
		for v := uint64(10); v < 15; v++ {
			got, ok := q.Dequeue(p)
			if !ok || got != v {
				t.Errorf("dequeue = %d,%v, want %d", got, ok, v)
			}
		}
		if _, ok := q.Dequeue(p); ok {
			t.Error("dequeue on empty queue succeeded")
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedCapacity(t *testing.T) {
	s := mk(t, "bitar", 1)
	q := New(s.Geometry(), 0, 1, 3, syncprim.CacheLock)
	if err := s.Run([]func(*sim.Proc){func(p *sim.Proc) {
		for v := uint64(0); v < 3; v++ {
			if !q.Enqueue(p, v) {
				t.Errorf("enqueue %d failed", v)
			}
		}
		if q.Enqueue(p, 99) {
			t.Error("enqueue beyond capacity succeeded")
		}
		q.Dequeue(p)
		if !q.Enqueue(p, 99) {
			t.Error("enqueue after dequeue failed (ring wrap)")
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestRingWrapAcrossBlocks(t *testing.T) {
	// Capacity larger than a block: slots span blocks; wrap many times.
	s := mk(t, "bitar", 1)
	q := New(s.Geometry(), 0, 1, 10, syncprim.CacheLock)
	if err := s.Run([]func(*sim.Proc){func(p *sim.Proc) {
		next := uint64(0)
		expect := uint64(0)
		for round := 0; round < 7; round++ {
			for i := 0; i < 6; i++ {
				q.Enqueue(p, next)
				next++
			}
			for i := 0; i < 6; i++ {
				got, ok := q.Dequeue(p)
				if !ok || got != expect {
					t.Fatalf("round %d: dequeue = %d,%v want %d", round, got, ok, expect)
				}
				expect++
			}
		}
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentProducersConsumers checks conservation: every value
// enqueued is dequeued exactly once, across schemes and protocols.
func TestConcurrentProducersConsumers(t *testing.T) {
	cases := []struct {
		proto  string
		scheme syncprim.Scheme
	}{
		{"bitar", syncprim.CacheLock},
		{"bitar", syncprim.TTAS},
		{"illinois", syncprim.TTAS},
		{"goodman", syncprim.TTAS},
	}
	for _, c := range cases {
		t.Run(c.proto+"/"+c.scheme.String(), func(t *testing.T) {
			const producers, consumers, items = 2, 2, 15
			s := mk(t, c.proto, producers+consumers)
			q := New(s.Geometry(), 0, 1, 64, c.scheme)
			got := make([]map[uint64]int, consumers)
			ws := make([]func(*sim.Proc), producers+consumers)
			for i := 0; i < producers; i++ {
				i := i
				ws[i] = func(p *sim.Proc) {
					for k := 0; k < items; k++ {
						v := uint64(i*1000 + k)
						for !q.Enqueue(p, v) {
							p.Compute(5)
						}
					}
				}
			}
			for i := 0; i < consumers; i++ {
				i := i
				got[i] = make(map[uint64]int)
				ws[producers+i] = func(p *sim.Proc) {
					need := producers * items / consumers
					for len(got[i]) < need {
						if v, ok := q.Dequeue(p); ok {
							got[i][v]++
						} else {
							p.Compute(5)
						}
					}
				}
			}
			if err := s.Run(ws); err != nil {
				t.Fatal(err)
			}
			seen := map[uint64]int{}
			for _, m := range got {
				for v, n := range m {
					seen[v] += n
				}
			}
			if len(seen) != producers*items {
				t.Fatalf("consumed %d distinct values, want %d", len(seen), producers*items)
			}
			for v, n := range seen {
				if n != 1 {
					t.Errorf("value %d consumed %d times", v, n)
				}
			}
		})
	}
}

func TestSchedulerRoundRobin(t *testing.T) {
	const workers, processes, dispatches = 3, 6, 8
	s := mk(t, "bitar", workers)
	g := s.Geometry()
	sched := NewScheduler(SchedulerConfig{
		Geometry:  g,
		LockBlock: 0, DescBlock: 1,
		Capacity:  processes + 2,
		StateBase: 100, StateBlocks: 2,
		Quantum: 25,
		Scheme:  syncprim.CacheLock,
	})
	ws := make([]func(*sim.Proc), workers)
	ws[0] = func(p *sim.Proc) {
		sched.Seed(p, processes)
		sched.Worker(dispatches)(p)
	}
	for i := 1; i < workers; i++ {
		ws[i] = func(p *sim.Proc) {
			p.Compute(50) // let the seed land
			sched.Worker(dispatches)(p)
		}
	}
	if err := s.Run(ws); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range s.Procs {
		total += p.Counts.Get("sched.dispatch")
	}
	if total != workers*dispatches {
		t.Errorf("dispatches = %d, want %d", total, workers*dispatches)
	}
	// All processes must still be queued (conservation).
	queued := s.Mem.ReadWord(g.Base(1)) // descriptor count
	// The count may live dirty in a cache; consult caches first.
	for _, c := range s.Caches {
		if v, ok := c.ReadWord(g.Base(1)); ok && c.Protocol().IsDirty(c.State(1)) {
			queued = v
		}
	}
	if queued != processes {
		t.Errorf("ready queue holds %d processes, want %d", queued, processes)
	}
	// Note: the saves here hit in the cache (the restore just fetched
	// the same blocks), so Feature 9's write-without-fetch does not
	// fire — it is exercised by cold saves in E8/StateSave.
}
