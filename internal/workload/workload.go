// Package workload generates the reference streams the benches run:
// the sharing patterns Section B.1 motivates (producer/consumer
// variable bindings, service-request queues among lightweight Prolog
// processes), busy-wait lock contention, Archibald-Baer-style mixed
// random sharing, private-data runs, and process-switch state saves.
// All generators are deterministic for a given seed.
package workload

import (
	"math/rand"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
)

// Layout carves the word-address space into the regions the
// generators use, keeping locks and data on separate blocks (the
// paper's rule: under write-in, blocks should be devoted to atoms,
// Section D.2).
type Layout struct {
	G addr.Geometry
}

// LockAddr returns the first word of the i-th lock block (each lock
// gets a whole block to itself).
func (l Layout) LockAddr(i int) addr.Addr { return l.G.Base(addr.Block(i)) }

// SharedBlock returns the i-th shared data block, placed after 64
// lock blocks.
func (l Layout) SharedBlock(i int) addr.Block { return addr.Block(64 + i) }

// PrivateBlock returns processor p's i-th private block, placed after
// 4096 shared blocks.
func (l Layout) PrivateBlock(p, i int) addr.Block {
	return addr.Block(64 + 4096 + p*4096 + i)
}

// InstrBlock returns processor p's i-th instruction block, placed
// after the private region (64 processors' worth of private blocks).
func (l Layout) InstrBlock(p, i int) addr.Block {
	return addr.Block(64 + 4096 + 64*4096 + p*64 + i)
}

// ProducerConsumer is the Prolog/dataflow pattern of Section B.1: a
// producer binds a value (writing the atom WritesPerItem times while
// holding its lock) and a consumer reads and acknowledges it.
type ProducerConsumer struct {
	Items         int // values passed producer -> consumer
	WritesPerItem int // writes to the atom per hold (the "n" of Section D.2)
	Scheme        syncprim.Scheme
}

// Build returns one producer (proc 0) and one consumer (proc 1)
// workload; remaining processors idle.
func (w ProducerConsumer) Build(l Layout, procs int) []func(*sim.Proc) {
	lock := l.LockAddr(0)
	atom := l.G.Base(l.SharedBlock(0))
	flag := l.LockAddr(1) // handoff flag, its own block
	ws := make([]func(*sim.Proc), procs)
	ws[0] = func(p *sim.Proc) {
		for i := 1; i <= w.Items; i++ {
			syncprim.Acquire(p, w.Scheme, lock)
			for k := 0; k < w.WritesPerItem; k++ {
				p.WriteClass(atom+addr.Addr(k%l.G.BlockWords), uint64(i), interconnect.Sync)
			}
			syncprim.Release(p, w.Scheme, lock)
			p.WriteClass(flag, uint64(i), interconnect.Sync) // publish
			// Wait for the acknowledgement.
			for p.ReadClass(flag, interconnect.Sync) != 0 {
				p.Compute(4)
			}
		}
	}
	ws[1] = func(p *sim.Proc) {
		for i := 1; i <= w.Items; i++ {
			for p.ReadClass(flag, interconnect.Sync) != uint64(i) {
				p.Compute(4)
			}
			syncprim.Acquire(p, w.Scheme, lock)
			for k := 0; k < w.WritesPerItem; k++ {
				p.ReadClass(atom+addr.Addr(k%l.G.BlockWords), interconnect.Sync)
			}
			syncprim.Release(p, w.Scheme, lock)
			p.WriteClass(flag, 0, interconnect.Sync) // acknowledge
		}
	}
	return ws
}

// LockContention stresses one or more busy-wait locks: every
// processor loops acquire / critical-section / release. It is the
// workload behind the zero-time-locking and no-bus-retry claims
// (Sections E.3, E.4).
type LockContention struct {
	Locks       int
	Iters       int
	HoldCycles  int64 // critical-section length
	ThinkCycles int64 // gap between acquisitions
	CSWrites    int   // writes inside the critical section (to the lock's atom)
	Scheme      syncprim.Scheme
	Seed        int64
}

// Build returns a workload per processor.
func (w LockContention) Build(l Layout, procs int) []func(*sim.Proc) {
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		i := i
		rng := rand.New(rand.NewSource(w.Seed + int64(i)))
		ws[i] = func(p *sim.Proc) {
			for k := 0; k < w.Iters; k++ {
				li := rng.Intn(w.Locks)
				lock := l.LockAddr(li)
				syncprim.Acquire(p, w.Scheme, lock)
				for c := 0; c < w.CSWrites; c++ {
					// Write the atom guarded by the lock: the rest of
					// the lock's block when it has room, otherwise a
					// dedicated data block per lock (one-word blocks).
					var a addr.Addr
					if l.G.BlockWords > 1 {
						a = lock + addr.Addr(1+c%(l.G.BlockWords-1))
					} else {
						a = l.G.Base(l.SharedBlock(512 + li))
					}
					p.WriteClass(a, uint64(k), interconnect.Sync)
				}
				p.Compute(w.HoldCycles)
				syncprim.Release(p, w.Scheme, lock)
				p.Compute(w.ThinkCycles)
			}
		}
	}
	return ws
}

func imax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ServiceQueues is Section B.1's service-request management: each
// processor owns a request queue (a lock plus a descriptor block);
// processors post requests to other processors' queues and drain
// their own. It models the Aquarius pattern of a program interpreter
// sending requests to floating-point or I/O processors.
type ServiceQueues struct {
	Requests int // requests each processor posts
	QueueCap int // slots per queue (within one descriptor block)
	Scheme   syncprim.Scheme
	Seed     int64
}

// Build returns a workload per processor.
func (w ServiceQueues) Build(l Layout, procs int) []func(*sim.Proc) {
	ws := make([]func(*sim.Proc), procs)
	cap := w.QueueCap
	if cap <= 0 || cap > l.G.BlockWords-2 {
		cap = imax(1, l.G.BlockWords-2)
	}
	for i := range ws {
		i := i
		rng := rand.New(rand.NewSource(w.Seed*31 + int64(i)))
		ws[i] = func(p *sim.Proc) {
			posted := 0
			for posted < w.Requests {
				// Post a request to a random other queue.
				target := rng.Intn(procs)
				if procs > 1 {
					for target == i {
						target = rng.Intn(procs)
					}
				}
				lock := l.LockAddr(2 + target)
				desc := l.G.Base(l.SharedBlock(1 + target))
				syncprim.Acquire(p, w.Scheme, lock)
				n := p.ReadClass(desc, interconnect.Sync) // queue length
				if int(n) < cap {
					p.WriteClass(desc+addr.Addr(1+int(n)%cap), uint64(i*1000+posted), interconnect.Sync)
					p.WriteClass(desc, n+1, interconnect.Sync)
				}
				// A full queue drops the request (bounded queue), so
				// no processor can wedge on a finished peer.
				posted++
				syncprim.Release(p, w.Scheme, lock)

				// Drain my own queue.
				myLock := l.LockAddr(2 + i)
				myDesc := l.G.Base(l.SharedBlock(1 + i))
				syncprim.Acquire(p, w.Scheme, myLock)
				if n := p.ReadClass(myDesc, interconnect.Sync); n > 0 {
					p.ReadClass(myDesc+addr.Addr(1+int(n-1)%cap), interconnect.Sync)
					p.WriteClass(myDesc, n-1, interconnect.Sync)
				}
				syncprim.Release(p, w.Scheme, myLock)
				p.Compute(10)
			}
			// Final drain so no queue overflows block others.
			myLock := l.LockAddr(2 + i)
			myDesc := l.G.Base(l.SharedBlock(1 + i))
			for d := 0; d < w.Requests; d++ {
				syncprim.Acquire(p, w.Scheme, myLock)
				if n := p.ReadClass(myDesc, interconnect.Sync); n > 0 {
					p.WriteClass(myDesc, n-1, interconnect.Sync)
				}
				syncprim.Release(p, w.Scheme, myLock)
			}
		}
	}
	return ws
}

// Mixed is the Archibald-Baer-style random reference stream: a
// fraction of references touch shared blocks, the rest private; a
// write fraction around Smith's 35% figure (Section F.3, Feature 3).
type Mixed struct {
	Ops          int
	SharedBlocks int
	PrivBlocks   int
	SharedFrac   float64 // fraction of references to shared data
	WriteFrac    float64
	Seed         int64
}

// Build returns a workload per processor.
func (w Mixed) Build(l Layout, procs int) []func(*sim.Proc) {
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		i := i
		rng := rand.New(rand.NewSource(w.Seed ^ int64(i*104729)))
		ws[i] = func(p *sim.Proc) {
			for k := 0; k < w.Ops; k++ {
				var b addr.Block
				cl := interconnect.Data
				if rng.Float64() < w.SharedFrac {
					b = l.SharedBlock(rng.Intn(w.SharedBlocks))
					cl = interconnect.Sync
				} else {
					b = l.PrivateBlock(i, rng.Intn(w.PrivBlocks))
				}
				a := l.G.Base(b) + addr.Addr(rng.Intn(l.G.BlockWords))
				if rng.Float64() < w.WriteFrac {
					p.WriteClass(a, uint64(k), cl)
				} else {
					p.ReadClass(a, cl)
				}
			}
		}
	}
	return ws
}

// PrivateRuns exercises Feature 5's scenario: sequential runs over
// private data that are read and then (with probability WriteBack)
// written — where fetching unshared data with write privilege on the
// read miss saves the later invalidation cycle.
type PrivateRuns struct {
	Blocks    int
	Sweeps    int
	WriteBack float64 // probability a visited block is written after reading
	Static    bool    // use the compiler-declared read-for-write instruction
	Seed      int64
}

// Build returns a workload per processor.
func (w PrivateRuns) Build(l Layout, procs int) []func(*sim.Proc) {
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		i := i
		rng := rand.New(rand.NewSource(w.Seed + int64(i)*13))
		ws[i] = func(p *sim.Proc) {
			for s := 0; s < w.Sweeps; s++ {
				for b := 0; b < w.Blocks; b++ {
					a := l.G.Base(l.PrivateBlock(i, b))
					write := rng.Float64() < w.WriteBack
					if w.Static && write {
						p.ReadExClass(a, interconnect.Data)
					} else {
						p.ReadClass(a, interconnect.Data)
					}
					if write {
						p.WriteClass(a, uint64(s), interconnect.Data)
					}
				}
			}
		}
	}
	return ws
}

// StateSave is Feature 9's scenario: frequent process switches saving
// whole blocks of processor state (Aquarius expects "frequent process
// switching, hence the switching must be very efficient").
type StateSave struct {
	Switches    int
	StateBlocks int // blocks of state written per switch
}

// Build returns a workload per processor.
func (w StateSave) Build(l Layout, procs int) []func(*sim.Proc) {
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		i := i
		ws[i] = func(p *sim.Proc) {
			vals := make([]uint64, l.G.BlockWords)
			for s := 0; s < w.Switches; s++ {
				for b := 0; b < w.StateBlocks; b++ {
					for k := range vals {
						vals[k] = uint64(s*100 + b)
					}
					p.WriteBlockClass(l.G.Base(l.PrivateBlock(i, b)), vals, interconnect.Data)
				}
				p.Compute(20) // run the switched-in process a little
			}
		}
	}
	return ws
}

// LockedData is the two-tier split made explicit (Figure 11): an
// instruction-fetch burst through the lower tier, then a lock (hard
// atom, synchronization tier) guarding a plain-data record that lives
// in the lower tier — the reference mix the Aquarius machine routes
// across both interconnects, and the workload the disaggregated
// RemoteCycles sweep stresses (remote cost lands on the guarded
// record, stretching lock hold times).
type LockedData struct {
	Locks   int
	Iters   int
	Records int   // record words read+written per critical section
	Instrs  int   // instruction fetches per iteration
	Think   int64 // gap between iterations
	Scheme  syncprim.Scheme
	Seed    int64
}

// Build returns a workload per processor.
func (w LockedData) Build(l Layout, procs int) []func(*sim.Proc) {
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		i := i
		rng := rand.New(rand.NewSource(w.Seed*17 + int64(i)))
		ws[i] = func(p *sim.Proc) {
			ibase := l.G.Base(l.InstrBlock(i, 0))
			for k := 0; k < w.Iters; k++ {
				for j := 0; j < w.Instrs; j++ {
					p.InstrFetch(ibase + addr.Addr(j))
				}
				li := rng.Intn(imax(1, w.Locks))
				lock := l.LockAddr(li)
				rec := l.G.Base(l.SharedBlock(2048 + li*8))
				syncprim.Acquire(p, w.Scheme, lock)
				for c := 0; c < w.Records; c++ {
					v := p.ReadClass(rec+addr.Addr(c), interconnect.Data)
					p.WriteClass(rec+addr.Addr(c), v+1, interconnect.Data)
				}
				syncprim.Release(p, w.Scheme, lock)
				p.Compute(w.Think)
			}
		}
	}
	return ws
}
