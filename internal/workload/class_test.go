package workload_test

import (
	"fmt"
	"testing"

	"cachesync/internal/aquarius"
	"cachesync/internal/interconnect"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

// classCases enumerates every generator with settings that exercise
// all of its emission paths.
func classCases() map[string]builder {
	return map[string]builder{
		"mixed": workload.Mixed{Ops: 200, SharedBlocks: 8, PrivBlocks: 16,
			SharedFrac: 0.4, WriteFrac: 0.4, Seed: 3},
		"lock": workload.LockContention{Locks: 2, Iters: 10, HoldCycles: 5,
			ThinkCycles: 5, CSWrites: 2, Scheme: syncprim.CacheLock, Seed: 3},
		"pc":          workload.ProducerConsumer{Items: 10, WritesPerItem: 3, Scheme: syncprim.CacheLock},
		"queues":      workload.ServiceQueues{Requests: 8, Scheme: syncprim.CacheLock, Seed: 3},
		"privateruns": workload.PrivateRuns{Blocks: 8, Sweeps: 3, WriteBack: 0.5, Static: true, Seed: 3},
		"statesave":   workload.StateSave{Switches: 6, StateBlocks: 3},
		"lockdata": workload.LockedData{Locks: 2, Iters: 8, Records: 3,
			Instrs: 2, Think: 4, Scheme: syncprim.CacheLock, Seed: 3},
	}
}

// classRecorder wraps a Program and flags any memory reference emitted
// without a routing class.
type classRecorder struct {
	inner sim.Program
	name  string
	bad   *[]string
}

func (r *classRecorder) Next(p *sim.Proc, last sim.Result) (sim.Op, bool) {
	op, ok := r.inner.Next(p, last)
	if ok && op.IsRef() && op.Class() == interconnect.Unclassified {
		*r.bad = append(*r.bad, fmt.Sprintf("%s: proc %d emitted an unclassified reference", r.name, p.ID()))
	}
	return op, ok
}

// TestGeneratorsClassifyEveryReference pins the satellite requirement:
// every workload generator tags every memory reference with a routing
// class, in both execution forms. The direct form is checked by a
// recording wrapper; the blocking form by running on a Routed two-tier
// machine, which rejects unclassified references outright.
func TestGeneratorsClassifyEveryReference(t *testing.T) {
	const procs = 4
	for name, w := range classCases() {
		name, w := name, w
		t.Run(name+"/direct", func(t *testing.T) {
			t.Parallel()
			cfg := aquarius.DefaultConfig(procs)
			cfg.Routed = true
			a := aquarius.New(cfg)
			l := workload.Layout{G: a.Sync.Geometry()}
			var bad []string
			progs := w.Programs(l, procs)
			for i := range progs {
				if progs[i] != nil { // idle processors stay nil
					progs[i] = &classRecorder{inner: progs[i], name: name, bad: &bad}
				}
			}
			if err := a.RunPrograms(progs); err != nil {
				t.Fatalf("routed run: %v", err)
			}
			for _, msg := range bad {
				t.Error(msg)
			}
		})
		t.Run(name+"/shim", func(t *testing.T) {
			t.Parallel()
			cfg := aquarius.DefaultConfig(procs)
			cfg.Routed = true
			a := aquarius.New(cfg)
			l := workload.Layout{G: a.Sync.Geometry()}
			if err := a.Run(w.Build(l, procs)); err != nil {
				t.Fatalf("routed run: %v", err)
			}
		})
	}
}

// TestBuildMatchesProgramsOnTwoTier extends the differential to the
// routed machine: both execution forms of a generator must drive the
// two-tier system to identical clocks and counters.
func TestBuildMatchesProgramsOnTwoTier(t *testing.T) {
	const procs = 4
	for name, w := range classCases() {
		name, w := name, w
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runOne := func(direct bool) (int64, map[string]int64) {
				cfg := aquarius.DefaultConfig(procs)
				cfg.Routed = true
				a := aquarius.New(cfg)
				l := workload.Layout{G: a.Sync.Geometry()}
				var err error
				if direct {
					err = a.RunPrograms(w.Programs(l, procs))
				} else {
					err = a.Run(w.Build(l, procs))
				}
				if err != nil {
					t.Fatal(err)
				}
				return a.Clock(), a.Stats().Snapshot()
			}
			sc, ss := runOne(false)
			dc, ds := runOne(true)
			if sc != dc {
				t.Errorf("final clock: shim %d, direct %d", sc, dc)
			}
			if len(ss) != len(ds) {
				t.Fatalf("stats size: shim %d, direct %d", len(ss), len(ds))
			}
			for k, v := range ss {
				if ds[k] != v {
					t.Errorf("counter %s: shim %d, direct %d", k, v, ds[k])
				}
			}
		})
	}
}
