package workload

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/coherence"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/sim"
)

// FuzzWorkloadReplay fuzzes the workload-parameter space: any
// (protocol, processor count, op count, sharing mix, seed) must build
// a workload that the engine replays to quiescence — no deadlock, no
// panic — and that leaves the machine coherent under the full
// invariant suite.
func FuzzWorkloadReplay(f *testing.F) {
	f.Add(uint8(4), uint8(11), uint16(60), uint8(76), uint8(89), int64(1))
	f.Add(uint8(1), uint8(0), uint16(1), uint8(0), uint8(255), int64(7))
	f.Add(uint8(3), uint8(5), uint16(200), uint8(255), uint8(0), int64(42))
	f.Add(uint8(8), uint8(3), uint16(33), uint8(128), uint8(128), int64(-9))
	f.Add(uint8(2), uint8(12), uint16(80), uint8(200), uint8(120), int64(5)) // protoRaw 12 = locke

	f.Fuzz(func(t *testing.T, procsRaw, protoRaw uint8, opsRaw uint16, sharedRaw, writeRaw uint8, seed int64) {
		procs := 1 + int(procsRaw)%4
		ops := 1 + int(opsRaw)%64
		name := all.Everything[int(protoRaw)%len(all.Everything)]
		p := protocol.MustNew(name)

		cfg := sim.DefaultConfig(p)
		cfg.Procs = procs
		if p.Features().OneWordBlocks {
			cfg.Geometry = addr.MustGeometry(1, 1)
		}
		cfg.Cache = cache.Config{Sets: 1, Ways: 8} // small: forces evictions
		s := sim.New(cfg)
		l := Layout{G: s.Geometry()}

		w := Mixed{
			Ops:          ops,
			SharedBlocks: 4,
			PrivBlocks:   8,
			SharedFrac:   float64(sharedRaw) / 255,
			WriteFrac:    float64(writeRaw) / 255,
			Seed:         seed,
		}
		if err := s.Run(w.Build(l, procs)); err != nil {
			t.Fatalf("%s procs=%d ops=%d shared=%.2f write=%.2f seed=%d: replay failed: %v",
				name, procs, ops, w.SharedFrac, w.WriteFrac, seed, err)
		}
		for _, v := range coherence.Check(s) {
			t.Errorf("%s procs=%d ops=%d shared=%.2f write=%.2f seed=%d: %s",
				name, procs, ops, w.SharedFrac, w.WriteFrac, seed, v)
		}
	})
}
