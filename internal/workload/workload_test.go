package workload

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
)

func mk(t *testing.T, name string, procs, ways int) (*sim.System, Layout) {
	t.Helper()
	p := protocol.MustNew(name)
	cfg := sim.DefaultConfig(p)
	cfg.Procs = procs
	cfg.Cache.Ways = ways
	if p.Features().OneWordBlocks {
		cfg.Geometry = addr.MustGeometry(1, 1)
	}
	s := sim.New(cfg)
	return s, Layout{G: s.Geometry()}
}

func TestLayoutSeparation(t *testing.T) {
	l := Layout{G: addr.MustGeometry(4, 4)}
	if l.G.BlockOf(l.LockAddr(0)) == l.SharedBlock(0) {
		t.Error("lock and shared regions overlap")
	}
	if l.PrivateBlock(0, 0) == l.PrivateBlock(1, 0) {
		t.Error("private regions overlap between processors")
	}
	if l.SharedBlock(4095) >= l.PrivateBlock(0, 0) {
		t.Error("shared region runs into private region")
	}
}

func TestProducerConsumerAllSchemes(t *testing.T) {
	for _, scheme := range []syncprim.Scheme{syncprim.CacheLock, syncprim.TAS, syncprim.TTAS} {
		t.Run(scheme.String(), func(t *testing.T) {
			s, l := mk(t, "bitar", 2, 64)
			w := ProducerConsumer{Items: 6, WritesPerItem: 3, Scheme: scheme}
			if err := s.Run(w.Build(l, 2)); err != nil {
				t.Fatal(err)
			}
			if s.Counts.Get("bus.cycles") == 0 {
				t.Error("no bus activity")
			}
		})
	}
}

func TestLockContentionCompletes(t *testing.T) {
	for _, name := range []string{"bitar", "illinois", "goodman"} {
		t.Run(name, func(t *testing.T) {
			s, l := mk(t, name, 4, 64)
			scheme := syncprim.SchemeFor(s.Protocol())
			w := LockContention{Locks: 2, Iters: 8, HoldCycles: 10, ThinkCycles: 5, CSWrites: 2, Scheme: scheme, Seed: 3}
			if err := s.Run(w.Build(l, 4)); err != nil {
				t.Fatal(err)
			}
			var acquires int64
			for _, p := range s.Procs {
				acquires += p.Counts.Get("sync.acquire")
			}
			if acquires != 4*8 {
				t.Errorf("acquires = %d, want 32", acquires)
			}
		})
	}
}

func TestLockContentionOneWordBlocks(t *testing.T) {
	s, l := mk(t, "rudolph", 3, 64)
	w := LockContention{Locks: 1, Iters: 5, HoldCycles: 5, CSWrites: 2,
		Scheme: syncprim.SchemeFor(s.Protocol()), Seed: 1}
	if err := s.Run(w.Build(l, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestServiceQueuesCompletes(t *testing.T) {
	for _, name := range []string{"bitar", "berkeley"} {
		t.Run(name, func(t *testing.T) {
			s, l := mk(t, name, 4, 64)
			w := ServiceQueues{Requests: 6, Scheme: syncprim.SchemeFor(s.Protocol()), Seed: 5}
			if err := s.Run(w.Build(l, 4)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMixedDeterministicAndRuns(t *testing.T) {
	run := func() int64 {
		s, l := mk(t, "illinois", 4, 16)
		w := Mixed{Ops: 120, SharedBlocks: 8, PrivBlocks: 16, SharedFrac: 0.3, WriteFrac: 0.35, Seed: 9}
		if err := s.Run(w.Build(l, 4)); err != nil {
			t.Fatal(err)
		}
		return s.Counts.Get("bus.cycles")
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("mixed workload not deterministic: %d vs %d bus cycles", a, b)
	}
	if a == 0 {
		t.Error("no bus traffic")
	}
}

func TestPrivateRunsStaticVsDynamic(t *testing.T) {
	// Feature 5: under Yen (static), ReadEx must remove the upgrade
	// transactions that plain reads pay.
	traffic := func(static bool) int64 {
		s, l := mk(t, "yen", 2, 64)
		w := PrivateRuns{Blocks: 16, Sweeps: 1, WriteBack: 1.0, Static: static, Seed: 2}
		if err := s.Run(w.Build(l, 2)); err != nil {
			t.Fatal(err)
		}
		return s.Bus.Counts.Get("bus.upgrade")
	}
	if up := traffic(true); up != 0 {
		t.Errorf("static read-for-write still paid %d upgrades", up)
	}
	if up := traffic(false); up == 0 {
		t.Error("plain reads should pay upgrades on the later writes")
	}
}

func TestStateSaveUsesWriteNoFetch(t *testing.T) {
	s, l := mk(t, "bitar", 2, 64)
	w := StateSave{Switches: 4, StateBlocks: 3}
	if err := s.Run(w.Build(l, 2)); err != nil {
		t.Fatal(err)
	}
	if got := s.Bus.Counts.Get("bus.writenofetch"); got == 0 {
		t.Error("state save did not use write-without-fetch")
	}
	if got := s.Bus.Counts.Get("bus.read") + s.Bus.Counts.Get("bus.readx"); got != 0 {
		t.Errorf("state save fetched %d blocks under Feature 9", got)
	}
}

func TestAllWorkloadsAllProtocolsSmoke(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			s, l := mk(t, name, 3, 32)
			scheme := syncprim.SchemeFor(s.Protocol())
			ws := LockContention{Locks: 1, Iters: 3, HoldCycles: 5, CSWrites: 1, Scheme: scheme, Seed: 7}.Build(l, 3)
			if err := s.Run(ws); err != nil {
				t.Fatalf("lockcontention: %v", err)
			}
			s2, l2 := mk(t, name, 3, 32)
			if err := s2.Run(Mixed{Ops: 60, SharedBlocks: 4, PrivBlocks: 8, SharedFrac: 0.4, WriteFrac: 0.3, Seed: 11}.Build(l2, 3)); err != nil {
				t.Fatalf("mixed: %v", err)
			}
			s3, l3 := mk(t, name, 3, 32)
			if err := s3.Run(StateSave{Switches: 2, StateBlocks: 2}.Build(l3, 3)); err != nil {
				t.Fatalf("statesave: %v", err)
			}
		})
	}
}
