package workload

import (
	"math/rand"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
)

// This file is the direct-execution form of every generator: Programs
// mirrors Build, producing one resumable sim.Program per processor
// that yields exactly the operation sequence the blocking closure
// issues (same RNG streams, same draw points, same counters), so the
// direct and shim engines stay byte-identical. Compute ops with a
// non-positive cycle count are skipped, matching Proc.Compute.

// Programs returns the direct-execution form of the workload.
func (w Mixed) Programs(l Layout, procs int) []sim.Program {
	ps := make([]sim.Program, procs)
	for i := range ps {
		ps[i] = &mixedProg{
			w: w, l: l, id: i,
			rng: rand.New(rand.NewSource(w.Seed ^ int64(i*104729))),
		}
	}
	return ps
}

type mixedProg struct {
	w   Mixed
	l   Layout
	id  int
	rng *rand.Rand
	k   int
}

func (g *mixedProg) Next(p *sim.Proc, _ sim.Result) (sim.Op, bool) {
	if g.k >= g.w.Ops {
		return sim.Op{}, false
	}
	k := g.k
	g.k++
	var b addr.Block
	cl := interconnect.Data
	if g.rng.Float64() < g.w.SharedFrac {
		b = g.l.SharedBlock(g.rng.Intn(g.w.SharedBlocks))
		cl = interconnect.Sync
	} else {
		b = g.l.PrivateBlock(g.id, g.rng.Intn(g.w.PrivBlocks))
	}
	a := g.l.G.Base(b) + addr.Addr(g.rng.Intn(g.l.G.BlockWords))
	if g.rng.Float64() < g.w.WriteFrac {
		return sim.WriteOp(a, uint64(k)).WithClass(cl), true
	}
	return sim.ReadOp(a).WithClass(cl), true
}

// Programs returns the direct-execution form of the workload.
func (w LockContention) Programs(l Layout, procs int) []sim.Program {
	ps := make([]sim.Program, procs)
	for i := range ps {
		ps[i] = &lockContProg{
			w: w, l: l,
			rng: rand.New(rand.NewSource(w.Seed + int64(i))),
		}
	}
	return ps
}

// lockContProg states name the op in flight.
const (
	lcStart uint8 = iota
	lcAcq         // acquire sub-machine running
	lcCS          // a critical-section write
	lcHold        // the hold-time Compute
	lcRel         // the release op
	lcThink       // the think-time Compute
)

type lockContProg struct {
	w    LockContention
	l    Layout
	rng  *rand.Rand
	lk   syncprim.LockAcquire
	pc   uint8
	k, c int
	li   int
	lock addr.Addr
}

func (g *lockContProg) Next(p *sim.Proc, last sim.Result) (sim.Op, bool) {
	switch g.pc {
	case lcAcq:
		if op, done := g.lk.Step(p, last); !done {
			return op, true
		}
		g.c = 0
		return g.emitCS(), true
	case lcCS:
		g.c++
		return g.emitCS(), true
	case lcHold:
		g.pc = lcRel
		return syncprim.StartRelease(g.w.Scheme, g.lock), true
	case lcRel:
		syncprim.FinishRelease(p)
		if g.w.ThinkCycles > 0 {
			g.pc = lcThink
			return sim.ComputeOp(g.w.ThinkCycles), true
		}
		g.k++
	case lcThink:
		g.k++
	}
	if g.k >= g.w.Iters {
		return sim.Op{}, false
	}
	g.li = g.rng.Intn(g.w.Locks)
	g.lock = g.l.LockAddr(g.li)
	g.pc = lcAcq
	return g.lk.Start(g.w.Scheme, g.lock), true
}

// emitCS issues the next critical-section write, or — when the writes
// are done — the hold Compute and then the release.
func (g *lockContProg) emitCS() sim.Op {
	if g.c < g.w.CSWrites {
		// Write the atom guarded by the lock: the rest of the lock's
		// block when it has room, otherwise a dedicated data block per
		// lock (one-word blocks).
		var a addr.Addr
		if g.l.G.BlockWords > 1 {
			a = g.lock + addr.Addr(1+g.c%(g.l.G.BlockWords-1))
		} else {
			a = g.l.G.Base(g.l.SharedBlock(512 + g.li))
		}
		g.pc = lcCS
		return sim.WriteOp(a, uint64(g.k)).WithClass(interconnect.Sync)
	}
	if g.w.HoldCycles > 0 {
		g.pc = lcHold
		return sim.ComputeOp(g.w.HoldCycles)
	}
	g.pc = lcRel
	return syncprim.StartRelease(g.w.Scheme, g.lock)
}

// Programs returns the direct-execution form of the workload: proc 0
// produces, proc 1 consumes, the rest idle.
func (w ProducerConsumer) Programs(l Layout, procs int) []sim.Program {
	lock := l.LockAddr(0)
	atom := l.G.Base(l.SharedBlock(0))
	flag := l.LockAddr(1)
	ps := make([]sim.Program, procs)
	ps[0] = &producerProg{w: w, lock: lock, atom: atom, flag: flag, bw: l.G.BlockWords, i: 1}
	ps[1] = &consumerProg{w: w, lock: lock, atom: atom, flag: flag, bw: l.G.BlockWords, i: 1}
	return ps
}

const (
	ppStart uint8 = iota
	ppAcq
	ppWrite    // a write to the atom
	ppRel      // the release op
	ppFlag     // the publish write
	ppSpinRead // a read of the flag, waiting for the acknowledgement
	ppSpinPause
)

type producerProg struct {
	w                ProducerConsumer
	lock, atom, flag addr.Addr
	bw               int
	lk               syncprim.LockAcquire
	pc               uint8
	i, k             int
}

func (g *producerProg) Next(p *sim.Proc, last sim.Result) (sim.Op, bool) {
	switch g.pc {
	case ppAcq:
		if op, done := g.lk.Step(p, last); !done {
			return op, true
		}
		g.k = 0
		return g.emitWrite(), true
	case ppWrite:
		g.k++
		return g.emitWrite(), true
	case ppRel:
		syncprim.FinishRelease(p)
		g.pc = ppFlag
		return sim.WriteOp(g.flag, uint64(g.i)).WithClass(interconnect.Sync), true // publish
	case ppFlag:
		g.pc = ppSpinRead
		return sim.ReadOp(g.flag).WithClass(interconnect.Sync), true
	case ppSpinRead:
		if last.Value != 0 {
			g.pc = ppSpinPause
			return sim.ComputeOp(4), true
		}
		g.i++ // acknowledged; next item
	case ppSpinPause:
		g.pc = ppSpinRead
		return sim.ReadOp(g.flag).WithClass(interconnect.Sync), true
	}
	if g.i > g.w.Items {
		return sim.Op{}, false
	}
	g.pc = ppAcq
	return g.lk.Start(g.w.Scheme, g.lock), true
}

func (g *producerProg) emitWrite() sim.Op {
	if g.k < g.w.WritesPerItem {
		g.pc = ppWrite
		return sim.WriteOp(g.atom+addr.Addr(g.k%g.bw), uint64(g.i)).WithClass(interconnect.Sync)
	}
	g.pc = ppRel
	return syncprim.StartRelease(g.w.Scheme, g.lock)
}

const (
	cpStart    uint8 = iota
	cpSpinRead       // a read of the flag, waiting for the publish
	cpSpinPause
	cpAcq
	cpRead // a read of the atom
	cpRel  // the release op
	cpAck  // the acknowledgement write
)

type consumerProg struct {
	w                ProducerConsumer
	lock, atom, flag addr.Addr
	bw               int
	lk               syncprim.LockAcquire
	pc               uint8
	i, k             int
}

func (g *consumerProg) Next(p *sim.Proc, last sim.Result) (sim.Op, bool) {
	switch g.pc {
	case cpSpinRead:
		if last.Value != uint64(g.i) {
			g.pc = cpSpinPause
			return sim.ComputeOp(4), true
		}
		g.pc = cpAcq
		return g.lk.Start(g.w.Scheme, g.lock), true
	case cpSpinPause:
		g.pc = cpSpinRead
		return sim.ReadOp(g.flag).WithClass(interconnect.Sync), true
	case cpAcq:
		if op, done := g.lk.Step(p, last); !done {
			return op, true
		}
		g.k = 0
		return g.emitRead(), true
	case cpRead:
		g.k++
		return g.emitRead(), true
	case cpRel:
		syncprim.FinishRelease(p)
		g.pc = cpAck
		return sim.WriteOp(g.flag, 0).WithClass(interconnect.Sync), true // acknowledge
	case cpAck:
		g.i++
	}
	if g.i > g.w.Items {
		return sim.Op{}, false
	}
	g.pc = cpSpinRead
	return sim.ReadOp(g.flag).WithClass(interconnect.Sync), true
}

func (g *consumerProg) emitRead() sim.Op {
	if g.k < g.w.WritesPerItem {
		g.pc = cpRead
		return sim.ReadOp(g.atom + addr.Addr(g.k%g.bw)).WithClass(interconnect.Sync)
	}
	g.pc = cpRel
	return syncprim.StartRelease(g.w.Scheme, g.lock)
}

// Programs returns the direct-execution form of the workload.
func (w ServiceQueues) Programs(l Layout, procs int) []sim.Program {
	qcap := w.QueueCap
	if qcap <= 0 || qcap > l.G.BlockWords-2 {
		qcap = imax(1, l.G.BlockWords-2)
	}
	ps := make([]sim.Program, procs)
	for i := range ps {
		ps[i] = &serviceQueuesProg{
			w: w, l: l, id: i, cap: qcap, procs: procs,
			rng:    rand.New(rand.NewSource(w.Seed*31 + int64(i))),
			myLock: l.LockAddr(2 + i),
			myDesc: l.G.Base(l.SharedBlock(1 + i)),
		}
	}
	return ps
}

const (
	sqStart     uint8 = iota
	sqPostAcq         // acquiring the target queue's lock
	sqPostLen         // reading the target queue length
	sqPostSlot        // writing the posted request into its slot
	sqPostLen2        // writing the incremented length
	sqPostRel         // releasing the target queue's lock
	sqDrainAcq        // acquiring my own queue's lock
	sqDrainLen        // reading my queue length
	sqDrainSlot       // reading the drained request
	sqDrainWr         // writing the decremented length
	sqDrainRel        // releasing my queue's lock
	sqThink           // the Compute between rounds
	sqFinalAcq        // final drain: acquiring my lock
	sqFinalLen        // final drain: reading my queue length
	sqFinalWr         // final drain: writing the decremented length
	sqFinalRel        // final drain: releasing my lock
)

type serviceQueuesProg struct {
	w              ServiceQueues
	l              Layout
	id             int
	cap            int
	procs          int
	rng            *rand.Rand
	lk             syncprim.LockAcquire
	pc             uint8
	posted, d      int
	n              uint64
	lock, desc     addr.Addr
	myLock, myDesc addr.Addr
}

func (g *serviceQueuesProg) Next(p *sim.Proc, last sim.Result) (sim.Op, bool) {
	switch g.pc {
	case sqStart:
		return g.startRound()
	case sqPostAcq:
		if op, done := g.lk.Step(p, last); !done {
			return op, true
		}
		g.pc = sqPostLen
		return sim.ReadOp(g.desc).WithClass(interconnect.Sync), true // queue length
	case sqPostLen:
		if n := last.Value; int(n) < g.cap {
			g.n = n
			g.pc = sqPostSlot
			return sim.WriteOp(g.desc+addr.Addr(1+int(n)%g.cap), uint64(g.id*1000+g.posted)).WithClass(interconnect.Sync), true
		}
		// A full queue drops the request (bounded queue), so no
		// processor can wedge on a finished peer.
		g.posted++
		g.pc = sqPostRel
		return syncprim.StartRelease(g.w.Scheme, g.lock), true
	case sqPostSlot:
		g.pc = sqPostLen2
		return sim.WriteOp(g.desc, g.n+1).WithClass(interconnect.Sync), true
	case sqPostLen2:
		g.posted++
		g.pc = sqPostRel
		return syncprim.StartRelease(g.w.Scheme, g.lock), true
	case sqPostRel:
		syncprim.FinishRelease(p)
		g.pc = sqDrainAcq
		return g.lk.Start(g.w.Scheme, g.myLock), true
	case sqDrainAcq:
		if op, done := g.lk.Step(p, last); !done {
			return op, true
		}
		g.pc = sqDrainLen
		return sim.ReadOp(g.myDesc).WithClass(interconnect.Sync), true
	case sqDrainLen:
		if n := last.Value; n > 0 {
			g.n = n
			g.pc = sqDrainSlot
			return sim.ReadOp(g.myDesc + addr.Addr(1+int(n-1)%g.cap)).WithClass(interconnect.Sync), true
		}
		g.pc = sqDrainRel
		return syncprim.StartRelease(g.w.Scheme, g.myLock), true
	case sqDrainSlot:
		g.pc = sqDrainWr
		return sim.WriteOp(g.myDesc, g.n-1).WithClass(interconnect.Sync), true
	case sqDrainWr:
		g.pc = sqDrainRel
		return syncprim.StartRelease(g.w.Scheme, g.myLock), true
	case sqDrainRel:
		syncprim.FinishRelease(p)
		g.pc = sqThink
		return sim.ComputeOp(10), true
	case sqThink:
		return g.startRound()
	case sqFinalAcq:
		if op, done := g.lk.Step(p, last); !done {
			return op, true
		}
		g.pc = sqFinalLen
		return sim.ReadOp(g.myDesc).WithClass(interconnect.Sync), true
	case sqFinalLen:
		if n := last.Value; n > 0 {
			g.pc = sqFinalWr
			return sim.WriteOp(g.myDesc, n-1).WithClass(interconnect.Sync), true
		}
		g.pc = sqFinalRel
		return syncprim.StartRelease(g.w.Scheme, g.myLock), true
	case sqFinalWr:
		g.pc = sqFinalRel
		return syncprim.StartRelease(g.w.Scheme, g.myLock), true
	case sqFinalRel:
		syncprim.FinishRelease(p)
		g.d++
		return g.startFinal()
	}
	panic("workload: serviceQueuesProg in unknown state")
}

// startRound posts a request to a random other queue, or moves to the
// final drain once the quota is posted.
func (g *serviceQueuesProg) startRound() (sim.Op, bool) {
	if g.posted >= g.w.Requests {
		return g.startFinal()
	}
	target := g.rng.Intn(g.procs)
	if g.procs > 1 {
		for target == g.id {
			target = g.rng.Intn(g.procs)
		}
	}
	g.lock = g.l.LockAddr(2 + target)
	g.desc = g.l.G.Base(g.l.SharedBlock(1 + target))
	g.pc = sqPostAcq
	return g.lk.Start(g.w.Scheme, g.lock), true
}

// startFinal drains my own queue so no queue overflows block others.
func (g *serviceQueuesProg) startFinal() (sim.Op, bool) {
	if g.d >= g.w.Requests {
		return sim.Op{}, false
	}
	g.pc = sqFinalAcq
	return g.lk.Start(g.w.Scheme, g.myLock), true
}

// Programs returns the direct-execution form of the workload.
func (w PrivateRuns) Programs(l Layout, procs int) []sim.Program {
	ps := make([]sim.Program, procs)
	for i := range ps {
		ps[i] = &privateRunsProg{
			w: w, l: l, id: i,
			rng: rand.New(rand.NewSource(w.Seed + int64(i)*13)),
		}
	}
	return ps
}

const (
	prStart uint8 = iota
	prRead        // the read (or ReadEx) of the visited block
	prWrite       // the write-back of the visited block
)

type privateRunsProg struct {
	w     PrivateRuns
	l     Layout
	id    int
	rng   *rand.Rand
	pc    uint8
	s, b  int
	a     addr.Addr
	write bool
}

func (g *privateRunsProg) Next(p *sim.Proc, _ sim.Result) (sim.Op, bool) {
	switch g.pc {
	case prRead:
		if g.write {
			g.pc = prWrite
			return sim.WriteOp(g.a, uint64(g.s)).WithClass(interconnect.Data), true
		}
		g.advance()
	case prWrite:
		g.advance()
	}
	if g.w.Blocks <= 0 || g.s >= g.w.Sweeps {
		return sim.Op{}, false
	}
	g.a = g.l.G.Base(g.l.PrivateBlock(g.id, g.b))
	g.write = g.rng.Float64() < g.w.WriteBack
	g.pc = prRead
	if g.w.Static && g.write {
		return sim.ReadExOp(g.a).WithClass(interconnect.Data), true
	}
	return sim.ReadOp(g.a).WithClass(interconnect.Data), true
}

func (g *privateRunsProg) advance() {
	g.b++
	if g.b >= g.w.Blocks {
		g.b = 0
		g.s++
	}
}

// Programs returns the direct-execution form of the workload.
func (w StateSave) Programs(l Layout, procs int) []sim.Program {
	ps := make([]sim.Program, procs)
	for i := range ps {
		ps[i] = &stateSaveProg{w: w, l: l, id: i, vals: make([]uint64, l.G.BlockWords)}
	}
	return ps
}

const (
	ssStart   uint8 = iota
	ssWrite         // a state-block WriteBlock
	ssCompute       // running the switched-in process a little
)

type stateSaveProg struct {
	w    StateSave
	l    Layout
	id   int
	vals []uint64 // refilled per block; the engine consumes it before Next runs again
	pc   uint8
	s, b int
}

func (g *stateSaveProg) Next(_ *sim.Proc, _ sim.Result) (sim.Op, bool) {
	switch g.pc {
	case ssWrite:
		g.b++
	case ssCompute:
		g.s++
		g.b = 0
	}
	if g.s >= g.w.Switches {
		return sim.Op{}, false
	}
	if g.b < g.w.StateBlocks {
		for k := range g.vals {
			g.vals[k] = uint64(g.s*100 + g.b)
		}
		g.pc = ssWrite
		return sim.WriteBlockOp(g.l.G.Base(g.l.PrivateBlock(g.id, g.b)), g.vals).WithClass(interconnect.Data), true
	}
	g.pc = ssCompute
	return sim.ComputeOp(20), true
}

// Programs returns the direct-execution form of the workload.
func (w LockedData) Programs(l Layout, procs int) []sim.Program {
	ps := make([]sim.Program, procs)
	for i := range ps {
		ps[i] = &lockedDataProg{
			w: w, l: l, id: i,
			rng: rand.New(rand.NewSource(w.Seed*17 + int64(i))),
		}
	}
	return ps
}

// lockedDataProg states name the op in flight.
const (
	ldStart uint8 = iota
	ldInstr       // an instruction fetch
	ldAcq         // acquire sub-machine running
	ldRead        // a record-word read
	ldWrite       // the paired record-word write
	ldRel         // the release op
	ldThink       // the think-time Compute
)

type lockedDataProg struct {
	w       LockedData
	l       Layout
	id      int
	rng     *rand.Rand
	lk      syncprim.LockAcquire
	pc      uint8
	k, j, c int
	v       uint64
	lock    addr.Addr
	rec     addr.Addr
}

func (g *lockedDataProg) Next(p *sim.Proc, last sim.Result) (sim.Op, bool) {
	switch g.pc {
	case ldInstr:
		g.j++
		if g.j < g.w.Instrs {
			return sim.InstrFetchOp(g.ibase() + addr.Addr(g.j)), true
		}
		return g.startAcquire(), true
	case ldAcq:
		if op, done := g.lk.Step(p, last); !done {
			return op, true
		}
		g.c = 0
		return g.emitRecord(), true
	case ldRead:
		g.v = last.Value
		g.pc = ldWrite
		return sim.WriteOp(g.rec+addr.Addr(g.c), g.v+1).WithClass(interconnect.Data), true
	case ldWrite:
		g.c++
		return g.emitRecord(), true
	case ldRel:
		syncprim.FinishRelease(p)
		if g.w.Think > 0 {
			g.pc = ldThink
			return sim.ComputeOp(g.w.Think), true
		}
		g.k++
	case ldThink:
		g.k++
	}
	if g.k >= g.w.Iters {
		return sim.Op{}, false
	}
	if g.w.Instrs > 0 {
		g.pc = ldInstr
		g.j = 0
		return sim.InstrFetchOp(g.ibase()), true
	}
	return g.startAcquire(), true
}

func (g *lockedDataProg) ibase() addr.Addr {
	return g.l.G.Base(g.l.InstrBlock(g.id, 0))
}

// startAcquire picks this iteration's lock and its guarded lower-tier
// record, then starts the acquire sub-machine.
func (g *lockedDataProg) startAcquire() sim.Op {
	li := g.rng.Intn(imax(1, g.w.Locks))
	g.lock = g.l.LockAddr(li)
	g.rec = g.l.G.Base(g.l.SharedBlock(2048 + li*8))
	g.pc = ldAcq
	return g.lk.Start(g.w.Scheme, g.lock)
}

// emitRecord issues the next record-word read, or the release when the
// record is done.
func (g *lockedDataProg) emitRecord() sim.Op {
	if g.c < g.w.Records {
		g.pc = ldRead
		return sim.ReadOp(g.rec + addr.Addr(g.c)).WithClass(interconnect.Data)
	}
	g.pc = ldRel
	return syncprim.StartRelease(g.w.Scheme, g.lock)
}
