package workload_test

import (
	"fmt"
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

// builder is any generator offering both execution forms.
type builder interface {
	Build(l workload.Layout, procs int) []func(*sim.Proc)
	Programs(l workload.Layout, procs int) []sim.Program
}

func newDiffSystem(name string, procs int) *sim.System {
	p := protocol.MustNew(name)
	cfg := sim.DefaultConfig(p)
	cfg.Procs = procs
	if p.Features().OneWordBlocks {
		cfg.Geometry = addr.MustGeometry(1, 1)
	}
	// Small caches force evictions, so the comparison also covers the
	// victim/flush paths.
	cfg.Cache = cache.Config{Sets: 1, Ways: 16}
	return sim.New(cfg)
}

// runDiff executes the same generator through the blocking shim
// (goroutine per workload) and the direct Program path on two
// identically configured machines, then requires byte-identical event
// logs, final clock, statistics, cache contents, and memory.
func runDiff(t *testing.T, protoName string, procs int, w builder) {
	t.Helper()
	shim := newDiffSystem(protoName, procs)
	direct := newDiffSystem(protoName, procs)
	shimLog := shim.AttachLog(0)
	directLog := direct.AttachLog(0)
	l := workload.Layout{G: shim.Geometry()}

	if err := shim.Run(w.Build(l, procs)); err != nil {
		t.Fatalf("shim run: %v", err)
	}
	if err := direct.RunPrograms(w.Programs(l, procs)); err != nil {
		t.Fatalf("direct run: %v", err)
	}

	if shim.Clock() != direct.Clock() {
		t.Errorf("final clock: shim %d, direct %d", shim.Clock(), direct.Clock())
	}

	if len(shimLog.Entries) != len(directLog.Entries) {
		t.Errorf("event log length: shim %d, direct %d", len(shimLog.Entries), len(directLog.Entries))
	} else {
		for i := range shimLog.Entries {
			if shimLog.Entries[i] != directLog.Entries[i] {
				t.Errorf("event log entry %d:\n  shim:   %s\n  direct: %s",
					i, shimLog.Entries[i], directLog.Entries[i])
				break
			}
		}
	}

	ss, ds := shim.Stats().Snapshot(), direct.Stats().Snapshot()
	for k, v := range ss {
		if dv, ok := ds[k]; !ok || dv != v {
			t.Errorf("stat %q: shim %d, direct %d", k, v, dv)
		}
	}
	for k, v := range ds {
		if _, ok := ss[k]; !ok {
			t.Errorf("stat %q: only on direct path (= %d)", k, v)
		}
	}

	blocks := map[addr.Block]bool{}
	for i := range shim.Caches {
		sl, dl := shim.Caches[i].Snapshot(), direct.Caches[i].Snapshot()
		if len(sl) != len(dl) {
			t.Errorf("cache %d: %d lines on shim, %d on direct", i, len(sl), len(dl))
			continue
		}
		for j := range sl {
			if sl[j].Block != dl[j].Block || sl[j].State != dl[j].State ||
				!wordsEqual(sl[j].Data, dl[j].Data) {
				t.Errorf("cache %d line %d: shim %+v, direct %+v", i, j, sl[j], dl[j])
			}
			blocks[sl[j].Block] = true
		}
	}
	for _, e := range shimLog.Entries {
		blocks[addr.Block(e.Block)] = true
	}
	for b := range blocks {
		if !wordsEqual(shim.Mem.ReadBlock(b), direct.Mem.ReadBlock(b)) {
			t.Errorf("memory block %d: shim %v, direct %v", b, shim.Mem.ReadBlock(b), direct.Mem.ReadBlock(b))
		}
	}
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDirectMatchesShim is the differential gate for the
// direct-execution engine: for every protocol, the Program form of a
// generator must reproduce the blocking form's run exactly — same bus
// transactions at the same cycles, same final machine state, same
// counters.
func TestDirectMatchesShim(t *testing.T) {
	const procs = 4
	for _, name := range all.Everything {
		name := name
		scheme := syncprim.SchemeFor(protocol.MustNew(name))
		for _, seed := range []int64{1, 2, 3} {
			seed := seed
			t.Run(fmt.Sprintf("%s/mixed/seed%d", name, seed), func(t *testing.T) {
				t.Parallel()
				runDiff(t, name, procs, workload.Mixed{Ops: 400, SharedBlocks: 8,
					PrivBlocks: 24, SharedFrac: 0.3, WriteFrac: 0.35, Seed: seed})
			})
			t.Run(fmt.Sprintf("%s/lock/seed%d", name, seed), func(t *testing.T) {
				t.Parallel()
				runDiff(t, name, procs, workload.LockContention{Locks: 2, Iters: 25,
					HoldCycles: 20, ThinkCycles: 10, CSWrites: 2, Scheme: scheme, Seed: seed})
			})
		}
		t.Run(name+"/pc", func(t *testing.T) {
			t.Parallel()
			runDiff(t, name, procs, workload.ProducerConsumer{Items: 20, WritesPerItem: 4, Scheme: scheme})
		})
		t.Run(name+"/queues", func(t *testing.T) {
			t.Parallel()
			runDiff(t, name, procs, workload.ServiceQueues{Requests: 15, Scheme: scheme, Seed: 7})
		})
		t.Run(name+"/privateruns", func(t *testing.T) {
			t.Parallel()
			runDiff(t, name, procs, workload.PrivateRuns{Blocks: 12, Sweeps: 4, WriteBack: 0.5, Static: true, Seed: 5})
		})
		t.Run(name+"/statesave", func(t *testing.T) {
			t.Parallel()
			runDiff(t, name, procs, workload.StateSave{Switches: 10, StateBlocks: 4})
		})
		t.Run(name+"/lockdata", func(t *testing.T) {
			t.Parallel()
			runDiff(t, name, procs, workload.LockedData{Locks: 2, Iters: 12,
				Records: 4, Instrs: 3, Think: 8, Scheme: scheme, Seed: 11})
		})
	}
}
