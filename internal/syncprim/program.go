package syncprim

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/sim"
)

// This file is the direct-execution (sim.Program) form of the locking
// primitives: resumable sub-state-machines yielding exactly the
// operation and counter sequence the blocking Acquire/Release produce,
// one op at a time, so Program workloads and blocking workloads stay
// byte-identical.

// LockAcquire is a resumable busy-wait lock acquisition. Start arms it
// and returns the first op of the acquire sequence; feed each Result
// to Step until done. A LockAcquire is reusable: Start re-arms it for
// the next acquisition.
type LockAcquire struct {
	scheme Scheme
	addr   addr.Addr
	phase  acqPhase
}

// acqPhase names the op currently in flight for a LockAcquire.
type acqPhase uint8

const (
	acqIdle      acqPhase = iota
	acqLockRead           // CacheLock: the LockRead
	acqRMW                // TAS/TTAS/TASMemory: the test-and-set
	acqPause              // TAS/TASMemory: the pause between attempts
	acqRead               // TTAS: the in-cache read of the lock word
	acqReadPause          // TTAS: the pause between in-cache reads
)

// Start arms the acquire of the lock at a and returns its first
// operation.
func (l *LockAcquire) Start(s Scheme, a addr.Addr) sim.Op {
	l.scheme, l.addr = s, a
	switch s {
	case CacheLock:
		l.phase = acqLockRead
		return sim.LockReadOp(a)
	case TAS, TTAS:
		l.phase = acqRMW
		return sim.RMWOp(a, tas)
	case TASMemory:
		l.phase = acqRMW
		return sim.RMWMemoryOp(a, tas)
	}
	panic(fmt.Sprintf("syncprim: unknown scheme %v", l.scheme))
}

func (l *LockAcquire) rmwOp() sim.Op {
	if l.scheme == TASMemory {
		return sim.RMWMemoryOp(l.addr, tas)
	}
	return sim.RMWOp(l.addr, tas)
}

// Step consumes the Result of the previously returned op. done=true
// reports the lock held (op is then invalid); otherwise op is the next
// operation of the sequence.
func (l *LockAcquire) Step(p *sim.Proc, last sim.Result) (op sim.Op, done bool) {
	switch l.phase {
	case acqLockRead:
		// Zero-retry hardware lock: one op, however long it waited.
		l.phase = acqIdle
		p.Counts.Inc("sync.acquire")
		return sim.Op{}, true
	case acqRMW:
		if last.Value == 0 {
			l.phase = acqIdle
			p.Counts.Inc("sync.acquire")
			return sim.Op{}, true
		}
		p.Counts.Inc("sync.tas-retry")
		if l.scheme == TTAS {
			// Loop on the copy in the cache until the holder's
			// release invalidates (or updates) it.
			l.phase = acqRead
			return sim.ReadOp(l.addr).WithClass(interconnect.Sync), false
		}
		l.phase = acqPause
		return sim.ComputeOp(spinPause), false
	case acqPause:
		l.phase = acqRMW
		return l.rmwOp(), false
	case acqRead:
		if last.Value != 0 {
			l.phase = acqReadPause
			return sim.ComputeOp(spinPause), false
		}
		l.phase = acqRMW
		return l.rmwOp(), false
	case acqReadPause:
		l.phase = acqRead
		return sim.ReadOp(l.addr).WithClass(interconnect.Sync), false
	}
	panic("syncprim: LockAcquire.Step without Start")
}

// StartRelease returns the single op that frees the busy-wait lock at
// a; call FinishRelease when its Result arrives.
func StartRelease(s Scheme, a addr.Addr) sim.Op {
	if s == CacheLock {
		return sim.UnlockWriteOp(a, 0)
	}
	return sim.WriteOp(a, 0).WithClass(interconnect.Sync)
}

// FinishRelease records a completed release.
func FinishRelease(p *sim.Proc) { p.Counts.Inc("sync.release") }
