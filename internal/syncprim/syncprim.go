// Package syncprim builds busy-wait synchronization primitives on top
// of the simulated machines, lowering lock operations to whatever the
// protocol supports:
//
//   - the paper's cache-state lock (Section E.3) when the protocol
//     implements it (zero-time lock/unlock, busy-wait register, no bus
//     retries);
//   - test-and-set or test-and-test-and-set spinning built from atomic
//     read-modify-write for the other protocols ("a waiter loops on a
//     one in its cache", Censier-Feautrier, Section E.4).
//
// It also exposes the four atomic read-modify-write implementation
// methods of Feature 6 so they can be compared head-to-head.
package syncprim

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/protocol"
	"cachesync/internal/sim"
)

// Scheme selects a busy-wait locking implementation.
type Scheme int

const (
	// CacheLock is the paper's proposal: the lock rides on the cache
	// state; waiting uses the busy-wait register (Sections E.3, E.4).
	CacheLock Scheme = iota
	// TAS is a raw test-and-set spin: every attempt is an atomic
	// read-modify-write on the bus.
	TAS
	// TTAS is test-and-test-and-set: waiters spin on their cached
	// copy and attempt the test-and-set only when they observe zero.
	TTAS
	// TASMemory is a test-and-set spin whose atomic operation holds
	// the memory module (Feature 6 method 1); for write-through
	// systems with no cache-based atomicity.
	TASMemory
)

var schemeNames = [...]string{"cachelock", "tas", "ttas", "tasmemory"}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// SchemeFor returns the best-native locking scheme for a protocol:
// the cache lock when available, memory-held test-and-set for classic
// write-through, and test-and-test-and-set otherwise.
func SchemeFor(p protocol.Protocol) Scheme {
	f := p.Features()
	switch {
	case f.HardwareLock:
		return CacheLock
	case f.Policy == protocol.PolicyWriteThrough:
		return TASMemory
	default:
		return TTAS
	}
}

// spinPause is the local work a waiter performs between spin checks,
// in cycles. Keeping it small models a tight test loop.
const spinPause = 2

func tas(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

// Acquire obtains the busy-wait lock at a using the given scheme. It
// blocks (in simulated time) until the lock is held.
func Acquire(p *sim.Proc, s Scheme, a addr.Addr) {
	switch s {
	case CacheLock:
		p.LockRead(a)
	case TAS:
		for p.RMW(a, tas) != 0 {
			p.Counts.Inc("sync.tas-retry")
			p.Compute(spinPause)
		}
	case TTAS:
		for {
			if p.RMW(a, tas) == 0 {
				break
			}
			p.Counts.Inc("sync.tas-retry")
			// Loop on the copy in the cache until the holder's
			// release invalidates (or updates) it.
			for p.ReadClass(a, interconnect.Sync) != 0 {
				p.Compute(spinPause)
			}
		}
	case TASMemory:
		for p.RMWMemory(a, tas) != 0 {
			p.Counts.Inc("sync.tas-retry")
			p.Compute(spinPause)
		}
	default:
		panic(fmt.Sprintf("syncprim: unknown scheme %v", s))
	}
	p.Counts.Inc("sync.acquire")
}

// Release frees the busy-wait lock at a.
func Release(p *sim.Proc, s Scheme, a addr.Addr) {
	switch s {
	case CacheLock:
		p.UnlockWrite(a, 0)
	default:
		p.WriteClass(a, 0, interconnect.Sync)
	}
	p.Counts.Inc("sync.release")
}

// RMWMethod selects one of the four atomic read-modify-write
// implementations of Section F.3, Feature 6.
type RMWMethod int

const (
	// MethodMemoryHold holds the main memory module throughout the
	// operation (Rudolph-Segall).
	MethodMemoryHold RMWMethod = iota
	// MethodCacheHold fetches the block with write privilege and holds
	// the cache (Frank; the Papamarcos-Patel bus-held variant).
	MethodCacheHold
	// MethodOptimistic defers the privilege upgrade to the write and
	// aborts-and-retries when the block was stolen in between.
	MethodOptimistic
	// MethodLockState uses the paper's cache lock state to lock just
	// the target atom (Section E.3).
	MethodLockState
)

var methodNames = [...]string{"memory-hold", "cache-hold", "optimistic", "lock-state"}

// String implements fmt.Stringer.
func (m RMWMethod) String() string {
	if int(m) < len(methodNames) {
		return methodNames[m]
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// AtomicApply runs f atomically on the word at a using the chosen
// method and returns the old value.
//
// MethodOptimistic relies on invalidation to detect interference, so
// it must not be used with update-based protocols (Dragon, Firefly,
// Rudolph-Segall in write-through mode); MethodLockState requires a
// protocol with the hardware lock.
func AtomicApply(p *sim.Proc, m RMWMethod, a addr.Addr, f func(uint64) uint64) uint64 {
	switch m {
	case MethodMemoryHold:
		return p.RMWMemory(a, f)
	case MethodCacheHold:
		return p.RMW(a, f)
	case MethodOptimistic:
		for {
			v := p.ReadClass(a, interconnect.Sync)
			if p.TryWrite(a, f(v)) {
				return v
			}
			p.Counts.Inc("sync.optimistic-retry")
		}
	case MethodLockState:
		v := p.LockRead(a)
		p.UnlockWrite(a, f(v))
		return v
	}
	panic(fmt.Sprintf("syncprim: unknown RMW method %v", m))
}

// AtomicAdd atomically adds delta to the word at a and returns the
// old value.
func AtomicAdd(p *sim.Proc, m RMWMethod, a addr.Addr, delta uint64) uint64 {
	return AtomicApply(p, m, a, func(v uint64) uint64 { return v + delta })
}

// Barrier is a sense-reversing busy-wait barrier built on the
// simulated memory: a counter word protected by a busy-wait lock and
// a sense word the waiters spin on in their caches — the structure a
// runtime would build from the paper's primitives.
type Barrier struct {
	n      int
	scheme Scheme
	lock   addr.Addr // its own block (the hard atom)
	count  addr.Addr // counter word
	sense  addr.Addr // generation word, spun on in-cache
}

// NewBarrier lays out a barrier for n participants. lock must start a
// dedicated block; state must point at a block with two free words
// (count at state, sense at state+1), distinct from the lock block.
func NewBarrier(n int, scheme Scheme, lock, state addr.Addr) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("syncprim: barrier of %d", n))
	}
	return &Barrier{n: n, scheme: scheme, lock: lock, count: state, sense: state + 1}
}

// Wait blocks (in simulated time) until all n participants arrive.
func (b *Barrier) Wait(p *sim.Proc) {
	gen := p.ReadClass(b.sense, interconnect.Sync)
	Acquire(p, b.scheme, b.lock)
	arrived := p.ReadClass(b.count, interconnect.Sync) + 1
	if int(arrived) == b.n {
		// Last arrival: reset the count and flip the sense,
		// releasing everyone spinning on it.
		p.WriteClass(b.count, 0, interconnect.Sync)
		p.WriteClass(b.sense, gen+1, interconnect.Sync)
		Release(p, b.scheme, b.lock)
		p.Counts.Inc("sync.barrier")
		return
	}
	p.WriteClass(b.count, arrived, interconnect.Sync)
	Release(p, b.scheme, b.lock)
	for p.ReadClass(b.sense, interconnect.Sync) == gen {
		p.Compute(spinPause)
	}
	p.Counts.Inc("sync.barrier")
}

// RWLock is a busy-wait readers-writer lock: Section C.1's two logical
// facets made concrete — atomicity (sole access for writers) and
// concurrency (shared access for readers) — built from a guard lock
// and a reader count in the guarded atom's block.
type RWLock struct {
	scheme Scheme
	guard  addr.Addr // the hard atom (its own block)
	count  addr.Addr // reader count word
}

// NewRWLock lays out a readers-writer lock: guard must start a
// dedicated block; count must be a word on a different block.
func NewRWLock(scheme Scheme, guard, count addr.Addr) *RWLock {
	return &RWLock{scheme: scheme, guard: guard, count: count}
}

// RLock acquires shared access: the guard excludes writers while the
// reader registers; the count itself is maintained with atomic
// read-modify-writes so releases never need the guard.
func (l *RWLock) RLock(p *sim.Proc) {
	Acquire(p, l.scheme, l.guard)
	p.RMW(l.count, func(v uint64) uint64 { return v + 1 })
	Release(p, l.scheme, l.guard)
	p.Counts.Inc("sync.rlock")
}

// RUnlock releases shared access (guard-free, so a writer spinning on
// the count while holding the guard cannot deadlock the readers).
func (l *RWLock) RUnlock(p *sim.Proc) {
	p.RMW(l.count, func(v uint64) uint64 { return v - 1 })
}

// Lock acquires sole access: it holds the guard and waits for the
// readers to drain (writer-preference is not implemented; the guard
// serializes competing writers).
func (l *RWLock) Lock(p *sim.Proc) {
	Acquire(p, l.scheme, l.guard)
	for p.ReadClass(l.count, interconnect.Sync) != 0 {
		p.Compute(spinPause)
	}
	p.Counts.Inc("sync.wlock")
}

// Unlock releases sole access.
func (l *RWLock) Unlock(p *sim.Proc) {
	Release(p, l.scheme, l.guard)
}
