package syncprim

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/sim"
)

func mkSystem(t *testing.T, name string, procs int) *sim.System {
	t.Helper()
	p := protocol.MustNew(name)
	cfg := sim.DefaultConfig(p)
	cfg.Procs = procs
	if p.Features().OneWordBlocks {
		cfg.Geometry = addr.MustGeometry(1, 1)
	}
	return sim.New(cfg)
}

func TestSchemeFor(t *testing.T) {
	cases := map[string]Scheme{
		"bitar":        CacheLock,
		"writethrough": TASMemory,
		"illinois":     TTAS,
		"goodman":      TTAS,
		"dragon":       TTAS,
	}
	for name, want := range cases {
		if got := SchemeFor(protocol.MustNew(name)); got != want {
			t.Errorf("SchemeFor(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	if CacheLock.String() != "cachelock" || TTAS.String() != "ttas" {
		t.Error("scheme names wrong")
	}
	if MethodLockState.String() != "lock-state" || MethodMemoryHold.String() != "memory-hold" {
		t.Error("method names wrong")
	}
}

// mutualExclusion runs a critical-section counter under the scheme
// and checks exactness. The counter lives in a different block from
// the lock word.
func mutualExclusion(t *testing.T, protoName string, scheme Scheme, procs, iters int) {
	t.Helper()
	s := mkSystem(t, protoName, procs)
	g := s.Geometry()
	lock := g.Base(0)
	counter := g.Base(4)
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		ws[i] = func(p *sim.Proc) {
			for k := 0; k < iters; k++ {
				Acquire(p, scheme, lock)
				v := p.Read(counter)
				p.Compute(3)
				p.Write(counter, v+1)
				Release(p, scheme, lock)
			}
		}
	}
	if err := s.Run(ws); err != nil {
		t.Fatalf("%s/%v: %v", protoName, scheme, err)
	}
	got := latest(s, counter)
	if got != uint64(procs*iters) {
		t.Errorf("%s/%v: counter = %d, want %d", protoName, scheme, got, procs*iters)
	}
}

func latest(s *sim.System, a addr.Addr) uint64 {
	b := s.Geometry().BlockOf(a)
	for _, c := range s.Caches {
		if c.Protocol().IsDirty(c.State(b)) {
			if v, ok := c.ReadWord(a); ok {
				return v
			}
		}
	}
	return s.Mem.ReadWord(a)
}

func TestCacheLockExclusion(t *testing.T) {
	mutualExclusion(t, "bitar", CacheLock, 4, 20)
}

func TestTASExclusionAcrossProtocols(t *testing.T) {
	for _, name := range []string{"goodman", "synapse", "illinois", "yen", "berkeley", "bitar"} {
		t.Run(name, func(t *testing.T) {
			mutualExclusion(t, name, TAS, 3, 10)
		})
	}
}

func TestTTASExclusionAcrossProtocols(t *testing.T) {
	for _, name := range all.Everything {
		if name == "writethrough" {
			continue // no cache-held atomicity; uses TASMemory below
		}
		t.Run(name, func(t *testing.T) {
			mutualExclusion(t, name, TTAS, 3, 10)
		})
	}
}

func TestTASMemoryExclusion(t *testing.T) {
	for _, name := range []string{"writethrough", "rudolph", "bitar"} {
		t.Run(name, func(t *testing.T) {
			mutualExclusion(t, name, TASMemory, 3, 8)
		})
	}
}

func TestCacheLockBeatsTTASOnBusTraffic(t *testing.T) {
	// The headline claim: with contention, the paper's scheme puts no
	// retries on the bus, while TTAS storms it on every handoff.
	const procs, iters = 4, 12
	traffic := func(scheme Scheme) int64 {
		s := mkSystem(t, "bitar", procs)
		lock := addr.Addr(0)
		ws := make([]func(*sim.Proc), procs)
		for i := range ws {
			ws[i] = func(p *sim.Proc) {
				for k := 0; k < iters; k++ {
					Acquire(p, scheme, lock)
					p.Compute(30)
					Release(p, scheme, lock)
				}
			}
		}
		if err := s.Run(ws); err != nil {
			t.Fatal(err)
		}
		return s.Counts.Get("bus.cycles")
	}
	lockCycles := traffic(CacheLock)
	ttasCycles := traffic(TTAS)
	if lockCycles >= ttasCycles {
		t.Errorf("cache lock bus cycles (%d) not below TTAS (%d)", lockCycles, ttasCycles)
	}
}

func TestAtomicAddMethods(t *testing.T) {
	type tc struct {
		proto  string
		method RMWMethod
	}
	cases := []tc{
		{"bitar", MethodMemoryHold},
		{"bitar", MethodCacheHold},
		{"bitar", MethodOptimistic},
		{"bitar", MethodLockState},
		{"illinois", MethodCacheHold},
		{"illinois", MethodOptimistic},
		{"goodman", MethodCacheHold},
		{"writethrough", MethodMemoryHold},
	}
	for _, c := range cases {
		t.Run(c.proto+"/"+c.method.String(), func(t *testing.T) {
			const procs, iters = 3, 12
			s := mkSystem(t, c.proto, procs)
			a := s.Geometry().Base(2)
			ws := make([]func(*sim.Proc), procs)
			for i := range ws {
				ws[i] = func(p *sim.Proc) {
					for k := 0; k < iters; k++ {
						AtomicAdd(p, c.method, a, 1)
					}
				}
			}
			if err := s.Run(ws); err != nil {
				t.Fatal(err)
			}
			if got := latest(s, a); got != procs*iters {
				t.Errorf("counter = %d, want %d", got, procs*iters)
			}
		})
	}
}

func TestOptimisticRetries(t *testing.T) {
	// Under contention the optimistic method must sometimes abort.
	const procs, iters = 4, 30
	s := mkSystem(t, "illinois", procs)
	a := s.Geometry().Base(0)
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		ws[i] = func(p *sim.Proc) {
			for k := 0; k < iters; k++ {
				AtomicAdd(p, MethodOptimistic, a, 1)
			}
		}
	}
	if err := s.Run(ws); err != nil {
		t.Fatal(err)
	}
	if got := latest(s, a); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
	var retries int64
	for _, p := range s.Procs {
		retries += p.Counts.Get("sync.optimistic-retry") + p.Counts.Get("rmw.abort")
	}
	if retries == 0 {
		t.Log("note: no optimistic aborts observed (low contention)")
	}
}

func TestBarrierPhases(t *testing.T) {
	for _, c := range []struct {
		proto  string
		scheme Scheme
	}{
		{"bitar", CacheLock},
		{"illinois", TTAS},
	} {
		t.Run(c.proto, func(t *testing.T) {
			const procs, phases = 4, 6
			s := mkSystem(t, c.proto, procs)
			g := s.Geometry()
			b := NewBarrier(procs, c.scheme, g.Base(0), g.Base(4))
			// Each processor writes its phase marker, waits, then
			// checks that everyone reached the same phase.
			marks := g.Base(8)
			var bad int
			ws := make([]func(*sim.Proc), procs)
			for i := range ws {
				i := i
				ws[i] = func(p *sim.Proc) {
					for ph := uint64(1); ph <= phases; ph++ {
						p.Write(marks+addr.Addr(i%g.BlockWords), ph)
						p.Compute(int64(3 * (i + 1)))
						b.Wait(p)
						for j := 0; j < procs && j < g.BlockWords; j++ {
							if got := p.Read(marks + addr.Addr(j)); got < ph {
								bad++
							}
						}
						b.Wait(p) // second barrier so writers can't race ahead
					}
				}
			}
			if err := s.Run(ws); err != nil {
				t.Fatal(err)
			}
			if bad != 0 {
				t.Errorf("%d stale phase markers observed across the barrier", bad)
			}
		})
	}
}

func TestBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0, CacheLock, 0, 4)
}

func TestRWLockExclusionAndSharing(t *testing.T) {
	const writers, readers, iters = 2, 3, 10
	s := mkSystem(t, "bitar", writers+readers)
	g := s.Geometry()
	l := NewRWLock(CacheLock, g.Base(0), g.Base(4))
	dataA, dataB := g.Base(8), g.Base(12)
	var torn int
	ws := make([]func(*sim.Proc), writers+readers)
	for i := 0; i < writers; i++ {
		ws[i] = func(p *sim.Proc) {
			for k := 1; k <= iters; k++ {
				l.Lock(p)
				// Write a pair that must always be observed together.
				v := p.Read(dataA) + 1
				p.Write(dataA, v)
				p.Compute(5)
				p.Write(dataB, v)
				l.Unlock(p)
				p.Compute(7)
			}
		}
	}
	for i := 0; i < readers; i++ {
		ws[writers+i] = func(p *sim.Proc) {
			for k := 0; k < iters*2; k++ {
				l.RLock(p)
				a := p.Read(dataA)
				p.Compute(3)
				b := p.Read(dataB)
				if a != b {
					torn++
				}
				l.RUnlock(p)
				p.Compute(4)
			}
		}
	}
	if err := s.Run(ws); err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Errorf("%d torn reads observed under the RW lock", torn)
	}
	if got := latest(s, dataA); got != writers*iters {
		t.Errorf("dataA = %d, want %d", got, writers*iters)
	}
}
