package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ArtifactRecord is one job in the JSON artifact file. The rendered
// output is recorded as a hash, not inline: the full text lives in
// the golden files (internal/report/testdata/golden), while the
// artifact file stays a compact, diffable manifest.
type ArtifactRecord struct {
	Name       string  `json:"name"`
	ConfigHash string  `json:"config_hash,omitempty"`
	OutputSHA  string  `json:"output_sha256"`
	OutputLen  int     `json:"output_len"`
	Pass       bool    `json:"pass"`
	WallMS     float64 `json:"wall_ms"`
	Cached     bool    `json:"cached"`
}

// ArtifactFile is the JSON manifest a run emits (-json) and the gate
// diffs against (-gate). Wall-clock and cache fields are informative
// only; the gate compares names, output hashes, and pass verdicts.
type ArtifactFile struct {
	Workers int              `json:"workers"`
	WallMS  float64          `json:"wall_ms"`
	Jobs    []ArtifactRecord `json:"jobs"`
}

// Manifest converts a run result into its artifact manifest.
func (r *Result) Manifest() *ArtifactFile {
	f := &ArtifactFile{Workers: r.Workers, WallMS: float64(r.Wall.Nanoseconds()) / 1e6}
	for i := range r.Jobs {
		j := &r.Jobs[i]
		sum := sha256.Sum256([]byte(j.Artifact.Output))
		f.Jobs = append(f.Jobs, ArtifactRecord{
			Name:      j.Artifact.Name,
			OutputSHA: hex.EncodeToString(sum[:]),
			OutputLen: len(j.Artifact.Output),
			Pass:      j.Artifact.Pass,
			WallMS:    float64(j.Wall.Nanoseconds()) / 1e6,
			Cached:    j.Cached,
		})
	}
	return f
}

// WriteArtifacts serializes the manifest to path.
func WriteArtifacts(path string, f *ArtifactFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadArtifacts loads a manifest.
func ReadArtifacts(path string) (*ArtifactFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f ArtifactFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("runner: artifact file %s: %w", path, err)
	}
	return &f, nil
}

// Gate diffs a run against a committed baseline manifest, writing one
// line per job to w (mirroring the BENCH_mcheck.json gate's report
// style). It returns the number of divergences: drifted output,
// failed pass verdict, or a baseline job missing from the run. New
// jobs absent from the baseline are reported but do not fail the
// gate — committing the refreshed manifest adopts them.
func Gate(w io.Writer, baseline *ArtifactFile, run *Result) int {
	base := make(map[string]ArtifactRecord, len(baseline.Jobs))
	for _, j := range baseline.Jobs {
		base[j.Name] = j
	}
	cur := run.Manifest()
	seen := make(map[string]bool, len(cur.Jobs))
	bad := 0
	for _, j := range cur.Jobs {
		seen[j.Name] = true
		b, ok := base[j.Name]
		switch {
		case !ok:
			fmt.Fprintf(w, "gate: %-28s NEW    (no baseline entry; refresh with -json)\n", j.Name)
		case !j.Pass:
			bad++
			fmt.Fprintf(w, "gate: %-28s FAIL   artifact diverges from the paper\n", j.Name)
		case j.OutputSHA != b.OutputSHA:
			bad++
			fmt.Fprintf(w, "gate: %-28s DRIFT  output changed (%d -> %d bytes); inspect, then refresh with -json\n",
				j.Name, b.OutputLen, j.OutputLen)
		default:
			fmt.Fprintf(w, "gate: %-28s OK     (%d bytes)\n", j.Name, j.OutputLen)
		}
	}
	var missing []string
	for name := range base {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		bad++
		fmt.Fprintf(w, "gate: %-28s GONE   baseline job not produced by this run\n", name)
	}
	return bad
}
