// Package runner is the parallel experiment engine: every artifact
// regeneration — an experiment table, a figure reproduction, a sweep
// point — becomes a Job executed by a worker pool, with three
// guarantees the sequential drivers could not give:
//
//  1. determinism — artifacts are merged in job order, so parallel
//     output is byte-identical to sequential for any worker count
//     (asserted by TestDeterministicAcrossWorkers, the same contract
//     internal/mcheck's parallel BFS keeps);
//  2. caching — an on-disk result cache under .runnercache/ keyed by
//     the job's config hash plus a source hash skips jobs whose code
//     and configuration are unchanged;
//  3. gating — results serialize to a JSON artifact file with per-job
//     wall-clock and output hashes, diffable against a committed
//     baseline (ARTIFACTS.json), extending the BENCH_mcheck.json
//     perf-gate pattern to the whole experiment suite.
package runner

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Artifact is one job's regenerated output.
type Artifact struct {
	// Name echoes the job name.
	Name string `json:"name"`
	// Output is the rendered text of the artifact (a table, a figure).
	Output string `json:"output"`
	// Pass is false when the artifact diverges from the paper's
	// expected behavior (a failed figure check, a Table 1 mismatch).
	Pass bool `json:"pass"`
}

// Job is one independent unit of regeneration work.
type Job struct {
	// Name identifies the job; it is the stable key the gate matches
	// baselines by, so renaming a job orphans its baseline entry.
	Name string
	// ConfigHash summarizes every runtime parameter the output depends
	// on. Together with the source hash it keys the result cache; jobs
	// whose parameters live entirely in code can use the name.
	ConfigHash string
	// Run regenerates the artifact. It must be deterministic and must
	// not depend on other jobs: the pool runs jobs in arbitrary order
	// and merges results by job index.
	Run func() (Artifact, error)
}

// JobResult pairs an artifact with its execution record.
type JobResult struct {
	Artifact Artifact
	// Wall is the job's wall-clock duration (zero when Cached).
	Wall time.Duration
	// Cached reports that the artifact came from the result cache.
	Cached bool
	// Shared reports that the artifact came from another concurrent
	// execution of the same cache key (single flight), not from this
	// caller running the job itself.
	Shared bool
}

// Result is one pool run over a job list.
type Result struct {
	// Jobs holds one entry per submitted job, in submission order
	// regardless of completion order.
	Jobs []JobResult
	// Workers is the pool size used.
	Workers int
	// Wall is the end-to-end wall-clock of the run.
	Wall time.Duration
}

// Output concatenates every artifact's output in job order — the
// deterministic merged stream the sequential drivers used to print.
func (r *Result) Output() string {
	n := 0
	for i := range r.Jobs {
		n += len(r.Jobs[i].Artifact.Output)
	}
	out := make([]byte, 0, n)
	for i := range r.Jobs {
		out = append(out, r.Jobs[i].Artifact.Output...)
	}
	return string(out)
}

// AllPass reports whether every artifact matched its expectation.
func (r *Result) AllPass() bool {
	for i := range r.Jobs {
		if !r.Jobs[i].Artifact.Pass {
			return false
		}
	}
	return true
}

// CachedCount returns how many jobs were served from the cache.
func (r *Result) CachedCount() int {
	n := 0
	for i := range r.Jobs {
		if r.Jobs[i].Cached {
			n++
		}
	}
	return n
}

// Slowest returns the names and wall-clocks of the k slowest
// non-cached jobs, longest first — the critical-path view.
func (r *Result) Slowest(k int) []JobResult {
	live := make([]JobResult, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if !j.Cached {
			live = append(live, j)
		}
	}
	sort.SliceStable(live, func(i, j int) bool { return live[i].Wall > live[j].Wall })
	if k < len(live) {
		live = live[:k]
	}
	return live
}

// Options configures one pool run.
type Options struct {
	// Workers is the pool size (-j N); values < 1 mean GOMAXPROCS.
	Workers int
	// Cache enables the on-disk result cache (see Cache). Nil runs
	// every job.
	Cache *Cache
}

// Run executes every job on a worker pool and merges the results in
// job order. The first job error aborts the run (remaining jobs may
// still execute; their results are discarded).
func Run(jobs []Job, opts Options) (*Result, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	for i, j := range jobs {
		if j.Run == nil {
			return nil, fmt.Errorf("runner: job %d (%q) has no Run function", i, j.Name)
		}
		if j.Name == "" {
			return nil, fmt.Errorf("runner: job %d has no name", i)
		}
	}

	start := time.Now()
	res := &Result{Jobs: make([]JobResult, len(jobs)), Workers: workers}

	type outcome struct {
		idx int
		err error
	}
	idxCh := make(chan int)
	outCh := make(chan outcome, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				jr, err := runOne(jobs[i], opts.Cache)
				res.Jobs[i] = jr // each worker writes a distinct index
				outCh <- outcome{idx: i, err: err}
			}
		}()
	}
	go func() {
		for i := range jobs {
			idxCh <- i
		}
		close(idxCh)
	}()

	var firstErr error
	for range jobs {
		o := <-outCh
		if o.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("runner: job %q: %w", jobs[o.idx].Name, o.err)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.Wall = time.Since(start)
	return res, nil
}

// runOne executes (or recalls) a single job. With a cache the
// execution goes through Cache.Do, so concurrent same-key jobs —
// possible when several pools share one cache, as the serving daemon's
// request pool does — collapse to a single run.
func runOne(j Job, c *Cache) (JobResult, error) {
	t0 := time.Now()
	if c == nil {
		art, err := safeRun(j)
		if err != nil {
			return JobResult{}, err
		}
		art.Name = j.Name
		return JobResult{Artifact: art, Wall: time.Since(t0)}, nil
	}
	art, cached, shared, err := c.Do(j, func() (Artifact, error) {
		art, err := safeRun(j)
		if err == nil {
			art.Name = j.Name
		}
		return art, err
	})
	if err != nil {
		return JobResult{}, err
	}
	wall := time.Since(t0)
	if cached {
		wall = 0
	}
	return JobResult{Artifact: art, Wall: wall, Cached: cached, Shared: shared}, nil
}

// safeRun converts a job panic into an error so one bad experiment
// cannot take down the whole regeneration (report generators panic on
// internal failures).
func safeRun(j Job) (art Artifact, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return j.Run()
}
