package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheDoSingleFlightStress races N goroutines on one cache key:
// exactly one may execute the job; everyone must receive the same
// artifact; and the on-disk entry must be a complete, valid record
// (the atomic rename-into-place contract).
func TestCacheDoSingleFlightStress(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c := testCache(t, dir, "src-stress")

	const n = 64
	var execs atomic.Int64
	gate := make(chan struct{})
	j := Job{Name: "hot", ConfigHash: "cfg"}
	run := func() (Artifact, error) {
		<-gate // hold every racer in one flight
		execs.Add(1)
		return Artifact{Name: "hot", Output: "expensive result\n", Pass: true}, nil
	}

	var wg sync.WaitGroup
	arts := make([]Artifact, n)
	errs := make([]error, n)
	shareds := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], _, shareds[i], errs[i] = c.Do(j, run)
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("ran the job %d times under single flight, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if arts[i].Output != "expensive result\n" {
			t.Fatalf("racer %d got %q", i, arts[i].Output)
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d racers report shared=false, want 1", leaders)
	}

	// The stored entry must be complete and valid.
	if art, ok := c.Get(j); !ok || art.Output != "expensive result\n" {
		t.Fatalf("cache entry after stress: ok=%v art=%+v", ok, art)
	}
	assertNoTempDroppings(t, dir)
}

// TestCachePutConcurrentSameKey hammers raw Put from many goroutines —
// the cross-process shape of the race, where single flight cannot help
// — and asserts the surviving entry is whole.
func TestCachePutConcurrentSameKey(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c := testCache(t, dir, "src-put")
	j := Job{Name: "contended", ConfigHash: "cfg"}

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Same key, same body: last rename wins, any winner is valid.
			c.Put(j, Artifact{Name: "contended", Output: "payload\n", Pass: true})
		}(i)
	}
	wg.Wait()

	data, err := os.ReadFile(filepath.Join(dir, c.key(j)+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("entry is not valid JSON after concurrent puts: %v\n%s", err, data)
	}
	if e.Artifact.Output != "payload\n" {
		t.Fatalf("entry corrupted: %+v", e)
	}
	assertNoTempDroppings(t, dir)
}

// assertNoTempDroppings fails if abandoned temp files remain.
func assertNoTempDroppings(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("stray temp file left behind: %s", e.Name())
		}
	}
}

func TestPoolSubmitRunsJobs(t *testing.T) {
	p := NewPool(4, nil)
	defer p.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("out-%d", i)
			jr, err := p.Submit(context.Background(), Job{
				Name: fmt.Sprintf("job-%d", i),
				Run:  func() (Artifact, error) { return Artifact{Output: want, Pass: true}, nil },
			})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			if jr.Artifact.Output != want {
				t.Errorf("job %d: got %q", i, jr.Artifact.Output)
			}
		}(i)
	}
	wg.Wait()
}

func TestPoolSubmitAbandonsQueuedJobOnCancel(t *testing.T) {
	p := NewPool(1, nil)
	defer p.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), Job{Name: "hog", Run: func() (Artifact, error) {
		close(started)
		<-block
		return Artifact{}, nil
	}})
	<-started // the only worker is busy

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.Submit(ctx, Job{Name: "queued", Run: func() (Artifact, error) {
		t.Error("abandoned job ran")
		return Artifact{}, nil
	}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued submit: err=%v, want deadline exceeded", err)
	}
	close(block)
}

func TestPoolCloseDrainsAndRejects(t *testing.T) {
	p := NewPool(2, nil)
	var finished atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), Job{Name: "j", Run: func() (Artifact, error) {
				time.Sleep(5 * time.Millisecond)
				finished.Add(1)
				return Artifact{Pass: true}, nil
			}})
		}()
	}
	wg.Wait()
	p.Close()
	if got := finished.Load(); got != 6 {
		t.Fatalf("close drained %d/6 jobs", got)
	}
	if _, err := p.Submit(context.Background(), Job{Name: "late", Run: func() (Artifact, error) { return Artifact{}, nil }}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after close: err=%v, want ErrPoolClosed", err)
	}
}

// TestPoolSharesCacheSingleFlight pins the daemon-shaped interaction:
// concurrent identical submissions through one pool with a cache run
// the job once and share the artifact.
func TestPoolSharesCacheSingleFlight(t *testing.T) {
	c := testCache(t, filepath.Join(t.TempDir(), "cache"), "src-pool")
	p := NewPool(8, c)
	defer p.Close()

	var execs atomic.Int64
	gate := make(chan struct{})
	j := Job{Name: "dedup", ConfigHash: "same", Run: func() (Artifact, error) {
		<-gate
		execs.Add(1)
		return Artifact{Output: "once\n", Pass: true}, nil
	}}
	var wg sync.WaitGroup
	results := make([]JobResult, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jr, err := p.Submit(context.Background(), j)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			results[i] = jr
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("pool ran the job %d times, want 1", got)
	}
	// One leader executed; every other submission either joined its
	// flight (Shared) or arrived just after it stored the entry
	// (Cached). Either way, nobody re-ran the job.
	leaders := 0
	for _, jr := range results {
		if jr.Artifact.Output != "once\n" {
			t.Fatalf("wrong artifact: %+v", jr)
		}
		if !jr.Shared && !jr.Cached {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d submissions executed the job themselves, want 1", leaders)
	}
}
