package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"cachesync/internal/flight"
)

// Cache is the on-disk result cache. Entries are keyed by
// sha256(source hash | job name | config hash): any change to the Go
// sources, the job's identity, or its parameters misses, so a warm
// cache can only replay results the current code would reproduce.
//
// A Cache is safe for concurrent use. Same-key writers are collapsed
// by Do's in-process single flight, and every writer lands its entry
// via a unique temp file renamed into place, so even independent
// processes sharing the directory can only ever observe a complete
// entry.
type Cache struct {
	dir        string
	sourceHash string
	flight     flight.Group[doResult]
	fetcher    atomic.Pointer[Fetcher]
}

// Fetcher consults an external source — in the cluster, the other
// replicas' GET /v1/artifact/{key} endpoints — for a cache entry by
// raw key, returning the entry's stored bytes. It runs on the Do miss
// path, so it must bound its own latency; a slow fetcher delays every
// cold request.
type Fetcher func(key string) ([]byte, bool)

// SetFetcher installs (or, with nil, removes) the external entry
// source consulted on local misses. Entries a fetcher returns are
// validated against the requested key and this cache's source hash
// before being trusted, then stored locally — a warm entry anywhere in
// a fleet of same-source processes becomes a local hit everywhere it
// is asked for.
func (c *Cache) SetFetcher(f Fetcher) {
	if f == nil {
		c.fetcher.Store(nil)
		return
	}
	c.fetcher.Store(&f)
}

// doResult is what one single-flight execution shares with its
// followers.
type doResult struct {
	art    Artifact
	cached bool
}

// DefaultCacheDir is the conventional cache location at the module
// root (git-ignored).
const DefaultCacheDir = ".runnercache"

// OpenCache opens (creating if needed) the cache directory and
// computes the source hash. An empty dir selects DefaultCacheDir
// under the module root; a relative dir is also resolved against the
// module root, so cached results are shared no matter which directory
// the driver runs from.
func OpenCache(dir string) (*Cache, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	if dir == "" {
		dir = DefaultCacheDir
	}
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(root, dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	src, err := SourceHash(root)
	if err != nil {
		return nil, err
	}
	return &Cache{dir: dir, sourceHash: src}, nil
}

// SourceHashValue exposes the computed source hash (for artifact
// metadata).
func (c *Cache) SourceHashValue() string { return c.sourceHash }

// key derives the entry filename for a job.
func (c *Cache) key(j Job) string {
	return c.KeyFor(j.Name, j.ConfigHash)
}

// KeyFor derives the content-addressed raw key for a (job name, config
// hash) pair under this cache's source tree. Two processes built from
// the same sources compute identical keys, which is what makes raw
// keys exchangeable between replicas.
func (c *Cache) KeyFor(name, configHash string) string {
	h := sha256.New()
	io.WriteString(h, c.sourceHash)
	io.WriteString(h, "\x00")
	io.WriteString(h, name)
	io.WriteString(h, "\x00")
	io.WriteString(h, configHash)
	return hex.EncodeToString(h.Sum(nil))
}

// validKey reports whether key has the shape KeyFor produces —
// exactly 64 lowercase hex digits. Raw keys arrive over the network
// (GET /v1/artifact/{key}); anything else must not touch the
// filesystem.
func validKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// cacheEntry is the stored form of one artifact.
type cacheEntry struct {
	Name       string   `json:"name"`
	ConfigHash string   `json:"config_hash"`
	SourceHash string   `json:"source_hash"`
	Artifact   Artifact `json:"artifact"`
}

// Get recalls a job's artifact, reporting whether a valid entry
// existed. Unreadable or mismatched entries are treated as misses.
func (c *Cache) Get(j Job) (Artifact, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, c.key(j)+".json"))
	if err != nil {
		return Artifact{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return Artifact{}, false
	}
	// The key already encodes all three fields; the body check guards
	// against hash-file collisions from manual tampering.
	if e.Name != j.Name || e.ConfigHash != j.ConfigHash || e.SourceHash != c.sourceHash {
		return Artifact{}, false
	}
	return e.Artifact, true
}

// GetRaw recalls an entry's stored bytes by raw key — the serving
// side of the fleet artifact exchange. It only answers for well-formed
// keys whose stored entry verifies: the embedded fields must re-derive
// the requested key under this cache's source hash, so a process built
// from different sources (or a tampered file) reads as a miss.
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.SourceHash != c.sourceHash || c.KeyFor(e.Name, e.ConfigHash) != key {
		return nil, false
	}
	return data, true
}

// PutRaw validates and stores fetched entry bytes under key,
// returning the contained artifact. The entry is rejected — not
// stored — unless its embedded name, config hash, and source hash
// re-derive exactly the key it was requested under: a peer cannot
// poison this cache with an entry for a different job, a different
// configuration, or a different source tree.
func (c *Cache) PutRaw(key string, data []byte) (Artifact, bool) {
	if !validKey(key) {
		return Artifact{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return Artifact{}, false
	}
	if e.SourceHash != c.sourceHash || c.KeyFor(e.Name, e.ConfigHash) != key {
		return Artifact{}, false
	}
	c.Put(Job{Name: e.Name, ConfigHash: e.ConfigHash}, e.Artifact)
	return e.Artifact, true
}

// Put stores a job's artifact. Failures are deliberately silent: a
// read-only disk degrades to an always-miss cache, never to a failed
// regeneration. The entry is written to a unique temp file and renamed
// into place, so concurrent writers of the same key — racing
// goroutines, or entirely separate processes — can never leave a
// truncated or interleaved entry behind: rename is atomic, and last
// writer wins with an identical body.
func (c *Cache) Put(j Job, art Artifact) {
	e := cacheEntry{Name: j.Name, ConfigHash: j.ConfigHash, SourceHash: c.sourceHash, Artifact: art}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	path := filepath.Join(c.dir, c.key(j)+".json")
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
	}
}

// Do runs a job through the cache with single-flight semantics: a hit
// returns the stored artifact; on a miss, exactly one of any set of
// concurrent same-key callers executes run while the rest wait and
// share its artifact. Successful executions are stored; errors are
// shared with the waiting callers and never cached.
func (c *Cache) Do(j Job, run func() (Artifact, error)) (art Artifact, cached, shared bool, err error) {
	key := c.key(j)
	r, shared, err := c.flight.Do(key, func() (doResult, error) {
		// Recheck under the flight: a caller that queued behind a
		// completed leader finds the entry the leader just stored.
		if art, ok := c.Get(j); ok {
			return doResult{art: art, cached: true}, nil
		}
		// Local miss: ask the fleet before computing. A validated peer
		// entry is stored locally and counts as a cache hit — it was
		// produced by the same sources from the same configuration.
		if fp := c.fetcher.Load(); fp != nil {
			if data, ok := (*fp)(key); ok {
				if art, ok := c.PutRaw(key, data); ok {
					return doResult{art: art, cached: true}, nil
				}
			}
		}
		art, err := run()
		if err != nil {
			return doResult{}, err
		}
		c.Put(j, art)
		return doResult{art: art}, nil
	})
	if err != nil {
		return Artifact{}, false, shared, err
	}
	return r.art, r.cached, shared, nil
}

// moduleRoot finds the enclosing Go module root (the directory
// holding go.mod) from the working directory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("runner: no go.mod above the working directory (cache needs a module root)")
		}
		dir = parent
	}
}

// SourceHash hashes every .go file plus go.mod under root (skipping
// testdata, the cache itself, and dot-directories), in sorted path
// order. It is the "git-clean source hash" of the cache key, computed
// from working-tree contents rather than git metadata so uncommitted
// edits invalidate the cache exactly like committed ones.
func SourceHash(root string) (string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") || name == "go.mod" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("runner: source walk: %w", err)
	}
	sort.Strings(files)
	h := sha256.New()
	for _, f := range files {
		rel, err := filepath.Rel(root, f)
		if err != nil {
			rel = f
		}
		data, err := os.ReadFile(f)
		if err != nil {
			return "", fmt.Errorf("runner: source hash: %w", err)
		}
		fmt.Fprintf(h, "%s\x00%d\x00", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
