package runner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openCacheAt opens a cache rooted in its own directory. OpenCache
// resolves relative dirs against the module root, so tests hand it an
// absolute temp dir.
func openCacheAt(t *testing.T, dir string) *Cache {
	t.Helper()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyForStableAcrossCaches(t *testing.T) {
	a := openCacheAt(t, filepath.Join(t.TempDir(), "a"))
	b := openCacheAt(t, filepath.Join(t.TempDir(), "b"))
	if a.KeyFor("simulate", "cfg1") != b.KeyFor("simulate", "cfg1") {
		t.Fatal("same source tree, same job: keys differ between cache instances")
	}
	if a.KeyFor("simulate", "cfg1") == a.KeyFor("simulate", "cfg2") {
		t.Fatal("different configs produced the same key")
	}
	if !validKey(a.KeyFor("x", "y")) {
		t.Fatal("KeyFor produced an invalid raw key")
	}
}

func TestGetRawRejectsBadKeysAndTampering(t *testing.T) {
	c := openCacheAt(t, filepath.Join(t.TempDir(), "cache"))
	j := Job{Name: "simulate", ConfigHash: "cfg"}
	c.Put(j, Artifact{Name: "simulate", Output: "out", Pass: true})
	key := c.KeyFor(j.Name, j.ConfigHash)

	if _, ok := c.GetRaw(key); !ok {
		t.Fatal("GetRaw missed a stored entry")
	}
	for _, bad := range []string{"", "..", "../../etc/passwd", strings.Repeat("Z", 64), key[:40]} {
		if _, ok := c.GetRaw(bad); ok {
			t.Fatalf("GetRaw answered for malformed key %q", bad)
		}
	}

	// An entry renamed to a key it does not derive to must read as a miss.
	other := c.KeyFor("simulate", "other-cfg")
	data, _ := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err := os.WriteFile(filepath.Join(c.dir, other+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetRaw(other); ok {
		t.Fatal("GetRaw served an entry under a key it does not verify against")
	}
}

func TestPutRawValidates(t *testing.T) {
	a := openCacheAt(t, filepath.Join(t.TempDir(), "a"))
	b := openCacheAt(t, filepath.Join(t.TempDir(), "b"))
	j := Job{Name: "simulate", ConfigHash: "cfg"}
	a.Put(j, Artifact{Name: "simulate", Output: "payload", Pass: true})
	key := a.KeyFor(j.Name, j.ConfigHash)
	data, ok := a.GetRaw(key)
	if !ok {
		t.Fatal("GetRaw missed")
	}

	if art, ok := b.PutRaw(key, data); !ok || art.Output != "payload" {
		t.Fatalf("PutRaw rejected a valid peer entry (ok=%v art=%+v)", ok, art)
	}
	if got, ok := b.Get(j); !ok || got.Output != "payload" {
		t.Fatal("PutRaw did not land the entry in the local cache")
	}

	wrongKey := b.KeyFor("simulate", "different")
	if _, ok := b.PutRaw(wrongKey, data); ok {
		t.Fatal("PutRaw accepted an entry under a mismatched key")
	}
	if _, ok := b.PutRaw(key, []byte("{not json")); ok {
		t.Fatal("PutRaw accepted garbage bytes")
	}
}

func TestDoConsultsFetcherOnMiss(t *testing.T) {
	a := openCacheAt(t, filepath.Join(t.TempDir(), "a"))
	b := openCacheAt(t, filepath.Join(t.TempDir(), "b"))
	j := Job{Name: "simulate", ConfigHash: "cfg"}

	// Warm A the normal way.
	if _, _, _, err := a.Do(j, func() (Artifact, error) {
		return Artifact{Name: "simulate", Output: "computed-on-a", Pass: true}, nil
	}); err != nil {
		t.Fatal(err)
	}

	fetches := 0
	b.SetFetcher(func(key string) ([]byte, bool) {
		fetches++
		return a.GetRaw(key)
	})
	ran := false
	art, cached, _, err := b.Do(j, func() (Artifact, error) {
		ran = true
		return Artifact{Name: "simulate", Output: "computed-on-b", Pass: true}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("B computed despite a fleet-warm entry")
	}
	if !cached || art.Output != "computed-on-a" {
		t.Fatalf("peer entry not served as a cache hit: cached=%v output=%q", cached, art.Output)
	}
	if fetches != 1 {
		t.Fatalf("fetcher ran %d times, want 1", fetches)
	}

	// Second call is a pure local hit: the fetched entry was stored.
	art, cached, _, err = b.Do(j, func() (Artifact, error) {
		t.Fatal("recomputed after a peer fetch")
		return Artifact{}, nil
	})
	if err != nil || !cached || art.Output != "computed-on-a" {
		t.Fatalf("local re-read failed: cached=%v err=%v", cached, err)
	}
	if fetches != 1 {
		t.Fatalf("fetcher consulted again on a local hit (%d fetches)", fetches)
	}
}

// TestDoFetcherMissFallsThrough: a fetcher with no answer must not
// block computation, and invalid peer bytes must be ignored.
func TestDoFetcherMissFallsThrough(t *testing.T) {
	c := openCacheAt(t, filepath.Join(t.TempDir(), "c"))
	c.SetFetcher(func(key string) ([]byte, bool) { return []byte("junk"), true })
	art, cached, _, err := c.Do(Job{Name: "simulate", ConfigHash: "x"}, func() (Artifact, error) {
		return Artifact{Name: "simulate", Output: "fresh"}, nil
	})
	if err != nil || cached || art.Output != "fresh" {
		t.Fatalf("junk peer bytes disturbed the compute path: cached=%v err=%v", cached, err)
	}
}
