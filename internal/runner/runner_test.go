package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeJobs builds n jobs whose outputs are order-sensitive and whose
// durations are staggered so completion order differs from submission
// order under any parallel pool.
func fakeJobs(n int, ran *atomic.Int64) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			Name:       fmt.Sprintf("job-%02d", i),
			ConfigHash: fmt.Sprintf("cfg-%d", i),
			Run: func() (Artifact, error) {
				// Earlier jobs sleep longer: with >1 worker they finish
				// after later jobs, so any merge that follows completion
				// order scrambles the output.
				time.Sleep(time.Duration((n-i)%4) * time.Millisecond)
				if ran != nil {
					ran.Add(1)
				}
				return Artifact{Output: fmt.Sprintf("artifact %02d\n", i), Pass: true}, nil
			},
		}
	}
	return jobs
}

// TestDeterministicAcrossWorkers asserts the runner's core contract:
// the merged output is byte-identical for any worker count — the same
// guarantee the mcheck parallel BFS keeps for its exploration.
func TestDeterministicAcrossWorkers(t *testing.T) {
	jobs := fakeJobs(16, nil)
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := Run(jobs, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Output()
		if workers == 1 {
			want = got
			for i := 0; i < 16; i++ {
				if !strings.Contains(want, fmt.Sprintf("artifact %02d", i)) {
					t.Fatalf("sequential output missing job %d:\n%s", i, want)
				}
			}
			continue
		}
		if got != want {
			t.Errorf("workers=%d output differs from sequential:\n got: %q\nwant: %q", workers, got, want)
		}
	}
}

func TestRunErrorPropagates(t *testing.T) {
	jobs := fakeJobs(4, nil)
	jobs[2].Run = func() (Artifact, error) { return Artifact{}, fmt.Errorf("boom") }
	if _, err := Run(jobs, Options{Workers: 2}); err == nil || !strings.Contains(err.Error(), "job-02") {
		t.Fatalf("want error naming job-02, got %v", err)
	}
}

func TestRunRecoversPanic(t *testing.T) {
	jobs := fakeJobs(3, nil)
	jobs[1].Run = func() (Artifact, error) { panic("experiment exploded") }
	_, err := Run(jobs, Options{Workers: 3})
	if err == nil || !strings.Contains(err.Error(), "experiment exploded") {
		t.Fatalf("want panic converted to error, got %v", err)
	}
}

func TestRunValidatesJobs(t *testing.T) {
	if _, err := Run([]Job{{Name: "x"}}, Options{}); err == nil {
		t.Error("nil Run accepted")
	}
	if _, err := Run([]Job{{Run: func() (Artifact, error) { return Artifact{}, nil }}}, Options{}); err == nil {
		t.Error("empty name accepted")
	}
}

// testCache opens a cache rooted in a temp dir with a fixed source
// hash, so tests control invalidation explicitly.
func testCache(t *testing.T, dir, sourceHash string) *Cache {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	return &Cache{dir: dir, sourceHash: sourceHash}
}

func TestCacheSkipsUnchangedJobs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	c := testCache(t, dir, "src-v1")

	var ran atomic.Int64
	jobs := fakeJobs(8, &ran)

	cold, err := Run(jobs, Options{Workers: 4, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 8 {
		t.Fatalf("cold run executed %d jobs, want 8", got)
	}
	if cold.CachedCount() != 0 {
		t.Fatalf("cold run reported %d cached jobs", cold.CachedCount())
	}

	warm, err := Run(jobs, Options{Workers: 4, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 8 {
		t.Fatalf("warm run re-executed jobs: %d total runs, want 8", got)
	}
	if warm.CachedCount() != 8 {
		t.Fatalf("warm run served %d/8 from cache", warm.CachedCount())
	}
	if warm.Output() != cold.Output() {
		t.Errorf("cached output differs:\n got: %q\nwant: %q", warm.Output(), cold.Output())
	}
}

func TestCacheInvalidatesOnSourceAndConfigChange(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	var ran atomic.Int64
	jobs := fakeJobs(3, &ran)

	if _, err := Run(jobs, Options{Workers: 1, Cache: testCache(t, dir, "src-v1")}); err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("cold run executed %d jobs", got)
	}

	// A source change misses every entry.
	res, err := Run(jobs, Options{Workers: 1, Cache: testCache(t, dir, "src-v2")})
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedCount() != 0 || ran.Load() != 6 {
		t.Fatalf("source change did not invalidate: cached=%d runs=%d", res.CachedCount(), ran.Load())
	}

	// A config change misses only the changed job.
	jobs[1].ConfigHash = "cfg-1-reparameterized"
	res, err = Run(jobs, Options{Workers: 1, Cache: testCache(t, dir, "src-v2")})
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedCount() != 2 || ran.Load() != 7 {
		t.Fatalf("config change: cached=%d runs=%d, want 2 and 7", res.CachedCount(), ran.Load())
	}
}

func TestSourceHashStableAndSensitive(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module x\n")
	write("a.go", "package x\n")
	write("sub/b.go", "package sub\n")
	write("sub/testdata/ignored.go", "package ignored\n")
	write(".hidden/c.go", "package hidden\n")
	write("README.md", "not source\n")

	h1, err := SourceHash(root)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := SourceHash(root)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("source hash not stable across calls")
	}

	// Non-source and skipped-directory edits do not change the hash.
	write("README.md", "still not source\n")
	write("sub/testdata/ignored.go", "package changed\n")
	write(".hidden/c.go", "package changed\n")
	if h3, _ := SourceHash(root); h3 != h1 {
		t.Error("hash changed on non-source / testdata / dot-dir edits")
	}

	// A source edit does.
	write("sub/b.go", "package sub // edited\n")
	if h4, _ := SourceHash(root); h4 == h1 {
		t.Error("hash unchanged after .go edit")
	}
}

func TestGateDetectsDriftAndFailures(t *testing.T) {
	jobs := fakeJobs(4, nil)
	res, err := Run(jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	baseline := res.Manifest()

	// Identical run: clean gate.
	var b strings.Builder
	if bad := Gate(&b, baseline, res); bad != 0 {
		t.Fatalf("identical run gated %d divergences:\n%s", bad, b.String())
	}

	// Drifted output, a failed artifact, and a vanished job.
	jobs[0].Run = func() (Artifact, error) { return Artifact{Output: "drifted\n", Pass: true}, nil }
	jobs[1].Run = func() (Artifact, error) { return Artifact{Output: "artifact 01\n", Pass: false}, nil }
	res2, err := Run(jobs[:3], Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	bad := Gate(&b, baseline, res2)
	if bad != 3 {
		t.Fatalf("want 3 divergences (drift, fail, gone), got %d:\n%s", bad, b.String())
	}
	out := b.String()
	for _, want := range []string{"DRIFT", "FAIL", "GONE", "job-03"} {
		if !strings.Contains(out, want) {
			t.Errorf("gate report missing %q:\n%s", want, out)
		}
	}

	// A brand-new job is reported but does not fail the gate.
	extra := append(fakeJobs(4, nil), Job{Name: "novel", ConfigHash: "n",
		Run: func() (Artifact, error) { return Artifact{Output: "new\n", Pass: true}, nil }})
	res3, err := Run(extra, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if bad := Gate(&b, baseline, res3); bad != 0 {
		t.Fatalf("new job failed the gate (%d):\n%s", bad, b.String())
	}
	if !strings.Contains(b.String(), "NEW") {
		t.Errorf("gate report missing NEW line:\n%s", b.String())
	}
}

func TestArtifactFileRoundTrip(t *testing.T) {
	jobs := fakeJobs(3, nil)
	res, err := Run(jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "artifacts.json")
	if err := WriteArtifacts(path, res.Manifest()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifacts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 3 {
		t.Fatalf("round trip lost jobs: %d", len(got.Jobs))
	}
	var b strings.Builder
	if bad := Gate(&b, got, res); bad != 0 {
		t.Fatalf("round-tripped manifest gated %d divergences:\n%s", bad, b.String())
	}
}

func TestSlowestReportsCriticalPath(t *testing.T) {
	jobs := fakeJobs(6, nil)
	res, err := Run(jobs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	top := res.Slowest(2)
	if len(top) != 2 {
		t.Fatalf("want 2 entries, got %d", len(top))
	}
	if top[0].Wall < top[1].Wall {
		t.Error("Slowest not sorted longest-first")
	}
}
