package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = fmt.Errorf("runner: pool is closed")

// Pool is a persistent worker pool for individually submitted jobs —
// the long-running counterpart of Run's batch pool. The serving daemon
// keeps one Pool for the process lifetime and funnels every request
// through it, so the execution-width bound and the result cache are
// shared across requests exactly as they are across the jobs of one
// batch.
type Pool struct {
	tasks chan poolTask
	cache *Cache

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup // workers
	subs   sync.WaitGroup // submissions handed to workers
}

type poolTask struct {
	ctx context.Context
	job Job
	res chan poolDone
}

type poolDone struct {
	jr  JobResult
	err error
}

// NewPool starts a pool of workers sharing cache (nil disables
// caching). Workers < 1 means GOMAXPROCS.
func NewPool(workers int, cache *Cache) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan poolTask), cache: cache}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				if err := t.ctx.Err(); err != nil {
					// The submitter gave up while queued; don't burn a
					// worker on a result nobody wants.
					t.res <- poolDone{err: err}
					p.subs.Done()
					continue
				}
				jr, err := runOne(t.job, p.cache)
				t.res <- poolDone{jr: jr, err: err}
				p.subs.Done()
			}
		}()
	}
	return p
}

// Submit hands one job to the pool and waits for its result. While
// waiting for a free worker the call can be abandoned via ctx; once a
// worker picks the job up, Submit returns its outcome — the job itself
// is responsible for honoring ctx (capture it in the Run closure), and
// a caller that stops waiting leaves the worker to finish and discard
// the result.
func (p *Pool) Submit(ctx context.Context, j Job) (JobResult, error) {
	if j.Run == nil {
		return JobResult{}, fmt.Errorf("runner: job %q has no Run function", j.Name)
	}
	if j.Name == "" {
		return JobResult{}, fmt.Errorf("runner: job has no name")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return JobResult{}, ErrPoolClosed
	}
	p.subs.Add(1)
	p.mu.Unlock()

	t := poolTask{ctx: ctx, job: j, res: make(chan poolDone, 1)}
	select {
	case p.tasks <- t:
	case <-ctx.Done():
		p.subs.Done()
		return JobResult{}, ctx.Err()
	}
	select {
	case d := <-t.res:
		return d.jr, d.err
	case <-ctx.Done():
		// The worker's buffered send still lands; the result is dropped.
		return JobResult{}, ctx.Err()
	}
}

// Close waits for every handed-off job to finish, then stops the
// workers. Submit calls racing Close fail with ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.subs.Wait()
	close(p.tasks)
	p.wg.Wait()
}
