package cluster

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cachesync/internal/portfile"
)

// Options sizes and populates the fleet.
type Options struct {
	// Spawn is how many cachesyncd replicas the coordinator starts as
	// child processes.
	Spawn int
	// Binary is the cachesyncd executable to spawn (required when
	// Spawn > 0).
	Binary string
	// Dir is the fleet state directory: per-replica portfiles
	// (<name>.port), pidfiles (<name>.pid), result caches
	// (cache-<name>/), and log files (<name>.log). Spawned replicas
	// also use it as their peer-discovery directory, so every
	// replica's cache is reachable from every other's miss path.
	Dir string
	// Attach lists externally managed replicas to route to, as
	// host:port addresses.
	Attach []string
	// ReplicaWorkers/ReplicaQueue are passed to spawned replicas
	// (cachesyncd -workers/-queue).
	ReplicaWorkers int
	ReplicaQueue   int
	// HealthInterval is the probe period (default 250ms).
	HealthInterval time.Duration
	// FailAfter ejects a replica after this many consecutive failed
	// probes (default 2). One healthy probe re-admits it.
	FailAfter int
	// Respawn restarts a spawned replica whose process exits while the
	// cluster is running — the recovery half of the chaos story.
	Respawn bool
	// StartTimeout bounds the portfile+health handshake of a spawned
	// replica (default 15s).
	StartTimeout time.Duration
	// RetryBaseDelay seeds the bounded backoff between routing
	// attempts (default 10ms, doubling per attempt, capped at 160ms).
	RetryBaseDelay time.Duration
	// Logf, when set, receives coordinator events (spawns, ejections,
	// re-admissions).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.HealthInterval <= 0 {
		o.HealthInterval = 250 * time.Millisecond
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 2
	}
	if o.StartTimeout <= 0 {
		o.StartTimeout = 15 * time.Second
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = 10 * time.Millisecond
	}
	return o
}

// replica is one fleet member.
type replica struct {
	name    string
	spawned bool

	mu   sync.Mutex
	addr string
	cmd  *exec.Cmd
	gen  int // respawn generation

	healthy  atomic.Bool
	fails    int // consecutive probe failures; health loop only
	respawns atomic.Int64
}

func (r *replica) address() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addr
}

// ReplicaStatus is one replica's externally visible state (healthz).
type ReplicaStatus struct {
	Name     string `json:"name"`
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Spawned  bool   `json:"spawned"`
	Respawns int64  `json:"respawns,omitempty"`
}

// Cluster is the coordinator: fleet membership, health, and the
// router handler.
type Cluster struct {
	opts     Options
	ring     *ring
	replicas map[string]*replica
	order    []string
	client   *http.Client
	met      *rmetrics
	rr       atomic.Int64 // round-robin cursor for keyless requests

	stopping atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup
	closeMu  sync.Mutex
	closed   bool
}

// New spawns and attaches the fleet, waits for spawned replicas to
// come up, and starts health supervision. It fails only when no
// replica at all is healthy: a partially degraded fleet starts and
// serves, with the dead members ejected until their health probes
// recover (the stale-portfile case — an address that reads fine but
// refuses connections — lands here by design).
func New(opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	if opts.Spawn > 0 && opts.Binary == "" {
		return nil, fmt.Errorf("cluster: Spawn=%d needs Binary", opts.Spawn)
	}
	if opts.Spawn > 0 && opts.Dir == "" {
		return nil, fmt.Errorf("cluster: Spawn=%d needs Dir", opts.Spawn)
	}
	if opts.Spawn == 0 && len(opts.Attach) == 0 {
		return nil, fmt.Errorf("cluster: nothing to do (Spawn=0, no Attach)")
	}
	c := &Cluster{
		opts:     opts,
		replicas: make(map[string]*replica),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}},
		met:  newRMetrics(),
		stop: make(chan struct{}),
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
	}
	for i := 0; i < opts.Spawn; i++ {
		name := fmt.Sprintf("r%d", i)
		rep := &replica{name: name, spawned: true}
		c.replicas[name] = rep
		c.order = append(c.order, name)
	}
	for i, addr := range opts.Attach {
		name := fmt.Sprintf("a%d", i)
		rep := &replica{name: name, addr: addr}
		c.replicas[name] = rep
		c.order = append(c.order, name)
	}
	c.ring = newRing(c.order)

	// Launch every spawned replica, then wait for the fleet handshake.
	for _, name := range c.order {
		rep := c.replicas[name]
		if rep.spawned {
			if err := c.launch(rep); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.StartTimeout)
	defer cancel()
	healthyAny := false
	for _, name := range c.order {
		rep := c.replicas[name]
		if rep.spawned {
			addr, err := portfile.Wait(ctx, c.portfilePath(rep))
			if err != nil {
				c.logf("cluster: %s: no portfile: %v", rep.name, err)
				continue
			}
			rep.mu.Lock()
			rep.addr = addr
			rep.mu.Unlock()
		}
		if c.probe(rep) {
			rep.healthy.Store(true)
			healthyAny = true
		} else {
			c.logf("cluster: %s (%s) not healthy at startup; ejected until probes recover", rep.name, rep.address())
		}
	}
	if !healthyAny {
		c.Close()
		return nil, fmt.Errorf("cluster: no healthy replica after startup")
	}

	c.wg.Add(1)
	go c.healthLoop()
	return c, nil
}

func (c *Cluster) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

func (c *Cluster) portfilePath(r *replica) string {
	return filepath.Join(c.opts.Dir, r.name+".port")
}

func (c *Cluster) pidfilePath(r *replica) string {
	return filepath.Join(c.opts.Dir, r.name+".pid")
}

// launch starts one spawned replica's process and its exit watcher.
// Callers hold no replica lock.
func (c *Cluster) launch(rep *replica) error {
	// Remove the old portfile first so the handshake can only observe
	// the new process's address, never a dead generation's.
	_ = os.Remove(c.portfilePath(rep))
	cmd := exec.Command(c.opts.Binary,
		"-addr", "127.0.0.1:0",
		"-portfile", c.portfilePath(rep),
		"-peerdir", c.opts.Dir,
		"-cachedir", filepath.Join(c.opts.Dir, "cache-"+rep.name),
		"-workers", strconv.Itoa(c.opts.ReplicaWorkers),
		"-queue", strconv.Itoa(c.opts.ReplicaQueue),
		// All replicas of a spawned fleet share one checkpoint
		// directory, so a distributed check's sessions survive a
		// replica dying (the coordinator re-dispatches them; see
		// check.go failover).
		"-shard-checkpoints", filepath.Join(c.opts.Dir, "shard-ckpt"),
	)
	logf, err := os.OpenFile(filepath.Join(c.opts.Dir, rep.name+".log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("cluster: spawn %s: %w", rep.name, err)
	}
	rep.mu.Lock()
	rep.cmd = cmd
	rep.gen++
	gen := rep.gen
	rep.mu.Unlock()
	_ = os.WriteFile(c.pidfilePath(rep), []byte(strconv.Itoa(cmd.Process.Pid)+"\n"), 0o644)
	c.logf("cluster: %s: spawned pid %d", rep.name, cmd.Process.Pid)

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer logf.Close()
		err := cmd.Wait()
		if c.stopping.Load() {
			return
		}
		// The replica died under us. Eject immediately; optionally
		// bring a fresh process up on the same name (same ring range,
		// same portfile, fresh ephemeral port).
		if rep.healthy.CompareAndSwap(true, false) {
			c.met.ejections.Add(1)
		}
		c.logf("cluster: %s: process exited unexpectedly: %v", rep.name, err)
		if !c.opts.Respawn {
			return
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-c.stop:
			return
		}
		rep.mu.Lock()
		stale := rep.gen != gen
		rep.mu.Unlock()
		if stale || c.stopping.Load() {
			return
		}
		rep.respawns.Add(1)
		c.met.respawns.Add(1)
		if err := c.launch(rep); err != nil {
			c.logf("cluster: %s: respawn failed: %v", rep.name, err)
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.StartTimeout)
		defer cancel()
		addr, err := portfile.Wait(ctx, c.portfilePath(rep))
		if err != nil {
			c.logf("cluster: %s: respawned but no portfile: %v", rep.name, err)
			return
		}
		rep.mu.Lock()
		rep.addr = addr
		rep.mu.Unlock()
		// The health loop re-admits once probes pass.
	}()
	return nil
}

// probe is one synchronous health check.
func (c *Cluster) probe(r *replica) bool {
	addr := r.address()
	if addr == "" {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	drainClose(resp)
	return resp.StatusCode == http.StatusOK
}

// healthLoop drives ejection and re-admission: FailAfter consecutive
// probe failures eject, one success re-admits. The loop is the only
// writer of rep.fails.
func (c *Cluster) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, name := range c.order {
			rep := c.replicas[name]
			if c.probe(rep) {
				rep.fails = 0
				if rep.healthy.CompareAndSwap(false, true) {
					c.met.readmissions.Add(1)
					c.logf("cluster: %s (%s) re-admitted", rep.name, rep.address())
				}
				continue
			}
			rep.fails++
			if rep.fails >= c.opts.FailAfter {
				if rep.healthy.CompareAndSwap(true, false) {
					c.met.ejections.Add(1)
					c.logf("cluster: %s (%s) ejected after %d failed probes", rep.name, rep.address(), rep.fails)
				}
			}
		}
	}
}

// markDown ejects a replica on direct routing evidence (a transport
// error), without waiting for the next probe cycle.
func (c *Cluster) markDown(rep *replica) {
	if rep.healthy.CompareAndSwap(true, false) {
		c.met.ejections.Add(1)
		c.logf("cluster: %s (%s) ejected on routing failure", rep.name, rep.address())
	}
}

// Statuses reports the fleet, in roster order.
func (c *Cluster) Statuses() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(c.order))
	for _, name := range c.order {
		rep := c.replicas[name]
		out = append(out, ReplicaStatus{
			Name: rep.name, Addr: rep.address(),
			Healthy: rep.healthy.Load(), Spawned: rep.spawned,
			Respawns: rep.respawns.Load(),
		})
	}
	return out
}

// healthyCount returns how many replicas are currently admitted.
func (c *Cluster) healthyCount() int {
	n := 0
	for _, name := range c.order {
		if c.replicas[name].healthy.Load() {
			n++
		}
	}
	return n
}

// Close stops supervision and tears down spawned replicas: SIGTERM
// for a graceful drain, SIGKILL after a grace period. Safe to call
// more than once.
func (c *Cluster) Close() {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	c.stopping.Store(true)
	close(c.stop)
	c.closeMu.Unlock()

	var kills sync.WaitGroup
	for _, name := range c.order {
		rep := c.replicas[name]
		rep.mu.Lock()
		cmd := rep.cmd
		rep.mu.Unlock()
		if cmd == nil || cmd.Process == nil {
			continue
		}
		kills.Add(1)
		go func(cmd *exec.Cmd) {
			defer kills.Done()
			_ = cmd.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() {
				// The launch watcher owns cmd.Wait; poll for exit.
				for {
					if err := cmd.Process.Signal(syscall.Signal(0)); err != nil {
						close(done)
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				_ = cmd.Process.Kill()
			}
		}(cmd)
	}
	kills.Wait()
	c.wg.Wait()
}
