package cluster

import (
	"fmt"
	"testing"
)

// TestRingPickStable: the preference order is a pure function of the
// roster and the key — two rings built from the same names agree on
// every key, and each order lists each member exactly once.
func TestRingPickStable(t *testing.T) {
	names := []string{"r0", "r1", "r2"}
	a, b := newRing(names), newRing(names)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("simulate|key-%d", i)
		pa, pb := a.pick(key), b.pick(key)
		if len(pa) != len(names) {
			t.Fatalf("pick(%q) = %v: want %d distinct members", key, pa, len(names))
		}
		seen := map[string]bool{}
		for _, n := range pa {
			if seen[n] {
				t.Fatalf("pick(%q) = %v: duplicate member", key, pa)
			}
			seen[n] = true
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("pick(%q) differs between identical rings: %v vs %v", key, pa, pb)
			}
		}
	}
}

// TestRingBalance: with virtual nodes, no member owns a wildly
// disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	r := newRing([]string{"r0", "r1", "r2"})
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.pick(fmt.Sprintf("simulate|%d", i))[0]]++
	}
	for name, n := range counts {
		if n < keys/6 || n > keys/2+keys/10 {
			t.Fatalf("owner share out of range: %s owns %d of %d (%v)", name, n, keys, counts)
		}
	}
}

// TestRingFailover: the second preference differs from the first, so a
// down owner has somewhere to send the key; and removing liveness is
// not the ring's job — pick ignores it by design.
func TestRingFailover(t *testing.T) {
	r := newRing([]string{"r0", "r1", "r2"})
	moved := 0
	for i := 0; i < 100; i++ {
		p := r.pick(fmt.Sprintf("k%d", i))
		if p[0] == p[1] {
			t.Fatalf("pick returned the same member twice: %v", p)
		}
		if p[1] != p[0] {
			moved++
		}
	}
	if moved != 100 {
		t.Fatalf("failover preference missing for %d keys", 100-moved)
	}
}

// TestRingEmpty: an empty roster yields no candidates rather than
// panicking.
func TestRingEmpty(t *testing.T) {
	if got := newRing(nil).pick("anything"); got != nil {
		t.Fatalf("empty ring pick = %v", got)
	}
}
