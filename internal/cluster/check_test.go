package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"cachesync/internal/serve"
)

// postCheck posts one /v1/check body and returns the status and body.
func postCheck(t *testing.T, url string, req map[string]any) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// checkResult extracts the mcheck.Result from a /v1/check response
// and re-marshals it with the timing fields zeroed, so two runs of
// the same exploration compare byte for byte.
func checkResult(t *testing.T, body []byte) (bool, []byte) {
	t.Helper()
	var cr serve.CheckResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("bad check response %s: %v", body, err)
	}
	// Result is normalized as a generic map: mcheck.Action marshals to
	// its human trace string and does not parse back into the struct.
	var res map[string]any
	if err := json.Unmarshal(cr.Result, &res); err != nil {
		t.Fatalf("bad result %s: %v", cr.Result, err)
	}
	delete(res, "elapsed_ns")
	delete(res, "states_per_sec")
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return cr.Pass, out
}

// TestShardedCheckMatchesSingle is the HTTP half of the distributed-
// exploration equivalence story: a /v1/check sharded across three
// replicas must return byte-identical results (timing aside) to the
// same request answered by one replica — verdict, state and
// transition counts, and the counterexample trace on a seeded mutant.
func TestShardedCheckMatchesSingle(t *testing.T) {
	b0, b1, b2 := newBackend(t), newBackend(t), newBackend(t)
	_, ts := newAttachCluster(t, b0.addr, b1.addr, b2.addr)
	single := newBackend(t)

	cases := []struct {
		name   string
		req    map[string]any
		shards int
		pass   bool
	}{
		{"bitar-clean", map[string]any{
			"protocol": "bitar", "procs": 3, "blocks": 2, "depth": 4, "symmetry": true,
		}, 3, true},
		{"locke-clean", map[string]any{
			"protocol": "locke", "procs": 2, "blocks": 2, "depth": 5, "symmetry": true,
		}, 3, true},
		{"locke-stale-lock-grant", map[string]any{
			"protocol": "locke", "inject": "stale-lock-grant", "procs": 2, "blocks": 2, "depth": 6,
		}, 3, false},
		{"illinois-skip-writeback", map[string]any{
			"protocol": "illinois", "inject": "skip-writeback", "procs": 3, "blocks": 2, "depth": 6, "symmetry": true,
		}, 4, false}, // more shards than replicas: assignment wraps
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postCheck(t, single.ts.URL, tc.req)
			if code != http.StatusOK {
				t.Fatalf("single replica: status %d: %s", code, body)
			}
			wantPass, want := checkResult(t, body)

			req := map[string]any{"shards": tc.shards}
			for k, v := range tc.req {
				req[k] = v
			}
			code, body = postCheck(t, ts.URL, req)
			if code != http.StatusOK {
				t.Fatalf("sharded: status %d: %s", code, body)
			}
			gotPass, got := checkResult(t, body)

			if wantPass != tc.pass || gotPass != tc.pass {
				t.Fatalf("pass: single=%v sharded=%v want %v", wantPass, gotPass, tc.pass)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("sharded result differs from single replica\nsingle:  %s\nsharded: %s", want, got)
			}
		})
	}

	// The sessions a check opens must not leak: every replica's table
	// should be empty once the responses are in.
	for i, b := range []*backend{b0, b1, b2} {
		code, body := postJSONStatus(t, b.ts.URL+"/v1/shard/expand", map[string]any{"session": "nope"})
		if code != http.StatusNotFound {
			t.Fatalf("replica %d: probe expand: status %d: %s", i, code, body)
		}
	}
}

// postJSONStatus posts an arbitrary JSON body and returns status+body.
func postJSONStatus(t *testing.T, url string, req map[string]any) (int, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestShardedCheckValidation covers the coordinator-side rejections
// and the shards=1 passthrough.
func TestShardedCheckValidation(t *testing.T) {
	b := newBackend(t)
	_, ts := newAttachCluster(t, b.addr)

	// POR cannot shard: per-block sub-runs would each need a fleet pass.
	code, body := postCheck(t, ts.URL, map[string]any{
		"protocol": "bitar", "por": true, "shards": 2,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("por+shards: status %d: %s", code, body)
	}

	// Out-of-range shard counts are the coordinator's error, not a
	// replica's.
	for _, shards := range []int{-1, maxCheckShards + 1} {
		code, body = postCheck(t, ts.URL, map[string]any{"protocol": "bitar", "shards": shards})
		if code != http.StatusBadRequest {
			t.Fatalf("shards=%d: status %d: %s", shards, code, body)
		}
	}

	// shards=1 is the plain proxy path; the coordinator-only field is
	// stripped before the replica's strict decoder sees the body.
	code, body = postCheck(t, ts.URL, map[string]any{
		"protocol": "bitar", "procs": 2, "depth": 3, "shards": 1,
	})
	if code != http.StatusOK {
		t.Fatalf("shards=1: status %d: %s", code, body)
	}
	if pass, _ := checkResult(t, body); !pass {
		t.Fatalf("shards=1: expected pass: %s", body)
	}
}

// killableBackend is a replica that can drop dead mid-check: once the
// killAt-th /v1/shard/absorb arrives (or dead is set), every request —
// shard phases and health probes alike — aborts its connection, the
// closest an httptest server gets to a killed process.
type killableBackend struct {
	ts      *httptest.Server
	addr    string
	dead    atomic.Bool
	absorbs atomic.Int64
	killAt  int64 // 0 = immortal
}

func newKillableBackend(t *testing.T, ckptRoot string, killAt int64) *killableBackend {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 2, ShardCheckpointRoot: ckptRoot})
	b := &killableBackend{killAt: killAt}
	inner := srv.Handler()
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if b.dead.Load() {
			panic(http.ErrAbortHandler)
		}
		if b.killAt > 0 && r.URL.Path == "/v1/shard/absorb" && b.absorbs.Add(1) == b.killAt {
			b.dead.Store(true)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(b.ts.Close)
	t.Cleanup(srv.Close)
	b.addr = strings.TrimPrefix(b.ts.URL, "http://")
	return b
}

// TestShardedCheckSurvivesReplicaDeath kills one replica of a
// three-replica fleet mid-check. With every replica pointed at the
// same shard checkpoint root, the coordinator re-dispatches the dead
// replica's session to a healthy one — resumed from its snapshot at
// the exact absorb sequence — and the merged Result must still be
// byte-identical to a single replica's.
func TestShardedCheckSurvivesReplicaDeath(t *testing.T) {
	cases := []struct {
		name   string
		req    map[string]any
		killAt int64
		pass   bool
	}{
		// killAt 2 dies with one level absorbed: the re-opened session
		// must restore real state, not reseed.
		{"clean", map[string]any{
			"protocol": "bitar", "procs": 3, "blocks": 2, "depth": 4, "symmetry": true,
		}, 2, true},
		// A mutant's counterexample trace must survive re-dispatch: the
		// rebuild hops through the resurrected session. It violates
		// early, so the kill lands on the first absorb.
		{"mutant", map[string]any{
			"protocol": "locke", "inject": "stale-lock-grant", "procs": 2, "blocks": 2, "depth": 6,
		}, 1, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			single := newBackend(t)
			code, body := postCheck(t, single.ts.URL, tc.req)
			if code != http.StatusOK {
				t.Fatalf("single replica: status %d: %s", code, body)
			}
			wantPass, want := checkResult(t, body)
			if wantPass != tc.pass {
				t.Fatalf("single replica pass=%v, want %v", wantPass, tc.pass)
			}

			root := t.TempDir()
			b0 := newKillableBackend(t, root, tc.killAt)
			b1 := newKillableBackend(t, root, 0)
			b2 := newKillableBackend(t, root, 0)
			c, ts := newAttachCluster(t, b0.addr, b1.addr, b2.addr)

			req := map[string]any{"shards": 3}
			for k, v := range tc.req {
				req[k] = v
			}
			code, body = postCheck(t, ts.URL, req)
			if code != http.StatusOK {
				t.Fatalf("sharded with replica death: status %d: %s", code, body)
			}
			gotPass, got := checkResult(t, body)
			if gotPass != tc.pass {
				t.Fatalf("sharded pass=%v, want %v", gotPass, tc.pass)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("result differs after replica death\nsingle:   %s\nsurvived: %s", want, got)
			}
			if !b0.dead.Load() {
				t.Fatal("the doomed replica was never hit — the check did not exercise failover")
			}
			if c.met.checkFailovers.Load() == 0 {
				t.Error("no session failover recorded")
			}
		})
	}
}
