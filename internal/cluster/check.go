package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"cachesync/internal/mcheck"
	"cachesync/internal/serve"
)

// Distributed model checking: a /v1/check body may carry a
// coordinator-only "shards" field. shards > 1 partitions the visited
// state space across the healthy fleet — each shard session lives on
// one replica, reached through the /v1/shard/* endpoints — and the
// coordinator drives mcheck.RunSharded over the HTTP peers. The merged
// Result is byte-identical (timing aside) to what one replica would
// produce for the same request, a property the differential test in
// this package asserts end to end.

// maxCheckShards bounds the fan-out of one distributed check; each
// shard occupies a session slot on its replica for the whole run.
const maxCheckShards = 16

// shardedCheckRequest is the coordinator's view of a /v1/check body:
// the replica request plus the shard count, which is never forwarded.
type shardedCheckRequest struct {
	serve.CheckRequest
	Shards int `json:"shards,omitempty"`
}

// checkSeq disambiguates concurrent distributed checks of the same
// configuration: session ids must be unique per replica.
var checkSeq atomic.Int64

// handleShardedCheck runs one check partitioned over the fleet. Shard
// i starts on the i-th healthy replica (mod fleet size); shard
// sessions are stateful, so they don't reroute per call like the
// stateless proxy path. When the fleet runs with a shared shard
// checkpoint root, a session whose replica dies mid-check is instead
// re-dispatched: the peer re-opens it with resume on a healthy
// replica, verifies the restored session is at the peer's absorb
// sequence, and retries the failed call (httpPeer.post).
func (c *Cluster) handleShardedCheck(w http.ResponseWriter, r *http.Request, cr serve.CheckRequest, shards int) {
	if shards > maxCheckShards {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": fmt.Sprintf("shards %d out of range [1,%d]", shards, maxCheckShards)})
		return
	}
	cr = cr.Normalize()
	opts, err := cr.Options()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	if cr.POR {
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": "por does not compose with sharded checking (run por unsharded)"})
		return
	}

	var reps []*replica
	for _, name := range c.order {
		if rep := c.replicas[name]; rep.healthy.Load() {
			reps = append(reps, rep)
		}
	}
	if len(reps) == 0 {
		c.met.unrouted.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no healthy replica"})
		return
	}

	base := fmt.Sprintf("check-%d", checkSeq.Add(1))
	peers := make([]mcheck.ShardPeer, shards)
	for i := range peers {
		rep := reps[i%len(reps)]
		peers[i] = &httpPeer{
			c: c, rep: rep, ctx: r.Context(),
			session: fmt.Sprintf("%s/%d", base, i),
			cr:      cr, self: i, total: shards,
		}
		c.met.route(rep.name)
	}
	c.met.checkShards.Add(int64(shards))
	defer func() {
		for _, p := range peers {
			_ = p.Close()
		}
	}()

	res, err := mcheck.RunSharded(opts, peers)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		writeJSON(w, http.StatusBadGateway, map[string]any{"error": err.Error()})
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, serve.CheckResponse{
		Pass: res.Counterexample == nil, Result: body,
	})
}

// httpPeer is one remote shard session: mcheck.ShardPeer spoken over
// the owning replica's /v1/shard/* endpoints. The owning replica can
// change mid-run: see post.
type httpPeer struct {
	c       *Cluster
	rep     *replica
	ctx     context.Context
	session string
	cr      serve.CheckRequest
	self    int
	total   int
	// seq is the last level this session absorbed, from its Absorb
	// replies. A failover re-open must come back at exactly this
	// sequence before a failed call is retried; RunSharded drives each
	// peer from one goroutine at a time, so no lock guards it.
	seq int64
}

// shardOpenMsg mirrors the replica's open body: the check request
// flattened with the session coordinates.
type shardOpenMsg struct {
	serve.CheckRequest
	Session string `json:"session"`
	Self    int    `json:"self"`
	Total   int    `json:"total"`
	Resume  bool   `json:"resume,omitempty"`
}

// shardCallMsg mirrors the replica's phase-call body.
type shardCallMsg struct {
	Session string            `json:"session"`
	Seq     int64             `json:"seq,omitempty"`
	Cands   []mcheck.WireCand `json:"cands,omitempty"`
	ID      uint64            `json:"id,omitempty"`
}

func (p *httpPeer) Open() (*mcheck.ShardOpenReply, error) {
	var reply mcheck.ShardOpenReply
	err := p.post(p.ctx, "open", shardOpenMsg{
		CheckRequest: p.cr, Session: p.session, Self: p.self, Total: p.total,
	}, &reply)
	if err != nil {
		return nil, err
	}
	return &reply, nil
}

func (p *httpPeer) Expand() (*mcheck.ShardExpandReply, error) {
	var reply mcheck.ShardExpandReply
	if err := p.post(p.ctx, "expand", shardCallMsg{Session: p.session}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

func (p *httpPeer) Absorb(seq int64, cands []mcheck.WireCand) (*mcheck.ShardAbsorbReply, error) {
	var reply mcheck.ShardAbsorbReply
	if err := p.post(p.ctx, "absorb", shardCallMsg{Session: p.session, Seq: seq, Cands: cands}, &reply); err != nil {
		return nil, err
	}
	p.seq = reply.Seq
	return &reply, nil
}

func (p *httpPeer) TraceHop(id uint64) (*mcheck.ShardHopReply, error) {
	var reply mcheck.ShardHopReply
	if err := p.post(p.ctx, "trace", shardCallMsg{Session: p.session, ID: id}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Close is best-effort and deliberately not bound to the request
// context: a canceled check should still free its replica sessions.
// Whatever slips through, the replica's session TTL reclaims.
func (p *httpPeer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return p.post(ctx, "close", shardCallMsg{Session: p.session}, &struct {
		Closed bool `json:"closed"`
	}{})
}

// post sends one phase call to the session's current replica and
// decodes the reply. A failure that means the session is gone — a
// transport error (replica died; it gets marked down) or a 404
// (replica restarted or pruned the session) — triggers one failover
// attempt: re-open the session with resume on a healthy replica,
// verify the restored session is at this peer's absorb sequence, and
// retry the call there. Everything else fails the distributed check.
// The initial open has no session to recover, and close is
// best-effort; neither fails over.
func (p *httpPeer) post(ctx context.Context, phase string, msg, into any) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	err, lost := p.do(ctx, phase, payload, into)
	if err == nil || !lost || phase == "open" || phase == "close" || ctx.Err() != nil {
		return err
	}
	if ferr := p.failover(ctx); ferr != nil {
		return fmt.Errorf("%w (failover: %w)", err, ferr)
	}
	err, _ = p.do(ctx, phase, payload, into)
	return err
}

// do is one HTTP round trip to the current replica. The second return
// reports whether the session should be presumed lost.
func (p *httpPeer) do(ctx context.Context, phase string, payload []byte, into any) (error, bool) {
	url := "http://" + p.rep.address() + "/v1/shard/" + phase
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return err, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.c.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			p.c.markDown(p.rep)
		}
		return fmt.Errorf("shard %d on %s: %s: %w", p.self, p.rep.name, phase, err), true
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = fmt.Sprintf("status %d", resp.StatusCode)
		}
		return fmt.Errorf("shard %d on %s: %s: %s", p.self, p.rep.name, phase, e.Error),
			resp.StatusCode == http.StatusNotFound
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("shard %d on %s: %s: %w", p.self, p.rep.name, phase, err), false
	}
	return nil, false
}

// failover re-homes the session: open it with resume on each healthy
// replica in turn until one restores it at exactly p.seq. At seq 0
// nothing has been absorbed yet, so a fresh seed (Resumed false, as on
// a fleet without a shared checkpoint root) reproduces the session
// state and is accepted too; past that, only a genuine checkpoint
// restore at the right sequence is.
func (p *httpPeer) failover(ctx context.Context) error {
	payload, err := json.Marshal(shardOpenMsg{
		CheckRequest: p.cr, Session: p.session,
		Self: p.self, Total: p.total, Resume: true,
	})
	if err != nil {
		return err
	}
	var lastErr error
	for _, name := range p.c.order {
		rep := p.c.replicas[name]
		if !rep.healthy.Load() {
			continue
		}
		prev := p.rep
		p.rep = rep
		var reply mcheck.ShardOpenReply
		if oerr, _ := p.do(ctx, "open", payload, &reply); oerr != nil {
			p.rep = prev
			lastErr = oerr
			continue
		}
		if reply.Seq != p.seq || (p.seq > 0 && !reply.Resumed) {
			p.rep = prev
			lastErr = fmt.Errorf("shard %d: %s reopened at seq %d (resumed=%v), want %d — no usable checkpoint",
				p.self, rep.name, reply.Seq, reply.Resumed, p.seq)
			continue
		}
		p.c.met.checkFailovers.Add(1)
		p.c.met.route(rep.name)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard %d: no healthy replica to fail over to", p.self)
	}
	return lastErr
}
