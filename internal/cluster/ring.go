// Package cluster is the cachesync serving fleet: a coordinator that
// spawns or attaches to N cachesyncd replicas (reusing the portfile
// handshake), routes each request to a replica by consistent-hashing
// its configuration key — so the replicas' single-flight dedup and
// result caches concentrate instead of fragmenting — reroutes around
// failed replicas with bounded backoff, ejects and re-admits replicas
// on health evidence, and shards sweeps across the fleet with a
// deterministic merge.
//
// The design maps the paper's coherence problem onto serving: each
// replica's result cache is a processor cache, the router's hash ring
// is the address-to-cache mapping, and the artifact exchange
// (internal/serve's peer fetch) is the cache-to-cache transfer that
// turns N private caches into one logical fleet cache without a
// broadcast bus.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring with virtual nodes. Membership is
// static after construction (the fleet roster); liveness is a
// per-replica property filtered at pick time, so a replica that
// leaves and returns keeps exactly its old key range — re-admission
// restores cache affinity instead of reshuffling the fleet.
type ring struct {
	points []ringPoint // sorted by hash
	names  []string    // distinct member names
}

type ringPoint struct {
	hash uint64
	name string
}

// vnodesPerMember spreads each member around the ring so key ranges
// even out. 64 keeps the per-member load imbalance low at fleet sizes
// this package targets (units to tens of replicas).
const vnodesPerMember = 64

func newRing(names []string) *ring {
	r := &ring{names: append([]string(nil), names...)}
	for _, n := range names {
		for v := 0; v < vnodesPerMember; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", n, v)), name: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return r
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// pick returns every member in preference order for key: the owner
// first (the first virtual node at or after the key's hash), then each
// subsequent distinct member walking the ring — the reroute order when
// the owner is down. The order depends only on membership and the key,
// never on liveness, so two routers with the same roster agree.
func (r *ring) pick(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	order := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	for i := 0; i < len(r.points) && len(order) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.name] {
			seen[p.name] = true
			order = append(order, p.name)
		}
	}
	return order
}
