package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cachesync/internal/runner"
	"cachesync/internal/serve"
	"cachesync/internal/simrun"
)

// backend is one in-process replica for attach-mode cluster tests.
type backend struct {
	srv  *serve.Server
	ts   *httptest.Server
	addr string
}

func newBackend(t *testing.T) *backend {
	t.Helper()
	cache, err := runner.OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Workers: 2, Cache: cache})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return &backend{srv: srv, ts: ts, addr: strings.TrimPrefix(ts.URL, "http://")}
}

// newAttachCluster builds a coordinator over already-running backends
// with fast health probes, and serves its router on httptest.
func newAttachCluster(t *testing.T, addrs ...string) (*Cluster, *httptest.Server) {
	t.Helper()
	c, err := New(Options{
		Attach:         addrs,
		HealthInterval: 40 * time.Millisecond,
		FailAfter:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

func postSim(t *testing.T, url string, cfg simrun.Config) (int, http.Header, []byte) {
	t.Helper()
	body, _ := json.Marshal(cfg)
	resp, err := http.Post(url+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// configOwnedBy searches seeds until it finds a config whose ring
// owner is the named replica.
func configOwnedBy(t *testing.T, c *Cluster, name string) simrun.Config {
	t.Helper()
	for seed := int64(1); seed < 500; seed++ {
		cfg := simrun.Config{Protocol: "bitar", Ops: 120, Seed: seed}.Normalize()
		if c.ring.pick("simulate|" + cfg.Hash())[0] == name {
			return cfg
		}
	}
	t.Fatalf("no config owned by %s in 500 seeds", name)
	return simrun.Config{}
}

// TestClusterAffinity: identical requests land on the ring owner every
// time (X-Replica constant), so dedup and caching concentrate; the
// second request is a cache hit.
func TestClusterAffinity(t *testing.T) {
	b0, b1 := newBackend(t), newBackend(t)
	c, ts := newAttachCluster(t, b0.addr, b1.addr)

	for _, owner := range []string{"a0", "a1"} {
		cfg := configOwnedBy(t, c, owner)
		var replicas []string
		for i := 0; i < 3; i++ {
			code, hdr, body := postSim(t, ts.URL, cfg)
			if code != http.StatusOK {
				t.Fatalf("simulate via router: %d %s", code, body)
			}
			replicas = append(replicas, hdr.Get("X-Replica"))
			if i > 0 && hdr.Get("X-Cache") != "hit" {
				t.Fatalf("repeat %d: X-Cache=%q, want hit", i, hdr.Get("X-Cache"))
			}
		}
		for _, r := range replicas {
			if r != owner {
				t.Fatalf("affinity broken: owner %s, routed to %v", owner, replicas)
			}
		}
	}
}

// TestClusterReroute: when the owning backend dies, its keys reroute
// to the survivor with no client-visible failure.
func TestClusterReroute(t *testing.T) {
	b0, b1 := newBackend(t), newBackend(t)
	c, ts := newAttachCluster(t, b0.addr, b1.addr)

	cfg := configOwnedBy(t, c, "a0")
	if code, hdr, _ := postSim(t, ts.URL, cfg); code != http.StatusOK || hdr.Get("X-Replica") != "a0" {
		t.Fatalf("pre-kill: code=%d replica=%q", code, hdr.Get("X-Replica"))
	}

	b0.ts.Close()
	code, hdr, body := postSim(t, ts.URL, cfg)
	if code != http.StatusOK {
		t.Fatalf("post-kill simulate: %d %s", code, body)
	}
	if got := hdr.Get("X-Replica"); got != "a1" {
		t.Fatalf("post-kill routed to %q, want a1", got)
	}
	if c.met.reroutes.Load() == 0 && c.met.ejections.Load() == 0 {
		t.Fatal("kill left no reroute/ejection evidence in metrics")
	}
}

// TestClusterReadmission: a replica ejected on routing evidence is
// re-admitted by the health loop once probes succeed, restoring its
// old key range (same ring position).
func TestClusterReadmission(t *testing.T) {
	b0, b1 := newBackend(t), newBackend(t)
	c, ts := newAttachCluster(t, b0.addr, b1.addr)

	cfg := configOwnedBy(t, c, "a0")
	rep := c.replicas["a0"]
	rep.healthy.Store(false) // simulated ejection; the process is fine

	if code, hdr, _ := postSim(t, ts.URL, cfg); code != http.StatusOK || hdr.Get("X-Replica") != "a1" {
		t.Fatalf("while ejected: code=%d replica=%q, want 200/a1", code, hdr.Get("X-Replica"))
	}

	deadline := time.Now().Add(3 * time.Second)
	for !rep.healthy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("health loop never re-admitted a live replica")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.met.readmissions.Load() == 0 {
		t.Fatal("re-admission not counted")
	}
	if code, hdr, _ := postSim(t, ts.URL, cfg); code != http.StatusOK || hdr.Get("X-Replica") != "a0" {
		t.Fatalf("after re-admission: code=%d replica=%q, want 200/a0 (affinity restored)", code, hdr.Get("X-Replica"))
	}
}

// TestClusterDeadAttach: a roster with one dead address still starts,
// ejects the dead member, and serves from the live one; aggregate
// healthz reports the split.
func TestClusterDeadAttach(t *testing.T) {
	b0 := newBackend(t)
	c, ts := newAttachCluster(t, b0.addr, "127.0.0.1:1")

	if n := c.healthyCount(); n != 1 {
		t.Fatalf("healthy = %d, want 1", n)
	}
	code, _, _ := postSim(t, ts.URL, simrun.Config{Protocol: "bitar", Ops: 100, Seed: 1})
	if code != http.StatusOK {
		t.Fatalf("simulate with half-dead fleet: %d", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		OK      bool `json:"ok"`
		Healthy int  `json:"healthy"`
		Total   int  `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.OK || hz.Healthy != 1 || hz.Total != 2 {
		t.Fatalf("healthz = %+v", hz)
	}
}

// TestClusterNoHealthy: a fleet with nothing alive refuses to start.
func TestClusterNoHealthy(t *testing.T) {
	if _, err := New(Options{Attach: []string{"127.0.0.1:1"}, StartTimeout: time.Second}); err == nil {
		t.Fatal("New succeeded with a dead-only roster")
	}
}

// TestClusterSweepMerge: a sharded sweep returns exactly the points a
// single replica would, in the same order.
func TestClusterSweepMerge(t *testing.T) {
	b0, b1 := newBackend(t), newBackend(t)
	_, ts := newAttachCluster(t, b0.addr, b1.addr)

	req := serve.SweepRequest{Protocols: []string{"bitar", "illinois", "goodman"}, Procs: []int{1, 2}, Ops: 100, Seed: 7}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var merged struct {
		Pass   bool               `json:"pass"`
		Shards int                `json:"shards"`
		Points []serve.SweepPoint `json:"points"`
	}
	err = json.NewDecoder(resp.Body).Decode(&merged)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster sweep: code=%d err=%v", resp.StatusCode, err)
	}

	single := newBackend(t)
	resp, err = http.Post(single.ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ref serve.SweepResponse
	err = json.NewDecoder(resp.Body).Decode(&ref)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	if len(merged.Points) != len(ref.Points) {
		t.Fatalf("merged %d points, single replica %d", len(merged.Points), len(ref.Points))
	}
	for i := range ref.Points {
		if merged.Points[i] != ref.Points[i] {
			t.Fatalf("point %d: cluster %+v vs single %+v", i, merged.Points[i], ref.Points[i])
		}
	}
	if merged.Shards < 2 {
		t.Fatalf("sweep used %d shards; expected the fleet to split it", merged.Shards)
	}
}

// TestClusterSweepStream: ?stream=1 interleaves shard events in
// shard-index order and ends with the merged result line.
func TestClusterSweepStream(t *testing.T) {
	b0, b1 := newBackend(t), newBackend(t)
	_, ts := newAttachCluster(t, b0.addr, b1.addr)

	req := serve.SweepRequest{Protocols: []string{"bitar", "illinois", "goodman", "firefly"}, Procs: []int{1, 2}, Ops: 100, Seed: 11}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}

	lastShard := -1
	var result struct {
		T      string             `json:"t"`
		Pass   bool               `json:"pass"`
		Points []serve.SweepPoint `json:"points"`
	}
	sawResult := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ev struct {
			Shard int    `json:"shard"`
			T     string `json:"t"`
			Msg   string `json:"msg"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.T == "error" {
			t.Fatalf("stream error event: %s", ev.Msg)
		}
		if ev.T == "result" {
			if err := json.Unmarshal(sc.Bytes(), &result); err != nil {
				t.Fatal(err)
			}
			sawResult = true
			continue
		}
		if sawResult {
			t.Fatal("events after the result line")
		}
		if ev.Shard < lastShard {
			t.Fatalf("shard order regressed: %d after %d", ev.Shard, lastShard)
		}
		lastShard = ev.Shard
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawResult {
		t.Fatal("stream ended without a result line")
	}
	if len(result.Points) != 8 || !result.Pass {
		t.Fatalf("stream result: pass=%v points=%d, want pass/8", result.Pass, len(result.Points))
	}
	for i, want := range []string{"bitar", "bitar", "illinois", "illinois", "goodman", "goodman", "firefly", "firefly"} {
		if result.Points[i].Protocol != want {
			t.Fatalf("point %d protocol %q, want %q (cell order must survive the merge)", i, result.Points[i].Protocol, want)
		}
	}
}

// TestClusterJobBroadcast: an async job accepted by one replica is
// findable through the coordinator without knowing which replica runs
// it.
func TestClusterJobBroadcast(t *testing.T) {
	b0, b1 := newBackend(t), newBackend(t)
	_, ts := newAttachCluster(t, b0.addr, b1.addr)

	cfg := simrun.Config{Protocol: "bitar", Ops: 150, Seed: 3}
	body, _ := json.Marshal(cfg)
	resp, err := http.Post(ts.URL+"/v1/simulate?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		Job string `json:"job"`
	}
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || acc.Job == "" {
		t.Fatalf("async accept: code=%d job=%q err=%v", resp.StatusCode, acc.Job, err)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + acc.Job)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job via broadcast: %d", resp.StatusCode)
	}
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev serve.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err == nil && (ev.T == "done" || ev.T == "error") {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("job stream never finished")
	}

	if r, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: %d, want 404", r.StatusCode)
		}
	}
}

// TestClusterMetrics: the coordinator's exposition includes per-replica
// routing counters and fleet health.
func TestClusterMetrics(t *testing.T) {
	b0 := newBackend(t)
	_, ts := newAttachCluster(t, b0.addr)
	if code, _, _ := postSim(t, ts.URL, simrun.Config{Protocol: "bitar", Ops: 100, Seed: 2}); code != http.StatusOK {
		t.Fatal("simulate failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		`cachesyncc_routed_total{replica="a0"} 1`,
		"cachesyncc_healthy 1",
		"cachesyncc_reroutes_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestOptionsValidation covers the constructor's refusals.
func TestOptionsValidation(t *testing.T) {
	cases := []Options{
		{},
		{Spawn: 1},
		{Spawn: 1, Binary: "x"},
	}
	for i, o := range cases {
		if _, err := New(o); err == nil {
			t.Fatalf("case %d: New(%+v) succeeded", i, o)
		}
	}
}
