package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cachesync/internal/simrun"
)

// rmetrics is the coordinator's own counter set, exposed at
// GET /metrics as cachesyncc_* so a scrape distinguishes routing
// behavior from replica behavior.
type rmetrics struct {
	mu     sync.Mutex
	routed map[string]int64 // forwarded requests by replica name

	reroutes     atomic.Int64 // attempts moved off the preferred replica
	unrouted     atomic.Int64 // requests that found no healthy replica
	ejections    atomic.Int64
	readmissions atomic.Int64
	respawns     atomic.Int64
	sweepShards  atomic.Int64
	checkShards  atomic.Int64 // shard sessions opened for distributed checks
	// shard sessions re-dispatched to another replica after their
	// original host died mid-check (resumed from a checkpoint).
	checkFailovers atomic.Int64
}

func newRMetrics() *rmetrics {
	return &rmetrics{routed: make(map[string]int64)}
}

func (m *rmetrics) route(name string) {
	m.mu.Lock()
	m.routed[name]++
	m.mu.Unlock()
}

// drainClose consumes and closes a response body so the underlying
// connection returns to the pool.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// maxBodyBytes bounds a routed request body; it matches the replica's
// own request-size ceiling.
const maxBodyBytes = 1 << 20

// Handler returns the coordinator's HTTP surface: the three work
// endpoints routed by configuration key, job streams found by
// broadcast, and fleet-level healthz/metrics.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		key := ""
		var cfg simrun.Config
		if err := json.Unmarshal(body, &cfg); err == nil {
			key = "simulate|" + cfg.Normalize().Hash()
		}
		c.proxy(w, r, key, body)
	})
	mux.HandleFunc("POST /v1/check", func(w http.ResponseWriter, r *http.Request) {
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		key := ""
		var req shardedCheckRequest
		if err := json.Unmarshal(body, &req); err == nil {
			if req.Shards < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]any{"error": "shards must be non-negative"})
				return
			}
			if req.Shards > 1 {
				c.handleShardedCheck(w, r, req.CheckRequest, req.Shards)
				return
			}
			if req.Shards == 1 {
				// "shards" is a coordinator-only field; strip it before
				// proxying to a replica's strict decoder.
				body, _ = json.Marshal(req.CheckRequest)
			}
			key = "check|" + req.CheckRequest.Normalize().Hash()
		}
		c.proxy(w, r, key, body)
	})
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil || len(body) > maxBodyBytes {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "unreadable or oversized body"})
		return nil, false
	}
	return body, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// candidates returns the replicas to try for key, preferred first,
// filtered to the currently healthy. An empty key (unparseable body —
// the replica will reject it with a 400 anyway) round-robins across
// the healthy fleet.
func (c *Cluster) candidates(key string) []*replica {
	var names []string
	if key != "" {
		names = c.ring.pick(key)
	} else {
		names = c.order
	}
	out := make([]*replica, 0, len(names))
	for _, n := range names {
		if rep := c.replicas[n]; rep.healthy.Load() {
			out = append(out, rep)
		}
	}
	if key == "" && len(out) > 1 {
		i := int(c.rr.Add(1)) % len(out)
		out = append(out[i:], out[:i]...)
	}
	return out
}

// proxy forwards one request along key's preference order: the owning
// replica first, then — on a transport error or a 503 from a draining
// replica — each successor with bounded backoff. Application statuses
// (200/202/400/404/429/500/504) are the replica's answer and pass
// through; only "this replica cannot take requests" evidence reroutes.
func (c *Cluster) proxy(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	cands := c.candidates(key)
	if len(cands) == 0 {
		c.met.unrouted.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no healthy replica"})
		return
	}
	for i, rep := range cands {
		if i > 0 {
			c.met.reroutes.Add(1)
			delay := c.opts.RetryBaseDelay << (i - 1)
			if delay > 160*time.Millisecond {
				delay = 160 * time.Millisecond
			}
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		resp, err := c.forward(r, rep, body)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			c.markDown(rep)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining for shutdown: honest, but not for us.
			drainClose(resp)
			continue
		}
		c.met.route(rep.name)
		relay(w, resp, rep.name)
		return
	}
	c.met.unrouted.Add(1)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no replica accepted the request"})
}

func (c *Cluster) forward(r *http.Request, rep *replica, body []byte) (*http.Response, error) {
	url := "http://" + rep.address() + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.client.Do(req)
}

// relay copies a replica response to the client, tagging which
// replica answered.
func relay(w http.ResponseWriter, resp *http.Response, name string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Cache", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Replica", name)
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

// flushCopy streams src to w, flushing after every chunk so NDJSON
// event streams arrive line by line, not at connection close.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleJob finds a job by broadcast: job ids are minted by replicas,
// so the coordinator asks each healthy replica in roster order and
// streams the first non-404 answer.
func (c *Cluster) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	for _, name := range c.order {
		rep := c.replicas[name]
		if !rep.healthy.Load() {
			continue
		}
		resp, err := c.forward(r, rep, nil)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			drainClose(resp)
			continue
		}
		c.met.route(rep.name)
		relay(w, resp, rep.name)
		return
	}
	writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("job %q not found on any replica", id)})
}

// handleHealthz reports fleet health: 200 while at least one replica
// is admitted, 503 otherwise — so a load balancer in front of several
// coordinators composes.
func (c *Cluster) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sts := c.Statuses()
	healthy := 0
	for _, st := range sts {
		if st.Healthy {
			healthy++
		}
	}
	code := http.StatusOK
	if healthy == 0 {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ok": healthy > 0, "healthy": healthy, "total": len(sts), "replicas": sts,
	})
}

func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	c.met.mu.Lock()
	names := make([]string, 0, len(c.met.routed))
	for n := range c.met.routed {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "# TYPE cachesyncc_routed_total counter\n")
	for _, n := range names {
		fmt.Fprintf(&b, "cachesyncc_routed_total{replica=%q} %d\n", n, c.met.routed[n])
	}
	c.met.mu.Unlock()
	fmt.Fprintf(&b, "# TYPE cachesyncc_reroutes_total counter\ncachesyncc_reroutes_total %d\n", c.met.reroutes.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncc_unrouted_total counter\ncachesyncc_unrouted_total %d\n", c.met.unrouted.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncc_ejections_total counter\ncachesyncc_ejections_total %d\n", c.met.ejections.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncc_readmissions_total counter\ncachesyncc_readmissions_total %d\n", c.met.readmissions.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncc_respawns_total counter\ncachesyncc_respawns_total %d\n", c.met.respawns.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncc_sweep_shards_total counter\ncachesyncc_sweep_shards_total %d\n", c.met.sweepShards.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncc_check_shards_total counter\ncachesyncc_check_shards_total %d\n", c.met.checkShards.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncc_check_failovers_total counter\ncachesyncc_check_failovers_total %d\n", c.met.checkFailovers.Load())
	fmt.Fprintf(&b, "# TYPE cachesyncc_healthy gauge\ncachesyncc_healthy %d\n", c.healthyCount())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, b.String())
}
